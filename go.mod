module ib12x

go 1.22
