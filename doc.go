// Package ib12x reproduces "High Performance MPI on IBM 12x InfiniBand
// Architecture" (Vishnu, Benton, Panda — IPDPS 2007) as a deterministic
// discrete-event simulation in pure Go.
//
// The library builds every layer the paper touches: the IBM 12x dual-port
// HCA with its multiple send/receive DMA engines (internal/hca), the GX+
// host bus (internal/gx), the InfiniBand verbs and Reliable Connection
// transport (internal/ib), the switched fabric (internal/fabric), the
// intra-node shared-memory channel (internal/shmem), the MVAPICH-style ADI
// layer with eager/rendezvous protocols and the paper's communication
// marker (internal/adi), the multi-rail scheduling policies including EPC
// (internal/core), an MPI interface with point-to-point and collective
// operations (internal/mpi), and the two NAS Parallel Benchmarks of the
// evaluation, IS and FT (internal/nas).
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation; cmd/reproduce prints them as tables. See README.md for a
// tour, DESIGN.md for the architecture and substitution decisions, and
// EXPERIMENTS.md for paper-versus-measured results.
package ib12x
