package ib12x

// One testing.B benchmark per figure of the paper's evaluation (Figures
// 3-12), plus the ablation benches DESIGN.md calls out (A1-A4). All numbers
// are virtual-time measurements from the deterministic simulation; the
// custom metrics carry the figure's own unit (us_virtual, MBps_virtual,
// s_virtual) while ns/op merely reflects host simulation speed.
//
// Run with: go test -bench=. -benchmem

import (
	"os"
	"strconv"
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/bench"
	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// quick keeps the per-iteration simulation cost reasonable; shapes and
// steady-state values are unchanged (the simulator is deterministic).
const (
	latIters, latWarm = 50, 5
	bwIters, bwWarm   = 8, 1
	window            = 64
)

func reportSeries(b *testing.B, names []string, vals []float64, unit string) {
	b.Helper()
	for i, n := range names {
		b.ReportMetric(vals[i], n+"_"+unit)
	}
}

// ---- Figure 3: small-message latency ----

func BenchmarkFig03SmallLatency(b *testing.B) {
	var orig, epc []float64
	sizes := []int{1, 1024}
	for i := 0; i < b.N; i++ {
		var err error
		orig, err = bench.Latency(bench.Setup{QPs: 1, Policy: core.Original}, sizes, latIters, latWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc, err = bench.Latency(bench.Setup{QPs: 4, Policy: core.EPC}, sizes, latIters, latWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"orig_1B", "epc_1B", "orig_1K", "epc_1K"},
		[]float64{orig[0], epc[0], orig[1], epc[1]}, "us_virtual")
}

// ---- Figure 4: large-message latency per policy ----

func BenchmarkFig04LargeLatency(b *testing.B) {
	sizes := []int{1 << 20}
	setups := []bench.Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.EPC},
		{QPs: 4, Policy: core.Binding},
		{QPs: 4, Policy: core.EvenStriping},
		{QPs: 4, Policy: core.RoundRobin},
	}
	vals := make([]float64, len(setups))
	for i := 0; i < b.N; i++ {
		for j, s := range setups {
			v, err := bench.Latency(s, sizes, 20, 2)
			if err != nil {
				b.Fatal(err)
			}
			vals[j] = v[0]
		}
	}
	reportSeries(b, []string{"orig", "epc", "binding", "striping", "rr"}, vals, "us_virtual")
}

// ---- Figure 5: small-message uni-directional bandwidth ----

func BenchmarkFig05SmallUniBW(b *testing.B) {
	sizes := []int{4096}
	var orig, epc4 float64
	for i := 0; i < b.N; i++ {
		v, err := bench.UniBandwidth(bench.Setup{QPs: 1, Policy: core.Original}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		orig = v[0]
		v, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc4 = v[0]
	}
	reportSeries(b, []string{"orig_4K", "epc_4K"}, []float64{orig, epc4}, "MBps_virtual")
}

// ---- Figure 6: large-message uni-directional bandwidth ----

func BenchmarkFig06UniBW(b *testing.B) {
	sizes := []int{16 * 1024, 1 << 20}
	var orig, epc, strp []float64
	for i := 0; i < b.N; i++ {
		var err error
		orig, err = bench.UniBandwidth(bench.Setup{QPs: 1, Policy: core.Original}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		strp, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EvenStriping}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"orig_peak", "epc_peak", "striping_16K", "epc_16K"},
		[]float64{orig[1], epc[1], strp[0], epc[0]}, "MBps_virtual")
}

// ---- Figure 7: bi-directional bandwidth ----

func BenchmarkFig07BiBW(b *testing.B) {
	sizes := []int{1 << 20}
	var orig, epc float64
	for i := 0; i < b.N; i++ {
		v, err := bench.BiBandwidth(bench.Setup{QPs: 1, Policy: core.Original}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		orig = v[0]
		v, err = bench.BiBandwidth(bench.Setup{QPs: 4, Policy: core.EPC}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc = v[0]
	}
	reportSeries(b, []string{"orig_peak", "epc_peak"}, []float64{orig, epc}, "MBps_virtual")
}

// ---- Figure 8: Alltoall on 2x4 ----

func BenchmarkFig08Alltoall(b *testing.B) {
	sizes := []int{16 * 1024}
	var orig, epc float64
	for i := 0; i < b.N; i++ {
		v, err := bench.Alltoall(bench.Setup{QPs: 1, Policy: core.Original, PPN: 4}, sizes, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		orig = v[0]
		v, err = bench.Alltoall(bench.Setup{QPs: 4, Policy: core.EPC, PPN: 4}, sizes, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc = v[0]
	}
	reportSeries(b, []string{"orig_16K", "epc_16K"}, []float64{orig, epc}, "us_virtual")
}

// ---- Figures 9-12: NAS kernels ----

func benchNAS(b *testing.B, kernel, class byte, ppn int) {
	b.Helper()
	var orig, epc float64
	for i := 0; i < b.N; i++ {
		var err error
		orig, err = bench.RunNAS(kernel, class, 2, ppn, 1, core.Original)
		if err != nil {
			b.Fatal(err)
		}
		epc, err = bench.RunNAS(kernel, class, 2, ppn, 4, core.EPC)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"orig", "epc"}, []float64{orig, epc}, "s_virtual")
	b.ReportMetric(100*(orig-epc)/orig, "improve_%")
}

func BenchmarkFig09ISClassA(b *testing.B)  { benchNAS(b, 'I', 'A', 1) }
func BenchmarkFig10ISClassB(b *testing.B)  { benchNAS(b, 'I', 'B', 1) }
func BenchmarkFig11FTClassA(b *testing.B)  { benchNAS(b, 'F', 'A', 1) }
func BenchmarkFig12FTClassB(b *testing.B)  { benchNAS(b, 'F', 'B', 1) }
func BenchmarkFig09ISClassA4(b *testing.B) { benchNAS(b, 'I', 'A', 2) }
func BenchmarkFig11FTClassA4(b *testing.B) { benchNAS(b, 'F', 'A', 2) }

// ---- Ablations (DESIGN.md A1-A4) ----

// BenchmarkAblA1RendezvousThreshold sweeps the eager/rendezvous (and
// striping) threshold — why the paper's 16 KB is a sensible choice.
func BenchmarkAblA1RendezvousThreshold(b *testing.B) {
	sizes := []int{16 * 1024}
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, thr := range []int{4 << 10, 16 << 10, 64 << 10} {
			m := model.Default()
			m.RendezvousThreshold = thr
			v, err := bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC, Model: m}, sizes, window, bwIters, bwWarm)
			if err != nil {
				b.Fatal(err)
			}
			vals["thr_"+sizeName(thr)] = v[0]
		}
	}
	for k, v := range vals {
		b.ReportMetric(v, k+"_MBps_virtual")
	}
}

// BenchmarkAblA2EnginesPerPort sweeps the hardware's engine count — when
// extra QPs stop helping.
func BenchmarkAblA2EnginesPerPort(b *testing.B) {
	sizes := []int{1 << 20}
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, eng := range []int{1, 2, 4, 8} {
			m := model.Default()
			m.SendEnginesPerPort = eng
			m.RecvEnginesPerPort = eng
			v, err := bench.UniBandwidth(bench.Setup{QPs: eng, Policy: core.EPC, Model: m}, sizes, window, bwIters, bwWarm)
			if err != nil {
				b.Fatal(err)
			}
			vals["engines_"+itoa(eng)] = v[0]
		}
	}
	for k, v := range vals {
		b.ReportMetric(v, k+"_MBps_virtual")
	}
}

// BenchmarkAblA3RailAxes compares scaling the rail count across QPs, ports
// and HCAs (the §4.1 "future combinations").
func BenchmarkAblA3RailAxes(b *testing.B) {
	sizes := []int{1 << 20}
	type axis struct {
		name  string
		setup bench.Setup
	}
	axes := []axis{
		{"qps4", bench.Setup{QPs: 4, Policy: core.EPC}},
		{"ports2", bench.Setup{QPs: 4, Ports: 2, Policy: core.EPC}},
		{"hcas2", bench.Setup{QPs: 4, Ports: 2, HCAs: 2, Policy: core.EPC}},
	}
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, a := range axes {
			v, err := bench.UniBandwidth(a.setup, sizes, window, bwIters, bwWarm)
			if err != nil {
				b.Fatal(err)
			}
			vals[a.name] = v[0]
		}
	}
	for k, v := range vals {
		b.ReportMetric(v, k+"_MBps_virtual")
	}
}

// BenchmarkAblA4MinStripe sweeps the planner's minimum stripe size — the
// assembly/disassembly cost guard of §3.2.1.
func BenchmarkAblA4MinStripe(b *testing.B) {
	sizes := []int{32 * 1024}
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, ms := range []int{1 << 10, 4 << 10, 16 << 10} {
			m := model.Default()
			m.MinStripe = ms
			v, err := bench.Latency(bench.Setup{QPs: 4, Policy: core.EvenStriping, Model: m}, sizes, 20, 2)
			if err != nil {
				b.Fatal(err)
			}
			vals["min_"+sizeName(ms)] = v[0]
		}
	}
	for k, v := range vals {
		b.ReportMetric(v, k+"_us_virtual")
	}
}

// ---- Sharded-engine rows (cmd/perfgate) ----

// benchShards is the shard count the sharded rows run at; perfgate's
// -shards flag overrides it through the environment.
func benchShards() int {
	if s := os.Getenv("IB12X_BENCH_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// BenchmarkFig06UniBWSharded is the Fig06 EPC leg on the sharded engine
// (the 2-node topology clamps to 2 shards): virtual results are identical
// to BenchmarkFig06UniBW's, so the row isolates the wall-clock and
// allocation cost of the sharding machinery on the allocation-heaviest
// figure.
func BenchmarkFig06UniBWSharded(b *testing.B) {
	sizes := []int{16 * 1024, 1 << 20}
	var epc []float64
	for i := 0; i < b.N; i++ {
		var err error
		epc, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC, Shards: benchShards()},
			sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"epc_16K", "epc_peak"}, []float64{epc[0], epc[1]}, "MBps_virtual")
}

// shardScale256 is the sharded-engine scaling workload: a 256-node
// two-level fat tree (16 nodes per leaf) running a neighbor ring exchange,
// so all 256 nodes are simultaneously active and the event load spreads
// evenly over shards. Serial vs sharded wall clock on this workload is the
// speedup row in BENCH_hotpath.json.
func shardScale256(b *testing.B, shards int) {
	b.Helper()
	s := bench.Setup{QPs: 4, Policy: core.EPC, Nodes: 256, NodesPerSwitch: 16, Shards: shards}
	var worst float64
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			p := c.Size()
			next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
			c.Barrier()
			t0 := c.Time()
			for it := 0; it < 16; it++ {
				c.SendrecvN(next, 0, nil, 256<<10, prev, 0, nil, 256<<10)
			}
			el := []int64{int64(c.Time() - t0)}
			c.AllreduceInt64(el, mpi.Max)
			if c.Rank() == 0 {
				worst = sim.Time(el[0]).Micros()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(worst, "ring_us_virtual")
}

func BenchmarkShardScale256Serial(b *testing.B)  { shardScale256(b, 1) }
func BenchmarkShardScale256Sharded(b *testing.B) { shardScale256(b, benchShards()) }

// ---- Lane-collective rows (cmd/perfgate) ----

// benchLaneAllgather is the lane-vs-striped perfgate pair: the same 256KB
// Allgather on the paper's 2x2 EPC configuration under either algorithm
// family. The virtual per-op time is the figure of merit; ns/op tracks the
// host cost of the lane machinery itself.
func benchLaneAllgather(b *testing.B, alg mpi.CollAlg) {
	b.Helper()
	var v []float64
	for i := 0; i < b.N; i++ {
		var err error
		v, err = bench.Collective(bench.CollAllgather,
			bench.Setup{QPs: 4, Policy: core.EPC, PPN: 2, CollAlg: alg},
			[]int{256 << 10}, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{alg.String() + "_256K"}, []float64{v[0]}, "us_virtual")
}

func BenchmarkLaneAllgather(b *testing.B)        { benchLaneAllgather(b, mpi.CollLane) }
func BenchmarkLaneAllgatherStriped(b *testing.B) { benchLaneAllgather(b, mpi.CollStriped) }

// ---- Eager-channel rows (cmd/perfgate) ----

// benchSmallMsg is the eager-channel perfgate pair: the same 1B/1KB
// ping-pong on the paper's EPC 4QP configuration under either eager
// channel. The virtual latency is the figure of merit; allocs/op is gated
// (the ring's slab and header cache are per-connection state, so the ring
// must not add per-message allocations over the send/recv row).
func benchSmallMsg(b *testing.B, proto adi.EagerProto) {
	b.Helper()
	sizes := []int{1, 1024}
	var v []float64
	for i := 0; i < b.N; i++ {
		var err error
		v, err = bench.Latency(bench.Setup{QPs: 4, Policy: core.EPC, EagerProto: proto}, sizes, latIters, latWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"epc_1B", "epc_1K"}, v, "us_virtual")
}

func BenchmarkSmallMsgLatency(b *testing.B)     { benchSmallMsg(b, adi.EagerSendRecv) }
func BenchmarkSmallMsgLatencyRDMA(b *testing.B) { benchSmallMsg(b, adi.EagerRDMAWrite) }

// BenchmarkFig06Integrity repeats the Figure 6 uni-directional bandwidth
// sweep with end-to-end payload verification armed (DESIGN.md §17). The
// virtual-time metrics show the modeled checksum cost; the host-side
// allocs/op is gated by perfgate against BenchmarkFig06UniBW's — checksum
// capture and verification work in place and must not allocate per payload.
func BenchmarkFig06Integrity(b *testing.B) {
	sizes := []int{16 * 1024, 1 << 20}
	var orig, epc, strp []float64
	for i := 0; i < b.N; i++ {
		var err error
		orig, err = bench.UniBandwidth(bench.Setup{QPs: 1, Policy: core.Original, Integrity: adi.IntegrityVerify},
			sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC, Integrity: adi.IntegrityVerify},
			sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		strp, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EvenStriping, Integrity: adi.IntegrityVerify},
			sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"orig_peak", "epc_peak", "striping_16K", "epc_16K"},
		[]float64{orig[1], epc[1], strp[0], epc[0]}, "MBps_virtual")
}

// BenchmarkFig06ThreeTier repeats the Figure 6 uni-directional bandwidth
// sweep over a routed 1:1 three-tier tree (2 nodes, 1 per leaf, 2 spines,
// adaptive selection) instead of the flat switch. The virtual-time metrics
// must match flat Fig06 within noise (the trunks are not oversubscribed);
// the host-side allocs/op is gated by perfgate against BenchmarkFig06UniBW —
// the per-chunk route walk books lanes in place and must not allocate.
func BenchmarkFig06ThreeTier(b *testing.B) {
	sizes := []int{16 * 1024, 1 << 20}
	tree := func(qps int, policy core.Kind) bench.Setup {
		return bench.Setup{QPs: qps, Policy: policy,
			NodesPerSwitch: 1, Tiers: 3, SpinesPerPod: 2, Routing: fabric.RouteAdaptive}
	}
	var orig, epc, strp []float64
	for i := 0; i < b.N; i++ {
		var err error
		orig, err = bench.UniBandwidth(tree(1, core.Original), sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		epc, err = bench.UniBandwidth(tree(4, core.EPC), sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		strp, err = bench.UniBandwidth(tree(4, core.EvenStriping), sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, []string{"orig_peak", "epc_peak", "striping_16K", "epc_16K"},
		[]float64{orig[1], epc[1], strp[0], epc[0]}, "MBps_virtual")
}

// BenchmarkSimulatorThroughput measures host-side simulation speed: virtual
// seconds simulated per wall second for a saturated bandwidth run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sizes := []int{1 << 20}
	var virtual sim.Time
	for i := 0; i < b.N; i++ {
		v, err := bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		_ = v
		virtual += sim.FromSeconds(float64(bwIters*window*sizes[0]) / (v[0] * 1e6))
	}
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual_s/wall_s")
}

func sizeName(n int) string {
	if n >= 1024 {
		return itoa(n/1024) + "K"
	}
	return itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- Supplementary benches: the beyond-the-paper features ----

// BenchmarkExtRGETRendezvous compares the two rendezvous engines at 64 KB,
// where RGET's saved CTS flight shows most.
func BenchmarkExtRGETRendezvous(b *testing.B) {
	sizes := []int{64 * 1024}
	var put, get float64
	for i := 0; i < b.N; i++ {
		v, err := bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		put = v[0]
		v, err = bench.UniBandwidth(bench.Setup{QPs: 4, Policy: core.EPC, Rndv: adi.RndvRead}, sizes, window, bwIters, bwWarm)
		if err != nil {
			b.Fatal(err)
		}
		get = v[0]
	}
	reportSeries(b, []string{"rput_64K", "rget_64K"}, []float64{put, get}, "MBps_virtual")
}

// BenchmarkExtOversubscription measures the 4:1 fat-tree penalty on a
// bisection exchange.
func BenchmarkExtOversubscription(b *testing.B) {
	m := model.Default()
	run := func(trunk float64) float64 {
		s := bench.Setup{QPs: 4, Policy: core.EPC, Nodes: 8, NodesPerSwitch: 4, TrunkRate: trunk}
		var worst float64
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			p := c.Size()
			peer := (c.Rank() + p/2) % p
			c.Barrier()
			t0 := c.Time()
			for it := 0; it < bwIters; it++ {
				c.SendrecvN(peer, 0, nil, 1<<20, peer, 0, nil, 1<<20)
			}
			el := []int64{int64(c.Time() - t0)}
			c.AllreduceInt64(el, mpi.Max)
			if c.Rank() == 0 {
				worst = sim.Time(el[0]).Micros() / bwIters
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return worst
	}
	var full, quarter float64
	for i := 0; i < b.N; i++ {
		full = run(m.LinkRawRate * 4)
		quarter = run(m.LinkRawRate)
	}
	reportSeries(b, []string{"trunk_1to1", "trunk_4to1"}, []float64{full, quarter}, "us_virtual")
}

// BenchmarkExtFaultyFabric measures retransmission cost at a 1-in-16 chunk
// loss rate.
func BenchmarkExtFaultyFabric(b *testing.B) {
	run := func(fault int64) float64 {
		cfg := bench.Setup{QPs: 4, Policy: core.EPC}.Config()
		cfg.FaultEvery = fault
		var el float64
		_, err := mpi.Run(cfg, func(c *mpi.Comm) {
			if c.Rank() == 0 {
				t0 := c.Time()
				for i := 0; i < 8; i++ {
					c.SendN(1, i, nil, 1<<20)
				}
				el = (c.Time() - t0).Seconds()
			} else {
				for i := 0; i < 8; i++ {
					c.RecvN(0, i, nil, 1<<20)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return 8 * (1 << 20) / el / 1e6
	}
	var clean, lossy float64
	for i := 0; i < b.N; i++ {
		clean = run(0)
		lossy = run(16)
	}
	reportSeries(b, []string{"clean", "lossy_1in16"}, []float64{clean, lossy}, "MBps_virtual")
}

// BenchmarkExtLUWavefront times the small-message pipelined kernel.
func BenchmarkExtLUWavefront(b *testing.B) { benchNAS(b, 'L', 'W', 2) }

// BenchmarkExtOneSided measures striped one-sided Put bandwidth.
func BenchmarkExtOneSided(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		cfg := bench.Setup{QPs: 4, Policy: core.EPC}.Config()
		_, err := mpi.Run(cfg, func(c *mpi.Comm) {
			w := c.WinCreate(nil, 1<<20)
			c.Barrier()
			t0 := c.Time()
			if c.Rank() == 0 {
				for it := 0; it < 16; it++ {
					w.PutN(1, 0, nil, 1<<20)
				}
			}
			w.Fence()
			if c.Rank() == 0 {
				bw = 16 * float64(1<<20) / (c.Time() - t0).Seconds() / 1e6
			}
			w.Free()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bw, "put_MBps_virtual")
}
