package main

import (
	"testing"

	"ib12x/internal/core"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]core.Kind{
		"original": core.Original, "orig": core.Original,
		"binding": core.Binding, "rr": core.RoundRobin,
		"round-robin": core.RoundRobin, "striping": core.EvenStriping,
		"weighted": core.WeightedStriping, "EPC": core.EPC, "epc": core.EPC,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1024, 2048,4096", "unibw")
	if err != nil || len(got) != 3 || got[1] != 2048 {
		t.Errorf("parseSizes = %v, %v", got, err)
	}
	if _, err := parseSizes("12,-5", "unibw"); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := parseSizes("abc", "unibw"); err == nil {
		t.Error("non-numeric size accepted")
	}
	// Defaults differ per test type.
	lat, _ := parseSizes("", "latency")
	bw, _ := parseSizes("", "unibw")
	if lat[0] != 1 || bw[0] != 1024 {
		t.Errorf("default sweeps: lat starts %d, bw starts %d", lat[0], bw[0])
	}
}
