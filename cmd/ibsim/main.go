// Command ibsim runs one micro-benchmark on the simulated IBM 12x cluster
// with full control over the configuration — the exploratory counterpart of
// cmd/reproduce.
//
// Examples:
//
//	ibsim -test latency -policy epc -qps 4 -sizes 1024,65536,1048576
//	ibsim -test unibw -policy striping -qps 4
//	ibsim -test alltoall -ppn 4 -policy epc -qps 4 -sizes 16384,262144
//	ibsim -test bibw -policy original -ports 2 -hcas 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ib12x/internal/adi"
	"ib12x/internal/bench"
	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
	"ib12x/internal/stats"
	"ib12x/internal/trace"
)

func main() {
	test := flag.String("test", "latency", "latency | unibw | bibw | msgrate | alltoall | bcast | allgather | allreduce")
	policy := flag.String("policy", "epc", "original | binding | rr | striping | weighted | epc")
	qps := flag.Int("qps", 4, "QPs per port (rails per port)")
	ports := flag.Int("ports", 1, "ports per HCA (the IBM HCA is dual-port)")
	hcas := flag.Int("hcas", 1, "HCAs per node")
	nodes := flag.Int("nodes", 2, "nodes")
	ppn := flag.Int("ppn", 1, "processes per node")
	perLeaf := flag.Int("leaf", 0, "nodes per leaf switch (0 = single switch)")
	oversub := flag.Float64("oversub", 1, "fat-tree trunk oversubscription factor (with -leaf)")
	sizesArg := flag.String("sizes", "", "comma-separated message sizes (default: a doubling sweep)")
	iters := flag.Int("iters", 0, "measured iterations (defaults per test)")
	warmup := flag.Int("warmup", 0, "warm-up iterations (defaults per test)")
	window := flag.Int("window", 64, "bandwidth window size (paper §4.2: 64)")
	rndv := flag.String("rndv", "put", "rendezvous protocol: put (RPUT, the paper's) | get (RGET)")
	report := flag.Bool("report", false, "print a hardware utilization report for the last size")
	traceN := flag.Int("trace", 0, "print the first N protocol events for the last size")
	flag.Parse()

	kind, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(2)
	}
	setup := bench.Setup{
		QPs: *qps, Policy: kind,
		Nodes: *nodes, PPN: *ppn, Ports: *ports, HCAs: *hcas,
	}
	if *perLeaf > 0 {
		setup.NodesPerSwitch = *perLeaf
		setup.TrunkRate = model.Default().LinkRawRate * float64(*perLeaf) / *oversub
	}
	switch strings.ToLower(*rndv) {
	case "put", "rput", "write":
		setup.Rndv = adi.RndvWrite
	case "get", "rget", "read":
		setup.Rndv = adi.RndvRead
	default:
		fmt.Fprintf(os.Stderr, "ibsim: unknown rendezvous protocol %q\n", *rndv)
		os.Exit(2)
	}

	sizes, err := parseSizes(*sizesArg, *test)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(2)
	}

	vals, unit, err := dispatch(*test, setup, sizes, *window, *iters, *warmup)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(1)
	}
	if *report || *traceN > 0 {
		if err := inspect(*test, setup, sizes[len(sizes)-1], *window, *report, *traceN); err != nil {
			fmt.Fprintln(os.Stderr, "ibsim:", err)
			os.Exit(1)
		}
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("%s  [%s, %d node(s) x %d proc(s), %d HCA x %d port x %d QP]", *test, setup.Label(), *nodes, *ppn, *hcas, *ports, *qps),
		XLabel: "Size", Unit: unit,
	}
	for i, n := range sizes {
		t.Add(setup.Label(), n, vals[i])
	}
	fmt.Println(t.Format())
}

// inspect reruns the last size with a recorder attached and prints the
// requested introspection.
func inspect(test string, s bench.Setup, size, window int, report bool, traceN int) error {
	rec := trace.NewRecorder(0)
	cfg := s.Config()
	cfg.Trace = rec
	var end sim.Time
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
		switch test {
		case "latency":
			if c.Rank() == 0 {
				c.SendN(1, 0, nil, size)
				c.RecvN(1, 0, nil, size)
			} else if c.Rank() == 1 {
				c.RecvN(0, 0, nil, size)
				c.SendN(0, 0, nil, size)
			}
		case "alltoall":
			c.Alltoall(nil, size, nil)
		default: // bandwidth-style window
			reqs := make([]*mpi.Request, window)
			if c.Rank() == 0 {
				for w := range reqs {
					reqs[w] = c.IsendN(1, 0, nil, size)
				}
				c.Waitall(reqs)
			} else if c.Rank() == 1 {
				for w := range reqs {
					reqs[w] = c.IrecvN(0, 0, nil, size)
				}
				c.Waitall(reqs)
			}
		}
		if c.Rank() == 0 {
			end = c.Time()
		}
	})
	if err != nil {
		return err
	}
	if traceN > 0 {
		fmt.Printf("---- first %d protocol events (one operation at %s) ----\n", traceN, stats.FormatSize(size))
		fmt.Print(rec.Timeline(traceN))
		fmt.Println("---- event summary ----")
		fmt.Print(rec.Summary())
	}
	if report {
		fmt.Println("---- hardware report ----")
		fmt.Print(bench.Report(rep.World, end))
	}
	return nil
}

func dispatch(test string, s bench.Setup, sizes []int, window, iters, warmup int) ([]float64, string, error) {
	def := func(v, d int) int {
		if v > 0 {
			return v
		}
		return d
	}
	switch test {
	case "latency":
		v, err := bench.Latency(s, sizes, def(iters, 200), def(warmup, 20))
		return v, "us", err
	case "unibw":
		v, err := bench.UniBandwidth(s, sizes, window, def(iters, 20), def(warmup, 2))
		return v, "MB/s", err
	case "bibw":
		v, err := bench.BiBandwidth(s, sizes, window, def(iters, 20), def(warmup, 2))
		return v, "MB/s", err
	case "msgrate":
		r, err := bench.MessageRate(s, window, def(iters, 20), def(warmup, 2))
		out := make([]float64, len(sizes))
		for i := range out {
			out[i] = r
		}
		return out, "Mmsg/s", err
	case "alltoall":
		v, err := bench.Alltoall(s, sizes, def(iters, 20), def(warmup, 2))
		return v, "us", err
	case "bcast":
		v, err := bench.Collective(bench.CollBcast, s, sizes, def(iters, 20), def(warmup, 2))
		return v, "us", err
	case "allgather":
		v, err := bench.Collective(bench.CollAllgather, s, sizes, def(iters, 20), def(warmup, 2))
		return v, "us", err
	case "allreduce":
		v, err := bench.Collective(bench.CollAllreduce, s, sizes, def(iters, 20), def(warmup, 2))
		return v, "us", err
	default:
		return nil, "", fmt.Errorf("unknown test %q", test)
	}
}

func parsePolicy(s string) (core.Kind, error) {
	switch strings.ToLower(s) {
	case "original", "orig":
		return core.Original, nil
	case "binding", "bind":
		return core.Binding, nil
	case "rr", "roundrobin", "round-robin":
		return core.RoundRobin, nil
	case "striping", "stripe", "even-striping":
		return core.EvenStriping, nil
	case "weighted":
		return core.WeightedStriping, nil
	case "epc":
		return core.EPC, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func parseSizes(arg, test string) ([]int, error) {
	if arg == "" {
		if test == "latency" {
			return bench.Sizes(1, 1<<20), nil
		}
		return bench.Sizes(1024, 1<<20), nil
	}
	var out []int
	for _, f := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
