package main

import (
	"testing"

	"ib12x/internal/bench"
	"ib12x/internal/core"
)

func TestDispatchAllTests(t *testing.T) {
	s := bench.Setup{QPs: 2, Policy: core.EPC}
	cases := []struct {
		test string
		unit string
	}{
		{"latency", "us"},
		{"unibw", "MB/s"},
		{"bibw", "MB/s"},
		{"alltoall", "us"},
		{"bcast", "us"},
		{"allgather", "us"},
		{"allreduce", "us"},
	}
	for _, c := range cases {
		setup := s
		if c.test == "alltoall" || c.test == "bcast" || c.test == "allgather" || c.test == "allreduce" {
			setup.PPN = 2
		}
		vals, unit, err := dispatch(c.test, setup, []int{4096}, 16, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.test, err)
		}
		if unit != c.unit || len(vals) != 1 || vals[0] <= 0 {
			t.Errorf("%s: vals=%v unit=%q", c.test, vals, unit)
		}
	}
	if _, _, err := dispatch("bogus", s, []int{1}, 1, 1, 1); err == nil {
		t.Error("bogus test accepted")
	}
}
