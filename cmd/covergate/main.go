// Covergate enforces the statement-coverage floor. It parses one or more Go
// cover profiles (mode: set/count/atomic), merges blocks that appear in
// several profiles (a block is covered if any profile covered it), computes
// the covered-statement percentage, and compares it to the floor recorded
// in COVERAGE.txt. The gate fails when coverage drops more than the epsilon
// below the floor; -record rewrites the floor from the current measurement.
//
// Usage:
//
//	go test -coverprofile=cover.out ./internal/...
//	go run ./cmd/covergate -profile cover.out [-floor COVERAGE.txt] [-record]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// epsilon absorbs noise from test-order or timing-dependent paths; real
// coverage regressions are much larger than a tenth of a point.
const epsilon = 0.1

// block identifies one source region of a cover profile line.
type block struct {
	pos   string // file:startLine.startCol,endLine.endCol
	stmts int
}

func main() {
	profile := flag.String("profile", "cover.out", "comma-separated cover profile path(s)")
	floorFile := flag.String("floor", "COVERAGE.txt", "file holding the coverage floor percentage")
	record := flag.Bool("record", false, "rewrite the floor from the current measurement")
	flag.Parse()

	covered := map[block]bool{}
	for _, p := range strings.Split(*profile, ",") {
		if err := readProfile(strings.TrimSpace(p), covered); err != nil {
			fatalf("reading %s: %v", p, err)
		}
	}
	if len(covered) == 0 {
		fatalf("no coverage blocks found in %s", *profile)
	}

	var total, hit int
	for b, ok := range covered {
		total += b.stmts
		if ok {
			hit += b.stmts
		}
	}
	pct := 100 * float64(hit) / float64(total)

	if *record {
		body := fmt.Sprintf("%s%.1f\n", floorHeader, pct)
		if err := os.WriteFile(*floorFile, []byte(body), 0o644); err != nil {
			fatalf("recording floor: %v", err)
		}
		fmt.Printf("covergate: recorded floor %.1f%% (%d/%d statements) to %s\n", pct, hit, total, *floorFile)
		return
	}

	floor, err := readFloor(*floorFile)
	if err != nil {
		fatalf("reading floor: %v", err)
	}
	if pct+epsilon < floor {
		fatalf("coverage %.1f%% fell below the %.1f%% floor in %s (%d/%d statements)",
			pct, floor, *floorFile, hit, total)
	}
	fmt.Printf("covergate: %.1f%% >= %.1f%% floor (%d/%d statements)\n", pct, floor, hit, total)
}

// readProfile folds one cover profile into the block map. A block already
// present stays covered if any profile covered it.
func readProfile(path string, covered map[block]bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file:start,end numStmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("malformed statement count in %q", line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("malformed hit count in %q", line)
		}
		b := block{pos: fields[0], stmts: stmts}
		covered[b] = covered[b] || count > 0
	}
	return sc.Err()
}

// readFloor parses the floor percentage, tolerating comments and blank lines.
// floorHeader keeps the floor file self-documenting across -record
// rewrites (readFloor skips # lines).
const floorHeader = `# Statement-coverage floor for internal/{core,adi,sim,chaos,buf,harness,regcache,fabric,topo},
# enforced by ` + "`make cover`" + ` (cmd/covergate). Re-record with
#   go run ./cmd/covergate -record
# only when a PR legitimately moves coverage.
`

func readFloor(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSuffix(line, "%"), 64)
	}
	return 0, fmt.Errorf("no floor value in %s", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covergate: "+format+"\n", args...)
	os.Exit(1)
}
