// Command reproduce regenerates every figure of the paper "High Performance
// MPI on IBM 12x InfiniBand Architecture" (IPDPS 2007) on the simulated
// testbed, printing each as a text table plus the paper-vs-measured summary.
//
// Usage:
//
//	reproduce -fig all          # everything (default)
//	reproduce -fig 6            # one figure
//	reproduce -fig headline     # the §1 summary numbers
//	reproduce -extra            # supplementary tables beyond the paper
//	reproduce -quick            # reduced iteration counts
package main

import (
	"flag"
	"fmt"
	"os"

	"ib12x/internal/bench"
	"ib12x/internal/harness"
	"ib12x/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3..12, headline, or all")
	quickFlag := flag.Bool("quick", false, "reduced iteration counts (faster, slightly noisier pipelines)")
	extra := flag.Bool("extra", false, "also print the supplementary tables beyond the paper's figures")
	flag.Parse()

	o := bench.FigOpts{Quick: *quickFlag}
	if err := run(*fig, o); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
	if *extra {
		if err := supplementary(o); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
}

// supplementary prints the beyond-the-paper tables: the rest of the
// collective suite, the stencil pattern and scalability sweep from the
// conclusions' future work, the rendezvous-protocol comparison, the
// one-rail-dead bandwidth sweep under the self-healing reliability layer,
// the lane-decomposed vs transport-striped collective ablation, the
// RDMA-write eager ring vs send/recv small-message latency floor, the
// pin-down registration cache cold/warm bandwidth split, and the "no
// degradation on other NAS kernels" check.
func supplementary(o bench.FigOpts) error {
	gens := []func(bench.FigOpts) (*stats.Table, error){
		func(o bench.FigOpts) (*stats.Table, error) { return bench.CollectiveTable(bench.CollBcast, o) },
		func(o bench.FigOpts) (*stats.Table, error) { return bench.CollectiveTable(bench.CollAllgather, o) },
		func(o bench.FigOpts) (*stats.Table, error) { return bench.CollectiveTable(bench.CollAllreduce, o) },
		bench.StencilTable,
		bench.ScalingTable,
		bench.RendezvousTable,
		bench.AlltoallAlgTable,
		bench.OversubscriptionTable,
		bench.HCAGenerationTable,
		bench.DegradedRailTable,
		bench.LaneCollTable,
		bench.EagerLatencyTable,
		bench.RegCacheTable,
		bench.IntegrityOverheadTable,
		func(bench.FigOpts) (*stats.Table, error) { return bench.NoDegradationTable() },
	}
	// Each generator runs its own simulations against a fresh world, so the
	// set fans out across the harness pool; printing stays in order, so the
	// output is byte-identical to a serial loop.
	tables, err := harness.Map(gens, func(g func(bench.FigOpts) (*stats.Table, error)) (string, error) {
		t, err := g(o)
		if err != nil {
			return "", err
		}
		return t.Format(), nil
	})
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	return nil
}

func run(fig string, o bench.FigOpts) error {
	type gen struct {
		name  string
		notes string
		fn    func(bench.FigOpts) (*stats.Table, error)
	}
	gens := map[string]gen{
		"3": {"Figure 3", "paper: the enhanced design adds no overhead for small messages",
			bench.Fig3},
		"4": {"Figure 4", "paper: EPC ≈ even striping lead; ~33-41% improvement over original; binding/round robin flat",
			bench.Fig4},
		"5": {"Figure 5", "paper: multi-QP round robin (EPC) gains past 1KB",
			bench.Fig5},
		"6": {"Figure 6", "paper: peaks 2745 (EPC) vs 1661 MB/s (original); striping dips at medium sizes",
			bench.Fig6},
		"7": {"Figure 7", "paper: peaks 5362 (EPC) vs ~3100 MB/s (original)",
			bench.Fig7},
		"8": {"Figure 8", "paper: EPC best for Alltoall on 2x4, improvement even at medium sizes",
			bench.Fig8},
		"9": {"Figure 9 (NAS IS class A)", "paper: 13% / 8% faster at 2 / 4 procs with EPC",
			func(o bench.FigOpts) (*stats.Table, error) { return bench.NASFig('I', 'A', o) }},
		"10": {"Figure 10 (NAS IS class B)", "paper: 9% / 7% faster at 2 / 4 procs",
			func(o bench.FigOpts) (*stats.Table, error) { return bench.NASFig('I', 'B', o) }},
		"11": {"Figure 11 (NAS FT class A)", "paper: ~5-7% faster",
			func(o bench.FigOpts) (*stats.Table, error) { return bench.NASFig('F', 'A', o) }},
		"12": {"Figure 12 (NAS FT class B)", "paper: ~5-7% faster",
			func(o bench.FigOpts) (*stats.Table, error) { return bench.NASFig('F', 'B', o) }},
	}
	order := []string{"3", "4", "5", "6", "7", "8", "9", "10", "11", "12"}

	if fig == "headline" || fig == "all" {
		if err := headline(o); err != nil {
			return err
		}
		if fig == "headline" {
			return nil
		}
		fmt.Println()
	}
	var selected []string
	for _, k := range order {
		if fig == "all" || fig == k {
			selected = append(selected, k)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown figure %q (want 3..12, headline, all)", fig)
	}
	// Every figure generator builds fresh simulations, so the whole sweep
	// fans out over the harness pool; results print in figure order, making
	// the output byte-identical to the serial loop regardless of worker
	// count.
	tables, err := harness.Map(selected, func(k string) (string, error) {
		t, err := gens[k].fn(o)
		if err != nil {
			return "", err
		}
		return t.Format(), nil
	})
	if err != nil {
		return err
	}
	for i, k := range selected {
		g := gens[k]
		fmt.Printf("==== %s ====\n(%s)\n", g.name, g.notes)
		fmt.Println(tables[i])
	}
	return nil
}

func headline(o bench.FigOpts) error {
	h, err := o.Measure()
	if err != nil {
		return err
	}
	fmt.Println("==== Headline numbers (paper §1 / §4.3) ====")
	fmt.Printf("%-34s %10s %10s\n", "", "paper", "measured")
	fmt.Printf("%-34s %10s %9.0f%%\n", "ping-pong latency improvement", "41%", h.LatencyImprovePct)
	fmt.Printf("%-34s %10s %10.0f\n", "uni-dir peak, original (MB/s)", "1661", h.UniPeakOrig)
	fmt.Printf("%-34s %10s %10.0f\n", "uni-dir peak, EPC (MB/s)", "2745", h.UniPeakEPC)
	fmt.Printf("%-34s %10s %9.0f%%\n", "uni-dir improvement", "63-65%", h.UniGainPct)
	fmt.Printf("%-34s %10s %10.0f\n", "bi-dir peak, original (MB/s)", "~3100", h.BiPeakOrig)
	fmt.Printf("%-34s %10s %10.0f\n", "bi-dir peak, EPC (MB/s)", "5362", h.BiPeakEPC)
	fmt.Printf("%-34s %10s %9.0f%%\n", "bi-dir improvement", "63-65%", h.BiGainPct)
	return nil
}
