// Command perfgate runs the hot-path wall-clock benchmarks
// (BenchmarkFig04/06/07/08 with -benchmem), records the results in
// BENCH_hotpath.json next to the seed baseline, and — in gate mode —
// fails if any gated figure regresses past its budget.
//
// Usage:
//
//	perfgate                 # run, print, write BENCH_hotpath.json
//	perfgate -gate           # also enforce the per-figure floors
//	perfgate -benchtime 5x   # more iterations (steadier numbers)
//	perfgate -samples 5      # repeat each benchmark, report mean ± stddev
//	perfgate -shards 8       # shard count for the sharded-engine rows
//	perfgate -o path.json    # alternate output file
//
// The test binary is compiled once; each (benchmark, sample) cell then
// runs as its own child process, fanned out over the harness pool. The
// virtual-time results inside every simulation are deterministic, so
// parallel cells only affect wall-clock noise: allocs/op is exact
// regardless of concurrency, and ns/op on a loaded multicore machine is
// read as "loaded machine" — force IB12X_WORKERS=1 for quiet timings.
//
// Gates: BenchmarkFig06UniBW (the window-64 bandwidth sweep, the
// allocation-heaviest figure) must hold ns/op at least 25% below the
// seed and allocs/op at least 50% below it (with -samples > 1 the ns
// gate judges the fastest sample — background load only ever inflates
// wall clock). The zero-copy payload path
// cut the other figures' allocations by >90% as well, so Fig04/Fig07/
// Fig08 gate allocs/op too (allocation counts are exact, so the floors
// are tight); their ns/op is recorded but not gated — those runs are
// shorter and noisier on shared machines.
//
// The lane-collective rows (BenchmarkLaneAllgather and its striped
// shadow) are recorded without a gate: they expose the host-side cost of
// the lane-decomposed collective machinery next to the reference row.
//
// The eager-channel rows (BenchmarkSmallMsgLatency and its RDMA-write
// shadow) gate against each other: the ring row's allocs/op must stay
// within a small slack of the send/recv row's, so per-message garbage on
// the ring fast path fails the gate even though the pair has no seed
// baseline.
//
// The integrity row (BenchmarkFig06Integrity, the Fig06 sweep with
// end-to-end verification armed) gates the same way against the
// unprotected Fig06 run: checksum capture and verification must stay
// allocation-free per payload.
//
// The routing row (BenchmarkFig06ThreeTier, the Fig06 sweep over a routed
// 1:1 three-tier tree with adaptive selection) gates the same way against
// the flat Fig06 run: the per-chunk route walk and its lane bookings must
// stay allocation-free.
//
// The sharded-engine rows (BenchmarkFig06UniBWSharded and the
// BenchmarkShardScale256 serial/sharded pair) have no seed baseline; the
// 256-node pair is instead compared against itself, and the gate requires
// the sharded run to beat serial by at least 1.5x wall clock. Those cells
// run sequentially after the pool drains — a sharded simulation spreads
// over several OS threads, so the comparison is only honest on an
// otherwise idle machine. On a host without parallel hardware
// (runtime.NumCPU() < 2) the speedup row still records what the machine
// measured — there it is the pure synchronization overhead of the
// conservative protocol — but the floor is not enforced: a parallel
// speedup cannot exist without a second core. The report's "cpus" field
// says which reading applies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ib12x/internal/harness"
)

// seedBaseline holds the pre-overhaul numbers, measured on the growth
// seed with `go test -bench ... -benchmem -benchtime 3x` (single run;
// ns/op is machine-dependent, allocs/op is exact).
var seedBaseline = map[string]Result{
	"BenchmarkFig04LargeLatency": {NsPerOp: 30487433, AllocsPerOp: 119238},
	"BenchmarkFig06UniBW":        {NsPerOp: 182581294, AllocsPerOp: 1140271},
	"BenchmarkFig07BiBW":         {NsPerOp: 164104600, AllocsPerOp: 1137865},
	"BenchmarkFig08Alltoall":     {NsPerOp: 17535687, AllocsPerOp: 110807},
}

// gate is one benchmark's budget, expressed as the fraction of the seed
// value that must be shaved. nsFloor 0 means ns/op is not gated.
type gateSpec struct {
	nsFloor    float64
	allocFloor float64
}

// gates: Fig06 carries the headline ns+alloc floor; the other figures
// gate allocations only. The alloc floors sit far above the measured
// post-overhaul counts (98%+ cuts) but far below the seed, so they trip
// on any real leak of per-chunk or per-WR garbage without flaking.
var gates = map[string]gateSpec{
	"BenchmarkFig06UniBW":        {nsFloor: 0.25, allocFloor: 0.50},
	"BenchmarkFig04LargeLatency": {allocFloor: 0.80},
	"BenchmarkFig07BiBW":         {allocFloor: 0.80},
	"BenchmarkFig08Alltoall":     {allocFloor: 0.80},
}

// Sharded-engine rows. These have no seed baseline (the seed had no
// sharded engine); the serial/sharded pair on the 256-node fat-tree ring
// is compared against each other instead, and the gate requires the
// sharded run to hold at least shardSpeedupFloor× the serial wall clock.
const (
	shardSerialBench  = "BenchmarkShardScale256Serial"
	shardShardedBench = "BenchmarkShardScale256Sharded"
	shardFig06Bench   = "BenchmarkFig06UniBWSharded"

	shardSpeedupFloor = 1.5
)

var shardBenches = []string{shardFig06Bench, shardSerialBench, shardShardedBench}

// Lane-collective rows: the 256KB Allgather under the lane-decomposed and
// the striped reference algorithm. No seed baseline (the seed had no lane
// collectives) and no gate; the pair is recorded so the host-side cost of
// the lane machinery is visible next to the reference row it shadows.
var laneBenches = []string{"BenchmarkLaneAllgather", "BenchmarkLaneAllgatherStriped"}

// Eager-channel rows: the 1B/1KB EPC ping-pong under the send/recv
// channel and the RDMA-write ring. No seed baseline (the seed had one
// eager channel); instead the pair gates against itself — the ring's slab
// and header cache are per-connection state allocated at world build, so
// the RDMA row's allocs/op must stay within eagerAllocSlackPct (plus a
// small absolute headroom for those per-world allocations) of the
// send/recv row. Any per-message garbage on the ring fast path trips it.
var eagerBenches = []string{"BenchmarkSmallMsgLatency", "BenchmarkSmallMsgLatencyRDMA"}

const (
	eagerAllocSlackPct  = 10
	eagerAllocHeadroom  = 256
	eagerSendRecvBench  = "BenchmarkSmallMsgLatency"
	eagerRDMAWriteBench = "BenchmarkSmallMsgLatencyRDMA"
)

// Integrity row: the Figure 6 sweep with end-to-end payload verification
// armed. No seed baseline (the seed had no integrity model); the row gates
// against the unprotected Fig06 run instead — its allocs/op must stay
// within a small slack (plus absolute headroom for the per-world checksum
// state) of BenchmarkFig06UniBW's, so checksum capture and verification
// stay allocation-free per payload.
var integrityBenches = []string{"BenchmarkFig06Integrity"}

const (
	integrityAllocSlackPct = 10
	integrityAllocHeadroom = 512
	integrityBench         = "BenchmarkFig06Integrity"
	integrityBaseBench     = "BenchmarkFig06UniBW"
)

// Routing row: the Figure 6 sweep over a routed 1:1 three-tier tree with
// adaptive path selection. No seed baseline (the seed had a flat switch);
// the row gates against the flat Fig06 run — its allocs/op must stay
// within a small slack (plus absolute headroom for the per-world switch
// graph) of BenchmarkFig06UniBW's, so the per-chunk route walk and lane
// bookings stay allocation-free.
var routingBenches = []string{"BenchmarkFig06ThreeTier"}

const (
	routingAllocSlackPct = 10
	routingAllocHeadroom = 512
	routingBench         = "BenchmarkFig06ThreeTier"
	routingBaseBench     = "BenchmarkFig06UniBW"
)

// Result is one benchmark measurement. With -samples > 1 the fields are
// means across samples, NsStddev carries the ns/op spread, and NsMin the
// fastest sample — the least noise-inflated wall-clock estimate, which
// is what the ns gate judges.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsStddev    float64 `json:"ns_stddev,omitempty"`
	NsMin       float64 `json:"ns_min,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// SpeedupVsSerial is set on the sharded 256-node scaling row: serial
	// wall clock over sharded wall clock on the same workload.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// gateNs is the ns/op value a gate judges: the fastest sample when
// several were taken (background load only ever inflates wall clock),
// else the single measurement.
func (r Result) gateNs() float64 {
	if r.NsMin > 0 {
		return r.NsMin
	}
	return r.NsPerOp
}

// Report is the BENCH_hotpath.json document.
type Report struct {
	Date      string            `json:"date"`
	Benchtime string            `json:"benchtime"`
	Samples   int               `json:"samples,omitempty"`
	CPUs      int               `json:"cpus"`
	Shards    int               `json:"shards"`
	Seed      map[string]Result `json:"seed"`
	Current   map[string]Result `json:"current"`
}

func main() {
	gate := flag.Bool("gate", false, "fail unless every per-figure floor holds")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	samples := flag.Int("samples", 1, "runs per benchmark; >1 reports mean ± stddev")
	shards := flag.Int("shards", 4, "shard count for the sharded-engine rows")
	out := flag.String("o", "BENCH_hotpath.json", "output file")
	flag.Parse()

	if *samples < 1 {
		*samples = 1
	}
	if *shards < 2 {
		*shards = 2
	}
	current, err := runBenchmarks(*benchtime, *samples, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
	if ser, ok := current[shardSerialBench]; ok {
		if sh, ok := current[shardShardedBench]; ok && sh.gateNs() > 0 {
			sh.SpeedupVsSerial = ser.gateNs() / sh.gateNs()
			current[shardShardedBench] = sh
		}
	}

	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Benchtime: *benchtime,
		CPUs:      runtime.NumCPU(),
		Shards:    *shards,
		Seed:      seedBaseline,
		Current:   current,
	}
	if *samples > 1 {
		rep.Samples = *samples
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}

	for _, name := range benchNames() {
		seed := seedBaseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-28s (missing)\n", name)
			continue
		}
		spread := ""
		if cur.NsStddev > 0 {
			spread = fmt.Sprintf(" ±%.0f", cur.NsStddev)
		}
		fmt.Printf("%-28s ns/op %12.0f%s (seed %12.0f, %+6.1f%%)  allocs/op %9d (seed %9d, %+6.1f%%)\n",
			name, cur.NsPerOp, spread, seed.NsPerOp, pct(cur.NsPerOp, seed.NsPerOp),
			cur.AllocsPerOp, seed.AllocsPerOp, pct(float64(cur.AllocsPerOp), float64(seed.AllocsPerOp)))
	}
	for _, name := range append(append(append(append(laneBenches, eagerBenches...), integrityBenches...), routingBenches...), shardBenches...) {
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-30s (missing)\n", name)
			continue
		}
		spread := ""
		if cur.NsStddev > 0 {
			spread = fmt.Sprintf(" ±%.0f", cur.NsStddev)
		}
		extra := ""
		if cur.SpeedupVsSerial > 0 {
			extra = fmt.Sprintf("  speedup %.2fx vs serial at %d shards", cur.SpeedupVsSerial, *shards)
		}
		fmt.Printf("%-30s ns/op %12.0f%s  allocs/op %9d%s\n",
			name, cur.NsPerOp, spread, cur.AllocsPerOp, extra)
	}
	fmt.Println("wrote", *out)

	if *gate {
		failed := false
		for _, name := range benchNames() {
			g, gated := gates[name]
			if !gated {
				continue
			}
			cur, ok := current[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "perfgate: gated benchmark %s missing from output\n", name)
				failed = true
				continue
			}
			seed := seedBaseline[name]
			if g.nsFloor > 0 && cur.gateNs() > seed.NsPerOp*(1-g.nsFloor) {
				fmt.Fprintf(os.Stderr, "perfgate: %s ns/op %.0f exceeds the budget %.0f (seed %.0f - %.0f%%); rerun with -samples 3 on a noisy machine\n",
					name, cur.gateNs(), seed.NsPerOp*(1-g.nsFloor), seed.NsPerOp, g.nsFloor*100)
				failed = true
			}
			if float64(cur.AllocsPerOp) > float64(seed.AllocsPerOp)*(1-g.allocFloor) {
				fmt.Fprintf(os.Stderr, "perfgate: %s allocs/op %d exceeds the budget %.0f (seed %d - %.0f%%)\n",
					name, cur.AllocsPerOp, float64(seed.AllocsPerOp)*(1-g.allocFloor), seed.AllocsPerOp, g.allocFloor*100)
				failed = true
			}
		}
		sh, ok := current[shardShardedBench]
		shardNote := ""
		switch {
		case !ok || sh.SpeedupVsSerial == 0:
			fmt.Fprintln(os.Stderr, "perfgate: sharded scaling rows missing from output")
			failed = true
		case runtime.NumCPU() < 2:
			shardNote = fmt.Sprintf("; sharded 256-node speedup %.2fx recorded, %.1fx floor not enforced (single-CPU host)",
				sh.SpeedupVsSerial, shardSpeedupFloor)
		case sh.SpeedupVsSerial < shardSpeedupFloor:
			fmt.Fprintf(os.Stderr, "perfgate: sharded 256-node speedup %.2fx below the %.1fx floor; rerun with -samples 3 on a noisy machine\n",
				sh.SpeedupVsSerial, shardSpeedupFloor)
			failed = true
		default:
			shardNote = fmt.Sprintf("; sharded 256-node speedup %.2fx >= %.1fx", sh.SpeedupVsSerial, shardSpeedupFloor)
		}
		eagerNote := ""
		sr, okS := current[eagerSendRecvBench]
		rd, okR := current[eagerRDMAWriteBench]
		switch budget := sr.AllocsPerOp + sr.AllocsPerOp*eagerAllocSlackPct/100 + eagerAllocHeadroom; {
		case !okS || !okR:
			fmt.Fprintln(os.Stderr, "perfgate: eager-channel rows missing from output")
			failed = true
		case rd.AllocsPerOp > budget:
			fmt.Fprintf(os.Stderr, "perfgate: %s allocs/op %d exceeds the budget %d (%s %d + %d%% + %d): the ring fast path is allocating per message\n",
				eagerRDMAWriteBench, rd.AllocsPerOp, budget, eagerSendRecvBench, sr.AllocsPerOp, eagerAllocSlackPct, eagerAllocHeadroom)
			failed = true
		default:
			eagerNote = fmt.Sprintf("; RDMA eager allocs/op %d within %d%%+%d of send/recv %d",
				rd.AllocsPerOp, eagerAllocSlackPct, eagerAllocHeadroom, sr.AllocsPerOp)
		}
		integrityNote := ""
		ig, okI := current[integrityBench]
		fb, okF := current[integrityBaseBench]
		switch budget := fb.AllocsPerOp + fb.AllocsPerOp*integrityAllocSlackPct/100 + integrityAllocHeadroom; {
		case !okI || !okF:
			fmt.Fprintln(os.Stderr, "perfgate: integrity row missing from output")
			failed = true
		case ig.AllocsPerOp > budget:
			fmt.Fprintf(os.Stderr, "perfgate: %s allocs/op %d exceeds the budget %d (%s %d + %d%% + %d): checksum capture/verify is allocating per payload\n",
				integrityBench, ig.AllocsPerOp, budget, integrityBaseBench, fb.AllocsPerOp, integrityAllocSlackPct, integrityAllocHeadroom)
			failed = true
		default:
			integrityNote = fmt.Sprintf("; integrity allocs/op %d within %d%%+%d of Fig06 %d",
				ig.AllocsPerOp, integrityAllocSlackPct, integrityAllocHeadroom, fb.AllocsPerOp)
		}
		routingNote := ""
		rt, okT := current[routingBench]
		rb, okB := current[routingBaseBench]
		switch budget := rb.AllocsPerOp + rb.AllocsPerOp*routingAllocSlackPct/100 + routingAllocHeadroom; {
		case !okT || !okB:
			fmt.Fprintln(os.Stderr, "perfgate: routing row missing from output")
			failed = true
		case rt.AllocsPerOp > budget:
			fmt.Fprintf(os.Stderr, "perfgate: %s allocs/op %d exceeds the budget %d (%s %d + %d%% + %d): the route walk is allocating per chunk\n",
				routingBench, rt.AllocsPerOp, budget, routingBaseBench, rb.AllocsPerOp, routingAllocSlackPct, routingAllocHeadroom)
			failed = true
		default:
			routingNote = fmt.Sprintf("; three-tier allocs/op %d within %d%%+%d of Fig06 %d",
				rt.AllocsPerOp, routingAllocSlackPct, routingAllocHeadroom, rb.AllocsPerOp)
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("gate OK: Fig06 holds ns/op -%.0f%% and allocs/op -%.0f%%; Fig04/07/08 hold allocs/op -%.0f%% vs seed%s%s%s%s\n",
			gates["BenchmarkFig06UniBW"].nsFloor*100, gates["BenchmarkFig06UniBW"].allocFloor*100,
			gates["BenchmarkFig04LargeLatency"].allocFloor*100, shardNote, eagerNote, integrityNote, routingNote)
	}
}

func pct(cur, seed float64) float64 {
	if seed == 0 {
		return 0
	}
	return (cur - seed) / seed * 100
}

// benchNames returns the benchmark set in stable order.
func benchNames() []string {
	ks := make([]string, 0, len(seedBaseline))
	for k := range seedBaseline {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// benchLine matches `go test -bench -benchmem` output, e.g.
// BenchmarkFig06UniBW  3  182581294 ns/op ... 58294416 B/op  1140271 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

// runBenchmarks compiles the test binary once, then runs every
// (benchmark, sample) cell as its own child process through the harness
// pool, and folds the samples into per-benchmark means. The sharded rows
// run afterwards, one at a time: a sharded cell uses several OS threads,
// and the serial/sharded wall-clock comparison is only meaningful when
// neither side shares the machine with other cells.
func runBenchmarks(benchtime string, samples, shards int) (map[string]Result, error) {
	dir, err := os.MkdirTemp("", "perfgate-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "ib12x.test")
	if out, err := exec.Command("go", "test", "-c", "-o", bin, ".").CombinedOutput(); err != nil {
		return nil, fmt.Errorf("go test -c: %v\n%s", err, out)
	}

	type cell struct {
		bench  string
		sample int
	}
	var cells []cell
	for _, name := range benchNames() {
		for s := 0; s < samples; s++ {
			cells = append(cells, cell{name, s})
		}
	}
	for _, name := range append(append(append(laneBenches, eagerBenches...), integrityBenches...), routingBenches...) {
		for s := 0; s < samples; s++ {
			cells = append(cells, cell{name, s})
		}
	}
	raw, err := harness.Map(cells, func(c cell) (Result, error) {
		return runOne(bin, c.bench, benchtime, shards)
	})
	if err != nil {
		return nil, err
	}

	shardRaw := map[string][]Result{}
	for _, name := range shardBenches {
		for s := 0; s < samples; s++ {
			r, err := runOne(bin, name, benchtime, shards)
			if err != nil {
				return nil, err
			}
			shardRaw[name] = append(shardRaw[name], r)
		}
	}

	results := map[string]Result{}
	fold := func(name string, rs []Result) {
		var ns []float64
		var agg Result
		for _, r := range rs {
			ns = append(ns, r.NsPerOp)
			agg.BytesPerOp += r.BytesPerOp
			agg.AllocsPerOp += r.AllocsPerOp
		}
		n := int64(len(ns))
		agg.BytesPerOp /= n
		agg.AllocsPerOp /= n
		agg.NsPerOp, agg.NsStddev = meanStddev(ns)
		if len(ns) > 1 {
			agg.NsMin = ns[0]
			for _, x := range ns[1:] {
				agg.NsMin = math.Min(agg.NsMin, x)
			}
		}
		results[name] = agg
	}
	for _, name := range append(append(append(append(benchNames(), laneBenches...), eagerBenches...), integrityBenches...), routingBenches...) {
		var rs []Result
		for i, c := range cells {
			if c.bench == name {
				rs = append(rs, raw[i])
			}
		}
		fold(name, rs)
	}
	for _, name := range shardBenches {
		fold(name, shardRaw[name])
	}
	return results, nil
}

// runOne executes a single benchmark in a child process and parses its
// one result line.
func runOne(bin, bench, benchtime string, shards int) (Result, error) {
	cmd := exec.Command(bin, "-test.run", "^$",
		"-test.bench", "^"+bench+"$", "-test.benchmem", "-test.benchtime", benchtime)
	cmd.Env = append(os.Environ(), "IB12X_BENCH_SHARDS="+strconv.Itoa(shards))
	out, err := cmd.CombinedOutput()
	if err != nil {
		return Result{}, fmt.Errorf("%s: %v\n%s", bench, err, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil || m[1] != bench {
			continue
		}
		r := Result{}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		// Trailing metrics come as "<value> <unit>" pairs.
		rest := strings.Fields(m[3])
		for i := 1; i < len(rest); i++ {
			switch rest[i] {
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(rest[i-1], 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(rest[i-1], 10, 64)
			}
		}
		return r, nil
	}
	return Result{}, fmt.Errorf("%s: no benchmark line in output:\n%s", bench, out)
}

// meanStddev returns the mean and (for n > 1) the sample standard
// deviation of xs.
func meanStddev(xs []float64) (mean, stddev float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
