// Command perfgate runs the hot-path wall-clock benchmarks
// (BenchmarkFig04/06/07/08 with -benchmem), records the results in
// BENCH_hotpath.json next to the seed baseline, and — in gate mode —
// fails if the headline benchmark regresses past the budget.
//
// Usage:
//
//	perfgate                 # run, print, write BENCH_hotpath.json
//	perfgate -gate           # also enforce the Fig06 improvement floor
//	perfgate -benchtime 5x   # more iterations (steadier numbers)
//	perfgate -o path.json    # alternate output file
//
// The gate asserts BenchmarkFig06UniBW (the window-64 bandwidth sweep,
// the allocation-heaviest figure) holds the improvement the hot-path
// overhaul landed: ns/op at least 25% below the seed and allocs/op at
// least 50% below the seed. The other figures are recorded but not
// gated — they are smaller and noisier on shared machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// seedBaseline holds the pre-overhaul numbers, measured on the growth
// seed with `go test -bench ... -benchmem -benchtime 3x` (single run;
// ns/op is machine-dependent, allocs/op is exact).
var seedBaseline = map[string]Result{
	"BenchmarkFig04LargeLatency": {NsPerOp: 30487433, AllocsPerOp: 119238},
	"BenchmarkFig06UniBW":        {NsPerOp: 182581294, AllocsPerOp: 1140271},
	"BenchmarkFig07BiBW":         {NsPerOp: 164104600, AllocsPerOp: 1137865},
	"BenchmarkFig08Alltoall":     {NsPerOp: 17535687, AllocsPerOp: 110807},
}

// Gate thresholds (fractions of the seed value that must be shaved).
const (
	gateBench      = "BenchmarkFig06UniBW"
	gateNsFloor    = 0.25
	gateAllocFloor = 0.50
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_hotpath.json document.
type Report struct {
	Date      string            `json:"date"`
	Benchtime string            `json:"benchtime"`
	Seed      map[string]Result `json:"seed"`
	Current   map[string]Result `json:"current"`
}

func main() {
	gate := flag.Bool("gate", false, "fail unless the Fig06 improvement floor holds")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	out := flag.String("o", "BENCH_hotpath.json", "output file")
	flag.Parse()

	current, err := runBenchmarks(*benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}

	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Benchtime: *benchtime,
		Seed:      seedBaseline,
		Current:   current,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}

	for name, seed := range seedBaseline {
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-28s (missing)\n", name)
			continue
		}
		fmt.Printf("%-28s ns/op %12.0f (seed %12.0f, %+6.1f%%)  allocs/op %9d (seed %9d, %+6.1f%%)\n",
			name, cur.NsPerOp, seed.NsPerOp, pct(cur.NsPerOp, seed.NsPerOp),
			cur.AllocsPerOp, seed.AllocsPerOp, pct(float64(cur.AllocsPerOp), float64(seed.AllocsPerOp)))
	}
	fmt.Println("wrote", *out)

	if *gate {
		cur, ok := current[gateBench]
		if !ok {
			fmt.Fprintf(os.Stderr, "perfgate: gate benchmark %s missing from output\n", gateBench)
			os.Exit(1)
		}
		seed := seedBaseline[gateBench]
		failed := false
		if cur.NsPerOp > seed.NsPerOp*(1-gateNsFloor) {
			fmt.Fprintf(os.Stderr, "perfgate: %s ns/op %.0f exceeds the budget %.0f (seed %.0f - %.0f%%)\n",
				gateBench, cur.NsPerOp, seed.NsPerOp*(1-gateNsFloor), seed.NsPerOp, gateNsFloor*100)
			failed = true
		}
		if float64(cur.AllocsPerOp) > float64(seed.AllocsPerOp)*(1-gateAllocFloor) {
			fmt.Fprintf(os.Stderr, "perfgate: %s allocs/op %d exceeds the budget %.0f (seed %d - %.0f%%)\n",
				gateBench, cur.AllocsPerOp, float64(seed.AllocsPerOp)*(1-gateAllocFloor), seed.AllocsPerOp, gateAllocFloor*100)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("gate OK: %s holds ns/op -%.0f%% and allocs/op -%.0f%% vs seed\n",
			gateBench, gateNsFloor*100, gateAllocFloor*100)
	}
}

func pct(cur, seed float64) float64 {
	if seed == 0 {
		return 0
	}
	return (cur - seed) / seed * 100
}

// benchLine matches `go test -bench -benchmem` output, e.g.
// BenchmarkFig06UniBW  3  182581294 ns/op ... 58294416 B/op  1140271 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

func runBenchmarks(benchtime string) (map[string]Result, error) {
	pattern := "^(" + strings.Join(keys(seedBaseline), "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	results := map[string]Result{}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		// Trailing metrics come as "<value> <unit>" pairs.
		rest := strings.Fields(m[3])
		for i := 1; i < len(rest); i++ {
			switch rest[i] {
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(rest[i-1], 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(rest[i-1], 10, 64)
			}
		}
		results[m[1]] = r
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from output:\n%s", out)
	}
	return results, nil
}

func keys(m map[string]Result) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
