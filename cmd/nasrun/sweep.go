package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ib12x/internal/adi"
	"ib12x/internal/harness"
	"ib12x/internal/mpi"
	"ib12x/internal/nas"
)

// The -sweep mode: the full kernel x class x layout x policy x eager-protocol
// matrix through the harness worker pool, with a JSON per-cell result cache
// so an interrupted sweep resumes where it stopped. Cells run in batches and
// the cache is rewritten after every batch; cells whose class does not
// divide over the rank count are recorded as skipped, not failed.

// sweepCell is one point of the matrix.
type sweepCell struct {
	Kernel string
	Class  byte
	Nodes  int
	PPN    int
	Policy string
	Proto  string
}

func (c sweepCell) key() string {
	return fmt.Sprintf("%s/%c/%dx%d/%s/%s", c.Kernel, c.Class, c.Nodes, c.PPN, c.Policy, c.Proto)
}

// sweepResult is what the cache remembers per cell. Times are virtual, so a
// cached cell is exactly what a rerun would produce — the cache is a pure
// memoisation, never a staleness risk (unless the model changes, in which
// case delete the file).
type sweepResult struct {
	Seconds  float64 `json:"seconds"`
	Verified bool    `json:"verified"`
	Skipped  string  `json:"skipped,omitempty"` // reason the cell does not apply
}

var eagerProtos = map[string]adi.EagerProto{
	"sendrecv": adi.EagerSendRecv,
	"rdma":     adi.EagerRDMAWrite,
}

// sweepCells expands the comma-separated dimension lists into the matrix.
func sweepCells(kernels, classes, procs, policies, protos string, qps int) ([]sweepCell, error) {
	var cells []sweepCell
	for _, kernel := range strings.Split(kernels, ",") {
		kernel = strings.ToLower(strings.TrimSpace(kernel))
		for _, class := range strings.Split(classes, ",") {
			class = strings.TrimSpace(class)
			if len(class) != 1 {
				return nil, fmt.Errorf("bad class %q", class)
			}
			for _, layout := range strings.Split(procs, ",") {
				nodes, ppn, err := parseLayout(layout)
				if err != nil {
					return nil, err
				}
				for _, policy := range strings.Split(policies, ",") {
					policy = strings.ToLower(strings.TrimSpace(policy))
					if _, ok := policyKinds[policy]; !ok {
						return nil, fmt.Errorf("unknown policy %q", policy)
					}
					for _, proto := range strings.Split(protos, ",") {
						proto = strings.ToLower(strings.TrimSpace(proto))
						if _, ok := eagerProtos[proto]; !ok {
							return nil, fmt.Errorf("unknown eager protocol %q (sendrecv | rdma)", proto)
						}
						cells = append(cells, sweepCell{kernel, class[0], nodes, ppn, policy, proto})
					}
				}
			}
		}
	}
	return cells, nil
}

func parseLayout(s string) (nodes, ppn int, err error) {
	parts := strings.SplitN(strings.TrimSpace(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad layout %q (want NODESxPPN, e.g. 2x1)", s)
	}
	if nodes, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("bad layout %q: %v", s, err)
	}
	if ppn, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("bad layout %q: %v", s, err)
	}
	if nodes < 1 || ppn < 1 {
		return 0, 0, fmt.Errorf("bad layout %q", s)
	}
	return nodes, ppn, nil
}

// runCell executes one matrix point in synthetic mode (the sweep measures
// communication time, not numerics).
func runCell(c sweepCell, qps int) (sweepResult, error) {
	cfg := mpi.Config{
		Nodes: c.Nodes, ProcsPerNode: c.PPN, QPsPerPort: qps,
		Policy:     policyKinds[c.Policy],
		EagerProto: eagerProtos[c.Proto],
	}
	np := cfg.Size()
	var res sweepResult
	record := func(elapsed float64, verified bool) {
		res = sweepResult{Seconds: elapsed, Verified: verified}
	}
	switch c.Kernel {
	case "is":
		cl, err := nas.ISClassByName(c.Class)
		if err != nil {
			return res, err
		}
		board := nas.NewISBoard(np)
		_, err = mpi.Run(cfg, func(comm *mpi.Comm) {
			r := nas.RunIS(comm, cl, true, board)
			if comm.Rank() == 0 {
				record(r.Elapsed.Seconds(), r.Verified)
			}
		})
		return res, err
	case "ft":
		cl, err := nas.FTClassByName(c.Class)
		if err != nil {
			return res, err
		}
		if !cl.ValidFor(np) {
			return sweepResult{Skipped: fmt.Sprintf("class %c grid does not divide over %d ranks", cl.Name, np)}, nil
		}
		board := nas.NewFTBoard(np)
		_, err = mpi.Run(cfg, func(comm *mpi.Comm) {
			r := nas.RunFT(comm, cl, true, board)
			if comm.Rank() == 0 {
				record(r.Elapsed.Seconds(), r.Verified)
			}
		})
		return res, err
	case "ep":
		cl, err := nas.EPClassByName(c.Class)
		if err != nil {
			return res, err
		}
		_, err = mpi.Run(cfg, func(comm *mpi.Comm) {
			r := nas.RunEP(comm, cl, true)
			if comm.Rank() == 0 {
				record(r.Elapsed.Seconds(), r.Verified)
			}
		})
		return res, err
	case "cg":
		cl, err := nas.CGClassByName(c.Class)
		if err != nil {
			return res, err
		}
		_, err = mpi.Run(cfg, func(comm *mpi.Comm) {
			r := nas.RunCG(comm, cl)
			if comm.Rank() == 0 {
				record(r.Elapsed.Seconds(), r.Verified)
			}
		})
		return res, err
	case "mg":
		cl, err := nas.MGClassByName(c.Class)
		if err != nil {
			return res, err
		}
		if cl.N%np != 0 {
			return sweepResult{Skipped: fmt.Sprintf("class %c grid does not divide over %d ranks", cl.Name, np)}, nil
		}
		_, err = mpi.Run(cfg, func(comm *mpi.Comm) {
			r := nas.RunMG(comm, cl, true)
			if comm.Rank() == 0 {
				record(r.Elapsed.Seconds(), r.Verified)
			}
		})
		return res, err
	case "lu":
		cl, err := nas.LUClassByName(c.Class)
		if err != nil {
			return res, err
		}
		_, err = mpi.Run(cfg, func(comm *mpi.Comm) {
			r := nas.RunLU(comm, cl)
			if comm.Rank() == 0 {
				record(r.Elapsed.Seconds(), r.Verified)
			}
		})
		return res, err
	}
	return res, fmt.Errorf("unknown kernel %q", c.Kernel)
}

func loadCache(path string) (map[string]sweepResult, error) {
	cache := make(map[string]sweepResult)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cache, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &cache); err != nil {
		return nil, fmt.Errorf("%s: %v (delete it to restart the sweep)", path, err)
	}
	return cache, nil
}

func saveCache(path string, cache map[string]sweepResult) error {
	data, err := json.MarshalIndent(cache, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runSweep drives the matrix: load the cache, run the pending cells in
// batches (each batch fans out over the harness pool, then the cache is
// rewritten — the resume point), and print every cell in deterministic
// order at the end.
func runSweep(kernels, classes, procs, policies, protos string, qps, batch int, cachePath string) error {
	cells, err := sweepCells(kernels, classes, procs, policies, protos, qps)
	if err != nil {
		return err
	}
	cache, err := loadCache(cachePath)
	if err != nil {
		return err
	}
	var pending []sweepCell
	for _, c := range cells {
		if _, ok := cache[c.key()]; !ok {
			pending = append(pending, c)
		}
	}
	fmt.Printf("sweep: %d cells (%d cached, %d to run), cache %s\n",
		len(cells), len(cells)-len(pending), len(pending), cachePath)
	if batch < 1 {
		batch = 1
	}
	for start := 0; start < len(pending); start += batch {
		chunk := pending[start:min(start+batch, len(pending))]
		results, err := harness.Map(chunk, func(c sweepCell) (sweepResult, error) {
			return runCell(c, qps)
		})
		if err != nil {
			return err
		}
		for i, r := range results {
			cache[chunk[i].key()] = r
		}
		if err := saveCache(cachePath, cache); err != nil {
			return err
		}
		fmt.Printf("sweep: %d/%d done\n", min(start+batch, len(pending)), len(pending))
	}
	keys := make([]string, 0, len(cells))
	for _, c := range cells {
		keys = append(keys, c.key())
	}
	sort.Strings(keys)
	fail := false
	for _, k := range keys {
		r := cache[k]
		switch {
		case r.Skipped != "":
			fmt.Printf("  %-28s skipped: %s\n", k, r.Skipped)
		case r.Verified:
			fmt.Printf("  %-28s %10.4f s  verified\n", k, r.Seconds)
		default:
			fmt.Printf("  %-28s %10.4f s  FAILED VERIFICATION\n", k, r.Seconds)
			fail = true
		}
	}
	if fail {
		return fmt.Errorf("some cells failed verification")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
