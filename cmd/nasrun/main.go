// Command nasrun executes one NAS Parallel Benchmark kernel (IS or FT) on
// the simulated cluster and reports the timed-region result, or sweeps the
// full kernel x class x layout x policy x eager-protocol matrix.
//
// Examples:
//
//	nasrun -kernel is -class A -nodes 2 -ppn 1 -qps 4 -policy epc
//	nasrun -kernel ft -class S -real          # run the real FFT numerics
//	nasrun -kernel is -class B -ppn 4 -policy original -qps 1
//	nasrun -sweep                             # matrix sweep, resumable cache
//	nasrun -sweep -kernels is,cg -protos rdma -cache /tmp/sweep.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/nas"
)

// policyKinds names the scheduling policies on the command line (shared by
// the single-kernel mode and the sweep).
var policyKinds = map[string]core.Kind{
	"original": core.Original, "binding": core.Binding, "rr": core.RoundRobin,
	"striping": core.EvenStriping, "weighted": core.WeightedStriping,
	"epc": core.EPC, "adaptive": core.Adaptive,
}

func main() {
	kernel := flag.String("kernel", "is", "is | ft | ep | cg | mg | lu")
	class := flag.String("class", "S", "problem class: S W A B C")
	nodes := flag.Int("nodes", 2, "nodes")
	ppn := flag.Int("ppn", 1, "processes per node")
	qps := flag.Int("qps", 4, "QPs per port")
	policy := flag.String("policy", "epc", "original | binding | rr | striping | weighted | epc | adaptive")
	realMode := flag.Bool("real", false, "move real payloads through the simulated transport (IS) / run the real FFT numerics (FT)")
	sweep := flag.Bool("sweep", false, "run the kernel x class x layout x policy x eager-protocol matrix")
	kernels := flag.String("kernels", "is,ft,ep,cg,mg,lu", "sweep: comma-separated kernels")
	classes := flag.String("classes", "S", "sweep: comma-separated problem classes")
	procs := flag.String("procs", "2x1,2x2,4x1", "sweep: comma-separated NODESxPPN layouts")
	policies := flag.String("policies", "binding,rr,striping,epc", "sweep: comma-separated policies")
	protos := flag.String("protos", "sendrecv,rdma", "sweep: comma-separated eager protocols")
	batch := flag.Int("batch", 8, "sweep: cells per batch between cache writes")
	cachePath := flag.String("cache", "nas_sweep.json", "sweep: per-cell result cache (delete to restart)")
	flag.Parse()

	if *sweep {
		if err := runSweep(*kernels, *classes, *procs, *policies, *protos, *qps, *batch, *cachePath); err != nil {
			fatal(err)
		}
		return
	}

	kind, ok := policyKinds[strings.ToLower(*policy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "nasrun: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if len(*class) != 1 {
		fmt.Fprintf(os.Stderr, "nasrun: bad class %q\n", *class)
		os.Exit(2)
	}
	cfg := mpi.Config{Nodes: *nodes, ProcsPerNode: *ppn, QPsPerPort: *qps, Policy: kind}
	np := cfg.Size()

	switch strings.ToLower(*kernel) {
	case "is":
		cl, err := nas.ISClassByName((*class)[0])
		if err != nil {
			fatal(err)
		}
		board := nas.NewISBoard(np)
		var res nas.ISResult
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			r := nas.RunIS(c, cl, !*realMode, board)
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NAS IS class %c, %d procs (%dx%d), %s %dQP\n", cl.Name, np, *nodes, *ppn, kind, *qps)
		fmt.Printf("  time     = %.4f s (virtual)\n", res.Elapsed.Seconds())
		fmt.Printf("  rate     = %.1f Mkeys/s\n", res.MopTotal)
		fmt.Printf("  verified = %v\n", res.Verified)
		if !res.Verified {
			os.Exit(1)
		}
	case "ft":
		cl, err := nas.FTClassByName((*class)[0])
		if err != nil {
			fatal(err)
		}
		if !cl.ValidFor(np) {
			fatal(fmt.Errorf("class %c grid does not divide over %d ranks", cl.Name, np))
		}
		board := nas.NewFTBoard(np)
		var res nas.FTResult
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			r := nas.RunFT(c, cl, !*realMode, board)
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NAS FT class %c, %d procs (%dx%d), %s %dQP\n", cl.Name, np, *nodes, *ppn, kind, *qps)
		fmt.Printf("  time     = %.4f s (virtual)\n", res.Elapsed.Seconds())
		for i, chk := range res.Checksums {
			fmt.Printf("  checksum[%d] = %.10e %+.10ei\n", i+1, real(chk), imag(chk))
		}
	case "ep":
		cl, err := nas.EPClassByName((*class)[0])
		if err != nil {
			fatal(err)
		}
		var res nas.EPResult
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			r := nas.RunEP(c, cl, !*realMode)
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NAS EP class %c, %d procs (%dx%d), %s %dQP\n", cl.Name, np, *nodes, *ppn, kind, *qps)
		fmt.Printf("  time     = %.4f s (virtual)\n", res.Elapsed.Seconds())
		if *realMode {
			fmt.Printf("  sums     = %.10e %.10e\n", res.SumX, res.SumY)
			fmt.Printf("  counts   = %v\n", res.Counts)
		}
		fmt.Printf("  verified = %v\n", res.Verified)
	case "cg":
		cl, err := nas.CGClassByName((*class)[0])
		if err != nil {
			fatal(err)
		}
		var res nas.CGResult
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			r := nas.RunCG(c, cl)
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NAS CG class %c, %d procs (%dx%d), %s %dQP\n", cl.Name, np, *nodes, *ppn, kind, *qps)
		fmt.Printf("  time     = %.4f s (virtual)\n", res.Elapsed.Seconds())
		fmt.Printf("  zeta     = %.10f\n", res.Zeta)
		fmt.Printf("  residual = %.3e\n", res.Residual)
		fmt.Printf("  verified = %v\n", res.Verified)
		if !res.Verified {
			os.Exit(1)
		}
	case "mg":
		cl, err := nas.MGClassByName((*class)[0])
		if err != nil {
			fatal(err)
		}
		if cl.N%np != 0 {
			fatal(fmt.Errorf("class %c grid does not divide over %d ranks", cl.Name, np))
		}
		var res nas.MGResult
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			r := nas.RunMG(c, cl, !*realMode)
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NAS MG class %c, %d procs (%dx%d), %s %dQP\n", cl.Name, np, *nodes, *ppn, kind, *qps)
		fmt.Printf("  time     = %.4f s (virtual)\n", res.Elapsed.Seconds())
		if *realMode {
			fmt.Printf("  residual = %.3e -> %.3e\n", res.Residual0, res.ResidualN)
		}
		fmt.Printf("  verified = %v\n", res.Verified)
		if !res.Verified {
			os.Exit(1)
		}
	case "lu":
		cl, err := nas.LUClassByName((*class)[0])
		if err != nil {
			fatal(err)
		}
		var res nas.LUResult
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			r := nas.RunLU(c, cl)
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NAS LU (wavefront) class %c, %d procs (%dx%d), %s %dQP\n", cl.Name, np, *nodes, *ppn, kind, *qps)
		fmt.Printf("  time     = %.4f s (virtual)\n", res.Elapsed.Seconds())
		fmt.Printf("  checksum = %.10e\n", res.Checksum)
		fmt.Printf("  verified = %v\n", res.Verified)
		if !res.Verified {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "nasrun: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nasrun:", err)
	os.Exit(1)
}
