// Stencil: a 2-D halo exchange — the communication pattern the paper's
// conclusions single out as future work ("we plan to study the impact of
// these policies on other communication types like stencil communication").
//
// Four single-process nodes form a 2x2 process grid. Each iteration every
// rank exchanges halos with its torus neighbours using Sendrecv (blocking,
// so EPC stripes the large faces), then "computes" a modeled interior
// update. Every exchange crosses a 12x link with one connection active at a
// time — exactly the regime where the blocking-transfer policies separate.
// The example sweeps the scheduling policies.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

const (
	gridX, gridY = 2, 2      // process grid (must multiply to Nodes*PPN)
	haloBytes    = 512 << 10 // one face of a 3-D subdomain, 512 KB
	iterations   = 30
	computeTime  = 400 * sim.Microsecond // interior update per iteration
)

func main() {
	for _, setup := range []struct {
		policy core.Kind
		qps    int
	}{
		{core.Original, 1},
		{core.RoundRobin, 4},
		{core.EvenStriping, 4},
		{core.EPC, 4},
	} {
		cfg := mpi.Config{
			Nodes:        4,
			ProcsPerNode: 1,
			QPsPerPort:   setup.qps,
			Policy:       setup.policy,
		}
		var worst sim.Time
		_, err := mpi.Run(cfg, func(c *mpi.Comm) {
			rank := c.Rank()
			px, py := rank%gridX, rank/gridX
			// Torus neighbours.
			left := py*gridX + (px-1+gridX)%gridX
			right := py*gridX + (px+1)%gridX
			up := ((py-1+gridY)%gridY)*gridX + px
			down := ((py+1)%gridY)*gridX + px

			send := make([]byte, haloBytes)
			recv := make([]byte, haloBytes)
			c.Barrier()
			t0 := c.Time()
			for it := 0; it < iterations; it++ {
				// East-west exchange, then north-south.
				c.Sendrecv(right, 1, send, left, 1, recv)
				c.Sendrecv(left, 2, send, right, 2, recv)
				c.Sendrecv(down, 3, send, up, 3, recv)
				c.Sendrecv(up, 4, send, down, 4, recv)
				c.Compute(computeTime)
			}
			el := []int64{int64(c.Time() - t0)}
			c.AllreduceInt64(el, mpi.Max)
			if rank == 0 {
				worst = sim.Time(el[0])
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		name := setup.policy.String()
		if setup.policy == core.Original {
			name = "original"
		}
		fmt.Printf("%-16s %dQP/port: %8.2f ms for %d iterations (%.1f us/iter)\n",
			name, setup.qps, worst.Millis(), iterations, worst.Micros()/iterations)
	}
}
