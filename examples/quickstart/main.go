// Quickstart: a two-rank ping-pong on the simulated IBM 12x InfiniBand
// cluster, comparing the default single-rail configuration with the paper's
// EPC multi-rail scheduling. This is the smallest complete program against
// the library's public API.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

func main() {
	for _, setup := range []struct {
		name   string
		policy core.Kind
		qps    int
	}{
		{"original (1 QP/port)", core.Original, 1},
		{"EPC (4 QPs/port)", core.EPC, 4},
	} {
		cfg := mpi.Config{
			Nodes:        2,
			ProcsPerNode: 1,
			QPsPerPort:   setup.qps,
			Policy:       setup.policy,
		}

		const n = 1 << 20 // 1 MB payloads
		const iters = 50
		var elapsed sim.Time

		_, err := mpi.Run(cfg, func(c *mpi.Comm) {
			buf := make([]byte, n)
			switch c.Rank() {
			case 0:
				// Fill the payload so the round trip is verifiable.
				for i := range buf {
					buf[i] = byte(i)
				}
				t0 := c.Time()
				for i := 0; i < iters; i++ {
					c.Send(1, 0, buf)
					c.Recv(1, 0, buf)
				}
				elapsed = c.Time() - t0
				for i := range buf {
					if buf[i] != byte(i) {
						log.Fatalf("payload corrupted at byte %d", i)
					}
				}
			case 1:
				for i := 0; i < iters; i++ {
					c.Recv(0, 0, buf)
					c.Send(0, 0, buf)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}

		oneWay := elapsed.Micros() / (2 * iters)
		bw := float64(n) / (oneWay * 1e-6) / 1e6
		fmt.Printf("%-22s 1MB one-way latency %8.1f us   effective %7.0f MB/s\n",
			setup.name, oneWay, bw)
	}
}
