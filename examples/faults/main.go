// Faults: failure injection on the simulated fabric. Every N-th chunk is
// corrupted on the wire and pays the Reliable Connection retransmission
// timeout; payloads still arrive intact. The example sweeps loss rates and
// reports the bandwidth cost and retry counts.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/chaos"
	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

func main() {
	const n = 1 << 20
	const msgs = 16
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, faultEvery := range []int64{0, 64, 16, 4} {
		cfg := mpi.Config{Nodes: 2, QPsPerPort: 4, Policy: core.EPC}
		if faultEvery > 0 {
			cfg.Chaos = chaos.LegacyEveryN(faultEvery)
		}
		var elapsed sim.Time
		rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
			buf := make([]byte, n)
			if c.Rank() == 0 {
				t0 := c.Time()
				for i := 0; i < msgs; i++ {
					c.Send(1, i, payload)
				}
				c.RecvN(1, 99, nil, 1)
				elapsed = c.Time() - t0
			} else {
				for i := 0; i < msgs; i++ {
					c.Recv(0, i, buf)
					for k := 0; k < n; k += 4096 {
						if buf[k] != byte(k) {
							log.Fatalf("corrupted payload at message %d byte %d", i, k)
						}
					}
				}
				c.SendN(0, 99, nil, 1)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		var retr int64
		for _, node := range rep.World.Cluster.Nodes {
			for _, port := range node.Ports() {
				retr += port.Retransmits
			}
		}
		label := "error-free"
		if faultEvery > 0 {
			label = fmt.Sprintf("1-in-%d chunks lost", faultEvery)
		}
		fmt.Printf("%-22s %6.0f MB/s  (%3d retransmits, data verified)\n",
			label, float64(msgs*n)/elapsed.Seconds()/1e6, retr)
	}
}
