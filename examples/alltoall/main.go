// Alltoall: demonstrates the communication marker at work. The same
// MPI_Alltoall on the paper's 2x4 configuration is timed under the
// single-rail original, round robin (what the transfers would get if the
// ADI layer could not tell collectives from plain non-blocking traffic),
// and EPC (which recognises the collective context and stripes) — the
// comparison behind Figure 8.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/bench"
	"ib12x/internal/core"
	"ib12x/internal/stats"
)

func main() {
	sizes := []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	t := &stats.Table{
		Title:  "MPI_Alltoall, 2 nodes x 4 processes",
		XLabel: "Size", Unit: "us",
	}
	for _, s := range []bench.Setup{
		{QPs: 1, Policy: core.Original, PPN: 4},
		{QPs: 4, Policy: core.RoundRobin, PPN: 4},
		{QPs: 4, Policy: core.EPC, PPN: 4},
	} {
		vals, err := bench.Alltoall(s, sizes, 10, 2)
		if err != nil {
			log.Fatal(err)
		}
		for i, n := range sizes {
			t.Add(s.Label(), n, vals[i])
		}
	}
	fmt.Println(t.Format())
	epc := t.Get("EPC 4QP")
	orig := t.Get("original (1 QP/port)")
	v1, _ := epc.At(sizes[0])
	v0, _ := orig.At(sizes[0])
	fmt.Printf("at 16K the collective marker buys %.0f%% over the single rail\n",
		stats.Improvement(v0, v1))
}
