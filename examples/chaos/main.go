// Chaos: the deterministic fault-injection harness in action. A rail dies
// under a striped bulk transfer and comes back later; the communication
// scheduler reroutes in-flight stripes onto the survivors, the policies
// re-plan around the hole, and every payload still arrives intact. The
// example then runs the differential conformance oracle: one seeded
// workload under every scheduling policy crossed with a set of fault
// plans, asserting that the user-visible outcome is byte-identical
// everywhere.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/chaos"
	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

func main() {
	railFlapDemo()
	fmt.Println()
	oracleMatrix()
}

// railFlapDemo kills rail 2 mid-transfer and revives it, printing the
// retransmission work the recovery path performed.
func railFlapDemo() {
	const n = 1 << 20
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(3 * i)
	}
	got := make([]byte, n)

	plan := chaos.Merge("flap-under-load",
		chaos.RailFlap(20*sim.Microsecond, 400*sim.Microsecond, 1, 2),
		chaos.DegradedLink(100*sim.Microsecond, 300*sim.Microsecond, 0, 0, 0.5, sim.Microsecond),
	)
	cfg := mpi.Config{
		Nodes: 2, QPsPerPort: 4, Policy: core.EvenStriping,
		Chaos:    plan,
		Deadline: sim.Second,
	}
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 8; i++ {
				c.Send(1, i, payload)
			}
		} else {
			for i := 0; i < 8; i++ {
				c.Recv(0, i, got)
				for k := range got {
					if got[k] != byte(3*k) {
						log.Fatalf("message %d corrupted at byte %d", i, k)
					}
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	var railRetr int64
	for _, st := range rep.RankStats {
		railRetr += st.RailRetransmits
	}
	fmt.Printf("rail flap under 8 MB of striped traffic (%s):\n", plan.Name)
	fmt.Printf("  completed in %v, %d stripes rerouted onto survivors, all payloads verified\n",
		rep.Elapsed, railRetr)
}

// oracleMatrix runs the differential conformance oracle across the full
// policy x fault-plan matrix.
func oracleMatrix() {
	policies := []core.Kind{
		core.Binding, core.RoundRobin, core.EvenStriping,
		core.WeightedStriping, core.EPC, core.Adaptive,
	}
	plans := []*chaos.Plan{
		chaos.NoFaults(),
		chaos.RailDeath(100*sim.Microsecond, 1, 2),
		chaos.DegradedLink(50*sim.Microsecond, 500*sim.Microsecond, 1, 0, 0.35, 2*sim.Microsecond),
		chaos.Generate(7, sim.Millisecond, 2, 4, 1),
	}
	fmt.Println("differential conformance: seeded workload, 6 policies x fault plans")
	for _, plan := range plans {
		var ref uint64
		ok := true
		for i, kind := range policies {
			res, err := chaos.RunConformance(chaos.OracleConfig{Seed: 42, Policy: kind, Plan: plan})
			if err != nil {
				log.Fatalf("%v under %s: %v", kind, plan.Name, err)
			}
			if len(res.Violations) > 0 {
				log.Fatalf("%v under %s: %s", kind, plan.Name, res.Violations[0])
			}
			if i == 0 {
				ref = res.Digest
			} else if res.Digest != ref {
				ok = false
			}
		}
		verdict := "all policies byte-identical"
		if !ok {
			verdict = "DIGEST SPLIT"
		}
		fmt.Printf("  %-22s digest %#016x  %s\n", plan.Name, ref, verdict)
	}
}
