// Onesided: MPI-2 remote memory access over the multi-rail design — the
// subject of the authors' companion HiPC 2005 paper. Rank 0 builds a global
// histogram that every rank updates with Accumulate, then reads back with
// Get; large Puts stripe across the rails exactly like blocking two-sided
// transfers.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

const bins = 16

func main() {
	cfg := mpi.Config{
		Nodes:        2,
		ProcsPerNode: 2,
		QPsPerPort:   4,
		Policy:       core.EPC,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		// A window of 16 int64 bins on every rank; only rank 0's is used
		// as the shared histogram.
		buf := make([]byte, 8*bins)
		win := c.WinCreate(buf, len(buf))

		// Epoch 1: every rank accumulates its contribution into rank 0.
		vals := make([]int64, bins)
		for i := range vals {
			vals[i] = int64((c.Rank() + 1) * (i + 1))
		}
		win.AccumulateInt64(0, 0, vals, mpi.Sum)
		win.Fence()

		if c.Rank() == 0 {
			fmt.Print("histogram after accumulate: ")
			for i := 0; i < 4; i++ {
				fmt.Printf("%d ", win.ReadInt64(i))
			}
			fmt.Println("...")
		}

		// Epoch 2: rank 3 reads the histogram back with a one-sided Get.
		if c.Rank() == 3 {
			got := make([]byte, 8*bins)
			win.Get(0, 0, got)
			win.Fence()
			total := int64(0)
			for i := 0; i < bins; i++ {
				var v int64
				for k := 0; k < 8; k++ {
					v |= int64(got[8*i+k]) << (8 * k)
				}
				total += v
			}
			fmt.Printf("rank 3 fetched the histogram one-sidedly; grand total = %d\n", total)
		} else {
			win.Fence()
		}

		// Epoch 3: a large striped Put — watch the stripe counters.
		before := c.Endpoint().Stats().StripesSent
		if c.Rank() == 1 {
			big := c.WinCreate(nil, 1<<20)
			big.PutN(2, 0, nil, 1<<20)
			big.Fence()
			after := c.Endpoint().Stats().StripesSent
			fmt.Printf("rank 1's 1MB Put used %d RDMA stripes across the rails\n", after-before)
			big.Free()
		} else {
			big := c.WinCreate(nil, 1<<20)
			big.Fence()
			big.Free()
		}
		win.Free()
	})
	if err != nil {
		log.Fatal(err)
	}
}
