// Multirail: explores how bandwidth scales across the three rail axes the
// unified design supports — QPs per port, ports per HCA, and HCAs per node
// (paper §3.1 and the "future combinations" of §4.1). The sweep reports the
// uni-directional peak for each configuration under EPC.
package main

import (
	"fmt"
	"log"

	"ib12x/internal/bench"
	"ib12x/internal/core"
)

func main() {
	sizes := []int{1 << 20}
	fmt.Println("uni-directional peak at 1MB under EPC (MB/s):")
	fmt.Println()

	fmt.Println("QPs per port (1 HCA, 1 port — the paper's experiment):")
	for _, qps := range []int{1, 2, 4, 8} {
		bw := measure(bench.Setup{QPs: qps, Policy: core.EPC}, sizes)
		fmt.Printf("  %2d QP/port: %7.0f  %s\n", qps, bw, bar(bw))
	}

	fmt.Println("Ports per HCA (4 QPs each — engaging the dual-port HCA):")
	for _, ports := range []int{1, 2} {
		bw := measure(bench.Setup{QPs: 4, Ports: ports, Policy: core.EPC}, sizes)
		fmt.Printf("  %2d port(s):  %7.0f  %s\n", ports, bw, bar(bw))
	}

	fmt.Println("HCAs per node (dual-port, 4 QPs each — toward the GX+ limit):")
	for _, hcas := range []int{1, 2} {
		bw := measure(bench.Setup{QPs: 4, Ports: 2, HCAs: hcas, Policy: core.EPC}, sizes)
		fmt.Printf("  %2d HCA(s):   %7.0f  %s\n", hcas, bw, bar(bw))
	}
}

func measure(s bench.Setup, sizes []int) float64 {
	v, err := bench.UniBandwidth(s, sizes, 64, 10, 2)
	if err != nil {
		log.Fatal(err)
	}
	return v[0]
}

func bar(bw float64) string {
	n := int(bw / 150)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
