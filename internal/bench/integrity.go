package bench

import (
	"fmt"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/stats"
)

// IntegrityOverheadTable prices the end-to-end checksum model (DESIGN.md
// §17) on uni-directional bandwidth: the machinery off, in audit mode
// (checksums carried for self-checking, never charged), and fully armed
// (capture and verify passes charged at ChecksumCost + size/ChecksumRate).
// The generator enforces two invariants while it measures: audit mode is
// bit-identical to off — the mode only observes — and the armed cell
// reproduces bit-identically on the sharded parallel engine.
func IntegrityOverheadTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{1024, 16 * 1024, 256 * 1024, 1 << 20}
	t := &stats.Table{
		Title:  "Supplementary: end-to-end integrity overhead, uni-directional bandwidth",
		XLabel: "Size", Unit: "MB/s",
	}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.RoundRobin},
		{QPs: 4, Policy: core.EPC},
	} {
		var off []float64
		for _, m := range []adi.IntegrityMode{adi.IntegrityOff, adi.IntegrityAudit, adi.IntegrityVerify} {
			s := s
			s.Integrity = m
			vals, err := UniBandwidth(s, sizes, o.Window, o.BWIters, o.BWWarmup)
			if err != nil {
				return nil, err
			}
			switch m {
			case adi.IntegrityOff:
				off = vals
			case adi.IntegrityAudit:
				for i := range vals {
					if vals[i] != off[i] {
						return nil, fmt.Errorf("integrity: audit mode moved %s at %d bytes (%.6f vs %.6f MB/s)",
							s.Label(), sizes[i], vals[i], off[i])
					}
				}
			}
			addSweep(t, s.Label()+" "+m.String(), sizes, vals)
		}
	}
	armed := Setup{QPs: 4, Policy: core.EPC, Integrity: adi.IntegrityVerify}
	serial, err := UniBandwidth(armed, sizes[:1], o.Window, o.BWIters, o.BWWarmup)
	if err != nil {
		return nil, err
	}
	armed.Shards = 2
	sharded, err := UniBandwidth(armed, sizes[:1], o.Window, o.BWIters, o.BWWarmup)
	if err != nil {
		return nil, err
	}
	if serial[0] != sharded[0] {
		return nil, fmt.Errorf("integrity: armed run diverged on the sharded engine (%.6f vs %.6f MB/s)",
			sharded[0], serial[0])
	}
	return t, nil
}
