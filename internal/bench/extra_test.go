package bench

import (
	"strings"
	"testing"

	"ib12x/internal/core"
)

func TestCollectiveKindString(t *testing.T) {
	want := map[CollKind]string{
		CollBcast: "Bcast", CollAllgather: "Allgather",
		CollAllreduce: "Allreduce", CollAlltoall: "Alltoall",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestCollectiveSweepsRun(t *testing.T) {
	for _, kind := range []CollKind{CollBcast, CollAllgather, CollAllreduce, CollAlltoall} {
		v, err := Collective(kind, Setup{QPs: 2, Policy: core.EPC, PPN: 2}, []int{4096, 65536}, 3, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if v[0] <= 0 || v[1] <= v[0] {
			t.Errorf("%v: times %v not positive/increasing", kind, v)
		}
	}
}

func TestCollectiveTableComplete(t *testing.T) {
	tbl, err := CollectiveTable(CollBcast, quick)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	if !strings.Contains(out, "Bcast") || !strings.Contains(out, "EPC 4QP") {
		t.Errorf("table incomplete:\n%s", out)
	}
}

func TestStencilPolicySeparation(t *testing.T) {
	// On a 4-node torus with one active connection per link, blocking
	// halo exchanges separate the striping policies from the rest.
	orig, err := Stencil(Setup{QPs: 1, Policy: core.Original, Nodes: 4}, 512<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := Stencil(Setup{QPs: 4, Policy: core.EPC, Nodes: 4}, 512<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if epc >= 0.9*orig {
		t.Errorf("stencil: EPC %.0fus/iter not clearly faster than original %.0fus/iter", epc, orig)
	}
}

func TestScalingTableShape(t *testing.T) {
	tbl, err := ScalingTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	epc := tbl.Get("EPC 4QP")
	orig := tbl.Get("original (1 QP/port)")
	if epc == nil || orig == nil {
		t.Fatal("missing series")
	}
	for _, nodes := range []int{2, 4, 8, 16} {
		e, ok1 := epc.At(nodes)
		o, ok2 := orig.At(nodes)
		if !ok1 || !ok2 {
			t.Fatalf("missing node count %d", nodes)
		}
		// A ring exchange is per-link traffic: EPC stays ahead at every
		// scale (each link carries one blocking transfer per direction).
		if e >= o {
			t.Errorf("%d nodes: EPC %.0fus not faster than original %.0fus", nodes, e, o)
		}
	}
}

func TestRendezvousProtocolsComparable(t *testing.T) {
	tbl, err := RendezvousTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	put := tbl.Get("RPUT (sender writes)")
	get := tbl.Get("RGET (receiver reads)")
	if put == nil || get == nil {
		t.Fatal("missing series")
	}
	pv, _ := put.At(1 << 20)
	gv, _ := get.At(1 << 20)
	if d := (gv - pv) / pv; d > 0.15 || d < -0.15 {
		t.Errorf("RGET %.0f vs RPUT %.0f MB/s at 1MB: should be within 15%%", gv, pv)
	}
}

func TestNoDegradationTable(t *testing.T) {
	tbl, err := NoDegradationTable()
	if err != nil {
		t.Fatal(err)
	}
	orig := tbl.Get("original (1 QP/port)")
	epc := tbl.Get("EPC 4QP")
	for i := 0; i < 3; i++ {
		o, ok1 := orig.At(i)
		e, ok2 := epc.At(i)
		if !ok1 || !ok2 {
			t.Fatalf("missing row %d", i)
		}
		if e > 1.02*o {
			t.Errorf("row %d: EPC %.4fs degrades over original %.4fs", i, e, o)
		}
	}
}

func TestOversubscriptionTableShape(t *testing.T) {
	tbl, err := OversubscriptionTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Get("bisection exchange")
	if s == nil {
		t.Fatal("missing series")
	}
	v1, _ := s.At(1)
	v4, _ := s.At(4)
	v8, _ := s.At(8)
	if !(v1 < v4 && v4 < v8) {
		t.Errorf("times not increasing with oversubscription: 1:1=%.0f 4:1=%.0f 8:1=%.0f", v1, v4, v8)
	}
	// 8:1 should cost several times the 1:1 exchange.
	if v8 < 3*v1 {
		t.Errorf("8:1 (%.0f) not ≥ 3x 1:1 (%.0f)", v8, v1)
	}
}

func TestHCAGenerationTable(t *testing.T) {
	tbl, err := HCAGenerationTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series string, n int) float64 {
		s := tbl.Get(series)
		if s == nil {
			t.Fatalf("missing series %q", series)
		}
		v, ok := s.At(n)
		if !ok {
			t.Fatalf("missing %d in %q", n, series)
		}
		return v
	}
	// The 8x PCIe generation peaks well below the 12x GX+ part, and its
	// host interface caps multi-QP gains (the paper's motivation).
	pcieBest := at("8x PCIe EPC 2QP", 1<<20)
	gxBest := at("12x GX+ EPC 4QP", 1<<20)
	if pcieBest >= 1600 {
		t.Errorf("8x PCIe peak = %.0f MB/s, should stay below ~1.5 GB/s", pcieBest)
	}
	if gxBest < 1.7*pcieBest {
		t.Errorf("12x (%.0f) should lead 8x (%.0f) by well over 1.7x", gxBest, pcieBest)
	}
	// Multi-QP still helps the 8x part a little (2 engines), but the bus cap binds.
	pcieOrig := at("8x PCIe original", 1<<20)
	if pcieBest < pcieOrig {
		t.Errorf("8x EPC (%.0f) below its original (%.0f)", pcieBest, pcieOrig)
	}
}
