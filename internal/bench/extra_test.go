package bench

import (
	"strings"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/fabric"
)

func TestCollectiveKindString(t *testing.T) {
	want := map[CollKind]string{
		CollBcast: "Bcast", CollAllgather: "Allgather",
		CollAllreduce: "Allreduce", CollAlltoall: "Alltoall",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestCollectiveSweepsRun(t *testing.T) {
	for _, kind := range []CollKind{CollBcast, CollAllgather, CollAllreduce, CollAlltoall} {
		v, err := Collective(kind, Setup{QPs: 2, Policy: core.EPC, PPN: 2}, []int{4096, 65536}, 3, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if v[0] <= 0 || v[1] <= v[0] {
			t.Errorf("%v: times %v not positive/increasing", kind, v)
		}
	}
}

func TestCollectiveTableComplete(t *testing.T) {
	tbl, err := CollectiveTable(CollBcast, quick)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	if !strings.Contains(out, "Bcast") || !strings.Contains(out, "EPC 4QP") {
		t.Errorf("table incomplete:\n%s", out)
	}
}

func TestStencilPolicySeparation(t *testing.T) {
	// On a 4-node torus with one active connection per link, blocking
	// halo exchanges separate the striping policies from the rest.
	orig, err := Stencil(Setup{QPs: 1, Policy: core.Original, Nodes: 4}, 512<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := Stencil(Setup{QPs: 4, Policy: core.EPC, Nodes: 4}, 512<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if epc >= 0.9*orig {
		t.Errorf("stencil: EPC %.0fus/iter not clearly faster than original %.0fus/iter", epc, orig)
	}
}

func TestScalingTableShape(t *testing.T) {
	tbl, err := ScalingTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	epc := tbl.Get("EPC 4QP")
	orig := tbl.Get("original (1 QP/port)")
	if epc == nil || orig == nil {
		t.Fatal("missing series")
	}
	for _, nodes := range []int{2, 4, 8, 16} {
		e, ok1 := epc.At(nodes)
		o, ok2 := orig.At(nodes)
		if !ok1 || !ok2 {
			t.Fatalf("missing node count %d", nodes)
		}
		// A ring exchange is per-link traffic: EPC stays ahead at every
		// scale (each link carries one blocking transfer per direction).
		if e >= o {
			t.Errorf("%d nodes: EPC %.0fus not faster than original %.0fus", nodes, e, o)
		}
	}
}

func TestRendezvousProtocolsComparable(t *testing.T) {
	tbl, err := RendezvousTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	put := tbl.Get("RPUT (sender writes)")
	get := tbl.Get("RGET (receiver reads)")
	if put == nil || get == nil {
		t.Fatal("missing series")
	}
	pv, _ := put.At(1 << 20)
	gv, _ := get.At(1 << 20)
	if d := (gv - pv) / pv; d > 0.15 || d < -0.15 {
		t.Errorf("RGET %.0f vs RPUT %.0f MB/s at 1MB: should be within 15%%", gv, pv)
	}
}

func TestNoDegradationTable(t *testing.T) {
	tbl, err := NoDegradationTable()
	if err != nil {
		t.Fatal(err)
	}
	orig := tbl.Get("original (1 QP/port)")
	epc := tbl.Get("EPC 4QP")
	for i := 0; i < 3; i++ {
		o, ok1 := orig.At(i)
		e, ok2 := epc.At(i)
		if !ok1 || !ok2 {
			t.Fatalf("missing row %d", i)
		}
		if e > 1.02*o {
			t.Errorf("row %d: EPC %.4fs degrades over original %.4fs", i, e, o)
		}
	}
}

// TestOversubscriptionTableShape pins the issue's acceptance bar for the
// routed-fabric table: adaptive throughput ≥ static at every cell (exact
// equality allowed — the 4:1 tree has a single spine plane, so there is
// nothing to select), strictly better where a degraded plane leaves path
// diversity to exploit, and the 1:1 clean adaptive tree within noise of
// the flat single-switch reference.
func TestOversubscriptionTableShape(t *testing.T) {
	tbl, err := OversubscriptionTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series string, x int) float64 {
		t.Helper()
		s := tbl.Get(series)
		if s == nil {
			t.Fatalf("missing series %q", series)
		}
		v, ok := s.At(x)
		if !ok {
			t.Fatalf("series %q missing x=%d", series, x)
		}
		return v
	}
	rows := []int{1, 2, 4, 8}
	for _, cond := range []string{"clean", "degraded"} {
		for _, x := range rows {
			st, ad := get("static "+cond, x), get("adaptive "+cond, x)
			if ad < st*(1-1e-9) {
				t.Errorf("x=%d %s: adaptive %.2f MB/s below static %.2f", x, cond, ad, st)
			}
		}
	}
	// Degraded cells with path diversity (every row but the 4:1 tree) must
	// show a strict adaptive win: static keeps hashing onto the slow plane.
	for _, x := range []int{1, 2, 8} {
		st, ad := get("static degraded", x), get("adaptive degraded", x)
		if ad <= st {
			t.Errorf("x=%d degraded: adaptive %.2f MB/s does not beat static %.2f", x, ad, st)
		}
	}
	// Oversubscription must still throttle: the clean 4:1 tree is well
	// below the clean 1:1 tree under either routing.
	if v1, v4 := get("adaptive clean", 1), get("adaptive clean", 4); v4 > v1/2 {
		t.Errorf("4:1 clean %.2f MB/s not ≤ half of 1:1 clean %.2f", v4, v1)
	}
	// The 1:1 clean tree delivers the bulk of the flat crossbar's bisection
	// (exact parity is impossible at critical load: per-chunk least-loaded
	// assignment over discrete lanes leaves scheduling gaps a single ideal
	// switch does not have — the legacy two-level fabric loses more).
	flat, tree := get("flat", 1), get("adaptive clean", 1)
	if tree < 0.75*flat || tree > 1.02*flat {
		t.Errorf("1:1 clean adaptive %.2f MB/s out of range of flat %.2f", tree, flat)
	}
}

// TestThreeTierFig06WithinNoise is the literal Fig06 acceptance check: the
// paper's uni-directional bandwidth sweep run over an uncontended 1:1
// three-tier tree (2 nodes, 1 per leaf) must land within noise of the flat
// single-switch fabric at every size — per-switch routing costs hop latency
// only, never bandwidth, when the trunks are not oversubscribed.
func TestThreeTierFig06WithinNoise(t *testing.T) {
	sizes := []int{4096, 65536, 1 << 20}
	base := Setup{QPs: 4, Policy: core.EPC}
	flat, err := UniBandwidth(base, sizes, quick.Window, quick.BWIters, quick.BWWarmup)
	if err != nil {
		t.Fatal(err)
	}
	treeSetup := base
	treeSetup.NodesPerSwitch = 1
	treeSetup.Tiers = 3
	treeSetup.SpinesPerPod = 2
	treeSetup.Routing = fabric.RouteAdaptive
	tree, err := UniBandwidth(treeSetup, sizes, quick.Window, quick.BWIters, quick.BWWarmup)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes {
		if tree[i] < 0.95*flat[i] || tree[i] > 1.001*flat[i] {
			t.Errorf("size %d: three-tier %.2f MB/s vs flat %.2f — not within noise", n, tree[i], flat[i])
		}
	}
}

func TestHCAGenerationTable(t *testing.T) {
	tbl, err := HCAGenerationTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series string, n int) float64 {
		s := tbl.Get(series)
		if s == nil {
			t.Fatalf("missing series %q", series)
		}
		v, ok := s.At(n)
		if !ok {
			t.Fatalf("missing %d in %q", n, series)
		}
		return v
	}
	// The 8x PCIe generation peaks well below the 12x GX+ part, and its
	// host interface caps multi-QP gains (the paper's motivation).
	pcieBest := at("8x PCIe EPC 2QP", 1<<20)
	gxBest := at("12x GX+ EPC 4QP", 1<<20)
	if pcieBest >= 1600 {
		t.Errorf("8x PCIe peak = %.0f MB/s, should stay below ~1.5 GB/s", pcieBest)
	}
	if gxBest < 1.7*pcieBest {
		t.Errorf("12x (%.0f) should lead 8x (%.0f) by well over 1.7x", gxBest, pcieBest)
	}
	// Multi-QP still helps the 8x part a little (2 engines), but the bus cap binds.
	pcieOrig := at("8x PCIe original", 1<<20)
	if pcieBest < pcieOrig {
		t.Errorf("8x EPC (%.0f) below its original (%.0f)", pcieBest, pcieOrig)
	}
}
