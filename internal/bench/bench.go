// Package bench implements the paper's measurement methodology (§4.2): the
// OSU-style latency, uni-directional and bi-directional bandwidth tests, and
// the Pallas/IMB-style Alltoall test, all over the simulated cluster.
//
// Iteration counts are lower than the paper's (which fought hardware noise);
// the simulator is deterministic, so steady state is reached as soon as the
// pipeline fills. Warm-up iterations are still excluded, as in the paper.
package bench

import (
	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/regcache"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
)

// Setup selects the configuration under test.
type Setup struct {
	QPs    int       // QPs per port (rails)
	Policy core.Kind // scheduling policy
	Nodes  int       // default 2
	PPN    int       // procs per node, default 1
	HCAs   int       // default 1
	Ports  int       // default 1
	Model  *model.Params
	Rndv   adi.RndvProto // rendezvous protocol (default RPUT)

	// EagerProto selects the eager channel (default send/recv; the
	// RDMA-write ring is the EagerLatencyTable ablation).
	EagerProto adi.EagerProto

	// NodesPerSwitch/TrunkRate select the two-level fat-tree fabric
	// (0 = the paper's single switch / 1:1 trunks). Tiers = 3 with
	// SpinesPerPod upgrades it to the routed three-tier tree, Dragonfly
	// selects the dragonfly fabric, and Routing picks static D-mod-K vs
	// adaptive path selection on the routed shapes (OversubscriptionTable).
	NodesPerSwitch int
	TrunkRate      float64
	Tiers          int
	SpinesPerPod   int
	Dragonfly      topo.Dragonfly
	Routing        fabric.Routing

	// Chaos, when non-nil, arms a fault plan against every run of the
	// setup; Reliability arms the self-healing rail layer. Together they
	// drive the degraded-mode figures.
	Chaos       mpi.ChaosPlan
	Reliability *adi.ReliabilityConfig

	// RegCache, when non-nil, arms the pin-down registration cache (the
	// cold/warm bandwidth split of the supplementary RegCacheTable).
	RegCache *regcache.Config

	// Shards runs the setup on the sharded parallel DES engine (0/1 =
	// serial). Virtual-time results are bit-identical either way; only the
	// host wall clock changes.
	Shards int

	// CollAlg selects the collective-algorithm family (zero value keeps
	// the striped reference algorithms; CollLane runs the lane-decomposed
	// ones of the LaneCollTable ablation).
	CollAlg mpi.CollAlg

	// Integrity arms the end-to-end payload checksum model (zero value =
	// off, the historical transport; the IntegrityOverheadTable sweeps it).
	Integrity adi.IntegrityMode
}

// Config builds the mpi.Config this setup describes.
func (s Setup) Config() mpi.Config {
	return mpi.Config{
		Nodes:          max(s.Nodes, 2),
		ProcsPerNode:   max(s.PPN, 1),
		HCAs:           max(s.HCAs, 1),
		Ports:          max(s.Ports, 1),
		QPsPerPort:     max(s.QPs, 1),
		Policy:         s.Policy,
		Model:          s.Model,
		Rndv:           s.Rndv,
		EagerProto:     s.EagerProto,
		NodesPerSwitch: s.NodesPerSwitch,
		TrunkRate:      s.TrunkRate,
		Tiers:          s.Tiers,
		SpinesPerPod:   s.SpinesPerPod,
		Dragonfly:      s.Dragonfly,
		Routing:        s.Routing,
		Chaos:          s.Chaos,
		Reliability:    s.Reliability,
		RegCache:       s.RegCache,
		Shards:         s.Shards,
		CollAlg:        s.CollAlg,
		Integrity:      s.Integrity,
	}
}

// Label names the setup the way the paper's figure legends do.
func (s Setup) Label() string {
	qps := max(s.QPs, 1)
	name := s.Policy.String()
	if s.Policy == core.Original {
		return "original (1 QP/port)"
	}
	return name + " " + itoa(qps) + "QP"
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Latency runs the ping-pong test between ranks 0 and 1 and returns the
// one-way latency in microseconds for each message size.
func Latency(s Setup, sizes []int, iters, warmup int) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		n := n
		var elapsed sim.Time
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			buf := make([]byte, n)
			switch c.Rank() {
			case 0:
				var t0 sim.Time
				for it := 0; it < warmup+iters; it++ {
					if it == warmup {
						t0 = c.Time()
					}
					c.Send(1, 0, buf)
					c.Recv(1, 0, buf)
				}
				elapsed = c.Time() - t0
			case 1:
				for it := 0; it < warmup+iters; it++ {
					c.Recv(0, 0, buf)
					c.Send(0, 0, buf)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		out[i] = elapsed.Micros() / float64(2*iters)
	}
	return out, nil
}

// ackTag separates the bandwidth test's window acknowledgment.
const ackTag = 1

// UniBandwidth runs the window-based ping-ping test (window posts of
// MPI_Isend, acknowledgment from the receiver) and returns MB/s per size.
func UniBandwidth(s Setup, sizes []int, window, iters, warmup int) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		n := n
		var elapsed sim.Time
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			reqs := make([]*mpi.Request, window)
			switch c.Rank() {
			case 0:
				var t0 sim.Time
				ack := make([]byte, 4)
				for it := 0; it < warmup+iters; it++ {
					if it == warmup {
						t0 = c.Time()
					}
					for w := 0; w < window; w++ {
						reqs[w] = c.IsendN(1, 0, nil, n)
					}
					c.Waitall(reqs)
					c.Recv(1, ackTag, ack)
				}
				elapsed = c.Time() - t0
			case 1:
				for it := 0; it < warmup+iters; it++ {
					for w := 0; w < window; w++ {
						reqs[w] = c.IrecvN(0, 0, nil, n)
					}
					c.Waitall(reqs)
					c.Send(0, ackTag, make([]byte, 4))
				}
			}
		})
		if err != nil {
			return nil, err
		}
		bytes := float64(iters) * float64(window) * float64(n)
		out[i] = bytes / elapsed.Seconds() / 1e6
	}
	return out, nil
}

// BiBandwidth runs the exchange test: both ranks post `window` receives then
// `window` sends per iteration; the peer's messages serve as implicit
// acknowledgments (§4.2). It returns aggregate MB/s per size.
func BiBandwidth(s Setup, sizes []int, window, iters, warmup int) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		n := n
		var elapsed sim.Time
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			peer := 1 - c.Rank()
			rreqs := make([]*mpi.Request, window)
			sreqs := make([]*mpi.Request, window)
			var t0 sim.Time
			for it := 0; it < warmup+iters; it++ {
				if it == warmup {
					t0 = c.Time()
				}
				for w := 0; w < window; w++ {
					rreqs[w] = c.IrecvN(peer, 0, nil, n)
				}
				for w := 0; w < window; w++ {
					sreqs[w] = c.IsendN(peer, 0, nil, n)
				}
				c.Waitall(sreqs)
				c.Waitall(rreqs)
			}
			if c.Rank() == 0 {
				elapsed = c.Time() - t0
			}
		})
		if err != nil {
			return nil, err
		}
		bytes := 2 * float64(iters) * float64(window) * float64(n)
		out[i] = bytes / elapsed.Seconds() / 1e6
	}
	return out, nil
}

// Alltoall runs the IMB-style MPI_Alltoall test on the setup's full cluster
// (the paper's Figure 8 uses 2 nodes × 4 processes) and returns the average
// per-operation time in microseconds for each per-pair message size.
func Alltoall(s Setup, sizes []int, iters, warmup int) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		n := n
		var worst sim.Time
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			c.Barrier()
			var t0 sim.Time
			for it := 0; it < warmup+iters; it++ {
				if it == warmup {
					t0 = c.Time()
				}
				c.Alltoall(nil, n, nil)
			}
			el := c.Time() - t0
			v := []int64{int64(el)}
			c.AllreduceInt64(v, mpi.Max)
			if c.Rank() == 0 {
				worst = sim.Time(v[0])
			}
		})
		if err != nil {
			return nil, err
		}
		out[i] = worst.Micros() / float64(iters)
	}
	return out, nil
}

// MessageRate measures small-message throughput: a window of 8-byte
// non-blocking sends, reported in million messages per second.
func MessageRate(s Setup, window, iters, warmup int) (float64, error) {
	var elapsed sim.Time
	_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
		reqs := make([]*mpi.Request, window)
		switch c.Rank() {
		case 0:
			var t0 sim.Time
			for it := 0; it < warmup+iters; it++ {
				if it == warmup {
					t0 = c.Time()
				}
				for w := range reqs {
					reqs[w] = c.IsendN(1, 0, nil, 8)
				}
				c.Waitall(reqs)
				c.RecvN(1, ackTag, nil, 4)
			}
			elapsed = c.Time() - t0
		case 1:
			for it := 0; it < warmup+iters; it++ {
				for w := range reqs {
					reqs[w] = c.IrecvN(0, 0, nil, 8)
				}
				c.Waitall(reqs)
				c.SendN(0, ackTag, nil, 4)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(iters) * float64(window) / elapsed.Seconds() / 1e6, nil
}

// Sizes builds a doubling size sweep [from, to].
func Sizes(from, to int) []int {
	var out []int
	for n := from; n <= to; n *= 2 {
		out = append(out, n)
	}
	return out
}
