package bench

import (
	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/mpi"
	"ib12x/internal/regcache"
	"ib12x/internal/sim"
	"ib12x/internal/stats"
)

// regWindow is the isend window of the registration-cache sweep. It is
// smaller than the paper's bandwidth window because the cold mode keeps
// `regRotate` full buffer sets live per rank (64 × 1 MB × 2 would dwarf the
// working sets under study).
const regWindow = 8

// regRotate is the number of distinct buffer sets the cold mode cycles
// through. The cache capacity holds exactly one set, so with two sets every
// post-warmup iteration re-pins its entire window — the cache-cold floor.
const regRotate = 2

// regMode is one column of the registration-cache table.
type regMode struct {
	name   string
	rotate int  // distinct buffer sets cycled per iteration
	cached bool // pin-down cache armed
}

var regModes = []regMode{
	{"registration free (baseline)", 1, false},
	{"pin-down cache, warm", 1, true},
	{"pin-down cache, cold", regRotate, true},
}

// RegCacheTable reproduces the cache-cold vs cache-warm bandwidth split of
// the pin-down cache (Liu et al.) over the Figure 6 message sizes: a
// registration-free baseline, a warm pass reusing one buffer set (steady
// state all hits — it must match the baseline), and a cold pass cycling two
// buffer sets through a cache sized for one (steady state all misses, every
// iteration re-paying the per-page pin cost and syscall latency).
func RegCacheTable(o FigOpts) (*stats.Table, error) {
	return regCacheTable(harness.Workers(), o)
}

// regCacheTable is RegCacheTable with an explicit worker count; the
// determinism suite pins serial/parallel bit-identity on it.
func regCacheTable(workers int, o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1 << 20}
	t := &stats.Table{
		Title:  "Supplementary: uni-directional bandwidth vs registration cache state (EPC 4QP)",
		XLabel: "Size", Unit: "MB/s",
	}
	// Every (mode, size) cell is an independent simulation; flatten the
	// matrix so the whole sweep fans out across the harness pool.
	type cell struct{ mode, size int }
	cells := make([]cell, 0, len(regModes)*len(sizes))
	for m := range regModes {
		for s := range sizes {
			cells = append(cells, cell{m, s})
		}
	}
	vals, err := harness.MapNAll(workers, cells, func(cl cell) (float64, error) {
		mode, n := regModes[cl.mode], sizes[cl.size]
		s := Setup{QPs: 4, Policy: core.EPC}
		if mode.cached {
			// Capacity = exactly one window's worth of page-rounded
			// buffers: the warm set fits whole; the cold rotation evicts.
			s.RegCache = &regcache.Config{CapacityBytes: regWindow * pageRound(n)}
		}
		return regBandwidth(s, n, regWindow, o.BWIters, o.BWWarmup, mode.rotate)
	})
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		t.Add(regModes[cl.mode].name, sizes[cl.size], vals[i])
	}
	return t, nil
}

// pageRound rounds n up to the cache's default 4 KB pin granularity.
func pageRound(n int) int64 {
	const pg = 4096
	return int64((n + pg - 1) / pg * pg)
}

// regBandwidth is the window-based ping-ping bandwidth test with real
// payload buffers (UniBandwidth uses synthetic nil payloads, which the
// registration model rightly ignores). Each iteration posts one window of
// sends from the set it%rotate and waits for the receiver's ack, so the
// pipeline drains every iteration and the cache state at the measurement
// start is the steady state.
func regBandwidth(s Setup, n, window, iters, warmup, rotate int) (float64, error) {
	var elapsed sim.Time
	_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
		sets := make([][][]byte, rotate)
		for k := range sets {
			sets[k] = make([][]byte, window)
			for w := range sets[k] {
				sets[k][w] = make([]byte, n)
			}
		}
		reqs := make([]*mpi.Request, window)
		switch c.Rank() {
		case 0:
			ack := make([]byte, 4)
			var t0 sim.Time
			for it := 0; it < warmup+iters; it++ {
				if it == warmup {
					t0 = c.Time()
				}
				bufs := sets[it%rotate]
				for w := 0; w < window; w++ {
					reqs[w] = c.Isend(1, 0, bufs[w])
				}
				c.Waitall(reqs)
				c.Recv(1, ackTag, ack)
			}
			elapsed = c.Time() - t0
		case 1:
			for it := 0; it < warmup+iters; it++ {
				bufs := sets[it%rotate]
				for w := 0; w < window; w++ {
					reqs[w] = c.Irecv(0, 0, bufs[w])
				}
				c.Waitall(reqs)
				c.Send(0, ackTag, make([]byte, 4))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	bytes := float64(iters) * float64(window) * float64(n)
	return bytes / elapsed.Seconds() / 1e6, nil
}
