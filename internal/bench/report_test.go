package bench

import (
	"strings"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

func TestReportFormatsUtilization(t *testing.T) {
	var end sim.Time
	rep, err := mpi.Run(Setup{QPs: 4, Policy: core.EPC}.Config(), func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.SendN(1, 0, nil, 256*1024)
			end = c.Time()
		} else {
			c.RecvN(0, 0, nil, 256*1024)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := Report(rep.World, end)
	for _, want := range []string{
		"run length", "GX+", "send engines", "recv engines",
		"tx lane", "scheduler", "rank 0", "rendezvous 1", "stripes w/r 4/0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "-1") {
		t.Errorf("report contains garbage:\n%s", out)
	}
}
