package bench

import (
	"strings"
	"testing"

	"ib12x/internal/core"
)

var quick = FigOpts{Quick: true}

func TestSizesHelper(t *testing.T) {
	got := Sizes(1024, 8192)
	want := []int{1024, 2048, 4096, 8192}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
}

func TestSetupLabels(t *testing.T) {
	cases := []struct {
		s    Setup
		want string
	}{
		{Setup{QPs: 1, Policy: core.Original}, "original (1 QP/port)"},
		{Setup{QPs: 4, Policy: core.EPC}, "EPC 4QP"},
		{Setup{QPs: 2, Policy: core.RoundRobin}, "round robin 2QP"},
		{Setup{QPs: 12, Policy: core.EvenStriping}, "even striping 12QP"},
	}
	for _, c := range cases {
		if got := c.s.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

// ---- Figure 3 shape: the enhanced design adds no small-message overhead ----

func TestSmallLatencyUnchangedByDesign(t *testing.T) {
	sizes := []int{1, 256, 1024}
	orig, err := Latency(Setup{QPs: 1, Policy: core.Original}, sizes, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	epc4, err := Latency(Setup{QPs: 4, Policy: core.EPC}, sizes, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		if d := (epc4[i] - orig[i]) / orig[i]; d > 0.02 || d < -0.02 {
			t.Errorf("size %d: EPC small latency %.2fus deviates from original %.2fus", sizes[i], epc4[i], orig[i])
		}
	}
	// Sanity: 1-byte latency in the few-microsecond range of the era.
	if orig[0] < 2 || orig[0] > 12 {
		t.Errorf("1-byte latency = %.2fus, want a few microseconds", orig[0])
	}
}

// ---- Figure 4 shape: large-message latency policy ordering ----

func TestLargeLatencyPolicyOrdering(t *testing.T) {
	sizes := []int{1 << 20}
	lat := func(s Setup) float64 {
		v, err := Latency(s, sizes, 20, 2)
		if err != nil {
			t.Fatal(err)
		}
		return v[0]
	}
	orig := lat(Setup{QPs: 1, Policy: core.Original})
	epc := lat(Setup{QPs: 4, Policy: core.EPC})
	strp := lat(Setup{QPs: 4, Policy: core.EvenStriping})
	bind := lat(Setup{QPs: 4, Policy: core.Binding})
	rr := lat(Setup{QPs: 4, Policy: core.RoundRobin})

	// EPC ≈ striping, both far ahead; binding and round robin gain nothing
	// for blocking traffic (paper: "not able to take advantage").
	if rel(epc, strp) > 0.02 {
		t.Errorf("EPC %.0fus and striping %.0fus should coincide", epc, strp)
	}
	if rel(bind, orig) > 0.05 || rel(rr, orig) > 0.05 {
		t.Errorf("binding %.0f / RR %.0f should match original %.0f for blocking traffic", bind, rr, orig)
	}
	imp := (orig - epc) / orig * 100
	if imp < 30 || imp > 45 {
		t.Errorf("1MB latency improvement = %.1f%%, paper reports ~41%%", imp)
	}
}

// ---- Figures 6/7 shape: bandwidth peaks ----

func TestUniBandwidthPeaks(t *testing.T) {
	sizes := []int{1 << 20}
	orig, err := UniBandwidth(Setup{QPs: 1, Policy: core.Original}, sizes, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := UniBandwidth(Setup{QPs: 4, Policy: core.EPC}, sizes, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if orig[0] < 1560 || orig[0] > 1760 {
		t.Errorf("original uni peak = %.0f MB/s, paper: 1661", orig[0])
	}
	if epc[0] < 2600 || epc[0] > 2880 {
		t.Errorf("EPC uni peak = %.0f MB/s, paper: 2745", epc[0])
	}
	gain := (epc[0] - orig[0]) / orig[0] * 100
	if gain < 55 || gain > 72 {
		t.Errorf("uni gain = %.0f%%, paper: 63-65%%", gain)
	}
}

func TestBiBandwidthPeaks(t *testing.T) {
	sizes := []int{1 << 20}
	orig, err := BiBandwidth(Setup{QPs: 1, Policy: core.Original}, sizes, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := BiBandwidth(Setup{QPs: 4, Policy: core.EPC}, sizes, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if orig[0] < 3000 || orig[0] > 3600 {
		t.Errorf("original bi peak = %.0f MB/s, paper: ~3100-3300", orig[0])
	}
	if epc[0] < 5100 || epc[0] > 5700 {
		t.Errorf("EPC bi peak = %.0f MB/s, paper: 5362", epc[0])
	}
	gain := (epc[0] - orig[0]) / orig[0] * 100
	if gain < 50 || gain > 75 {
		t.Errorf("bi gain = %.0f%%, paper: 63-65%%", gain)
	}
}

// ---- Figure 6 shape: even striping dips at medium sizes ----

func TestStripingMediumSizeDip(t *testing.T) {
	sizes := []int{16 * 1024, 1 << 20}
	strp, err := UniBandwidth(Setup{QPs: 4, Policy: core.EvenStriping}, sizes, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := UniBandwidth(Setup{QPs: 4, Policy: core.EPC}, sizes, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At 16 KB striping must trail EPC (per-stripe overheads); by 1 MB
	// they converge (paper: "the performance graphs converge").
	if strp[0] >= 0.92*epc[0] {
		t.Errorf("16KB: striping %.0f not below EPC %.0f", strp[0], epc[0])
	}
	if rel(strp[1], epc[1]) > 0.03 {
		t.Errorf("1MB: striping %.0f and EPC %.0f should converge", strp[1], epc[1])
	}
}

// ---- Figure 8 shape: EPC leads Alltoall ----

func TestAlltoallEPCLeads(t *testing.T) {
	sizes := []int{16 * 1024, 64 * 1024, 256 * 1024}
	run := func(s Setup) []float64 {
		s.PPN = 4
		v, err := Alltoall(s, sizes, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	orig := run(Setup{QPs: 1, Policy: core.Original})
	rr := run(Setup{QPs: 4, Policy: core.RoundRobin})
	epc := run(Setup{QPs: 4, Policy: core.EPC})
	// The collective marker's striping wins clearly at the medium size
	// where per-message transfer time dominates the exchange steps
	// (paper: "even for medium range of messages, we can see an
	// improvement").
	if epc[0] > 0.85*orig[0] {
		t.Errorf("16KB: EPC %.0fus not clearly faster than original %.0fus", epc[0], orig[0])
	}
	if epc[0] > rr[0] {
		t.Errorf("16KB: EPC %.0fus slower than round robin %.0fus: the marker should help", epc[0], rr[0])
	}
	// At larger sizes the ladder's fully-concurrent steps are link-bound
	// for every policy; EPC stays within a few percent of the others
	// (see EXPERIMENTS.md F8 notes on this deviation from the paper).
	for i := 1; i < len(sizes); i++ {
		if d := (epc[i] - orig[i]) / orig[i]; d > 0.07 {
			t.Errorf("size %d: EPC %.0fus more than 7%% behind original %.0fus", sizes[i], epc[i], orig[i])
		}
	}
}

// ---- NAS shape ----

func TestNASISImprovement(t *testing.T) {
	orig, err := RunNAS('I', 'W', 2, 1, 1, core.Original)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := RunNAS('I', 'W', 2, 1, 4, core.EPC)
	if err != nil {
		t.Fatal(err)
	}
	if epc >= orig {
		t.Errorf("IS-W: EPC %.3fs not faster than original %.3fs", epc, orig)
	}
}

func TestNASFTImprovement(t *testing.T) {
	orig, err := RunNAS('F', 'S', 2, 1, 1, core.Original)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := RunNAS('F', 'S', 2, 1, 4, core.EPC)
	if err != nil {
		t.Fatal(err)
	}
	if epc >= orig {
		t.Errorf("FT-S: EPC %.3fs not faster than original %.3fs", epc, orig)
	}
}

func TestRunNASErrors(t *testing.T) {
	if _, err := RunNAS('X', 'S', 2, 1, 1, core.Original); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := RunNAS('I', 'Q', 2, 1, 1, core.Original); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := RunNAS('F', 'S', 3, 1, 1, core.Original); err == nil {
		t.Error("indivisible FT layout accepted")
	}
}

// ---- figure generators produce complete tables ----

func TestFigureTablesComplete(t *testing.T) {
	figs := []struct {
		name   string
		series int
		gen    func(FigOpts) (interface{ Format() string }, error)
	}{
		{"fig3", 3, func(o FigOpts) (interface{ Format() string }, error) { return Fig3(o) }},
		{"fig4", 5, func(o FigOpts) (interface{ Format() string }, error) { return Fig4(o) }},
		{"fig5", 4, func(o FigOpts) (interface{ Format() string }, error) { return Fig5(o) }},
		{"fig6", 3, func(o FigOpts) (interface{ Format() string }, error) { return Fig6(o) }},
		{"fig7", 3, func(o FigOpts) (interface{ Format() string }, error) { return Fig7(o) }},
		{"fig8", 4, func(o FigOpts) (interface{ Format() string }, error) { return Fig8(o) }},
	}
	for _, f := range figs {
		tbl, err := f.gen(quick)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		out := tbl.Format()
		if !strings.Contains(out, "original") || !strings.Contains(out, "Figure") {
			t.Errorf("%s output incomplete:\n%s", f.name, out)
		}
		if lines := strings.Count(out, "\n"); lines < 5 {
			t.Errorf("%s: only %d lines", f.name, lines)
		}
	}
}

func TestNASFigTable(t *testing.T) {
	tbl, err := NASFig('F', 'S', quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{2, 4, 8} {
		for _, series := range []string{"original (1 QP/port)", "EPC 4QP"} {
			s := tbl.Get(series)
			if s == nil {
				t.Fatalf("missing series %q", series)
			}
			if _, ok := s.At(np); !ok {
				t.Errorf("series %q missing np=%d", series, np)
			}
		}
	}
}

func TestHeadlineMeasure(t *testing.T) {
	h, err := FigOpts{Quick: true}.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if h.LatencyImprovePct < 25 || h.LatencyImprovePct > 50 {
		t.Errorf("latency improvement = %.1f%%", h.LatencyImprovePct)
	}
	if h.UniGainPct < 50 || h.BiGainPct < 45 {
		t.Errorf("gains = %.0f%% / %.0f%%", h.UniGainPct, h.BiGainPct)
	}
}

func rel(a, b float64) float64 {
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

func TestMessageRate(t *testing.T) {
	r1, err := MessageRate(Setup{QPs: 1, Policy: core.Original}, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := MessageRate(Setup{QPs: 4, Policy: core.EPC}, 64, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 8-byte messages are host-posting-bound (~1.9us of CPU per message →
	// ~0.5 Mmsg/s): extra rails cannot raise the rate, exactly the
	// small-message behaviour of Figures 3 and 5.
	if r1 <= 0.2 || r1 >= 1.2 {
		t.Errorf("single-rail message rate = %.2f Mmsg/s, want O(0.5)", r1)
	}
	if d := (r4 - r1) / r1; d > 0.02 || d < -0.02 {
		t.Errorf("message rate should be rail-independent: 1QP %.2f vs 4QP %.2f", r1, r4)
	}
}
