package bench

import (
	"fmt"

	"ib12x/internal/adi"
	"ib12x/internal/chaos"
	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
	"ib12x/internal/stats"
	"ib12x/internal/topo"
)

// Supplementary experiments beyond the paper's figures: the rest of the
// Pallas-style collective suite, the stencil pattern the conclusions name
// as future work, node-count scaling, the RGET/RPUT rendezvous comparison
// and the EP/CG "no degradation" check. cmd/reproduce prints these under
// -extra.

// CollKind selects a collective for the sweep harness.
type CollKind int

// Collectives covered by the supplementary suite.
const (
	CollBcast CollKind = iota
	CollAllgather
	CollAllreduce
	CollAlltoall
)

func (k CollKind) String() string {
	switch k {
	case CollBcast:
		return "Bcast"
	case CollAllgather:
		return "Allgather"
	case CollAllreduce:
		return "Allreduce"
	case CollAlltoall:
		return "Alltoall"
	default:
		return fmt.Sprintf("CollKind(%d)", int(k))
	}
}

// Collective times one collective operation (average per call, µs) for
// each message size. Sizes are per-rank payload bytes (per-pair for
// Alltoall, per-block for Allgather).
func Collective(kind CollKind, s Setup, sizes []int, iters, warmup int) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		n := n
		var worst sim.Time
		_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
			p := c.Size()
			var run func()
			switch kind {
			case CollBcast:
				run = func() { c.BcastN(0, nil, n) }
			case CollAllgather:
				recv := make([]byte, p*n)
				run = func() { c.Allgather(recv[:n], n, recv) }
			case CollAllreduce:
				buf := make([]float64, (n+7)/8)
				run = func() { c.AllreduceFloat64(buf, mpi.Sum) }
			case CollAlltoall:
				run = func() { c.Alltoall(nil, n, nil) }
			}
			c.Barrier()
			var t0 sim.Time
			for it := 0; it < warmup+iters; it++ {
				if it == warmup {
					t0 = c.Time()
				}
				run()
			}
			el := []int64{int64(c.Time() - t0)}
			c.AllreduceInt64(el, mpi.Max)
			if c.Rank() == 0 {
				worst = sim.Time(el[0])
			}
		})
		if err != nil {
			return nil, err
		}
		out[i] = worst.Micros() / float64(iters)
	}
	return out, nil
}

// CollectiveTable sweeps one collective across the scheduling policies on
// the paper's 2×4 configuration.
func CollectiveTable(kind CollKind, o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024}
	t := &stats.Table{
		Title:  fmt.Sprintf("Supplementary: MPI_%s, 2x4 configuration", kind),
		XLabel: "Size", Unit: "us",
	}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original, PPN: 4},
		{QPs: 4, Policy: core.RoundRobin, PPN: 4},
		{QPs: 4, Policy: core.EPC, PPN: 4},
	} {
		vals, err := Collective(kind, s, sizes, o.BWIters, o.BWWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// Stencil times a 2-D torus halo exchange (the paper's "future work"
// pattern) and returns µs per iteration.
func Stencil(s Setup, haloBytes, iters int) (float64, error) {
	var worst sim.Time
	cfg := s.Config()
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		p := c.Size()
		gx := 1
		for gx*gx < p {
			gx *= 2
		}
		gy := p / gx
		rank := c.Rank()
		px, py := rank%gx, rank/gx
		left := py*gx + (px-1+gx)%gx
		right := py*gx + (px+1)%gx
		up := ((py-1+gy)%gy)*gx + px
		down := ((py+1)%gy)*gx + px
		c.Barrier()
		t0 := c.Time()
		for it := 0; it < iters; it++ {
			c.SendrecvN(right, 1, nil, haloBytes, left, 1, nil, haloBytes)
			c.SendrecvN(left, 2, nil, haloBytes, right, 2, nil, haloBytes)
			if gy > 1 {
				c.SendrecvN(down, 3, nil, haloBytes, up, 3, nil, haloBytes)
				c.SendrecvN(up, 4, nil, haloBytes, down, 4, nil, haloBytes)
			}
		}
		el := []int64{int64(c.Time() - t0)}
		c.AllreduceInt64(el, mpi.Max)
		if rank == 0 {
			worst = sim.Time(el[0])
		}
	})
	if err != nil {
		return 0, err
	}
	return worst.Micros() / float64(iters), nil
}

// StencilTable compares the policies on a 4-node stencil (one connection
// active per link at a time: the regime where blocking-transfer policies
// separate, per the paper's §3.2.1 analysis).
func StencilTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{64 * 1024, 256 * 1024, 1 << 20}
	t := &stats.Table{
		Title:  "Supplementary: 2-D stencil halo exchange, 4 nodes",
		XLabel: "Size", Unit: "us/iter",
	}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original, Nodes: 4},
		{QPs: 4, Policy: core.RoundRobin, Nodes: 4},
		{QPs: 4, Policy: core.EPC, Nodes: 4},
	} {
		for _, n := range sizes {
			v, err := Stencil(s, n, o.BWIters)
			if err != nil {
				return nil, err
			}
			t.Add(s.Label(), n, v)
		}
	}
	return t, nil
}

// ScalingTable sweeps node counts (the conclusions' "scalability issues
// for large scale clusters"): per-iteration time of a 1 MB ring exchange.
func ScalingTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	t := &stats.Table{
		Title:  "Supplementary: 1MB ring exchange vs node count",
		XLabel: "Nodes", Unit: "us/iter",
	}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.EPC},
	} {
		for _, nodes := range []int{2, 4, 8, 16} {
			s := s
			s.Nodes = nodes
			var worst sim.Time
			_, err := mpi.Run(s.Config(), func(c *mpi.Comm) {
				p := c.Size()
				right := (c.Rank() + 1) % p
				left := (c.Rank() - 1 + p) % p
				c.Barrier()
				t0 := c.Time()
				for it := 0; it < o.BWIters; it++ {
					c.SendrecvN(right, 0, nil, 1<<20, left, 0, nil, 1<<20)
				}
				el := []int64{int64(c.Time() - t0)}
				c.AllreduceInt64(el, mpi.Max)
				if c.Rank() == 0 {
					worst = sim.Time(el[0])
				}
			})
			if err != nil {
				return nil, err
			}
			t.Add(s.Label(), nodes, worst.Micros()/float64(o.BWIters))
		}
	}
	return t, nil
}

// RendezvousTable compares the RPUT (paper) and RGET rendezvous engines on
// uni-directional bandwidth.
func RendezvousTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 64 * 1024, 256 * 1024, 1 << 20}
	t := &stats.Table{
		Title:  "Supplementary: rendezvous protocol, uni-directional bandwidth (EPC 4QP)",
		XLabel: "Size", Unit: "MB/s",
	}
	for _, r := range []struct {
		name string
		p    adi.RndvProto
	}{
		{"RPUT (sender writes)", adi.RndvWrite},
		{"RGET (receiver reads)", adi.RndvRead},
	} {
		vals := make([]float64, len(sizes))
		for i, n := range sizes {
			n := n
			var elapsed sim.Time
			cfg := Setup{QPs: 4, Policy: core.EPC}.Config()
			cfg.Rndv = r.p
			_, err := mpi.Run(cfg, func(c *mpi.Comm) {
				reqs := make([]*mpi.Request, o.Window)
				switch c.Rank() {
				case 0:
					var t0 sim.Time
					for it := 0; it < o.BWWarmup+o.BWIters; it++ {
						if it == o.BWWarmup {
							t0 = c.Time()
						}
						for w := range reqs {
							reqs[w] = c.IsendN(1, 0, nil, n)
						}
						c.Waitall(reqs)
						c.RecvN(1, 1, nil, 4)
					}
					elapsed = c.Time() - t0
				case 1:
					for it := 0; it < o.BWWarmup+o.BWIters; it++ {
						for w := range reqs {
							reqs[w] = c.IrecvN(0, 0, nil, n)
						}
						c.Waitall(reqs)
						c.SendN(0, 1, nil, 4)
					}
				}
			})
			if err != nil {
				return nil, err
			}
			vals[i] = float64(o.BWIters) * float64(o.Window) * float64(n) / elapsed.Seconds() / 1e6
		}
		addSweep(t, r.name, sizes, vals)
	}
	return t, nil
}

// OversubscriptionTable sweeps routed-fabric oversubscription on a
// bisection shift exchange — the "scalability issues for large scale
// clusters" axis of the conclusions. Rows 1/2/4 are three-tier fat trees
// (16 nodes, 4 per leaf, SpinesPerPod 4/2/1 → 1:1, 2:1, 4:1 at the leaf);
// row 8 is a dragonfly (2 groups × 2 routers × 2 nodes, 2 global lanes,
// trunks at half rate). Each shape runs static D-mod-K vs adaptive
// least-loaded routing, clean and with spine/global plane 0 degraded to a
// quarter of its rate — the qualitative adaptive-routing win of
// Maglione-Mathey et al. "flat" is the single-switch reference the 1:1
// clean adaptive cell must sit within noise of.
func OversubscriptionTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	t := &stats.Table{
		Title:  "Supplementary: routed-fabric oversubscription, 1MB shift exchange (EPC 4QP); rows 1/2/4: 16-node three-tier tree, row 8: 8-node dragonfly 2gx2r; degraded = plane 0 at 25% rate",
		XLabel: "Oversub", Unit: "MB/s",
	}
	run := func(s Setup) (float64, error) {
		var worst sim.Time
		cfg := s.Config()
		_, err := mpi.Run(cfg, func(c *mpi.Comm) {
			p := c.Size()
			peer := (c.Rank() + p/2) % p
			c.Barrier()
			t0 := c.Time()
			for it := 0; it < o.BWIters; it++ {
				c.SendrecvN(peer, 0, nil, 1<<20, peer, 0, nil, 1<<20)
			}
			el := []int64{int64(c.Time() - t0)}
			c.AllreduceInt64(el, mpi.Max)
			if c.Rank() == 0 {
				worst = sim.Time(el[0])
			}
		})
		if err != nil {
			return 0, err
		}
		sent := float64(o.BWIters) * float64(cfg.Nodes*cfg.ProcsPerNode) * float64(1<<20)
		return sent / worst.Seconds() / 1e6, nil
	}
	flat, err := run(Setup{QPs: 4, Policy: core.EPC, Nodes: 16})
	if err != nil {
		return nil, err
	}
	t.Add("flat", 1, flat)
	link := model.Default().LinkRawRate
	shapes := []struct {
		x   int
		set func(*Setup)
	}{
		{1, func(s *Setup) { s.Nodes, s.NodesPerSwitch, s.Tiers, s.SpinesPerPod = 16, 4, 3, 4 }},
		{2, func(s *Setup) { s.Nodes, s.NodesPerSwitch, s.Tiers, s.SpinesPerPod = 16, 4, 3, 2 }},
		{4, func(s *Setup) { s.Nodes, s.NodesPerSwitch, s.Tiers, s.SpinesPerPod = 16, 4, 3, 1 }},
		{8, func(s *Setup) {
			s.Nodes, s.NodesPerSwitch = 8, 2
			s.Dragonfly = topo.Dragonfly{Groups: 2, RoutersPerGroup: 2, GlobalLinks: 2}
			s.TrunkRate = link / 2
		}},
	}
	for _, routing := range []fabric.Routing{fabric.RouteStatic, fabric.RouteAdaptive} {
		for _, degraded := range []bool{false, true} {
			name := routing.String() + " clean"
			if degraded {
				name = routing.String() + " degraded"
			}
			for _, sh := range shapes {
				s := Setup{QPs: 4, Policy: core.EPC, Routing: routing}
				sh.set(&s)
				if degraded {
					s.Chaos = chaos.DegradedTrunk(0, sim.Second, 0, 0.25)
				}
				v, err := run(s)
				if err != nil {
					return nil, err
				}
				t.Add(name, sh.x, v)
			}
		}
	}
	return t, nil
}

// AlltoallAlgTable compares the Alltoall algorithms (ablation): the cyclic
// pairwise ladder the paper's MVAPICH used, the fully-concurrent linear
// algorithm, and Bruck's log-step merge for small blocks.
func AlltoallAlgTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{64, 1024, 16 * 1024, 256 * 1024}
	t := &stats.Table{
		Title:  "Supplementary: Alltoall algorithm ablation, 2x4, EPC 4QP",
		XLabel: "Size", Unit: "us",
	}
	for _, alg := range []mpi.A2AAlg{mpi.A2APairwise, mpi.A2ALinear, mpi.A2ABruck} {
		vals := make([]float64, len(sizes))
		for i, n := range sizes {
			n := n
			var worst sim.Time
			_, err := mpi.Run(Setup{QPs: 4, Policy: core.EPC, PPN: 4}.Config(), func(c *mpi.Comm) {
				c.Barrier()
				var t0 sim.Time
				for it := 0; it < o.BWWarmup+o.BWIters; it++ {
					if it == o.BWWarmup {
						t0 = c.Time()
					}
					c.AlltoallAlg(alg, nil, n, nil)
				}
				el := []int64{int64(c.Time() - t0)}
				c.AllreduceInt64(el, mpi.Max)
				if c.Rank() == 0 {
					worst = sim.Time(el[0])
				}
			})
			if err != nil {
				return nil, err
			}
			vals[i] = worst.Micros() / float64(o.BWIters)
		}
		addSweep(t, alg.String(), sizes, vals)
	}
	return t, nil
}

// HCAGenerationTable compares the paper's IBM 12x/GX+ HCA with the
// contemporary 8x PCI-Express generation its introduction cites, both under
// their best configuration (EPC over all engines) and single-rail.
func HCAGenerationTable(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 256 * 1024, 1 << 20}
	t := &stats.Table{
		Title:  "Supplementary: HCA generations, uni-directional bandwidth",
		XLabel: "Size", Unit: "MB/s",
	}
	type cfg struct {
		name  string
		setup Setup
	}
	m8 := model.PCIe8x()
	cfgs := []cfg{
		{"8x PCIe original", Setup{QPs: 1, Policy: core.Original, Model: m8}},
		{"8x PCIe EPC 2QP", Setup{QPs: 2, Policy: core.EPC, Model: m8}},
		{"12x GX+ original", Setup{QPs: 1, Policy: core.Original}},
		{"12x GX+ EPC 4QP", Setup{QPs: 4, Policy: core.EPC}},
	}
	for _, c := range cfgs {
		vals, err := UniBandwidth(c.setup, sizes, o.Window, o.BWIters, o.BWWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, c.name, sizes, vals)
	}
	return t, nil
}

// NoDegradationTable runs EP and CG (the paper: "we have not seen
// performance degradation using other NAS Parallel Benchmarks").
func NoDegradationTable() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Supplementary: other NAS kernels, original vs EPC (2 procs)",
		XLabel: "Kernel", Unit: "s",
	}
	for i, k := range []struct {
		kernel, class byte
	}{{'E', 'S'}, {'C', 'S'}, {'C', 'A'}, {'M', 'A'}, {'L', 'W'}} {
		orig, err := RunNAS(k.kernel, k.class, 2, 1, 1, core.Original)
		if err != nil {
			return nil, err
		}
		epc, err := RunNAS(k.kernel, k.class, 2, 1, 4, core.EPC)
		if err != nil {
			return nil, err
		}
		t.Add("original (1 QP/port)", i, orig)
		t.Add("EPC 4QP", i, epc)
	}
	return t, nil
}
