package bench

import (
	"fmt"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/nas"
	"ib12x/internal/stats"
)

// FigOpts controls figure regeneration. The zero value gives the defaults
// used by cmd/reproduce; Quick substitutes smaller problems for tests.
type FigOpts struct {
	LatIters, LatWarmup int // ping-pong iterations (default 200/20)
	BWIters, BWWarmup   int // bandwidth iterations (default 20/2)
	Window              int // bandwidth window (default 64, as §4.2)
	Quick               bool
}

func (o FigOpts) defaults() FigOpts {
	if o.LatIters == 0 {
		o.LatIters = 200
	}
	if o.LatWarmup == 0 {
		o.LatWarmup = 20
	}
	if o.BWIters == 0 {
		o.BWIters = 20
	}
	if o.BWWarmup == 0 {
		o.BWWarmup = 2
	}
	if o.Window == 0 {
		o.Window = 64
	}
	if o.Quick {
		o.LatIters, o.LatWarmup = 30, 3
		o.BWIters, o.BWWarmup = 5, 1
	}
	return o
}

// addSweep runs fn for one setup and adds the points to the table.
func addSweep(t *stats.Table, name string, sizes []int, vals []float64) {
	for i, n := range sizes {
		t.Add(name, n, vals[i])
	}
}

// Fig3 regenerates Figure 3: small-message latency — the enhanced design
// adds no overhead over the original for latency-bound traffic.
func Fig3(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{1, 4, 16, 64, 256, 1024, 4096}
	t := &stats.Table{Title: "Figure 3: MPI latency, small messages", XLabel: "Size", Unit: "us"}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 2, Policy: core.EPC},
		{QPs: 4, Policy: core.EPC},
	} {
		vals, err := Latency(s, sizes, o.LatIters, o.LatWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// Fig4 regenerates Figure 4: large-message latency under each scheduling
// policy; EPC and even striping lead, binding and round robin trail.
func Fig4(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 64 * 1024, 256 * 1024, 1 << 20}
	t := &stats.Table{Title: "Figure 4: MPI latency, large messages", XLabel: "Size", Unit: "us"}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.EPC},
		{QPs: 4, Policy: core.Binding},
		{QPs: 4, Policy: core.EvenStriping},
		{QPs: 4, Policy: core.RoundRobin},
	} {
		vals, err := Latency(s, sizes, o.LatIters, o.LatWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// Fig5 regenerates Figure 5: small/medium-message uni-directional
// bandwidth; round robin (and hence EPC) engages multiple engines past 1KB.
func Fig5(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{64, 256, 1024, 2048, 4096, 8192}
	t := &stats.Table{Title: "Figure 5: uni-directional bandwidth, small messages", XLabel: "Size", Unit: "MB/s"}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 2, Policy: core.EPC},
		{QPs: 4, Policy: core.EPC},
		{QPs: 4, Policy: core.RoundRobin},
	} {
		vals, err := UniBandwidth(s, sizes, o.Window, o.BWIters, o.BWWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// Fig6 regenerates Figure 6: large-message uni-directional bandwidth; the
// peak comparison (2745 vs 1661 MB/s) plus even striping's medium-size dip.
func Fig6(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1 << 20}
	t := &stats.Table{Title: "Figure 6: uni-directional bandwidth, large messages", XLabel: "Size", Unit: "MB/s"}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.EPC},
		{QPs: 4, Policy: core.EvenStriping},
	} {
		vals, err := UniBandwidth(s, sizes, o.Window, o.BWIters, o.BWWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// Fig7 regenerates Figure 7: bi-directional bandwidth (5362 vs ~3 GB/s).
func Fig7(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1 << 20}
	t := &stats.Table{Title: "Figure 7: bi-directional bandwidth, large messages", XLabel: "Size", Unit: "MB/s"}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.EPC},
		{QPs: 4, Policy: core.EvenStriping},
	} {
		vals, err := BiBandwidth(s, sizes, o.Window, o.BWIters, o.BWWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// Fig8 regenerates Figure 8: MPI_Alltoall (Pallas) on the 2×4
// configuration; the collective marker (EPC) wins even at medium sizes.
func Fig8(o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024}
	t := &stats.Table{Title: "Figure 8: Alltoall, 2x4 configuration", XLabel: "Size", Unit: "us"}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original, PPN: 4},
		{QPs: 4, Policy: core.RoundRobin, PPN: 4},
		{QPs: 4, Policy: core.EvenStriping, PPN: 4},
		{QPs: 4, Policy: core.EPC, PPN: 4},
	} {
		vals, err := Alltoall(s, sizes, o.BWIters, o.BWWarmup)
		if err != nil {
			return nil, err
		}
		addSweep(t, s.Label(), sizes, vals)
	}
	return t, nil
}

// NASFig regenerates one NAS figure: execution time versus process count
// (2, 4, 8 on two nodes, as 2×1, 2×2, 2×4) for the single-rail original and
// 4-QP EPC. kernel is 'I' (IS) or 'F' (FT); class 'S'..'C'.
func NASFig(kernel, class byte, o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	title := map[byte]string{'I': "Integer Sort", 'F': "Fourier Transform"}[kernel]
	t := &stats.Table{
		Title:  fmt.Sprintf("NAS %s, class %c", title, class),
		XLabel: "Procs", Unit: "s",
	}
	for _, s := range []Setup{
		{QPs: 1, Policy: core.Original},
		{QPs: 4, Policy: core.EPC},
	} {
		for _, ppn := range []int{1, 2, 4} {
			sec, err := RunNAS(kernel, class, 2, ppn, s.QPs, s.Policy)
			if err != nil {
				return nil, err
			}
			t.Add(s.Label(), 2*ppn, sec)
		}
	}
	return t, nil
}

// RunNAS executes one NAS kernel configuration and returns the benchmark's
// timed-region seconds. Kernels: 'I' (IS: real sort, synthetic payloads),
// 'F' (FT: fully modeled), 'E' (EP: modeled generation), 'C' (CG: real
// solver), 'M' (MG: fully modeled), 'L' (LU wavefront: real relaxation).
// See DESIGN.md §5 and the nas docs.
func RunNAS(kernel, class byte, nodes, ppn, qps int, policy core.Kind) (float64, error) {
	cfg := mpi.Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: policy}
	var sec float64
	var err error
	switch kernel {
	case 'I':
		var cl nas.ISClass
		cl, err = nas.ISClassByName(class)
		if err != nil {
			return 0, err
		}
		board := nas.NewISBoard(nodes * ppn)
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			res := nas.RunIS(c, cl, true, board)
			if c.Rank() == 0 {
				if !res.Verified {
					panic("nas: IS verification failed")
				}
				sec = res.Elapsed.Seconds()
			}
		})
	case 'F':
		var cl nas.FTClass
		cl, err = nas.FTClassByName(class)
		if err != nil {
			return 0, err
		}
		if !cl.ValidFor(nodes * ppn) {
			return 0, fmt.Errorf("bench: FT class %c invalid for %d ranks", class, nodes*ppn)
		}
		board := nas.NewFTBoard(nodes * ppn)
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			res := nas.RunFT(c, cl, true, board)
			if c.Rank() == 0 {
				sec = res.Elapsed.Seconds()
			}
		})
	case 'E':
		var cl nas.EPClass
		cl, err = nas.EPClassByName(class)
		if err != nil {
			return 0, err
		}
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			res := nas.RunEP(c, cl, true)
			if c.Rank() == 0 {
				sec = res.Elapsed.Seconds()
			}
		})
	case 'C':
		var cl nas.CGClass
		cl, err = nas.CGClassByName(class)
		if err != nil {
			return 0, err
		}
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			res := nas.RunCG(c, cl)
			if c.Rank() == 0 {
				if !res.Verified {
					panic("nas: CG verification failed")
				}
				sec = res.Elapsed.Seconds()
			}
		})
	case 'M':
		var cl nas.MGClass
		cl, err = nas.MGClassByName(class)
		if err != nil {
			return 0, err
		}
		if cl.N%(nodes*ppn) != 0 {
			return 0, fmt.Errorf("bench: MG class %c invalid for %d ranks", class, nodes*ppn)
		}
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			res := nas.RunMG(c, cl, true)
			if c.Rank() == 0 {
				sec = res.Elapsed.Seconds()
			}
		})
	case 'L':
		var cl nas.LUClass
		cl, err = nas.LUClassByName(class)
		if err != nil {
			return 0, err
		}
		_, err = mpi.Run(cfg, func(c *mpi.Comm) {
			res := nas.RunLU(c, cl)
			if c.Rank() == 0 {
				if !res.Verified {
					panic("nas: LU verification failed")
				}
				sec = res.Elapsed.Seconds()
			}
		})
	default:
		return 0, fmt.Errorf("bench: unknown NAS kernel %q", string(kernel))
	}
	return sec, err
}

// Headline reports the paper's §1 summary numbers: the large-message
// latency improvement and the uni-/bi-directional bandwidth peaks and
// gains of EPC over the original single-rail design.
type Headline struct {
	LatencyImprovePct float64 // 1MB ping-pong latency improvement
	UniPeakOrig       float64 // MB/s
	UniPeakEPC        float64
	UniGainPct        float64
	BiPeakOrig        float64
	BiPeakEPC         float64
	BiGainPct         float64
}

// Measure computes the headline numbers at 1 MB.
func (o FigOpts) Measure() (Headline, error) {
	o = o.defaults()
	sizes := []int{1 << 20}
	var h Headline
	origL, err := Latency(Setup{QPs: 1, Policy: core.Original}, sizes, o.LatIters, o.LatWarmup)
	if err != nil {
		return h, err
	}
	epcL, err := Latency(Setup{QPs: 4, Policy: core.EPC}, sizes, o.LatIters, o.LatWarmup)
	if err != nil {
		return h, err
	}
	h.LatencyImprovePct = stats.Improvement(origL[0], epcL[0])

	origU, err := UniBandwidth(Setup{QPs: 1, Policy: core.Original}, sizes, o.Window, o.BWIters, o.BWWarmup)
	if err != nil {
		return h, err
	}
	epcU, err := UniBandwidth(Setup{QPs: 4, Policy: core.EPC}, sizes, o.Window, o.BWIters, o.BWWarmup)
	if err != nil {
		return h, err
	}
	h.UniPeakOrig, h.UniPeakEPC = origU[0], epcU[0]
	h.UniGainPct = stats.Gain(origU[0], epcU[0])

	origB, err := BiBandwidth(Setup{QPs: 1, Policy: core.Original}, sizes, o.Window, o.BWIters, o.BWWarmup)
	if err != nil {
		return h, err
	}
	epcB, err := BiBandwidth(Setup{QPs: 4, Policy: core.EPC}, sizes, o.Window, o.BWIters, o.BWWarmup)
	if err != nil {
		return h, err
	}
	h.BiPeakOrig, h.BiPeakEPC = origB[0], epcB[0]
	h.BiGainPct = stats.Gain(origB[0], epcB[0])
	return h, nil
}
