package bench

import (
	"strings"
	"testing"
)

// TestDegradedRailTable checks the one-rail-dead sweep produces a full
// matrix: every policy column, every Figure 6 size, every cell a positive
// bandwidth despite a quarter of the fabric being dead from t=0.
func TestDegradedRailTable(t *testing.T) {
	tab, err := degradedRailTable(1, FigOpts{Quick: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != len(degradedPolicies) {
		t.Fatalf("%d series, want %d", len(tab.Series), len(degradedPolicies))
	}
	for _, s := range tab.Series {
		if len(s.Points) != 7 {
			t.Errorf("%s: %d points, want 7", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Value <= 0 {
				t.Errorf("%s at %d: bandwidth %.2f MB/s, want > 0", s.Name, p.X, p.Value)
			}
		}
	}
	if !strings.Contains(tab.Format(), "one rail dead") {
		t.Error("table title lost its degraded-mode marker")
	}
}

// TestDegradedRailTableSerialParallelIdentical pins the acceptance bar for
// the supplementary table: the serial and parallel harness runs must render
// bit-identically.
func TestDegradedRailTableSerialParallelIdentical(t *testing.T) {
	o := FigOpts{Quick: true, Window: 8}
	serial, err := degradedRailTable(1, o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := degradedRailTable(6, o)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Format(), parallel.Format(); s != p {
		t.Errorf("serial/parallel tables diverge:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}
