package bench

import (
	"ib12x/internal/adi"
	"ib12x/internal/chaos"
	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/stats"
)

// degradedPolicies is every multi-rail policy of the differential matrix —
// each must degrade gracefully, not just the ones the paper plots.
var degradedPolicies = []core.Kind{
	core.Binding,
	core.RoundRobin,
	core.EvenStriping,
	core.WeightedStriping,
	core.EPC,
	core.Adaptive,
}

// DegradedRailTable regenerates the Figure 6 bandwidth sweep with rail 0 of
// node 0 dead from t=0 and the self-healing reliability layer armed: the
// endpoints must detect the corpse on their own evidence (the operator only
// flips QP state), quarantine it out of every policy's mask, and run the
// sweep on the three survivors. One column per policy, so the supplementary
// table shows how each planner sheds a quarter of its fabric.
func DegradedRailTable(o FigOpts) (*stats.Table, error) {
	return degradedRailTable(harness.Workers(), o)
}

// degradedRailTable is DegradedRailTable with an explicit worker count; the
// determinism suite pins serial/parallel bit-identity on it.
func degradedRailTable(workers int, o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	sizes := []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1 << 20}
	t := &stats.Table{
		Title:  "Supplementary: uni-directional bandwidth, one rail dead (self-healing)",
		XLabel: "Size", Unit: "MB/s",
	}
	results, err := harness.MapNAll(workers, degradedPolicies, func(kind core.Kind) ([]float64, error) {
		s := Setup{
			QPs:         4,
			Policy:      kind,
			Chaos:       chaos.RailDeath(0, 0, 0),
			Reliability: &adi.ReliabilityConfig{Seed: 1},
		}
		return UniBandwidth(s, sizes, o.Window, o.BWIters, o.BWWarmup)
	})
	if err != nil {
		return nil, err
	}
	for i, vals := range results {
		addSweep(t, degradedPolicies[i].String(), sizes, vals)
	}
	return t, nil
}
