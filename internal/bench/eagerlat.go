package bench

import (
	"fmt"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/stats"
)

// The RDMA-write eager ablation: the small-message latency floor measured
// under both eager channels for every scheduling policy. The send/recv
// channel pays a full CQE handshake per arrival (CPUCompletion) and a full
// MPI header per message; the ring channel's polling set discovers the slot
// write for RingPollCost and a warm header cache compresses the repeated
// (tag, context) signature, so the ring must sit strictly below send/recv
// at every small size under every policy — the channel is orthogonal to
// rail scheduling. This is the headline table of the RDMA-write eager PR
// (printed by cmd/reproduce -extra).

// eagerLatPolicies spans every multi-rail scheduling policy; the eager
// channel must win under each one.
var eagerLatPolicies = []core.Kind{
	core.Binding, core.RoundRobin, core.EvenStriping,
	core.WeightedStriping, core.EPC, core.Adaptive,
}

// eagerLatSizes spans the small-message regime: 1B to the largest payload
// a ring slot holds (8KB); everything here is below the rendezvous
// threshold on both channels.
var eagerLatSizes = []int{1, 16, 256, 1024, 4096, 8192}

// eagerLatCase is one (policy, eager channel) row of the table.
type eagerLatCase struct {
	name string
	s    Setup
}

func eagerLatCases() []eagerLatCase {
	var cases []eagerLatCase
	for _, kind := range eagerLatPolicies {
		for _, proto := range []struct {
			name string
			p    adi.EagerProto
		}{{"send/recv", adi.EagerSendRecv}, {"rdma-write", adi.EagerRDMAWrite}} {
			cases = append(cases, eagerLatCase{
				name: fmt.Sprintf("%s %s", kind, proto.name),
				s:    Setup{QPs: 4, Policy: kind, EagerProto: proto.p},
			})
		}
	}
	return cases
}

// EagerLatencyTable sweeps the small-message latency floor over both eager
// channels and all scheduling policies.
func EagerLatencyTable(o FigOpts) (*stats.Table, error) {
	return eagerLatencyTable(harness.Workers(), o)
}

// eagerLatencyTable is EagerLatencyTable with an explicit worker count; the
// determinism suite pins serial/parallel bit-identity on it.
func eagerLatencyTable(workers int, o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	t := &stats.Table{
		Title:  "Supplementary: small-message latency floor, RDMA-write eager ring vs send/recv",
		XLabel: "Size", Unit: "us",
	}
	cases := eagerLatCases()
	results, err := harness.MapN(workers, cases, func(c eagerLatCase) ([]float64, error) {
		return Latency(c.s, eagerLatSizes, o.LatIters, o.LatWarmup)
	})
	if err != nil {
		return nil, err
	}
	for i, vals := range results {
		addSweep(t, cases[i].name, eagerLatSizes, vals)
	}
	return t, nil
}
