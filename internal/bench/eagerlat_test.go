package bench

import (
	"strings"
	"testing"
)

// TestEagerLatencyTableStrictWin pins the PR's acceptance bar: under every
// scheduling policy the RDMA-write eager ring sits strictly below the
// send/recv channel at every size up to 1KB (and, with the current model
// constants, at every size in the sweep — the poll-cost saving is
// per-message, not per-byte).
func TestEagerLatencyTableStrictWin(t *testing.T) {
	tab, err := eagerLatencyTable(1, FigOpts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := eagerLatCases()
	if len(tab.Series) != len(cases) {
		t.Fatalf("%d series, want %d", len(tab.Series), len(cases))
	}
	// Rows alternate send/recv, rdma-write per policy.
	for i := 0; i < len(tab.Series); i += 2 {
		sr, ring := tab.Series[i], tab.Series[i+1]
		if !strings.Contains(sr.Name, "send/recv") || !strings.Contains(ring.Name, "rdma-write") {
			t.Fatalf("row pairing broken: %q / %q", sr.Name, ring.Name)
		}
		for j, p := range ring.Points {
			base := sr.Points[j]
			if p.Value <= 0 || base.Value <= 0 {
				t.Errorf("%s at %d: non-positive latency (%.3f / %.3f us)", ring.Name, p.X, base.Value, p.Value)
			}
			if p.X > 1024 {
				continue // the acceptance bar covers <=1KB; larger sizes informational
			}
			if p.Value >= base.Value {
				t.Errorf("%s at %dB: ring %.3f us not strictly below send/recv %.3f us",
					ring.Name, p.X, p.Value, base.Value)
			}
		}
	}
}

// TestEagerLatencyTableSerialParallelIdentical pins determinism: the table
// renders bit-identically from serial and parallel harness runs.
func TestEagerLatencyTableSerialParallelIdentical(t *testing.T) {
	o := FigOpts{Quick: true}
	serial, err := eagerLatencyTable(1, o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eagerLatencyTable(6, o)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Format(), parallel.Format(); s != p {
		t.Errorf("serial/parallel tables diverge:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}
