package bench

import (
	"fmt"
	"strings"

	"ib12x/internal/adi"
	"ib12x/internal/sim"
)

// Report formats a post-run hardware utilization summary for every node of
// a world: send/receive engine utilization, lane occupancy, scheduler load,
// GX+ bus traffic, and the per-rank protocol counters.
func Report(w *adi.World, end sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run length: %v (virtual)\n", end)
	for _, node := range w.Cluster.Nodes {
		fmt.Fprintf(&b, "node %d: GX+ %.1f%% utilized, %d MB moved\n",
			node.ID, 100*node.Bus.Utilization(end), node.Bus.Bytes()>>20)
		for _, port := range node.Ports() {
			fmt.Fprintf(&b, "  port %s: %d WQEs, %d acks, tx %d MB, rx %d MB, rnr-waits %d\n",
				port.Name, port.WQEs, port.Acks, port.TxBytes>>20, port.RxBytes>>20, port.RnrWaits)
			fmt.Fprintf(&b, "    send engines: ")
			for i := range port.SendEngines {
				fmt.Fprintf(&b, "%5.1f%% ", 100*port.SendEngines[i].Utilization(end))
			}
			fmt.Fprintf(&b, "\n    recv engines: ")
			for i := range port.RecvEngines {
				fmt.Fprintf(&b, "%5.1f%% ", 100*port.RecvEngines[i].Utilization(end))
			}
			fmt.Fprintf(&b, "\n    tx lane %5.1f%%   rx lane %5.1f%%   scheduler %5.1f%%\n",
				100*laneUtil(port.TX.Busy(), end),
				100*laneUtil(port.RX.Busy(), end),
				100*port.Sched.Utilization(end))
		}
	}
	for _, ep := range w.Endpoints {
		s := ep.Stats()
		fmt.Fprintf(&b, "rank %d: eager %d, rendezvous %d, stripes w/r %d/%d, shmem %d, ctrl %d, unexpected %d\n",
			ep.Rank, s.EagerSent, s.RendezvousSent, s.StripesSent, s.StripesRead, s.ShmemSent, s.CtrlMsgs, s.UnexpectedHits)
	}
	return b.String()
}

func laneUtil(busy, end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	return float64(busy) / float64(end)
}
