package bench

import (
	"strings"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

// TestLaneCollTable checks the ablation produces the full matrix — every
// (topology, collective, algorithm) series with every size a positive
// per-operation time.
func TestLaneCollTable(t *testing.T) {
	tab, err := laneCollTable(1, FigOpts{Quick: true, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(laneCollCases()); len(tab.Series) != want {
		t.Fatalf("%d series, want %d", len(tab.Series), want)
	}
	for _, s := range tab.Series {
		if len(s.Points) != len(laneCollSizes) {
			t.Errorf("%s: %d points, want %d", s.Name, len(s.Points), len(laneCollSizes))
		}
		for _, p := range s.Points {
			if p.Value <= 0 {
				t.Errorf("%s at %d: %.2f us, want > 0", s.Name, p.X, p.Value)
			}
		}
	}
	if !strings.Contains(tab.Format(), "lane-decomposed") {
		t.Error("table title lost its lane-ablation marker")
	}
}

// TestLaneCollTableSerialParallelIdentical pins the acceptance bar: the
// serial and parallel harness runs of the ablation render bit-identically.
func TestLaneCollTableSerialParallelIdentical(t *testing.T) {
	o := FigOpts{Quick: true, Window: 8}
	serial, err := laneCollTable(1, o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := laneCollTable(6, o)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Format(), parallel.Format(); s != p {
		t.Errorf("serial/parallel tables diverge:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestLaneCollShardedIdentical runs one lane-collective cell on the
// sharded engine and requires exactly the serial virtual-time values.
func TestLaneCollShardedIdentical(t *testing.T) {
	cell := func(shards int) []float64 {
		s := Setup{QPs: 4, Policy: core.EPC, Nodes: 4, CollAlg: mpi.CollLane, Shards: shards}
		vals, err := Collective(CollAllgather, s, []int{64 << 10, 256 << 10}, 5, 1)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return vals
	}
	serial := cell(0)
	sharded := cell(2)
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Errorf("size %d: sharded %.6f us vs serial %.6f us; lane schedule not shard-deterministic",
				i, sharded[i], serial[i])
		}
	}
}
