package bench

import (
	"strings"
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
)

// TestIntegrityOverheadTable runs the generator at quick scale; the
// audit-equals-off and sharded bit-identity invariants are enforced inside
// it, so a clean return already certifies both.
func TestIntegrityOverheadTable(t *testing.T) {
	tbl, err := IntegrityOverheadTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Format()
	for _, want := range []string{"EPC 4QP off", "EPC 4QP audit", "EPC 4QP verify", "original (1 QP/port) verify"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing row %q:\n%s", want, out)
		}
	}
}

// TestIntegrityVerifyCostsBandwidth pins the sign of the overhead: armed
// verification charges two checksum passes per payload, so large-message
// bandwidth must drop measurably below the unprotected run.
func TestIntegrityVerifyCostsBandwidth(t *testing.T) {
	sizes := []int{1 << 20}
	off, err := UniBandwidth(Setup{QPs: 4, Policy: core.EPC}, sizes, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	on, err := UniBandwidth(Setup{QPs: 4, Policy: core.EPC, Integrity: adi.IntegrityVerify}, sizes, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if on[0] >= off[0] {
		t.Errorf("verify-armed bandwidth %.1f MB/s not below unprotected %.1f MB/s", on[0], off[0])
	}
}
