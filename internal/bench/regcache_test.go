package bench

import (
	"math"
	"strings"
	"testing"
)

// TestRegCacheTable pins the physics of the cold/warm split: a full matrix,
// warm bandwidth at least cold bandwidth at every size (cold re-pins its
// whole window every iteration; warm never pays after warmup), and warm
// equal to the registration-free baseline within tolerance (steady-state
// hits are free, so the warm pipeline is the baseline pipeline).
func TestRegCacheTable(t *testing.T) {
	tab, err := regCacheTable(1, FigOpts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != len(regModes) {
		t.Fatalf("%d series, want %d", len(tab.Series), len(regModes))
	}
	base := tab.Get("registration free (baseline)")
	warm := tab.Get("pin-down cache, warm")
	cold := tab.Get("pin-down cache, cold")
	if base == nil || warm == nil || cold == nil {
		t.Fatalf("missing series in table:\n%s", tab.Format())
	}
	for _, p := range warm.Points {
		w := p.Value
		c, ok := cold.At(p.X)
		if !ok || w <= 0 || c <= 0 {
			t.Fatalf("size %d: missing or non-positive cells (warm=%v cold=%v)", p.X, w, c)
		}
		if w < c {
			t.Errorf("size %d: warm %.2f MB/s below cold %.2f MB/s", p.X, w, c)
		}
		b, _ := base.At(p.X)
		if tol := math.Abs(w-b) / b; tol > 0.01 {
			t.Errorf("size %d: warm %.2f MB/s deviates %.2f%% from baseline %.2f MB/s (want <= 1%%)",
				p.X, w, 100*tol, b)
		}
	}
	// The split must be real, not a rounding artifact: at the largest size
	// the cold pass pays ~window*(syscall + 256 pages) per iteration.
	if w, _ := warm.At(1 << 20); true {
		c, _ := cold.At(1 << 20)
		if c >= w*0.99 {
			t.Errorf("1MB: cold %.2f MB/s not measurably below warm %.2f MB/s", c, w)
		}
	}
	if !strings.Contains(tab.Format(), "registration cache") {
		t.Error("table title lost its registration-cache marker")
	}
}

// TestRegCacheTableSerialParallelIdentical pins the acceptance bar for the
// supplementary table: serial and parallel harness runs must render
// bit-identically.
func TestRegCacheTableSerialParallelIdentical(t *testing.T) {
	o := FigOpts{Quick: true}
	serial, err := regCacheTable(1, o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := regCacheTable(6, o)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Format(), parallel.Format(); s != p {
		t.Errorf("serial/parallel tables diverge:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}
