package bench

import (
	"fmt"

	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/stats"
)

// The lane-collective ablation: the same collective at the same size run
// three ways, so the table separates WHERE the multi-rail parallelism is
// extracted —
//
//   lane     — lane-decomposed algorithm, one sub-collective pinned per
//              rail (EPC for the point-to-point residue);
//   striped  — reference algorithm with transport-layer striping under
//              every transfer (EvenStriping);
//   EPC      — reference algorithm over the paper's best point-to-point
//              policy, one rail per transfer.
//
// Both a flat 2-node fabric and an oversubscribed two-level fat tree run
// the sweep: trunk contention is where the lane schedule's fewer, larger,
// rail-disjoint transfers should separate from striping every hop.

// laneCollCase is one (topology, collective, algorithm) row of the table.
type laneCollCase struct {
	topo string
	kind CollKind
	alg  string
	s    Setup
}

func laneCollCases() []laneCollCase {
	flat := Setup{QPs: 4, Nodes: 2, PPN: 2}
	// 8 leaf nodes under 2 switches, trunks at 2:1 oversubscription.
	tree := Setup{QPs: 4, Nodes: 8, PPN: 1, NodesPerSwitch: 4,
		TrunkRate: model.Default().LinkRawRate * 4 / 2}
	var cases []laneCollCase
	for _, topo := range []struct {
		name string
		base Setup
	}{{"2x2 flat", flat}, {"8x1 fat-tree 2:1", tree}} {
		for _, kind := range []CollKind{CollBcast, CollAllgather, CollAllreduce} {
			for _, alg := range []struct {
				name    string
				policy  core.Kind
				collAlg mpi.CollAlg
			}{
				{"lane", core.EPC, mpi.CollLane},
				{"striped", core.EvenStriping, mpi.CollStriped},
				{"EPC", core.EPC, mpi.CollStriped},
			} {
				s := topo.base
				s.Policy = alg.policy
				s.CollAlg = alg.collAlg
				cases = append(cases, laneCollCase{topo.name, kind, alg.name, s})
			}
		}
	}
	return cases
}

// laneCollSizes spans the CollAuto dispatch threshold: 16K sits below it
// (reference algorithms win on fix-up overhead), 256K well above.
var laneCollSizes = []int{16 * 1024, 64 * 1024, 256 * 1024}

// LaneCollTable sweeps the lane/striped/EPC ablation over collectives,
// sizes, and fabrics (printed by cmd/reproduce -extra).
func LaneCollTable(o FigOpts) (*stats.Table, error) {
	return laneCollTable(harness.Workers(), o)
}

// laneCollTable is LaneCollTable with an explicit worker count; the
// determinism suite pins serial/parallel bit-identity on it.
func laneCollTable(workers int, o FigOpts) (*stats.Table, error) {
	o = o.defaults()
	t := &stats.Table{
		Title:  "Supplementary: lane-decomposed collectives vs transport striping",
		XLabel: "Size", Unit: "us",
	}
	cases := laneCollCases()
	results, err := harness.MapN(workers, cases, func(c laneCollCase) ([]float64, error) {
		return Collective(c.kind, c.s, laneCollSizes, o.BWIters, o.BWWarmup)
	})
	if err != nil {
		return nil, err
	}
	for i, vals := range results {
		c := cases[i]
		addSweep(t, fmt.Sprintf("%s %s %s", c.topo, c.kind, c.alg), laneCollSizes, vals)
	}
	return t, nil
}
