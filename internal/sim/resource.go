package sim

// Server models a serial FIFO resource with a fixed byte rate and a fixed
// per-item overhead: a DMA engine, a link lane, a bus. Reserving n bytes at
// time `now` occupies the server for PerItem + n/Rate starting at
// max(now, previous end). Reservations never preempt.
//
// Server does not itself schedule events; callers combine the returned busy
// window with Engine.At.
type Server struct {
	Rate    float64 // service rate in bytes per second; 0 means infinite
	PerItem Time    // fixed occupancy added to every reservation

	freeAt Time // end of the last reservation
	busy   Time // accumulated busy time (utilization accounting)
	items  int64
	bytes  int64
}

// Reserve books n bytes of service starting no earlier than now and returns
// the busy window [start, end). n may be zero for pure-overhead items.
func (s *Server) Reserve(now Time, n int64) (start, end Time) {
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	d := s.PerItem + TransferTime(n, s.Rate)
	end = start + d
	s.freeAt = end
	s.busy += d
	s.items++
	s.bytes += n
	return start, end
}

// ReserveDur books an explicit duration of service starting no earlier than
// now, bypassing the rate/PerItem computation. Used for fixed-cost items
// (e.g. acknowledgment generation) on a shared serial resource.
func (s *Server) ReserveDur(now, dur Time) (start, end Time) {
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	if dur < 0 {
		dur = 0
	}
	end = start + dur
	s.freeAt = end
	s.busy += dur
	s.items++
	return start, end
}

// FreeAt reports when the server next becomes idle.
func (s *Server) FreeAt() Time { return s.freeAt }

// Busy reports total accumulated service time.
func (s *Server) Busy() Time { return s.busy }

// Items reports the number of reservations made.
func (s *Server) Items() int64 { return s.items }

// Bytes reports the total bytes reserved.
func (s *Server) Bytes() int64 { return s.bytes }

// Utilization reports busy time as a fraction of elapsed time up to now.
func (s *Server) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	b := s.busy
	if s.freeAt > now {
		b -= s.freeAt - now // exclude booked-but-future service
	}
	if b < 0 {
		b = 0
	}
	return float64(b) / float64(now)
}

// Reset clears the reservation state and statistics.
func (s *Server) Reset() {
	s.freeAt = 0
	s.busy = 0
	s.items = 0
	s.bytes = 0
}
