package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is a deterministic discrete-event simulation core.
//
// Two kinds of code execute under an Engine:
//
//   - event handlers, scheduled with At/After, which run inline on the
//     engine goroutine and must never block;
//   - processes (Proc), goroutines that the engine schedules one at a time,
//     coroutine style, and that may park on Waiters, Sleep, etc.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now Time
	seq uint64

	pq      []*Timer // 4-ary min-heap ordered by (at, seq); see event.go
	free    []*Timer // recycled pooled timer nodes
	ncancel int      // cancelled timers still in pq (lazy compaction)

	ready  Ring[*Proc] // FIFO ready queue
	cur    *Proc       // proc currently holding the baton (nil in handlers)
	yield  chan struct{}
	nprocs int // live (spawned, not yet finished) procs

	stopped bool
	running bool
	fired   uint64 // events executed (telemetry)

	procRegistry []*Proc // every spawned proc, for deadlock diagnostics

	nodeCtxs []NodeCtx // per-node ctx cache for plain-engine NodeCtx calls

	// Shard-group state (nil/zero on a plain engine; see shard.go).
	grp      *Group      // owning group
	self     int32       // shard index within the group
	curNode  int32       // execution node of the current event/proc context
	curKey   EventKey    // ordering key of the current context (trace attribution)
	curSub   uint64      // records emitted under curKey so far
	wlog     []wlogEntry // events fired this window (barrier ordinal merge)
	postTags []postTag   // attribution of this window's local posts
	escapes  []escapeRec // posts escaping this window, renumbered at the barrier
	tagHooks []func(resolve func(EventKey) EventKey)

	// Debugf, when non-nil, receives internal trace lines (for tests).
	Debugf func(format string, args ...any)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Proc is a simulated process: a goroutine that runs only while it holds the
// engine's baton. All blocking is via park/Ready handoff, so at most one proc
// (or the engine itself) executes at any moment.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	queued bool   // in the ready queue
	parked bool   // waiting to be Ready'd
	dead   bool   // body returned
	why    string // reason for the current park (diagnostics)
	regIdx int    // position in Engine.procRegistry (for swap-removal on death)
	node   int32  // execution node (shard groups; 0 on a plain engine)
	key    EventKey
	body   func(*Proc)
}

// Name reports the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine reports the engine that owns p.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the engine's current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn registers a new process. The body starts running at the engine's
// current time (time zero if the engine has not started). Spawn may be called
// before Run, from handlers, or from other procs.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	return e.spawnNode(e.curNode, name, body)
}

func (e *Engine) spawnNode(node int32, name string, body func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, node: node, resume: make(chan struct{}), body: body}
	e.nprocs++
	if e.grp != nil {
		e.grp.live.Add(1)
	}
	p.regIdx = len(e.procRegistry)
	e.procRegistry = append(e.procRegistry, p)
	e.enqueue(p)
	go func() {
		<-p.resume
		p.body(p)
		p.dead = true
		e.yield <- struct{}{}
	}()
	return p
}

func (e *Engine) enqueue(p *Proc) {
	if p.queued || p.dead {
		return
	}
	p.queued = true
	p.parked = false
	p.why = ""
	if g := e.grp; g != nil {
		// Stamp the attribution key: the proc runs "inside" the context that
		// readied it (serial semantics — readied procs drain before the next
		// event pops). Setup-phase spawns get ascending setup keys, which
		// reproduces the serial spawn-order initial drain across shards.
		if g.setup {
			p.key = EventKey{At: e.now, Src: srcSetup, Seq: g.setupSeq}
			g.setupSeq++
		} else {
			p.key = e.contextKey()
		}
		if g.merged {
			// Merged windows drain through the group FIFO instead of the
			// per-shard ring, preserving the serial global ready order.
			g.mergedReady = append(g.mergedReady, p)
			return
		}
	}
	e.ready.Push(p)
}

// Ready moves a parked proc to the back of the ready queue. Readying a proc
// that is already queued, running, or dead is a no-op, so wake-ups are
// naturally idempotent.
func (e *Engine) Ready(p *Proc) {
	if p == e.cur || !p.parked {
		return
	}
	e.enqueue(p)
}

// park suspends the calling proc until somebody calls Engine.Ready(p).
// why is recorded for deadlock diagnostics.
func (p *Proc) park(why string) {
	e := p.eng
	if e.cur != p {
		panic("sim: park called outside the owning proc (handlers must not block)")
	}
	p.parked = true
	p.why = why
	e.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the calling proc for d ticks of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		p.Yield()
		return
	}
	e := p.eng
	e.postProc(e.now+d, p)
	p.park("sleep")
}

// Yield places the calling proc at the back of the ready queue, letting other
// ready procs and same-time events run first.
func (p *Proc) Yield() {
	e := p.eng
	// Re-enqueue via a zero-delay event so that all currently ready procs
	// and already-scheduled same-time events get their turn.
	e.postProc(e.now, p)
	p.park("yield")
}

// DeadlockError is returned by Run when live procs remain but no events are
// pending: every proc is parked forever.
type DeadlockError struct {
	Time    Time
	Parked  []string // "name: reason" for each parked proc
	NumLive int
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d live procs, all parked [%s]",
		d.Time, d.NumLive, strings.Join(d.Parked, "; "))
}

// Run executes the simulation until no work remains: all procs have finished
// and the event queue is empty (cancelled timers are ignored). It returns a
// *DeadlockError if procs remain parked with no pending events, and nil on a
// clean completion. Run must not be called reentrantly.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	if e.grp != nil {
		panic("sim: Run called on a grouped engine (use Group.Run)")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped {
		// Drain the ready queue first: all work at the current instant
		// completes before the clock advances.
		e.drainReady()
		if e.stopped {
			break
		}
		// Advance the clock to the next pending event.
		if e.fireNext() {
			continue
		}
		// No ready procs, no events.
		if e.nprocs > 0 {
			return e.deadlock()
		}
		return nil
	}
	return nil
}

// runProc hands the baton to p until it parks, yields, or dies.
func (e *Engine) runProc(p *Proc) {
	p.queued = false
	if e.grp != nil {
		e.curNode = p.node
		e.setContextKey(p.key)
	}
	e.cur = p
	p.resume <- struct{}{}
	<-e.yield
	e.cur = nil
	if p.dead {
		e.nprocs--
		if e.grp != nil {
			e.grp.live.Add(-1)
		}
		e.unregister(p)
	}
}

// drainReady runs every ready proc until the queue empties: all work at the
// current instant completes before the clock advances.
func (e *Engine) drainReady() {
	for e.ready.Len() > 0 && !e.stopped {
		e.runProc(e.ready.Pop())
	}
}

// fireTimer executes a popped, non-cancelled timer node.
func (e *Engine) fireTimer(tm *Timer) {
	e.now = tm.at
	if g := e.grp; g != nil {
		e.curNode = tm.exec
		switch {
		case g.merged:
			// Merged windows run in serial order single-threaded: every
			// fired event takes its global execution ordinal as context key
			// inline — the same key the barrier merge would assign it.
			e.setContextKey(EventKey{At: tm.at, SchedT: tm.schedT, Src: srcEscape, Seq: g.ord})
			g.ord++
		case g.parallel:
			// Log the firing for the barrier's global-order merge and adopt
			// a provisional context key (resolved at the barrier).
			kind, a := wlLocal, tm.seq
			switch tm.src {
			case srcSetup:
				kind = wlSetup
			case srcEscape:
				kind = wlEsc
			}
			pos := uint64(len(e.wlog))
			e.wlog = append(e.wlog, wlogEntry{at: tm.at, schedT: tm.schedT, kind: kind, a: a})
			e.setContextKey(EventKey{At: tm.at, SchedT: tm.schedT, Src: srcProv, Seq: pos})
		default:
			e.setContextKey(EventKey{At: tm.at, SchedT: tm.schedT, Src: tm.src, Seq: tm.seq})
		}
	}
	// Pull the action out and recycle the node before firing, so
	// the handler's own scheduling can reuse it immediately.
	fn, afn, a := tm.fn, tm.afn, tm.a
	i0, i1, i2 := tm.i0, tm.i1, tm.i2
	p := tm.proc
	e.recycle(tm)
	switch {
	case p != nil:
		e.Ready(p)
	case afn != nil:
		afn(a, i0, i1, i2)
	default:
		fn()
	}
	e.fired++
}

// fireNext pops and fires the next pending event, reporting whether one ran.
func (e *Engine) fireNext() bool {
	for len(e.pq) > 0 {
		tm := e.heapPop()
		if tm.cancelled {
			e.ncancel--
			continue
		}
		e.fireTimer(tm)
		return true
	}
	return false
}

// registryShrinkFloor is the minimum registry capacity before pruning kicks
// in; below it the slack is cheaper to keep than to reallocate around.
const registryShrinkFloor = 64

// unregister prunes a dead proc from the diagnostics registry (swap-remove),
// so long multi-run simulations do not retain every finished rank's record.
// When live procs fall below a quarter of the registry's capacity the
// backing array is reallocated at half size, so a simulation that spawned a
// large transient fleet does not pin the high-water array forever.
func (e *Engine) unregister(p *Proc) {
	i := p.regIdx
	last := len(e.procRegistry) - 1
	e.procRegistry[i] = e.procRegistry[last]
	e.procRegistry[i].regIdx = i
	e.procRegistry[last] = nil
	e.procRegistry = e.procRegistry[:last]
	if c := cap(e.procRegistry); c >= registryShrinkFloor && last < c/4 {
		shrunk := make([]*Proc, last, c/2)
		copy(shrunk, e.procRegistry)
		e.procRegistry = shrunk
	}
}

func (e *Engine) deadlock() *DeadlockError {
	d := &DeadlockError{Time: e.now, NumLive: e.nprocs}
	for _, p := range e.procRegistry {
		if !p.dead && p.parked {
			d.Parked = append(d.Parked, p.name+": "+p.why)
		}
	}
	sort.Strings(d.Parked)
	return d
}

// EventsFired reports how many timer events have executed (telemetry for
// performance analysis of the simulator itself).
func (e *Engine) EventsFired() uint64 { return e.fired }

// LiveProcs reports spawned procs whose bodies have not returned. A nonzero
// value after RunUntil means the run did not complete within the horizon —
// the virtual-time watchdog signal used by the chaos harness. On a grouped
// engine it reports the group-wide count (an atomic, safe mid-window), since
// liveness guards in higher layers mean "anywhere in the simulation".
func (e *Engine) LiveProcs() int {
	if e.grp != nil {
		return int(e.grp.live.Load())
	}
	return e.nprocs
}

// ParkedProcs lists "name: reason" for every live parked proc, sorted, for
// watchdog diagnostics.
func (e *Engine) ParkedProcs() []string {
	var out []string
	for _, p := range e.procRegistry {
		if !p.dead && p.parked {
			out = append(out, p.name+": "+p.why)
		}
	}
	sort.Strings(out)
	return out
}

// RunUntil executes the simulation until the clock would pass the deadline:
// all events at times ≤ deadline run; the engine then stops with pending
// later events intact. It returns nil even if procs remain parked (they
// may be waiting for events beyond the horizon).
func (e *Engine) RunUntil(deadline Time) error {
	guard := e.At(deadline, func() { e.Stop() })
	err := e.Run()
	guard.Cancel()
	e.stopped = false
	if _, ok := err.(*DeadlockError); ok {
		// Within a bounded window a parked-forever proc is not
		// distinguishable from one waiting past the horizon.
		return nil
	}
	return err
}

// Stop halts the simulation after the currently executing entity yields.
// Procs that have not finished stay suspended; Run returns nil.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
