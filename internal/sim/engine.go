package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is a deterministic discrete-event simulation core.
//
// Two kinds of code execute under an Engine:
//
//   - event handlers, scheduled with At/After, which run inline on the
//     engine goroutine and must never block;
//   - processes (Proc), goroutines that the engine schedules one at a time,
//     coroutine style, and that may park on Waiters, Sleep, etc.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now Time
	seq uint64

	pq      []*Timer // 4-ary min-heap ordered by (at, seq); see event.go
	free    []*Timer // recycled pooled timer nodes
	ncancel int      // cancelled timers still in pq (lazy compaction)

	ready  Ring[*Proc] // FIFO ready queue
	cur    *Proc       // proc currently holding the baton (nil in handlers)
	yield  chan struct{}
	nprocs int // live (spawned, not yet finished) procs

	stopped bool
	running bool
	fired   uint64 // events executed (telemetry)

	procRegistry []*Proc // every spawned proc, for deadlock diagnostics

	// Debugf, when non-nil, receives internal trace lines (for tests).
	Debugf func(format string, args ...any)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Proc is a simulated process: a goroutine that runs only while it holds the
// engine's baton. All blocking is via park/Ready handoff, so at most one proc
// (or the engine itself) executes at any moment.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	queued bool   // in the ready queue
	parked bool   // waiting to be Ready'd
	dead   bool   // body returned
	why    string // reason for the current park (diagnostics)
	regIdx int    // position in Engine.procRegistry (for swap-removal on death)
	body   func(*Proc)
}

// Name reports the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine reports the engine that owns p.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the engine's current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn registers a new process. The body starts running at the engine's
// current time (time zero if the engine has not started). Spawn may be called
// before Run, from handlers, or from other procs.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{}), body: body}
	e.nprocs++
	p.regIdx = len(e.procRegistry)
	e.procRegistry = append(e.procRegistry, p)
	e.enqueue(p)
	go func() {
		<-p.resume
		p.body(p)
		p.dead = true
		e.yield <- struct{}{}
	}()
	return p
}

func (e *Engine) enqueue(p *Proc) {
	if p.queued || p.dead {
		return
	}
	p.queued = true
	p.parked = false
	p.why = ""
	e.ready.Push(p)
}

// Ready moves a parked proc to the back of the ready queue. Readying a proc
// that is already queued, running, or dead is a no-op, so wake-ups are
// naturally idempotent.
func (e *Engine) Ready(p *Proc) {
	if p == e.cur || !p.parked {
		return
	}
	e.enqueue(p)
}

// park suspends the calling proc until somebody calls Engine.Ready(p).
// why is recorded for deadlock diagnostics.
func (p *Proc) park(why string) {
	e := p.eng
	if e.cur != p {
		panic("sim: park called outside the owning proc (handlers must not block)")
	}
	p.parked = true
	p.why = why
	e.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the calling proc for d ticks of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		p.Yield()
		return
	}
	e := p.eng
	e.postProc(e.now+d, p)
	p.park("sleep")
}

// Yield places the calling proc at the back of the ready queue, letting other
// ready procs and same-time events run first.
func (p *Proc) Yield() {
	e := p.eng
	// Re-enqueue via a zero-delay event so that all currently ready procs
	// and already-scheduled same-time events get their turn.
	e.postProc(e.now, p)
	p.park("yield")
}

// DeadlockError is returned by Run when live procs remain but no events are
// pending: every proc is parked forever.
type DeadlockError struct {
	Time    Time
	Parked  []string // "name: reason" for each parked proc
	NumLive int
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d live procs, all parked [%s]",
		d.Time, d.NumLive, strings.Join(d.Parked, "; "))
}

// Run executes the simulation until no work remains: all procs have finished
// and the event queue is empty (cancelled timers are ignored). It returns a
// *DeadlockError if procs remain parked with no pending events, and nil on a
// clean completion. Run must not be called reentrantly.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped {
		// Drain the ready queue first: all work at the current instant
		// completes before the clock advances.
		for e.ready.Len() > 0 && !e.stopped {
			p := e.ready.Pop()
			p.queued = false
			e.cur = p
			p.resume <- struct{}{}
			<-e.yield
			e.cur = nil
			if p.dead {
				e.nprocs--
				e.unregister(p)
			}
		}
		if e.stopped {
			break
		}
		// Advance the clock to the next pending event.
		fired := false
		for len(e.pq) > 0 {
			tm := e.heapPop()
			if tm.cancelled {
				e.ncancel--
				continue
			}
			e.now = tm.at
			// Pull the action out and recycle the node before firing, so
			// the handler's own scheduling can reuse it immediately.
			fn, afn, a := tm.fn, tm.afn, tm.a
			i0, i1, i2 := tm.i0, tm.i1, tm.i2
			p := tm.proc
			e.recycle(tm)
			switch {
			case p != nil:
				e.Ready(p)
			case afn != nil:
				afn(a, i0, i1, i2)
			default:
				fn()
			}
			e.fired++
			fired = true
			break
		}
		if fired {
			continue
		}
		// No ready procs, no events.
		if e.nprocs > 0 {
			return e.deadlock()
		}
		return nil
	}
	return nil
}

// unregister prunes a dead proc from the diagnostics registry (swap-remove),
// so long multi-run simulations do not retain every finished rank's record.
func (e *Engine) unregister(p *Proc) {
	i := p.regIdx
	last := len(e.procRegistry) - 1
	e.procRegistry[i] = e.procRegistry[last]
	e.procRegistry[i].regIdx = i
	e.procRegistry[last] = nil
	e.procRegistry = e.procRegistry[:last]
}

func (e *Engine) deadlock() *DeadlockError {
	d := &DeadlockError{Time: e.now, NumLive: e.nprocs}
	for _, p := range e.procRegistry {
		if !p.dead && p.parked {
			d.Parked = append(d.Parked, p.name+": "+p.why)
		}
	}
	sort.Strings(d.Parked)
	return d
}

// EventsFired reports how many timer events have executed (telemetry for
// performance analysis of the simulator itself).
func (e *Engine) EventsFired() uint64 { return e.fired }

// LiveProcs reports spawned procs whose bodies have not returned. A nonzero
// value after RunUntil means the run did not complete within the horizon —
// the virtual-time watchdog signal used by the chaos harness.
func (e *Engine) LiveProcs() int { return e.nprocs }

// ParkedProcs lists "name: reason" for every live parked proc, sorted, for
// watchdog diagnostics.
func (e *Engine) ParkedProcs() []string {
	var out []string
	for _, p := range e.procRegistry {
		if !p.dead && p.parked {
			out = append(out, p.name+": "+p.why)
		}
	}
	sort.Strings(out)
	return out
}

// RunUntil executes the simulation until the clock would pass the deadline:
// all events at times ≤ deadline run; the engine then stops with pending
// later events intact. It returns nil even if procs remain parked (they
// may be waiting for events beyond the horizon).
func (e *Engine) RunUntil(deadline Time) error {
	guard := e.At(deadline, func() { e.Stop() })
	err := e.Run()
	guard.Cancel()
	e.stopped = false
	if _, ok := err.(*DeadlockError); ok {
		// Within a bounded window a parked-forever proc is not
		// distinguishable from one waiting past the horizon.
		return nil
	}
	return err
}

// Stop halts the simulation after the currently executing entity yields.
// Procs that have not finished stay suspended; Run returns nil.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
