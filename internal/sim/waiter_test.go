package sim

import (
	"reflect"
	"testing"
)

func TestWaiterFIFOWakeOne(t *testing.T) {
	e := NewEngine()
	var w Waiter
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			w.Wait(p, "queueing")
			order = append(order, name)
		})
	}
	e.At(1*Microsecond, func() {
		if w.Len() != 3 {
			t.Errorf("Len = %d, want 3", w.Len())
		}
		w.WakeOne()
	})
	e.At(2*Microsecond, func() { w.WakeOne() })
	e.At(3*Microsecond, func() { w.WakeOne() })
	mustRun(t, e)
	if want := []string{"first", "second", "third"}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestWaiterWakeOneEmptyReportsFalse(t *testing.T) {
	var w Waiter
	if w.WakeOne() {
		t.Error("WakeOne on empty waiter = true")
	}
}

func TestWaitForPredicateLoop(t *testing.T) {
	e := NewEngine()
	var w Waiter
	n := 0
	done := false
	e.Spawn("consumer", func(p *Proc) {
		w.WaitFor(p, "n==3", func() bool { return n == 3 })
		done = true
		if p.Now() != 3*Microsecond {
			t.Errorf("predicate satisfied at %v, want 3us", p.Now())
		}
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.At(Time(i)*Microsecond, func() {
			n = i
			w.WakeAll()
		})
	}
	mustRun(t, e)
	if !done {
		t.Error("WaitFor never returned")
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEngine()
	var q Queue[int]
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p, "item"))
		}
	})
	e.At(1*Microsecond, func() { q.Put(10); q.Put(20) })
	e.At(2*Microsecond, func() { q.Put(30) })
	mustRun(t, e)
	if want := []int{10, 20, 30}; !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestQueueGetBeforePut(t *testing.T) {
	e := NewEngine()
	var q Queue[string]
	var at Time
	var v string
	e.Spawn("consumer", func(p *Proc) {
		v = q.Get(p, "waiting")
		at = p.Now()
	})
	e.At(5*Microsecond, func() { q.Put("x") })
	mustRun(t, e)
	if v != "x" || at != 5*Microsecond {
		t.Errorf("got %q at %v, want \"x\" at 5us", v, at)
	}
}

func TestQueueTryGet(t *testing.T) {
	var q Queue[int]
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue = ok")
	}
	q.Put(7)
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Errorf("TryGet = %d,%v want 7,true", v, ok)
	}
	if q.Len() != 0 {
		t.Errorf("Len after TryGet = %d, want 0", q.Len())
	}
}

func TestWaiterSkipsDeadProcs(t *testing.T) {
	// A proc that dies while queued on a Waiter must not be woken.
	e := NewEngine()
	var w Waiter
	// This proc parks and is then forcibly forgotten when the engine stops;
	// instead we validate the simpler contract: WakeOne skips procs that
	// finished between enqueue and wake. Construct via two waiters is not
	// possible (a parked proc can't finish), so assert the defensive branch
	// directly.
	p := &Proc{eng: e, name: "ghost", dead: true}
	w.ps.Push(p)
	if w.WakeOne() {
		t.Error("WakeOne woke a dead proc")
	}
}
