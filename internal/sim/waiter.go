package sim

// Waiter is a FIFO wait-list of parked procs: the simulation analogue of a
// condition variable. Procs park on it with Wait; handlers or other procs
// release them with WakeOne/WakeAll. There is no spurious wake-up, but the
// usual pattern is still a predicate loop:
//
//	for !ready() {
//		w.Wait(p, "waiting for ready")
//	}
//
// A Waiter's zero value is ready to use.
type Waiter struct {
	ps []*Proc
}

// Wait parks the calling proc on w until woken. why is recorded for
// deadlock diagnostics.
func (w *Waiter) Wait(p *Proc, why string) {
	w.ps = append(w.ps, p)
	p.park(why)
}

// WaitFor parks p on w until pred() is true, re-checking after each wake.
func (w *Waiter) WaitFor(p *Proc, why string, pred func() bool) {
	for !pred() {
		w.Wait(p, why)
	}
}

// WakeOne readies the longest-waiting proc, if any, and reports whether one
// was woken.
func (w *Waiter) WakeOne() bool {
	for len(w.ps) > 0 {
		p := w.ps[0]
		w.ps[0] = nil // drop the reference; the backing array may live on
		w.ps = w.ps[1:]
		if p.dead {
			continue
		}
		p.eng.Ready(p)
		return true
	}
	return false
}

// WakeAll readies every waiting proc in FIFO order.
func (w *Waiter) WakeAll() {
	ps := w.ps
	w.ps = nil
	for _, p := range ps {
		if !p.dead {
			p.eng.Ready(p)
		}
	}
}

// Len reports the number of procs currently parked on w.
func (w *Waiter) Len() int { return len(w.ps) }

// Queue is an unbounded FIFO with a blocking Get, the simulation analogue of
// a buffered channel. Put never blocks. The zero value is ready to use.
type Queue[T any] struct {
	items []T
	w     Waiter
}

// Put appends v and wakes one waiting getter.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.w.WakeOne()
}

// Get removes and returns the head item, parking the calling proc while the
// queue is empty.
func (q *Queue[T]) Get(p *Proc, why string) T {
	for len(q.items) == 0 {
		q.w.Wait(p, why)
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
