package sim

// Waiter is a FIFO wait-list of parked procs: the simulation analogue of a
// condition variable. Procs park on it with Wait; handlers or other procs
// release them with WakeOne/WakeAll. There is no spurious wake-up, but the
// usual pattern is still a predicate loop:
//
//	for !ready() {
//		w.Wait(p, "waiting for ready")
//	}
//
// A Waiter's zero value is ready to use.
type Waiter struct {
	ps Ring[*Proc]
}

// Wait parks the calling proc on w until woken. why is recorded for
// deadlock diagnostics.
func (w *Waiter) Wait(p *Proc, why string) {
	w.ps.Push(p)
	p.park(why)
}

// WaitFor parks p on w until pred() is true, re-checking after each wake.
func (w *Waiter) WaitFor(p *Proc, why string, pred func() bool) {
	for !pred() {
		w.Wait(p, why)
	}
}

// WakeOne readies the longest-waiting proc, if any, and reports whether one
// was woken.
func (w *Waiter) WakeOne() bool {
	for w.ps.Len() > 0 {
		p := w.ps.Pop()
		if p.dead {
			continue
		}
		p.eng.Ready(p)
		return true
	}
	return false
}

// WakeAll readies every waiting proc in FIFO order.
func (w *Waiter) WakeAll() {
	for w.ps.Len() > 0 {
		if p := w.ps.Pop(); !p.dead {
			p.eng.Ready(p)
		}
	}
}

// Len reports the number of procs currently parked on w.
func (w *Waiter) Len() int { return w.ps.Len() }

// Queue is an unbounded FIFO with a blocking Get, the simulation analogue of
// a buffered channel. Put never blocks. The zero value is ready to use.
type Queue[T any] struct {
	items Ring[T]
	w     Waiter
}

// Put appends v and wakes one waiting getter.
func (q *Queue[T]) Put(v T) {
	q.items.Push(v)
	q.w.WakeOne()
}

// Get removes and returns the head item, parking the calling proc while the
// queue is empty.
func (q *Queue[T]) Get(p *Proc, why string) T {
	for q.items.Len() == 0 {
		q.w.Wait(p, why)
	}
	return q.items.Pop()
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.items.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.items.Pop(), true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.items.Len() }
