package sim

import (
	"errors"
	"reflect"
	"testing"
)

func mustRun(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	mustRun(t, e)
	if want := []int{1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("final time = %v, want 30ns", e.Now())
	}
}

func TestSameTimeEventsFireInInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Microsecond, func() { order = append(order, i) })
	}
	mustRun(t, e)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100*Nanosecond, func() {
		e.After(50*Nanosecond, func() { at = e.Now() })
	})
	mustRun(t, e)
	if at != 150*Nanosecond {
		t.Errorf("fired at %v, want 150ns", at)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10*Nanosecond, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	mustRun(t, e)
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past should panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	mustRun(t, e)
}

func TestProcRunsAndFinishes(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("worker", func(p *Proc) { ran = true })
	mustRun(t, e)
	if !ran {
		t.Error("proc body never ran")
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		wake = p.Now()
		p.Sleep(3 * Microsecond)
		wake = p.Now()
	})
	mustRun(t, e)
	if wake != 10*Microsecond {
		t.Errorf("woke at %v, want 10us", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(1 * Microsecond)
				}
			})
		}
		mustRun(t, e)
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: trace %v != first %v", i, got, first)
		}
	}
	// Spawn order is preserved at each time step.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	if !reflect.DeepEqual(first, want) {
		t.Errorf("trace = %v, want %v", first, want)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(1 * Microsecond)
			childTime = c.Now()
		})
	})
	mustRun(t, e)
	if childTime != 6*Microsecond {
		t.Errorf("child finished at %v, want 6us", childTime)
	}
}

func TestYieldLetsOthersRun(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
	})
	mustRun(t, e)
	want := []string{"a1", "b1", "a2"}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("trace = %v, want %v", trace, want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	var w Waiter
	e.Spawn("stuck", func(p *Proc) {
		w.Wait(p, "never woken")
	})
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if d.NumLive != 1 || len(d.Parked) != 1 || d.Parked[0] != "stuck: never woken" {
		t.Errorf("diagnostics = %+v", d)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Spawn("looper", func(p *Proc) {
		for {
			count++
			if count == 3 {
				e.Stop()
			}
			p.Sleep(1 * Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestHandlerWakesProc(t *testing.T) {
	e := NewEngine()
	var w Waiter
	var woke Time
	e.Spawn("waiter", func(p *Proc) {
		w.Wait(p, "signal")
		woke = p.Now()
	})
	e.At(42*Microsecond, func() { w.WakeAll() })
	mustRun(t, e)
	if woke != 42*Microsecond {
		t.Errorf("woke at %v, want 42us", woke)
	}
}

func TestReadyIsIdempotent(t *testing.T) {
	e := NewEngine()
	var w Waiter
	wakes := 0
	var pr *Proc
	e.Spawn("w", func(p *Proc) {
		pr = p
		w.Wait(p, "once")
		wakes++
	})
	e.At(1*Microsecond, func() {
		w.WakeAll()
		e.Ready(pr) // duplicate; must be a no-op
		e.Ready(pr)
	})
	mustRun(t, e)
	if wakes != 1 {
		t.Errorf("woke %d times, want 1", wakes)
	}
}

func TestParkOutsideProcPanics(t *testing.T) {
	e := NewEngine()
	var w Waiter
	var pr *Proc
	e.Spawn("p", func(p *Proc) { pr = p })
	mustRun(t, e)
	defer func() {
		if recover() == nil {
			t.Error("park outside proc should panic")
		}
	}()
	w.Wait(pr, "illegal")
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.At(10*Microsecond, func() { fired = append(fired, 1) })
	e.At(20*Microsecond, func() { fired = append(fired, 2) })
	e.At(30*Microsecond, func() { fired = append(fired, 3) })
	if err := e.RunUntil(20 * Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want first two", fired)
	}
	// Resume to the end.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v after resume", fired)
	}
}

func TestRunUntilWithParkedProc(t *testing.T) {
	e := NewEngine()
	var w Waiter
	woke := false
	e.Spawn("sleeper", func(p *Proc) {
		w.Wait(p, "beyond horizon")
		woke = true
	})
	e.At(100*Microsecond, func() { w.WakeAll() })
	if err := e.RunUntil(50 * Microsecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if woke {
		t.Error("proc woke before its event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Error("proc never woke after resume")
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Microsecond, func() {})
	}
	mustRun(t, e)
	if e.EventsFired() != 5 {
		t.Errorf("EventsFired = %d, want 5", e.EventsFired())
	}
}
