// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives a set of processes (goroutines scheduled one at a time,
// coroutine style) and timed event handlers over a virtual clock. Exactly one
// runnable entity executes at any instant, the ready queue is FIFO and the
// event queue is a min-heap tie-broken by insertion sequence, so a simulation
// is bit-for-bit reproducible across runs and machines.
//
// The virtual clock counts integer picoseconds. At the bandwidths modeled in
// this repository (hundreds of MB/s to tens of GB/s) per-byte service times
// are fractions of a nanosecond; picoseconds keep the arithmetic exact enough
// that no drift is observable over multi-second simulations.
package sim

import "fmt"

// Time is a point on (or a span of) the virtual clock, in picoseconds.
type Time int64

// Common durations expressed in clock ticks.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel duration used to mean "no timeout".
const Forever Time = 1<<63 - 1

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMicros converts floating-point microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// String formats the time with an adaptive unit, e.g. "3.2us" or "1.5ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// TransferTime returns the time to move n bytes at rate bytes/second.
// A non-positive rate or byte count yields zero.
func TransferTime(n int64, rate float64) Time {
	if n <= 0 || rate <= 0 {
		return 0
	}
	return Time(float64(n) / rate * float64(Second))
}
