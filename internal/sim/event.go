package sim

// Event machinery for the hot path: a hand-inlined 4-ary min-heap over
// pooled Timer nodes.
//
// The original implementation used container/heap over a slice of *Timer,
// which costs an interface-boxing allocation per operation and one heap
// allocation per At/After call; profile-wise those two were the largest
// single source of both CPU (sift comparisons through interface dispatch)
// and garbage in full-figure simulations. Here the heap is specialized:
//
//   - 4-ary layout: shallower than binary (fewer cache-missing levels) with
//     the 4 children adjacent in memory, a standard DES event-queue trick;
//   - Timer nodes for handle-free events (Post, PostCall, Sleep, Yield) come
//     from a per-engine free list and are recycled as soon as they fire, so
//     steady-state scheduling allocates nothing;
//   - At/After still return a cancellable *Timer handle; those nodes are NOT
//     pooled (the engine cannot prove the caller dropped the handle, and
//     recycling under a live handle would let a stale Cancel kill an
//     unrelated event), they are simply garbage-collected;
//   - cancelled timers are compacted lazily: Cancel marks the node and the
//     heap is rebuilt without them only once more than half the queue is
//     dead, instead of carrying every corpse to the root one pop at a time.
//
// Event order is the total order (at, seq) — identical to the previous
// implementation, so virtual timelines are bit-for-bit unchanged (the
// determinism digests in internal/adi assert this).

// Timer is a handle to a scheduled event. It may be cancelled before firing.
type Timer struct {
	at  Time
	seq uint64

	// Sharded-mode ordering fields (see shard.go). On a plain engine both
	// stay zero, so the extended comparator degenerates to the historical
	// (at, seq) order. schedT is the virtual time the event was posted at;
	// src classifies the post (srcSetup during setup, srcEscape for
	// barrier-renumbered window escapes, posterLogPos+1 for window-local
	// posts); exec is the node the event runs under (sets Engine.curNode
	// when fired); escaped marks a timer parked for barrier renumbering.
	schedT  Time
	src     int32
	exec    int32
	escaped bool

	// Exactly one of the three fire actions is set: a plain closure, a
	// closure-free call (afn applied to the stashed args), or a proc to
	// ready (the Sleep/Yield fast path).
	fn         func()
	afn        func(a any, i0, i1, i2 int64)
	a          any
	i0, i1, i2 int64
	proc       *Proc

	eng       *Engine // owning engine (for cancel bookkeeping); nil on pooled nodes
	queued    bool    // currently in the heap (pending)
	pooled    bool    // node belongs to the engine free list
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel reports whether the event was
// still pending.
func (tm *Timer) Cancel() bool {
	if tm == nil || tm.cancelled {
		return false
	}
	if tm.escaped {
		// Parked for barrier renumbering: not yet in any heap. The barrier
		// drops cancelled escapes instead of pushing them.
		tm.cancelled = true
		return true
	}
	if !tm.queued {
		return false
	}
	tm.cancelled = true
	if e := tm.eng; e != nil {
		e.ncancel++
		if e.ncancel > len(e.pq)/2 && len(e.pq) >= compactFloor {
			e.compact()
		}
	}
	return true
}

// When reports the virtual time the timer is (or was) scheduled to fire.
func (tm *Timer) When() Time { return tm.at }

// compactFloor is the minimum queue length before lazy compaction triggers;
// below it the dead entries are cheaper to pop than to rebuild around.
const compactFloor = 64

// timerLess is the global total order on events. On a plain engine schedT
// and src are always zero, so the order is the historical (at, seq); in a
// shard group the full key (at, schedT, src, seq) reproduces the serial
// engine's global post order exactly (see the ordering proof in shard.go).
func timerLess(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedT != b.schedT {
		return a.schedT < b.schedT
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// ---- 4-ary heap (methods on Engine; the heap lives in e.pq) ----

func (e *Engine) heapPush(tm *Timer) {
	tm.queued = true
	e.pq = append(e.pq, tm)
	e.siftUp(len(e.pq) - 1)
}

func (e *Engine) heapPop() *Timer {
	h := e.pq
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.pq = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	top.queued = false
	return top
}

func (e *Engine) siftUp(i int) {
	h := e.pq
	tm := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(tm, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = tm
}

func (e *Engine) siftDown(i int) {
	h := e.pq
	n := len(h)
	tm := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], tm) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = tm
}

// compact rebuilds the heap without cancelled entries.
func (e *Engine) compact() {
	h := e.pq
	live := h[:0]
	for _, tm := range h {
		if tm.cancelled {
			tm.queued = false
			continue
		}
		live = append(live, tm)
	}
	for i := len(live); i < len(h); i++ {
		h[i] = nil
	}
	e.pq = live
	e.ncancel = 0
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
}

// ---- free list ----

// alloc returns a recycled pooled node, or a fresh one.
func (e *Engine) alloc() *Timer {
	if n := len(e.free); n > 0 {
		tm := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return tm
	}
	return &Timer{pooled: true}
}

// recycle returns a fired pooled node to the free list. Escaped (At/After)
// nodes are left to the garbage collector: a caller may still hold the
// handle, and reusing the node under it would mis-target a later Cancel.
// Only the reference fields are cleared: the fire-action triple must be
// empty for correct dispatch on reuse (and for GC), while the scalars are
// overwritten by whichever schedule call next claims the node.
func (e *Engine) recycle(tm *Timer) {
	if !tm.pooled {
		return
	}
	tm.fn, tm.afn, tm.a, tm.proc = nil, nil, nil, nil
	e.free = append(e.free, tm)
}

// ---- scheduling ----

// The key assignment and routing logic lives in Engine.sched (shard.go):
// plain engines stamp the historical (at, global seq) and push directly,
// grouped engines classify the post per the shard ordering scheme.

// At schedules fn to run when the virtual clock reaches t and returns a
// cancellable handle. Scheduling in the past (t < Now) is a programming
// error and panics. Handlers run on the engine's goroutine and must not
// block or park. For fire-and-forget events prefer Post/PostAfter, which
// recycle their timer node.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic("sim: At called with a time in the past")
	}
	tm := &Timer{fn: fn, eng: e}
	e.sched(e, tm, t, e.curNode)
	return tm
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn at t with no handle: the event cannot be cancelled, and
// its timer node is pooled, so steady-state use allocates only fn's own
// closure (if any).
func (e *Engine) Post(t Time, fn func()) {
	if t < e.now {
		panic("sim: Post called with a time in the past")
	}
	tm := e.alloc()
	tm.fn = fn
	e.sched(e, tm, t, e.curNode)
}

// PostAfter schedules fn to run d ticks from now, without a handle.
func (e *Engine) PostAfter(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Post(e.now+d, fn)
}

// PostCall schedules fn(a, i0, i1, i2) at t with no handle and no closure:
// the arguments ride in the pooled timer node, so hot paths that would
// otherwise allocate a capturing closure per event allocate nothing.
func (e *Engine) PostCall(t Time, fn func(a any, i0, i1, i2 int64), a any, i0, i1, i2 int64) {
	if t < e.now {
		panic("sim: PostCall called with a time in the past")
	}
	tm := e.alloc()
	tm.afn, tm.a, tm.i0, tm.i1, tm.i2 = fn, a, i0, i1, i2
	e.sched(e, tm, t, e.curNode)
}

// postProc schedules p to be readied at t — the allocation-free core of
// Sleep and Yield.
func (e *Engine) postProc(t Time, p *Proc) {
	tm := e.alloc()
	tm.proc = p
	e.sched(e, tm, t, p.node)
}
