package sim

import "container/heap"

// Timer is a handle to a scheduled event. It may be cancelled before firing.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel reports whether the event was
// still pending.
func (tm *Timer) Cancel() bool {
	if tm == nil || tm.cancelled || tm.index < 0 {
		return false
	}
	tm.cancelled = true
	return true
}

// When reports the virtual time the timer is (or was) scheduled to fire.
func (tm *Timer) When() Time { return tm.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	tm := x.(*Timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}

// At schedules fn to run when the virtual clock reaches t. Scheduling in the
// past (t < Now) is a programming error and panics. Handlers run on the
// engine's goroutine and must not block or park.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic("sim: At called with a time in the past")
	}
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, tm)
	return tm
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}
