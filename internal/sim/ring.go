package sim

// Ring is a growable FIFO ring buffer. The seed implementation's queues
// popped with `q = q[1:]` and refilled with append, which reallocates the
// backing array on every wrap — the dominant allocation site of the
// benchmark figures. A Ring reuses its storage: steady-state traffic does
// not allocate, and a queue that never fully drains stays bounded by its
// high-water mark instead of growing without limit.
//
// FIFO order is exact, so replacing a shifted slice with a Ring cannot move
// a single virtual-time event. The zero value is an empty ring.
type Ring[T any] struct {
	buf  []T // power-of-two capacity
	head int // index of the front element
	n    int // live elements
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the back.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the front element. It panics on an empty ring;
// callers check Len first. The vacated slot is zeroed so the ring does not
// pin popped references.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop from empty Ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Peek returns the front element without removing it.
func (r *Ring[T]) Peek() T {
	if r.n == 0 {
		panic("sim: Peek on empty Ring")
	}
	return r.buf[r.head]
}

func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 8
	}
	next := make([]T, c)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}
