package sim

import (
	"testing"
	"testing/quick"
)

func TestServerReserveSequential(t *testing.T) {
	s := &Server{Rate: 1e9} // 1 GB/s: 1 byte/ns
	start, end := s.Reserve(0, 1000)
	if start != 0 || end != 1000*Nanosecond {
		t.Fatalf("first: [%v,%v), want [0,1000ns)", start, end)
	}
	// Second arrives while busy: queues behind.
	start, end = s.Reserve(500*Nanosecond, 1000)
	if start != 1000*Nanosecond || end != 2000*Nanosecond {
		t.Fatalf("second: [%v,%v), want [1000ns,2000ns)", start, end)
	}
	// Third arrives after idle gap: starts immediately.
	start, end = s.Reserve(5000*Nanosecond, 1000)
	if start != 5000*Nanosecond || end != 6000*Nanosecond {
		t.Fatalf("third: [%v,%v), want [5000ns,6000ns)", start, end)
	}
}

func TestServerPerItemOverhead(t *testing.T) {
	s := &Server{Rate: 1e9, PerItem: 300 * Nanosecond}
	_, end := s.Reserve(0, 700)
	if end != 1000*Nanosecond {
		t.Errorf("end = %v, want 1us (300ns overhead + 700ns data)", end)
	}
	_, end = s.Reserve(0, 0) // pure-overhead item
	if end != 1300*Nanosecond {
		t.Errorf("end = %v, want 1.3us", end)
	}
}

func TestServerInfiniteRate(t *testing.T) {
	s := &Server{PerItem: 10 * Nanosecond} // Rate 0 = infinite
	_, end := s.Reserve(0, 1<<30)
	if end != 10*Nanosecond {
		t.Errorf("end = %v, want 10ns", end)
	}
}

func TestServerStats(t *testing.T) {
	s := &Server{Rate: 1e9}
	s.Reserve(0, 400)
	s.Reserve(0, 600)
	if s.Items() != 2 || s.Bytes() != 1000 {
		t.Errorf("Items=%d Bytes=%d, want 2,1000", s.Items(), s.Bytes())
	}
	if s.Busy() != 1000*Nanosecond {
		t.Errorf("Busy = %v, want 1us", s.Busy())
	}
	// At t=2us the server was busy 1us of 2us = 50%.
	if u := s.Utilization(2000 * Nanosecond); u < 0.49 || u > 0.51 {
		t.Errorf("Utilization = %g, want 0.5", u)
	}
	s.Reset()
	if s.Items() != 0 || s.Bytes() != 0 || s.Busy() != 0 || s.FreeAt() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestServerUtilizationExcludesFutureBooking(t *testing.T) {
	s := &Server{Rate: 1e9}
	s.Reserve(0, 10000) // busy until 10us
	// At t=5us only 5us of the booking has elapsed.
	if u := s.Utilization(5 * Microsecond); u < 0.99 || u > 1.01 {
		t.Errorf("Utilization mid-booking = %g, want 1.0", u)
	}
}

func TestServerNeverOverlapsProperty(t *testing.T) {
	// Property: consecutive reservations never overlap and never start
	// before their arrival time, for any arrival pattern.
	f := func(arrivals []uint16, sizes []uint16) bool {
		s := &Server{Rate: 2.5e9, PerItem: 100 * Nanosecond}
		var now, prevEnd Time
		for i, a := range arrivals {
			now += Time(a) * Nanosecond
			var n int64 = 1
			if i < len(sizes) {
				n = int64(sizes[i]) + 1
			}
			start, end := s.Reserve(now, n)
			if start < now || start < prevEnd || end <= start {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
