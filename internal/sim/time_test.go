package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if Millisecond*1000 != Second || Microsecond*1000 != Millisecond || Nanosecond*1000 != Microsecond {
		t.Fatal("unit ladder broken")
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		tm      Time
		seconds float64
	}{
		{0, 0},
		{Second, 1},
		{Millisecond, 1e-3},
		{Microsecond, 1e-6},
		{Nanosecond, 1e-9},
		{2500 * Nanosecond, 2.5e-6},
	}
	for _, c := range cases {
		if got := c.tm.Seconds(); math.Abs(got-c.seconds) > 1e-15 {
			t.Errorf("(%d).Seconds() = %g, want %g", int64(c.tm), got, c.seconds)
		}
		if got := FromSeconds(c.seconds); got != c.tm {
			t.Errorf("FromSeconds(%g) = %d, want %d", c.seconds, int64(got), int64(c.tm))
		}
	}
	if got := FromMicros(2.5); got != 2500*Nanosecond {
		t.Errorf("FromMicros(2.5) = %v, want 2.5us", got)
	}
	if got := (1500 * Nanosecond).Micros(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Micros = %g, want 1.5", got)
	}
	if got := (2500 * Microsecond).Millis(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Millis = %g, want 2.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		tm   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{5 * Second, "5s"},
		{-3 * Microsecond, "-3us"},
	}
	for _, c := range cases {
		if got := c.tm.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.tm), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 1000 bytes at 1000 bytes/s = 1 second.
	if got := TransferTime(1000, 1000); got != Second {
		t.Errorf("TransferTime(1000,1000) = %v, want 1s", got)
	}
	// 4096 bytes at 1 GB/s = 4096 ns.
	if got := TransferTime(4096, 1e9); got != 4096*Nanosecond {
		t.Errorf("TransferTime(4096,1e9) = %v, want 4096ns", got)
	}
	if TransferTime(0, 1e9) != 0 || TransferTime(-5, 1e9) != 0 || TransferTime(100, 0) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestTransferTimeMonotonicInBytes(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a%1<<24), int64(b%1<<24)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, 2.745e9) <= TransferTime(y, 2.745e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTimeInverseOfRate(t *testing.T) {
	f := func(n uint16) bool {
		bytes := int64(n) + 1
		fast := TransferTime(bytes, 4e9)
		slow := TransferTime(bytes, 1e9)
		return fast <= slow && slow <= 4*fast+4 // integer truncation slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
