package sim

import "testing"

func TestRingFIFO(t *testing.T) {
	var r Ring[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			r.Push(round*100 + i)
		}
		for i := 0; i < 100; i++ {
			if got := r.Pop(); got != round*100+i {
				t.Fatalf("round %d: pop %d, want %d", round, got, round*100+i)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("round %d: len %d after drain", round, r.Len())
		}
	}
}

func TestRingInterleaved(t *testing.T) {
	// Wrap the ring repeatedly with a persistent backlog so head crosses the
	// capacity boundary: order must survive the wraparound and the grow.
	var r Ring[int]
	next, want := 0, 0
	for i := 0; i < 1000; i++ {
		r.Push(next)
		next++
		r.Push(next)
		next++
		if got := r.Pop(); got != want {
			t.Fatalf("step %d: pop %d, want %d", i, got, want)
		}
		want++
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain: pop %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, pushed %d", want, next)
	}
}

func TestRingSteadyStateDoesNotGrow(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 4; i++ {
		r.Push(i)
	}
	capBefore := len(r.buf)
	for i := 0; i < 10000; i++ {
		r.Push(i)
		r.Pop()
	}
	if len(r.buf) != capBefore {
		t.Fatalf("steady-state churn grew the ring: cap %d -> %d", capBefore, len(r.buf))
	}
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty ring must panic")
		}
	}()
	var r Ring[int]
	r.Pop()
}

func TestRingPeek(t *testing.T) {
	var r Ring[string]
	r.Push("a")
	r.Push("b")
	if r.Peek() != "a" {
		t.Fatalf("peek %q, want a", r.Peek())
	}
	if r.Pop() != "a" || r.Peek() != "b" {
		t.Fatal("peek after pop broken")
	}
}
