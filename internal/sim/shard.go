package sim

// Sharded conservative parallel DES.
//
// A Group partitions the simulated nodes across several Engines (shards).
// Each shard runs its own event heap and proc scheduler on a dedicated
// goroutine; the group coordinator advances all shards in lockstep windows
// [W0, W0+L) where L is the conservative lookahead — the minimum virtual
// latency of any cross-shard interaction (the fabric wire latency). Within
// a window shards run fully in parallel: the lookahead bound guarantees no
// event fired in the window can affect another shard inside the same
// window, so every post that targets an instant at or beyond the window end
// (cross-shard or not) is parked on an escape list and released at the
// barrier.
//
// Determinism — the serial-order reconstruction. The serial engine executes
// events in (at, globalPostSeq) order; reproducing it bit-for-bit means
// reproducing the global post sequence, which interleaves posts from all
// shards. The group rebuilds it from three invariants:
//
//  1. Window-local events (posted and fired inside the same window) are
//     posted and fired entirely on one shard. The shard's own post order IS
//     the serial post order restricted to those events (induction over
//     windows: both engines fire the same prefix in the same order), so a
//     per-shard counter keys them: (at, schedT, srcLocal, localSeq).
//
//  2. Events that escape their posting window fire at a strictly later
//     instant than every event of that window (their at is outside the
//     window), so their serial seq only has to be ordered against OTHER
//     escapes and later posts — never against the window's locals at the
//     same instant. At the barrier all escapes of the window are sorted by
//     (posting-context serial position, per-context post ordinal) — exactly
//     the serial post interleaving — and renumbered from a single group
//     counter: (at, schedT, srcEscape, groupSeq).
//
//  3. The posting-context serial position needed by (2) is rebuilt at the
//     same barrier: each shard logs its fired events (its window log, in
//     execution = key order), and a k-way merge of the logs under the
//     serial key order assigns every fired event a global execution
//     ordinal. The merge is well-founded: a window-local entry is compared
//     via its own poster's ordinal, and that poster fired earlier on the
//     same shard, so its ordinal is already assigned when the entry reaches
//     the merge front.
//
// Setup-phase events (armed before Run, src = srcSetup = -1) keep global
// setup keys and sort ahead of all runtime events at the same instant,
// exactly as their small global seq did on the serial engine. Merged-mode
// windows (below) are single-threaded in serial order, so their posts take
// group-counter keys inline.
//
// Zero-latency hazards. A flushed RDMA read or atomic completes on the
// requester with responder-side effects at zero virtual latency, which the
// lookahead cannot cover. The affected layers raise a hazard count
// (HazardInc/HazardDec); while it is nonzero the coordinator runs windows
// in MERGED mode — single-threaded, firing the globally minimal key across
// all shards — which is exactly the serial semantics, then returns to
// parallel windows when the hazard drains.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Timer src classes in a shard group (plain engines keep src == 0):
//
//   - srcSetup: posted during the setup phase; seq is the global setup
//     counter. Sorts first at equal (at, schedT), as small serial seqs do.
//   - srcEscape: renumbered at a barrier (or posted inline during a merged
//     window); seq is the global group counter.
//   - srcLocal: window-local post; seq is the posting shard's per-window
//     counter. Locals from different shards never meet (they die inside
//     their window, on their own heap), and never tie with an escape at
//     equal (at, schedT) — same (at, schedT) implies the same posting
//     window, and a local's at lies inside it while an escape's lies
//     beyond.
const (
	srcSetup  int32 = -1
	srcEscape int32 = 0
	srcLocal  int32 = 1

	// srcProv marks a provisional context key: Seq holds the event's index
	// in its shard's window log until the barrier resolves it to the global
	// execution ordinal. Provisional keys are attribution tags only — they
	// are never compared, and every consumer (trace records, deferred ops,
	// escape sorting) is rewritten at the barrier before any ordering use.
	srcProv int32 = math.MinInt32
)

// EventKey is the shard-count-invariant total order on events. See the
// package comment above for the derivation.
type EventKey struct {
	At     Time   // fire time
	SchedT Time   // virtual time of the posting context (0 = setup/plain)
	Src    int32  // post class (see src* constants; 0 on a plain engine)
	Seq    uint64 // class-specific sequence counter
}

// Less reports whether k orders strictly before o.
func (k EventKey) Less(o EventKey) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	if k.SchedT != o.SchedT {
		return k.SchedT < o.SchedT
	}
	if k.Src != o.Src {
		return k.Src < o.Src
	}
	return k.Seq < o.Seq
}

// windowBound is an EventKey strictly below every key with At == end and
// at or above every key with At < end: the exclusive bound of a window.
func windowBound(end Time) EventKey {
	return EventKey{At: end, SchedT: math.MinInt64, Src: math.MinInt32}
}

// Window-log entry kinds: how a fired event is keyed in the barrier merge
// that reconstructs global execution order.
const (
	wlSetup uint8 = iota // a = global setup seq
	wlEsc                // a = global escape/group seq
	wlLocal              // a = index into the shard's postTags
)

// wlogEntry records one fired event of the current window.
type wlogEntry struct {
	at     Time
	schedT Time
	kind   uint8
	a      uint64
	ord    uint64 // global execution ordinal, assigned by the barrier merge
}

// postTag is the attribution of one window-local post: the posting
// context's key (possibly provisional) and its per-context ordinal.
type postTag struct {
	key EventKey
	sub uint64
}

// escapeRec parks a timer that outlives its posting window until the
// barrier renumbers it.
type escapeRec struct {
	tm  *Timer
	te  *Engine  // target engine (heap to push onto after renumbering)
	by  *Engine  // posting engine (resolves a provisional key)
	key EventKey // posting context (possibly provisional)
	sub uint64   // per-context post ordinal
}

// NodeCtx addresses one simulated node inside a group: the shard engine
// that owns it plus the node id used for event attribution. On a plain
// engine a NodeCtx is just a thin wrapper (see Engine.NodeCtx) and every
// method degenerates to the classic single-engine call.
type NodeCtx struct {
	eng  *Engine
	node int32
}

// Engine reports the shard engine that owns the node.
func (c *NodeCtx) Engine() *Engine { return c.eng }

// Node reports the node id.
func (c *NodeCtx) Node() int { return int(c.node) }

// Now reports the owning engine's current virtual time.
func (c *NodeCtx) Now() Time { return c.eng.now }

// Post schedules fn on the node from code already executing on the node's
// own engine (node-local work such as retransmit backoff timers).
func (c *NodeCtx) Post(t Time, fn func()) { c.eng.PostTo(c, t, fn) }

// PostCall is the closure-free variant of Post.
func (c *NodeCtx) PostCall(t Time, fn func(a any, i0, i1, i2 int64), a any, i0, i1, i2 int64) {
	c.eng.PostCallTo(c, t, fn, a, i0, i1, i2)
}

// Spawn registers a proc attributed to (and scheduled on) this node.
func (c *NodeCtx) Spawn(name string, body func(*Proc)) *Proc {
	return c.eng.spawnNode(c.node, name, body)
}

// NodeCtx wraps a node id for a plain (ungrouped) engine, so callers can
// hold one ctx type for both serial and sharded worlds. Contexts are
// cached per node: a serial world creating hundreds of thousands of flows
// would otherwise allocate two fresh ctxs per flow, all scanned by every
// GC cycle for the rest of the run. A NodeCtx is immutable once built, so
// pointers taken before a cache growth stay valid (they just alias the
// pre-growth backing array).
func (e *Engine) NodeCtx(node int) *NodeCtx {
	if node < len(e.nodeCtxs) {
		return &e.nodeCtxs[node]
	}
	for len(e.nodeCtxs) <= node {
		n := len(e.nodeCtxs)
		e.nodeCtxs = append(e.nodeCtxs, NodeCtx{eng: e, node: int32(n)})
	}
	return &e.nodeCtxs[node]
}

// PostStub is an ordering tag reserved at capture time for an event that
// will be posted later (from a barrier-ordered deferred op). Reserving at
// capture pins the post's serial position to the capture point, where the
// serial engine would have posted inline.
type PostStub struct {
	plain  bool
	schedT Time
	key    EventKey
	sub    uint64
}

// ReserveStub captures the posting position the current context would
// stamp on an event posted right now.
func (e *Engine) ReserveStub() PostStub {
	g := e.grp
	if g == nil || g.setup || g.merged {
		// Single-threaded modes post inline at the deferred-op apply point,
		// which runs immediately — no position to pin.
		return PostStub{plain: true}
	}
	return PostStub{schedT: e.now, key: e.contextKey(), sub: e.nextSub()}
}

// orderedOp is a deferred side effect applied at the barrier in posting
// order (cross-shard lane bookings whose apply order is observable).
type orderedOp struct {
	eng *Engine  // capturing engine (resolves a provisional key)
	key EventKey // capturing context (possibly provisional)
	sub uint64
	fn  func()
}

// Group is a set of shard engines advanced in conservative-lookahead
// lockstep. Build the world between NewGroup and Run ("setup phase"),
// then call Run or RunUntil exactly like on a plain Engine.
type Group struct {
	engines   []*Engine
	ctxs      []NodeCtx // node -> owning ctx
	lookahead Time

	setup    bool   // before Run: single-threaded build phase
	setupSeq uint64 // key sequence for setup-phase events

	parallel  bool // a parallel window is in flight (set/cleared by coordinator)
	windowEnd Time // exclusive bound of the window in flight (set before workers start)

	// ord is the global serial counter for runtime events: execution
	// ordinals assigned by the barrier merge, inline keys of merged-mode
	// posts, and escape renumbering all draw from it, so every value is
	// unique and increases in serial execution order.
	ord uint64

	merged      bool    // executing a merged (serial-order) window
	mergedReady []*Proc // global FIFO of readied procs during merged windows
	curKey      EventKey
	curSub      uint64

	live        atomic.Int64 // live procs across all shards
	hazard      atomic.Int64 // zero-latency cross-shard hazards outstanding
	windowStart atomic.Int64 // W0 of the current window (race-free clock for audits)

	orderedMu sync.Mutex
	ordered   []orderedOp

	coEscapes []escapeRec // escapes captured outside parallel windows (barrier stubs)
	escBuf    []escapeRec // reusable gather buffer for barrier renumbering
	mergeIdx  []int       // reusable per-shard cursor for the barrier merge

	startCh []chan Time
	doneCh  chan struct{}
}

// NewGroup builds shard engines and assigns node n to shard shardOf[n].
// lookahead is the conservative bound: no cross-shard interaction may take
// effect sooner than lookahead after the action that caused it.
func NewGroup(shardOf []int, shards int, lookahead Time) *Group {
	if shards < 1 {
		panic("sim: NewGroup needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: NewGroup needs a positive lookahead")
	}
	g := &Group{
		lookahead: lookahead,
		setup:     true,
	}
	g.engines = make([]*Engine, shards)
	for s := range g.engines {
		e := NewEngine()
		e.grp, e.self = g, int32(s)
		g.engines[s] = e
	}
	g.ctxs = make([]NodeCtx, len(shardOf))
	for n, s := range shardOf {
		if s < 0 || s >= shards {
			panic("sim: NewGroup shard assignment out of range")
		}
		g.ctxs[n] = NodeCtx{eng: g.engines[s], node: int32(n)}
	}
	return g
}

// Ctx returns the NodeCtx for a node.
func (g *Group) Ctx(node int) *NodeCtx { return &g.ctxs[node] }

// Shards reports the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Engines exposes the shard engines (telemetry; do not drive them directly).
func (g *Group) Engines() []*Engine { return g.engines }

// Lookahead reports the conservative window width.
func (g *Group) Lookahead() Time { return g.lookahead }

// WindowStart reports the start time of the current (or last) window. It is
// safe to call from any shard goroutine mid-window, unlike Engine.Now.
func (g *Group) WindowStart() Time { return Time(g.windowStart.Load()) }

// LiveProcs reports live procs across all shards.
func (g *Group) LiveProcs() int { return int(g.live.Load()) }

// EventsFired sums executed events across all shards.
func (g *Group) EventsFired() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.fired
	}
	return n
}

// ParkedProcs lists "name: reason" for every live parked proc, sorted.
func (g *Group) ParkedProcs() []string {
	var out []string
	for _, e := range g.engines {
		out = append(out, e.ParkedProcs()...)
	}
	sort.Strings(out)
	return out
}

// HazardInc raises the zero-latency hazard count: until the matching
// HazardDec, windows run in merged (exact serial order) mode. No-op on a
// plain engine.
func (e *Engine) HazardInc() {
	if e.grp != nil {
		e.grp.hazard.Add(1)
	}
}

// HazardDec releases one hazard raised by HazardInc.
func (e *Engine) HazardDec() {
	if e.grp != nil {
		e.grp.hazard.Add(-1)
	}
}

// Sharded reports whether the engine belongs to a shard group.
func (e *Engine) Sharded() bool { return e.grp != nil }

// ShardGroup returns the owning group, or nil on a plain engine.
func (e *Engine) ShardGroup() *Group { return e.grp }

// contextKey is the ordering key of the currently executing event or proc,
// used to attribute trace records, deferred ops, and escaped posts.
func (e *Engine) contextKey() EventKey {
	if g := e.grp; g != nil && g.merged {
		return g.curKey
	}
	return e.curKey
}

// setContextKey switches the attribution context. The sub counter resets
// only on a genuine context change, so a proc resuming inside the event
// that readied it keeps extending that event's record stream, exactly as
// the serial engine's insertion order does.
func (e *Engine) setContextKey(k EventKey) {
	if g := e.grp; g != nil && g.merged {
		if g.curKey != k {
			g.curKey, g.curSub = k, 0
		}
		return
	}
	if e.curKey != k {
		e.curKey, e.curSub = k, 0
	}
}

// nextSub returns the next per-context ordinal (trace records, deferred
// ops, and escaped posts share the stream; only relative order within a
// context matters).
func (e *Engine) nextSub() uint64 {
	if g := e.grp; g != nil && g.merged {
		s := g.curSub
		g.curSub++
		return s
	}
	s := e.curSub
	e.curSub++
	return s
}

// TraceTag returns the (context key, ordinal) pair identifying the serial
// position of a record emitted right now. During parallel windows the key
// is provisional; the engine resolves it through the hooks registered with
// OnResolveTags at the window's barrier.
func (e *Engine) TraceTag() (EventKey, uint64) {
	return e.contextKey(), e.nextSub()
}

// OnResolveTags registers a hook invoked at each barrier with a resolver
// mapping provisional attribution keys to final serial-position keys.
// Consumers holding keys obtained from TraceTag (trace child recorders)
// must rewrite them through the resolver before ordering on them; keys that
// are already final pass through unchanged.
func (e *Engine) OnResolveTags(h func(resolve func(EventKey) EventKey)) {
	e.tagHooks = append(e.tagHooks, h)
}

// resolveKey maps a provisional context key (srcProv, window-log index) to
// its final serial-position key via the log's execution ordinal. Final keys
// pass through unchanged.
func (e *Engine) resolveKey(k EventKey) EventKey {
	if k.Src != srcProv {
		return k
	}
	return EventKey{At: k.At, SchedT: k.SchedT, Src: srcEscape, Seq: e.wlog[k.Seq].ord}
}

// sched assigns the ordering key of a post targeting execution node
// tm.exec on engine te and routes the timer: plain engines keep the
// historical global sequence and push directly; grouped engines classify
// the post (setup / merged-inline / window-local / escape) per the scheme
// in the package comment.
func (e *Engine) sched(te *Engine, tm *Timer, t Time, exec int32) {
	tm.at, tm.exec = t, exec
	g := e.grp
	if g == nil {
		tm.schedT, tm.src, tm.seq = 0, 0, e.seq
		e.seq++
		e.heapPush(tm)
		return
	}
	if g.setup {
		tm.schedT, tm.src, tm.seq = 0, srcSetup, g.setupSeq
		g.setupSeq++
		te.heapPush(tm)
		return
	}
	tm.schedT = e.now
	if g.merged {
		// Merged windows execute in exact serial order single-threaded, so
		// the inline group counter IS the serial post sequence.
		tm.src, tm.seq = srcEscape, g.ord
		g.ord++
		te.heapPush(tm)
		return
	}
	if !g.parallel {
		panic("sim: event posted outside any window (defer barrier-time posts through ReserveStub)")
	}
	if t >= g.windowEnd {
		// The event outlives the window: park it for barrier renumbering.
		tm.escaped = true
		e.escapes = append(e.escapes, escapeRec{tm: tm, te: te, by: e, key: e.contextKey(), sub: e.nextSub()})
		return
	}
	if te != e {
		panic("sim: cross-shard event inside its own window (lookahead bound violated)")
	}
	tm.src, tm.seq = srcLocal, uint64(len(e.postTags))
	e.postTags = append(e.postTags, postTag{key: e.contextKey(), sub: e.nextSub()})
	e.heapPush(tm)
}

// PostTo schedules fn to execute on the target node at t. The caller must
// be executing on e (the posting context); the target may live on any
// shard. Like Post, the timer node is pooled and not cancellable.
func (e *Engine) PostTo(to *NodeCtx, t Time, fn func()) {
	if t < e.now {
		panic("sim: PostTo called with a time in the past")
	}
	tm := e.alloc()
	tm.fn = fn
	e.sched(to.eng, tm, t, to.node)
}

// PostCallTo is the closure-free cross-node variant of PostCall.
func (e *Engine) PostCallTo(to *NodeCtx, t Time, fn func(a any, i0, i1, i2 int64), a any, i0, i1, i2 int64) {
	if t < e.now {
		panic("sim: PostCallTo called with a time in the past")
	}
	tm := e.alloc()
	tm.afn, tm.a, tm.i0, tm.i1, tm.i2 = fn, a, i0, i1, i2
	e.sched(to.eng, tm, t, to.node)
}

// PostCallStubTo posts with the serial position reserved earlier by
// ReserveStub, for events posted from barrier-ordered deferred ops. On a
// plain engine (or a plain stub) it is exactly PostCallTo.
func (e *Engine) PostCallStubTo(stub PostStub, to *NodeCtx, t Time, fn func(a any, i0, i1, i2 int64), a any, i0, i1, i2 int64) {
	g := e.grp
	if stub.plain || g == nil || g.setup || g.merged {
		e.PostCallTo(to, t, fn, a, i0, i1, i2)
		return
	}
	tm := e.alloc()
	tm.afn, tm.a, tm.i0, tm.i1, tm.i2 = fn, a, i0, i1, i2
	tm.at, tm.exec = t, to.node
	tm.schedT = stub.schedT
	tm.escaped = true
	rec := escapeRec{tm: tm, te: to.eng, by: e, key: stub.key, sub: stub.sub}
	if g.parallel {
		e.escapes = append(e.escapes, rec)
		return
	}
	g.coEscapes = append(g.coEscapes, rec)
}

// DeferOrdered runs fn immediately when execution is single-threaded, or
// defers it to the next barrier, where all deferred ops apply in posting
// order — the serial apply order — regardless of which shard captured them.
// Use for cross-shard side effects whose apply ORDER is observable (shared
// fabric lane bookings) but whose apply TIME only needs to precede the next
// window.
func (e *Engine) DeferOrdered(fn func()) {
	g := e.grp
	if g == nil || !g.parallel {
		fn()
		return
	}
	op := orderedOp{eng: e, key: e.contextKey(), sub: e.nextSub(), fn: fn}
	g.orderedMu.Lock()
	g.ordered = append(g.ordered, op)
	g.orderedMu.Unlock()
}

// peek returns the engine's next pending timer, discarding cancelled
// entries, or nil.
func (e *Engine) peek() *Timer {
	for len(e.pq) > 0 {
		if e.pq[0].cancelled {
			e.heapPop()
			e.ncancel--
			continue
		}
		return e.pq[0]
	}
	return nil
}

// runWindow executes this shard's slice of one window: drain ready procs,
// fire local events strictly below bound, repeat until quiescent.
func (e *Engine) runWindow(bound Time) {
	for {
		e.drainReady()
		tm := e.peek()
		if tm == nil || tm.at >= bound {
			return
		}
		e.heapPop()
		e.fireTimer(tm)
	}
}

// Run executes the group until no work remains, mirroring Engine.Run.
func (g *Group) Run() error {
	return g.run(0, false)
}

// RunUntil executes until the clock would pass deadline, mirroring
// Engine.RunUntil: events at times ≤ deadline run (with the serial guard's
// tie-break at exactly deadline), later events stay pending, and a
// deadlock within the horizon is not an error.
func (g *Group) RunUntil(deadline Time) error {
	err := g.run(deadline, true)
	if _, ok := err.(*DeadlockError); ok {
		return nil
	}
	return err
}

func (g *Group) run(deadline Time, bounded bool) error {
	g.setup = false
	var guard EventKey
	if bounded {
		// Mirror the serial engine's RunUntil guard: a setup-keyed event at
		// the deadline. Setup events scheduled before Run (smaller seq) still
		// fire at the deadline instant; runtime events at the deadline do not.
		guard = EventKey{At: deadline, Src: srcSetup, Seq: g.setupSeq}
		g.setupSeq++
	}
	g.startWorkers()
	defer g.stopWorkers()
	for {
		w0, ok := g.minPending()
		if !ok {
			if g.live.Load() > 0 {
				return g.deadlock()
			}
			return nil
		}
		if bounded && w0 >= deadline {
			if w0 == deadline {
				// Merged-mode posts push inline with final keys, so this
				// final partial instant needs no barrier.
				g.windowEnd = deadline
				g.runMerged(guard)
			}
			return nil
		}
		end := w0 + g.lookahead
		if bounded && end > deadline {
			end = deadline
		}
		g.windowStart.Store(int64(w0))
		g.windowEnd = end
		if g.hazard.Load() > 0 {
			// Zero-latency cross-shard effects outstanding: run this window
			// in exact serial order.
			g.runMerged(windowBound(end))
		} else {
			g.runParallel(end)
		}
		g.barrier(end)
	}
}

// minPending reports the earliest pending instant across all shards
// (events or ready procs), and whether any work exists at all.
func (g *Group) minPending() (Time, bool) {
	var w Time
	ok := false
	for _, e := range g.engines {
		if e.ready.Len() > 0 && (!ok || e.now < w) {
			w, ok = e.now, true
		}
		if tm := e.peek(); tm != nil && (!ok || tm.at < w) {
			w, ok = tm.at, true
		}
	}
	return w, ok
}

func (g *Group) startWorkers() {
	g.startCh = make([]chan Time, len(g.engines))
	g.doneCh = make(chan struct{}, len(g.engines))
	for i, e := range g.engines {
		ch := make(chan Time)
		g.startCh[i] = ch
		go func(e *Engine, ch chan Time) {
			for bound := range ch {
				e.runWindow(bound)
				g.doneCh <- struct{}{}
			}
		}(e, ch)
	}
}

func (g *Group) stopWorkers() {
	for _, ch := range g.startCh {
		close(ch)
	}
	g.startCh = nil
}

// runParallel executes one window concurrently on every shard that has
// work below end.
func (g *Group) runParallel(end Time) {
	g.parallel = true
	n := 0
	for i, e := range g.engines {
		if e.ready.Len() == 0 {
			tm := e.peek()
			if tm == nil || tm.at >= end {
				continue
			}
		}
		g.startCh[i] <- end
		n++
	}
	for ; n > 0; n-- {
		<-g.doneCh
	}
	g.parallel = false
}

// runMerged executes events in exact global key order, single-threaded on
// the coordinator goroutine, until every remaining key is at or beyond
// bound. Cross-engine proc readies drain through the group FIFO, which in
// this mode equals the serial engine's single ready ring.
func (g *Group) runMerged(bound EventKey) {
	g.merged = true
	// Adopt procs already sitting in per-shard ready rings (setup spawns —
	// rings are empty between runtime windows): a stable sort by ready key
	// reconstructs the global serial ready order — equal keys can only come
	// from one context, hence one ring, whose relative order is preserved.
	for _, e := range g.engines {
		for e.ready.Len() > 0 {
			g.mergedReady = append(g.mergedReady, e.ready.Pop())
		}
	}
	sort.SliceStable(g.mergedReady, func(i, j int) bool {
		return g.mergedReady[i].key.Less(g.mergedReady[j].key)
	})
	for {
		for len(g.mergedReady) > 0 {
			p := g.mergedReady[0]
			g.mergedReady = g.mergedReady[1:]
			p.eng.runProc(p)
		}
		var best *Engine
		var bestTm *Timer
		for _, e := range g.engines {
			tm := e.peek()
			if tm == nil {
				continue
			}
			if (EventKey{At: tm.at, SchedT: tm.schedT, Src: tm.src, Seq: tm.seq}).Less(bound) {
				if bestTm == nil || timerLess(tm, bestTm) {
					best, bestTm = e, tm
				}
			}
		}
		if best == nil {
			break
		}
		best.heapPop()
		best.fireTimer(bestTm)
	}
	g.mergedReady = nil
	g.merged = false
}

// barrier closes a parallel window: reconstruct global execution order,
// resolve provisional attribution tags, apply deferred ops in serial post
// order, then renumber and release every escaped post.
func (g *Group) barrier(end Time) {
	g.assignOrds()
	for _, e := range g.engines {
		if len(e.wlog) == 0 {
			continue
		}
		for _, h := range e.tagHooks {
			h(e.resolveKey)
		}
	}
	if len(g.ordered) > 0 {
		ops := g.ordered
		for i := range ops {
			ops[i].key = ops[i].eng.resolveKey(ops[i].key)
		}
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].key != ops[j].key {
				return ops[i].key.Less(ops[j].key)
			}
			return ops[i].sub < ops[j].sub
		})
		for i := range ops {
			ops[i].fn()
			ops[i].fn = nil
		}
		g.ordered = ops[:0]
	}
	recs := g.escBuf[:0]
	recs = append(recs, g.coEscapes...)
	g.coEscapes = g.coEscapes[:0]
	for _, e := range g.engines {
		recs = append(recs, e.escapes...)
		for i := range e.escapes {
			e.escapes[i] = escapeRec{}
		}
		e.escapes = e.escapes[:0]
	}
	if len(recs) > 0 {
		for i := range recs {
			recs[i].key = recs[i].by.resolveKey(recs[i].key)
		}
		// (key, sub) pairs are unique — key identifies the posting context,
		// sub its post ordinal — so the sort is a strict total order.
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].key != recs[j].key {
				return recs[i].key.Less(recs[j].key)
			}
			return recs[i].sub < recs[j].sub
		})
		for _, r := range recs {
			tm := r.tm
			tm.escaped = false
			if tm.cancelled {
				continue
			}
			if tm.at < end {
				panic("sim: cross-shard event inside its own window (lookahead bound violated)")
			}
			tm.src, tm.seq = srcEscape, g.ord
			g.ord++
			r.te.heapPush(tm)
		}
	}
	g.escBuf = recs[:0]
	for _, e := range g.engines {
		e.wlog, e.postTags = e.wlog[:0], e.postTags[:0]
	}
}

// assignOrds k-way-merges the shards' window logs under the serial key
// order and assigns each fired event its global execution ordinal. Each log
// is already sorted (shard execution order IS local key order), so the
// merge repeatedly takes the least head; local entries compare through
// their poster's ordinal, which is always already assigned because the
// poster fired earlier on the same shard.
func (g *Group) assignOrds() {
	if cap(g.mergeIdx) < len(g.engines) {
		g.mergeIdx = make([]int, len(g.engines))
	}
	idx := g.mergeIdx[:len(g.engines)]
	active := 0
	for s, e := range g.engines {
		idx[s] = 0
		if len(e.wlog) > 0 {
			active++
		}
	}
	for active > 0 {
		best := -1
		for s, e := range g.engines {
			if idx[s] >= len(e.wlog) {
				continue
			}
			if best < 0 || g.wlLess(e, &e.wlog[idx[s]], g.engines[best], &g.engines[best].wlog[idx[best]]) {
				best = s
			}
		}
		e := g.engines[best]
		e.wlog[idx[best]].ord = g.ord
		g.ord++
		idx[best]++
		if idx[best] == len(e.wlog) {
			active--
		}
	}
}

// wlLess orders two window-log heads by serial execution position.
func (g *Group) wlLess(ea *Engine, a *wlogEntry, eb *Engine, b *wlogEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedT != b.schedT {
		return a.schedT < b.schedT
	}
	as, bs := a.kind == wlSetup, b.kind == wlSetup
	if as != bs {
		return as // setup posts carry the smallest serial seqs at an instant
	}
	if as {
		return a.a < b.a
	}
	if a.kind != b.kind {
		// An escape and a local can never share (at, schedT): same schedT
		// means the same posting window, and the local fires inside it while
		// the escape fires beyond it.
		panic("sim: escape and local event tie in the barrier merge")
	}
	if a.kind == wlEsc {
		return a.a < b.a
	}
	ta, tb := ea.postTags[a.a], eb.postTags[b.a]
	ka, kb := ea.resolveKey(ta.key), eb.resolveKey(tb.key)
	if ka != kb {
		return ka.Less(kb)
	}
	return ta.sub < tb.sub
}

func (g *Group) deadlock() *DeadlockError {
	var at Time
	for _, e := range g.engines {
		if e.now > at {
			at = e.now
		}
	}
	d := &DeadlockError{Time: at, NumLive: int(g.live.Load())}
	d.Parked = g.ParkedProcs()
	return d
}
