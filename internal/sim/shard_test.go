package sim

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// ---- shared workload machinery ----

// logEntry records one observable action with its serial position.
type logEntry struct {
	key EventKey
	sub uint64
	tag int64 // workload-defined action id
	t   Time  // virtual time of the action
}

// shardLog collects entries per shard (lock-free during windows) and merges
// them into the global serial order by (key, sub). Like the trace recorder,
// it registers for each engine's barrier-time tag resolution so provisional
// parallel-window keys are final before the merge sorts on them.
type shardLog struct {
	mu       sync.Mutex
	perSh    map[*Engine][]logEntry
	resolved map[*Engine]int
}

func newShardLog(g *Group) *shardLog {
	l := &shardLog{perSh: make(map[*Engine][]logEntry), resolved: make(map[*Engine]int)}
	for _, e := range g.Engines() {
		e := e
		e.OnResolveTags(func(resolve func(EventKey) EventKey) {
			l.mu.Lock()
			es := l.perSh[e]
			for i := l.resolved[e]; i < len(es); i++ {
				es[i].key = resolve(es[i].key)
			}
			l.resolved[e] = len(es)
			l.mu.Unlock()
		})
	}
	return l
}

func (l *shardLog) add(e *Engine, tag int64) {
	key, sub := e.TraceTag()
	l.mu.Lock()
	l.perSh[e] = append(l.perSh[e], logEntry{key: key, sub: sub, tag: tag, t: e.Now()})
	l.mu.Unlock()
}

// merged returns (tag, t) pairs in global key order.
func (l *shardLog) merged() []logEntry {
	var all []logEntry
	for _, es := range l.perSh {
		all = append(all, es...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key.Less(all[j].key)
		}
		return all[i].sub < all[j].sub
	})
	return all
}

func flatten(entries []logEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("%d@%d", e.tag, e.t)
	}
	return out
}

func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const testLookahead Time = 100

func blockAssign(nodes, shards int) []int {
	sh := make([]int, nodes)
	per := (nodes + shards - 1) / shards
	for n := range sh {
		s := n / per
		if s >= shards {
			s = shards - 1
		}
		sh[n] = s
	}
	return sh
}

// runWorkload drives a deterministic multi-node workload — local event
// chains below the lookahead, cross-node posts at the lookahead, sleeping
// procs — and returns the merged serial-order log.
func runWorkload(t *testing.T, nodes, shards int, hazard bool) []string {
	t.Helper()
	g := NewGroup(blockAssign(nodes, shards), shards, testLookahead)
	lg := newShardLog(g)
	if hazard {
		// Hold a hazard for the whole run: every window goes merged-serial.
		g.hazard.Add(1)
		defer g.hazard.Add(-1)
	}
	var chain func(node int, hop int64)
	chain = func(node int, hop int64) {
		c := g.Ctx(node)
		e := c.Engine()
		lg.add(e, int64(node)*1000+hop)
		if hop >= 12 {
			return
		}
		// Local follow-up strictly inside the lookahead window.
		e.PostTo(c, e.Now()+Time(7+hop%5), func() { chain(node, hop+1) })
		if hop%3 == 0 {
			// Cross-node hand-off at exactly the lookahead bound.
			peer := (node + 1) % nodes
			pc := g.Ctx(peer)
			e.PostTo(pc, e.Now()+testLookahead, func() { chain(peer, hop+100) })
		}
	}
	for n := 0; n < nodes; n++ {
		node := n
		c := g.Ctx(node)
		c.Post(Time(3*node), func() { chain(node, 0) })
		c.Spawn(fmt.Sprintf("w%d", node), func(p *Proc) {
			for i := 0; i < 4; i++ {
				lg.add(p.Engine(), int64(node)*1000+500+int64(i))
				p.Sleep(Time(11 + node))
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return flatten(lg.merged())
}

// ---- tests ----

// TestGroupShardCountInvariant pins the core determinism property: the
// merged serial-order log is identical at every shard count, parallel or
// merged-window execution alike.
func TestGroupShardCountInvariant(t *testing.T) {
	const nodes = 8
	ref := runWorkload(t, nodes, 1, false)
	if len(ref) == 0 {
		t.Fatal("empty reference log")
	}
	for _, shards := range []int{2, 4, 8} {
		got := runWorkload(t, nodes, shards, false)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shards=%d diverged from serial: %d vs %d entries", shards, len(got), len(ref))
		}
	}
	// Hazard-forced merged windows must produce the same order too.
	if got := runWorkload(t, nodes, 4, true); !reflect.DeepEqual(ref, got) {
		t.Fatal("merged-window execution diverged from serial order")
	}
}

// TestGroupRunUntil checks the deadline guard tie-break: setup-keyed events
// at exactly the deadline fire, runtime events at the deadline stay pending,
// matching the serial engine's RunUntil guard seq semantics.
func TestGroupRunUntil(t *testing.T) {
	g := NewGroup([]int{0, 1}, 2, testLookahead)
	const deadline = Time(1000)
	var setupAtDeadline, runtimeAtDeadline, late bool
	c0, c1 := g.Ctx(0), g.Ctx(1)
	c0.Post(deadline, func() { setupAtDeadline = true })
	c1.Post(deadline+1, func() { late = true })
	c0.Post(deadline-50, func() {
		c0.Engine().PostTo(c0, deadline, func() { runtimeAtDeadline = true })
	})
	if err := g.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	if !setupAtDeadline {
		t.Error("setup event at the deadline did not fire")
	}
	if runtimeAtDeadline {
		t.Error("runtime event at the deadline fired past the guard")
	}
	if late {
		t.Error("event beyond the deadline fired")
	}
}

// TestGroupDeadlock checks that a parked-forever proc surfaces as an
// aggregated DeadlockError from Group.Run.
func TestGroupDeadlock(t *testing.T) {
	g := NewGroup([]int{0, 1}, 2, testLookahead)
	g.Ctx(1).Spawn("stuck", func(p *Proc) { p.park("never woken") })
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if de.NumLive != 1 || len(de.Parked) != 1 || de.Parked[0] != "stuck: never woken" {
		t.Fatalf("bad diagnostics: %+v", de)
	}
}

// TestGroupCrossShardSpeedup is a smoke check that parallel windows really
// run events on multiple engines (fired counters spread across shards).
func TestGroupFiredSpread(t *testing.T) {
	const nodes, shards = 8, 4
	runWorkload(t, nodes, shards, false)
	// A fresh identical run, inspecting the group internals.
	g := NewGroup(blockAssign(nodes, shards), shards, testLookahead)
	for n := 0; n < nodes; n++ {
		c := g.Ctx(n)
		c.Post(Time(n), func() {})
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, e := range g.Engines() {
		if e.EventsFired() > 0 {
			busy++
		}
	}
	if busy != shards {
		t.Fatalf("want all %d shards to fire events, got %d", shards, busy)
	}
	if g.EventsFired() != uint64(nodes) {
		t.Fatalf("want %d events fired, got %d", nodes, g.EventsFired())
	}
}

// TestProcRegistryPrune is the regression test for the Spawn registry leak:
// after a large transient fleet dies, the registry backing array must shrink
// instead of pinning the high-water capacity forever.
func TestProcRegistryPrune(t *testing.T) {
	e := NewEngine()
	const fleet = 4096
	for i := 0; i < fleet; i++ {
		e.Spawn("transient", func(p *Proc) {})
	}
	var parked *Proc
	e.Spawn("keeper", func(p *Proc) { p.park("held") })
	if err := e.Run(); err == nil {
		t.Fatal("want deadlock (keeper parked)")
	}
	if got := cap(e.procRegistry); got >= fleet/4 {
		t.Fatalf("registry not pruned: cap=%d after %d procs died", got, fleet)
	}
	if len(e.procRegistry) != 1 || e.procRegistry[0].name != "keeper" {
		t.Fatalf("survivor lost during pruning: %d entries", len(e.procRegistry))
	}
	if e.procRegistry[0].regIdx != 0 {
		t.Fatalf("bad regIdx after pruning: %d", e.procRegistry[0].regIdx)
	}
	_ = parked
}

// TestProcRegistryPruneKeepsDiagnostics interleaves dying and surviving
// procs so swap-removal plus shrinking must preserve every survivor's
// registry slot.
func TestProcRegistryPruneKeepsDiagnostics(t *testing.T) {
	e := NewEngine()
	const n = 512
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			e.Spawn(fmt.Sprintf("s%d", i), func(p *Proc) { p.park("survivor") })
		} else {
			e.Spawn("t", func(p *Proc) {})
		}
	}
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if want := n / 8; de.NumLive != want || len(de.Parked) != want {
		t.Fatalf("diagnostics lost procs: live=%d parked=%d want %d", de.NumLive, len(de.Parked), want)
	}
	for i, p := range e.procRegistry {
		if p.regIdx != i {
			t.Fatalf("registry index desync at %d", i)
		}
	}
}

// FuzzShardMerge is the differential fuzz for the merge rule: a random
// event set split across k shards must replay in exactly the single-heap
// (1-shard) order once merged by (key, sub).
func FuzzShardMerge(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(24))
	f.Add(uint64(42), uint8(3), uint8(64))
	f.Add(uint64(7), uint8(8), uint8(17))
	f.Fuzz(func(t *testing.T, seed uint64, shardsRaw, nRaw uint8) {
		const nodes = 8
		shards := int(shardsRaw)%8 + 1
		n := int(nRaw)%96 + 1

		run := func(shards int) []string {
			g := NewGroup(blockAssign(nodes, shards), shards, testLookahead)
			lg := newShardLog(g)
			var fire func(id int64, node int)
			fire = func(id int64, node int) {
				c := g.Ctx(node)
				e := c.Engine()
				lg.add(e, id)
				// Follow-up decisions derive only from the event id, so the
				// schedule is identical at every shard count.
				switch id % 5 {
				case 0:
					peer := (node + 1 + int(id)%3) % nodes
					nid := id*31 + 1
					e.PostTo(g.Ctx(peer), e.Now()+testLookahead+Time(id%17), func() { fire(nid, peer) })
				case 1:
					nid := id*31 + 2
					e.PostTo(c, e.Now()+Time(id)%testLookahead, func() { fire(nid, node) })
				case 2:
					if id < 1<<40 { // bound the recursion
						nid := id*31 + 3
						e.PostTo(c, e.Now(), func() { fire(nid, node) })
					}
				}
			}
			rng := seed
			for i := 0; i < n; i++ {
				id := int64(i)
				node := int(splitmix(&rng) % nodes)
				at := Time(splitmix(&rng) % (20 * uint64(testLookahead)))
				g.Ctx(node).Post(at, func() { fire(id+1_000_000, node) })
			}
			if err := g.Run(); err != nil {
				t.Fatal(err)
			}
			return flatten(lg.merged())
		}

		ref := run(1)
		if got := run(shards); !reflect.DeepEqual(ref, got) {
			i := 0
			for i < len(ref) && i < len(got) && ref[i] == got[i] {
				i++
			}
			t.Fatalf("shards=%d diverged from single-heap order at %d/%d", shards, i, len(ref))
		}
	})
}
