// Package shmem models the intra-node shared-memory channel MVAPICH uses
// between ranks of one node (paper §4.4: "we use shared-memory communication
// for processes on the same node").
//
// The model is a two-copy channel through a shared buffer: the sender's copy
// into the buffer is paced by a per-direction bandwidth server plus a fixed
// wake-up latency; the receiver's copy out of the buffer is charged by the
// ADI layer when it matches the message. The caller captures the payload
// into a refcounted view before Send (so the sender may legally reuse its
// buffer once the send completes); the link passes the view through
// unchanged and the receiver releases it after delivery.
package shmem

import (
	"ib12x/internal/buf"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

// Msg is a delivered shared-memory message.
type Msg struct {
	Pay buf.View // payload view, ownership transferred to the receiver
	N   int
	Ctx any // sender's opaque protocol header
}

// Link is one direction of a shared-memory connection between two ranks on
// the same node.
type Link struct {
	eng     *sim.Engine
	m       *model.Params
	srv     sim.Server // paces copy-in at the shared-memory bandwidth
	deliver func(Msg)  // receiver-side sink, set via SetDeliver

	dpool []*delivery // recycled in-flight delivery records

	sent  int64
	bytes int64
}

// delivery carries one in-flight message through the simulated latency; the
// records are pooled so steady-state sends don't allocate a closure each.
type delivery struct {
	l   *Link
	msg Msg
}

func deliverThunk(a any, _, _, _ int64) {
	d := a.(*delivery)
	l, msg := d.l, d.msg
	d.msg = Msg{}
	l.dpool = append(l.dpool, d)
	l.deliver(msg)
}

// New creates a link; the receiver must SetDeliver before traffic flows.
func New(eng *sim.Engine, m *model.Params) *Link {
	return &Link{eng: eng, m: m, srv: sim.Server{Rate: m.ShmemRate}}
}

// SetDeliver registers the receiver-side sink invoked for each message.
func (l *Link) SetDeliver(fn func(Msg)) { l.deliver = fn }

// Send books the copy into the shared buffer and schedules delivery. It
// returns when the sender-side copy completes, i.e. when the sending rank's
// CPU is free again; the caller charges that time to its rank. The link
// takes ownership of the payload view's reference — the receiver (or its
// protocol layer) releases it after consuming the message. The zero view
// models synthetic traffic.
func (l *Link) Send(pay buf.View, n int, ctx any) (senderDone sim.Time) {
	if l.deliver == nil {
		panic("shmem: Send before SetDeliver")
	}
	_, end := l.srv.Reserve(l.eng.Now(), int64(n))
	l.sent++
	l.bytes += int64(n)
	var d *delivery
	if k := len(l.dpool); k > 0 {
		d = l.dpool[k-1]
		l.dpool[k-1] = nil
		l.dpool = l.dpool[:k-1]
	} else {
		d = &delivery{l: l}
	}
	d.msg = Msg{Pay: pay, N: n, Ctx: ctx}
	l.eng.PostCall(end+l.m.ShmemLatency, deliverThunk, d, 0, 0, 0)
	return end
}

// Sent reports messages sent on this link.
func (l *Link) Sent() int64 { return l.sent }

// Bytes reports payload bytes sent on this link.
func (l *Link) Bytes() int64 { return l.bytes }
