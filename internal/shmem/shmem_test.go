package shmem

import (
	"bytes"
	"testing"

	"ib12x/internal/buf"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

func TestSendDeliversView(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	var got Msg
	var at sim.Time
	l.SetDeliver(func(msg Msg) { got = msg; at = eng.Now() })

	// The caller captures the payload into a view before Send; the link
	// hands that exact view (same backing bytes, no copy) to the receiver.
	var p buf.Pool
	payload := []byte{1, 2, 3, 4}
	v := p.Get(4)
	copy(v.Bytes(), payload)
	done := l.Send(v, 4, "hdr")
	payload[0] = 99 // sender reuses its buffer immediately; the capture holds
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pay.Bytes(), []byte{1, 2, 3, 4}) {
		t.Errorf("delivered %v, want the captured bytes", got.Pay.Bytes())
	}
	if &got.Pay.Bytes()[0] != &v.Bytes()[0] {
		t.Error("delivered view must alias the sent view, not a copy")
	}
	if got.Ctx != "hdr" || got.N != 4 {
		t.Errorf("msg = %+v", got)
	}
	if at != done+m.ShmemLatency {
		t.Errorf("delivered at %v, want senderDone+latency = %v", at, done+m.ShmemLatency)
	}
	got.Pay.Release()
	if p.Live() != 0 {
		t.Errorf("live blocks after receiver release = %d", p.Live())
	}
}

func TestSendPacedByBandwidth(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	l.SetDeliver(func(Msg) {})
	const n = 1 << 20
	d1 := l.Send(buf.View{}, n, nil)
	d2 := l.Send(buf.View{}, n, nil)
	per := sim.TransferTime(n, m.ShmemRate)
	if d1 != per || d2 != 2*per {
		t.Errorf("copy-in ends %v, %v; want %v, %v", d1, d2, per, 2*per)
	}
	if l.Sent() != 2 || l.Bytes() != 2*n {
		t.Errorf("stats: sent=%d bytes=%d", l.Sent(), l.Bytes())
	}
	eng.Run()
}

func TestSyntheticPayloadNotAllocated(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	var got Msg
	l.SetDeliver(func(msg Msg) { got = msg })
	l.Send(buf.View{}, 1<<20, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !got.Pay.Zero() || got.N != 1<<20 {
		t.Errorf("synthetic msg = %+v, want zero view with length", got)
	}
}

func TestSendBeforeSetDeliverPanics(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	defer func() {
		if recover() == nil {
			t.Error("Send before SetDeliver must panic")
		}
	}()
	l.Send(buf.View{}, 8, nil)
}
