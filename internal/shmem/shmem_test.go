package shmem

import (
	"bytes"
	"testing"

	"ib12x/internal/model"
	"ib12x/internal/sim"
)

func TestSendDeliversCopy(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	var got Msg
	var at sim.Time
	l.SetDeliver(func(msg Msg) { got = msg; at = eng.Now() })

	payload := []byte{1, 2, 3, 4}
	done := l.Send(payload, 4, "hdr")
	payload[0] = 99 // sender reuses its buffer immediately
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("delivered %v, want the pre-mutation copy", got.Data)
	}
	if got.Ctx != "hdr" || got.N != 4 {
		t.Errorf("msg = %+v", got)
	}
	if at != done+m.ShmemLatency {
		t.Errorf("delivered at %v, want senderDone+latency = %v", at, done+m.ShmemLatency)
	}
}

func TestSendPacedByBandwidth(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	l.SetDeliver(func(Msg) {})
	const n = 1 << 20
	d1 := l.Send(nil, n, nil)
	d2 := l.Send(nil, n, nil)
	per := sim.TransferTime(n, m.ShmemRate)
	if d1 != per || d2 != 2*per {
		t.Errorf("copy-in ends %v, %v; want %v, %v", d1, d2, per, 2*per)
	}
	if l.Sent() != 2 || l.Bytes() != 2*n {
		t.Errorf("stats: sent=%d bytes=%d", l.Sent(), l.Bytes())
	}
	eng.Run()
}

func TestSyntheticPayloadNotAllocated(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	var got Msg
	l.SetDeliver(func(msg Msg) { got = msg })
	l.Send(nil, 1<<20, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Data != nil || got.N != 1<<20 {
		t.Errorf("synthetic msg = %+v, want nil data with length", got)
	}
}

func TestSendBeforeSetDeliverPanics(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	l := New(eng, m)
	defer func() {
		if recover() == nil {
			t.Error("Send before SetDeliver must panic")
		}
	}()
	l.Send(nil, 8, nil)
}
