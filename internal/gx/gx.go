// Package gx models the GX+ host bus of a Power6 node: a single bandwidth
// resource shared by all HCA DMA traffic in both directions (payload fetches
// for sends, payload stores for receives, descriptor fetches).
//
// At 950 MHz the bus provides a theoretical 7.6 GB/s (paper §2.2). It rarely
// binds for one port, but bi-directional multi-rail traffic pushes toward it.
package gx

import "ib12x/internal/sim"

// Bus is the GX+ bus of one node.
type Bus struct {
	s sim.Server
}

// New returns a bus with the given aggregate rate in bytes/s.
func New(rate float64) *Bus {
	return &Bus{s: sim.Server{Rate: rate}}
}

// DMA books a DMA of n bytes across the bus starting no earlier than now and
// returns when it completes.
func (b *Bus) DMA(now sim.Time, n int64) sim.Time {
	_, end := b.s.Reserve(now, n)
	return end
}

// Bytes reports total bytes moved across the bus.
func (b *Bus) Bytes() int64 { return b.s.Bytes() }

// Busy reports accumulated bus occupancy.
func (b *Bus) Busy() sim.Time { return b.s.Busy() }

// Utilization reports bus occupancy as a fraction of elapsed time.
func (b *Bus) Utilization(now sim.Time) float64 { return b.s.Utilization(now) }
