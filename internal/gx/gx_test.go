package gx

import (
	"testing"

	"ib12x/internal/sim"
)

func TestBusDMA(t *testing.T) {
	b := New(1e9)
	if end := b.DMA(0, 1000); end != 1000*sim.Nanosecond {
		t.Errorf("first DMA ends %v, want 1us", end)
	}
	// Concurrent DMA from another engine shares the bus: serialized.
	if end := b.DMA(0, 1000); end != 2000*sim.Nanosecond {
		t.Errorf("second DMA ends %v, want 2us", end)
	}
	if b.Bytes() != 2000 {
		t.Errorf("Bytes = %d, want 2000", b.Bytes())
	}
	if b.Busy() != 2*sim.Microsecond {
		t.Errorf("Busy = %v, want 2us", b.Busy())
	}
	if u := b.Utilization(4 * sim.Microsecond); u < 0.49 || u > 0.51 {
		t.Errorf("Utilization = %g, want 0.5", u)
	}
}
