package harness

import (
	"errors"
	"fmt"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(items, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for trial := 0; trial < 20; trial++ {
		_, err := Map(items, func(x int) (int, error) {
			if x%2 == 1 {
				return 0, fmt.Errorf("item %d failed", x)
			}
			return x, nil
		})
		if err == nil || err.Error() != "item 1 failed" {
			t.Fatalf("trial %d: err = %v, want the lowest failing index", trial, err)
		}
	}
}

func TestMapPanicOutranksError(t *testing.T) {
	items := []int{0, 1, 2, 3}
	defer func() {
		r := recover()
		if r != "boom 2" {
			t.Fatalf("recovered %v, want the panicking item's value", r)
		}
	}()
	Map(items, func(x int) (int, error) {
		if x == 1 {
			return 0, errors.New("plain error")
		}
		if x == 2 {
			panic("boom 2")
		}
		return x, nil
	})
	t.Fatal("Map returned instead of panicking")
}

func TestMapNSerialEqualsParallel(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	fn := func(x int) (int, error) { return 31*x + 7, nil }
	serial, err1 := MapN(1, items, fn)
	parallel, err2 := MapN(8, items, fn)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("serial/parallel diverge at %d: %d vs %d", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv("IB12X_WORKERS", "3")
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d with IB12X_WORKERS=3", got)
	}
	t.Setenv("IB12X_WORKERS", "junk")
	if got := Workers(); got < 1 {
		t.Errorf("Workers() = %d with junk override, want the GOMAXPROCS fallback", got)
	}
	t.Setenv("IB12X_WORKERS", "")
	if got := Workers(); got < 1 {
		t.Errorf("Workers() = %d, want >= 1", got)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(nil, func(x int) (int, error) { return x, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(nil) = %v, %v", got, err)
	}
}
