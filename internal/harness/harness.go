// Package harness runs independent simulations concurrently. A simulation
// (one mpi.Run, one conformance cell, one figure sweep) builds a fresh
// engine and world and shares no mutable state with its siblings, so a
// fleet of them can execute on parallel OS threads while each stays
// bit-for-bit deterministic inside — virtual-time results are identical to
// a serial loop, only the wall clock shrinks.
//
// Map preserves order and failure determinism: results come back indexed by
// input position, and when several inputs fail (or panic) the lowest index
// wins, so a parallel run reports exactly what its serial counterpart would.
package harness

import (
	"errors"
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Workers reports the concurrency level: the IB12X_WORKERS environment
// variable when set to a positive integer, else GOMAXPROCS. A single worker
// degenerates Map to the serial loop, which is how the determinism suite
// pins serial/parallel equivalence.
func Workers() int {
	if s := os.Getenv("IB12X_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item on Workers() goroutines and returns the
// results in input order. Every item runs to completion even after a
// failure elsewhere; then the error of the lowest failing index is
// returned, and if any item panicked, the panic of the lowest panicking
// index is re-raised (panics outrank errors). fn must not share mutable
// state across items.
func Map[I, O any](items []I, fn func(I) (O, error)) ([]O, error) {
	return MapN(Workers(), items, fn)
}

// MapN is Map with an explicit worker count.
func MapN[I, O any](workers int, items []I, fn func(I) (O, error)) ([]O, error) {
	out, errs := mapCollect(workers, items, fn)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// MapAll is Map, except that every failing item contributes to the returned
// error (errors.Join, in input order) instead of only the lowest index. A
// conformance matrix uses it so one broken cell does not mask the others.
// Panic arbitration is unchanged: the lowest panicking index re-raises.
func MapAll[I, O any](items []I, fn func(I) (O, error)) ([]O, error) {
	return MapNAll(Workers(), items, fn)
}

// MapNAll is MapAll with an explicit worker count.
func MapNAll[I, O any](workers int, items []I, fn func(I) (O, error)) ([]O, error) {
	out, errs := mapCollect(workers, items, fn)
	return out, errors.Join(errs...)
}

// mapCollect runs every item to completion on the worker fleet, re-raises
// the lowest panicking index, and returns results plus per-item errors in
// input order. Map/MapAll differ only in how they fold the error slice.
func mapCollect[I, O any](workers int, items []I, fn func(I) (O, error)) ([]O, []error) {
	out := make([]O, len(items))
	errs := make([]error, len(items))
	panics := make([]any, len(items))
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, it := range items {
			runOne(fn, it, i, out, errs, panics)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(fn, items[i], i, out, errs, panics)
				}
			}()
		}
		for i := range items {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out, errs
}

// runOne executes one item, capturing a panic instead of unwinding the
// worker (the fleet must finish before failures are arbitrated).
func runOne[I, O any](fn func(I) (O, error), item I, i int, out []O, errs []error, panics []any) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	out[i], errs[i] = fn(item)
}
