package mpi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
)

// Property tests for the lane-decomposed collectives: for randomized
// payload sizes — including n < L, n % L != 0, and zero-length — every
// root, and both eager- and rendezvous-regime sizes, the lane algorithms
// must produce the same user-visible bytes as the reference collectives.

// lanePattern fills a deterministic per-rank payload.
func lanePattern(rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*131 + i*7 + (i>>8)*13)
	}
	return b
}

// laneSizes are the property sweep's payload sizes: element-sub-lane
// sizes, non-multiples of the lane count, the eager/rendezvous threshold
// (16K) from both sides, and a size large enough that every lane's ring
// pieces are themselves rendezvous transfers.
var laneSizes = []int{0, 1, 7, 8, 24, 511, 513, 768, 4096, 16384, 16384 + 8, 64 << 10, 256<<10 + 8}

func laneCfg(nodes, ppn int, alg CollAlg, rndv adi.RndvProto) Config {
	c := cfg(nodes, ppn, 4, core.EPC)
	c.CollAlg = alg
	c.Rndv = rndv
	return c
}

func TestLaneBcastMatchesReference(t *testing.T) {
	for _, rndv := range []adi.RndvProto{adi.RndvWrite, adi.RndvRead} {
		for _, shape := range [][2]int{{2, 2}, {3, 1}} {
			p := shape[0] * shape[1]
			for _, n := range laneSizes {
				for root := 0; root < p; root++ {
					want := lanePattern(root, n)
					mustRun(t, laneCfg(shape[0], shape[1], CollLane, rndv), func(c *Comm) {
						buf := make([]byte, n)
						if c.Rank() == root {
							copy(buf, want)
						}
						c.Bcast(root, buf)
						if !bytes.Equal(buf, want) {
							t.Errorf("rndv=%v p=%d n=%d root=%d rank=%d: lane bcast payload mismatch",
								rndv, p, n, root, c.Rank())
						}
					})
				}
			}
		}
	}
}

func TestLaneAllgatherMatchesReference(t *testing.T) {
	for _, rndv := range []adi.RndvProto{adi.RndvWrite, adi.RndvRead} {
		for _, shape := range [][2]int{{2, 2}, {3, 1}} {
			p := shape[0] * shape[1]
			for _, n := range laneSizes {
				want := make([]byte, p*n)
				for r := 0; r < p; r++ {
					copy(want[r*n:], lanePattern(r, n))
				}
				mustRun(t, laneCfg(shape[0], shape[1], CollLane, rndv), func(c *Comm) {
					recv := make([]byte, p*n)
					c.Allgather(lanePattern(c.Rank(), n), n, recv)
					if !bytes.Equal(recv, want) {
						t.Errorf("rndv=%v p=%d n=%d rank=%d: lane allgather mismatch", rndv, p, n, c.Rank())
					}
					// The documented aliasing contract: send may alias
					// recv[rank*n:].
					recv2 := make([]byte, p*n)
					copy(recv2[c.Rank()*n:], lanePattern(c.Rank(), n))
					c.Allgather(recv2[c.Rank()*n:(c.Rank()+1)*n], n, recv2)
					if !bytes.Equal(recv2, want) {
						t.Errorf("rndv=%v p=%d n=%d rank=%d: aliased lane allgather mismatch", rndv, p, n, c.Rank())
					}
				})
			}
		}
	}
}

func TestLaneReduceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{2, 2}, {3, 1}} {
		p := shape[0] * shape[1]
		for _, elems := range []int{0, 1, 3, 96, 2048, 8192, 32768 + 1} {
			inputs := make([][]int64, p)
			for r := range inputs {
				inputs[r] = make([]int64, elems)
				for i := range inputs[r] {
					inputs[r][i] = rng.Int63n(1<<40) - 1<<39
				}
			}
			for _, op := range []Op{Sum, Max, Min} {
				want := make([]int64, elems)
				copy(want, inputs[0])
				for r := 1; r < p; r++ {
					for i := range want {
						switch op {
						case Sum:
							want[i] += inputs[r][i]
						case Max:
							if inputs[r][i] > want[i] {
								want[i] = inputs[r][i]
							}
						case Min:
							if inputs[r][i] < want[i] {
								want[i] = inputs[r][i]
							}
						}
					}
				}
				root := p - 1
				mustRun(t, laneCfg(shape[0], shape[1], CollLane, adi.RndvWrite), func(c *Comm) {
					v := make([]int64, elems)
					copy(v, inputs[c.Rank()])
					c.AllreduceInt64(v, op)
					for i := range v {
						if v[i] != want[i] {
							t.Errorf("p=%d elems=%d op=%v rank=%d: lane allreduce[%d] = %d, want %d",
								p, elems, op, c.Rank(), i, v[i], want[i])
							break
						}
					}
					w := make([]int64, elems)
					copy(w, inputs[c.Rank()])
					c.ReduceInt64(root, w, op)
					if c.Rank() == root {
						for i := range w {
							if w[i] != want[i] {
								t.Errorf("p=%d elems=%d op=%v: lane reduce[%d] = %d, want %d",
									p, elems, op, i, w[i], want[i])
								break
							}
						}
					}
				})
			}
		}
	}
}

// TestLaneFloatReduce pins the exact operators (Min/Max) bit-identical and
// the non-associative float Sum within reassociation tolerance.
func TestLaneFloatReduce(t *testing.T) {
	const elems = 4096 // 32KB: rendezvous-size lanes
	rng := rand.New(rand.NewSource(11))
	inputs := make([][]float64, 4)
	for r := range inputs {
		inputs[r] = make([]float64, elems)
		for i := range inputs[r] {
			inputs[r][i] = rng.NormFloat64() * 1e3
		}
	}
	for _, op := range []Op{Max, Min, Sum} {
		want := make([]float64, elems)
		copy(want, inputs[0])
		for r := 1; r < 4; r++ {
			for i := range want {
				switch op {
				case Max:
					want[i] = math.Max(want[i], inputs[r][i])
				case Min:
					want[i] = math.Min(want[i], inputs[r][i])
				case Sum:
					want[i] += inputs[r][i]
				}
			}
		}
		mustRun(t, laneCfg(2, 2, CollLane, adi.RndvWrite), func(c *Comm) {
			v := make([]float64, elems)
			copy(v, inputs[c.Rank()])
			c.AllreduceFloat64(v, op)
			for i := range v {
				if op == Sum {
					if d := math.Abs(v[i] - want[i]); d > 1e-9*math.Max(1, math.Abs(want[i])) {
						t.Errorf("op=Sum rank=%d: allreduce[%d] = %g, want %g (Δ%g)", c.Rank(), i, v[i], want[i], d)
						break
					}
				} else if v[i] != want[i] {
					t.Errorf("op=%v rank=%d: allreduce[%d] = %g, want %g (exact op must be bit-identical)",
						op, c.Rank(), i, v[i], want[i])
					break
				}
			}
		})
	}
}

// TestLaneFallbacks: configurations where lane decomposition cannot apply
// (single rail, single node / all-shmem, CollAuto below threshold) must
// dispatch to the reference algorithms and still be correct.
func TestLaneFallbacks(t *testing.T) {
	// Single rail: c.lanes < 2.
	c1 := cfg(2, 1, 1, core.Original)
	c1.CollAlg = CollLane
	mustRun(t, c1, func(c *Comm) {
		v := []int64{int64(c.Rank() + 1)}
		c.AllreduceInt64(v, Sum)
		if v[0] != 3 {
			t.Errorf("single-rail lane fallback: sum = %d, want 3", v[0])
		}
	})
	// Single node: every peer is shmem, InterRails() == 0.
	c2 := cfg(1, 4, 4, core.EPC)
	c2.CollAlg = CollLane
	mustRun(t, c2, func(c *Comm) {
		buf := lanePattern(0, 32<<10)
		c.Bcast(0, buf)
		if !bytes.Equal(buf, lanePattern(0, 32<<10)) {
			t.Errorf("single-node lane fallback: bcast mismatch at rank %d", c.Rank())
		}
	})
	// CollAuto: below the threshold the reference path runs (digest-exact
	// vs CollStriped), above it the lane path runs; both must be correct.
	for _, n := range []int{4096, 256 << 10} {
		mustRun(t, laneCfg(2, 2, CollAuto, adi.RndvWrite), func(c *Comm) {
			buf := make([]byte, n)
			if c.Rank() == 1 {
				copy(buf, lanePattern(1, n))
			}
			c.Bcast(1, buf)
			if !bytes.Equal(buf, lanePattern(1, n)) {
				t.Errorf("CollAuto n=%d: bcast mismatch at rank %d", n, c.Rank())
			}
		})
	}
}

// TestLaneSplitInheritance: Split children keep the parent's algorithm
// selection and lane width, and lane collectives work on a proper
// sub-communicator with remapped ranks.
func TestLaneSplitInheritance(t *testing.T) {
	const n = 32 << 10
	mustRun(t, laneCfg(2, 2, CollLane, adi.RndvWrite), func(c *Comm) {
		// Odd/even split pairs ranks across nodes (world 0,2 and 1,3 on
		// a 2-node × 2-ppn layout → each child spans both nodes).
		child := c.Split(c.Rank()%2, c.Rank())
		if child == nil {
			t.Fatalf("rank %d: nil child", c.Rank())
		}
		buf := make([]byte, n)
		if child.Rank() == 0 {
			copy(buf, lanePattern(c.Rank()%2, n))
		}
		child.Bcast(0, buf)
		if !bytes.Equal(buf, lanePattern(c.Rank()%2, n)) {
			t.Errorf("world rank %d: lane bcast on split child mismatch", c.Rank())
		}
	})
}

// TestLaneBufLive: both rendezvous protocols release every payload view
// after lane collectives quiesce.
func TestLaneBufLive(t *testing.T) {
	for _, rndv := range []adi.RndvProto{adi.RndvWrite, adi.RndvRead} {
		c := laneCfg(2, 2, CollLane, rndv)
		c.BufAudit = true
		rep := mustRun(t, c, func(c *Comm) {
			buf := make([]byte, 256<<10)
			c.Bcast(0, buf)
			recv := make([]byte, c.Size()*16384)
			c.Allgather(recv[:16384], 16384, recv)
			v := make([]int64, 8192)
			c.AllreduceInt64(v, Sum)
		})
		if live := rep.World.BufLive(); live != 0 {
			t.Fatalf("rndv=%v: %d payload views still live after lane collectives:\n%s",
				rndv, live, rep.World.BufLiveReport())
		}
	}
}
