package mpi

// Variable-count collectives (the v-variants) and prefix scans.

// Gatherv collects counts[r] bytes from each rank r into recv at root,
// placed at displs[r]. send carries this rank's counts[rank] bytes.
func (c *Comm) Gatherv(root int, send []byte, recv []byte, counts, displs []int) {
	p := c.size
	if len(counts) != p || len(displs) != p {
		panic("mpi: Gatherv counts/displs must have one entry per rank")
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	if rank == root {
		if recv != nil && send != nil {
			copy(recv[displs[rank]:displs[rank]+counts[rank]], send[:counts[rank]])
		}
		reqs := make([]*Request, 0, p-1)
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			var dst []byte
			if recv != nil {
				dst = recv[displs[r] : displs[r]+counts[r]]
			}
			reqs = append(reqs, c.crecv(r, tag, dst, counts[r]))
		}
		c.cwaitAll(reqs)
		return
	}
	c.cwait(c.csend(root, tag, send, counts[rank]))
}

// Scatterv distributes counts[r] bytes to each rank r from send at root
// (offsets displs); each rank receives its counts[rank] bytes into recv.
func (c *Comm) Scatterv(root int, send []byte, counts, displs []int, recv []byte) {
	p := c.size
	if len(counts) != p || len(displs) != p {
		panic("mpi: Scatterv counts/displs must have one entry per rank")
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	if rank == root {
		reqs := make([]*Request, 0, p-1)
		for r := 0; r < p; r++ {
			var blk []byte
			if send != nil {
				blk = send[displs[r] : displs[r]+counts[r]]
			}
			if r == root {
				if recv != nil && blk != nil {
					copy(recv[:counts[r]], blk)
				}
				continue
			}
			reqs = append(reqs, c.csend(r, tag, blk, counts[r]))
		}
		c.cwaitAll(reqs)
		return
	}
	c.cwait(c.crecv(root, tag, recv, counts[rank]))
}

// Allgatherv collects counts[r] bytes from every rank into recv on all
// ranks at offsets displs (ring algorithm, like Allgather).
func (c *Comm) Allgatherv(send []byte, recv []byte, counts, displs []int) {
	p := c.size
	if len(counts) != p || len(displs) != p {
		panic("mpi: Allgatherv counts/displs must have one entry per rank")
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	if recv != nil && send != nil {
		copy(recv[displs[rank]:displs[rank]+counts[rank]], send[:counts[rank]])
	}
	if p == 1 {
		return
	}
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	for i := 0; i < p-1; i++ {
		sb := (rank - i + p) % p
		rb := (rank - i - 1 + p) % p
		var sbuf, rbuf []byte
		if recv != nil {
			sbuf = recv[displs[sb] : displs[sb]+counts[sb]]
			rbuf = recv[displs[rb] : displs[rb]+counts[rb]]
		}
		c.csendrecv(right, tag, sbuf, counts[sb], left, rbuf, counts[rb])
	}
}

// ScanInt64 computes the inclusive prefix reduction: after the call, buf on
// rank r holds op over ranks 0..r (MPI_Scan). Linear-chain algorithm.
func (c *Comm) ScanInt64(buf []int64, op Op) {
	tag := c.nextCollTag()
	rank := c.Rank()
	b := int64sToBytes(buf)
	if rank > 0 {
		tmp := make([]byte, len(b))
		c.cwait(c.crecv(rank-1, tag, tmp, len(tmp)))
		combinerInt64(op)(b, tmp)
	}
	if rank+1 < c.size {
		c.cwait(c.csend(rank+1, tag, b, len(b)))
	}
	bytesToInt64s(b, buf)
}

// ExscanInt64 computes the exclusive prefix reduction: rank r receives op
// over ranks 0..r-1; rank 0's buffer is left untouched (MPI_Exscan).
func (c *Comm) ExscanInt64(buf []int64, op Op) {
	tag := c.nextCollTag()
	rank := c.Rank()
	mine := int64sToBytes(buf)
	if rank == 0 {
		if c.size > 1 {
			c.cwait(c.csend(1, tag, mine, len(mine)))
		}
		return
	}
	prefix := make([]byte, len(mine))
	c.cwait(c.crecv(rank-1, tag, prefix, len(prefix)))
	if rank+1 < c.size {
		// Forward prefix ⊕ mine to the right.
		next := append([]byte(nil), prefix...)
		combinerInt64(op)(next, mine)
		c.cwait(c.csend(rank+1, tag, next, len(next)))
	}
	bytesToInt64s(prefix, buf)
}

// ScanFloat64 is ScanInt64 over float64 elements.
func (c *Comm) ScanFloat64(buf []float64, op Op) {
	tag := c.nextCollTag()
	rank := c.Rank()
	b := float64sToBytes(buf)
	if rank > 0 {
		tmp := make([]byte, len(b))
		c.cwait(c.crecv(rank-1, tag, tmp, len(tmp)))
		combinerFloat64(op)(b, tmp)
	}
	if rank+1 < c.size {
		c.cwait(c.csend(rank+1, tag, b, len(b)))
	}
	bytesToFloat64s(b, buf)
}
