package mpi

// Alternative Alltoall algorithms. The default Alltoall uses the cyclic
// pairwise Sendrecv ladder of the MPICH-1 lineage (what the paper's MVAPICH
// ran, §3.2.2); these variants exist for the algorithm ablation
// (bench.AlltoallAlgTable): Bruck's log-step algorithm for small blocks and
// the fully-concurrent linear algorithm.

// A2AAlg selects an Alltoall algorithm.
type A2AAlg int

// Alltoall algorithm choices.
const (
	// A2APairwise is the cyclic Sendrecv ladder (the default).
	A2APairwise A2AAlg = iota
	// A2ALinear posts all p-1 Irecvs and Isends at once and waits.
	A2ALinear
	// A2ABruck runs ⌈log2 p⌉ rounds of block-merged exchanges — fewer,
	// larger messages, the classic small-message optimization.
	A2ABruck
)

func (a A2AAlg) String() string {
	switch a {
	case A2APairwise:
		return "pairwise"
	case A2ALinear:
		return "linear"
	case A2ABruck:
		return "bruck"
	default:
		return "A2AAlg(?)"
	}
}

// AlltoallAlg is Alltoall with an explicit algorithm choice.
func (c *Comm) AlltoallAlg(alg A2AAlg, send []byte, n int, recv []byte) {
	switch alg {
	case A2ALinear:
		c.alltoallLinear(send, n, recv)
	case A2ABruck:
		c.alltoallBruck(send, n, recv)
	default:
		c.Alltoall(send, n, recv)
	}
}

// alltoallLinear posts everything at once: maximal concurrency, p-1
// outstanding messages per rank.
func (c *Comm) alltoallLinear(send []byte, n int, recv []byte) {
	p := c.size
	tag := c.nextCollTag()
	rank := c.Rank()
	if recv != nil && send != nil {
		copy(recv[rank*n:(rank+1)*n], send[rank*n:(rank+1)*n])
	}
	reqs := make([]*Request, 0, 2*(p-1))
	for r := 0; r < p; r++ {
		if r == rank {
			continue
		}
		var rbuf []byte
		if recv != nil {
			rbuf = recv[r*n : (r+1)*n]
		}
		reqs = append(reqs, c.crecv(r, tag, rbuf, n))
	}
	for r := 0; r < p; r++ {
		if r == rank {
			continue
		}
		var sbuf []byte
		if send != nil {
			sbuf = send[r*n : (r+1)*n]
		}
		reqs = append(reqs, c.csend(r, tag, sbuf, n))
	}
	c.cwaitAll(reqs)
}

// alltoallBruck runs the store-and-forward Bruck algorithm: after a local
// rotation, round k exchanges all blocks whose destination's k-th bit is
// set with the rank 2^k away, then a final rotation unscrambles. Messages
// are ⌈p/2⌉ blocks long but only ⌈log2 p⌉ of them — the small-block win.
func (c *Comm) alltoallBruck(send []byte, n int, recv []byte) {
	p := c.size
	tag := c.nextCollTag()
	rank := c.Rank()

	synthetic := send == nil || recv == nil
	// Working array in "rotated" order: slot i holds the block destined
	// for rank (rank+i) mod p.
	var work []byte
	if !synthetic {
		work = make([]byte, p*n)
		for i := 0; i < p; i++ {
			src := ((rank + i) % p) * n
			copy(work[i*n:(i+1)*n], send[src:src+n])
		}
	}
	for k := 1; k < p; k <<= 1 {
		dst := (rank + k) % p
		src := (rank - k + p) % p
		// Collect the slots whose index has bit k set.
		var idxs []int
		for i := 1; i < p; i++ {
			if i&k != 0 {
				idxs = append(idxs, i)
			}
		}
		cnt := len(idxs) * n
		var sbuf, rbuf []byte
		if !synthetic {
			sbuf = make([]byte, cnt)
			for j, i := range idxs {
				copy(sbuf[j*n:(j+1)*n], work[i*n:(i+1)*n])
			}
			rbuf = make([]byte, cnt)
		}
		c.csendrecv(dst, tag, sbuf, cnt, src, rbuf, cnt)
		if !synthetic {
			for j, i := range idxs {
				copy(work[i*n:(i+1)*n], rbuf[j*n:(j+1)*n])
			}
		}
	}
	if synthetic {
		return
	}
	// Final inverse rotation: slot i currently holds the block FROM rank
	// (rank-i) mod p.
	for i := 0; i < p; i++ {
		from := (rank - i + p) % p
		copy(recv[from*n:(from+1)*n], work[i*n:(i+1)*n])
	}
}
