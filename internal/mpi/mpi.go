// Package mpi is the public MPI-like interface of the library: an
// MPI_COMM_WORLD-style communicator with blocking and non-blocking
// point-to-point operations and point-to-point-based collectives, running
// over the ADI layer, the multi-rail communication scheduler, and the
// simulated IBM 12x InfiniBand cluster.
//
// A job is launched with Run: one goroutine-backed simulated process per
// rank executes the supplied body against a deterministic virtual clock.
// All times reported by Comm.Time are virtual.
//
// The communication marker of the paper operates invisibly here: Send/Recv
// mark traffic blocking, Isend/Irecv non-blocking, and the collectives mark
// their internal transfers collective — which is what lets the EPC policy
// pick striping or round robin per pattern.
package mpi

import (
	"fmt"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/model"
	"ib12x/internal/regcache"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
	"ib12x/internal/trace"
)

// Re-exported ADI types: the MPI layer adds no state to them.
type (
	// Request is a handle to a pending non-blocking operation.
	Request = adi.Request
	// Status describes a completed receive.
	Status = adi.Status
)

// Wildcards.
const (
	AnySource = adi.AnySource
	AnyTag    = adi.AnyTag
)

// Config describes the simulated job: cluster shape, rail count, policy.
type Config struct {
	Nodes        int // number of nodes (default 2)
	ProcsPerNode int // ranks per node (default 1)
	HCAs         int // HCAs per node (default 1)
	Ports        int // ports per HCA (default 1)
	QPsPerPort   int // QPs (rails) per port (default 1)

	Policy core.Kind     // scheduling policy (default Original)
	Model  *model.Params // hardware model (default model.Default())
	// PolicyImpl overrides Policy with a custom core.Policy (for
	// weighted striping or experimental schedulers).
	PolicyImpl core.Policy

	// MinStripe overrides the minimum stripe size; 0 uses the model's.
	MinStripe int
	// BindRail chooses the bound rail per (rank, peer); nil binds rail 0.
	BindRail func(rank, peer int) int
	// SQDepth overrides the per-QP send queue depth.
	SQDepth int
	// Rndv selects the rendezvous protocol: adi.RndvWrite (default, the
	// paper's sender-writes RPUT) or adi.RndvRead (receiver-reads RGET).
	Rndv adi.RndvProto
	// EagerProto selects the eager channel: adi.EagerSendRecv (default,
	// the historical send/recv path, matching every historical digest) or
	// adi.EagerRDMAWrite (persistent per-peer ring buffers with header
	// caching — the Liu et al. small-message fast path, DESIGN.md §16).
	EagerProto adi.EagerProto
	// Trace, when non-nil, records every rank's protocol events.
	Trace *trace.Recorder
	// FaultEvery injects a deterministic link error on every N-th chunk
	// (0 = error-free). See hca.Port.ErrorEvery. Prefer the Chaos plan:
	// chaos.LegacyEveryN(n) expresses this knob as a one-event fault plan.
	FaultEvery int64
	// Chaos, when non-nil, is a fault plan armed against the world before
	// the run starts (implemented by *chaos.Plan; the interface keeps the
	// chaos package, whose oracle drives this one, out of mpi's imports).
	Chaos ChaosPlan
	// Reliability, when non-nil, arms the self-healing rail layer before
	// the run starts: endogenous failure detection, backoff retransmit,
	// probe-driven reintegration. With it armed, chaos rail events only
	// flip QP hardware state — the endpoints discover the change.
	Reliability *adi.ReliabilityConfig
	// RegCache, when non-nil, arms the pin-down registration cache on
	// every endpoint: rendezvous and one-sided bulk transfers pay
	// virtual-time registration charges unless the per-endpoint LRU
	// already covers the buffer. nil (the default) keeps registration
	// free, matching all historical digests.
	RegCache *regcache.Config
	// Integrity selects the end-to-end payload checksum mode (DESIGN.md
	// §17): adi.IntegrityOff (default, historical digests), IntegrityAudit
	// (checksums carried for self-checking, corruption still delivered and
	// tallied), or IntegrityVerify (capture/verify checksum charges, corrupt
	// placements suppressed at the receiving HCA, NACK-driven retransmit).
	Integrity adi.IntegrityMode
	// BufAudit arms allocation-site tagging on the payload pool so a
	// BufLive leak report names the owning protocol path.
	BufAudit bool
	// Deadline, when positive, bounds the run in virtual time: if any rank
	// is still alive when the clock reaches it, Run returns a watchdog
	// error listing the stuck ranks instead of simulating forever. The
	// chaos oracle's no-deadlock invariant runs on this.
	Deadline sim.Time
	// NodesPerSwitch groups nodes under leaf switches of a two-level fat
	// tree (0 = the paper's single switch); TrunkRate sets the per-leaf
	// trunk bandwidth (0 = 1:1 with the link rate).
	NodesPerSwitch int
	TrunkRate      float64
	// Tiers = 3 (with SpinesPerPod) selects the routed three-tier fat
	// tree; Dragonfly selects the routed dragonfly fabric; Routing picks
	// static D-mod-K vs adaptive path selection on either (topo.Spec has
	// the full shape semantics). Zero values keep the historical fabrics.
	Tiers        int
	SpinesPerPod int
	Dragonfly    topo.Dragonfly
	Routing      fabric.Routing
	// Shards splits the discrete-event engine into per-shard engines (one
	// per node, or per leaf switch on a fat tree; clamped to the topology's
	// unit count) synchronized by conservative lookahead on the fabric's
	// one-way wire latency. 0 or 1 keeps the historical serial engine
	// byte-for-byte. Results — digests, traces, reports — are bit-identical
	// either way; only host wall-clock time changes.
	Shards int

	// CollAlg selects the collective-algorithm family for every
	// communicator of the run (see lanes.go). The zero value CollStriped
	// keeps the reference algorithms — binomial bcast, recursive-doubling
	// allreduce, ring allgather — whose multi-rail use happens below the
	// algorithm, in the transport's stripe planner, matching every
	// historical digest. CollLane switches Bcast/Allgather/Reduce/
	// Allreduce to lane-decomposed variants (one sub-collective per rail);
	// CollAuto dispatches per operation on payload size. Per-communicator
	// override: Comm.SetCollAlg.
	CollAlg CollAlg
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.ProcsPerNode == 0 {
		c.ProcsPerNode = 1
	}
	if c.HCAs == 0 {
		c.HCAs = 1
	}
	if c.Ports == 0 {
		c.Ports = 1
	}
	if c.QPsPerPort == 0 {
		c.QPsPerPort = 1
	}
	if c.Model == nil {
		c.Model = model.Default()
	}
	return c
}

// Size reports the world size the config produces.
func (c Config) Size() int { return c.withDefaults().Nodes * c.withDefaults().ProcsPerNode }

// ChaosPlan is a scheduled fault plan injectable into a run (see
// internal/chaos). Arm schedules the plan's events on the engine against the
// freshly built world, before any rank starts.
type ChaosPlan interface {
	Arm(eng *sim.Engine, w *adi.World)
}

// ShardedChaosPlan is a chaos plan that can also arm against a sharded
// world, decomposing each fault into per-shard sub-events (implemented by
// *chaos.Plan). A Config with Shards > 1 and a Chaos plan lacking this
// interface is an error — arming serially would race across shards.
type ShardedChaosPlan interface {
	ChaosPlan
	ArmSharded(g *sim.Group, w *adi.World)
}

// Report summarises a finished run.
type Report struct {
	// Elapsed is the virtual time at which the slowest rank finished the
	// body (before the final drain barrier).
	Elapsed sim.Time
	// BodyEnd is each rank's body completion time.
	BodyEnd []sim.Time
	// RankStats is each rank's ADI protocol counters.
	RankStats []adi.Stats
	// World exposes the underlying hardware for counter inspection.
	World *adi.World
}

// Run executes body on every rank of a simulated cluster and returns when
// the virtual job completes. A drain barrier runs after the body so all
// in-flight traffic settles before the simulation ends.
func Run(cfg Config, body func(c *Comm)) (*Report, error) {
	cfg = cfg.withDefaults()
	spec := topo.Spec{
		Nodes:          cfg.Nodes,
		ProcsPerNode:   cfg.ProcsPerNode,
		HCAsPerNode:    cfg.HCAs,
		PortsPerHCA:    cfg.Ports,
		QPsPerPort:     cfg.QPsPerPort,
		NodesPerSwitch: cfg.NodesPerSwitch,
		TrunkRate:      cfg.TrunkRate,
		Tiers:          cfg.Tiers,
		SpinesPerPod:   cfg.SpinesPerPod,
		Dragonfly:      cfg.Dragonfly,
		Routing:        cfg.Routing,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg, spec, body)
	}
	eng := sim.NewEngine()
	world := adi.NewWorld(eng, cfg.Model, spec, cfg.adiOptions())
	rep := newReport(world, spec.Size())
	// Reliability arms before the chaos plan so rail events scheduled at
	// t=0 already find SetRail in self-healing (hardware-only) mode.
	if cfg.Reliability != nil {
		world.EnableReliability(*cfg.Reliability)
	}
	if cfg.BufAudit {
		world.EnableBufAudit()
	}
	if cfg.Chaos != nil {
		cfg.Chaos.Arm(eng, world)
	}
	spawnRanks(world, spec.Size(), rep, cfg.CollAlg, body)
	if cfg.Deadline > 0 {
		if err := eng.RunUntil(cfg.Deadline); err != nil {
			return nil, fmt.Errorf("mpi: %w", err)
		}
		if n := eng.LiveProcs(); n > 0 {
			return nil, fmt.Errorf("mpi: watchdog: %d ranks still running at virtual deadline %v; parked: %v",
				n, cfg.Deadline, eng.ParkedProcs())
		}
	} else if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("mpi: %w", err)
	}
	rep.finish()
	return rep, nil
}

// runSharded is Run over a sharded engine group: same world, same workload,
// same results, with each node's (or leaf's) events simulated by its own
// shard engine under conservative-lookahead synchronization.
func runSharded(cfg Config, spec topo.Spec, body func(c *Comm)) (*Report, error) {
	shardOf, shards := spec.ShardPlan(cfg.Shards)
	// The lookahead bound is the fabric's minimum cross-shard latency:
	// every cross-shard event chain pays at least one wire traversal
	// (fabric.Net.OneWay(), built from this same model constant; routed
	// fabrics shard by pod/group and their trunk hops only add to it —
	// see topo.Spec.ShardLookahead).
	g := sim.NewGroup(shardOf, shards, spec.ShardLookahead(cfg.Model))
	world := adi.NewWorldSharded(g, shardOf, cfg.Model, spec, cfg.adiOptions())
	rep := newReport(world, spec.Size())
	if cfg.Reliability != nil {
		world.EnableReliability(*cfg.Reliability)
	}
	if cfg.BufAudit {
		world.EnableBufAudit()
	}
	if cfg.Chaos != nil {
		sp, ok := cfg.Chaos.(ShardedChaosPlan)
		if !ok {
			return nil, fmt.Errorf("mpi: chaos plan %T cannot arm a sharded run (no ArmSharded)", cfg.Chaos)
		}
		sp.ArmSharded(g, world)
	}
	spawnRanks(world, spec.Size(), rep, cfg.CollAlg, body)
	var runErr error
	if cfg.Deadline > 0 {
		runErr = g.RunUntil(cfg.Deadline)
	} else {
		runErr = g.Run()
	}
	if cfg.Trace != nil {
		cfg.Trace.Merge() // fold shard recorders back into serial order
	}
	if runErr != nil {
		return nil, fmt.Errorf("mpi: %w", runErr)
	}
	if cfg.Deadline > 0 {
		if n := g.LiveProcs(); n > 0 {
			return nil, fmt.Errorf("mpi: watchdog: %d ranks still running at virtual deadline %v; parked: %v",
				n, cfg.Deadline, g.ParkedProcs())
		}
	}
	rep.finish()
	return rep, nil
}

// adiOptions maps the config onto world-construction options.
func (c Config) adiOptions() adi.Options {
	return adi.Options{
		Policy:     c.Policy,
		PolicyImpl: c.PolicyImpl,
		MinStripe:  c.MinStripe,
		BindRail:   c.BindRail,
		SQDepth:    c.SQDepth,
		Rndv:       c.Rndv,
		EagerProto: c.EagerProto,
		Trace:      c.Trace,
		FaultEvery: c.FaultEvery,
		RegCache:   c.RegCache,
		Integrity:  c.Integrity,
	}
}

func newReport(world *adi.World, size int) *Report {
	return &Report{
		BodyEnd:   make([]sim.Time, size),
		RankStats: make([]adi.Stats, size),
		World:     world,
	}
}

// spawnRanks launches the per-rank procs (on each rank's own shard engine
// in a sharded world).
func spawnRanks(world *adi.World, size int, rep *Report, alg CollAlg, body func(c *Comm)) {
	world.Spawn("mpi", func(ep *adi.Endpoint) {
		c := newWorld(ep, size, alg)
		body(c)
		rep.BodyEnd[ep.Rank] = ep.Now()
		c.Barrier() // drain
		rep.RankStats[ep.Rank] = ep.Stats()
	})
}

func (rep *Report) finish() {
	for _, t := range rep.BodyEnd {
		if t > rep.Elapsed {
			rep.Elapsed = t
		}
	}
}

// Comm is a communicator. Run hands every rank MPI_COMM_WORLD; Split
// derives sub-communicators with their own rank numbering and isolated
// matching contexts.
type Comm struct {
	ep        *adi.Endpoint
	size      int
	collTag   int // per-communicator collective tag sequence
	nextWinID int // RMA window id sequence (symmetric across ranks)

	rank    int   // my rank within this communicator
	group   []int // comm rank -> world rank (nil for identity/world)
	inverse map[int]int
	ctxP2P  int // matching context for point-to-point traffic
	ctxColl int // matching context for collective traffic
	nextCtx int // context allocator for children (symmetric across ranks)

	// collAlg selects the collective-algorithm family (inherited by Split
	// children; overridable per communicator with SetCollAlg — like the
	// algorithm, the setting must be symmetric across ranks). lanes is the
	// inter-node rail width lane decomposition partitions against — a
	// topology constant, identical on every rank (0 on single-node
	// worlds, which keeps every collective on the reference path).
	collAlg CollAlg
	lanes   int
}

// newWorld builds the MPI_COMM_WORLD communicator for an endpoint.
func newWorld(ep *adi.Endpoint, size int, alg CollAlg) *Comm {
	return &Comm{
		ep: ep, size: size, rank: ep.Rank,
		ctxP2P: adi.CtxPt2Pt, ctxColl: adi.CtxCollective, nextCtx: 2,
		collAlg: alg, lanes: ep.InterRails(),
	}
}

// Rank reports the calling process's rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks in this communicator.
func (c *Comm) Size() int { return c.size }

// world translates a communicator rank to a world rank. Wildcards pass
// through.
func (c *Comm) world(r int) int {
	if c.group == nil || r < 0 {
		return r
	}
	return c.group[r]
}

// local translates a world rank back to this communicator's numbering.
func (c *Comm) local(worldRank int) int {
	if c.group == nil || worldRank < 0 {
		return worldRank
	}
	return c.inverse[worldRank]
}

// localStatus rewrites a status's source into communicator numbering.
func (c *Comm) localStatus(st Status) Status {
	st.Source = c.local(st.Source)
	return st
}

// Time reports the current virtual time.
func (c *Comm) Time() sim.Time { return c.ep.Now() }

// Wtime reports the current virtual time in seconds (MPI_Wtime).
func (c *Comm) Wtime() float64 { return c.ep.Now().Seconds() }

// Compute advances the rank's virtual clock by d of modeled computation.
func (c *Comm) Compute(d sim.Time) { c.ep.Compute(d) }

// Endpoint exposes the underlying ADI endpoint (for stats and probes).
func (c *Comm) Endpoint() *adi.Endpoint { return c.ep }

// Group returns the communicator's members as world ranks, in rank order
// (a copy; nil-safe for the world communicator, which returns the identity).
func (c *Comm) Group() []int {
	out := make([]int, c.size)
	for i := range out {
		out[i] = c.world(i)
	}
	return out
}

// nextCollTag returns the tag for the next collective operation. MPI
// requires all ranks to call collectives in the same order, so the
// per-communicator sequence stays aligned across ranks.
func (c *Comm) nextCollTag() int {
	t := c.collTag
	c.collTag++
	return t
}
