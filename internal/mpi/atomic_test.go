package mpi

import (
	"testing"

	"ib12x/internal/core"
)

func TestWinFetchAddAcrossNodes(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 16)
		w := c.WinCreate(buf, 16)
		w.Fence()
		if c.Rank() == 0 {
			old := w.FetchAddInt64(1, 0, 5)
			if old != 0 {
				t.Errorf("first fetch-add old = %d, want 0", old)
			}
			old = w.FetchAddInt64(1, 0, 10)
			if old != 5 {
				t.Errorf("second fetch-add old = %d, want 5", old)
			}
		}
		w.Fence()
		if c.Rank() == 1 {
			if got := w.ReadInt64(0); got != 15 {
				t.Errorf("window value = %d, want 15", got)
			}
		}
		w.Free()
	})
}

func TestWinFetchAddConcurrent(t *testing.T) {
	// Every rank increments rank 0's counter; the old values must be a
	// permutation of 0..p-1 (atomicity: no lost updates).
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		p := c.Size()
		buf := make([]byte, 8)
		w := c.WinCreate(buf, 8)
		w.Fence()
		old := w.FetchAddInt64(0, 0, 1)
		if old < 0 || old >= int64(p) {
			t.Errorf("rank %d saw old = %d", c.Rank(), old)
		}
		// Collect all observed values; they must be distinct.
		olds := make([]int64, p)
		olds[c.Rank()] = old
		c.AllreduceInt64(olds, Sum) // each slot contributed by one rank
		w.Fence()
		if c.Rank() == 0 {
			if got := w.ReadInt64(0); got != int64(p) {
				t.Errorf("counter = %d, want %d", got, p)
			}
			seen := map[int64]bool{}
			for _, v := range olds {
				if seen[v] {
					t.Errorf("duplicate old value %d: lost update", v)
				}
				seen[v] = true
			}
		}
		w.Free()
	})
}

func TestWinCASLockProtocol(t *testing.T) {
	// A tiny spinlock built on CAS: rank 1 acquires, mutates, releases;
	// rank 0 then acquires.
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 16)
		w := c.WinCreate(buf, 16)
		w.Fence()
		acquire := func() {
			for {
				if w.CompareAndSwapInt64(0, 0, 0, int64(c.Rank()+1)) == 0 {
					return
				}
				c.Compute(1000)
			}
		}
		release := func() { w.CompareAndSwapInt64(0, 0, int64(c.Rank()+1), 0) }
		if c.Rank() == 1 {
			acquire()
			w.FetchAddInt64(0, 1, 100)
			release()
			c.SendN(0, 0, nil, 1) // signal done
		} else {
			c.RecvN(1, 0, nil, 1)
			acquire()
			if got := w.FetchAddInt64(0, 1, 1); got != 100 {
				t.Errorf("critical section value = %d, want 100", got)
			}
			release()
		}
		w.Fence()
		w.Free()
	})
}

func TestWinFetchAddIntraNode(t *testing.T) {
	mustRun(t, Config{Nodes: 1, ProcsPerNode: 2, QPsPerPort: 1, Policy: core.Original}, func(c *Comm) {
		buf := make([]byte, 8)
		w := c.WinCreate(buf, 8)
		w.Fence()
		if c.Rank() == 1 {
			if old := w.FetchAddInt64(0, 0, 7); old != 0 {
				t.Errorf("old = %d", old)
			}
		}
		w.Fence()
		if c.Rank() == 0 && w.ReadInt64(0) != 7 {
			t.Errorf("value = %d, want 7", w.ReadInt64(0))
		}
		w.Free()
	})
}

func TestWinFetchAddSelf(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		buf := make([]byte, 8)
		w := c.WinCreate(buf, 8)
		if old := w.FetchAddInt64(c.Rank(), 0, 3); old != 0 {
			t.Errorf("old = %d", old)
		}
		if old := w.FetchAddInt64(c.Rank(), 0, 4); old != 3 {
			t.Errorf("old = %d, want 3", old)
		}
		w.Fence()
		w.Free()
	})
}
