package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
)

func TestGathervScatterv(t *testing.T) {
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		p, rank := c.Size(), c.Rank()
		counts := make([]int, p)
		displs := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			counts[r] = 100 * (r + 1)
			displs[r] = total
			total += counts[r]
		}
		send := bytes.Repeat([]byte{byte(rank + 1)}, counts[rank])
		var recv []byte
		if rank == 0 {
			recv = make([]byte, total)
		}
		c.Gatherv(0, send, recv, counts, displs)
		if rank == 0 {
			for r := 0; r < p; r++ {
				for i := 0; i < counts[r]; i++ {
					if recv[displs[r]+i] != byte(r+1) {
						t.Fatalf("gatherv block %d wrong", r)
					}
				}
			}
		}
		// Scatter the same layout back out from rank 1.
		var src []byte
		if rank == 1 {
			src = make([]byte, total)
			for r := 0; r < p; r++ {
				copy(src[displs[r]:displs[r]+counts[r]], bytes.Repeat([]byte{byte(0x30 + r)}, counts[r]))
			}
		}
		got := make([]byte, counts[rank])
		c.Scatterv(1, src, counts, displs, got)
		for i := range got {
			if got[i] != byte(0x30+rank) {
				t.Fatalf("scatterv rank %d wrong", rank)
			}
		}
	})
}

func TestAllgatherv(t *testing.T) {
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		p, rank := c.Size(), c.Rank()
		counts := make([]int, p)
		displs := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			counts[r] = 64 * (p - r) // decreasing sizes
			displs[r] = total
			total += counts[r]
		}
		send := bytes.Repeat([]byte{byte(rank * 5)}, counts[rank])
		recv := make([]byte, total)
		c.Allgatherv(send, recv, counts, displs)
		for r := 0; r < p; r++ {
			for i := 0; i < counts[r]; i++ {
				if recv[displs[r]+i] != byte(r*5) {
					t.Fatalf("rank %d: allgatherv block %d wrong", rank, r)
				}
			}
		}
	})
}

func TestVCollectivesValidate(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("short counts slice must panic")
			}
		}()
		c.Gatherv(0, nil, nil, []int{1}, []int{0, 0})
	})
}

func TestScanInclusive(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		r := int64(c.Rank() + 1)
		v := []int64{r, 10 * r}
		c.ScanInt64(v, Sum)
		// Inclusive prefix: rank r holds 1+..+(r+1).
		want := int64(0)
		for k := 0; k <= c.Rank(); k++ {
			want += int64(k + 1)
		}
		if v[0] != want || v[1] != 10*want {
			t.Errorf("rank %d: scan = %v, want [%d %d]", c.Rank(), v, want, 10*want)
		}
	})
}

func TestScanMax(t *testing.T) {
	mustRun(t, cfg(3, 1, 1, core.Original), func(c *Comm) {
		// Values 5, 1, 9 by rank: inclusive max prefix = 5, 5, 9.
		vals := []int64{5, 1, 9}
		v := []int64{vals[c.Rank()]}
		c.ScanInt64(v, Max)
		want := []int64{5, 5, 9}
		if v[0] != want[c.Rank()] {
			t.Errorf("rank %d: scan max = %d, want %d", c.Rank(), v[0], want[c.Rank()])
		}
	})
}

func TestExscan(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		v := []int64{int64(c.Rank() + 1)}
		orig := v[0]
		c.ExscanInt64(v, Sum)
		if c.Rank() == 0 {
			if v[0] != orig {
				t.Error("rank 0's buffer must be untouched by Exscan")
			}
			return
		}
		want := int64(0)
		for k := 0; k < c.Rank(); k++ {
			want += int64(k + 1)
		}
		if v[0] != want {
			t.Errorf("rank %d: exscan = %d, want %d", c.Rank(), v[0], want)
		}
	})
}

func TestScanFloat(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		v := []float64{0.5}
		c.ScanFloat64(v, Sum)
		want := 0.5 * float64(c.Rank()+1)
		if v[0] != want {
			t.Errorf("rank %d: %v want %v", c.Rank(), v[0], want)
		}
	})
}

func TestAlltoallAlgorithmsAgree(t *testing.T) {
	const n = 512
	for _, alg := range []A2AAlg{A2APairwise, A2ALinear, A2ABruck} {
		alg := alg
		mustRun(t, cfg(2, 4, 2, core.EPC), func(c *Comm) {
			p, rank := c.Size(), c.Rank()
			send := make([]byte, p*n)
			for d := 0; d < p; d++ {
				copy(send[d*n:(d+1)*n], bytes.Repeat([]byte{alltoallValue(rank, d)}, n))
			}
			recv := make([]byte, p*n)
			c.AlltoallAlg(alg, send, n, recv)
			for s := 0; s < p; s++ {
				want := alltoallValue(s, rank)
				for i := 0; i < n; i++ {
					if recv[s*n+i] != want {
						t.Fatalf("%v: rank %d block from %d = %x, want %x", alg, rank, s, recv[s*n+i], want)
					}
				}
			}
		})
	}
}

func TestBruckFewerMessages(t *testing.T) {
	// 8 ranks: pairwise sends 7 messages per rank, Bruck only 3.
	count := func(alg A2AAlg) int64 {
		rep := mustRun(t, cfg(2, 4, 1, core.Original), func(c *Comm) {
			c.AlltoallAlg(alg, nil, 64, nil)
		})
		var total int64
		for _, s := range rep.RankStats {
			total += s.EagerSent + s.ShmemSent
		}
		return total
	}
	pw := count(A2APairwise)
	br := count(A2ABruck)
	if br >= pw {
		t.Errorf("bruck sent %d messages, pairwise %d: bruck must send fewer", br, pw)
	}
}

func TestAlgStrings(t *testing.T) {
	if A2APairwise.String() != "pairwise" || A2ALinear.String() != "linear" || A2ABruck.String() != "bruck" {
		t.Error("algorithm names wrong")
	}
}

func TestReduceCombinerProperties(t *testing.T) {
	// Allreduce results must be independent of rank order for the
	// commutative ops we provide: compare against a serial reference.
	mustRun(t, cfg(3, 2, 2, core.EPC), func(c *Comm) {
		vals := []int64{17, -4, 256, 3, 99, -60}
		mine := []int64{vals[c.Rank()]}
		for _, op := range []Op{Sum, Max, Min} {
			v := []int64{mine[0]}
			c.AllreduceInt64(v, op)
			ref := vals[0]
			for _, x := range vals[1:] {
				switch op {
				case Sum:
					ref += x
				case Max:
					if x > ref {
						ref = x
					}
				case Min:
					if x < ref {
						ref = x
					}
				}
			}
			if v[0] != ref {
				t.Errorf("op %d: %d != reference %d", op, v[0], ref)
			}
		}
	})
}
