package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
)

func TestPersistentRequests(t *testing.T) {
	const iters = 5
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 1024)
		if c.Rank() == 0 {
			ps := c.SendInit(1, 3, buf, len(buf))
			for i := 0; i < iters; i++ {
				for k := range buf {
					buf[k] = byte(i + k)
				}
				ps.Start()
				ps.Wait()
			}
		} else {
			pr := c.RecvInit(0, 3, buf, len(buf))
			for i := 0; i < iters; i++ {
				pr.Start()
				st := pr.Wait()
				if st.Count != 1024 {
					t.Fatalf("iter %d: count %d", i, st.Count)
				}
				want := make([]byte, 1024)
				for k := range want {
					want[k] = byte(i + k)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("iter %d: wrong payload", i)
				}
			}
		}
	})
}

func TestPersistentStartAll(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		peer := 1 - c.Rank()
		out := make([]byte, 256)
		in := make([]byte, 256)
		set := []*PersistentReq{
			c.RecvInit(peer, 1, in, 256),
			c.SendInit(peer, 1, out, 256),
		}
		for i := 0; i < 3; i++ {
			StartAll(set)
			WaitAllPersistent(set)
		}
	})
}

func TestPersistentDoubleStartPanics(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		if c.Rank() != 0 {
			c.RecvN(0, 0, nil, 64*1024)
			return
		}
		// A rendezvous send stays active until the receiver grants it.
		ps := c.SendInit(1, 0, nil, 64*1024)
		ps.Start()
		defer func() {
			if recover() == nil {
				t.Error("double Start must panic")
			}
			ps.Wait() // drain so the job finishes cleanly
		}()
		ps.Start()
	})
}

func TestCustomPolicyImpl(t *testing.T) {
	// Weighted striping 3:1 over 2 rails via the PolicyImpl override.
	c := cfg(2, 1, 2, core.WeightedStriping)
	c.PolicyImpl = core.NewWeighted(4096, []float64{3, 1})
	rep := mustRun(t, c, func(cm *Comm) {
		if cm.Rank() == 0 {
			cm.SendN(1, 0, nil, 256*1024)
		} else {
			cm.RecvN(0, 0, nil, 256*1024)
		}
	})
	if s := rep.RankStats[0]; s.StripesSent != 2 {
		t.Errorf("StripesSent = %d, want 2 (weighted split)", s.StripesSent)
	}
}
