package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
)

func TestWinPutAcrossNodes(t *testing.T) {
	const n = 128 * 1024
	mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
		buf := make([]byte, n)
		w := c.WinCreate(buf, n)
		if c.Rank() == 0 {
			data := bytes.Repeat([]byte{0xA1}, n)
			w.Put(1, 0, data)
		}
		w.Fence()
		if c.Rank() == 1 {
			for i := 0; i < n; i++ {
				if buf[i] != 0xA1 {
					t.Fatalf("window byte %d = %x after fence", i, buf[i])
				}
			}
		}
		w.Free()
	})
}

func TestWinPutStripesUnderEPC(t *testing.T) {
	const n = 256 * 1024
	rep := mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
		w := c.WinCreate(nil, n)
		if c.Rank() == 0 {
			w.PutN(1, 0, nil, n)
		}
		w.Fence()
		w.Free()
	})
	if s := rep.RankStats[0]; s.StripesSent != 4 {
		t.Errorf("StripesSent = %d, want 4 (one-sided puts stripe per policy)", s.StripesSent)
	}
}

func TestWinGetAcrossNodes(t *testing.T) {
	const n = 64 * 1024
	mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
		buf := make([]byte, n)
		if c.Rank() == 1 {
			for i := range buf {
				buf[i] = byte(i * 3)
			}
		}
		w := c.WinCreate(buf, n)
		w.Fence() // expose rank 1's contents
		got := make([]byte, n)
		if c.Rank() == 0 {
			w.Get(1, 0, got)
		}
		w.Fence()
		if c.Rank() == 0 {
			for i := range got {
				if got[i] != byte(i*3) {
					t.Fatalf("get byte %d = %x", i, got[i])
				}
			}
		}
		w.Free()
	})
}

func TestWinPutGetOffsets(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 1024)
		w := c.WinCreate(buf, 1024)
		if c.Rank() == 0 {
			w.Put(1, 100, []byte{1, 2, 3, 4})
		}
		w.Fence()
		if c.Rank() == 1 {
			if !bytes.Equal(buf[100:104], []byte{1, 2, 3, 4}) {
				t.Errorf("offset put landed wrong: %v", buf[98:106])
			}
			if buf[99] != 0 || buf[104] != 0 {
				t.Error("put spilled outside its range")
			}
		}
		w.Free()
	})
}

func TestWinAccumulate(t *testing.T) {
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 8*4)
		w := c.WinCreate(buf, len(buf))
		// Every rank adds (rank+1) into rank 0's element 2.
		w.AccumulateInt64(0, 2, []int64{int64(c.Rank() + 1)}, Sum)
		w.Fence()
		if c.Rank() == 0 {
			if got := w.ReadInt64(2); got != 10 { // 1+2+3+4
				t.Errorf("accumulated sum = %d, want 10", got)
			}
		}
		// Max-accumulate into element 0 of rank 1.
		w.AccumulateInt64(1, 0, []int64{int64(c.Rank() * 7)}, Max)
		w.Fence()
		if c.Rank() == 1 {
			if got := w.ReadInt64(0); got != 21 {
				t.Errorf("accumulated max = %d, want 21", got)
			}
		}
		w.Free()
	})
}

func TestWinReplaceOrderedWithAccumulate(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 8)
		w := c.WinCreate(buf, 8)
		if c.Rank() == 0 {
			// Same-source accumulates are applied in issue order.
			w.ReplaceInt64(1, 0, []int64{100})
			w.AccumulateInt64(1, 0, []int64{5}, Sum)
		}
		w.Fence()
		if c.Rank() == 1 {
			if got := w.ReadInt64(0); got != 105 {
				t.Errorf("replace-then-add = %d, want 105", got)
			}
		}
		w.Free()
	})
}

func TestWinIntraNodePutGet(t *testing.T) {
	// Same-node targets use the message-based path over shared memory.
	mustRun(t, Config{Nodes: 1, ProcsPerNode: 2, Policy: core.EPC, QPsPerPort: 2}, func(c *Comm) {
		buf := make([]byte, 4096)
		w := c.WinCreate(buf, len(buf))
		if c.Rank() == 0 {
			w.Put(1, 8, bytes.Repeat([]byte{0x77}, 16))
		}
		w.Fence()
		if c.Rank() == 1 && !bytes.Equal(buf[8:24], bytes.Repeat([]byte{0x77}, 16)) {
			t.Error("intra-node put missing after fence")
		}
		got := make([]byte, 16)
		if c.Rank() == 1 {
			w.Get(0, 0, got)
		}
		w.Fence()
		w.Free()
	})
}

func TestWinSelfOps(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		buf := make([]byte, 64)
		w := c.WinCreate(buf, 64)
		w.Put(c.Rank(), 0, []byte{9, 9})
		w.AccumulateInt64(c.Rank(), 1, []int64{4}, Sum)
		w.Fence()
		if buf[0] != 9 || w.ReadInt64(1) != 4 {
			t.Errorf("self ops: buf[0]=%d elem1=%d", buf[0], w.ReadInt64(1))
		}
		w.Free()
	})
}

func TestWinMultipleEpochs(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		buf := make([]byte, 8)
		w := c.WinCreate(buf, 8)
		for epoch := 0; epoch < 5; epoch++ {
			if c.Rank() == 0 {
				w.AccumulateInt64(1, 0, []int64{1}, Sum)
			}
			w.Fence()
			if c.Rank() == 1 {
				if got := w.ReadInt64(0); got != int64(epoch+1) {
					t.Fatalf("epoch %d: sum = %d", epoch, got)
				}
			}
		}
		w.Free()
	})
}

func TestWinBoundsChecked(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		w := c.WinCreate(make([]byte, 64), 64)
		defer w.Free()
		if c.Rank() != 0 {
			return
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-window put must panic")
				}
			}()
			w.Put(1, 60, []byte{1, 2, 3, 4, 5})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad target must panic")
				}
			}()
			w.PutN(9, 0, nil, 8)
		}()
	})
}

func TestWinMultipleWindows(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		a := c.WinCreate(make([]byte, 8), 8)
		b := c.WinCreate(make([]byte, 8), 8)
		if c.Rank() == 0 {
			a.AccumulateInt64(1, 0, []int64{11}, Sum)
			b.AccumulateInt64(1, 0, []int64{22}, Sum)
		}
		a.Fence()
		b.Fence()
		if c.Rank() == 1 {
			if a.ReadInt64(0) != 11 || b.ReadInt64(0) != 22 {
				t.Errorf("windows mixed: a=%d b=%d", a.ReadInt64(0), b.ReadInt64(0))
			}
		}
		a.Free()
		b.Free()
	})
}

func TestWinOnSplitCommunicator(t *testing.T) {
	// Windows created on a parent communicator and its Split children must
	// coexist on the shared endpoints.
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		parent := c.WinCreate(make([]byte, 8), 8)
		sub := c.Split(c.Rank()%2, c.Rank())
		child := sub.WinCreate(make([]byte, 8), 8)

		// Accumulate into child-rank 0 of my color through the child comm.
		child.AccumulateInt64(0, 0, []int64{int64(c.Rank() + 1)}, Sum)
		child.Fence()
		if sub.Rank() == 0 {
			// Evens: world ranks 0,2 contribute 1+3; odds: 2+4.
			want := int64(4)
			if c.Rank()%2 == 1 {
				want = 6
			}
			if got := child.ReadInt64(0); got != want {
				t.Errorf("world %d: child window = %d, want %d", c.Rank(), got, want)
			}
		}
		// The parent window still works independently.
		parent.AccumulateInt64(0, 0, []int64{1}, Sum)
		parent.Fence()
		if c.Rank() == 0 {
			if got := parent.ReadInt64(0); got != 4 {
				t.Errorf("parent window = %d, want 4", got)
			}
		}
		child.Free()
		parent.Free()
	})
}
