package mpi

import (
	"testing"

	"ib12x/internal/core"
)

func TestSplitByParity(t *testing.T) {
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub == nil {
			t.Fatal("nil sub-communicator")
		}
		if sub.Size() != 2 {
			t.Fatalf("sub size = %d, want 2", sub.Size())
		}
		// World ranks 0,2 -> evens; 1,3 -> odds; sub ranks ordered by key.
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			t.Errorf("world %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Traffic within the sub-communicator.
		v := []int64{int64(c.Rank())}
		sub.AllreduceInt64(v, Sum)
		want := int64(0 + 2)
		if c.Rank()%2 == 1 {
			want = 1 + 3
		}
		if v[0] != want {
			t.Errorf("world %d: sub allreduce = %d, want %d", c.Rank(), v[0], want)
		}
	})
}

func TestSplitPointToPointIsolated(t *testing.T) {
	// Same tag, same world peers — but different communicators must not
	// match each other's traffic.
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		sub := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 7, []byte{1})
			sub.Send(1, 7, []byte{2})
		} else {
			a := make([]byte, 1)
			b := make([]byte, 1)
			// Receive from the dup FIRST: if contexts leaked, this would
			// match the world-comm message (value 1).
			sub.Recv(0, 7, b)
			c.Recv(0, 7, a)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("context mixing: world got %d, dup got %d", a[0], b[0])
			}
		}
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color should yield nil")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Fatalf("sub = %+v", sub)
		}
		v := []int64{1}
		sub.AllreduceInt64(v, Sum)
		if v[0] != 3 {
			t.Errorf("allreduce over 3 ranks = %d", v[0])
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		// Reverse the rank order via keys.
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != c.Size()-1-c.Rank() {
			t.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), c.Size()-1-c.Rank())
		}
		// Status sources are sub-local.
		if sub.Rank() == 0 {
			st := sub.Recv(AnySource, 0, make([]byte, 1))
			if st.Source != 1 {
				t.Errorf("source = %d in sub numbering, want 1", st.Source)
			}
		} else if sub.Rank() == 1 {
			sub.Send(0, 0, []byte{9})
		}
	})
}

func TestNestedSplit(t *testing.T) {
	mustRun(t, cfg(2, 4, 2, core.EPC), func(c *Comm) {
		// 8 ranks -> two halves -> quarters.
		half := c.Split(c.Rank()/4, c.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Fatalf("quarter size = %d", quarter.Size())
		}
		v := []int64{int64(c.Rank())}
		quarter.AllreduceInt64(v, Sum)
		base := (c.Rank() / 2) * 2
		if v[0] != int64(base+base+1) {
			t.Errorf("world %d: quarter sum = %d, want %d", c.Rank(), v[0], base+base+1)
		}
		// The parent communicators still work after the splits.
		w := []int64{1}
		c.AllreduceInt64(w, Sum)
		if w[0] != 8 {
			t.Errorf("world allreduce = %d", w[0])
		}
	})
}

func TestSplitCollectivesUseSubTopology(t *testing.T) {
	// A split along node boundaries keeps its collectives on shared memory.
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		node := c.Split(c.Rank()/2, c.Rank())
		before := c.Endpoint().Stats()
		node.Barrier()
		v := []int64{int64(c.Rank())}
		node.AllreduceInt64(v, Sum)
		after := c.Endpoint().Stats()
		if after.EagerSent != before.EagerSent || after.RendezvousSent != before.RendezvousSent {
			t.Errorf("rank %d: node-local collectives sent network traffic (%+v -> %+v)",
				c.Rank(), before, after)
		}
		if after.ShmemSent == before.ShmemSent {
			t.Errorf("rank %d: node-local collectives sent nothing over shared memory", c.Rank())
		}
	})
}

func TestWaitanyReturnsFirstDone(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		if c.Rank() == 0 {
			// The peer sends tag 1 only; tag 0 never arrives until later.
			reqs := []*Request{
				c.IrecvN(1, 0, nil, 64),
				c.IrecvN(1, 1, nil, 64),
			}
			i := c.Waitany(reqs)
			if i != 1 {
				t.Errorf("Waitany = %d, want 1", i)
			}
			c.SendN(1, 9, nil, 4) // release the peer to send tag 0
			c.Wait(reqs[0])
		} else {
			c.SendN(0, 1, nil, 64)
			c.RecvN(0, 9, nil, 4)
			c.SendN(0, 0, nil, 64)
		}
	})
}

func TestTestall(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		if c.Rank() == 0 {
			reqs := []*Request{c.IrecvN(1, 0, nil, 8), c.IrecvN(1, 1, nil, 8)}
			if c.Testall(reqs) {
				t.Error("Testall true before any sends")
			}
			c.Waitall(reqs)
			if !c.Testall(reqs) {
				t.Error("Testall false after Waitall")
			}
		} else {
			c.Compute(1000)
			c.SendN(0, 0, nil, 8)
			c.SendN(0, 1, nil, 8)
		}
	})
}

func TestGroupAccessor(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		g := c.Group()
		if len(g) != 4 || g[2] != 2 {
			t.Errorf("world group = %v", g)
		}
		sub := c.Split(c.Rank()%2, c.Rank())
		sg := sub.Group()
		want := []int{0, 2}
		if c.Rank()%2 == 1 {
			want = []int{1, 3}
		}
		if len(sg) != 2 || sg[0] != want[0] || sg[1] != want[1] {
			t.Errorf("sub group = %v, want %v", sg, want)
		}
	})
}
