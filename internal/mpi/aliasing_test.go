package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/model"
)

// Buffer-aliasing semantics of the zero-copy payload path. An eager send
// captures one snapshot of the user buffer at post time (buffered-send
// semantics: the application may scribble on the buffer immediately after
// Isend returns). A rendezvous send does NOT copy — the transport wraps
// the caller's buffer in a refcounted view and reads it when CTS-driven
// stripes go to the wire, so the buffer belongs to the library until Wait
// returns. Both behaviours are deterministic in virtual time, so they are
// pinned here as contract tests.

// TestEagerSnapshotOnPost scribbles on the send buffer right after a
// small (eager) Isend: the receiver must see the pre-mutation snapshot.
func TestEagerSnapshotOnPost(t *testing.T) {
	n := model.Default().RendezvousThreshold / 2
	var got []byte
	rep, err := Run(Config{Nodes: 2}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			data := bytes.Repeat([]byte{0xAB}, n)
			req := c.Isend(1, 7, data)
			for i := range data {
				data[i] = 0xCD // erase after post: eager owns a snapshot
			}
			c.Wait(req)
			req.Release()
		case 1:
			buf := make([]byte, n)
			c.Recv(0, 7, buf)
			got = append([]byte(nil), buf...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want the pre-mutation snapshot 0xAB", i, b)
		}
	}
	if live := rep.World.BufLive(); live != 0 {
		t.Errorf("BufLive() = %d after quiesce, want 0", live)
	}
}

// TestRendezvousAliasesSenderBuffer scribbles on the send buffer right
// after a large (rendezvous) Isend, before Wait: the RPUT stripes read
// the caller's buffer when CTS arrives — later in virtual time — so the
// receiver must see the mutated bytes. This is the observable proof the
// bulk path is zero-copy (and why MPI says the buffer is the library's
// until Wait).
func TestRendezvousAliasesSenderBuffer(t *testing.T) {
	n := model.Default().RendezvousThreshold * 4
	var got []byte
	rep, err := Run(Config{Nodes: 2}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			data := bytes.Repeat([]byte{0xAB}, n)
			req := c.Isend(1, 7, data)
			for i := range data {
				data[i] = 0xCD // mutate before Wait: rendezvous aliases this buffer
			}
			c.Wait(req)
			req.Release()
		case 1:
			buf := make([]byte, n)
			c.Recv(0, 7, buf)
			got = append([]byte(nil), buf...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xCD {
			t.Fatalf("byte %d = %#x, want the aliased mutation 0xCD (bulk path copied instead of aliasing)", i, b)
		}
	}
	if live := rep.World.BufLive(); live != 0 {
		t.Errorf("BufLive() = %d after quiesce, want 0", live)
	}
}

// TestPayloadViewsReleasedAfterRun drives every payload-owning path —
// eager, rendezvous (both protocols), self-send, and intra-node shmem —
// and requires the world's buffer pool to report zero live views after
// the drain barrier: every capture and every Wrap must have been
// released exactly once.
func TestPayloadViewsReleasedAfterRun(t *testing.T) {
	thr := model.Default().RendezvousThreshold
	for _, proto := range []struct {
		name string
		rndv adi.RndvProto
	}{{"write", adi.RndvWrite}, {"read", adi.RndvRead}} {
		t.Run(proto.name, func(t *testing.T) {
			rep, err := Run(Config{Nodes: 2, ProcsPerNode: 2, QPsPerPort: 2, Rndv: proto.rndv}, func(c *Comm) {
				small := bytes.Repeat([]byte{byte(c.Rank())}, thr/4)
				big := bytes.Repeat([]byte{byte(c.Rank())}, thr*2)
				buf := make([]byte, thr*2)
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				c.SendrecvN(next, 1, small, len(small), prev, 1, buf, len(small)) // eager + shmem
				c.SendrecvN(next, 2, big, len(big), prev, 2, buf, len(big))       // rendezvous
				c.SendN(c.Rank(), 3, small, len(small))                           // self-send
				c.RecvN(c.Rank(), 3, buf, len(small))
			})
			if err != nil {
				t.Fatal(err)
			}
			if live := rep.World.BufLive(); live != 0 {
				t.Errorf("BufLive() = %d after quiesce, want 0", live)
			}
		})
	}
}
