package mpi

import (
	"ib12x/internal/core"
)

// Lane-decomposed collectives (Träff's multi-lane scheme): instead of
// letting the transport stripe each algorithm message across rails, the
// collective itself splits its payload into L lane segments
// (core.LaneSplit) and runs an independent sub-collective per lane, every
// transfer pinned to the lane's rail via the ADI lane-steering hint and
// separated into a per-lane tag space. The sub-collectives are
// ring-structured — per-lane scatter + allgather-of-pieces for Bcast,
// per-lane ring for Allgather, per-lane ring reduce-scatter with an
// allgather-of-segments / gather-to-root fix-up round for Allreduce and
// Reduce — so at every step all L lanes carry traffic concurrently on
// disjoint rails.
//
// The lane partition is pinned to the CONFIGURED inter-node rail count, a
// topology constant every rank shares, never the live rail count: per-
// endpoint RailMasks update asynchronously under faults, and a partition
// disagreement between ranks would break send/recv matching. A dead
// lane's traffic instead re-routes at post time (core.LaneRail against
// the posting endpoint's own mask) — the degraded-lane rule, DESIGN.md
// §15.

// CollAlg selects a collective-algorithm family (Config.CollAlg /
// Comm.SetCollAlg).
type CollAlg int

const (
	// CollStriped is the default: the reference algorithms (binomial
	// bcast, recursive-doubling allreduce, ring allgather), multi-rail
	// only through the transport's stripe planner. Matches every
	// historical digest.
	CollStriped CollAlg = iota
	// CollLane dispatches Bcast/Allgather/Reduce/Allreduce to the
	// lane-decomposed variants whenever the payload splits into at least
	// two lanes (smaller payloads and single-rail or single-node worlds
	// fall back to the reference algorithms).
	CollLane
	// CollAuto dispatches per operation: lane decomposition for payloads
	// at or above laneAutoThreshold (where the LaneCollTable ablation
	// shows it winning), the reference algorithms below. Pairing CollAuto
	// with the Adaptive policy gives lane-pinned large collectives and
	// adaptively striped point-to-point traffic.
	CollAuto
)

func (a CollAlg) String() string {
	switch a {
	case CollStriped:
		return "striped"
	case CollLane:
		return "lane"
	case CollAuto:
		return "auto"
	default:
		return "CollAlg(?)"
	}
}

const (
	// laneMinChunk is the minimum bytes per lane segment: below it the
	// partition collapses lanes rather than ship segments whose per-rank
	// ring pieces would be dominated by header and doorbell costs.
	laneMinChunk = 256

	// laneAutoThreshold is CollAuto's dispatch point. The LaneCollTable
	// ablation (EXPERIMENTS.md) puts the lane/striped crossover between
	// 16K and 64K on the paper's 4-rail configs: at 16K the reference
	// algorithms win 4 of 6 topology x collective cells (the fix-up round
	// costs more than the lanes recover), at 64K the lane algorithms win
	// all 6, so CollAuto switches at 64K.
	laneAutoThreshold = 64 << 10
)

// SetCollAlg overrides the collective-algorithm family for this
// communicator (later Split children inherit it). Like the collectives
// themselves the setting is collective state: every rank of the
// communicator must set the same value before the next collective call,
// or tag sequences desynchronize.
func (c *Comm) SetCollAlg(a CollAlg) { c.collAlg = a }

// nextCollTags reserves a block of k consecutive collective tags (one per
// lane). All ranks call collectives in the same order and compute the
// same lane count from topology constants, so the sequence stays aligned.
func (c *Comm) nextCollTags(k int) int {
	t := c.collTag
	c.collTag += k
	return t
}

// laneActive decides whether a collective moving n payload bytes per
// block dispatches to the lane algorithms, returning the lane partition
// when it does. The decision is a pure function of (collAlg, n, world
// shape) — identical on every rank.
func (c *Comm) laneActive(n int) ([]core.LaneSeg, bool) {
	if c.size < 2 || c.lanes < 2 || n <= 0 {
		return nil, false
	}
	switch c.collAlg {
	case CollLane:
	case CollAuto:
		if n < laneAutoThreshold {
			return nil, false
		}
	default:
		return nil, false
	}
	segs := core.LaneSplit(n, c.lanes, laneMinChunk, 0)
	if len(segs) < 2 {
		return nil, false // payload too small to decompose; reference path
	}
	return segs, true
}

// csendLane posts a collective-class send pinned to a lane's rail.
func (c *Comm) csendLane(dst, tag int, data []byte, n, lane int) *Request {
	return c.ep.PostSendLane(c.world(dst), tag, c.ctxColl, core.Collective, data, n, lane)
}

// sub returns the [off, off+n) window of b, nil for synthetic payloads or
// empty pieces (a nil zero-byte send skips the eager capture machinery).
func sub(b []byte, off, n int) []byte {
	if b == nil || n == 0 {
		return nil
	}
	return b[off : off+n]
}

// evenPieceAt locates rank j's piece of the lane segment [off, off+n)
// split contiguously across p ranks, remainder on the leading pieces.
// Bcast/Allgather pieces are pure byte copies, so no alignment is needed
// and pieces may be empty for tiny segments.
func evenPieceAt(off, n, j, p int) (int, int) {
	base, rem := n/p, n%p
	po := off + base*j + rem
	if j < rem {
		po = off + (base+1)*j
	}
	pn := base
	if j < rem {
		pn++
	}
	return po, pn
}

// alignedPieceAt is evenPieceAt on 8-byte element boundaries: reduce
// pieces must never split an element across ranks, or the element-wise
// combiners would merge half-values. n is a multiple of 8 here — the
// typed reduce entry points guarantee it, and LaneSplit aligns every
// segment boundary.
func alignedPieceAt(off, n, j, p int) (int, int) {
	units := n / 8
	base, rem := units/p, units%p
	pu := base*j + rem
	if j < rem {
		pu = (base + 1) * j
	}
	pn := base
	if j < rem {
		pn++
	}
	return off + pu*8, pn * 8
}

// laneBcast broadcasts n bytes from root: per-lane linear scatter from
// root (each rank receives its ring piece of every lane segment,
// lane-pinned), then the cross-lane fix-up round — a ring
// allgather-of-pieces with all L lanes exchanging concurrently on their
// own rails at every step.
func (c *Comm) laneBcast(root int, buf []byte, n int, segs []core.LaneSeg) {
	p, rank := c.size, c.rank
	base := c.nextCollTags(len(segs))

	if rank == root {
		reqs := make([]*Request, 0, len(segs)*(p-1))
		for _, sg := range segs {
			for j := 0; j < p; j++ {
				if j == root {
					continue
				}
				po, pn := evenPieceAt(sg.Off, sg.N, j, p)
				reqs = append(reqs, c.csendLane(j, base+sg.Lane, sub(buf, po, pn), pn, sg.Lane))
			}
		}
		c.cwaitAll(reqs)
	} else {
		reqs := make([]*Request, len(segs))
		for li, sg := range segs {
			po, pn := evenPieceAt(sg.Off, sg.N, rank, p)
			reqs[li] = c.crecv(root, base+sg.Lane, sub(buf, po, pn), pn)
		}
		c.cwaitAll(reqs)
	}

	// Fix-up round: ring allgather of the scattered pieces. Rank r holds
	// piece r after the scatter (root holds all), forwards piece (r-i) and
	// receives piece (r-i-1) at step i — root's receives overwrite its
	// bytes with identical data, keeping the ring fully symmetric.
	right, left := (rank+1)%p, (rank-1+p)%p
	rr := make([]*Request, len(segs))
	sr := make([]*Request, len(segs))
	for i := 0; i < p-1; i++ {
		sb := (rank - i + p) % p
		rb := (rank - i - 1 + p) % p
		for li, sg := range segs {
			ro, rn := evenPieceAt(sg.Off, sg.N, rb, p)
			rr[li] = c.crecv(left, base+sg.Lane, sub(buf, ro, rn), rn)
		}
		for li, sg := range segs {
			so, sn := evenPieceAt(sg.Off, sg.N, sb, p)
			sr[li] = c.csendLane(right, base+sg.Lane, sub(buf, so, sn), sn, sg.Lane)
		}
		c.cwaitAll(rr)
		c.cwaitAll(sr)
	}
}

// laneAllgather is the ring allgather with every block's bytes split over
// L lanes: at each of the p-1 steps, lane ℓ forwards its slice of the
// rolling block on its own rail. The data movement is byte-identical to
// the reference ring — lane decomposition here only changes which rail
// carries which bytes.
func (c *Comm) laneAllgather(send []byte, n int, recv []byte, segs []core.LaneSeg) {
	p, rank := c.size, c.rank
	base := c.nextCollTags(len(segs))
	if recv != nil && send != nil {
		copy(recv[rank*n:(rank+1)*n], send[:n])
	}
	right, left := (rank+1)%p, (rank-1+p)%p
	rr := make([]*Request, len(segs))
	sr := make([]*Request, len(segs))
	for i := 0; i < p-1; i++ {
		sb := (rank - i + p) % p
		rb := (rank - i - 1 + p) % p
		for li, sg := range segs {
			var rbuf []byte
			if recv != nil {
				rbuf = sub(recv, rb*n+sg.Off, sg.N)
			}
			rr[li] = c.crecv(left, base+sg.Lane, rbuf, sg.N)
		}
		for li, sg := range segs {
			var sbuf []byte
			if recv != nil {
				sbuf = sub(recv, sb*n+sg.Off, sg.N)
			}
			sr[li] = c.csendLane(right, base+sg.Lane, sbuf, sg.N, sg.Lane)
		}
		c.cwaitAll(rr)
		c.cwaitAll(sr)
	}
}

// laneReduceScatter runs the per-lane ring reduce-scatter shared by
// laneAllreduce and laneReduce: p-1 steps; at step i rank r forwards its
// partial of piece (r-i) and folds the received partial into piece
// (r-i-1), each lane on its own rail. Afterwards rank r holds the fully
// reduced piece (r+1)%p of every lane segment. Receives land in tmp —
// never in buf, whose sent piece is aliased zero-copy by the transport
// until the send completes — and the combine only runs after both waits.
func (c *Comm) laneReduceScatter(base int, buf, tmp []byte, combine func(dst, src []byte), segs []core.LaneSeg) {
	p, rank := c.size, c.rank
	right, left := (rank+1)%p, (rank-1+p)%p
	rr := make([]*Request, len(segs))
	sr := make([]*Request, len(segs))
	for i := 0; i < p-1; i++ {
		sb := (rank - i + p) % p
		rb := (rank - i - 1 + p) % p
		for li, sg := range segs {
			ro, rn := alignedPieceAt(sg.Off, sg.N, rb, p)
			rr[li] = c.crecv(left, base+sg.Lane, sub(tmp, ro, rn), rn)
		}
		for li, sg := range segs {
			so, sn := alignedPieceAt(sg.Off, sg.N, sb, p)
			sr[li] = c.csendLane(right, base+sg.Lane, sub(buf, so, sn), sn, sg.Lane)
		}
		c.cwaitAll(rr)
		c.cwaitAll(sr)
		for _, sg := range segs {
			ro, rn := alignedPieceAt(sg.Off, sg.N, rb, p)
			if rn > 0 {
				combine(buf[ro:ro+rn], tmp[ro:ro+rn])
			}
		}
	}
}

// laneAllreduce reduces buf element-wise across all ranks: per-lane ring
// reduce-scatter, then the fix-up round — a ring allgather of the reduced
// segments that leaves the complete result on every rank. Ring order
// reassociates the reduction differently than recursive doubling: exact
// operators (integer sum/min/max, float min/max) are bit-identical to the
// reference; float sums may differ in low bits, as MPI permits.
func (c *Comm) laneAllreduce(buf, tmp []byte, combine func(dst, src []byte), segs []core.LaneSeg) {
	p, rank := c.size, c.rank
	base := c.nextCollTags(len(segs))
	c.laneReduceScatter(base, buf, tmp, combine, segs)

	// Fix-up: ring allgather of reduced pieces; rank r enters owning piece
	// (r+1)%p and forwards piece (r+1-i)%p at step i, receiving directly
	// into buf.
	right, left := (rank+1)%p, (rank-1+p)%p
	rr := make([]*Request, len(segs))
	sr := make([]*Request, len(segs))
	for i := 0; i < p-1; i++ {
		sb := (rank + 1 - i + p) % p
		rb := (rank - i + p) % p
		for li, sg := range segs {
			ro, rn := alignedPieceAt(sg.Off, sg.N, rb, p)
			rr[li] = c.crecv(left, base+sg.Lane, sub(buf, ro, rn), rn)
		}
		for li, sg := range segs {
			so, sn := alignedPieceAt(sg.Off, sg.N, sb, p)
			sr[li] = c.csendLane(right, base+sg.Lane, sub(buf, so, sn), sn, sg.Lane)
		}
		c.cwaitAll(rr)
		c.cwaitAll(sr)
	}
}

// laneReduce reduces buf element-wise to root: the same per-lane ring
// reduce-scatter, with a gather-to-root fix-up — every rank lane-sends
// its one reduced piece, root assembles the result in place. Non-root
// buffers are clobbered with partials, matching the reference contract.
func (c *Comm) laneReduce(root int, buf, tmp []byte, combine func(dst, src []byte), segs []core.LaneSeg) {
	p, rank := c.size, c.rank
	base := c.nextCollTags(len(segs))
	c.laneReduceScatter(base, buf, tmp, combine, segs)

	if rank == root {
		reqs := make([]*Request, 0, len(segs)*(p-1))
		for j := 0; j < p; j++ {
			if j == root {
				continue
			}
			pc := (j + 1) % p // the piece rank j owns after reduce-scatter
			for _, sg := range segs {
				po, pn := alignedPieceAt(sg.Off, sg.N, pc, p)
				reqs = append(reqs, c.crecv(j, base+sg.Lane, sub(buf, po, pn), pn))
			}
		}
		c.cwaitAll(reqs)
	} else {
		own := (rank + 1) % p
		reqs := make([]*Request, len(segs))
		for li, sg := range segs {
			po, pn := alignedPieceAt(sg.Off, sg.N, own, p)
			reqs[li] = c.csendLane(root, base+sg.Lane, sub(buf, po, pn), pn, sg.Lane)
		}
		c.cwaitAll(reqs)
	}
}
