package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
)

// Randomized end-to-end properties: whatever the policy, rail count,
// rendezvous protocol or traffic pattern, MPI semantics must hold — data
// integrity, matching order, and deterministic virtual time.

// trafficCase is a reproducible random traffic pattern between two ranks.
type trafficCase struct {
	sizes []int
	tags  []int
}

func genTraffic(r *rand.Rand, msgs int) trafficCase {
	tc := trafficCase{}
	for i := 0; i < msgs; i++ {
		// Mix eager and rendezvous sizes, biased toward boundaries.
		var n int
		switch r.Intn(4) {
		case 0:
			n = r.Intn(64)
		case 1:
			n = 16*1024 - 32 + r.Intn(64) // straddle the threshold
		case 2:
			n = r.Intn(8 * 1024)
		default:
			n = 16*1024 + r.Intn(256*1024)
		}
		tc.sizes = append(tc.sizes, n)
		tc.tags = append(tc.tags, r.Intn(3)) // few tags → rich matching
	}
	return tc
}

func payloadFor(i, n int) []byte {
	b := make([]byte, n)
	for k := range b {
		b[k] = byte(i*31 + k*7)
	}
	return b
}

// runTraffic pushes the pattern through a configuration and checks every
// payload. Receives for a tag are posted in order, so per-tag messages must
// arrive unovertaken.
func runTraffic(t *testing.T, tc trafficCase, kind core.Kind, qps int, rndv adi.RndvProto) {
	t.Helper()
	c := cfg(2, 1, qps, kind)
	c.Rndv = rndv
	mustRun(t, c, func(cm *Comm) {
		if cm.Rank() == 0 {
			var reqs []*Request
			for i, n := range tc.sizes {
				reqs = append(reqs, cm.Isend(1, tc.tags[i], payloadFor(i, n)))
			}
			cm.Waitall(reqs)
		} else {
			// Per tag, messages must arrive in send order.
			nextByTag := map[int][]int{}
			for i, tag := range tc.tags {
				nextByTag[tag] = append(nextByTag[tag], i)
			}
			type rr struct {
				req *Request
				buf []byte
				idx int
			}
			var posted []rr
			for tag, idxs := range nextByTag {
				for _, i := range idxs {
					buf := make([]byte, tc.sizes[i])
					posted = append(posted, rr{cm.Irecv(0, tag, buf), buf, i})
				}
			}
			for _, pr := range posted {
				st := cm.Wait(pr.req)
				if st.Count != tc.sizes[pr.idx] {
					t.Errorf("msg %d: count %d, want %d", pr.idx, st.Count, tc.sizes[pr.idx])
				}
				if !bytes.Equal(pr.buf, payloadFor(pr.idx, tc.sizes[pr.idx])) {
					t.Errorf("msg %d (tag %d, %dB): payload mismatch", pr.idx, tc.tags[pr.idx], tc.sizes[pr.idx])
				}
			}
		}
	})
}

func TestRandomTrafficAllPolicies(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 6; trial++ {
		tc := genTraffic(r, 12)
		for _, kind := range []core.Kind{core.Original, core.RoundRobin, core.EvenStriping, core.EPC} {
			qps := 4
			if kind == core.Original {
				qps = 1
			}
			t.Run(fmt.Sprintf("trial%d_%v", trial, kind), func(t *testing.T) {
				runTraffic(t, tc, kind, qps, adi.RndvWrite)
			})
		}
	}
}

func TestRandomTrafficRGET(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	for trial := 0; trial < 4; trial++ {
		tc := genTraffic(r, 10)
		runTraffic(t, tc, core.EPC, 4, adi.RndvRead)
	}
}

func TestRandomTrafficUnderFaults(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	tc := genTraffic(r, 10)
	c := cfg(2, 1, 4, core.EPC)
	c.FaultEvery = 9
	mustRun(t, c, func(cm *Comm) {
		if cm.Rank() == 0 {
			var reqs []*Request
			for i, n := range tc.sizes {
				reqs = append(reqs, cm.Isend(1, 0, payloadFor(i, n)))
			}
			cm.Waitall(reqs)
		} else {
			for i, n := range tc.sizes {
				buf := make([]byte, n)
				cm.Recv(0, 0, buf)
				if !bytes.Equal(buf, payloadFor(i, n)) {
					t.Errorf("msg %d corrupted under faults", i)
				}
			}
		}
	})
}

// TestPolicyInvariantResults: the scheduling policy may change WHEN data
// arrives, never WHAT arrives. Run an identical mixed workload under every
// policy and compare the received bytes exactly.
func TestPolicyInvariantResults(t *testing.T) {
	workload := func(kind core.Kind, qps int) []byte {
		var digest []byte
		mustRun(t, cfg(2, 2, qps, kind), func(cm *Comm) {
			p := cm.Size()
			// Mixed collectives + pt2pt.
			v := []int64{int64(cm.Rank() * 3)}
			cm.AllreduceInt64(v, Sum)
			buf := make([]byte, 40*1024)
			if cm.Rank() == 0 {
				for i := range buf {
					buf[i] = byte(i * 11)
				}
			}
			cm.Bcast(0, buf)
			blk := make([]byte, p*1024)
			mine := payloadFor(cm.Rank(), 1024)
			cm.Allgather(mine, 1024, blk)
			if cm.Rank() == 1 {
				digest = append(digest, byte(v[0]))
				digest = append(digest, buf[:64]...)
				digest = append(digest, blk[:64]...)
			}
		})
		return digest
	}
	ref := workload(core.Original, 1)
	for _, kind := range []core.Kind{core.RoundRobin, core.EvenStriping, core.EPC} {
		if got := workload(kind, 4); !bytes.Equal(got, ref) {
			t.Errorf("%v: results differ from original", kind)
		}
	}
}

// TestDeterminismAcrossRepeats: the full stack is bit-for-bit repeatable.
func TestDeterminismAcrossRepeats(t *testing.T) {
	run := func() (float64, int64) {
		var wt float64
		var stripes int64
		rep := mustRun(t, cfg(2, 4, 4, core.EPC), func(cm *Comm) {
			cm.Alltoall(nil, 48*1024, nil)
			v := []int64{int64(cm.Rank())}
			cm.AllreduceInt64(v, Max)
			if cm.Rank() == 0 {
				wt = cm.Wtime()
			}
		})
		for _, s := range rep.RankStats {
			stripes += s.StripesSent
		}
		return wt, stripes
	}
	w1, s1 := run()
	w2, s2 := run()
	if w1 != w2 || s1 != s2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", w1, s1, w2, s2)
	}
}

// TestAdaptiveMatchesEPCWithoutMarker: the adaptive extension should match
// EPC's blocking behaviour (striping, since one blocking transfer leaves
// the pipeline empty) and its windowed behaviour (round robin) without ever
// seeing the communication marker.
func TestAdaptiveMatchesEPCWithoutMarker(t *testing.T) {
	lat := func(kind core.Kind) float64 {
		var one float64
		mustRun(t, cfg(2, 1, 4, kind), func(cm *Comm) {
			const iters = 20
			if cm.Rank() == 0 {
				t0 := cm.Time()
				for i := 0; i < iters; i++ {
					cm.SendN(1, 0, nil, 1<<20)
					cm.RecvN(1, 0, nil, 1<<20)
				}
				one = (cm.Time() - t0).Micros() / (2 * iters)
			} else {
				for i := 0; i < iters; i++ {
					cm.RecvN(0, 0, nil, 1<<20)
					cm.SendN(0, 0, nil, 1<<20)
				}
			}
		})
		return one
	}
	epc, ad := lat(core.EPC), lat(core.Adaptive)
	if d := (ad - epc) / epc; d > 0.05 || d < -0.05 {
		t.Errorf("blocking 1MB latency: adaptive %.0fus vs EPC %.0fus", ad, epc)
	}

	bw := func(kind core.Kind) float64 {
		var el float64
		mustRun(t, cfg(2, 1, 4, kind), func(cm *Comm) {
			const w, iters = 32, 6
			reqs := make([]*Request, w)
			if cm.Rank() == 0 {
				t0 := cm.Time()
				for it := 0; it < iters; it++ {
					for i := range reqs {
						reqs[i] = cm.IsendN(1, 0, nil, 1<<20)
					}
					cm.Waitall(reqs)
					cm.RecvN(1, 1, nil, 4)
				}
				el = (cm.Time() - t0).Seconds()
			} else {
				for it := 0; it < iters; it++ {
					for i := range reqs {
						reqs[i] = cm.IrecvN(0, 0, nil, 1<<20)
					}
					cm.Waitall(reqs)
					cm.SendN(0, 1, nil, 4)
				}
			}
		})
		return el
	}
	epcT, adT := bw(core.EPC), bw(core.Adaptive)
	if d := (adT - epcT) / epcT; d > 0.10 {
		t.Errorf("windowed 1MB bandwidth: adaptive %.6fs vs EPC %.6fs", adT, epcT)
	}
}
