package mpi

import (
	"testing"
	"testing/quick"

	"ib12x/internal/core"
)

func TestDatatypeMath(t *testing.T) {
	d := Vector(4, 8, 32)
	if d.Size() != 32 || d.Extent() != 3*32+8 || d.Contig() {
		t.Errorf("vector: size=%d extent=%d contig=%v", d.Size(), d.Extent(), d.Contig())
	}
	cg := Contiguous(100)
	if cg.Size() != 100 || cg.Extent() != 100 || !cg.Contig() {
		t.Errorf("contiguous wrong: %+v", cg)
	}
	if (Datatype{}).Extent() != 0 {
		t.Error("empty extent")
	}
}

func TestVectorValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("stride < blocklen must panic")
		}
	}()
	Vector(2, 16, 8)
}

func TestPackUnpackRoundtrip(t *testing.T) {
	f := func(count, blockLen, pad uint8) bool {
		c := int(count%8) + 1
		b := int(blockLen%16) + 1
		d := Vector(c, b, b+int(pad%8))
		src := make([]byte, d.Extent())
		for i := range src {
			src[i] = byte(i * 7)
		}
		packed := d.Pack(src)
		if len(packed) != d.Size() {
			return false
		}
		dst := make([]byte, d.Extent())
		d.Unpack(packed, dst)
		// Every in-block byte must round-trip; gaps stay zero.
		for blk := 0; blk < c; blk++ {
			for i := 0; i < b; i++ {
				if dst[blk*d.Stride+i] != src[blk*d.Stride+i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStridedSendRecv(t *testing.T) {
	// A classic column exchange: an 8x8 matrix's column sent as a vector,
	// received into a different column.
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		const n = 8
		mat := make([]byte, n*n)
		col := Vector(n, 1, n)
		if c.Rank() == 0 {
			for r := 0; r < n; r++ {
				mat[r*n+2] = byte(10 + r) // column 2
			}
			c.SendD(1, 0, mat[2:], col)
		} else {
			c.RecvD(0, 0, mat[5:], col) // into column 5
			for r := 0; r < n; r++ {
				if mat[r*n+5] != byte(10+r) {
					t.Fatalf("row %d: got %d", r, mat[r*n+5])
				}
			}
		}
	})
}

func TestStridedLargeTransferCosts(t *testing.T) {
	// Packing a large strided face costs copy time: the strided exchange
	// must be slower than the same bytes sent contiguously.
	elapsed := func(d Datatype) float64 {
		var el float64
		mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
			buf := make([]byte, d.Extent())
			if c.Rank() == 0 {
				t0 := c.Time()
				for i := 0; i < 10; i++ {
					c.SendD(1, 0, buf, d)
				}
				el = (c.Time() - t0).Seconds()
			} else {
				for i := 0; i < 10; i++ {
					c.RecvD(0, 0, buf, d)
				}
			}
		})
		return el
	}
	strided := elapsed(Vector(4096, 64, 128)) // 256 KB in 64B blocks
	contig := elapsed(Contiguous(4096 * 64))
	if strided <= contig {
		t.Errorf("strided %.6fs not slower than contiguous %.6fs", strided, contig)
	}
}

func TestSendrecvD(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		const n = 16
		d := Vector(n, 2, 4)
		out := make([]byte, d.Extent())
		in := make([]byte, d.Extent())
		for b := 0; b < n; b++ {
			out[b*4] = byte(c.Rank()*100 + b)
			out[b*4+1] = byte(b)
		}
		peer := 1 - c.Rank()
		c.SendrecvD(peer, 0, out, d, peer, 0, in, d)
		for b := 0; b < n; b++ {
			if in[b*4] != byte(peer*100+b) || in[b*4+1] != byte(b) {
				t.Fatalf("block %d wrong: % x", b, in[b*4:b*4+2])
			}
		}
	})
}
