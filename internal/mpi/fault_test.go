// Failure injection: a lossy link retransmits but never corrupts. The loss
// knob is expressed as a chaos plan (chaos.LegacyEveryN) rather than the
// raw Config.FaultEvery magic number; this file lives in package mpi_test
// because the chaos package imports mpi.
package mpi_test

import (
	"bytes"
	"testing"

	"ib12x/internal/chaos"
	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

// faultCfg mirrors the in-package test helper: a two-level cluster with the
// given shape and policy.
func faultCfg(nodes, ppn, qps int, kind core.Kind) mpi.Config {
	return mpi.Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind}
}

func faultRun(t *testing.T, cfg mpi.Config, body func(c *mpi.Comm)) *mpi.Report {
	t.Helper()
	rep, err := mpi.Run(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFaultyLinkDeliversCorrectPayloads(t *testing.T) {
	const n = 256 * 1024
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	got := make([]byte, n)
	cfg := faultCfg(2, 1, 4, core.EPC)
	cfg.Chaos = chaos.LegacyEveryN(5)
	rep := faultRun(t, cfg, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, payload)
		} else {
			c.Recv(0, 0, got)
		}
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted under fault injection")
	}
	var retr int64
	for _, node := range rep.World.Cluster.Nodes {
		for _, port := range node.Ports() {
			retr += port.Retransmits
		}
	}
	if retr == 0 {
		t.Error("no retransmissions recorded on a lossy fabric")
	}
}

func TestFaultyLinkSlowsButCompletes(t *testing.T) {
	run := func(fault int64) float64 {
		c := faultCfg(2, 1, 4, core.EPC)
		if fault > 0 {
			c.Chaos = chaos.LegacyEveryN(fault)
		}
		rep := faultRun(t, c, func(c *mpi.Comm) {
			if c.Rank() == 0 {
				for i := 0; i < 8; i++ {
					c.SendN(1, i, nil, 128*1024)
				}
			} else {
				for i := 0; i < 8; i++ {
					c.RecvN(0, i, nil, 128*1024)
				}
			}
		})
		return rep.Elapsed.Seconds()
	}
	clean := run(0)
	faulty := run(6)
	if faulty <= clean {
		t.Errorf("faulty fabric (%.6fs) not slower than clean (%.6fs)", faulty, clean)
	}
}

func TestFaultyCollectivesCorrect(t *testing.T) {
	c := faultCfg(2, 2, 2, core.EPC)
	c.Chaos = chaos.LegacyEveryN(7)
	faultRun(t, c, func(c *mpi.Comm) {
		v := []int64{int64(c.Rank() + 1)}
		c.AllreduceInt64(v, mpi.Sum)
		if v[0] != 10 {
			t.Errorf("allreduce under faults = %d, want 10", v[0])
		}
		buf := make([]byte, 64*1024)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		c.Bcast(0, buf)
		for i := range buf {
			if buf[i] != byte(i) {
				t.Fatalf("bcast corrupted at %d under faults", i)
			}
		}
	})
}

// TestLegacyKnobAndPlanAgree pins the plan encoding of the loss knob to the
// raw Config field: both must produce the same virtual run.
func TestLegacyKnobAndPlanAgree(t *testing.T) {
	body := func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.SendN(1, 0, nil, 192*1024)
		} else {
			c.RecvN(0, 0, nil, 192*1024)
		}
	}
	a := faultCfg(2, 1, 4, core.EvenStriping)
	a.FaultEvery = 9
	repA := faultRun(t, a, body)

	b := faultCfg(2, 1, 4, core.EvenStriping)
	b.Chaos = chaos.LegacyEveryN(9)
	repB := faultRun(t, b, body)

	if repA.Elapsed != repB.Elapsed {
		t.Errorf("FaultEvery=9 elapsed %v, chaos.LegacyEveryN(9) elapsed %v — encodings diverge",
			repA.Elapsed, repB.Elapsed)
	}
}
