package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
)

// Failure injection: a lossy link retransmits but never corrupts.

func TestFaultyLinkDeliversCorrectPayloads(t *testing.T) {
	const n = 256 * 1024
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	got := make([]byte, n)
	cfg := cfg(2, 1, 4, core.EPC)
	cfg.FaultEvery = 5
	rep := mustRun(t, cfg, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, payload)
		} else {
			c.Recv(0, 0, got)
		}
	})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted under fault injection")
	}
	var retr int64
	for _, node := range rep.World.Cluster.Nodes {
		for _, port := range node.Ports() {
			retr += port.Retransmits
		}
	}
	if retr == 0 {
		t.Error("no retransmissions recorded on a lossy fabric")
	}
}

func TestFaultyLinkSlowsButCompletes(t *testing.T) {
	run := func(fault int64) float64 {
		c := cfg(2, 1, 4, core.EPC)
		c.FaultEvery = fault
		rep := mustRun(t, c, func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < 8; i++ {
					c.SendN(1, i, nil, 128*1024)
				}
			} else {
				for i := 0; i < 8; i++ {
					c.RecvN(0, i, nil, 128*1024)
				}
			}
		})
		return rep.Elapsed.Seconds()
	}
	clean := run(0)
	faulty := run(6)
	if faulty <= clean {
		t.Errorf("faulty fabric (%.6fs) not slower than clean (%.6fs)", faulty, clean)
	}
}

func TestFaultyCollectivesCorrect(t *testing.T) {
	c := cfg(2, 2, 2, core.EPC)
	c.FaultEvery = 7
	mustRun(t, c, func(c *Comm) {
		v := []int64{int64(c.Rank() + 1)}
		c.AllreduceInt64(v, Sum)
		if v[0] != 10 {
			t.Errorf("allreduce under faults = %d, want 10", v[0])
		}
		buf := make([]byte, 64*1024)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		c.Bcast(0, buf)
		for i := range buf {
			if buf[i] != byte(i) {
				t.Fatalf("bcast corrupted at %d under faults", i)
			}
		}
	})
}
