package mpi

import "sort"

// Split partitions the communicator (MPI_Comm_split): ranks passing the
// same color form a new communicator, ordered by (key, old rank). A
// negative color (MPI_UNDEFINED) returns nil for that rank. All members of
// c must call Split collectively.
//
// Matching contexts for the child are allocated from a per-endpoint
// counter agreed by maximum across the child's members, so no two
// communicators that share a process can ever collide — communicators with
// disjoint processes share no matching state and may reuse ids freely.
func (c *Comm) Split(color, key int) *Comm {
	p := c.Size()
	// Gather (color, key, worldRank, endpoint's next free context).
	mine := make([]byte, 32)
	putU64f(mine[0:], uint64(int64(color)))
	putU64f(mine[8:], uint64(int64(key)))
	putU64f(mine[16:], uint64(int64(c.world(c.rank))))
	putU64f(mine[24:], uint64(int64(c.ep.NextCtx())))
	all := make([]byte, 32*p)
	c.Allgather(mine, 32, all)

	type member struct {
		color, key, world int
	}
	var members []member
	maxCtx := 0
	for r := 0; r < p; r++ {
		b := all[32*r:]
		m := member{
			color: int(int64(getU64f(b[0:]))),
			key:   int(int64(getU64f(b[8:]))),
			world: int(int64(getU64f(b[16:]))),
		}
		if m.color != color {
			continue
		}
		members = append(members, m)
		if ctx := int(int64(getU64f(b[24:]))); ctx > maxCtx {
			maxCtx = ctx
		}
	}
	if color < 0 {
		return nil
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].world < members[j].world
	})

	child := &Comm{
		ep:      c.ep,
		size:    len(members),
		group:   make([]int, len(members)),
		inverse: make(map[int]int, len(members)),
		ctxP2P:  maxCtx,
		ctxColl: maxCtx + 1,
		collAlg: c.collAlg,
		lanes:   c.lanes,
	}
	me := c.world(c.rank)
	for i, m := range members {
		child.group[i] = m.world
		child.inverse[m.world] = i
		if m.world == me {
			child.rank = i
		}
	}
	c.ep.ReserveCtx(maxCtx + 2)
	return child
}

// Dup duplicates the communicator with fresh matching contexts
// (MPI_Comm_dup).
func (c *Comm) Dup() *Comm { return c.Split(0, c.rank) }

// Waitany blocks until at least one of the requests completes and returns
// its index (MPI_Waitany). It panics on an empty slice.
func (c *Comm) Waitany(rs []*Request) int {
	if len(rs) == 0 {
		panic("mpi: Waitany on no requests")
	}
	for {
		for i, r := range rs {
			if r != nil && r.Done() {
				return i
			}
		}
		c.ep.WaitAnyProgress()
	}
}

// Testall drives progress and reports whether every request has completed.
func (c *Comm) Testall(rs []*Request) bool {
	c.ep.Progress()
	for _, r := range rs {
		if r != nil && !r.Done() {
			return false
		}
	}
	return true
}
