package mpi_test

import (
	"fmt"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

// The smallest complete job: two ranks on two nodes exchange a greeting
// over the simulated 12x fabric.
func ExampleRun() {
	cfg := mpi.Config{Nodes: 2, QPsPerPort: 4, Policy: core.EPC}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []byte("hello over 12x"))
		} else {
			buf := make([]byte, 14)
			st := c.Recv(0, 0, buf)
			fmt.Printf("rank %d got %q from rank %d\n", c.Rank(), buf, st.Source)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: rank 1 got "hello over 12x" from rank 0
}

// Collectives carry the communication marker invisibly: EPC stripes their
// transfers even though they are non-blocking underneath.
func ExampleComm_AllreduceInt64() {
	cfg := mpi.Config{Nodes: 2, ProcsPerNode: 2, QPsPerPort: 4, Policy: core.EPC}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		v := []int64{int64(c.Rank() + 1)}
		c.AllreduceInt64(v, mpi.Sum)
		if c.Rank() == 0 {
			fmt.Println("sum over 4 ranks:", v[0])
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: sum over 4 ranks: 10
}

// One-sided communication: every rank accumulates into rank 0's window;
// the fence closes the epoch.
func ExampleWin() {
	cfg := mpi.Config{Nodes: 2, ProcsPerNode: 2, QPsPerPort: 2, Policy: core.EPC}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		w := c.WinCreate(make([]byte, 8), 8)
		w.AccumulateInt64(0, 0, []int64{int64(c.Rank())}, mpi.Sum)
		w.Fence()
		if c.Rank() == 0 {
			fmt.Println("accumulated:", w.ReadInt64(0))
		}
		w.Free()
	})
	if err != nil {
		panic(err)
	}
	// Output: accumulated: 6
}

// Virtual time is the measurement: a 1 MB blocking send under EPC stripes
// across all four engines and lands in the sub-millisecond range the
// hardware calibration dictates.
func ExampleComm_Wtime() {
	cfg := mpi.Config{Nodes: 2, QPsPerPort: 4, Policy: core.EPC}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			t0 := c.Wtime()
			c.SendN(1, 0, nil, 1<<20)
			fmt.Printf("1MB sender-side completion in under 1ms: %v\n", c.Wtime()-t0 < 1e-3)
		} else {
			c.RecvN(0, 0, nil, 1<<20)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: 1MB sender-side completion in under 1ms: true
}
