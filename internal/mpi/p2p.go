package mpi

import "ib12x/internal/core"

// Send performs a blocking standard-mode send of n = len(data) bytes.
// The communication marker classifies it Blocking, so multi-rail policies
// that stripe blocking transfers (even striping, EPC) apply.
func (c *Comm) Send(dst, tag int, data []byte) Status {
	req := c.ep.PostSend(c.world(dst), tag, c.ctxP2P, core.Blocking, data, len(data))
	st := c.localStatus(c.ep.Wait(req))
	req.Release()
	return st
}

// SendN is Send with an explicit byte count and optional payload (nil data
// sends a synthetic message of n bytes through identical protocol paths).
func (c *Comm) SendN(dst, tag int, data []byte, n int) Status {
	req := c.ep.PostSend(c.world(dst), tag, c.ctxP2P, core.Blocking, data, n)
	st := c.localStatus(c.ep.Wait(req))
	req.Release()
	return st
}

// Recv performs a blocking receive into buf (length = capacity).
func (c *Comm) Recv(src, tag int, buf []byte) Status {
	req := c.ep.PostRecv(c.world(src), tag, c.ctxP2P, buf, len(buf))
	st := c.localStatus(c.ep.Wait(req))
	req.Release()
	return st
}

// RecvN is Recv with an explicit capacity and optional buffer.
func (c *Comm) RecvN(src, tag int, buf []byte, n int) Status {
	req := c.ep.PostRecv(c.world(src), tag, c.ctxP2P, buf, n)
	st := c.localStatus(c.ep.Wait(req))
	req.Release()
	return st
}

// Isend starts a non-blocking send; the marker classifies it NonBlocking,
// so EPC places the whole message on the next rail (round robin).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	return c.ep.PostSend(c.world(dst), tag, c.ctxP2P, core.NonBlocking, data, len(data))
}

// IsendN is Isend with an explicit count and optional payload.
func (c *Comm) IsendN(dst, tag int, data []byte, n int) *Request {
	return c.ep.PostSend(c.world(dst), tag, c.ctxP2P, core.NonBlocking, data, n)
}

// Irecv starts a non-blocking receive.
func (c *Comm) Irecv(src, tag int, buf []byte) *Request {
	return c.ep.PostRecv(c.world(src), tag, c.ctxP2P, buf, len(buf))
}

// IrecvN is Irecv with an explicit capacity and optional buffer.
func (c *Comm) IrecvN(src, tag int, buf []byte, n int) *Request {
	return c.ep.PostRecv(c.world(src), tag, c.ctxP2P, buf, n)
}

// Wait blocks until the request completes and returns its status.
func (c *Comm) Wait(r *Request) Status { return c.localStatus(c.ep.Wait(r)) }

// Waitall blocks until every request completes.
func (c *Comm) Waitall(rs []*Request) { c.ep.WaitAll(rs) }

// Test drives progress once and reports whether the request completed.
func (c *Comm) Test(r *Request) bool { return c.ep.Test(r) }

// Iprobe reports whether a matching message is waiting, without receiving.
func (c *Comm) Iprobe(src, tag int) (bool, Status) {
	ok, st := c.ep.Iprobe(c.world(src), tag, c.ctxP2P)
	return ok, c.localStatus(st)
}

// Probe blocks until a matching message is available and returns its
// status without receiving it (MPI_Probe).
func (c *Comm) Probe(src, tag int) Status {
	for {
		if ok, st := c.Iprobe(src, tag); ok {
			return st
		}
		c.ep.WaitAnyProgress()
	}
}

// Progress drains pending completions without blocking (useful between
// Compute phases to let the virtual progress engine run).
func (c *Comm) Progress() { c.ep.Progress() }

// Sendrecv performs the blocking combined send+receive used by collective
// algorithms and stencil codes: both transfers proceed concurrently.
func (c *Comm) Sendrecv(dst, stag int, sdata []byte, src, rtag int, rbuf []byte) Status {
	rreq := c.ep.PostRecv(c.world(src), rtag, c.ctxP2P, rbuf, len(rbuf))
	sreq := c.ep.PostSend(c.world(dst), stag, c.ctxP2P, core.Blocking, sdata, len(sdata))
	c.ep.Wait(sreq)
	st := c.localStatus(c.ep.Wait(rreq))
	sreq.Release()
	rreq.Release()
	return st
}

// SendrecvN is Sendrecv with explicit counts and optional buffers.
func (c *Comm) SendrecvN(dst, stag int, sdata []byte, sn int, src, rtag int, rbuf []byte, rn int) Status {
	rreq := c.ep.PostRecv(c.world(src), rtag, c.ctxP2P, rbuf, rn)
	sreq := c.ep.PostSend(c.world(dst), stag, c.ctxP2P, core.Blocking, sdata, sn)
	c.ep.Wait(sreq)
	st := c.localStatus(c.ep.Wait(rreq))
	sreq.Release()
	rreq.Release()
	return st
}
