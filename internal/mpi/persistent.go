package mpi

import "ib12x/internal/core"

// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start): the
// argument set is frozen once and the operation re-posted per iteration —
// the classic idiom for fixed communication graphs like halo exchanges.

// PersistentReq is an initialized-but-inactive communication operation.
type PersistentReq struct {
	c      *Comm
	send   bool
	peer   int
	tag    int
	buf    []byte
	n      int
	active *Request
}

// SendInit creates a persistent send of n bytes to dst (data may be nil).
func (c *Comm) SendInit(dst, tag int, data []byte, n int) *PersistentReq {
	return &PersistentReq{c: c, send: true, peer: dst, tag: tag, buf: data, n: n}
}

// RecvInit creates a persistent receive of up to n bytes from src.
func (c *Comm) RecvInit(src, tag int, buf []byte, n int) *PersistentReq {
	return &PersistentReq{c: c, peer: src, tag: tag, buf: buf, n: n}
}

// Start activates the operation. Starting an already-active request panics
// (as MPI forbids).
func (p *PersistentReq) Start() {
	if p.active != nil && !p.active.Done() {
		panic("mpi: Start on an active persistent request")
	}
	if p.send {
		p.active = p.c.ep.PostSend(p.c.world(p.peer), p.tag, p.c.ctxP2P, core.NonBlocking, p.buf, p.n)
		return
	}
	p.active = p.c.ep.PostRecv(p.c.world(p.peer), p.tag, p.c.ctxP2P, p.buf, p.n)
}

// Wait blocks until the active operation completes and returns its status.
func (p *PersistentReq) Wait() Status {
	if p.active == nil {
		panic("mpi: Wait on a never-started persistent request")
	}
	return p.c.localStatus(p.c.ep.Wait(p.active))
}

// StartAll starts a set of persistent requests.
func StartAll(ps []*PersistentReq) {
	for _, p := range ps {
		p.Start()
	}
}

// WaitAllPersistent waits for every request in the set.
func WaitAllPersistent(ps []*PersistentReq) {
	for _, p := range ps {
		p.Wait()
	}
}
