package mpi

import (
	"fmt"

	"ib12x/internal/adi"
	"ib12x/internal/core"
)

// One-sided communication (MPI-2 RMA) with active-target synchronization:
// WinCreate / Put / Get / Accumulate / Fence / Free. Inter-node Put and Get
// travel as RDMA operations striped across rails by the scheduling policy —
// the multi-rail one-sided design of the authors' HiPC 2005 companion paper
// — while intra-node targets and Accumulate use message-based emulation, as
// MVAPICH did.

// Win is an exposed RMA window (MPI_Win).
type Win struct {
	c    *Comm
	id   int
	buf  []byte
	n    int
	keys []uint32 // rkey of every rank's window

	outstanding []*Request
	sentCounted []int64 // message-based ops sent per target this epoch
	expected    int64   // cumulative message-based ops expected locally
	freed       bool
}

// WinCreate collectively exposes buf (length n; nil allowed for synthetic
// windows) on every rank and returns the window handle. All ranks must call
// it with the same sequence of WinCreate/WinFree operations.
func (c *Comm) WinCreate(buf []byte, n int) *Win {
	if buf != nil && len(buf) < n {
		panic("mpi: window buffer shorter than declared size")
	}
	// Window ids are namespaced by the communicator's (unique) matching
	// context so windows of a parent and its Split children never collide
	// on a shared endpoint.
	w := &Win{c: c, id: c.ctxP2P<<20 | c.nextWinID, buf: buf, n: n, sentCounted: make([]int64, c.Size())}
	c.nextWinID++
	rkey := c.ep.RegisterWindow(w.id, buf, n)
	// Exchange rkeys so any rank can RDMA into any window.
	mine := make([]byte, 4)
	mine[0], mine[1], mine[2], mine[3] = byte(rkey), byte(rkey>>8), byte(rkey>>16), byte(rkey>>24)
	all := make([]byte, 4*c.Size())
	// The rkeys are protocol metadata: a corrupted one would wedge or crash
	// the run, so the exchange is shielded from payload-corruption plans
	// (liveness-safe chaos by construction; see adi.Shielded).
	c.ep.Shielded(func() { c.Allgather(mine, 4, all) })
	w.keys = make([]uint32, c.Size())
	for r := range w.keys {
		b := all[4*r:]
		w.keys[r] = uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	return w
}

// Size reports the window's byte length.
func (w *Win) Size() int { return w.n }

func (w *Win) checkAccess(target, off, n int) {
	if w.freed {
		panic("mpi: access to a freed window")
	}
	if target < 0 || target >= w.c.Size() {
		panic(fmt.Sprintf("mpi: RMA target %d out of range", target))
	}
	if off < 0 || off+n > w.n {
		panic(fmt.Sprintf("mpi: RMA access [%d,%d) outside window of %d bytes", off, off+n, w.n))
	}
}

// Put writes len(data) bytes into target's window at byte offset off. The
// operation completes (locally and remotely) by the end of the epoch's
// Fence; the marker classifies it Blocking so large transfers stripe.
func (w *Win) Put(target, off int, data []byte) { w.PutN(target, off, data, len(data)) }

// PutN is Put with an explicit count and optional (synthetic) payload.
func (w *Win) PutN(target, off int, data []byte, n int) {
	w.checkAccess(target, off, n)
	req, counted := w.c.ep.PutBulk(w.c.world(target), w.id, w.keys[target], off, data, n, core.Blocking)
	if counted {
		w.sentCounted[target]++
	}
	if !req.Done() {
		w.outstanding = append(w.outstanding, req)
	}
}

// Get reads len(buf) bytes from target's window at byte offset off.
func (w *Win) Get(target, off int, buf []byte) { w.GetN(target, off, buf, len(buf)) }

// GetN is Get with an explicit count and optional buffer.
func (w *Win) GetN(target, off int, buf []byte, n int) {
	w.checkAccess(target, off, n)
	req := w.c.ep.GetBulk(w.c.world(target), w.id, w.keys[target], off, buf, n, core.Blocking)
	if !req.Done() {
		w.outstanding = append(w.outstanding, req)
	}
}

// AccumulateInt64 combines vals element-wise into target's window starting
// at element offset offElems (the window is treated as an int64 array).
func (w *Win) AccumulateInt64(target, offElems int, vals []int64, op Op) {
	n := 8 * len(vals)
	off := 8 * offElems
	w.checkAccess(target, off, n)
	data := int64sToBytes(vals)
	accOp := map[Op]adi.AccOp{Sum: adi.AccSum, Max: adi.AccMax, Min: adi.AccMin}[op]
	if w.c.ep.AccumulateSend(w.c.world(target), w.id, off, data, n, accOp) {
		w.sentCounted[target]++
	}
}

// ReplaceInt64 stores vals at the target (MPI_REPLACE accumulate): unlike
// Put it is always message-based and therefore ordered with other
// accumulates to the same target.
func (w *Win) ReplaceInt64(target, offElems int, vals []int64) {
	n := 8 * len(vals)
	off := 8 * offElems
	w.checkAccess(target, off, n)
	if w.c.ep.AccumulateSend(w.c.world(target), w.id, off, int64sToBytes(vals), n, adi.AccReplace) {
		w.sentCounted[target]++
	}
}

// FetchAddInt64 atomically adds delta to element offElems of the target's
// window and returns the previous value (MPI_Fetch_and_op with MPI_SUM,
// mapped to the HCA's fetch-and-add for inter-node targets). It blocks
// until the old value is back — atomics are synchronous by nature.
func (w *Win) FetchAddInt64(target, offElems int, delta int64) int64 {
	off := 8 * offElems
	w.checkAccess(target, off, 8)
	req := w.c.ep.FetchAtomic(w.c.world(target), w.id, w.keys[target], off, false, uint64(delta), 0)
	w.c.ep.Wait(req)
	return int64(req.AtomicOld())
}

// CompareAndSwapInt64 atomically replaces element offElems of the target's
// window with swap if it equals compare, returning the previous value
// (MPI_Compare_and_swap).
func (w *Win) CompareAndSwapInt64(target, offElems int, compare, swap int64) int64 {
	off := 8 * offElems
	w.checkAccess(target, off, 8)
	req := w.c.ep.FetchAtomic(w.c.world(target), w.id, w.keys[target], off, true, uint64(compare), uint64(swap))
	w.c.ep.Wait(req)
	return int64(req.AtomicOld())
}

// ReadInt64 reads element i of the LOCAL window (load from exposed memory).
func (w *Win) ReadInt64(i int) int64 {
	b := w.buf[8*i:]
	var v uint64
	for k := 0; k < 8; k++ {
		v |= uint64(b[k]) << (8 * k)
	}
	return int64(v)
}

// Fence closes the current RMA epoch (MPI_Win_fence): it blocks until every
// operation issued by this rank has completed at its target and every
// operation targeting this rank has been applied locally, then
// synchronizes all ranks.
func (w *Win) Fence() {
	if w.freed {
		panic("mpi: Fence on a freed window")
	}
	c := w.c
	// 1. Local + remote completion of RDMA ops (an RC ack implies remote
	// placement) and of message-based sends.
	c.ep.WaitAll(w.outstanding)
	w.outstanding = w.outstanding[:0]

	// 2. Message-based ops (accumulates, intra-node puts) complete only
	// when the target applies them: exchange per-target counts and wait
	// for the expected number locally (the MPICH fence scheme).
	p := c.Size()
	sendB := make([]byte, 8*p)
	for j, v := range w.sentCounted {
		putU64f(sendB[8*j:], uint64(v))
		w.sentCounted[j] = 0
	}
	recvB := make([]byte, 8*p)
	// Shielded: a flipped count would make WaitWindowOps wait forever.
	c.ep.Shielded(func() { c.Alltoall(sendB, 8, recvB) })
	for j := 0; j < p; j++ {
		w.expected += int64(getU64f(recvB[8*j:]))
	}
	c.ep.WaitWindowOps(w.id, w.expected)

	// 3. Epoch boundary.
	c.Barrier()
}

// Free collectively releases the window.
func (w *Win) Free() {
	w.Fence()
	w.c.ep.UnregisterWindow(w.id)
	w.freed = true
}

func putU64f(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64f(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
