package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/sim"
)

// cfg builds a config with qps rails and a policy over nodes×ppn ranks.
func cfg(nodes, ppn, qps int, k core.Kind) Config {
	return Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: k}
}

func mustRun(t *testing.T, c Config, body func(c *Comm)) *Report {
	t.Helper()
	rep, err := Run(c, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestRunBasics(t *testing.T) {
	seen := make(map[int]bool)
	rep := mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		if c.Size() != 4 {
			t.Errorf("Size = %d, want 4", c.Size())
		}
		seen[c.Rank()] = true
		c.Compute(5 * sim.Microsecond)
		if c.Wtime() < 4e-6 {
			t.Errorf("Wtime = %g, want ≥ 5us", c.Wtime())
		}
	})
	if len(seen) != 4 {
		t.Errorf("ranks seen: %v", seen)
	}
	if rep.Elapsed < 5*sim.Microsecond {
		t.Errorf("Elapsed = %v", rep.Elapsed)
	}
	if len(rep.RankStats) != 4 || len(rep.BodyEnd) != 4 {
		t.Error("report shape wrong")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Ports: 5}, func(*Comm) {}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	mustRun(t, cfg(2, 1, 2, core.EPC), func(c *Comm) {
		msg := []byte("ping")
		if c.Rank() == 0 {
			c.Send(1, 1, msg)
			buf := make([]byte, 4)
			st := c.Recv(1, 2, buf)
			if string(buf) != "pong" || st.Source != 1 || st.Tag != 2 {
				t.Errorf("got %q st %+v", buf, st)
			}
		} else {
			buf := make([]byte, 4)
			c.Recv(0, 1, buf)
			if string(buf) != "ping" {
				t.Errorf("got %q", buf)
			}
			c.Send(0, 2, []byte("pong"))
		}
	})
}

func TestIsendIrecvWindow(t *testing.T) {
	const window = 16
	mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < window; i++ {
				reqs = append(reqs, c.IsendN(1, i, nil, 2048))
			}
			c.Waitall(reqs)
		} else {
			var reqs []*Request
			for i := 0; i < window; i++ {
				reqs = append(reqs, c.IrecvN(0, i, nil, 2048))
			}
			c.Waitall(reqs)
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		peer := 1 - c.Rank()
		out := []byte{byte(c.Rank())}
		in := make([]byte, 1)
		st := c.Sendrecv(peer, 0, out, peer, 0, in)
		if in[0] != byte(peer) || st.Source != peer {
			t.Errorf("rank %d: in=%v st=%+v", c.Rank(), in, st)
		}
	})
}

func TestBarrierSynchronises(t *testing.T) {
	var after [4]sim.Time
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		// Rank 0 arrives late; everyone leaves after it arrives.
		if c.Rank() == 0 {
			c.Compute(1 * sim.Millisecond)
		}
		c.Barrier()
		after[c.Rank()] = c.Time()
	})
	for r, tm := range after {
		if tm < 1*sim.Millisecond {
			t.Errorf("rank %d left the barrier at %v, before rank 0 arrived", r, tm)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, nranks := range []struct{ nodes, ppn int }{{2, 1}, {2, 2}, {3, 1}} {
		for _, n := range []int{1, 1024, 64 * 1024} {
			for root := 0; root < nranks.nodes*nranks.ppn; root++ {
				root, n := root, n
				mustRun(t, cfg(nranks.nodes, nranks.ppn, 2, core.EPC), func(c *Comm) {
					buf := make([]byte, n)
					if c.Rank() == root {
						for i := range buf {
							buf[i] = byte(root + i)
						}
					}
					c.Bcast(root, buf)
					for i := range buf {
						if buf[i] != byte(root+i) {
							t.Fatalf("rank %d: bcast(root=%d,n=%d) corrupted at %d", c.Rank(), root, n, i)
						}
					}
				})
			}
		}
	}
}

func TestAllreduceInt64AllOps(t *testing.T) {
	// 6 ranks exercises the non-power-of-two fold.
	mustRun(t, cfg(3, 2, 1, core.Original), func(c *Comm) {
		r := int64(c.Rank())
		sum := []int64{r, 10 * r}
		c.AllreduceInt64(sum, Sum)
		if sum[0] != 15 || sum[1] != 150 { // 0+1+..+5
			t.Errorf("rank %d: sum = %v", c.Rank(), sum)
		}
		mx := []int64{r}
		c.AllreduceInt64(mx, Max)
		if mx[0] != 5 {
			t.Errorf("max = %v", mx)
		}
		mn := []int64{r}
		c.AllreduceInt64(mn, Min)
		if mn[0] != 0 {
			t.Errorf("min = %v", mn)
		}
	})
}

func TestAllreduceFloat64(t *testing.T) {
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		v := []float64{float64(c.Rank()) + 0.5}
		c.AllreduceFloat64(v, Sum)
		if v[0] != 8 { // 0.5+1.5+2.5+3.5
			t.Errorf("sum = %v", v)
		}
		w := []float64{float64(c.Rank())}
		c.AllreduceFloat64(w, Max)
		if w[0] != 3 {
			t.Errorf("max = %v", w)
		}
	})
}

func TestReduceToEachRoot(t *testing.T) {
	for root := 0; root < 4; root++ {
		root := root
		mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
			v := []int64{int64(c.Rank() + 1)}
			c.ReduceInt64(root, v, Sum)
			if c.Rank() == root && v[0] != 10 {
				t.Errorf("root %d: sum = %d, want 10", root, v[0])
			}
			f := []float64{float64(c.Rank())}
			c.ReduceFloat64(root, f, Min)
			if c.Rank() == root && f[0] != 0 {
				t.Errorf("root %d: min = %g", root, f[0])
			}
		})
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 256
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		p, rank := c.Size(), c.Rank()
		// Gather: rank r contributes a block of r's.
		send := bytes.Repeat([]byte{byte(rank + 1)}, n)
		var recv []byte
		if rank == 2 {
			recv = make([]byte, p*n)
		}
		c.Gather(2, send, n, recv)
		if rank == 2 {
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					if recv[r*n+i] != byte(r+1) {
						t.Fatalf("gather block %d wrong", r)
					}
				}
			}
		}
		// Scatter back out from rank 1.
		var src []byte
		if rank == 1 {
			src = make([]byte, p*n)
			for r := 0; r < p; r++ {
				copy(src[r*n:(r+1)*n], bytes.Repeat([]byte{byte(0x40 + r)}, n))
			}
		}
		got := make([]byte, n)
		c.Scatter(1, src, n, got)
		for i := 0; i < n; i++ {
			if got[i] != byte(0x40+rank) {
				t.Fatalf("scatter rank %d wrong at %d: %x", rank, i, got[i])
			}
		}
	})
}

func TestAllgatherRing(t *testing.T) {
	const n = 512
	for _, shape := range []struct{ nodes, ppn int }{{2, 2}, {3, 1}, {5, 1}} {
		shape := shape
		mustRun(t, cfg(shape.nodes, shape.ppn, 2, core.EPC), func(c *Comm) {
			p, rank := c.Size(), c.Rank()
			send := bytes.Repeat([]byte{byte(rank * 3)}, n)
			recv := make([]byte, p*n)
			c.Allgather(send, n, recv)
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					if recv[r*n+i] != byte(r*3) {
						t.Fatalf("p=%d rank %d: allgather block %d wrong", p, rank, r)
					}
				}
			}
		})
	}
}

// alltoallPattern fills rank r's block to peer d with a value derived from
// (r, d) so the transpose property is checkable.
func alltoallValue(src, dst int) byte { return byte(17*src + 3*dst + 1) }

func TestAlltoallTranspose(t *testing.T) {
	const n = 128
	for _, shape := range []struct{ nodes, ppn int }{{2, 1}, {2, 4}, {3, 1}} {
		shape := shape
		mustRun(t, cfg(shape.nodes, shape.ppn, 4, core.EPC), func(c *Comm) {
			p, rank := c.Size(), c.Rank()
			send := make([]byte, p*n)
			for d := 0; d < p; d++ {
				copy(send[d*n:(d+1)*n], bytes.Repeat([]byte{alltoallValue(rank, d)}, n))
			}
			recv := make([]byte, p*n)
			c.Alltoall(send, n, recv)
			for s := 0; s < p; s++ {
				want := alltoallValue(s, rank)
				for i := 0; i < n; i++ {
					if recv[s*n+i] != want {
						t.Fatalf("rank %d: block from %d has %x, want %x", rank, s, recv[s*n+i], want)
					}
				}
			}
		})
	}
}

func TestAlltoallvVariableCounts(t *testing.T) {
	mustRun(t, cfg(2, 2, 2, core.EPC), func(c *Comm) {
		p, rank := c.Size(), c.Rank()
		// Rank r sends (d+1)*100 bytes to each peer d.
		scounts := make([]int, p)
		sdispls := make([]int, p)
		total := 0
		for d := 0; d < p; d++ {
			scounts[d] = (d + 1) * 100
			sdispls[d] = total
			total += scounts[d]
		}
		send := make([]byte, total)
		for d := 0; d < p; d++ {
			copy(send[sdispls[d]:sdispls[d]+scounts[d]], bytes.Repeat([]byte{alltoallValue(rank, d)}, scounts[d]))
		}
		// Everyone receives (rank+1)*100 from each source.
		rcounts := make([]int, p)
		rdispls := make([]int, p)
		rtotal := 0
		for s := 0; s < p; s++ {
			rcounts[s] = (rank + 1) * 100
			rdispls[s] = rtotal
			rtotal += rcounts[s]
		}
		recv := make([]byte, rtotal)
		c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls)
		for s := 0; s < p; s++ {
			want := alltoallValue(s, rank)
			for i := 0; i < rcounts[s]; i++ {
				if recv[rdispls[s]+i] != want {
					t.Fatalf("rank %d: from %d got %x, want %x", rank, s, recv[rdispls[s]+i], want)
				}
			}
		}
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const n = 64
	mustRun(t, cfg(2, 2, 1, core.Original), func(c *Comm) {
		p, rank := c.Size(), c.Rank()
		buf := make([]byte, p*n)
		for i := range buf {
			buf[i] = 1 // every rank contributes 1s; sum = p
		}
		recv := make([]byte, n)
		c.ReduceScatterBlock(buf, n, recv, func(dst, src []byte) {
			for i := range dst {
				dst[i] += src[i]
			}
		})
		for i := 0; i < n; i++ {
			if recv[i] != byte(p) {
				t.Fatalf("rank %d: recv[%d] = %d, want %d", rank, i, recv[i], p)
			}
		}
	})
}

func TestCollectiveMarkerStripes(t *testing.T) {
	// A large Alltoall under EPC must stripe its transfers (collective →
	// striping) even though every call is non-blocking.
	const n = 64 * 1024
	rep := mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
		c.Alltoall(nil, n, nil)
	})
	s := rep.RankStats[0]
	if s.RendezvousSent < 1 {
		t.Fatalf("stats = %+v: expected rendezvous traffic", s)
	}
	if s.StripesSent < 4*s.RendezvousSent {
		t.Errorf("StripesSent = %d for %d rendezvous: collective traffic did not stripe", s.StripesSent, s.RendezvousSent)
	}
}

func TestNonBlockingDoesNotStripeUnderEPC(t *testing.T) {
	const n = 64 * 1024
	rep := mustRun(t, cfg(2, 1, 4, core.EPC), func(c *Comm) {
		if c.Rank() == 0 {
			c.Wait(c.IsendN(1, 0, nil, n))
		} else {
			c.Wait(c.IrecvN(0, 0, nil, n))
		}
	})
	s := rep.RankStats[0]
	if s.RendezvousSent != 1 || s.StripesSent != 1 {
		t.Errorf("stats = %+v: EPC must not stripe non-blocking pt2pt", s)
	}
}

func TestIprobeAndProgress(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []byte{1, 2, 3})
		} else {
			c.Compute(200 * sim.Microsecond)
			c.Progress()
			ok, st := c.Iprobe(0, 9)
			if !ok || st.Count != 3 {
				t.Errorf("Iprobe = %v %+v", ok, st)
			}
			buf := make([]byte, 3)
			c.Recv(0, 9, buf)
		}
	})
}

func TestDeterministicElapsed(t *testing.T) {
	runOnce := func() sim.Time {
		rep := mustRun(t, cfg(2, 4, 4, core.EPC), func(c *Comm) {
			c.Alltoall(nil, 32*1024, nil)
			v := []int64{int64(c.Rank())}
			c.AllreduceInt64(v, Sum)
		})
		return rep.Elapsed
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("elapsed differs: %v vs %v", a, b)
	}
}

func TestSendToSelf(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		// Recv posted first, send matches it.
		buf := make([]byte, 8)
		r := c.Irecv(c.Rank(), 5, buf)
		c.Send(c.Rank(), 5, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		st := c.Wait(r)
		if st.Source != c.Rank() || st.Count != 8 || buf[7] != 8 {
			t.Errorf("self recv: st=%+v buf=%v", st, buf)
		}
		// Send first (buffered), recv later.
		c.SendN(c.Rank(), 6, []byte{42}, 1)
		got := make([]byte, 1)
		c.Recv(c.Rank(), 6, got)
		if got[0] != 42 {
			t.Errorf("buffered self send lost: %v", got)
		}
		// Large self-send is buffered too (self device semantics).
		big := make([]byte, 64*1024)
		big[100] = 9
		c.Send(c.Rank(), 7, big)
		got2 := make([]byte, 64*1024)
		c.Recv(c.Rank(), 7, got2)
		if got2[100] != 9 {
			t.Error("large self send corrupted")
		}
	})
}

func TestProbeBlocks(t *testing.T) {
	mustRun(t, cfg(2, 1, 1, core.Original), func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(50 * sim.Microsecond)
			c.Send(1, 9, []byte{1, 2, 3})
		} else {
			st := c.Probe(0, 9)
			if st.Count != 3 || st.Source != 0 {
				t.Errorf("Probe status = %+v", st)
			}
			// The message is still there to receive.
			buf := make([]byte, 3)
			c.Recv(0, 9, buf)
			if buf[2] != 3 {
				t.Error("payload consumed by Probe")
			}
		}
	})
}
