package mpi

import (
	"fmt"

	"ib12x/internal/core"
)

// Collective operations built on point-to-point transfers, following the
// classic MPICH algorithms (binomial trees, recursive doubling, ring,
// pairwise exchange). Every internal transfer is posted non-blocking with
// the Collective class and the collective context, so the ADI communication
// marker sees exactly what the paper's §3.2.2 describes: non-blocking calls
// that nonetheless deserve striping.

// csend posts a collective-class send (ranks are communicator-local).
func (c *Comm) csend(dst, tag int, data []byte, n int) *Request {
	return c.ep.PostSend(c.world(dst), tag, c.ctxColl, core.Collective, data, n)
}

// crecv posts a collective-context receive (ranks communicator-local).
func (c *Comm) crecv(src, tag int, buf []byte, n int) *Request {
	return c.ep.PostRecv(c.world(src), tag, c.ctxColl, buf, n)
}

// csendrecv is the Sendrecv step of collective algorithms.
func (c *Comm) csendrecv(dst, tag int, sdata []byte, sn, src int, rbuf []byte, rn int) {
	rreq := c.crecv(src, tag, rbuf, rn)
	sreq := c.csend(dst, tag, sdata, sn)
	c.ep.Wait(sreq)
	c.ep.Wait(rreq)
	sreq.Release()
	rreq.Release()
}

// cwait waits on an internal collective request and recycles it. Collective
// algorithms never hand their requests to the caller, so the release is safe.
func (c *Comm) cwait(req *Request) {
	c.ep.Wait(req)
	req.Release()
}

// cwaitAll waits on a batch of internal collective requests and recycles them.
func (c *Comm) cwaitAll(reqs []*Request) {
	c.ep.WaitAll(reqs)
	for _, r := range reqs {
		r.Release()
	}
}

// Barrier blocks until all ranks arrive (dissemination algorithm).
func (c *Comm) Barrier() {
	p := c.size
	if p == 1 {
		return
	}
	tag := c.nextCollTag()
	for mask := 1; mask < p; mask <<= 1 {
		dst := (c.Rank() + mask) % p
		src := (c.Rank() - mask + p) % p
		c.csendrecv(dst, tag, nil, 0, src, nil, 0)
	}
}

// Bcast broadcasts root's n = len(buf) bytes to all ranks (binomial tree).
// buf may be nil with BcastN for synthetic payloads.
func (c *Comm) Bcast(root int, buf []byte) { c.BcastN(root, buf, len(buf)) }

// BcastN broadcasts n bytes from root using an optional buffer.
func (c *Comm) BcastN(root int, buf []byte, n int) {
	p := c.size
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range", root))
	}
	if segs, ok := c.laneActive(n); ok {
		c.laneBcast(root, buf, n, segs)
		return
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	relative := (rank - root + p) % p

	mask := 1
	for mask < p {
		if relative&mask != 0 {
			src := rank - mask
			if src < 0 {
				src += p
			}
			c.cwait(c.crecv(src, tag, buf, n))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < p {
			dst := rank + mask
			if dst >= p {
				dst -= p
			}
			c.cwait(c.csend(dst, tag, buf, n))
		}
		mask >>= 1
	}
}

// reduceBytes reduces byte buffers to root with combine(dst, src) applied
// element-wise by the caller's convention (binomial tree). buf is both
// input and, on root, output. tmp must be a scratch buffer of equal size.
func (c *Comm) reduceBytes(root, tag int, buf, tmp []byte, combine func(dst, src []byte)) {
	p := c.size
	if p == 1 {
		return
	}
	rank := c.Rank()
	relative := (rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if relative&mask == 0 {
			src := relative | mask
			if src < p {
				srcRank := (src + root) % p
				c.cwait(c.crecv(srcRank, tag, tmp, len(tmp)))
				combine(buf, tmp)
			}
		} else {
			dst := ((relative &^ mask) + root) % p
			c.cwait(c.csend(dst, tag, buf, len(buf)))
			break
		}
	}
}

// allreduceBytes runs recursive-doubling allreduce over byte buffers, with
// the MPICH pre/post fold for non-power-of-two sizes.
func (c *Comm) allreduceBytes(tag int, buf, tmp []byte, combine func(dst, src []byte)) {
	p := c.size
	if p == 1 {
		return
	}
	rank := c.Rank()
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2

	newrank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		c.cwait(c.csend(rank+1, tag, buf, len(buf)))
	case rank < 2*rem:
		c.cwait(c.crecv(rank-1, tag, tmp, len(tmp)))
		combine(buf, tmp)
		newrank = rank / 2
	default:
		newrank = rank - rem
	}

	if newrank != -1 {
		for mask := 1; mask < pof2; mask <<= 1 {
			newdst := newrank ^ mask
			dst := newdst + rem
			if newdst < rem {
				dst = newdst*2 + 1
			}
			c.csendrecv(dst, tag, buf, len(buf), dst, tmp, len(tmp))
			combine(buf, tmp)
		}
	}

	if rank < 2*rem {
		if rank%2 != 0 {
			c.cwait(c.csend(rank-1, tag, buf, len(buf)))
		} else {
			c.cwait(c.crecv(rank+1, tag, buf, len(buf)))
		}
	}
}

// Gather collects n-byte blocks from every rank into recv at root, laid out
// by rank. recv is only read at root and must hold Size()*n bytes there.
func (c *Comm) Gather(root int, send []byte, n int, recv []byte) {
	p := c.size
	tag := c.nextCollTag()
	rank := c.Rank()
	if rank == root {
		if recv != nil && send != nil {
			copy(recv[rank*n:(rank+1)*n], send[:n])
		}
		reqs := make([]*Request, 0, p-1)
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			var dst []byte
			if recv != nil {
				dst = recv[r*n : (r+1)*n]
			}
			reqs = append(reqs, c.crecv(r, tag, dst, n))
		}
		c.cwaitAll(reqs)
		return
	}
	c.cwait(c.csend(root, tag, send, n))
}

// Scatter distributes n-byte blocks from send (read at root, laid out by
// rank) into each rank's recv.
func (c *Comm) Scatter(root int, send []byte, n int, recv []byte) {
	p := c.size
	tag := c.nextCollTag()
	rank := c.Rank()
	if rank == root {
		reqs := make([]*Request, 0, p-1)
		for r := 0; r < p; r++ {
			var blk []byte
			if send != nil {
				blk = send[r*n : (r+1)*n]
			}
			if r == root {
				if recv != nil && blk != nil {
					copy(recv[:n], blk)
				}
				continue
			}
			reqs = append(reqs, c.csend(r, tag, blk, n))
		}
		c.cwaitAll(reqs)
		return
	}
	c.cwait(c.crecv(root, tag, recv, n))
}

// Allgather collects every rank's n-byte block into recv on all ranks
// (ring algorithm). send may alias recv[rank*n:].
func (c *Comm) Allgather(send []byte, n int, recv []byte) {
	p := c.size
	if segs, ok := c.laneActive(n); ok {
		c.laneAllgather(send, n, recv, segs)
		return
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	if recv != nil && send != nil {
		copy(recv[rank*n:(rank+1)*n], send[:n])
	}
	if p == 1 {
		return
	}
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	for i := 0; i < p-1; i++ {
		sb := (rank - i + p) % p
		rb := (rank - i - 1 + p) % p
		var sbuf, rbuf []byte
		if recv != nil {
			sbuf, rbuf = recv[sb*n:(sb+1)*n], recv[rb*n:(rb+1)*n]
		}
		c.csendrecv(right, tag, sbuf, n, left, rbuf, n)
	}
}

// Alltoall exchanges n-byte blocks between all rank pairs using the
// classic cyclic pairwise-exchange algorithm of the MPICH-1 lineage that
// MVAPICH descends from (the structure the paper's §3.2.2 analyses): p-1
// steps; at step i each rank Sendrecvs with rank+i / rank-i.
func (c *Comm) Alltoall(send []byte, n int, recv []byte) {
	p := c.size
	tag := c.nextCollTag()
	rank := c.Rank()
	if recv != nil && send != nil {
		copy(recv[rank*n:(rank+1)*n], send[rank*n:(rank+1)*n])
	}
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		src := (rank - i + p) % p
		var sbuf, rbuf []byte
		if send != nil {
			sbuf = send[dst*n : (dst+1)*n]
		}
		if recv != nil {
			rbuf = recv[src*n : (src+1)*n]
		}
		c.csendrecv(dst, tag, sbuf, n, src, rbuf, n)
	}
}

// Alltoallv exchanges variable-size blocks. scounts/rcounts give per-peer
// byte counts; sdispls/rdispls the block offsets in send/recv.
func (c *Comm) Alltoallv(send []byte, scounts, sdispls []int, recv []byte, rcounts, rdispls []int) {
	p := c.size
	if len(scounts) != p || len(rcounts) != p || len(sdispls) != p || len(rdispls) != p {
		panic("mpi: Alltoallv count/displacement slices must have one entry per rank")
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	if recv != nil && send != nil && scounts[rank] > 0 {
		copy(recv[rdispls[rank]:rdispls[rank]+rcounts[rank]], send[sdispls[rank]:sdispls[rank]+scounts[rank]])
	}
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		src := (rank - i + p) % p
		var sbuf, rbuf []byte
		if send != nil {
			sbuf = send[sdispls[dst] : sdispls[dst]+scounts[dst]]
		}
		if recv != nil {
			rbuf = recv[rdispls[src] : rdispls[src]+rcounts[src]]
		}
		c.csendrecv(dst, tag, sbuf, scounts[dst], src, rbuf, rcounts[src])
	}
}

// ReduceScatterBlock reduces Size()*n bytes element-wise and leaves block
// `rank` of the result in recv on each rank (reduce + scatter).
func (c *Comm) ReduceScatterBlock(buf []byte, n int, recv []byte, combine func(dst, src []byte)) {
	tag := c.nextCollTag()
	tmp := make([]byte, len(buf))
	c.reduceBytes(0, tag, buf, tmp, combine)
	if c.Rank() == 0 {
		c.Scatter(0, buf, n, recv)
	} else {
		c.Scatter(0, nil, n, recv)
	}
}
