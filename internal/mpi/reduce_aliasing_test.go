package mpi

import (
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/model"
)

// Aliasing contract of the reduction scratch buffer. reduceBytes and
// allreduceBytes reuse one scratch `tmp` across every round while `buf`
// is repeatedly exposed zero-copy to the transport (a rendezvous send
// wraps the caller's buffer until the peer confirms placement). The
// contract that keeps the shared scratch safe, pinned here with
// rendezvous-size payloads on every policy and both rendezvous protocols:
//
//   1. every send of buf is waited before buf is next combined into or
//      overwritten (binomial rounds cwait each send; csendrecv waits both
//      sides; the lane ring waits the full step before combining), so no
//      in-flight view of buf ever observes a combine;
//   2. every receive into tmp is waited before combine(buf, tmp) reads
//      it, and the next round's receive cannot land early because
//      same-(src,ctx) sequencing forbids overtaking and round partners
//      are distinct;
//   3. combine(dst, src) is always called with dst=buf, src=tmp — two
//      distinct allocations, never overlapping slices.
//
// The audit of coll.go against these rules found no violation; these
// tests fail loudly if a future round restructuring introduces one (a
// scratch raced by a live view shows up as a wrong reduction value, an
// unreleased view as BufLive > 0).

// TestReduceScratchContract drives rendezvous-size reductions (vector
// well above RendezvousThreshold so every round's send is a zero-copy
// wrapped buffer) across policies, world sizes including the non-pof2
// pre/post fold, both rendezvous protocols, and both algorithm families.
func TestReduceScratchContract(t *testing.T) {
	elems := model.Default().RendezvousThreshold / 2 // 8K elems = 64KB buffers
	policies := []core.Kind{core.Original, core.Binding, core.RoundRobin, core.EvenStriping, core.EPC, core.Adaptive}
	shapes := [][2]int{{2, 2}, {3, 1}, {2, 3}} // p = 4, 3 (non-pof2), 6 (non-pof2)
	for _, alg := range []CollAlg{CollStriped, CollLane} {
		for _, rndv := range []adi.RndvProto{adi.RndvWrite, adi.RndvRead} {
			for _, pk := range policies {
				for _, shape := range shapes {
					p := shape[0] * shape[1]
					c := cfg(shape[0], shape[1], 4, pk)
					c.CollAlg = alg
					c.Rndv = rndv
					c.BufAudit = true
					// Per-rank inputs chosen so every element of the result
					// depends on every rank: sum of distinct powers.
					wantSum := int64(0)
					for r := 0; r < p; r++ {
						wantSum += int64(1) << (4 * r)
					}
					rep := mustRun(t, c, func(cm *Comm) {
						v := make([]int64, elems)
						for i := range v {
							v[i] = int64(1) << (4 * cm.Rank())
						}
						cm.AllreduceInt64(v, Sum)
						for i := range v {
							if v[i] != wantSum {
								t.Errorf("alg=%v rndv=%v policy=%v p=%d rank=%d: allreduce[%d] = %#x, want %#x (scratch aliasing?)",
									alg, rndv, pk, p, cm.Rank(), i, v[i], wantSum)
								return
							}
						}
						w := make([]int64, elems)
						for i := range w {
							w[i] = int64(1) << (4 * cm.Rank())
						}
						cm.ReduceInt64(0, w, Sum)
						if cm.Rank() == 0 {
							for i := range w {
								if w[i] != wantSum {
									t.Errorf("alg=%v rndv=%v policy=%v p=%d: reduce[%d] = %#x, want %#x (scratch aliasing?)",
										alg, rndv, pk, p, i, w[i], wantSum)
									return
								}
							}
						}
					})
					if live := rep.World.BufLive(); live != 0 {
						t.Errorf("alg=%v rndv=%v policy=%v p=%d: %d payload views live after quiesce:\n%s",
							alg, rndv, pk, p, live, rep.World.BufLiveReport())
					}
				}
			}
		}
	}
}

// TestReduceScratchNoOverlap asserts rule 3 directly, without pointer
// arithmetic: inside the combine the test scribbles over dst and checks
// src is unaffected — any dst/src overlap (buf aliasing the scratch)
// would corrupt src and fail the comparison. Runs at rendezvous size so
// the rounds exercise the zero-copy wrapped-buffer path.
func TestReduceScratchNoOverlap(t *testing.T) {
	c := cfg(2, 2, 4, core.EvenStriping)
	n := model.Default().RendezvousThreshold * 2
	mustRun(t, c, func(cm *Comm) {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(cm.Rank() + 1)
		}
		cm.AllreduceBytes(buf, func(dst, src []byte) {
			before := append([]byte(nil), src...)
			for i := range dst {
				dst[i] ^= 0xFF
			}
			for i := range src {
				if src[i] != before[i] {
					t.Errorf("combine dst aliases src at byte %d: scratch overlaps the reduction buffer", i)
					break
				}
			}
			for i := range dst {
				dst[i] ^= 0xFF // restore, then combine
				if i < len(src) {
					dst[i] += src[i]
				}
			}
		})
		want := byte(0)
		for r := 0; r < cm.Size(); r++ {
			want += byte(r + 1)
		}
		for i, b := range buf {
			if b != want {
				t.Errorf("rank %d: allreduce byte %d = %d, want %d", cm.Rank(), i, b, want)
				break
			}
		}
	})
}
