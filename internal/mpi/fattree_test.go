package mpi

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/sim"
)

// Fat-tree fabric behaviour through the full MPI stack.

func fatCfg(nodes, perLeaf int, trunk float64) Config {
	c := cfg(nodes, 1, 4, core.EPC)
	c.NodesPerSwitch = perLeaf
	c.TrunkRate = trunk
	return c
}

func TestFatTreeSameLeafMatchesSingleSwitch(t *testing.T) {
	lat := func(c Config) sim.Time {
		var el sim.Time
		mustRun(t, c, func(cm *Comm) {
			// Ranks 0 and 1 are on nodes 0 and 1: same leaf with perLeaf=2.
			if cm.Rank() == 0 {
				t0 := cm.Time()
				for i := 0; i < 10; i++ {
					cm.SendN(1, 0, nil, 4096)
					cm.RecvN(1, 0, nil, 4096)
				}
				el = cm.Time() - t0
			} else if cm.Rank() == 1 {
				for i := 0; i < 10; i++ {
					cm.RecvN(0, 0, nil, 4096)
					cm.SendN(0, 0, nil, 4096)
				}
			}
		})
		return el
	}
	flat := lat(cfg(2, 1, 4, core.EPC))
	tree := lat(fatCfg(2, 2, 0))
	if flat != tree {
		t.Errorf("same-leaf traffic must not pay spine hops: flat %v vs tree %v", flat, tree)
	}
}

func TestFatTreeCrossLeafAddsHops(t *testing.T) {
	lat := func(c Config, peer int) sim.Time {
		var el sim.Time
		mustRun(t, c, func(cm *Comm) {
			if cm.Rank() == 0 {
				t0 := cm.Time()
				for i := 0; i < 10; i++ {
					cm.SendN(peer, 0, nil, 64)
					cm.RecvN(peer, 0, nil, 64)
				}
				el = cm.Time() - t0
			} else if cm.Rank() == peer {
				for i := 0; i < 10; i++ {
					cm.RecvN(0, 0, nil, 64)
					cm.SendN(0, 0, nil, 64)
				}
			}
		})
		return el
	}
	same := lat(fatCfg(4, 2, 0), 1)  // leaf 0 ↔ leaf 0
	cross := lat(fatCfg(4, 2, 0), 2) // leaf 0 ↔ leaf 1
	// Each one-way crossing adds two hops of wire latency.
	minExtra := sim.Time(10) * 2 * 2 * (600 * sim.Nanosecond) * 9 / 10
	if cross-same < minExtra {
		t.Errorf("cross-leaf extra = %v, want ≥ ~%v", cross-same, minExtra)
	}
}

func TestFatTreeOversubscriptionThrottles(t *testing.T) {
	// 4 nodes per leaf all streaming cross-leaf: a 1:1 trunk carries one
	// link's worth; a quarter-rate trunk cuts aggregate ~4x.
	run := func(trunk float64) sim.Time {
		c := fatCfg(8, 4, trunk)
		var worst sim.Time
		mustRun(t, c, func(cm *Comm) {
			peer := (cm.Rank() + 4) % 8 // every pair crosses the spine
			var reqs []*Request
			if cm.Rank() < 4 {
				for i := 0; i < 4; i++ {
					reqs = append(reqs, cm.IsendN(peer, i, nil, 1<<20))
				}
			} else {
				for i := 0; i < 4; i++ {
					reqs = append(reqs, cm.IrecvN(peer, i, nil, 1<<20))
				}
			}
			cm.Waitall(reqs)
			el := []int64{int64(cm.Time())}
			cm.AllreduceInt64(el, Max)
			if cm.Rank() == 0 {
				worst = sim.Time(el[0])
			}
		})
		return worst
	}
	full := run(0)       // 1:1 per-leaf trunk (3 GB/s)
	quarter := run(75e7) // 4:1 oversubscription
	if quarter < 3*full {
		t.Errorf("4:1 oversubscription: %v not ≳ 3x the 1:1 time %v", quarter, full)
	}
}

func TestFatTreeCollectivesCorrect(t *testing.T) {
	c := fatCfg(8, 2, 1e9)
	mustRun(t, c, func(cm *Comm) {
		v := []int64{int64(cm.Rank())}
		cm.AllreduceInt64(v, Sum)
		if v[0] != 28 {
			t.Errorf("allreduce over the tree = %d, want 28", v[0])
		}
		buf := make([]byte, 32*1024)
		if cm.Rank() == 3 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		cm.Bcast(3, buf)
		for i := range buf {
			if buf[i] != byte(i) {
				t.Fatalf("bcast over the tree corrupted at %d", i)
			}
		}
	})
}
