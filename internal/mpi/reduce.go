package mpi

import (
	"encoding/binary"
	"math"
)

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

// combinerInt64 returns an element-wise combine over little-endian int64s.
func combinerInt64(op Op) func(dst, src []byte) {
	return func(dst, src []byte) {
		for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
			a := int64(binary.LittleEndian.Uint64(dst[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			var r int64
			switch op {
			case Sum:
				r = a + b
			case Max:
				r = a
				if b > a {
					r = b
				}
			case Min:
				r = a
				if b < a {
					r = b
				}
			}
			binary.LittleEndian.PutUint64(dst[i:], uint64(r))
		}
	}
}

// combinerFloat64 returns an element-wise combine over little-endian
// float64s.
func combinerFloat64(op Op) func(dst, src []byte) {
	return func(dst, src []byte) {
		for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			var r float64
			switch op {
			case Sum:
				r = a + b
			case Max:
				r = math.Max(a, b)
			case Min:
				r = math.Min(a, b)
			}
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(r))
		}
	}
}

func int64sToBytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func bytesToInt64s(b []byte, v []int64) {
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

func float64sToBytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func bytesToFloat64s(b []byte, v []float64) {
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// allreduceDispatch routes a typed allreduce to the lane-decomposed or
// reference algorithm. The typed entry points guarantee 8-byte element
// granularity, which the lane partition's aligned pieces rely on; raw
// AllreduceBytes (opaque combine) always stays on the reference path.
func (c *Comm) allreduceDispatch(b, tmp []byte, combine func(dst, src []byte)) {
	if segs, ok := c.laneActive(len(b)); ok {
		c.laneAllreduce(b, tmp, combine, segs)
		return
	}
	c.allreduceBytes(c.nextCollTag(), b, tmp, combine)
}

// reduceDispatch is allreduceDispatch for rooted reductions.
func (c *Comm) reduceDispatch(root int, b, tmp []byte, combine func(dst, src []byte)) {
	if segs, ok := c.laneActive(len(b)); ok {
		c.laneReduce(root, b, tmp, combine, segs)
		return
	}
	c.reduceBytes(root, c.nextCollTag(), b, tmp, combine)
}

// AllreduceInt64 reduces buf element-wise across all ranks, in place.
func (c *Comm) AllreduceInt64(buf []int64, op Op) {
	b := int64sToBytes(buf)
	tmp := make([]byte, len(b))
	c.allreduceDispatch(b, tmp, combinerInt64(op))
	bytesToInt64s(b, buf)
}

// AllreduceFloat64 reduces buf element-wise across all ranks, in place.
func (c *Comm) AllreduceFloat64(buf []float64, op Op) {
	b := float64sToBytes(buf)
	tmp := make([]byte, len(b))
	c.allreduceDispatch(b, tmp, combinerFloat64(op))
	bytesToFloat64s(b, buf)
}

// ReduceInt64 reduces buf element-wise to root; buf holds the result only
// at root (other ranks' buffers are clobbered with partial results, as in
// MPI where the send buffer is input-only).
func (c *Comm) ReduceInt64(root int, buf []int64, op Op) {
	b := int64sToBytes(buf)
	tmp := make([]byte, len(b))
	c.reduceDispatch(root, b, tmp, combinerInt64(op))
	if c.Rank() == root {
		bytesToInt64s(b, buf)
	}
}

// ReduceFloat64 reduces buf element-wise to root (result valid at root).
func (c *Comm) ReduceFloat64(root int, buf []float64, op Op) {
	b := float64sToBytes(buf)
	tmp := make([]byte, len(b))
	c.reduceDispatch(root, b, tmp, combinerFloat64(op))
	if c.Rank() == root {
		bytesToFloat64s(b, buf)
	}
}

// AllreduceBytes reduces a raw byte buffer with a caller-supplied combine.
func (c *Comm) AllreduceBytes(buf []byte, combine func(dst, src []byte)) {
	tag := c.nextCollTag()
	tmp := make([]byte, len(buf))
	c.allreduceBytes(tag, buf, tmp, combine)
}
