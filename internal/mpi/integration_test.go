package mpi

import (
	"bytes"
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
)

// Cross-feature integration: the extensions must compose.

func TestOneSidedOverFatTree(t *testing.T) {
	c := fatCfg(4, 2, 1e9)
	mustRun(t, c, func(cm *Comm) {
		buf := make([]byte, 64*1024)
		w := cm.WinCreate(buf, len(buf))
		w.Fence()
		if cm.Rank() == 0 {
			// Target rank 3 sits across the (slow) spine.
			w.PutN(3, 0, bytes.Repeat([]byte{0xEE}, 64*1024), 64*1024)
		}
		w.Fence()
		if cm.Rank() == 3 && buf[64*1024-1] != 0xEE {
			t.Error("cross-spine put missing")
		}
		if cm.Rank() == 1 {
			old := w.FetchAddInt64(2, 0, 7) // also cross-spine
			_ = old
		}
		w.Fence()
		w.Free()
	})
}

func TestRGETUnderFaults(t *testing.T) {
	c := cfg(2, 1, 4, core.EPC)
	c.Rndv = adi.RndvRead
	c.FaultEvery = 6
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	got := make([]byte, len(payload))
	mustRun(t, c, func(cm *Comm) {
		if cm.Rank() == 0 {
			cm.Send(1, 0, payload)
		} else {
			cm.Recv(0, 0, got)
		}
	})
	if !bytes.Equal(got, payload) {
		t.Error("RGET payload corrupted under faults")
	}
}

func TestAdaptivePolicyCollectives(t *testing.T) {
	// Adaptive has no marker; collectives must still be correct and not
	// pathologically slow.
	mustRun(t, cfg(2, 2, 4, core.Adaptive), func(cm *Comm) {
		v := []int64{int64(cm.Rank() + 1)}
		cm.AllreduceInt64(v, Sum)
		if v[0] != 10 {
			t.Errorf("allreduce = %d", v[0])
		}
		cm.Alltoall(nil, 32*1024, nil)
	})
}

func TestDatatypesOverSubCommunicator(t *testing.T) {
	mustRun(t, cfg(2, 2, 2, core.EPC), func(cm *Comm) {
		sub := cm.Split(cm.Rank()%2, cm.Rank())
		const rows = 8
		d := Vector(rows, 2, 6)
		buf := make([]byte, d.Extent())
		if sub.Rank() == 0 {
			for b := 0; b < rows; b++ {
				buf[b*6] = byte(b + 1)
				buf[b*6+1] = byte(b + 2)
			}
			sub.SendD(1, 0, buf, d)
		} else {
			sub.RecvD(0, 0, buf, d)
			for b := 0; b < rows; b++ {
				if buf[b*6] != byte(b+1) || buf[b*6+1] != byte(b+2) {
					t.Fatalf("block %d wrong", b)
				}
			}
		}
	})
}

func TestWindowsUnderFaultInjection(t *testing.T) {
	c := cfg(2, 1, 4, core.EPC)
	c.FaultEvery = 5
	mustRun(t, c, func(cm *Comm) {
		buf := make([]byte, 128*1024)
		w := cm.WinCreate(buf, len(buf))
		w.Fence()
		if cm.Rank() == 0 {
			w.Put(1, 0, bytes.Repeat([]byte{0xAB}, 128*1024))
			if old := w.FetchAddInt64(1, 0, 0); old == 0 {
				// Reading the first 8 bytes after the put is racy within
				// an epoch; just exercise the atomic path under faults.
				_ = old
			}
		}
		w.Fence()
		if cm.Rank() == 1 {
			for i := 0; i < len(buf); i += 4096 {
				if buf[i] != 0xAB {
					t.Fatalf("faulty put corrupted at %d", i)
				}
			}
		}
		w.Free()
	})
}

func TestScanOverFatTree(t *testing.T) {
	c := fatCfg(8, 2, 1e9)
	mustRun(t, c, func(cm *Comm) {
		v := []int64{1}
		cm.ScanInt64(v, Sum)
		if v[0] != int64(cm.Rank()+1) {
			t.Errorf("rank %d: scan = %d", cm.Rank(), v[0])
		}
	})
}
