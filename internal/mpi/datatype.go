package mpi

import "fmt"

// Datatype describes the memory layout of a message: either contiguous
// bytes or a strided vector (MPI_Type_vector over bytes). Non-contiguous
// sends are packed into a scratch buffer before transmission and unpacked
// on receipt, with the copy time charged to the rank — exactly what MVAPICH
// does for datatypes it cannot scatter/gather in hardware.
type Datatype struct {
	Count    int // number of blocks
	BlockLen int // bytes per block
	Stride   int // bytes between successive block starts (≥ BlockLen)
}

// Contiguous describes n contiguous bytes.
func Contiguous(n int) Datatype { return Datatype{Count: 1, BlockLen: n, Stride: n} }

// Vector describes count blocks of blockLen bytes placed stride apart
// (MPI_Type_vector with byte-granular oldtype).
func Vector(count, blockLen, stride int) Datatype {
	if count < 0 || blockLen < 0 || stride < blockLen {
		panic(fmt.Sprintf("mpi: invalid vector type (count=%d blocklen=%d stride=%d)", count, blockLen, stride))
	}
	return Datatype{Count: count, BlockLen: blockLen, Stride: stride}
}

// Size reports the number of data bytes the type carries.
func (d Datatype) Size() int { return d.Count * d.BlockLen }

// Extent reports the span of memory the type touches.
func (d Datatype) Extent() int {
	if d.Count == 0 {
		return 0
	}
	return (d.Count-1)*d.Stride + d.BlockLen
}

// Contig reports whether the layout is gap-free.
func (d Datatype) Contig() bool { return d.Count <= 1 || d.Stride == d.BlockLen }

// Pack gathers the typed data from buf into a contiguous slice.
func (d Datatype) Pack(buf []byte) []byte {
	if d.Contig() {
		return buf[:d.Size()]
	}
	out := make([]byte, d.Size())
	for b := 0; b < d.Count; b++ {
		copy(out[b*d.BlockLen:(b+1)*d.BlockLen], buf[b*d.Stride:b*d.Stride+d.BlockLen])
	}
	return out
}

// Unpack scatters packed contiguous data into buf per the layout.
func (d Datatype) Unpack(packed, buf []byte) {
	if d.Contig() {
		copy(buf[:d.Size()], packed[:d.Size()])
		return
	}
	for b := 0; b < d.Count; b++ {
		copy(buf[b*d.Stride:b*d.Stride+d.BlockLen], packed[b*d.BlockLen:(b+1)*d.BlockLen])
	}
}

// SendD performs a blocking send of typed data from buf.
func (c *Comm) SendD(dst, tag int, buf []byte, d Datatype) Status {
	packed := d.Pack(buf)
	if !d.Contig() {
		c.ep.ChargeCopy(d.Size())
	}
	return c.SendN(dst, tag, packed, d.Size())
}

// RecvD performs a blocking receive of typed data into buf.
func (c *Comm) RecvD(src, tag int, buf []byte, d Datatype) Status {
	if d.Contig() {
		return c.RecvN(src, tag, buf, d.Size())
	}
	scratch := make([]byte, d.Size())
	st := c.RecvN(src, tag, scratch, d.Size())
	d.Unpack(scratch, buf)
	c.ep.ChargeCopy(d.Size())
	return st
}

// IsendD starts a non-blocking typed send. The data is packed at post time
// (so buf may be reused once the request completes, as with any send).
func (c *Comm) IsendD(dst, tag int, buf []byte, d Datatype) *Request {
	packed := d.Pack(buf)
	if !d.Contig() {
		c.ep.ChargeCopy(d.Size())
	}
	return c.IsendN(dst, tag, packed, d.Size())
}

// SendrecvD exchanges typed data (the halo-exchange idiom: a strided face
// out, a strided face in).
func (c *Comm) SendrecvD(dst, stag int, sbuf []byte, sd Datatype, src, rtag int, rbuf []byte, rd Datatype) Status {
	spacked := sd.Pack(sbuf)
	if !sd.Contig() {
		c.ep.ChargeCopy(sd.Size())
	}
	if rd.Contig() {
		return c.SendrecvN(dst, stag, spacked, sd.Size(), src, rtag, rbuf[:rd.Size()], rd.Size())
	}
	scratch := make([]byte, rd.Size())
	st := c.SendrecvN(dst, stag, spacked, sd.Size(), src, rtag, scratch, rd.Size())
	rd.Unpack(scratch, rbuf)
	c.ep.ChargeCopy(rd.Size())
	return st
}
