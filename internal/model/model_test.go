package model

import (
	"testing"

	"ib12x/internal/sim"
)

func TestDefaultSanity(t *testing.T) {
	p := Default()
	if p.SendEnginesPerPort < 1 || p.RecvEnginesPerPort < 1 {
		t.Fatal("engine counts must be positive")
	}
	if p.EngineRate <= 0 || p.LinkRawRate <= 0 || p.GXRate <= 0 {
		t.Fatal("rates must be positive")
	}
	// The architecture invariants of the paper's testbed:
	// one engine alone cannot saturate the 12x link ...
	if p.EngineRate >= p.LinkRawRate {
		t.Error("a single engine must not saturate the link (otherwise multi-QP gains are impossible)")
	}
	// ... but all engines together exceed it ...
	if float64(p.SendEnginesPerPort)*p.EngineRate <= p.LinkRawRate {
		t.Error("all engines together must exceed the link (otherwise the link never binds)")
	}
	// ... and GX+ exceeds a single link but not two full-duplex ports.
	if p.GXRate <= p.LinkRawRate {
		t.Error("GX+ must exceed one link direction")
	}
	if p.RendezvousThreshold != 16*1024 {
		t.Errorf("rendezvous threshold = %d, want 16 KB (paper §3.3)", p.RendezvousThreshold)
	}
}

func TestLinkDataRate(t *testing.T) {
	p := Default()
	eff := p.LinkDataRate()
	if eff >= p.LinkRawRate {
		t.Errorf("effective rate %g must be below raw %g", eff, p.LinkRawRate)
	}
	// Calibration target: the multi-rail uni-directional peak is 2745 MB/s;
	// effective link rate must sit within a few percent of it.
	if eff < 2.70e9 || eff > 2.80e9 {
		t.Errorf("LinkDataRate = %.0f MB/s, want ~2745 MB/s", eff/1e6)
	}
}

func TestPacketMath(t *testing.T) {
	p := Default()
	cases := []struct {
		n    int
		want int
	}{
		{0, 1}, {1, 1}, {p.MTU, 1}, {p.MTU + 1, 2}, {10 * p.MTU, 10}, {10*p.MTU + 5, 11},
	}
	for _, c := range cases {
		if got := p.Packets(c.n); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPacketWireTime(t *testing.T) {
	p := Default()
	full := p.PacketWireTime(p.MTU)
	// A full packet at 3 GB/s: (2048+186)B / 3e9 B/s ≈ 745 ns.
	if full < 700*sim.Nanosecond || full > 800*sim.Nanosecond {
		t.Errorf("full packet wire time = %v, want ~745ns", full)
	}
	if p.PacketWireTime(0) >= full {
		t.Error("empty packet must be cheaper than a full one")
	}
	if p.AckWireTime() <= 0 || p.AckWireTime() >= p.PacketWireTime(0) {
		t.Errorf("ack wire time %v should be positive and below a header-only packet %v",
			p.AckWireTime(), p.PacketWireTime(0))
	}
}

func TestSingleEngineAsymptote(t *testing.T) {
	// Moving 1 MB through one engine must take roughly 1MB/EngineRate:
	// the calibration anchor for the 1661 MB/s single-rail peak lives in
	// the engine rate plus per-WQE overheads, so the raw rate alone must
	// be in the right neighbourhood.
	p := Default()
	tt := sim.TransferTime(1<<20, p.EngineRate)
	if tt < 550*sim.Microsecond || tt > 680*sim.Microsecond {
		t.Errorf("1MB engine time = %v, want ~620us", tt)
	}
}

func TestPCIe8xPreset(t *testing.T) {
	p := PCIe8x()
	d := Default()
	if p.LinkRawRate >= d.LinkRawRate {
		t.Error("8x link must be slower than 12x")
	}
	if p.SendEnginesPerPort != 2 || p.EngineRate >= d.EngineRate {
		t.Errorf("8x engines: %d x %.0f MB/s", p.SendEnginesPerPort, p.EngineRate/1e6)
	}
	// The PCIe bus is the binding resource on that generation.
	if p.GXRate >= p.LinkRawRate {
		t.Error("8x host interface should bind before the link")
	}
	// The 12x defaults must be untouched (no aliasing).
	if d.GXRate != 7.6e9 {
		t.Error("Default params mutated by preset")
	}
}
