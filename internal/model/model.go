// Package model holds every calibrated hardware and protocol constant used
// by the simulation, in one place.
//
// The testbed being reproduced (paper §4.1): IBM Power6 nodes, 4 CPUs per
// node, 32 GB DDR2-533, one IBM 12x dual-port HCA on a 950 MHz GX+ bus,
// OpenIB Gen2, MVAPICH. Calibration philosophy (see DESIGN.md §2): constants
// are chosen so the *single-rail* configuration matches the paper's
// single-rail measurements; all multi-rail behaviour must then emerge from
// the modeled mechanisms rather than per-figure fitting.
package model

import "ib12x/internal/sim"

// Params collects the tunable constants of the hardware and software model.
// Use Default() and tweak fields for ablations; the zero value is not valid.
type Params struct {
	// ---- IBM 12x HCA ----

	// SendEnginesPerPort and RecvEnginesPerPort are the number of DMA
	// engines per HCA port (paper §2.2: "each port has multiple send and
	// receive DMA engines").
	SendEnginesPerPort int
	RecvEnginesPerPort int

	// EngineRate is the peak data rate of a single send or receive DMA
	// engine, bytes/s. Calibrated: the paper's single-QP (single-engine)
	// uni-directional peak is 1661 MB/s.
	EngineRate float64

	// EnginePerWQE is the fixed engine occupancy per work request: WQE
	// fetch across GX+, address translation, pipeline startup. This is the
	// "send engines do not have enough data to pipeline" cost that
	// penalises striping of medium messages (paper §4.3).
	EnginePerWQE sim.Time

	// SchedulerPerWQE is the hardware send scheduler's arbitration cost
	// per descriptor. The scheduler is a single serial resource per port
	// that scans QPs with outstanding descriptors in round-robin order
	// (paper §2.2).
	SchedulerPerWQE sim.Time

	// AckProcTime is the responder-side engine occupancy to generate an RC
	// acknowledgment for one received chunk.
	AckProcTime sim.Time

	// ---- 12x link and fabric ----

	// LinkRawRate is the 12x data rate after 8b/10b coding: 30 Gbit/s
	// raw = 3.0 GB/s of payload-carrying capacity per direction.
	LinkRawRate float64

	// MTU is the InfiniBand path MTU in bytes.
	MTU int

	// PacketHeader is the per-MTU-packet wire overhead (LRH+BTH+ICRC and
	// inter-packet/flow-control gaps), bytes. Calibrated so the effective
	// large-message link rate lands at the paper's multi-rail peak
	// (2745 MB/s uni-directional).
	PacketHeader int

	// AckWireBytes is the wire occupancy of an RC ACK packet on the
	// reverse lane.
	AckWireBytes int

	// WireLatency is the one-way propagation plus switch cut-through time.
	WireLatency sim.Time

	// RetransmitTimeout is the requester's RC retry timeout: how long a
	// lost chunk waits before its retransmission begins. Errors are
	// injected per port via hca.Port.ErrorEvery (deterministic, for
	// failure-injection tests); the default fabric is error-free.
	RetransmitTimeout sim.Time

	// LaneChunk is the granularity (bytes) at which large transfers book
	// the link lanes. Packets of concurrent transfers interleave on a real
	// link per MTU; chunked bookings approximate that without per-packet
	// events. Smaller = finer interleaving, more events.
	LaneChunk int

	// ---- GX+ bus ----

	// GXRate is the aggregate GX+ bus bandwidth at 950 MHz (paper §2.2:
	// theoretical 7.6 GB/s), shared by all DMA in both directions.
	GXRate float64

	// DoorbellTime is the MMIO cost of ringing the HCA doorbell across
	// GX+, charged to the posting CPU.
	DoorbellTime sim.Time

	// ---- Host CPU / MPI software ----

	// CPUPostWQE is the host cost to build and post one descriptor
	// (excluding the doorbell MMIO). The paper attributes the striping
	// penalty partly to "posting a descriptor for each stripe".
	CPUPostWQE sim.Time

	// CPUCompletion is the host cost to reap one completion-queue entry.
	CPUCompletion sim.Time

	// CPUHeaderProc is the host cost to parse/dispatch one MPI protocol
	// header (eager header, RTS, CTS, FIN).
	CPUHeaderProc sim.Time

	// EagerCopyRate is the host memcpy bandwidth used for eager-protocol
	// copies into/out of pre-registered bounce buffers, bytes/s.
	EagerCopyRate float64

	// MPIHeaderBytes is the size of the MPI envelope prepended to eager
	// messages; CtrlMsgBytes the size of RTS/CTS/FIN control messages.
	MPIHeaderBytes int
	CtrlMsgBytes   int

	// RendezvousThreshold is the eager/rendezvous switch point; it is also
	// the striping threshold (paper §3.3: 16 KB).
	RendezvousThreshold int

	// EagerCredits is the per-connection send-credit pool: each channel
	// message (eager data or control) consumes one preposted receive at
	// the peer; credits return piggybacked on reverse traffic or via
	// explicit updates when half the pool is owed. MVAPICH's credit-based
	// flow control, sized to its default prepost depth.
	EagerCredits int

	// MinStripe is the smallest stripe the planner will cut; stripes are
	// never smaller than this even if that leaves rails idle.
	MinStripe int

	// ---- RDMA-write eager ring (adi.EagerRDMAWrite; DESIGN.md §16) ----

	// RingSlots and RingSlotBytes fix the geometry of the persistent
	// per-peer eager ring negotiated at connect: each direction of an
	// inter-node connection owns RingSlots receive slots of RingSlotBytes
	// each at the peer. A slot must hold the payload plus its wire header;
	// messages that do not fit fall back to the send/recv channel.
	RingSlots     int
	RingSlotBytes int

	// RingPollCost is the receiver-side cost to discover one ring arrival
	// by scanning the polling set of per-peer rings. It replaces
	// CPUCompletion on the ring path — the saving that gives the RDMA-write
	// channel its latency floor (Liu et al.).
	RingPollCost sim.Time

	// HdrCacheSlots is the capacity of the per-peer header cache (an LRU
	// of (tag, context) envelope signatures at the sender);
	// HdrCompressedBytes is the wire header a cache hit ships in the ring
	// slot instead of the full MPIHeaderBytes envelope.
	HdrCacheSlots      int
	HdrCompressedBytes int

	// ---- End-to-end integrity (adi.IntegrityVerify; DESIGN.md §17) ----

	// ChecksumCost is the fixed host cost to start one ICRC-style checksum
	// pass (descriptor setup, cache warm-up); ChecksumRate is the streaming
	// rate of the checksum loop, bytes/s. Charged once at capture time on
	// the sender and once per verification at the receiver when
	// mpi.Config.Integrity arms verification; the zero-value integrity mode
	// never touches either constant.
	ChecksumCost sim.Time
	ChecksumRate float64

	// TornSettle is how long an RDMA eager ring slot whose doorbell raced
	// ahead of its payload stays inconsistent: a receiver that polls the
	// slot inside this window sees the torn image and must re-poll. Only
	// the chaos harness's RingTornWrite plan produces such slots.
	TornSettle sim.Time

	// ---- Intra-node shared memory channel ----

	// ShmemLatency is the one-way small-message latency through the
	// shared-memory channel; ShmemRate its two-copy bandwidth.
	ShmemLatency sim.Time
	ShmemRate    float64

	// The Power6 compute model for the NAS kernels lives with the kernels
	// themselves: per-class per-element costs in internal/nas (ISClass.
	// KeyCost, FTClass.PointCost), calibrated against the paper's
	// compute/communication ratios.
}

// Default returns the calibrated parameter set for the paper's testbed.
func Default() *Params {
	return &Params{
		SendEnginesPerPort: 4,
		RecvEnginesPerPort: 4,
		EngineRate:         1.672e9,
		EnginePerWQE:       1500 * sim.Nanosecond,
		SchedulerPerWQE:    150 * sim.Nanosecond,
		AckProcTime:        400 * sim.Nanosecond,

		LinkRawRate:  3.0e9,
		MTU:          2048,
		PacketHeader: 186,
		AckWireBytes: 60,
		WireLatency:  600 * sim.Nanosecond,
		LaneChunk:    16 * 1024,

		RetransmitTimeout: 500 * sim.Microsecond,

		GXRate:       7.6e9,
		DoorbellTime: 200 * sim.Nanosecond,

		CPUPostWQE:    700 * sim.Nanosecond,
		CPUCompletion: 600 * sim.Nanosecond,
		CPUHeaderProc: 400 * sim.Nanosecond,
		EagerCopyRate: 2.8e9,

		MPIHeaderBytes:      64,
		CtrlMsgBytes:        64,
		RendezvousThreshold: 16 * 1024,
		EagerCredits:        64,
		MinStripe:           4 * 1024,

		RingSlots:          32,
		RingSlotBytes:      8*1024 + 64, // an 8 KB payload plus the full header
		RingPollCost:       150 * sim.Nanosecond,
		HdrCacheSlots:      64,
		HdrCompressedBytes: 16,

		ChecksumCost: 60 * sim.Nanosecond,
		ChecksumRate: 6.0e9,
		TornSettle:   400 * sim.Nanosecond,

		ShmemLatency: 350 * sim.Nanosecond,
		ShmemRate:    4.0e9,
	}
}

// PCIe8x returns a parameter set for the contemporary comparison point the
// paper's introduction names: an 8x HCA on PCI-Express ("HCAs with
// throughput of 8x on PCI-Express have become available"). 8x after 8b/10b
// is 2.0 GB/s of payload capacity; the era's PCIe x8 host interface
// sustains roughly 1.4-1.6 GB/s of DMA after overheads, and the adapters
// carried two send/receive engines. Calibrated to the ~1.4-1.5 GB/s
// uni-directional peaks published for those adapters (Liu et al., Hot
// Interconnects 2003 lineage).
func PCIe8x() *Params {
	p := Default()
	p.SendEnginesPerPort = 2
	p.RecvEnginesPerPort = 2
	p.EngineRate = 1.05e9
	p.LinkRawRate = 2.0e9
	p.GXRate = 1.5e9 // the PCIe x8 DMA ceiling stands in for GX+
	return p
}

// LinkDataRate reports the effective payload rate of one link direction
// after per-packet header overhead: LinkRawRate scaled by MTU/(MTU+header).
func (p *Params) LinkDataRate() float64 {
	return p.LinkRawRate * float64(p.MTU) / float64(p.MTU+p.PacketHeader)
}

// PacketWireTime reports the wire occupancy of a data packet carrying n
// payload bytes (n ≤ MTU).
func (p *Params) PacketWireTime(n int) sim.Time {
	return sim.TransferTime(int64(n+p.PacketHeader), p.LinkRawRate)
}

// AckWireTime reports the wire occupancy of one RC acknowledgment.
func (p *Params) AckWireTime() sim.Time {
	return sim.TransferTime(int64(p.AckWireBytes), p.LinkRawRate)
}

// Packets reports how many MTU packets carry n payload bytes.
func (p *Params) Packets(n int) int {
	if n <= 0 {
		return 1 // a zero-payload message still sends one packet
	}
	return (n + p.MTU - 1) / p.MTU
}
