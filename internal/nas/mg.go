package nas

import (
	"fmt"
	"math"

	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// MGClass describes one NPB Multigrid problem class.
//
// Substitution note (DESIGN.md §2): NPB MG runs a four-level V-cycle with
// the 27-point operator set on a grid seeded with ±1 spikes. We keep the
// structure — V-cycles over a power-of-two grid hierarchy under a 1-D
// z-slab decomposition, with one halo-plane exchange per smoothing or
// residual sweep per level and a residual-norm Allreduce per iteration —
// but use the 7-point Poisson operator with damped-Jacobi smoothing, whose
// convergence is easier to verify without NPB's reference numbers.
type MGClass struct {
	Name       byte
	N          int // grid edge (nx = ny = nz = N, power of two)
	Iterations int
	PointCost  sim.Time // calibrated cost per grid point per sweep
}

// NPB MG problem classes (S and A/B edges per the NPB spec; W reduced).
var (
	MGClassS = MGClass{'S', 32, 4, 6 * sim.Nanosecond}
	MGClassW = MGClass{'W', 64, 4, 6 * sim.Nanosecond}
	MGClassA = MGClass{'A', 256, 4, 7 * sim.Nanosecond}
	MGClassB = MGClass{'B', 256, 20, 7 * sim.Nanosecond}
)

// MGClassByName resolves a class letter.
func MGClassByName(name byte) (MGClass, error) {
	switch name {
	case 'S':
		return MGClassS, nil
	case 'W':
		return MGClassW, nil
	case 'A':
		return MGClassA, nil
	case 'B':
		return MGClassB, nil
	}
	return MGClass{}, fmt.Errorf("nas: unknown MG class %q", string(name))
}

// ValidFor reports whether np ranks can hold the slab hierarchy (every
// rank needs at least one plane on the coarsest level we keep, which is
// 8 planes).
func (c MGClass) ValidFor(np int) bool {
	return np > 0 && c.N%np == 0 && 8%np == 0 || np <= 8 && c.N%np == 0
}

// MGResult reports a finished MG run.
type MGResult struct {
	Class     byte
	NP        int
	Elapsed   sim.Time
	Residual0 float64 // initial residual norm
	ResidualN float64 // final residual norm
	Verified  bool
}

// mgLevel is one grid of the hierarchy, z-slab decomposed: each rank holds
// lz planes of ny×nx points plus two halo planes.
type mgLevel struct {
	n  int // global edge
	lz int // local planes
	u  []float64
	v  []float64 // right-hand side at this level
	r  []float64 // residual / scratch
}

func (l *mgLevel) plane() int          { return l.n * l.n }
func (l *mgLevel) idx(z, y, x int) int { return ((z+1)*l.n+y)*l.n + x } // +1: halo

// RunMG executes the multigrid kernel: Iterations V-cycles on the class
// grid. In synthetic mode the sweeps are charged to the clock and halo
// planes travel as synthetic messages; no field is allocated.
func RunMG(c *mpi.Comm, class MGClass, synthetic bool) MGResult {
	p := c.Size()
	rank := c.Rank()
	if class.N%p != 0 {
		panic(fmt.Sprintf("nas: MG grid %d not divisible by %d ranks", class.N, p))
	}
	res := MGResult{Class: class.Name, NP: p}

	// Build the level sizes: halve until 8 planes or p planes, whichever
	// is larger.
	var sizes []int
	for n := class.N; n >= 8 && n >= p; n /= 2 {
		sizes = append(sizes, n)
	}

	if synthetic {
		c.Barrier()
		t0 := c.Time()
		for it := 0; it < class.Iterations; it++ {
			for li, n := range sizes {
				lz := n / p
				pts := lz * n * n
				sweeps := 3 // smooth ×2 + residual/transfer
				if li == len(sizes)-1 {
					sweeps = 5 // extra smoothing at the bottom
				}
				for s := 0; s < sweeps; s++ {
					c.Compute(nops(pts) * class.PointCost)
					haloExchange(c, nil, nil, n, rank, p)
				}
			}
			sum := []float64{0}
			c.AllreduceFloat64(sum, mpi.Sum)
		}
		el := []int64{int64(c.Time() - t0)}
		c.AllreduceInt64(el, mpi.Max)
		res.Elapsed = sim.Time(el[0])
		res.Verified = true
		return res
	}

	// ---- real mode ----
	levels := make([]*mgLevel, len(sizes))
	for i, n := range sizes {
		lz := n / p
		levels[i] = &mgLevel{
			n: n, lz: lz,
			u: make([]float64, (lz+2)*n*n),
			v: make([]float64, (lz+2)*n*n),
			r: make([]float64, (lz+2)*n*n),
		}
	}
	// Right-hand side: NPB-style ± spikes at LCG-random interior points.
	fine := levels[0]
	rng := NewRandom(314159265)
	for s := 0; s < 20; s++ {
		gx := 1 + int(rng.Next()*float64(fine.n-2))
		gy := 1 + int(rng.Next()*float64(fine.n-2))
		gz := 1 + int(rng.Next()*float64(fine.n-2))
		val := 1.0
		if s%2 == 1 {
			val = -1
		}
		if zl := gz - rank*fine.lz; zl >= 0 && zl < fine.lz {
			fine.v[fine.idx(zl, gy, gx)] = val
		}
	}

	c.Barrier()
	t0 := c.Time()

	res.Residual0 = residualNorm(c, class, fine, rank, p)
	for it := 0; it < class.Iterations; it++ {
		vcycle(c, class, levels, 0, rank, p)
	}
	res.ResidualN = residualNorm(c, class, fine, rank, p)

	el := []int64{int64(c.Time() - t0)}
	c.AllreduceInt64(el, mpi.Max)
	res.Elapsed = sim.Time(el[0])
	res.Verified = res.ResidualN < res.Residual0 && !math.IsNaN(res.ResidualN)
	return res
}

// haloExchange swaps boundary planes with the z neighbours (Dirichlet
// boundaries: edge ranks skip the missing side). top/bottom may be nil for
// synthetic traffic of one plane each.
func haloExchange(c *mpi.Comm, lo, hi []float64, n, rank, p int) {
	bytes := n * n * 8
	var reqs []*mpi.Request
	if rank > 0 {
		reqs = append(reqs, c.IrecvN(rank-1, 71, f64bytes(lo), bytes))
	}
	if rank < p-1 {
		reqs = append(reqs, c.IrecvN(rank+1, 72, f64bytes(hi), bytes))
	}
	if rank > 0 {
		reqs = append(reqs, c.IsendN(rank-1, 72, f64bytes(lo), bytes))
	}
	if rank < p-1 {
		reqs = append(reqs, c.IsendN(rank+1, 71, f64bytes(hi), bytes))
	}
	c.Waitall(reqs)
}

// f64bytes is a placeholder for synthetic halo traffic: the real planes are
// exchanged through the payload when non-nil. To keep the hot path free of
// per-element marshalling, real-mode halo planes are serialized here.
func f64bytes(v []float64) []byte {
	if v == nil {
		return nil
	}
	b := make([]byte, 8*len(v))
	for i, x := range v {
		putU64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// realHalo exchanges actual boundary planes of u for one level.
func realHalo(c *mpi.Comm, l *mgLevel, rank, p int) {
	pl := l.plane()
	// Send the first and last owned planes; receive into the halos.
	loOut := l.u[1*pl : 2*pl]           // first owned plane
	hiOut := l.u[l.lz*pl : (l.lz+1)*pl] // last owned plane
	bytes := pl * 8
	var reqs []*mpi.Request
	loIn := make([]byte, bytes)
	hiIn := make([]byte, bytes)
	if rank > 0 {
		reqs = append(reqs, c.IrecvN(rank-1, 71, loIn, bytes))
	}
	if rank < p-1 {
		reqs = append(reqs, c.IrecvN(rank+1, 72, hiIn, bytes))
	}
	if rank > 0 {
		reqs = append(reqs, c.IsendN(rank-1, 72, f64bytes(loOut), bytes))
	}
	if rank < p-1 {
		reqs = append(reqs, c.IsendN(rank+1, 71, f64bytes(hiOut), bytes))
	}
	c.Waitall(reqs)
	if rank > 0 {
		for i := 0; i < pl; i++ {
			l.u[i] = math.Float64frombits(getU64(loIn[8*i:]))
		}
	}
	if rank < p-1 {
		base := (l.lz + 1) * pl
		for i := 0; i < pl; i++ {
			l.u[base+i] = math.Float64frombits(getU64(hiIn[8*i:]))
		}
	}
}

// smooth runs one damped-Jacobi sweep: u += ω D⁻¹ (v − A u).
func smooth(c *mpi.Comm, class MGClass, l *mgLevel, rank, p int) {
	realHalo(c, l, rank, p)
	n := l.n
	h2 := 1.0
	const omega = 0.8
	out := l.r
	for z := 0; z < l.lz; z++ {
		gz := rank*l.lz + z
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				i := l.idx(z, y, x)
				if gz == 0 || gz == n-1 || y == 0 || y == n-1 || x == 0 || x == n-1 {
					out[i] = 0 // Dirichlet boundary
					continue
				}
				lap := l.u[i-1] + l.u[i+1] +
					l.u[i-n] + l.u[i+n] +
					l.u[i-n*n] + l.u[i+n*n] - 6*l.u[i]
				r := l.v[i] - (-lap / h2)
				out[i] = l.u[i] + omega*r*h2/6
			}
		}
	}
	copy(l.u[l.plane():(l.lz+1)*l.plane()], out[l.plane():(l.lz+1)*l.plane()])
	c.Compute(nops(l.lz*n*n) * class.PointCost)
}

// residual computes r = v − A u into l.r (interior only).
func residual(c *mpi.Comm, class MGClass, l *mgLevel, rank, p int) {
	realHalo(c, l, rank, p)
	n := l.n
	for z := 0; z < l.lz; z++ {
		gz := rank*l.lz + z
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				i := l.idx(z, y, x)
				if gz == 0 || gz == n-1 || y == 0 || y == n-1 || x == 0 || x == n-1 {
					l.r[i] = 0
					continue
				}
				lap := l.u[i-1] + l.u[i+1] + l.u[i-n] + l.u[i+n] +
					l.u[i-n*n] + l.u[i+n*n] - 6*l.u[i]
				l.r[i] = l.v[i] + lap
			}
		}
	}
	c.Compute(nops(l.lz*n*n) * class.PointCost)
}

// residualNorm computes the global L2 norm of v − A u on a level.
func residualNorm(c *mpi.Comm, class MGClass, l *mgLevel, rank, p int) float64 {
	residual(c, class, l, rank, p)
	var sum float64
	for z := 0; z < l.lz; z++ {
		base := l.idx(z, 0, 0)
		for i := 0; i < l.n*l.n; i++ {
			sum += l.r[base+i] * l.r[base+i]
		}
	}
	s := []float64{sum}
	c.AllreduceFloat64(s, mpi.Sum)
	return math.Sqrt(s[0])
}

// vcycle runs one V-cycle starting at level li.
func vcycle(c *mpi.Comm, class MGClass, levels []*mgLevel, li, rank, p int) {
	l := levels[li]
	if li == len(levels)-1 {
		for s := 0; s < 5; s++ {
			smooth(c, class, l, rank, p)
		}
		return
	}
	smooth(c, class, l, rank, p)
	residual(c, class, l, rank, p)

	// Restrict r to the coarser level's v (straight injection of every
	// second point; the halo is not needed for injection).
	coarse := levels[li+1]
	cn := coarse.n
	zFactor := l.lz / coarse.lz // 2 when both levels split evenly
	for z := 0; z < coarse.lz; z++ {
		for y := 0; y < cn; y++ {
			for x := 0; x < cn; x++ {
				coarse.v[coarse.idx(z, y, x)] = l.r[l.idx(z*zFactor, 2*y, 2*x)]
			}
		}
	}
	for i := range coarse.u {
		coarse.u[i] = 0
	}
	c.Compute(nops(coarse.lz*cn*cn) * class.PointCost)

	vcycle(c, class, levels, li+1, rank, p)

	// Prolongate the correction (piecewise-constant) and correct.
	n := l.n
	for z := 0; z < l.lz; z++ {
		cz := z / zFactor
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				l.u[l.idx(z, y, x)] += coarse.u[coarse.idx(cz, y/2, x/2)]
			}
		}
	}
	c.Compute(nops(l.lz*n*n) * class.PointCost)

	smooth(c, class, l, rank, p)
}
