package nas

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

func runIS(t *testing.T, class ISClass, nodes, ppn, qps int, kind core.Kind, synthetic bool) ISResult {
	t.Helper()
	var res ISResult
	board := NewISBoard(nodes * ppn)
	_, err := mpi.Run(mpi.Config{
		Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind,
	}, func(c *mpi.Comm) {
		r := RunIS(c, class, synthetic, board)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestISClassSVerifies(t *testing.T) {
	for _, shape := range []struct{ nodes, ppn int }{{2, 1}, {2, 2}, {2, 4}} {
		res := runIS(t, ISClassS, shape.nodes, shape.ppn, 4, core.EPC, false)
		if !res.Verified {
			t.Errorf("%d ranks: IS class S failed verification", shape.nodes*shape.ppn)
		}
		if res.Elapsed <= 0 {
			t.Errorf("elapsed = %v", res.Elapsed)
		}
	}
}

func TestISClassWVerifies(t *testing.T) {
	res := runIS(t, ISClassW, 2, 2, 4, core.EPC, false)
	if !res.Verified {
		t.Error("IS class W failed verification")
	}
	if res.MopTotal <= 0 {
		t.Errorf("Mop/s = %v", res.MopTotal)
	}
}

func TestISSyntheticMatchesRealTiming(t *testing.T) {
	// Synthetic payloads must not change the virtual timeline: the
	// protocol traffic is identical.
	real := runIS(t, ISClassS, 2, 1, 4, core.EPC, false)
	synth := runIS(t, ISClassS, 2, 1, 4, core.EPC, true)
	if !synth.Verified {
		t.Error("synthetic run failed verification")
	}
	if real.Elapsed != synth.Elapsed {
		t.Errorf("elapsed differs: real %v vs synthetic %v", real.Elapsed, synth.Elapsed)
	}
}

func TestISEPCFasterThanOriginal(t *testing.T) {
	// The headline application result (Figures 9-10): multi-rail EPC
	// beats the single-rail original.
	orig := runIS(t, ISClassW, 2, 1, 1, core.Original, false)
	epc := runIS(t, ISClassW, 2, 1, 4, core.EPC, false)
	if !orig.Verified || !epc.Verified {
		t.Fatal("verification failed")
	}
	if epc.Elapsed >= orig.Elapsed {
		t.Errorf("EPC (%v) not faster than original (%v)", epc.Elapsed, orig.Elapsed)
	}
}

func TestISDeterministic(t *testing.T) {
	a := runIS(t, ISClassS, 2, 2, 2, core.EPC, false)
	b := runIS(t, ISClassS, 2, 2, 2, core.EPC, false)
	if a.Elapsed != b.Elapsed {
		t.Errorf("elapsed differs across runs: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestISClassByName(t *testing.T) {
	for _, n := range []byte{'S', 'W', 'A', 'B', 'C'} {
		c, err := ISClassByName(n)
		if err != nil || c.Name != n {
			t.Errorf("class %c: %+v err=%v", n, c, err)
		}
	}
	if _, err := ISClassByName('X'); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestPartitionBuckets(t *testing.T) {
	counts := make([]int64, 8)
	for i := range counts {
		counts[i] = 10
	}
	bounds := partitionBuckets(counts, 4)
	if bounds[3] != 8 {
		t.Errorf("last bound = %d, want 8", bounds[3])
	}
	// Balanced: each rank gets 2 buckets.
	prev := 0
	for _, b := range bounds {
		if b-prev != 2 {
			t.Errorf("bounds = %v, want even split", bounds)
			break
		}
		prev = b
	}
	// destOf agrees with bounds.
	if destOf(bounds, 0) != 0 || destOf(bounds, 3) != 1 || destOf(bounds, 7) != 3 {
		t.Errorf("destOf misroutes with bounds %v", bounds)
	}
}

func TestPartitionBucketsSkewed(t *testing.T) {
	// All keys in one bucket: every rank's range still covers the space,
	// and destOf still routes in-range.
	counts := make([]int64, 8)
	counts[3] = 1000
	bounds := partitionBuckets(counts, 4)
	if bounds[len(bounds)-1] != 8 {
		t.Errorf("bounds = %v: must cover all buckets", bounds)
	}
	for b := 0; b < 8; b++ {
		d := destOf(bounds, b)
		if d < 0 || d >= 4 {
			t.Errorf("bucket %d routed to %d", b, d)
		}
	}
}
