package nas

import (
	"fmt"
	"math"

	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// FTClass describes one NPB Fourier Transform problem class.
type FTClass struct {
	Name       byte
	NX, NY, NZ int
	Iterations int
	// PointCost is the calibrated Power6 cost per grid point per
	// iteration cycle (one 3-D FFT pass including pack/unpack and the
	// spectral evolve), charged to the virtual clock. One number covers
	// both FFT flops (5·log2 N per point) and the memory-streaming
	// passes; it is calibrated so the compute/communication ratio of the
	// paper's testbed is reproduced (see EXPERIMENTS.md).
	PointCost sim.Time
}

// NPB FT problem classes.
var (
	FTClassS = FTClass{'S', 64, 64, 64, 6, 20 * sim.Nanosecond}
	FTClassW = FTClass{'W', 128, 128, 32, 6, 21 * sim.Nanosecond}
	FTClassA = FTClass{'A', 256, 256, 128, 6, 26 * sim.Nanosecond}
	FTClassB = FTClass{'B', 512, 256, 256, 20, 27 * sim.Nanosecond}
	FTClassC = FTClass{'C', 512, 512, 512, 20, 28 * sim.Nanosecond}
)

// FTClassByName resolves "S", "W", "A", "B", "C".
func FTClassByName(name byte) (FTClass, error) {
	switch name {
	case 'S':
		return FTClassS, nil
	case 'W':
		return FTClassW, nil
	case 'A':
		return FTClassA, nil
	case 'B':
		return FTClassB, nil
	case 'C':
		return FTClassC, nil
	}
	return FTClass{}, fmt.Errorf("nas: unknown FT class %q", string(name))
}

// Points reports the total grid points.
func (c FTClass) Points() int { return c.NX * c.NY * c.NZ }

// ValidFor reports whether the slab decomposition supports np ranks.
func (c FTClass) ValidFor(np int) bool { return np > 0 && c.NZ%np == 0 && c.NX%np == 0 }

// FTResult reports a finished FT run.
type FTResult struct {
	Class     byte
	NP        int
	Elapsed   sim.Time     // timed region: forward FFT + iterations
	Checksums []complex128 // per-iteration checksums (real mode only)
	Verified  bool
}

// ftBoard is the shared exchange board for the transpose (see isBoard).
type ftBoard struct {
	out [][][]complex128 // [src][dst] -> packed block
}

// NewFTBoard allocates the shared transpose board for one job.
func NewFTBoard(np int) *ftBoard {
	b := &ftBoard{out: make([][][]complex128, np)}
	for i := range b.out {
		b.out[i] = make([][]complex128, np)
	}
	return b
}

// RunFT executes the NPB FT kernel: an initial forward 3-D FFT of the
// random field, then Iterations of {spectral evolve, inverse 3-D FFT,
// checksum}. The grid is decomposed in z-slabs; the transpose between the
// (x,y)-local and z-local phases is an MPI Alltoall, the communication the
// paper's §4.4 FT results exercise.
//
// In synthetic mode no field is allocated: the compute charges and the
// Alltoall/Allreduce traffic are identical, but no checksums are produced.
// NZ must be divisible by the number of ranks, and NX by the number of
// ranks, for the slab decomposition.
func RunFT(c *mpi.Comm, class FTClass, synthetic bool, board *ftBoard) FTResult {
	p := c.Size()
	rank := c.Rank()
	nx, ny, nz := class.NX, class.NY, class.NZ
	if nz%p != 0 || nx%p != 0 {
		panic(fmt.Sprintf("nas: FT grid %dx%dx%d not divisible by %d ranks", nx, ny, nz, p))
	}
	lz := nz / p // local z planes (z-slab phase)
	lx := nx / p // local x planes (x-slab phase)
	localPts := lz * ny * nx
	blockPts := lz * ny * lx // per-pair transpose block
	blockBytes := blockPts * 16

	res := FTResult{Class: class.Name, NP: p}

	if synthetic {
		// Same clock charges and traffic, no field.
		c.Compute(nops(localPts) * class.PointCost / 2) // init field
		c.Barrier()
		t0 := c.Time()
		fwd := func() {
			c.Compute(nops(localPts) * class.PointCost * 6 / 10)
			c.Alltoall(nil, blockBytes, nil)
			c.Compute(nops(localPts) * class.PointCost * 4 / 10)
		}
		fwd() // initial forward FFT
		for it := 1; it <= class.Iterations; it++ {
			fwd() // evolve + inverse FFT (same cost structure)
			sum := []float64{0, 0}
			c.AllreduceFloat64(sum, mpi.Sum)
		}
		el := c.Time() - t0
		e := []int64{int64(el)}
		c.AllreduceInt64(e, mpi.Max)
		res.Elapsed = sim.Time(e[0])
		res.Verified = true
		return res
	}

	// ---- real mode ----
	// Initial condition: NPB fills the field with LCG randoms, x fastest.
	u0 := make([]complex128, localPts)
	r := NewRandom(314159265).Skip(uint64(rank) * uint64(localPts) * 2)
	for i := range u0 {
		re := r.Next()
		im := r.Next()
		u0[i] = complex(re, im)
	}
	c.Compute(nops(localPts) * class.PointCost / 2)

	c.Barrier()
	t0 := c.Time()

	// Forward 3-D FFT of u0 -> spectral field in x-slab layout.
	uh := make([]complex128, localPts)
	copy(uh, u0)
	spec := forward3D(c, class, board, uh, lz, lx)

	ut := make([]complex128, localPts)
	alpha := 1e-6
	for it := 1; it <= class.Iterations; it++ {
		// Evolve in spectral space: x-slab layout (xl, y, z).
		for xl := 0; xl < lx; xl++ {
			kx := freq(rank*lx+xl, nx)
			for y := 0; y < ny; y++ {
				ky := freq(y, ny)
				base := (xl*ny + y) * nz
				for z := 0; z < nz; z++ {
					kz := freq(z, nz)
					k2 := float64(kx*kx + ky*ky + kz*kz)
					f := math.Exp(-4 * alpha * math.Pi * math.Pi * k2 * float64(it))
					ut[base+z] = spec[base+z] * complex(f, 0)
				}
			}
		}
		// Inverse 3-D FFT back to z-slab layout.
		phys := inverse3D(c, class, board, ut, lz, lx)
		// Checksum over the NPB sample points, then global sum.
		chk := checksum(phys, rank, lz, nx, ny, nz)
		sum := []float64{real(chk), imag(chk)}
		c.AllreduceFloat64(sum, mpi.Sum)
		res.Checksums = append(res.Checksums, complex(sum[0]/float64(class.Points()), sum[1]/float64(class.Points())))
	}

	el := c.Time() - t0
	e := []int64{int64(el)}
	c.AllreduceInt64(e, mpi.Max)
	res.Elapsed = sim.Time(e[0])
	res.Verified = true
	return res
}

// freq maps a grid index to its signed frequency.
func freq(i, n int) int {
	if i >= n/2 {
		return i - n
	}
	return i
}

// forward3D transforms a z-slab field (z,y,x layout, x fastest) into the
// spectral x-slab layout (xl,y,z layout, z fastest). The input is
// overwritten as scratch.
func forward3D(c *mpi.Comm, class FTClass, board *ftBoard, u []complex128, lz, lx int) []complex128 {
	nx, ny, nz := class.NX, class.NY, class.NZ
	localPts := lz * ny * nx
	// FFT along x: contiguous rows.
	for row := 0; row < lz*ny; row++ {
		Forward(u[row*nx : (row+1)*nx])
	}
	// FFT along y: strided columns per (z, x).
	line := make([]complex128, ny)
	for zl := 0; zl < lz; zl++ {
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				line[y] = u[(zl*ny+y)*nx+x]
			}
			Forward(line)
			for y := 0; y < ny; y++ {
				u[(zl*ny+y)*nx+x] = line[y]
			}
		}
	}
	c.Compute(nops(localPts) * class.PointCost * 6 / 10)

	// Transpose to x-slabs.
	v := transpose(c, board, u, lz, lx, nx, ny, nz, true)

	// FFT along z: contiguous rows in (xl,y,z) layout.
	for row := 0; row < lx*ny; row++ {
		Forward(v[row*nz : (row+1)*nz])
	}
	c.Compute(nops(localPts) * class.PointCost * 4 / 10)
	return v
}

// inverse3D transforms a spectral x-slab field back to the physical z-slab
// layout. The input is preserved.
func inverse3D(c *mpi.Comm, class FTClass, board *ftBoard, v []complex128, lz, lx int) []complex128 {
	nx, ny, nz := class.NX, class.NY, class.NZ
	localPts := lz * ny * nx
	w := make([]complex128, localPts)
	copy(w, v)
	// Inverse FFT along z.
	for row := 0; row < lx*ny; row++ {
		Inverse(w[row*nz : (row+1)*nz])
	}
	c.Compute(nops(localPts) * class.PointCost * 4 / 10)

	// Transpose back to z-slabs.
	u := transpose(c, board, w, lz, lx, nx, ny, nz, false)

	// Inverse FFT along y then x.
	line := make([]complex128, ny)
	for zl := 0; zl < lz; zl++ {
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				line[y] = u[(zl*ny+y)*nx+x]
			}
			Inverse(line)
			for y := 0; y < ny; y++ {
				u[(zl*ny+y)*nx+x] = line[y]
			}
		}
	}
	for row := 0; row < lz*ny; row++ {
		Inverse(u[row*nx : (row+1)*nx])
	}
	c.Compute(nops(localPts) * class.PointCost * 6 / 10)
	return u
}

// transpose exchanges slabs: forward (zslab→xslab) packs blocks by
// destination x-range and unpacks into (xl,y,z); backward reverses. The
// payloads move through the shared board while the MPI Alltoall simulates
// transfers of identical size.
func transpose(c *mpi.Comm, board *ftBoard, in []complex128, lz, lx, nx, ny, nz int, fwd bool) []complex128 {
	p := c.Size()
	rank := c.Rank()
	blockPts := lz * ny * lx
	// Pack.
	for dst := 0; dst < p; dst++ {
		blk := make([]complex128, blockPts)
		if fwd {
			for zl := 0; zl < lz; zl++ {
				for y := 0; y < ny; y++ {
					src := (zl*ny+y)*nx + dst*lx
					dstOff := (zl*ny + y) * lx
					copy(blk[dstOff:dstOff+lx], in[src:src+lx])
				}
			}
		} else {
			// in is (xl, y, z); block for dst carries z ∈ dst's slab.
			for xl := 0; xl < lx; xl++ {
				for y := 0; y < ny; y++ {
					src := (xl*ny+y)*nz + dst*lz
					dstOff := (xl*ny + y) * lz
					copy(blk[dstOff:dstOff+lz], in[src:src+lz])
				}
			}
		}
		board.out[rank][dst] = blk
	}
	// Simulated exchange (synthetic payloads of exact block size).
	c.Alltoall(nil, blockPts*16, nil)
	// Unpack.
	out := make([]complex128, lz*ny*nx)
	if fwd {
		// out is (xl, y, z), z fastest.
		for src := 0; src < p; src++ {
			blk := board.out[src][rank]
			for zl := 0; zl < lz; zl++ {
				for y := 0; y < ny; y++ {
					for xl := 0; xl < lx; xl++ {
						out[(xl*ny+y)*nz+src*lz+zl] = blk[(zl*ny+y)*lx+xl]
					}
				}
			}
		}
	} else {
		// out is (zl, y, x), x fastest.
		for src := 0; src < p; src++ {
			blk := board.out[src][rank]
			for xl := 0; xl < lx; xl++ {
				for y := 0; y < ny; y++ {
					for zl := 0; zl < lz; zl++ {
						out[(zl*ny+y)*nx+src*lx+xl] = blk[(xl*ny+y)*lz+zl]
					}
				}
			}
		}
	}
	return out
}

// checksum sums the field at the NPB sample points that fall in this rank's
// z-slab: for j = 1..1024, the point (j mod nx, 3j mod ny, 5j mod nz).
func checksum(u []complex128, rank, lz, nx, ny, nz int) complex128 {
	var chk complex128
	zLo, zHi := rank*lz, (rank+1)*lz
	for j := 1; j <= 1024; j++ {
		x := j % nx
		y := (3 * j) % ny
		z := (5 * j) % nz
		if z >= zLo && z < zHi {
			chk += u[((z-zLo)*ny+y)*nx+x]
		}
	}
	return chk
}
