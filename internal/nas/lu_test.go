package nas

import (
	"math"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

func runLU(t *testing.T, class LUClass, nodes, ppn, qps int, kind core.Kind) LUResult {
	t.Helper()
	var res LUResult
	_, err := mpi.Run(mpi.Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind}, func(c *mpi.Comm) {
		r := RunLU(c, class)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestLUClassSRuns(t *testing.T) {
	res := runLU(t, LUClassS, 2, 1, 4, core.EPC)
	if !res.Verified || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestLUChecksumAcrossDecompositions(t *testing.T) {
	// The wavefront recurrence applies the same floating-point operations
	// per point whatever the pencil layout; only the final summation
	// reassociates, so checksums agree to fp tolerance across 2/4/8 ranks.
	a := runLU(t, LUClassS, 2, 1, 2, core.EPC)
	b := runLU(t, LUClassS, 2, 2, 2, core.EPC)
	c := runLU(t, LUClassS, 2, 4, 2, core.EPC)
	tol := 1e-12 * math.Abs(a.Checksum)
	if math.Abs(a.Checksum-b.Checksum) > tol || math.Abs(b.Checksum-c.Checksum) > tol {
		t.Errorf("checksums differ: %v / %v / %v", a.Checksum, b.Checksum, c.Checksum)
	}
}

func TestLUChecksumExactAcrossPolicies(t *testing.T) {
	a := runLU(t, LUClassS, 2, 2, 1, core.Original)
	b := runLU(t, LUClassS, 2, 2, 4, core.EvenStriping)
	if a.Checksum != b.Checksum {
		t.Errorf("checksums differ by policy: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestLUTrafficIsSmallMessages(t *testing.T) {
	// The wavefront sends boundary strips — all eager-sized.
	var stats [2]int64
	_, err := mpi.Run(mpi.Config{Nodes: 2, ProcsPerNode: 2, QPsPerPort: 4, Policy: core.EPC}, func(c *mpi.Comm) {
		RunLU(c, LUClassS)
		s := c.Endpoint().Stats()
		if c.Rank() == 0 {
			stats[0], stats[1] = s.EagerSent+s.ShmemSent, s.RendezvousSent
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0] == 0 {
		t.Error("no eager traffic recorded")
	}
	if stats[1] != 0 {
		t.Errorf("wavefront produced %d rendezvous transfers; strips must be eager", stats[1])
	}
}

func TestLUEPCNotSlower(t *testing.T) {
	// Small blocking messages gain nothing from multi-rail (Fig. 3), and
	// must lose nothing either.
	orig := runLU(t, LUClassW, 2, 1, 1, core.Original)
	epc := runLU(t, LUClassW, 2, 1, 4, core.EPC)
	if d := (epc.Elapsed.Seconds() - orig.Elapsed.Seconds()) / orig.Elapsed.Seconds(); d > 0.02 {
		t.Errorf("LU: EPC %.4fs vs original %.4fs (+%.1f%%)", epc.Elapsed.Seconds(), orig.Elapsed.Seconds(), d*100)
	}
}

func TestLUGrid(t *testing.T) {
	cases := []struct{ p, px, py int }{{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {6, 2, 3}}
	for _, c := range cases {
		px, py := luGrid(c.p)
		if px != c.px || py != c.py {
			t.Errorf("luGrid(%d) = %dx%d, want %dx%d", c.p, px, py, c.px, c.py)
		}
	}
}

func TestLUClassByName(t *testing.T) {
	for _, n := range []byte{'S', 'W', 'A', 'B'} {
		if c, err := LUClassByName(n); err != nil || c.Name != n {
			t.Errorf("class %c: %v", n, err)
		}
	}
	if _, err := LUClassByName('Q'); err == nil {
		t.Error("unknown class accepted")
	}
}
