package nas

import "math"

// fft computes an in-place radix-2 decimation-in-time FFT of x, whose
// length must be a power of two. sign = -1 gives the forward transform,
// sign = +1 the inverse (unnormalised; callers divide by n).
func fft(x []complex128, sign float64) {
	n := len(x)
	if n&(n-1) != 0 {
		panic("nas: fft length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// Forward computes the forward FFT in place.
func Forward(x []complex128) { fft(x, -1) }

// Inverse computes the normalised inverse FFT in place.
func Inverse(x []complex128) {
	fft(x, +1)
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
}

// dft is the O(n²) reference transform used by tests.
func dft(x []complex128, sign float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k*t) / float64(n)
			sum += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}
