package nas

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomField(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomField(n, int64(n))
		want := dft(x, -1)
		got := append([]complex128(nil), x...)
		Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT vs DFT max err %g", n, e)
		}
	}
}

func TestInverseRecoversInput(t *testing.T) {
	for _, n := range []int{2, 8, 128, 1024} {
		x := randomField(n, 42)
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Errorf("n=%d: roundtrip max err %g", n, e)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seedA, seedB int16) bool {
		const n = 64
		a := randomField(n, int64(seedA))
		b := randomField(n, int64(seedB))
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		Forward(a)
		Forward(b)
		Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	const n = 512
	x := randomField(n, 7)
	var timeE float64
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	Forward(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: time %g vs freq/n %g", timeE, freqE/float64(n))
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	const n = 32
	x := make([]complex128, n)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length 6 must panic")
		}
	}()
	Forward(make([]complex128, 6))
}
