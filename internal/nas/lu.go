package nas

import (
	"fmt"
	"math"

	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// LUClass describes one LU-style wavefront problem.
//
// Substitution note (DESIGN.md §2): NPB LU runs SSOR over the Navier-Stokes
// operators. We keep what matters to the network — the 2-D pencil
// decomposition and the pipelined wavefront: every k-plane, a rank waits
// for its west and south boundary strips, relaxes its block, and forwards
// east and north, so the fabric sees long trains of small blocking
// messages (the opposite regime from FT's huge transposes) — but relax a
// simple triangular recurrence whose checksum is decomposition-invariant.
type LUClass struct {
	Name       byte
	N          int // grid edge
	Iterations int // SSOR iterations (each = lower + upper sweep)
	PointCost  sim.Time
}

// LU-style problem classes (edges per NPB; iteration counts reduced for
// the S/W classes as NPB's 50+ add nothing to the communication shape).
var (
	LUClassS = LUClass{'S', 16, 10, 12 * sim.Nanosecond}
	LUClassW = LUClass{'W', 32, 20, 12 * sim.Nanosecond}
	LUClassA = LUClass{'A', 64, 50, 13 * sim.Nanosecond}
	LUClassB = LUClass{'B', 102, 50, 13 * sim.Nanosecond}
)

// LUClassByName resolves a class letter.
func LUClassByName(name byte) (LUClass, error) {
	switch name {
	case 'S':
		return LUClassS, nil
	case 'W':
		return LUClassW, nil
	case 'A':
		return LUClassA, nil
	case 'B':
		return LUClassB, nil
	}
	return LUClass{}, fmt.Errorf("nas: unknown LU class %q", string(name))
}

// LUResult reports a finished run.
type LUResult struct {
	Class    byte
	NP       int
	Elapsed  sim.Time
	Checksum float64
	Verified bool
}

// luGrid picks the 2-D processor grid: the most square px×py = p.
func luGrid(p int) (px, py int) {
	px = 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			px = f
		}
	}
	return px, p / px
}

// RunLU executes the wavefront kernel. The grid must divide over the
// processor grid. Real math always runs (the fields are small); the
// PointCost charge models the Power6 relaxation time.
func RunLU(c *mpi.Comm, class LUClass) LUResult {
	p := c.Size()
	rank := c.Rank()
	px, py := luGrid(p)
	n := class.N
	if n%px != 0 || n%py != 0 {
		panic(fmt.Sprintf("nas: LU grid %d does not divide over %dx%d procs", n, px, py))
	}
	ix, iy := rank%px, rank/px
	lx, ly := n/px, n/py
	x0, y0 := ix*lx, iy*ly

	res := LUResult{Class: class.Name, NP: p}

	// u is the local pencil (lx × ly × n), x fastest.
	idx := func(x, y, z int) int { return (z*ly+y)*lx + x }
	u := make([]float64, lx*ly*n)
	for x := 0; x < lx; x++ {
		for y := 0; y < ly; y++ {
			for z := 0; z < n; z++ {
				gx, gy := x0+x, y0+y
				u[idx(x, y, z)] = math.Sin(float64(gx+2*gy+3*z) * 0.01)
			}
		}
	}

	west, east := rank-1, rank+1
	south, north := rank-px, rank+px
	edgeW := make([]float64, ly) // boundary strip from the west (per plane)
	edgeS := make([]float64, lx)

	c.Barrier()
	t0 := c.Time()

	for it := 0; it < class.Iterations; it++ {
		// Lower sweep: dependencies flow +x, +y, so the wavefront starts
		// at the SW pencil and pipelines over k.
		for z := 0; z < n; z++ {
			if ix > 0 {
				recvStrip(c, west, 11, edgeW)
			} else {
				zero(edgeW)
			}
			if iy > 0 {
				recvStrip(c, south, 12, edgeS)
			} else {
				zero(edgeS)
			}
			for y := 0; y < ly; y++ {
				for x := 0; x < lx; x++ {
					w := edgeW[y]
					if x > 0 {
						w = u[idx(x-1, y, z)]
					}
					s := edgeS[x]
					if y > 0 {
						s = u[idx(x, y-1, z)]
					}
					k := 0.0
					if z > 0 {
						k = u[idx(x, y, z-1)]
					}
					u[idx(x, y, z)] = 0.2*u[idx(x, y, z)] + 0.25*(w+s+k) + 0.05
				}
			}
			c.Compute(nops(lx*ly) * class.PointCost)
			if ix < px-1 {
				sendStripEast(c, east, 11, u, idx, lx, ly, z)
			}
			if iy < py-1 {
				sendStripNorth(c, north, 12, u, idx, lx, ly, z)
			}
		}
		// Upper sweep: mirrored, from the NE pencil.
		for z := n - 1; z >= 0; z-- {
			if ix < px-1 {
				recvStrip(c, east, 13, edgeW)
			} else {
				zero(edgeW)
			}
			if iy < py-1 {
				recvStrip(c, north, 14, edgeS)
			} else {
				zero(edgeS)
			}
			for y := ly - 1; y >= 0; y-- {
				for x := lx - 1; x >= 0; x-- {
					e := edgeW[y]
					if x < lx-1 {
						e = u[idx(x+1, y, z)]
					}
					nn := edgeS[x]
					if y < ly-1 {
						nn = u[idx(x, y+1, z)]
					}
					k := 0.0
					if z < n-1 {
						k = u[idx(x, y, z+1)]
					}
					u[idx(x, y, z)] = 0.2*u[idx(x, y, z)] + 0.25*(e+nn+k) + 0.05
				}
			}
			c.Compute(nops(lx*ly) * class.PointCost)
			if ix > 0 {
				sendStripWest(c, west, 13, u, idx, lx, ly, z)
			}
			if iy > 0 {
				sendStripSouth(c, south, 14, u, idx, lx, ly, z)
			}
		}
	}

	el := []int64{int64(c.Time() - t0)}
	c.AllreduceInt64(el, mpi.Max)
	res.Elapsed = sim.Time(el[0])

	// Global checksum: decomposition-invariant verification.
	var sum float64
	for _, v := range u {
		sum += v
	}
	s := []float64{sum}
	c.AllreduceFloat64(s, mpi.Sum)
	res.Checksum = s[0] / float64(n*n*n)
	res.Verified = !math.IsNaN(res.Checksum) && !math.IsInf(res.Checksum, 0)
	return res
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

func recvStrip(c *mpi.Comm, from, tag int, strip []float64) {
	buf := make([]byte, 8*len(strip))
	c.Recv(from, tag, buf)
	for i := range strip {
		strip[i] = math.Float64frombits(getU64(buf[8*i:]))
	}
}

func sendStrip(c *mpi.Comm, to, tag int, strip []float64) {
	buf := make([]byte, 8*len(strip))
	for i, v := range strip {
		putU64(buf[8*i:], math.Float64bits(v))
	}
	c.Send(to, tag, buf)
}

func sendStripEast(c *mpi.Comm, to, tag int, u []float64, idx func(int, int, int) int, lx, ly, z int) {
	strip := make([]float64, ly)
	for y := 0; y < ly; y++ {
		strip[y] = u[idx(lx-1, y, z)]
	}
	sendStrip(c, to, tag, strip)
}

func sendStripNorth(c *mpi.Comm, to, tag int, u []float64, idx func(int, int, int) int, lx, ly, z int) {
	strip := make([]float64, lx)
	for x := 0; x < lx; x++ {
		strip[x] = u[idx(x, ly-1, z)]
	}
	sendStrip(c, to, tag, strip)
}

func sendStripWest(c *mpi.Comm, to, tag int, u []float64, idx func(int, int, int) int, lx, ly, z int) {
	strip := make([]float64, ly)
	for y := 0; y < ly; y++ {
		strip[y] = u[idx(0, y, z)]
	}
	sendStrip(c, to, tag, strip)
}

func sendStripSouth(c *mpi.Comm, to, tag int, u []float64, idx func(int, int, int) int, lx, ly, z int) {
	strip := make([]float64, lx)
	for x := 0; x < lx; x++ {
		strip[x] = u[idx(x, 0, z)]
	}
	sendStrip(c, to, tag, strip)
}
