package nas

import (
	"fmt"

	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// ISClass describes one NPB Integer Sort problem class.
type ISClass struct {
	Name         byte
	TotalKeysLog int // log2 of total key count
	MaxKeyLog    int // log2 of the key range
	Iterations   int
	// KeyCost is the calibrated Power6 cost per key per processing pass
	// unit (the model charges (2·sent + 2·received)·KeyCost per
	// iteration). Class B's larger ranking array falls out of cache, so
	// its per-key cost is higher — which is exactly why the paper's
	// class B shows a smaller relative communication benefit than A.
	KeyCost sim.Time
}

// NPB IS problem classes.
var (
	ISClassS = ISClass{'S', 16, 11, 10, 500 * sim.Picosecond}
	ISClassW = ISClass{'W', 20, 16, 10, 550 * sim.Picosecond}
	ISClassA = ISClass{'A', 23, 19, 10, 610 * sim.Picosecond}
	ISClassB = ISClass{'B', 25, 21, 10, 1000 * sim.Picosecond}
	ISClassC = ISClass{'C', 27, 23, 10, 1100 * sim.Picosecond}
)

// ISClassByName resolves "S", "W", "A", "B", "C".
func ISClassByName(name byte) (ISClass, error) {
	switch name {
	case 'S':
		return ISClassS, nil
	case 'W':
		return ISClassW, nil
	case 'A':
		return ISClassA, nil
	case 'B':
		return ISClassB, nil
	case 'C':
		return ISClassC, nil
	}
	return ISClass{}, fmt.Errorf("nas: unknown IS class %q", string(name))
}

const isBucketsLog = 10 // 1024 buckets, as in NPB

// ISResult reports one rank's view of a finished IS run.
type ISResult struct {
	Class    byte
	NP       int
	Elapsed  sim.Time // timed region: the benchmark iterations
	Verified bool
	MopTotal float64 // million keys ranked per second (aggregate)
}

// isBoard is the shared-address-space exchange board used when payloads are
// synthetic: ranks deposit their outgoing key slices here while the MPI
// layer simulates transfers of identical sizes. Delivery ordering is safe
// because Alltoallv returning at a rank implies every peer has already
// posted (and therefore deposited) its block for this rank.
type isBoard struct {
	out [][][]int32 // [src][dst] -> keys
}

// RunIS executes the NPB IS kernel on the communicator. Every rank of the
// job must call it with the same arguments. When synthetic is true the
// simulated messages carry only lengths and key data moves through the
// shared exchange board — identical protocol traffic, no payload copies.
// board must be one shared *isBoard per job when synthetic (nil otherwise).
func RunIS(c *mpi.Comm, class ISClass, synthetic bool, board *isBoard) ISResult {
	p := c.Size()
	rank := c.Rank()
	nk := (1 << class.TotalKeysLog) / p
	maxKey := 1 << class.MaxKeyLog
	nbuckets := 1 << isBucketsLog
	shift := class.MaxKeyLog - isBucketsLog

	// ---- untimed setup: key generation (NPB create_seq) ----
	keys := make([]int32, nk+2*class.Iterations) // slack for modified keys
	keys = keys[:nk]
	r := NewRandom(314159265).Skip(uint64(rank) * uint64(nk) * 4)
	q := float64(maxKey) / 4
	for i := range keys {
		x := r.Next() + r.Next() + r.Next() + r.Next()
		keys[i] = int32(q * x)
	}
	c.Compute(nops(nk) * 4 * class.KeyCost) // 4 LCG draws per key

	c.Barrier()
	t0 := c.Time()

	var verified = true
	var recvKeys []int32
	var myLo, myHi int // this rank's key range after the last iteration

	for iter := 1; iter <= class.Iterations; iter++ {
		// NPB modifies two keys each iteration.
		keys[iter] = int32(iter)
		keys[iter+class.Iterations] = int32(maxKey - iter)

		// 1. Local bucket counts.
		counts := make([]int64, nbuckets)
		for _, k := range keys {
			counts[int(k)>>shift]++
		}
		c.Compute(nops(nk) * class.KeyCost)

		// 2. Global bucket sizes.
		c.AllreduceInt64(counts, mpi.Sum)

		// 3. Partition buckets over ranks: contiguous ranges with
		// balanced cumulative key counts.
		bounds := partitionBuckets(counts, p)

		// 4. Redistribute keys: order the local keys by destination.
		sendCounts := make([]int, p)
		for _, k := range keys {
			sendCounts[destOf(bounds, int(k)>>shift)]++
		}
		sdispls := make([]int, p)
		for j := 1; j < p; j++ {
			sdispls[j] = sdispls[j-1] + sendCounts[j-1]
		}
		sendKeys := make([]int32, nk)
		fill := append([]int(nil), sdispls...)
		for _, k := range keys {
			d := destOf(bounds, int(k)>>shift)
			sendKeys[fill[d]] = k
			fill[d]++
		}
		c.Compute(nops(nk) * class.KeyCost)

		// Exchange per-destination byte counts, then the keys.
		recvCounts := exchangeCounts(c, sendCounts)
		total := 0
		rdispls := make([]int, p)
		for j := 0; j < p; j++ {
			rdispls[j] = total
			total += recvCounts[j]
		}
		recvKeys = make([]int32, total)
		alltoallvKeys(c, synthetic, board, sendKeys, sendCounts, sdispls, recvKeys, recvCounts, rdispls)

		// 5. Local ranking (counting sort histogram over our range).
		lo := 0
		if rank > 0 {
			lo = bounds[rank-1]
		}
		myLo, myHi = lo<<shift, bounds[rank]<<shift
		span := myHi - myLo
		hist := make([]int32, span)
		ok := true
		for _, k := range recvKeys {
			idx := int(k) - myLo
			if idx < 0 || idx >= span {
				ok = false
				break
			}
			hist[idx]++
		}
		verified = verified && ok
		c.Compute(2 * nops(len(recvKeys)) * class.KeyCost)
	}

	elapsed := c.Time() - t0

	// ---- untimed verification ----
	// (a) Checksum and count preserved across the last redistribution.
	// The reference sums come from the final local array, which includes
	// the NPB per-iteration key modifications.
	sumBefore := []int64{0, int64(nk)}
	for _, k := range keys {
		sumBefore[0] += int64(k)
	}
	c.AllreduceInt64(sumBefore, mpi.Sum)
	sumAfter := []int64{0, int64(len(recvKeys))}
	for _, k := range recvKeys {
		sumAfter[0] += int64(k)
	}
	c.AllreduceInt64(sumAfter, mpi.Sum)
	if sumAfter[0] != sumBefore[0] || sumAfter[1] != sumBefore[1] {
		verified = false
	}
	// (b) Global ordering: my largest key ≤ right neighbour's smallest.
	myMax := int32(-1)
	myMin := int32(maxKey)
	for _, k := range recvKeys {
		if k > myMax {
			myMax = k
		}
		if k < myMin {
			myMin = k
		}
	}
	if rank+1 < p {
		c.Send(rank+1, 777, int32le(myMax))
	}
	if rank > 0 {
		buf := make([]byte, 4)
		c.Recv(rank-1, 777, buf)
		leftMax := int32(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
		if len(recvKeys) > 0 && leftMax > myMin {
			verified = false
		}
	}
	// (c) Range containment was folded into `verified` per iteration; the
	// final range markers are kept for the boundary check above.
	_, _ = myLo, myHi
	// Agree on the global verdict.
	v := []int64{1}
	if !verified {
		v[0] = 0
	}
	c.AllreduceInt64(v, mpi.Min)
	verified = v[0] == 1

	// Aggregate elapsed = max across ranks.
	e := []int64{int64(elapsed)}
	c.AllreduceInt64(e, mpi.Max)
	elapsed = sim.Time(e[0])

	totalKeys := float64(int64(1) << class.TotalKeysLog)
	return ISResult{
		Class:    class.Name,
		NP:       p,
		Elapsed:  elapsed,
		Verified: verified,
		MopTotal: totalKeys * float64(class.Iterations) / elapsed.Seconds() / 1e6,
	}
}

// NewISBoard allocates the shared exchange board for synthetic-payload runs.
func NewISBoard(np int) *isBoard {
	b := &isBoard{out: make([][][]int32, np)}
	for i := range b.out {
		b.out[i] = make([][]int32, np)
	}
	return b
}

// nops converts an operation count into a sim.Time multiplicand so that
// `nops(n) * costPerOp` reads naturally.
func nops(n int) sim.Time { return sim.Time(n) }

func int32le(v int32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

// partitionBuckets assigns contiguous bucket ranges to ranks with balanced
// key counts; bounds[j] is the first bucket NOT owned by rank j.
func partitionBuckets(global []int64, p int) []int {
	var total int64
	for _, c := range global {
		total += c
	}
	bounds := make([]int, p)
	var acc int64
	j := 0
	for b := 0; b < len(global) && j < p-1; b++ {
		acc += global[b]
		if acc >= total*int64(j+1)/int64(p) {
			bounds[j] = b + 1
			j++
		}
	}
	for ; j < p; j++ {
		bounds[j] = len(global)
	}
	return bounds
}

// destOf maps a bucket to its owning rank given partition bounds.
func destOf(bounds []int, bucket int) int {
	for j, b := range bounds {
		if bucket < b {
			return j
		}
	}
	return len(bounds) - 1
}

// exchangeCounts shares per-destination key counts (NPB uses an alltoall of
// counts before the keys).
func exchangeCounts(c *mpi.Comm, send []int) []int {
	p := c.Size()
	sendB := make([]byte, 8*p)
	for j, v := range send {
		putU64(sendB[8*j:], uint64(v))
	}
	recvB := make([]byte, 8*p)
	c.Alltoall(sendB, 8, recvB)
	recv := make([]int, p)
	for j := range recv {
		recv[j] = int(getU64(recvB[8*j:]))
	}
	return recv
}

// alltoallvKeys moves the keys. Real mode serialises int32 keys into the
// simulated transport; synthetic mode sends length-only messages and moves
// the keys through the shared board.
func alltoallvKeys(c *mpi.Comm, synthetic bool, board *isBoard, send []int32, scounts, sdispls []int, recv []int32, rcounts, rdispls []int) {
	p := c.Size()
	rank := c.Rank()
	sb := make([]int, p)
	sd := make([]int, p)
	rb := make([]int, p)
	rd := make([]int, p)
	for j := 0; j < p; j++ {
		sb[j], sd[j] = 4*scounts[j], 4*sdispls[j]
		rb[j], rd[j] = 4*rcounts[j], 4*rdispls[j]
	}
	if synthetic {
		for j := 0; j < p; j++ {
			board.out[rank][j] = send[sdispls[j] : sdispls[j]+scounts[j]]
		}
		c.Alltoallv(nil, sb, sd, nil, rb, rd)
		for j := 0; j < p; j++ {
			copy(recv[rdispls[j]:rdispls[j]+rcounts[j]], board.out[j][rank])
		}
		return
	}
	sendB := make([]byte, 4*len(send))
	for i, k := range send {
		putU32(sendB[4*i:], uint32(k))
	}
	recvB := make([]byte, 4*len(recv))
	c.Alltoallv(sendB, sb, sd, recvB, rb, rd)
	for i := range recv {
		recv[i] = int32(getU32(recvB[4*i:]))
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
