package nas

import (
	"math"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

func runEP(t *testing.T, class EPClass, nodes, ppn, qps int, kind core.Kind, synthetic bool) EPResult {
	t.Helper()
	var res EPResult
	_, err := mpi.Run(mpi.Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind}, func(c *mpi.Comm) {
		r := RunEP(c, class, synthetic)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func runCG(t *testing.T, class CGClass, nodes, ppn, qps int, kind core.Kind) CGResult {
	t.Helper()
	var res CGResult
	_, err := mpi.Run(mpi.Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind}, func(c *mpi.Comm) {
		r := RunCG(c, class)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestEPClassSVerifies(t *testing.T) {
	// A tiny synthetic class for wall-time; real generation exercised with
	// a reduced pair count via the S class at 2 ranks.
	res := runEP(t, EPClass{'S', 18, 55}, 2, 1, 4, core.EPC, false)
	if !res.Verified {
		t.Fatalf("EP failed verification: %+v", res)
	}
	// ~78.5% of pairs fall inside the unit circle.
	var accepted int64
	for _, v := range res.Counts {
		accepted += v
	}
	frac := float64(accepted) / float64(int64(1)<<18)
	if frac < 0.75 || frac > 0.82 {
		t.Errorf("acceptance fraction = %.3f, want ~0.785", frac)
	}
}

func TestEPIndependentOfRankCount(t *testing.T) {
	small := EPClass{'S', 16, 55}
	a := runEP(t, small, 2, 1, 2, core.EPC, false)
	b := runEP(t, small, 2, 2, 2, core.EPC, false)
	if a.Counts != b.Counts {
		t.Errorf("EP counts differ by decomposition: %v vs %v", a.Counts, b.Counts)
	}
	// Sums agree up to floating-point reassociation across ranks.
	if math.Abs(a.SumX-b.SumX) > 1e-9 || math.Abs(a.SumY-b.SumY) > 1e-9 {
		t.Errorf("EP sums differ by decomposition: (%v,%v) vs (%v,%v)", a.SumX, a.SumY, b.SumX, b.SumY)
	}
}

func TestEPCommInsensitive(t *testing.T) {
	// The whole point of EP in this paper's context: the network design
	// neither helps nor hurts a compute-bound code.
	orig := runEP(t, EPClassS, 2, 1, 1, core.Original, true)
	epc := runEP(t, EPClassS, 2, 1, 4, core.EPC, true)
	d := math.Abs(orig.Elapsed.Seconds()-epc.Elapsed.Seconds()) / orig.Elapsed.Seconds()
	if d > 0.01 {
		t.Errorf("EP time differs %.2f%% across policies; should be ~0", d*100)
	}
}

func TestEPClassByName(t *testing.T) {
	for _, n := range []byte{'S', 'W', 'A', 'B', 'C'} {
		if c, err := EPClassByName(n); err != nil || c.Name != n {
			t.Errorf("class %c: %v", n, err)
		}
	}
	if _, err := EPClassByName('x'); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestCGClassSConverges(t *testing.T) {
	res := runCG(t, CGClassS, 2, 1, 4, core.EPC)
	if !res.Verified {
		t.Fatalf("CG failed verification: %+v", res)
	}
	if res.Residual > 1e-8 {
		t.Errorf("residual = %g, want tiny (diagonally dominant system)", res.Residual)
	}
}

func TestCGZetaIndependentOfDecomposition(t *testing.T) {
	a := runCG(t, CGClassS, 2, 1, 2, core.EPC)
	b := runCG(t, CGClassS, 2, 2, 2, core.EPC)
	if math.Abs(a.Zeta-b.Zeta) > 1e-9 {
		t.Errorf("zeta differs by decomposition: %v vs %v", a.Zeta, b.Zeta)
	}
	c := runCG(t, CGClassS, 2, 1, 1, core.Original)
	if math.Abs(a.Zeta-c.Zeta) > 1e-9 {
		t.Errorf("zeta differs by policy: %v vs %v", a.Zeta, c.Zeta)
	}
}

func TestCGMatrixSymmetric(t *testing.T) {
	// Build the whole matrix single-block and check A == Aᵀ entry-wise.
	class := CGClass{'T', 240, 7, 1, 10, 9}
	m := buildMatrix(class, 0, 1)
	type key struct{ i, j int32 }
	entries := map[key]float64{}
	for i := range m.colIdx {
		for k, j := range m.colIdx[i] {
			entries[key{int32(i), j}] = m.values[i][k]
		}
	}
	for k, v := range entries {
		mirror, ok := entries[key{k.j, k.i}]
		if !ok {
			t.Fatalf("entry (%d,%d) has no mirror", k.i, k.j)
		}
		if mirror != v {
			t.Fatalf("asymmetric: (%d,%d)=%g vs (%d,%d)=%g", k.i, k.j, v, k.j, k.i, mirror)
		}
	}
}

func TestCGMatrixDiagonallyDominant(t *testing.T) {
	m := buildMatrix(CGClassS, 0, 1)
	for i := range m.colIdx {
		var diag, off float64
		for k, j := range m.colIdx[i] {
			if int(j) == i {
				diag = m.values[i][k]
			} else {
				off += math.Abs(m.values[i][k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: diag %g vs off %g", i, diag, off)
		}
	}
}

func TestCGEPCNotSlower(t *testing.T) {
	orig := runCG(t, CGClassS, 2, 1, 1, core.Original)
	epc := runCG(t, CGClassS, 2, 1, 4, core.EPC)
	// The paper reports no degradation on the other NAS benchmarks; allow
	// EPC a sliver of noise but never a real slowdown.
	if epc.Elapsed.Seconds() > 1.02*orig.Elapsed.Seconds() {
		t.Errorf("CG: EPC %.4fs slower than original %.4fs", epc.Elapsed.Seconds(), orig.Elapsed.Seconds())
	}
}

func TestCGClassByName(t *testing.T) {
	for _, n := range []byte{'S', 'W', 'A', 'B'} {
		if c, err := CGClassByName(n); err != nil || c.Name != n {
			t.Errorf("class %c: %v", n, err)
		}
	}
	if _, err := CGClassByName('C'); err == nil {
		t.Error("unimplemented class C accepted")
	}
}
