package nas

import (
	"fmt"
	"math"

	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// EPClass describes one NPB Embarrassingly Parallel problem class.
type EPClass struct {
	Name     byte
	PairsLog int // log2 of the number of random pairs
	// PairCost is the calibrated Power6 cost per generated pair (two LCG
	// draws, the acceptance test and, for accepted pairs, the
	// Box-Muller-style transform).
	PairCost sim.Time
}

// NPB EP problem classes.
var (
	EPClassS = EPClass{'S', 24, 55 * sim.Nanosecond}
	EPClassW = EPClass{'W', 25, 55 * sim.Nanosecond}
	EPClassA = EPClass{'A', 28, 55 * sim.Nanosecond}
	EPClassB = EPClass{'B', 30, 55 * sim.Nanosecond}
	EPClassC = EPClass{'C', 32, 55 * sim.Nanosecond}
)

// EPClassByName resolves a class letter.
func EPClassByName(name byte) (EPClass, error) {
	switch name {
	case 'S':
		return EPClassS, nil
	case 'W':
		return EPClassW, nil
	case 'A':
		return EPClassA, nil
	case 'B':
		return EPClassB, nil
	case 'C':
		return EPClassC, nil
	}
	return EPClass{}, fmt.Errorf("nas: unknown EP class %q", string(name))
}

// EPResult reports a finished EP run.
type EPResult struct {
	Class    byte
	NP       int
	Elapsed  sim.Time
	SumX     float64 // gaussian sums (real mode)
	SumY     float64
	Counts   [10]int64 // annulus counts (real mode)
	Verified bool
}

// RunEP executes the NPB EP kernel: each rank generates its share of
// gaussian pairs and the only communication is the final Allreduce of the
// annulus counts and sums — the benchmark exists to show that a network
// design does not tax compute-bound codes. In synthetic mode the pair
// generation is charged to the clock without being executed.
func RunEP(c *mpi.Comm, class EPClass, synthetic bool) EPResult {
	p := c.Size()
	rank := c.Rank()
	pairs := (int64(1) << class.PairsLog) / int64(p)

	res := EPResult{Class: class.Name, NP: p}
	c.Barrier()
	t0 := c.Time()

	var sx, sy float64
	var counts [10]int64
	if synthetic {
		c.Compute(sim.Time(pairs) * class.PairCost)
	} else {
		r := NewRandom(271828183).Skip(uint64(rank) * uint64(pairs) * 2)
		for i := int64(0); i < pairs; i++ {
			x := 2*r.Next() - 1
			y := 2*r.Next() - 1
			t := x*x + y*y
			if t > 1 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(t) / t)
			gx, gy := x*f, y*f
			sx += gx
			sy += gy
			l := int(math.Max(math.Abs(gx), math.Abs(gy)))
			if l < 10 {
				counts[l]++
			}
		}
		c.Compute(sim.Time(pairs) * class.PairCost)
	}

	// The kernel's only communication.
	sums := []float64{sx, sy}
	c.AllreduceFloat64(sums, mpi.Sum)
	cnt := make([]int64, 10)
	copy(cnt, counts[:])
	c.AllreduceInt64(cnt, mpi.Sum)

	el := []int64{int64(c.Time() - t0)}
	c.AllreduceInt64(el, mpi.Max)
	res.Elapsed = sim.Time(el[0])
	res.SumX, res.SumY = sums[0], sums[1]
	copy(res.Counts[:], cnt)
	// Verification: accepted pairs must not exceed generated pairs, and
	// the gaussian sums must be finite. (Official reference sums are not
	// bundled; determinism is asserted by tests.)
	var accepted int64
	for _, v := range cnt {
		accepted += v
	}
	res.Verified = synthetic ||
		(accepted > 0 && accepted <= int64(1)<<class.PairsLog &&
			!math.IsNaN(res.SumX) && !math.IsNaN(res.SumY))
	return res
}
