// Package nas implements the two NAS Parallel Benchmarks the paper
// evaluates (§4.4): IS (Integer Sort) and FT (3-D Fast Fourier Transform),
// running their real algorithms over the simulated MPI while charging local
// computation to the virtual clock through a calibrated Power6 model.
//
// The kernels follow the NPB specifications: the 5^13 linear-congruential
// generator with per-rank seed jumping, IS's bucket sort with Allreduce +
// Alltoallv redistribution, and FT's transpose-based 3-D FFT with Alltoall.
// The official NPB verification vectors are not bundled; correctness is
// established by invariant checks (global sortedness and permutation
// preservation for IS, inverse-transform and Parseval checks for FT).
package nas

// NPB linear congruential generator: x_{k+1} = a·x_k (mod 2^46) with
// a = 5^13. Values are uniform in (0, 1) as x/2^46.
const (
	lcgA    uint64 = 1220703125 // 5^13
	lcgMask uint64 = 1<<46 - 1
)

// Random is the NPB pseudorandom stream.
type Random struct {
	x uint64
}

// NewRandom creates a stream with the given seed (only the low 46 bits are
// used; NPB's standard seed is 314159265).
func NewRandom(seed uint64) *Random {
	return &Random{x: seed & lcgMask}
}

// Next advances the stream and returns a uniform double in (0, 1).
func (r *Random) Next() float64 {
	// The modulus is a power of two, so the low 46 bits of the 64-bit
	// product are exact.
	r.x = (lcgA * r.x) & lcgMask
	return float64(r.x) / float64(1<<46)
}

// Skip advances the stream by n steps in O(log n) using the multiplier
// a^n mod 2^46 (NPB's find_my_seed). It returns the receiver.
func (r *Random) Skip(n uint64) *Random {
	r.x = (mulpow(lcgA, n) * r.x) & lcgMask
	return r
}

// mulpow computes a^n mod 2^46 by binary exponentiation.
func mulpow(a, n uint64) uint64 {
	result := uint64(1)
	base := a & lcgMask
	for n > 0 {
		if n&1 == 1 {
			result = (result * base) & lcgMask
		}
		base = (base * base) & lcgMask
		n >>= 1
	}
	return result
}
