package nas

import (
	"testing"
	"testing/quick"
)

func TestRandomMatchesSpec(t *testing.T) {
	// First values of the NPB stream from seed 314159265 with a = 5^13:
	// x1 = a·x0 mod 2^46, computed independently here with big-int-free
	// arithmetic (the low 46 bits of the 64-bit product are exact).
	r := NewRandom(314159265)
	x0 := uint64(314159265)
	want := (uint64(1220703125) * x0) & (1<<46 - 1)
	got := r.Next()
	if got != float64(want)/float64(1<<46) {
		t.Errorf("first draw = %v, want %v", got, float64(want)/float64(1<<46))
	}
}

func TestRandomRange(t *testing.T) {
	r := NewRandom(314159265)
	for i := 0; i < 10000; i++ {
		v := r.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("draw %d = %v out of (0,1)", i, v)
		}
	}
}

func TestRandomMeanNearHalf(t *testing.T) {
	r := NewRandom(314159265)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Next()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestSkipMatchesSequentialDraws(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 100, 12345} {
		seq := NewRandom(314159265)
		for i := uint64(0); i < n; i++ {
			seq.Next()
		}
		jmp := NewRandom(314159265).Skip(n)
		if seq.x != jmp.x {
			t.Errorf("Skip(%d): state %d != sequential %d", n, jmp.x, seq.x)
		}
	}
}

func TestSkipProperty(t *testing.T) {
	// Skip(a).Skip(b) == Skip(a+b) for any a, b.
	f := func(a, b uint16) bool {
		x := NewRandom(271828183).Skip(uint64(a)).Skip(uint64(b))
		y := NewRandom(271828183).Skip(uint64(a) + uint64(b))
		return x.x == y.x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulpow(t *testing.T) {
	if mulpow(lcgA, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if mulpow(lcgA, 1) != lcgA {
		t.Error("a^1 != a")
	}
	// a^2 via direct multiply.
	if mulpow(lcgA, 2) != (lcgA*lcgA)&lcgMask {
		t.Error("a^2 wrong")
	}
}
