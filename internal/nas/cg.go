package nas

import (
	"fmt"
	"math"

	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// CGClass describes one NPB Conjugate Gradient problem class.
//
// Substitution note (DESIGN.md §2): NPB's makea builds the sparse matrix
// from random outer products; we build a random symmetric diagonally
// dominant matrix with the same order and nonzeros-per-row from the NPB
// LCG. The solver, its communication pattern (an Allgather of the search
// vector per matvec plus Allreduce dot products under a 1-D row
// decomposition) and the convergence behaviour are preserved; the official
// zeta reference values are not applicable.
type CGClass struct {
	Name    byte
	N       int // matrix order
	Nonzer  int // off-diagonal nonzeros per row
	Niter   int // outer iterations
	Shift   float64
	NnzCost sim.Time // calibrated cost per nonzero per matvec
}

// NPB CG problem classes (order/nonzer/niter/shift per the NPB spec).
var (
	CGClassS = CGClass{'S', 1400, 7, 15, 10, 9 * sim.Nanosecond}
	CGClassW = CGClass{'W', 7000, 8, 15, 12, 9 * sim.Nanosecond}
	CGClassA = CGClass{'A', 14000, 11, 15, 20, 9 * sim.Nanosecond}
	CGClassB = CGClass{'B', 75000, 13, 75, 60, 10 * sim.Nanosecond}
)

// CGClassByName resolves a class letter.
func CGClassByName(name byte) (CGClass, error) {
	switch name {
	case 'S':
		return CGClassS, nil
	case 'W':
		return CGClassW, nil
	case 'A':
		return CGClassA, nil
	case 'B':
		return CGClassB, nil
	}
	return CGClass{}, fmt.Errorf("nas: unknown CG class %q", string(name))
}

// CGResult reports a finished CG run.
type CGResult struct {
	Class    byte
	NP       int
	Elapsed  sim.Time
	Zeta     float64
	Residual float64
	Verified bool
}

// sparseRows is a rank's block of the matrix in CSR-ish form.
type sparseRows struct {
	rowStart int // first global row of the block
	colIdx   [][]int32
	values   [][]float64
}

// buildMatrix constructs the rank's row block of a symmetric, diagonally
// dominant sparse matrix, deterministically from the NPB LCG. Off-diagonal
// entries are mirrored inside the row block generation by construction:
// entry (i, j) uses a value derived from min/max of the pair so A == Aᵀ.
func buildMatrix(class CGClass, rank, p int) *sparseRows {
	n := class.N
	rows := n / p
	start := rank * rows
	if rank == p-1 {
		rows = n - start
	}
	m := &sparseRows{rowStart: start}
	m.colIdx = make([][]int32, rows)
	m.values = make([][]float64, rows)
	// Random strides shared by all rows: row i connects to i±s_k, so the
	// pattern is trivially symmetric (a randomly banded ring).
	nstr := class.Nonzer / 2
	strides := make([]int, nstr)
	for k := range strides {
		strides[k] = int(mulpow(lcgA, uint64(3*k+5))%uint64(n-1)) + 1
	}
	for i := 0; i < rows; i++ {
		gi := start + i
		cols := make([]int32, 0, 2*nstr+1)
		vals := make([]float64, 0, 2*nstr+1)
		seen := map[int32]bool{int32(gi): true}
		var offDiagSum float64
		add := func(j int) {
			if seen[int32(j)] {
				return
			}
			seen[int32(j)] = true
			v := symVal(gi, j, n)
			cols = append(cols, int32(j))
			vals = append(vals, v)
			offDiagSum += math.Abs(v)
		}
		for _, str := range strides {
			add((gi + str) % n)
			add((gi - str + n) % n)
		}
		// Diagonal dominance makes A SPD.
		cols = append(cols, int32(gi))
		vals = append(vals, offDiagSum+1+float64(class.Shift)/10)
		m.colIdx[i] = cols
		m.values[i] = vals
	}
	return m
}

// symVal yields the value of entry (i, j), symmetric by construction.
func symVal(i, j, n int) float64 {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	x := (uint64(lo)*2654435761 + uint64(hi)*40503) & lcgMask
	return -0.5 + float64((lcgA*x)&lcgMask)/float64(1<<46) // in (-0.5, 0.5)
}

// RunCG executes the NPB CG kernel: Niter outer iterations, each solving
// A·z = x with 25 conjugate-gradient steps and updating the shifted
// eigenvalue estimate zeta. Communication per CG step: one Allgather of
// the search vector (the 1-D matvec exchange) and Allreduce dot products.
func RunCG(c *mpi.Comm, class CGClass) CGResult {
	p := c.Size()
	rank := c.Rank()
	n := class.N
	rows := n / p
	start := rank * rows
	if rank == p-1 {
		rows = n - start
	}
	blockBytes := (n/p + p) * 8 // allgather block, padded for the tail rank

	A := buildMatrix(class, rank, p)
	nnz := 0
	for i := range A.colIdx {
		nnz += len(A.colIdx[i])
	}

	// Working vectors: x global estimate (replicated via allgather), local
	// blocks for z, r, q; p is the replicated search direction.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	pv := make([]float64, n)
	zLoc := make([]float64, rows)
	rLoc := make([]float64, rows)
	qLoc := make([]float64, rows)

	res := CGResult{Class: class.Name, NP: p}
	c.Barrier()
	t0 := c.Time()

	var zeta float64
	for outer := 1; outer <= class.Niter; outer++ {
		// ---- CG solve: A z = x ----
		for i := 0; i < rows; i++ {
			zLoc[i] = 0
			rLoc[i] = x[start+i]
		}
		copy(pv, x)
		rho := dot(c, rLoc, rLoc)
		for it := 0; it < 25; it++ {
			// q = A p (p replicated; matvec local; then dot products).
			matvec(A, pv, qLoc)
			c.Compute(sim.Time(nnz) * class.NnzCost)
			var dLoc float64
			for i := 0; i < rows; i++ {
				dLoc += pv[start+i] * qLoc[i]
			}
			d := reduceScalar(c, dLoc)
			alpha := rho / d
			for i := 0; i < rows; i++ {
				zLoc[i] += alpha * pv[start+i]
				rLoc[i] -= alpha * qLoc[i]
			}
			rho0 := rho
			rho = dot(c, rLoc, rLoc)
			beta := rho / rho0
			// p = r + beta p, then re-replicate p via allgather.
			for i := 0; i < rows; i++ {
				qLoc[i] = rLoc[i] + beta*pv[start+i] // reuse qLoc as scratch
			}
			allgatherVec(c, qLoc, pv, blockBytes, rows, n)
			c.Compute(sim.Time(rows) * class.NnzCost)
		}
		// ||r|| for reporting.
		res.Residual = math.Sqrt(dot(c, rLoc, rLoc))

		// zeta = shift + 1 / (x·z); x = z/||z||.
		var xzLoc, zzLoc float64
		for i := 0; i < rows; i++ {
			xzLoc += x[start+i] * zLoc[i]
			zzLoc += zLoc[i] * zLoc[i]
		}
		sums := []float64{xzLoc, zzLoc}
		c.AllreduceFloat64(sums, mpi.Sum)
		zeta = class.Shift + 1/sums[0]
		norm := 1 / math.Sqrt(sums[1])
		for i := 0; i < rows; i++ {
			qLoc[i] = zLoc[i] * norm
		}
		allgatherVec(c, qLoc, x, blockBytes, rows, n)
	}

	el := []int64{int64(c.Time() - t0)}
	c.AllreduceInt64(el, mpi.Max)
	res.Elapsed = sim.Time(el[0])
	res.Zeta = zeta
	// Verification: zeta finite and near the shift (the dominant
	// eigenvalue of a strongly diagonally dominant normalized system keeps
	// 1/(x·z) small), and the CG residual actually converged.
	res.Verified = !math.IsNaN(zeta) && math.Abs(zeta-class.Shift) < class.Shift &&
		res.Residual < 1e-6*float64(n)
	return res
}

// matvec computes q = A p for the local row block.
func matvec(A *sparseRows, p []float64, q []float64) {
	for i := range A.colIdx {
		var sum float64
		cols, vals := A.colIdx[i], A.values[i]
		for k := range cols {
			sum += vals[k] * p[cols[k]]
		}
		q[i] = sum
	}
}

// dot computes the global dot product of two distributed vectors.
func dot(c *mpi.Comm, a, b []float64) float64 {
	var local float64
	for i := range a {
		local += a[i] * b[i]
	}
	return reduceScalar(c, local)
}

func reduceScalar(c *mpi.Comm, v float64) float64 {
	s := []float64{v}
	c.AllreduceFloat64(s, mpi.Sum)
	return s[0]
}

// allgatherVec re-replicates a block-distributed vector. Blocks are padded
// to a fixed size so the collective is regular; the tail rank's extra rows
// ride inside its padding and the unpack loop trims per rank.
func allgatherVec(c *mpi.Comm, local []float64, global []float64, blockBytes, rows, n int) {
	p := c.Size()
	base := n / p
	send := make([]byte, blockBytes)
	for i := 0; i < rows; i++ {
		putU64(send[8*i:], math.Float64bits(local[i]))
	}
	recv := make([]byte, blockBytes*p)
	c.Allgather(send, blockBytes, recv)
	for r := 0; r < p; r++ {
		rRows := base
		rStart := r * base
		if r == p-1 {
			rRows = n - rStart
		}
		for i := 0; i < rRows; i++ {
			global[rStart+i] = math.Float64frombits(getU64(recv[r*blockBytes+8*i:]))
		}
	}
}
