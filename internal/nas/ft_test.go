package nas

import (
	"math/cmplx"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

func runFT(t *testing.T, class FTClass, nodes, ppn, qps int, kind core.Kind, synthetic bool) FTResult {
	t.Helper()
	var res FTResult
	board := NewFTBoard(nodes * ppn)
	_, err := mpi.Run(mpi.Config{
		Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind,
	}, func(c *mpi.Comm) {
		r := RunFT(c, class, synthetic, board)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestFTClassSRuns(t *testing.T) {
	res := runFT(t, FTClassS, 2, 1, 4, core.EPC, false)
	if !res.Verified || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Checksums) != FTClassS.Iterations {
		t.Fatalf("%d checksums, want %d", len(res.Checksums), FTClassS.Iterations)
	}
	// The evolved field decays: checksum magnitudes stay bounded and
	// non-zero (the field is a positive random block in (0,1)^2).
	for i, chk := range res.Checksums {
		if cmplx.Abs(chk) == 0 {
			t.Errorf("iteration %d checksum is zero", i+1)
		}
	}
}

func TestFTChecksumsIndependentOfRankCount(t *testing.T) {
	// The physics must not depend on the decomposition: checksums with 2
	// and 4 ranks agree to fp tolerance.
	a := runFT(t, FTClassS, 2, 1, 2, core.EPC, false)
	b := runFT(t, FTClassS, 2, 2, 2, core.EPC, false)
	if len(a.Checksums) != len(b.Checksums) {
		t.Fatal("checksum counts differ")
	}
	for i := range a.Checksums {
		if cmplx.Abs(a.Checksums[i]-b.Checksums[i]) > 1e-9 {
			t.Errorf("iteration %d: checksum %v (np=2) vs %v (np=4)", i+1, a.Checksums[i], b.Checksums[i])
		}
	}
}

func TestFTChecksumsIndependentOfPolicy(t *testing.T) {
	a := runFT(t, FTClassS, 2, 1, 1, core.Original, false)
	b := runFT(t, FTClassS, 2, 1, 4, core.EvenStriping, false)
	for i := range a.Checksums {
		if cmplx.Abs(a.Checksums[i]-b.Checksums[i]) > 1e-9 {
			t.Errorf("iteration %d: checksums differ across policies", i+1)
		}
	}
}

func TestFTEPCFasterThanOriginal(t *testing.T) {
	orig := runFT(t, FTClassS, 2, 1, 1, core.Original, true)
	epc := runFT(t, FTClassS, 2, 1, 4, core.EPC, true)
	if epc.Elapsed >= orig.Elapsed {
		t.Errorf("EPC (%v) not faster than original (%v)", epc.Elapsed, orig.Elapsed)
	}
}

func TestFTSyntheticSameTraffic(t *testing.T) {
	// Synthetic and real runs produce the same virtual timeline.
	real := runFT(t, FTClassS, 2, 1, 4, core.EPC, false)
	synth := runFT(t, FTClassS, 2, 1, 4, core.EPC, true)
	if real.Elapsed != synth.Elapsed {
		t.Errorf("elapsed: real %v vs synthetic %v", real.Elapsed, synth.Elapsed)
	}
}

func TestFTValidFor(t *testing.T) {
	if !FTClassS.ValidFor(2) || !FTClassS.ValidFor(4) || !FTClassS.ValidFor(8) {
		t.Error("power-of-two rank counts must be valid for class S")
	}
	if FTClassS.ValidFor(3) || FTClassS.ValidFor(0) {
		t.Error("3 or 0 ranks must be invalid for a 64-plane slab")
	}
	// Class W has only 32 z-planes but 128 x-planes.
	if !FTClassW.ValidFor(8) || FTClassW.ValidFor(64) {
		t.Error("class W divisibility wrong")
	}
}

func TestFTClassByName(t *testing.T) {
	for _, n := range []byte{'S', 'W', 'A', 'B', 'C'} {
		c, err := FTClassByName(n)
		if err != nil || c.Name != n {
			t.Errorf("class %c: %+v err=%v", n, c, err)
		}
	}
	if _, err := FTClassByName('Z'); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestFreq(t *testing.T) {
	if freq(0, 8) != 0 || freq(3, 8) != 3 || freq(4, 8) != -4 || freq(7, 8) != -1 {
		t.Error("frequency mapping wrong")
	}
}

func TestFTPoints(t *testing.T) {
	if FTClassA.Points() != 256*256*128 {
		t.Errorf("class A points = %d", FTClassA.Points())
	}
}
