package nas

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/mpi"
)

func runMG(t *testing.T, class MGClass, nodes, ppn, qps int, kind core.Kind, synthetic bool) MGResult {
	t.Helper()
	var res MGResult
	_, err := mpi.Run(mpi.Config{Nodes: nodes, ProcsPerNode: ppn, QPsPerPort: qps, Policy: kind}, func(c *mpi.Comm) {
		r := RunMG(c, class, synthetic)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestMGClassSConverges(t *testing.T) {
	res := runMG(t, MGClassS, 2, 1, 4, core.EPC, false)
	if !res.Verified {
		t.Fatalf("MG did not converge: %+v", res)
	}
	// Four V-cycles of damped Jacobi on a 32³ Poisson problem should cut
	// the residual substantially.
	if res.ResidualN > 0.5*res.Residual0 {
		t.Errorf("residual %g -> %g: weak convergence", res.Residual0, res.ResidualN)
	}
}

func TestMGResidualIndependentOfDecomposition(t *testing.T) {
	a := runMG(t, MGClassS, 2, 1, 2, core.EPC, false)
	b := runMG(t, MGClassS, 2, 2, 2, core.EPC, false)
	rel := (a.ResidualN - b.ResidualN) / a.ResidualN
	if rel > 1e-9 || rel < -1e-9 {
		t.Errorf("residual differs by decomposition: %g vs %g", a.ResidualN, b.ResidualN)
	}
}

func TestMGResidualIndependentOfPolicy(t *testing.T) {
	a := runMG(t, MGClassS, 2, 1, 1, core.Original, false)
	b := runMG(t, MGClassS, 2, 1, 4, core.EvenStriping, false)
	if a.ResidualN != b.ResidualN {
		t.Errorf("residual differs by policy: %g vs %g", a.ResidualN, b.ResidualN)
	}
}

func TestMGSyntheticRuns(t *testing.T) {
	res := runMG(t, MGClassA, 2, 2, 4, core.EPC, true)
	if !res.Verified || res.Elapsed <= 0 {
		t.Fatalf("synthetic MG: %+v", res)
	}
}

func TestMGEPCNotSlower(t *testing.T) {
	orig := runMG(t, MGClassW, 2, 1, 1, core.Original, true)
	epc := runMG(t, MGClassW, 2, 1, 4, core.EPC, true)
	if epc.Elapsed.Seconds() > 1.02*orig.Elapsed.Seconds() {
		t.Errorf("MG: EPC %.4fs slower than original %.4fs", epc.Elapsed.Seconds(), orig.Elapsed.Seconds())
	}
}

func TestMGClassByName(t *testing.T) {
	for _, n := range []byte{'S', 'W', 'A', 'B'} {
		if c, err := MGClassByName(n); err != nil || c.Name != n {
			t.Errorf("class %c: %v", n, err)
		}
	}
	if _, err := MGClassByName('Z'); err == nil {
		t.Error("unknown class accepted")
	}
}
