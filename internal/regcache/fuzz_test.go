package regcache

import (
	"testing"
	"unsafe"

	"ib12x/internal/sim"
)

// refRegion is one live region of the naive reference model.
type refRegion struct {
	base, end uintptr
	pinned    int64
	stamp     int // last-use order; smaller = older
}

// refCache reimplements the cache contract with no index and no list: a flat
// region slice scanned linearly, LRU by explicit use stamps. The fuzzer
// drives both implementations with the same operation stream and compares
// observable state after every step.
type refCache struct {
	cfg     Config
	regions []refRegion
	pinned  int64
	clock   int
}

func (rc *refCache) pageRound(n int64) int64 {
	pg := int64(rc.cfg.PageBytes)
	return (n + pg - 1) / pg * pg
}

func (rc *refCache) register(data []byte, n int) (hit bool, newPages, evicted int) {
	if n <= 0 || data == nil {
		return true, 0, 0
	}
	base := uintptr(unsafe.Pointer(&data[0]))
	end := base + uintptr(n)
	rc.clock++

	var covered int64
	mbase, mend := base, end
	var overlap []int
	for i, r := range rc.regions {
		if r.base <= base && end <= r.end {
			rc.regions[i].stamp = rc.clock
			return true, 0, 0
		}
		if r.base < end && base < r.end {
			overlap = append(overlap, i)
			if o := int64(min(r.end, end) - max(r.base, base)); o > 0 {
				covered += o
			}
			if r.base < mbase {
				mbase = r.base
			}
			if r.end > mend {
				mend = r.end
			}
		}
	}
	newPages = int(rc.pageRound(int64(n)-covered) / int64(rc.cfg.PageBytes))
	mergedPinned := rc.pageRound(int64(mend - mbase))
	if mergedPinned > rc.cfg.CapacityBytes {
		return false, newPages, 0
	}
	// Remove the overlapped regions (coalesce, not eviction).
	keep := rc.regions[:0]
	oi := 0
	for i, r := range rc.regions {
		if oi < len(overlap) && overlap[oi] == i {
			oi++
			rc.pinned -= r.pinned
			continue
		}
		keep = append(keep, r)
	}
	rc.regions = keep
	// Evict strictly by oldest stamp until the merged region fits.
	for len(rc.regions) > 0 && (rc.pinned+mergedPinned > rc.cfg.CapacityBytes || len(rc.regions)+1 > rc.cfg.CapacityEntries) {
		oldest := 0
		for i, r := range rc.regions {
			if r.stamp < rc.regions[oldest].stamp {
				oldest = i
			}
			_ = r
		}
		rc.pinned -= rc.regions[oldest].pinned
		rc.regions = append(rc.regions[:oldest], rc.regions[oldest+1:]...)
		evicted++
	}
	rc.regions = append(rc.regions, refRegion{base: mbase, end: mend, pinned: mergedPinned, stamp: rc.clock})
	rc.pinned += mergedPinned
	return false, newPages, evicted
}

func min(a, b uintptr) uintptr {
	if a < b {
		return a
	}
	return b
}

func max(a, b uintptr) uintptr {
	if a > b {
		return a
	}
	return b
}

// FuzzRegCacheLRU drives random register/lookup sequences over slices of one
// arena and checks, after every operation, that the cache agrees with the
// naive reference on hit/miss, page charges, eviction counts and the full
// live-region set — and that the structural invariants hold: pinned bytes
// never exceed capacity, entry count never exceeds its cap, no two live
// entries overlap, and the pinned-byte ledger matches the entries.
func FuzzRegCacheLRU(f *testing.F) {
	f.Add([]byte{0, 4, 8, 4, 16, 8, 0, 32, 40, 4, 0, 4})
	f.Add([]byte{1, 255, 0, 255, 128, 64, 7, 7, 7, 7})
	f.Add([]byte{200, 10, 200, 10, 100, 100, 3, 250, 90, 9, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const arenaN = 1 << 14
		arena := make([]byte, arenaN)
		cfg := Config{
			CapacityBytes:   8 << 10, // 32 pages of 256 B
			CapacityEntries: 6,
			PageBytes:       256,
			PinPerPage:      10 * sim.Nanosecond,
			PinSyscall:      100 * sim.Nanosecond,
		}
		c := New(cfg)
		rc := &refCache{cfg: cfg.withDefaults()}

		for i := 0; i+1 < len(ops); i += 2 {
			off := int(ops[i]) * 37 % arenaN
			n := (int(ops[i+1]) + 1) * 41
			if off+n > arenaN {
				n = arenaN - off
			}
			if n == 0 {
				continue
			}
			region := arena[off : off+n]

			out := c.Register(region, n)
			hit, pages, evicted := rc.register(region, n)

			if out.Hit != hit {
				t.Fatalf("op %d [%d,%d): hit=%v, reference says %v", i, off, off+n, out.Hit, hit)
			}
			if out.NewPages != pages {
				t.Fatalf("op %d [%d,%d): newPages=%d, reference says %d", i, off, off+n, out.NewPages, pages)
			}
			if out.Evicted != evicted {
				t.Fatalf("op %d [%d,%d): evicted=%d, reference says %d", i, off, off+n, out.Evicted, evicted)
			}
			wantCost := sim.Time(0)
			if !hit {
				wantCost = rc.cfg.PinSyscall + sim.Time(pages)*rc.cfg.PinPerPage
			}
			if out.Cost != wantCost {
				t.Fatalf("op %d: cost %v, want %v", i, out.Cost, wantCost)
			}

			// Structural invariants.
			if c.PinnedBytes() > cfg.CapacityBytes {
				t.Fatalf("op %d: pinned %d exceeds capacity %d", i, c.PinnedBytes(), cfg.CapacityBytes)
			}
			if c.Entries() > cfg.CapacityEntries {
				t.Fatalf("op %d: %d entries exceed cap %d", i, c.Entries(), cfg.CapacityEntries)
			}
			var sum int64
			for j, e := range c.byAddr {
				if e.end <= e.base {
					t.Fatalf("op %d: empty entry %d", i, j)
				}
				if j > 0 && c.byAddr[j-1].end > e.base {
					t.Fatalf("op %d: entries %d and %d overlap after coalescing", i, j-1, j)
				}
				sum += e.pinned
			}
			if sum != c.PinnedBytes() {
				t.Fatalf("op %d: pinned ledger %d != entry sum %d", i, c.PinnedBytes(), sum)
			}

			// Full live-set equivalence (the LRU-order invariant: a stamp
			// divergence would make the next eviction pick different
			// victims, so matching sets every step pins matching order).
			if c.Entries() != len(rc.regions) {
				t.Fatalf("op %d: %d entries, reference has %d", i, c.Entries(), len(rc.regions))
			}
			for _, r := range rc.regions {
				covered := c.Covered(arena[r.base-uintptr(unsafe.Pointer(&arena[0])):], int(r.end-r.base))
				if !covered {
					t.Fatalf("op %d: reference region [%d,%d) missing from cache",
						i, r.base-uintptr(unsafe.Pointer(&arena[0])), r.end-uintptr(unsafe.Pointer(&arena[0])))
				}
			}
		}
	})
}
