package regcache

import (
	"strings"
	"testing"

	"ib12x/internal/sim"
)

// testConfig keeps the numbers small enough to force eviction churn while
// staying easy to compute by hand: 4 pages of 1 KB, at most 3 entries.
func testConfig() Config {
	return Config{
		CapacityBytes:   4 << 10,
		CapacityEntries: 3,
		PageBytes:       1 << 10,
		PinPerPage:      100 * sim.Nanosecond,
		PinSyscall:      sim.Microsecond,
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(testConfig())
	buf := make([]byte, 2048)

	out := c.Register(buf, 2048)
	if out.Hit {
		t.Fatal("first registration reported a hit")
	}
	if out.NewPages != 2 {
		t.Fatalf("NewPages = %d, want 2", out.NewPages)
	}
	if want := sim.Microsecond + 2*100*sim.Nanosecond; out.Cost != want {
		t.Fatalf("miss cost = %v, want %v", out.Cost, want)
	}

	out = c.Register(buf, 2048)
	if !out.Hit || out.Cost != 0 {
		t.Fatalf("re-registration: hit=%v cost=%v, want free hit", out.Hit, out.Cost)
	}
	// A sub-range of a registered region is covered too.
	if out = c.Register(buf[512:], 1024); !out.Hit {
		t.Fatal("covered sub-range missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestOverlapCoalescesAndChargesUncoveredOnly(t *testing.T) {
	c := New(testConfig())
	buf := make([]byte, 4096)

	c.Register(buf[:2048], 2048)
	// [1024, 3072) overlaps [0, 2048): only the last 1024 bytes are new.
	out := c.Register(buf[1024:3072], 2048)
	if out.Hit {
		t.Fatal("partially covered region reported a hit")
	}
	if out.NewPages != 1 {
		t.Fatalf("NewPages = %d, want 1 (only the uncovered tail)", out.NewPages)
	}
	if c.Entries() != 1 {
		t.Fatalf("entries = %d, want 1 after coalescing", c.Entries())
	}
	// The merged entry covers [0, 3072); the whole prefix now hits.
	if out = c.Register(buf[:3072], 3072); !out.Hit {
		t.Fatal("merged region not covered")
	}
	if c.PinnedBytes() != 3<<10 {
		t.Fatalf("pinned = %d, want %d", c.PinnedBytes(), 3<<10)
	}
}

func TestAdjacentRegionsDoNotCoalesce(t *testing.T) {
	c := New(testConfig())
	buf := make([]byte, 2048)
	c.Register(buf[:1024], 1024)
	c.Register(buf[1024:], 1024)
	if c.Entries() != 2 {
		t.Fatalf("entries = %d, want 2 (adjacency must not merge)", c.Entries())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(testConfig())
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	d := make([]byte, 1024)
	e := make([]byte, 2048)
	f := make([]byte, 1024)

	c.Register(a, 1024)
	c.Register(b, 1024)
	c.Register(d, 1024)
	c.Register(a, 1024) // touch a: LRU order (oldest first) is now b, d, a

	// e needs 2 of the 4 pages; 3 are pinned, so exactly the least recent
	// entry (b) must go while d and the freshly touched a survive.
	out := c.Register(e, 2048)
	if out.Evicted != 1 || out.EvictedBytes != 1024 {
		t.Fatalf("evicted %d entries / %d bytes, want 1 / 1024", out.Evicted, out.EvictedBytes)
	}
	if c.Covered(b, 1024) {
		t.Fatal("least-recently-used entry survived")
	}
	if !c.Covered(a, 1024) || !c.Covered(d, 1024) {
		t.Fatal("recently used entries were evicted")
	}

	// The next squeeze must take d — now the oldest — not a or e.
	if out = c.Register(f, 1024); out.Evicted != 1 {
		t.Fatalf("second squeeze evicted %d, want 1", out.Evicted)
	}
	if c.Covered(d, 1024) {
		t.Fatal("second eviction skipped the LRU entry")
	}
	if !c.Covered(a, 1024) || !c.Covered(e, 2048) {
		t.Fatal("second eviction took a recently used entry")
	}
}

func TestEntryCapacityEvicts(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityEntries = 2
	c := New(cfg)
	bufs := [][]byte{make([]byte, 256), make([]byte, 256), make([]byte, 256)}
	for _, b := range bufs {
		c.Register(b, 256)
	}
	if c.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", c.Entries())
	}
	if c.Register(bufs[0], 256).Hit {
		t.Fatal("oldest entry should have been evicted by the entry cap")
	}
}

func TestOversizedRegionNeverCached(t *testing.T) {
	c := New(testConfig())
	small := make([]byte, 1024)
	c.Register(small, 1024)

	big := make([]byte, 8192) // 8 pages > 4-page capacity
	for i := 0; i < 2; i++ {
		out := c.Register(big, 8192)
		if out.Hit {
			t.Fatalf("oversized registration %d reported a hit", i)
		}
		if out.NewPages != 8 {
			t.Fatalf("oversized NewPages = %d, want 8", out.NewPages)
		}
	}
	if c.Entries() != 1 || !c.Register(small, 1024).Hit {
		t.Fatal("oversized miss disturbed the live entries")
	}
	if c.PinnedBytes() > c.cfg.CapacityBytes {
		t.Fatalf("pinned %d exceeds capacity %d", c.PinnedBytes(), c.cfg.CapacityBytes)
	}
}

func TestPinnedPeakAndCounters(t *testing.T) {
	c := New(testConfig())
	a := make([]byte, 3072)
	b := make([]byte, 2048)
	c.Register(a, 3072)
	c.Register(b, 2048) // evicts a (3 pages), pins 2
	if got := c.PinnedPeak(); got != 3<<10 {
		t.Fatalf("pinned peak = %d, want %d", got, 3<<10)
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	text := c.Counters().Format()
	for _, want := range []string{"pin-down registration cache", "hits", "misses", "evictions", "pinned bytes high-water"} {
		if !strings.Contains(text, want) {
			t.Errorf("counter block missing %q:\n%s", want, text)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(testConfig())
	buf := make([]byte, 1024)
	c.Register(buf, 1024)
	c.Flush()
	if c.Entries() != 0 || c.PinnedBytes() != 0 {
		t.Fatalf("flush left entries=%d pinned=%d", c.Entries(), c.PinnedBytes())
	}
	if c.Register(buf, 1024).Hit {
		t.Fatal("registration after flush reported a hit")
	}
}

func TestNilAndEmptyAreFree(t *testing.T) {
	c := New(testConfig())
	if out := c.Register(nil, 4096); !out.Hit || out.Cost != 0 {
		t.Fatal("nil buffer charged")
	}
	if out := c.Register(make([]byte, 8), 0); !out.Hit || out.Cost != 0 {
		t.Fatal("empty region charged")
	}
	if c.Misses() != 0 || c.Entries() != 0 {
		t.Fatal("degenerate registrations touched the cache")
	}
}

// TestWarmRegisterNoAllocs is the warm-rendezvous-path allocation gate wired
// into `make perfstat`: a cache hit — the steady state of every bandwidth
// loop — must not allocate.
func TestWarmRegisterNoAllocs(t *testing.T) {
	c := New(Config{})
	buf := make([]byte, 64<<10)
	c.Register(buf, len(buf))
	if avg := testing.AllocsPerRun(200, func() {
		if !c.Register(buf, len(buf)).Hit {
			t.Fatal("warm lookup missed")
		}
	}); avg != 0 {
		t.Fatalf("warm Register allocates %.1f allocs/op, want 0", avg)
	}
}
