// Package regcache models MVAPICH's pin-down cache: the per-endpoint LRU of
// registered memory regions that amortizes memory-registration cost on the
// zero-copy rendezvous and one-sided RDMA paths. Registering a buffer the
// cache already covers is free (a hit); an uncovered buffer pays a fixed
// syscall latency plus a per-page pin cost for the pages not yet pinned (a
// miss), exactly the cold/warm bandwidth split Liu et al. measured on the
// RDMA path. Deregistration is lazy: regions stay pinned until LRU pressure
// evicts them, which is where the warmth comes from.
//
// Determinism contract: buffer addresses are used only for identity and
// interval-overlap comparisons, never numerically in any timing decision.
// Distinct Go allocations never overlap, and slices of one allocation
// overlap identically on every run, so the hit/miss/coalesce structure — and
// therefore every virtual-time charge — is reproducible across runs and
// worker counts. Two further rules protect that: regions coalesce only when
// they strictly overlap (never when merely adjacent, since adjacency across
// distinct allocations is an accident of the allocator), and live entries
// hold a reference to their buffers so the garbage collector can never
// recycle a pinned address range into a fresh allocation (the classic
// pin-down-cache aliasing bug, which here would break replay).
package regcache

import (
	"sort"
	"unsafe"

	"ib12x/internal/sim"
	"ib12x/internal/stats"
)

// Config sizes the cache and prices its misses. The zero value of any field
// takes the default noted on it.
type Config struct {
	// CapacityBytes bounds the pinned working set (default 64 MB). A region
	// whose page-rounded span alone exceeds the capacity is never cached: it
	// pays the full miss charge on every registration.
	CapacityBytes int64
	// CapacityEntries bounds the number of live regions (default 1024).
	CapacityEntries int
	// PageBytes is the pin granularity (default 4096). Page counts come
	// from buffer lengths, not addresses, so they are run-independent.
	PageBytes int
	// PinPerPage is the per-page pin cost of a miss (default 250 ns, the
	// get_user_pages walk).
	PinPerPage sim.Time
	// PinSyscall is the fixed per-miss syscall/driver latency (default 2 µs).
	PinSyscall sim.Time
}

func (c Config) withDefaults() Config {
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 64 << 20
	}
	if c.CapacityEntries == 0 {
		c.CapacityEntries = 1024
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.PinPerPage == 0 {
		c.PinPerPage = 250 * sim.Nanosecond
	}
	if c.PinSyscall == 0 {
		c.PinSyscall = 2 * sim.Microsecond
	}
	return c
}

// Outcome reports what one Register call did and what it costs.
type Outcome struct {
	// Cost is the virtual-time charge the caller must burn on its rank's
	// proc before posting the WR (zero on a hit).
	Cost sim.Time
	// Hit reports whether a live entry already covered the whole region.
	Hit bool
	// NewPages is the number of pages pinned by this miss.
	NewPages int
	// Evicted counts the LRU entries evicted to make room; EvictedBytes is
	// their total pinned span.
	Evicted      int
	EvictedBytes int64
}

// entry is one live pinned region: a half-open address interval on the LRU
// list. refs keeps every buffer that contributed bytes alive, so the pinned
// address range cannot be recycled while the entry lives.
type entry struct {
	base, end  uintptr
	pinned     int64 // page-rounded span, the capacity accounting unit
	refs       [][]byte
	prev, next *entry
}

// Cache is one endpoint's pin-down cache. Not safe for concurrent use; an
// endpoint's operations are serialized by its rank's simulated process.
type Cache struct {
	cfg Config

	byAddr     []*entry // live entries sorted by base, pairwise disjoint
	head, tail *entry   // LRU list, most recently used at head
	pinned     int64

	hits, misses, evictions int64
	pinnedPeak              int64
}

// New builds a cache with the given configuration (zero fields defaulted).
func New(cfg Config) *Cache {
	return &Cache{cfg: cfg.withDefaults()}
}

// pageRound rounds n up to whole pages.
func (c *Cache) pageRound(n int64) int64 {
	pg := int64(c.cfg.PageBytes)
	return (n + pg - 1) / pg * pg
}

// Register charges for exposing data[:n] to RDMA. A region fully covered by
// one live entry is a hit: free, and the entry moves to the LRU front. Any
// other region is a miss: the uncovered bytes are pinned (per-page cost plus
// the fixed syscall latency), strictly overlapping entries coalesce into one
// merged region, and LRU entries are evicted until the merged region fits.
func (c *Cache) Register(data []byte, n int) Outcome {
	if n <= 0 || data == nil {
		return Outcome{Hit: true}
	}
	if n > len(data) {
		n = len(data)
	}
	base := uintptr(unsafe.Pointer(&data[0]))
	end := base + uintptr(n)

	// First live entry whose interval ends past base; overlaps are a
	// contiguous run from there because entries are disjoint and sorted.
	lo := sort.Search(len(c.byAddr), func(i int) bool { return c.byAddr[i].end > base })
	if lo < len(c.byAddr) {
		if e := c.byAddr[lo]; e.base <= base && end <= e.end {
			c.hits++
			c.touch(e)
			return Outcome{Hit: true}
		}
	}
	hi := lo
	covered := int64(0)
	mbase, mend := base, end
	for hi < len(c.byAddr) && c.byAddr[hi].base < end {
		e := c.byAddr[hi]
		covered += int64(minPtr(e.end, end) - maxPtr(e.base, base))
		if e.base < mbase {
			mbase = e.base
		}
		if e.end > mend {
			mend = e.end
		}
		hi++
	}

	c.misses++
	newPages := int(c.pageRound(int64(n)-covered) / int64(c.cfg.PageBytes))
	out := Outcome{
		Cost:     c.cfg.PinSyscall + sim.Time(newPages)*c.cfg.PinPerPage,
		NewPages: newPages,
	}

	mergedPinned := c.pageRound(int64(mend - mbase))
	if mergedPinned > c.cfg.CapacityBytes {
		// Oversized: never cached, so it pays the full charge every time.
		// The overlapped entries stay live untouched.
		return out
	}

	// Coalesce: the overlapped entries leave the cache (their pins carry
	// over into the merged region — not evictions) and the merged entry
	// takes their keep-alive references.
	merged := &entry{base: mbase, end: mend, pinned: mergedPinned}
	for _, e := range c.byAddr[lo:hi] {
		c.pinned -= e.pinned
		c.unlink(e)
		merged.refs = append(merged.refs, e.refs...)
	}
	merged.refs = append(merged.refs, data[:n:n])
	c.byAddr = append(c.byAddr[:lo], c.byAddr[hi:]...)

	// Evict from the LRU tail until the merged region fits both budgets.
	for c.tail != nil && (c.pinned+mergedPinned > c.cfg.CapacityBytes || len(c.byAddr)+1 > c.cfg.CapacityEntries) {
		v := c.tail
		c.evict(v)
		out.Evicted++
		out.EvictedBytes += v.pinned
	}

	c.insert(merged)
	return out
}

// touch moves a hit entry to the LRU front.
func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// unlink removes e from the LRU list only (byAddr is managed by callers).
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// evict drops a live entry entirely: LRU list, address index, pinned budget,
// keep-alive references. Deregistration itself is lazy/deferred in MVAPICH
// and charged nowhere here.
func (c *Cache) evict(e *entry) {
	c.unlink(e)
	i := sort.Search(len(c.byAddr), func(i int) bool { return c.byAddr[i].base >= e.base })
	if i < len(c.byAddr) && c.byAddr[i] == e {
		c.byAddr = append(c.byAddr[:i], c.byAddr[i+1:]...)
	}
	c.pinned -= e.pinned
	c.evictions++
	e.refs = nil
}

// insert places a merged entry into the address index (evictions may have
// shifted slots since the lookup, so it finds its own) and at the LRU front.
func (c *Cache) insert(e *entry) {
	i := sort.Search(len(c.byAddr), func(i int) bool { return c.byAddr[i].base >= e.base })
	c.byAddr = append(c.byAddr, nil)
	copy(c.byAddr[i+1:], c.byAddr[i:])
	c.byAddr[i] = e
	c.pushFront(e)
	c.pinned += e.pinned
	if c.pinned > c.pinnedPeak {
		c.pinnedPeak = c.pinned
	}
}

// Covered reports whether data[:n] is fully covered by one live entry,
// without touching the LRU order or the statistics (a test/debug probe).
func (c *Cache) Covered(data []byte, n int) bool {
	if n <= 0 || data == nil {
		return true
	}
	if n > len(data) {
		n = len(data)
	}
	base := uintptr(unsafe.Pointer(&data[0]))
	end := base + uintptr(n)
	i := sort.Search(len(c.byAddr), func(i int) bool { return c.byAddr[i].end > base })
	return i < len(c.byAddr) && c.byAddr[i].base <= base && end <= c.byAddr[i].end
}

// Flush empties the cache (capacity, statistics and peak are kept). The next
// registration of every region is cold.
func (c *Cache) Flush() {
	c.byAddr = c.byAddr[:0]
	c.head, c.tail = nil, nil
	c.pinned = 0
}

// Hits reports registrations fully covered by a live entry.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports registrations that pinned new pages.
func (c *Cache) Misses() int64 { return c.misses }

// Evictions reports entries dropped under capacity pressure.
func (c *Cache) Evictions() int64 { return c.evictions }

// PinnedBytes reports the current pinned (page-rounded) working set.
func (c *Cache) PinnedBytes() int64 { return c.pinned }

// PinnedPeak reports the pinned-bytes high-water mark.
func (c *Cache) PinnedPeak() int64 { return c.pinnedPeak }

// Entries reports the number of live regions.
func (c *Cache) Entries() int { return len(c.byAddr) }

// Counters renders the cache statistics as an ordered counter block.
func (c *Cache) Counters() *stats.Counters {
	b := &stats.Counters{Title: "pin-down registration cache"}
	b.Add("hits", c.hits)
	b.Add("misses", c.misses)
	b.Add("evictions", c.evictions)
	b.Add("pinned bytes high-water", c.pinnedPeak)
	return b
}

func minPtr(a, b uintptr) uintptr {
	if a < b {
		return a
	}
	return b
}

func maxPtr(a, b uintptr) uintptr {
	if a > b {
		return a
	}
	return b
}
