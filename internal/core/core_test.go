package core

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	if Blocking.String() != "blocking" || NonBlocking.String() != "non-blocking" || Collective.String() != "collective" {
		t.Error("class strings wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class string wrong")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Original: "original", Binding: "binding", RoundRobin: "round robin",
		EvenStriping: "even striping", WeightedStriping: "weighted striping", EPC: "EPC",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// clonePlan snapshots a PlanBulk result, which is otherwise valid only until
// the next PlanBulk call on the same policy/connection.
func clonePlan(p []Stripe) []Stripe {
	out := make([]Stripe, len(p))
	copy(out, p)
	return out
}

func planCovers(t *testing.T, plan []Stripe, size, rails int) {
	t.Helper()
	off := 0
	for i, s := range plan {
		if s.Off != off {
			t.Fatalf("stripe %d at offset %d, want %d (plan %v)", i, s.Off, off, plan)
		}
		if s.N <= 0 && size > 0 {
			t.Fatalf("stripe %d empty (plan %v)", i, plan)
		}
		if s.Rail < 0 || s.Rail >= rails {
			t.Fatalf("stripe %d on rail %d of %d", i, s.Rail, rails)
		}
		off += s.N
	}
	if off != size {
		t.Fatalf("plan covers %d of %d bytes", off, size)
	}
}

func TestBindingAlwaysBoundRail(t *testing.T) {
	p := New(Binding, 4096)
	st := &ConnState{Bound: 2}
	for i := 0; i < 5; i++ {
		if r := p.PickEager(NonBlocking, 1024, 4, st); r != 2 {
			t.Fatalf("eager rail = %d, want 2", r)
		}
	}
	plan := p.PlanBulk(Blocking, 1<<20, 4, st)
	if len(plan) != 1 || plan[0].Rail != 2 {
		t.Errorf("bulk plan = %v, want single stripe on rail 2", plan)
	}
	planCovers(t, plan, 1<<20, 4)
}

func TestBindingClampsOutOfRange(t *testing.T) {
	p := New(Binding, 4096)
	st := &ConnState{Bound: 7}
	if r := p.PickEager(Blocking, 64, 4, st); r != 0 {
		t.Errorf("out-of-range bound rail = %d, want clamp to 0", r)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := New(RoundRobin, 4096)
	st := &ConnState{}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, p.PickEager(NonBlocking, 1024, 4, st))
	}
	for i, r := range got {
		if r != i%4 {
			t.Fatalf("sequence %v not cyclic over 4 rails", got)
		}
	}
	// Bulk messages also travel whole, on consecutive rails. Plans are only
	// valid until the next PlanBulk on the same connection, so copy.
	p1 := clonePlan(p.PlanBulk(NonBlocking, 1<<20, 4, st))
	p2 := clonePlan(p.PlanBulk(NonBlocking, 1<<20, 4, st))
	if len(p1) != 1 || len(p2) != 1 || p2[0].Rail != (p1[0].Rail+1)%4 {
		t.Errorf("bulk plans %v then %v: want whole messages on consecutive rails", p1, p2)
	}
}

func TestEvenStripingDividesEqually(t *testing.T) {
	p := New(EvenStriping, 4096)
	plan := p.PlanBulk(Blocking, 1<<20, 4, &ConnState{})
	if len(plan) != 4 {
		t.Fatalf("plan = %v, want 4 stripes", plan)
	}
	planCovers(t, plan, 1<<20, 4)
	for _, s := range plan {
		if s.N != 1<<18 {
			t.Errorf("stripe %v, want 256 KB each", s)
		}
	}
}

func TestEvenStripingRespectsMinStripe(t *testing.T) {
	// 16 KB with 4 KB minimum across 8 rails: only 4 stripes.
	plan := EvenStripes(16*1024, 8, 4*1024)
	if len(plan) != 4 {
		t.Fatalf("plan = %v, want 4 stripes of 4 KB", plan)
	}
	planCovers(t, plan, 16*1024, 8)
	// 6 KB: just one stripe (6/4 = 1).
	plan = EvenStripes(6*1024, 8, 4*1024)
	if len(plan) != 1 {
		t.Fatalf("plan = %v, want 1 stripe", plan)
	}
}

func TestEvenStripesRemainderSpread(t *testing.T) {
	plan := EvenStripes(10, 3, 1)
	planCovers(t, plan, 10, 3)
	if plan[0].N != 4 || plan[1].N != 3 || plan[2].N != 3 {
		t.Errorf("plan = %v, want sizes 4,3,3", plan)
	}
}

func TestEvenStripesProperty(t *testing.T) {
	f := func(size uint32, rails, minStripe uint8) bool {
		sz := int(size % (4 << 20))
		if sz == 0 {
			sz = 1
		}
		r := int(rails%8) + 1
		ms := int(minStripe) * 64
		plan := EvenStripes(sz, r, ms)
		off := 0
		maxN, minN := 0, sz+1
		for _, s := range plan {
			if s.Off != off || s.N <= 0 || s.Rail < 0 || s.Rail >= r {
				return false
			}
			off += s.N
			if s.N > maxN {
				maxN = s.N
			}
			if s.N < minN {
				minN = s.N
			}
		}
		// Exact cover, balanced within one byte, min-stripe respected
		// (single-stripe plans excepted).
		if off != sz || maxN-minN > 1 {
			return false
		}
		if len(plan) > 1 && ms > 0 && minN < ms {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEPCDispatchMatrix(t *testing.T) {
	p := New(EPC, 4096)
	const size = 1 << 20

	// Blocking bulk → striped across all rails.
	plan := p.PlanBulk(Blocking, size, 4, &ConnState{})
	if len(plan) != 4 {
		t.Errorf("blocking bulk plan = %v, want 4 stripes", plan)
	}
	planCovers(t, plan, size, 4)

	// Non-blocking bulk → whole message, round robin (copy: the plan slot
	// is reused by the next call on the same connection).
	st := &ConnState{}
	p1 := clonePlan(p.PlanBulk(NonBlocking, size, 4, st))
	p2 := clonePlan(p.PlanBulk(NonBlocking, size, 4, st))
	if len(p1) != 1 || len(p2) != 1 {
		t.Fatalf("non-blocking plans %v, %v: want whole messages", p1, p2)
	}
	if p2[0].Rail == p1[0].Rail {
		t.Error("non-blocking bulk should cycle rails")
	}

	// Collective bulk → striped despite being non-blocking calls (§3.2.2).
	plan = p.PlanBulk(Collective, size, 4, &ConnState{})
	if len(plan) != 4 {
		t.Errorf("collective bulk plan = %v, want 4 stripes", plan)
	}

	// Blocking eager → single fixed rail; non-blocking eager → cycles.
	st2 := &ConnState{}
	if a, b := p.PickEager(Blocking, 64, 4, st2), p.PickEager(Blocking, 64, 4, st2); a != b {
		t.Error("blocking eager should stay on one rail")
	}
	st3 := &ConnState{}
	if a, b := p.PickEager(NonBlocking, 64, 4, st3), p.PickEager(NonBlocking, 64, 4, st3); a == b {
		t.Error("non-blocking eager should cycle rails")
	}
}

func TestEPCWithSingleRailDegeneratesToOriginal(t *testing.T) {
	p := New(EPC, 4096)
	st := &ConnState{}
	for i := 0; i < 4; i++ {
		if r := p.PickEager(NonBlocking, 1024, 1, st); r != 0 {
			t.Fatalf("single-rail eager on rail %d", r)
		}
	}
	plan := p.PlanBulk(Blocking, 1<<20, 1, st)
	if len(plan) != 1 || plan[0].Rail != 0 {
		t.Errorf("single-rail plan = %v", plan)
	}
}

func TestWeightedStripesProportional(t *testing.T) {
	plan := WeightedStripes(1<<20, 2, 1024, []float64{3, 1})
	planCovers(t, plan, 1<<20, 2)
	if len(plan) != 2 {
		t.Fatalf("plan = %v", plan)
	}
	ratio := float64(plan[0].N) / float64(plan[1].N)
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("stripe ratio = %g, want ~3", ratio)
	}
}

func TestWeightedStripesDropsTinyShares(t *testing.T) {
	// 8 KB split 15:1 with 4 KB min: the 512-byte share is dropped.
	plan := WeightedStripes(8*1024, 2, 4*1024, []float64{15, 1})
	if len(plan) != 1 || plan[0].Rail != 0 {
		t.Fatalf("plan = %v, want single stripe on rail 0", plan)
	}
	planCovers(t, plan, 8*1024, 2)
}

func TestWeightedStripesDefaultsToEven(t *testing.T) {
	plan := WeightedStripes(1<<20, 4, 1024, nil)
	planCovers(t, plan, 1<<20, 4)
	if len(plan) != 4 {
		t.Fatalf("plan = %v, want 4 stripes", plan)
	}
}

func TestZeroSizePlans(t *testing.T) {
	for _, k := range []Kind{Original, Binding, RoundRobin, EvenStriping, EPC} {
		p := New(k, 4096)
		plan := p.PlanBulk(Blocking, 0, 4, &ConnState{})
		if len(plan) != 1 || plan[0].N != 0 {
			t.Errorf("%v zero-size plan = %v", k, plan)
		}
	}
}

func TestOriginalIsRailZero(t *testing.T) {
	p := New(Original, 4096)
	st := &ConnState{}
	if p.Name() != "original" {
		t.Errorf("Name = %q", p.Name())
	}
	if r := p.PickEager(NonBlocking, 1024, 1, st); r != 0 {
		t.Errorf("original eager rail = %d", r)
	}
	plan := p.PlanBulk(Blocking, 1<<20, 1, st)
	if len(plan) != 1 || plan[0].Rail != 0 {
		t.Errorf("original plan = %v", plan)
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	New(Kind(99), 0)
}

func TestAdaptivePolicyByDepth(t *testing.T) {
	p := New(Adaptive, 4096)
	if p.Name() != "adaptive" {
		t.Errorf("Name = %q", p.Name())
	}
	// Empty pipeline: stripes like EPC-blocking.
	st := &ConnState{Outstanding: 0}
	plan := p.PlanBulk(NonBlocking, 1<<20, 4, st)
	if len(plan) != 4 {
		t.Errorf("idle pipeline plan = %v, want 4 stripes", plan)
	}
	planCovers(t, plan, 1<<20, 4)
	// Deep pipeline: whole messages round robin.
	st = &ConnState{Outstanding: 3}
	p1 := clonePlan(p.PlanBulk(NonBlocking, 1<<20, 4, st))
	p2 := clonePlan(p.PlanBulk(NonBlocking, 1<<20, 4, st))
	if len(p1) != 1 || len(p2) != 1 || p1[0].Rail == p2[0].Rail {
		t.Errorf("deep pipeline plans %v, %v: want cycling whole messages", p1, p2)
	}
	// Eager placement follows the same rule.
	st = &ConnState{Outstanding: 0}
	if a, b := p.PickEager(NonBlocking, 64, 4, st), p.PickEager(NonBlocking, 64, 4, st); a != b {
		t.Error("idle eager should stay on the bound rail")
	}
	st = &ConnState{Outstanding: 5}
	if a, b := p.PickEager(NonBlocking, 64, 4, st), p.PickEager(NonBlocking, 64, 4, st); a == b {
		t.Error("deep eager should cycle rails")
	}
}

func TestPlanCacheReturnsEqualPlans(t *testing.T) {
	// Memoized striped plans must be byte-for-byte what the planner builds.
	p := New(EvenStriping, 4096)
	for _, size := range []int{32 << 10, 1 << 20, 32 << 10, 1 << 20} {
		got := p.PlanBulk(Blocking, size, 4, &ConnState{})
		want := EvenStripes(size, 4, 4096)
		if len(got) != len(want) {
			t.Fatalf("size %d: plan %v, want %v", size, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("size %d stripe %d: %v, want %v", size, i, got[i], want[i])
			}
		}
	}
}

func TestPlanCacheBounded(t *testing.T) {
	// A sweep over more distinct sizes than the cache bound must reset the
	// map rather than grow it without limit.
	p := New(EvenStriping, 1).(*stripingPolicy)
	for size := 1; size <= planCacheMax+100; size++ {
		p.PlanBulk(Blocking, size, 4, &ConnState{})
	}
	if n := len(p.cache.m); n > planCacheMax {
		t.Fatalf("cache grew to %d entries, bound is %d", n, planCacheMax)
	}
}

func TestSingleStripePlansUseScratch(t *testing.T) {
	// Whole-message plans are served from the connection's scratch slot:
	// no allocation, and the next call on the same conn reuses the slot.
	p := New(RoundRobin, 4096)
	st := &ConnState{}
	p1 := p.PlanBulk(NonBlocking, 1024, 4, st)
	p2 := p.PlanBulk(NonBlocking, 2048, 4, st)
	if &p1[0] != &p2[0] {
		t.Error("single-stripe plans on one conn should share the scratch slot")
	}
	if p2[0].N != 2048 {
		t.Errorf("scratch plan N = %d, want 2048", p2[0].N)
	}
	// Distinct connections have distinct slots.
	st2 := &ConnState{}
	q := p.PlanBulk(NonBlocking, 512, 4, st2)
	if &q[0] == &p2[0] {
		t.Error("different conns must not share scratch slots")
	}
}
