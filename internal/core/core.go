// Package core implements the paper's primary contribution: communication
// scheduling of MPI messages over multiple rails — multiple QPs per port,
// multiple ports, multiple HCAs — on the IBM 12x InfiniBand HCA.
//
// It provides the communication-pattern classes recognised by the ADI-layer
// communication marker (§3.3), the scheduling policies studied in §3.2
// (binding, round robin, even striping) plus the proposed EPC policy, and
// the stripe planner that divides rendezvous messages across rails.
package core

import "fmt"

// Class is the communication pattern of a message, as determined by the
// communication marker in the ADI layer (paper §3.3). EPC dispatches on it.
type Class int

// Communication classes.
const (
	// Blocking is point-to-point blocking communication: one message
	// outstanding between the pair, so intra-message parallelism
	// (striping) is the only way to engage several DMA engines.
	Blocking Class = iota
	// NonBlocking is point-to-point non-blocking communication: a window
	// of outstanding messages supplies inter-message parallelism, so
	// placing each whole message on the next rail avoids per-stripe costs.
	NonBlocking
	// Collective marks transfers issued from inside a collective
	// algorithm. The calls are non-blocking, but each algorithm step
	// completes before the next begins, so per-peer concurrency is ~1 and
	// striping is again what fills the engines (§3.2.2).
	Collective
)

func (c Class) String() string {
	switch c {
	case Blocking:
		return "blocking"
	case NonBlocking:
		return "non-blocking"
	case Collective:
		return "collective"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Stripe is one piece of a bulk-transfer plan: N bytes at offset Off of the
// message, carried on rail Rail.
type Stripe struct {
	Rail int
	Off  int
	N    int
}

// RailMask is a bitmask of dead rails on a connection. The zero value means
// every rail is healthy, so fault-free runs never pay for health checks.
// Rail indices ≥ 64 are treated as always healthy (no real configuration in
// the paper's design space comes close).
type RailMask uint64

// IsDown reports whether rail r is marked dead.
func (m RailMask) IsDown(r int) bool {
	return r >= 0 && r < 64 && m&(1<<uint(r)) != 0
}

// MarkDown records rail r as dead.
func (m *RailMask) MarkDown(r int) {
	if r >= 0 && r < 64 {
		*m |= 1 << uint(r)
	}
}

// MarkUp records rail r as healthy again.
func (m *RailMask) MarkUp(r int) {
	if r >= 0 && r < 64 {
		*m &^= 1 << uint(r)
	}
}

// NextLive returns the first healthy rail at or after from, searching
// cyclically over rails entries, or -1 if every rail is dead.
func (m RailMask) NextLive(from, rails int) int {
	if rails <= 0 {
		return -1
	}
	if from < 0 || from >= rails {
		from = 0
	}
	for k := 0; k < rails; k++ {
		r := from + k
		if r >= rails {
			r -= rails
		}
		if !m.IsDown(r) {
			return r
		}
	}
	return -1
}

// LiveCount reports how many of the first rails rails are healthy.
func (m RailMask) LiveCount(rails int) int {
	n := 0
	for r := 0; r < rails; r++ {
		if !m.IsDown(r) {
			n++
		}
	}
	return n
}

// LiveRails appends the healthy rail indices (ascending) to buf.
func (m RailMask) LiveRails(rails int, buf []int) []int {
	for r := 0; r < rails; r++ {
		if !m.IsDown(r) {
			buf = append(buf, r)
		}
	}
	return buf
}

// ConnState is the per-connection scheduling state a policy may read and
// update: the round-robin cursor, the bound rail, and the live
// outstanding-transfer count the ADI layer maintains.
type ConnState struct {
	// RR is the round-robin cursor: index of the next rail to use.
	RR int
	// Bound is the rail a binding policy pins this connection to.
	Bound int
	// Outstanding is the number of bulk transfers currently in flight on
	// this connection (maintained by the ADI layer; consumed by the
	// adaptive policy).
	Outstanding int

	// Dead is the connection's rail health mask (maintained by the ADI
	// layer under fault injection). Policies route around dead rails: a
	// binding rebinds to the next live rail, round robin skips dead ones,
	// and the striping planners re-plan over the survivors.
	Dead RailMask

	// Rates, when non-nil, is each rail's current link-rate scale relative
	// to the nominal rate (1.0 = healthy; the ADI layer refreshes it from
	// hca.Port.EffectiveRate before bulk planning). The weighted planner
	// multiplies its configured weights by it, so a chaos-degraded but
	// alive rail carries proportionally less traffic. nil means uniform —
	// the fault-free fast path, which keeps the memoized plan cache valid.
	Rates []float64

	// scratch backs whole-message (single-stripe) plans so the policies
	// that place one stripe per call return it without allocating.
	scratch [1]Stripe
}

// single returns a one-stripe plan covering the whole message, backed by the
// connection's scratch slot (valid until the next PlanBulk on this conn).
func (st *ConnState) single(rail, size int) []Stripe {
	st.scratch[0] = Stripe{Rail: rail, Off: 0, N: size}
	return st.scratch[:1]
}

// Policy decides rail placement for a connection's messages.
//
// PickEager places a message that travels whole (below the striping
// threshold). PlanBulk returns the stripe plan for a message at or above
// the threshold; plans cover the message exactly, in offset order.
//
// The returned plan is owned by the policy/connection: it is valid only
// until the next PlanBulk call on the same connection and must not be
// mutated or retained (plans are served from a memoization cache or a
// per-connection scratch slot so steady-state bulk loops allocate nothing).
type Policy interface {
	// Name is the policy's display name as used in the paper's figures.
	Name() string
	PickEager(c Class, size, rails int, st *ConnState) int
	PlanBulk(c Class, size, rails int, st *ConnState) []Stripe
}

// Kind enumerates the built-in policies.
type Kind int

// Built-in policy kinds. Original is the default single-rail MVAPICH
// configuration the paper compares against (1 QP per port, rail 0).
const (
	Original Kind = iota
	Binding
	RoundRobin
	EvenStriping
	WeightedStriping
	EPC
	// Adaptive is an extension beyond the paper: instead of the ADI
	// marker it inspects the connection's live outstanding-transfer
	// count — stripe when the pipeline is empty (nothing else will fill
	// the engines), round-robin whole messages when it is deep. EPC with
	// the marker approximates this statically; Adaptive measures it.
	Adaptive
)

func (k Kind) String() string {
	switch k {
	case Original:
		return "original"
	case Binding:
		return "binding"
	case RoundRobin:
		return "round robin"
	case EvenStriping:
		return "even striping"
	case WeightedStriping:
		return "weighted striping"
	case EPC:
		return "EPC"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New returns a policy instance of the given kind with the given minimum
// stripe size (bytes). Weighted striping takes equal weights; use
// NewWeighted for explicit ones.
func New(k Kind, minStripe int) Policy {
	switch k {
	case Original:
		return &bindingPolicy{name: "original"}
	case Binding:
		return &bindingPolicy{name: "binding"}
	case RoundRobin:
		return &roundRobinPolicy{}
	case EvenStriping:
		return &stripingPolicy{minStripe: minStripe}
	case WeightedStriping:
		return &weightedPolicy{minStripe: minStripe}
	case EPC:
		return &epcPolicy{minStripe: minStripe}
	case Adaptive:
		return &adaptivePolicy{minStripe: minStripe}
	default:
		panic(fmt.Sprintf("core: unknown policy kind %d", int(k)))
	}
}

// NewWeighted returns a weighted-striping policy that divides bulk messages
// in proportion to weights (one per rail; missing entries default to 1).
// It generalises even striping to heterogeneous rails (e.g. a 12x port
// paired with a 4x port), the extension discussed in the prior multi-rail
// work the paper builds on.
func NewWeighted(minStripe int, weights []float64) Policy {
	return &weightedPolicy{minStripe: minStripe, weights: weights}
}

// ---- plan memoization ----

// planCache memoizes stripe plans for the policy branches whose plan is a
// pure function of (size, rails): the policy's minStripe (and weights) are
// fixed at construction, so cached entries never go stale. Bulk benchmarks
// cycle through a handful of sizes, so steady state is all hits.
type planCache struct {
	m map[planKey][]Stripe
}

type planKey struct {
	size, rails int
	dead        RailMask
}

// planCacheMax bounds the cache; sweeping workloads with unbounded distinct
// sizes reset it rather than grow it forever.
const planCacheMax = 4096

func (c *planCache) get(size, rails int, dead RailMask) ([]Stripe, bool) {
	p, ok := c.m[planKey{size, rails, dead}]
	return p, ok
}

func (c *planCache) put(size, rails int, dead RailMask, p []Stripe) {
	if c.m == nil || len(c.m) >= planCacheMax {
		c.m = make(map[planKey][]Stripe)
	}
	c.m[planKey{size, rails, dead}] = p
}

// maskedEven is EvenStripes restricted to the live rails of dead: the plan
// is computed over the survivor count and remapped onto the surviving rail
// indices. With every rail dead it plans as if all were live — the ADI layer
// parks those posts until a rail recovers.
func maskedEven(size, rails, minStripe int, dead RailMask) []Stripe {
	if dead == 0 {
		return EvenStripes(size, rails, minStripe)
	}
	live := dead.LiveRails(rails, make([]int, 0, rails))
	if len(live) == 0 {
		return EvenStripes(size, rails, minStripe)
	}
	pl := EvenStripes(size, len(live), minStripe)
	for i := range pl {
		pl[i].Rail = live[pl[i].Rail]
	}
	return pl
}

// maskedWeighted is WeightedStripes over the surviving rails, preserving
// each survivor's configured weight.
func maskedWeighted(size, rails, minStripe int, weights []float64, dead RailMask) []Stripe {
	if dead == 0 {
		return WeightedStripes(size, rails, minStripe, weights)
	}
	live := dead.LiveRails(rails, make([]int, 0, rails))
	if len(live) == 0 {
		return WeightedStripes(size, rails, minStripe, weights)
	}
	w := make([]float64, len(live))
	for i, r := range live {
		w[i] = 1
		if r < len(weights) && weights[r] > 0 {
			w[i] = weights[r]
		}
	}
	pl := WeightedStripes(size, len(live), minStripe, w)
	for i := range pl {
		pl[i].Rail = live[pl[i].Rail]
	}
	return pl
}

// maskedWeightedRates is maskedWeighted with each rail's configured weight
// scaled by its current link-rate factor, so partially degraded rails keep a
// proportionally smaller share instead of their full one. Rails with a
// missing or non-positive rate scale count as healthy (scale 1).
func maskedWeightedRates(size, rails, minStripe int, weights, rates []float64, dead RailMask) []Stripe {
	w := make([]float64, rails)
	for i := 0; i < rails; i++ {
		w[i] = 1
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
		if i < len(rates) && rates[i] > 0 {
			w[i] *= rates[i]
		}
	}
	return maskedWeighted(size, rails, minStripe, w, dead)
}

// ---- binding ----

type bindingPolicy struct{ name string }

func (p *bindingPolicy) Name() string { return p.name }

func (p *bindingPolicy) PickEager(_ Class, _, rails int, st *ConnState) int {
	return clampRail(st.Bound, rails, st.Dead)
}

func (p *bindingPolicy) PlanBulk(_ Class, size, rails int, st *ConnState) []Stripe {
	return st.single(clampRail(st.Bound, rails, st.Dead), size)
}

// ---- round robin ----

type roundRobinPolicy struct{}

func (*roundRobinPolicy) Name() string { return "round robin" }

func (*roundRobinPolicy) PickEager(_ Class, _, rails int, st *ConnState) int {
	return nextRR(st, rails)
}

func (*roundRobinPolicy) PlanBulk(_ Class, size, rails int, st *ConnState) []Stripe {
	// The whole message on the next rail (paper §3.2.1: round robin "uses
	// the available QPs one-by-one in a circular fashion").
	return st.single(nextRR(st, rails), size)
}

// ---- even striping ----

type stripingPolicy struct {
	minStripe int
	cache     planCache
}

func (*stripingPolicy) Name() string { return "even striping" }

func (p *stripingPolicy) PickEager(_ Class, _, rails int, st *ConnState) int {
	// Below the striping threshold the prior-work striping design sends
	// on the connection's primary rail.
	return clampRail(st.Bound, rails, st.Dead)
}

func (p *stripingPolicy) PlanBulk(_ Class, size, rails int, st *ConnState) []Stripe {
	if pl, ok := p.cache.get(size, rails, st.Dead); ok {
		return pl
	}
	pl := maskedEven(size, rails, p.minStripe, st.Dead)
	p.cache.put(size, rails, st.Dead, pl)
	return pl
}

// ---- weighted striping ----

type weightedPolicy struct {
	minStripe int
	weights   []float64
	cache     planCache
}

func (*weightedPolicy) Name() string { return "weighted striping" }

func (p *weightedPolicy) PickEager(_ Class, _, rails int, st *ConnState) int {
	return clampRail(st.Bound, rails, st.Dead)
}

func (p *weightedPolicy) PlanBulk(_ Class, size, rails int, st *ConnState) []Stripe {
	if st.Rates != nil {
		// Degraded fabric: plans depend on the momentary rail rates, so the
		// (size, rails, dead)-keyed cache cannot serve them. Compute fresh.
		return maskedWeightedRates(size, rails, p.minStripe, p.weights, st.Rates, st.Dead)
	}
	if pl, ok := p.cache.get(size, rails, st.Dead); ok {
		return pl
	}
	pl := maskedWeighted(size, rails, p.minStripe, p.weights, st.Dead)
	p.cache.put(size, rails, st.Dead, pl)
	return pl
}

// ---- EPC ----

// epcPolicy is the paper's Enhanced Point-to-point and Collective policy
// (§3.2): striping for blocking transfers, round robin for non-blocking
// point-to-point, striping for collective transfers even though they are
// issued as non-blocking calls.
type epcPolicy struct {
	minStripe int
	cache     planCache
}

func (*epcPolicy) Name() string { return "EPC" }

func (p *epcPolicy) PickEager(c Class, size, rails int, st *ConnState) int {
	switch c {
	case Blocking:
		// One outstanding message; cycling rails buys nothing for
		// latency, so stay on the primary rail (paper Fig. 3 setup).
		return clampRail(st.Bound, rails, st.Dead)
	default:
		// Non-blocking and collective eager messages cycle rails to
		// engage multiple engines across the window (Fig. 5).
		return nextRR(st, rails)
	}
}

func (p *epcPolicy) PlanBulk(c Class, size, rails int, st *ConnState) []Stripe {
	switch c {
	case NonBlocking:
		return st.single(nextRR(st, rails), size)
	default: // Blocking and Collective stripe.
		if pl, ok := p.cache.get(size, rails, st.Dead); ok {
			return pl
		}
		pl := maskedEven(size, rails, p.minStripe, st.Dead)
		p.cache.put(size, rails, st.Dead, pl)
		return pl
	}
}

// ---- adaptive (extension) ----

// adaptiveDepth is the outstanding-transfer depth at which the adaptive
// policy stops striping: with this many messages already in flight the
// engines are busy without intra-message parallelism.
const adaptiveDepth = 2

type adaptivePolicy struct {
	minStripe int
	cache     planCache
}

func (*adaptivePolicy) Name() string { return "adaptive" }

func (p *adaptivePolicy) PickEager(_ Class, _, rails int, st *ConnState) int {
	if st.Outstanding >= adaptiveDepth {
		return nextRR(st, rails)
	}
	return clampRail(st.Bound, rails, st.Dead)
}

func (p *adaptivePolicy) PlanBulk(_ Class, size, rails int, st *ConnState) []Stripe {
	if st.Outstanding >= adaptiveDepth {
		return st.single(nextRR(st, rails), size)
	}
	if pl, ok := p.cache.get(size, rails, st.Dead); ok {
		return pl
	}
	pl := maskedEven(size, rails, p.minStripe, st.Dead)
	p.cache.put(size, rails, st.Dead, pl)
	return pl
}

// ---- planners ----

// EvenStripes divides size bytes equally across up to rails stripes, never
// cutting a stripe below minStripe (the assembly/disassembly cost guard).
// The remainder is spread one byte at a time over the leading stripes so
// stripe sizes differ by at most one.
func EvenStripes(size, rails, minStripe int) []Stripe {
	if size <= 0 {
		return []Stripe{{Rail: 0, Off: 0, N: size}}
	}
	k := rails
	if minStripe > 0 && size/k < minStripe {
		k = size / minStripe
		if k < 1 {
			k = 1
		}
	}
	if k > size {
		k = size // never emit zero-byte stripes for tiny unguarded sizes
	}
	base, rem := size/k, size%k
	out := make([]Stripe, 0, k)
	off := 0
	for i := 0; i < k; i++ {
		n := base
		if i < rem {
			n++
		}
		out = append(out, Stripe{Rail: i, Off: off, N: n})
		off += n
	}
	return out
}

// WeightedStripes divides size bytes across rails in proportion to weights.
// Rails whose share would fall below minStripe are dropped and their share
// redistributed. Missing or non-positive weights default to 1.
func WeightedStripes(size, rails, minStripe int, weights []float64) []Stripe {
	if size <= 0 {
		return []Stripe{{Rail: 0, Off: 0, N: size}}
	}
	w := make([]float64, rails)
	var sum float64
	for i := 0; i < rails; i++ {
		w[i] = 1
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
		sum += w[i]
	}
	// Drop rails until every remaining share clears minStripe.
	active := make([]int, 0, rails)
	for i := 0; i < rails; i++ {
		active = append(active, i)
	}
	for len(active) > 1 {
		smallest, idx := -1, -1
		for j, r := range active {
			share := int(float64(size) * w[r] / sum)
			if share < minStripe && (idx == -1 || share < smallest) {
				smallest, idx = share, j
			}
		}
		if idx == -1 {
			break
		}
		sum -= w[active[idx]]
		active = append(active[:idx], active[idx+1:]...)
	}
	out := make([]Stripe, 0, len(active))
	off := 0
	for j, r := range active {
		var n int
		if j == len(active)-1 {
			n = size - off
		} else {
			n = int(float64(size) * w[r] / sum)
		}
		if n == 0 {
			continue // truncation artifact on tiny sizes; neighbours absorb it
		}
		out = append(out, Stripe{Rail: r, Off: off, N: n})
		off += n
	}
	if len(out) == 0 {
		return []Stripe{{Rail: active[0], Off: 0, N: size}}
	}
	return out
}

// clampRail folds an out-of-range rail to 0, then steps off a dead rail to
// the next live one (a bound connection rebinds around failures).
func clampRail(r, rails int, dead RailMask) int {
	if r < 0 || r >= rails {
		r = 0
	}
	if dead != 0 {
		if lr := dead.NextLive(r, rails); lr >= 0 {
			return lr
		}
	}
	return r
}

func nextRR(st *ConnState, rails int) int {
	r := st.RR % rails
	if r < 0 {
		r = 0
	}
	if st.Dead != 0 {
		if lr := st.Dead.NextLive(r, rails); lr >= 0 {
			r = lr
		}
	}
	st.RR = (r + 1) % rails
	return r
}
