package core

// Lane decomposition (Träff-style multi-lane collectives): instead of
// striping each message across rails at the transport layer, a collective
// splits its payload into lane segments and runs an independent
// sub-collective per lane, pinned to one rail. The segment STRUCTURE is a
// pure function of (size, lanes, minChunk) — every rank computes the same
// partition from topology constants, so send/recv matching never depends
// on rail health, which updates asynchronously per endpoint under faults.
// Rail health only affects STEERING: a dead lane's traffic steps to the
// next live rail (the degraded-lane rule, DESIGN.md §15).

// LaneSeg is one lane's contiguous segment of a collective payload.
type LaneSeg struct {
	Lane int // lane index, 0..L-1 of the configured partition
	Rail int // rail the lane's traffic steers to (== Lane unless re-routed)
	Off  int
	N    int
}

// LaneSplit partitions size bytes into at most lanes contiguous segments.
// Segment boundaries fall on 8-byte element boundaries (the combiners'
// granularity) with the tail absorbed by the last lane, and no segment is
// cut below minChunk, collapsing the lane count for small payloads. The
// Lane/Off/N structure ignores dead: the mask only re-routes each
// segment's Rail to the next live one (or leaves it in place when every
// rail is dead, matching the planners' parking behaviour). size <= 0
// degenerates to a single empty segment, mirroring EvenStripes.
func LaneSplit(size, lanes, minChunk int, dead RailMask) []LaneSeg {
	if lanes < 1 {
		lanes = 1
	}
	if size <= 0 {
		return []LaneSeg{{Lane: 0, Rail: clampRail(0, lanes, dead), Off: 0, N: size}}
	}
	units := size / 8 // whole 8-byte elements; the tail (< 8 bytes) rides the last lane
	k := 1
	if units >= 1 {
		k = lanes
		if k > units {
			k = units
		}
		if minChunk > 0 {
			mc := (minChunk + 7) / 8
			if m := units / mc; m < k {
				k = m
			}
			if k < 1 {
				k = 1
			}
		}
	}
	per, rem := units/k, units%k
	out := make([]LaneSeg, 0, k)
	off := 0
	for i := 0; i < k; i++ {
		n := per * 8
		if i < rem {
			n += 8
		}
		if i == k-1 {
			n = size - off
		}
		out = append(out, LaneSeg{Lane: i, Rail: clampRail(i, lanes, dead), Off: off, N: n})
		off += n
	}
	return out
}

// LaneRail maps a lane onto a connection's rails: out-of-range lanes fold
// to rail 0 and dead rails step cyclically to the next live one (or stay
// put when all are dead — the ADI layer parks the work until recovery).
// This is the steering half of the degraded-lane rule: every endpoint
// applies it against its own current mask at post time, while the payload
// partition stays mask-independent.
func LaneRail(lane, rails int, dead RailMask) int {
	return clampRail(lane, rails, dead)
}

// LanePlan returns a single whole-message stripe pinned to the lane's rail
// (re-routed off dead rails by LaneRail), backed by the connection's
// scratch slot — lane-hinted bulk transfers bypass the policy's planner.
func (st *ConnState) LanePlan(lane, rails, size int) []Stripe {
	return st.single(LaneRail(lane, rails, st.Dead), size)
}
