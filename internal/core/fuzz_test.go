package core

// Native fuzz targets for the stripe planners. The invariants fuzzed here
// are exactly the Policy contract the ADI layer relies on: plans cover the
// message exactly and in offset order, never contain zero- or negative-size
// stripes, respect the minimum stripe size whenever the plan is split, and
// only name rails that exist.

import "testing"

func checkPlan(t *testing.T, pl []Stripe, size, rails, minStripe int, weighted bool) {
	t.Helper()
	if len(pl) == 0 {
		t.Fatalf("empty plan for size=%d rails=%d minStripe=%d", size, rails, minStripe)
	}
	if len(pl) > rails {
		t.Fatalf("plan has %d stripes for %d rails", len(pl), rails)
	}
	off := 0
	lastRail := -1
	for i, s := range pl {
		if s.N <= 0 {
			t.Fatalf("stripe %d has non-positive size %d (size=%d rails=%d min=%d plan=%v)",
				i, s.N, size, rails, minStripe, pl)
		}
		if s.Off != off {
			t.Fatalf("stripe %d offset %d, want %d (plan=%v)", i, s.Off, off, pl)
		}
		if s.Rail < 0 || s.Rail >= rails {
			t.Fatalf("stripe %d rail %d out of range [0,%d)", i, s.Rail, rails)
		}
		if s.Rail <= lastRail {
			t.Fatalf("stripe %d rail %d not increasing after %d (plan=%v)", i, s.Rail, lastRail, pl)
		}
		lastRail = s.Rail
		if len(pl) > 1 && minStripe > 0 && s.N < minStripe && !weighted {
			t.Fatalf("stripe %d size %d below minStripe %d in split plan %v", i, s.N, minStripe, pl)
		}
		off += s.N
	}
	if off != size {
		t.Fatalf("plan covers %d bytes, want %d (plan=%v)", off, size, pl)
	}
}

func boundFuzzArgs(size, rails, minStripe int) (int, int, int) {
	size = size%(1<<24) + 1
	if size < 1 {
		size = 1
	}
	rails = rails%16 + 1
	if rails < 1 {
		rails = 1
	}
	minStripe %= 1 << 20
	if minStripe < 0 {
		minStripe = -minStripe
	}
	return size, rails, minStripe
}

func FuzzEvenStripes(f *testing.F) {
	f.Add(1, 1, 0)
	f.Add(3, 4, 0)
	f.Add(256<<10, 4, 4096)
	f.Add(16384, 8, 4096)
	f.Add(5, 16, 1)
	f.Fuzz(func(t *testing.T, size, rails, minStripe int) {
		size, rails, minStripe = boundFuzzArgs(size, rails, minStripe)
		pl := EvenStripes(size, rails, minStripe)
		checkPlan(t, pl, size, rails, minStripe, false)
		// Even split: stripe sizes differ by at most one byte.
		minN, maxN := pl[0].N, pl[0].N
		for _, s := range pl {
			if s.N < minN {
				minN = s.N
			}
			if s.N > maxN {
				maxN = s.N
			}
		}
		if maxN-minN > 1 {
			t.Fatalf("uneven split: stripe sizes range [%d,%d] (plan=%v)", minN, maxN, pl)
		}
	})
}

func FuzzWeightedStripes(f *testing.F) {
	f.Add(1, 1, 0, uint64(0))
	f.Add(3, 4, 0, uint64(0x0102030405060708))
	f.Add(256<<10, 4, 4096, uint64(0xff01ff01))
	f.Add(7, 16, 1, uint64(0x8080808080808080))
	f.Fuzz(func(t *testing.T, size, rails, minStripe int, wbits uint64) {
		size, rails, minStripe = boundFuzzArgs(size, rails, minStripe)
		// Derive up to 8 weights from the fuzzed bits; zero bytes exercise
		// the default-to-1 path.
		weights := make([]float64, rails)
		for i := range weights {
			weights[i] = float64(byte(wbits >> (8 * (i % 8))))
		}
		pl := WeightedStripes(size, rails, minStripe, weights)
		checkPlan(t, pl, size, rails, minStripe, true)
		// Non-final stripes of a split plan must clear minStripe (the final
		// one absorbs the remainder and may only exceed its share).
		for i, s := range pl {
			if i < len(pl)-1 && minStripe > 0 && s.N < minStripe {
				t.Fatalf("stripe %d size %d below minStripe %d (plan=%v)", i, s.N, minStripe, pl)
			}
		}
	})
}
