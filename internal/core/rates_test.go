package core

import (
	"testing"
)

func railBytes(pl []Stripe, rails int) []int {
	out := make([]int, rails)
	for _, s := range pl {
		out[s.Rail] += s.N
	}
	return out
}

// TestWeightedRatesProportions pins the partial-degradation contract: with
// rail 1 running at half rate, the rate-weighted plan gives rail 0 twice the
// bytes of rail 1 (within min-stripe rounding).
func TestWeightedRatesProportions(t *testing.T) {
	const size = 384 * 1024
	pl := maskedWeightedRates(size, 2, 4096, nil, []float64{1, 0.5}, 0)
	got := railBytes(pl, 2)
	if got[0]+got[1] != size {
		t.Fatalf("plan covers %d bytes, want %d", got[0]+got[1], size)
	}
	ratio := float64(got[0]) / float64(got[1])
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("rail split %d:%d (ratio %.2f), want ~2:1 for a 2:1 rate split", got[0], got[1], ratio)
	}
}

// TestWeightedRatesComposesWithWeightsAndDead checks that rate scaling
// multiplies the configured weights and still respects the dead-rail mask.
func TestWeightedRatesComposesWithWeightsAndDead(t *testing.T) {
	const size = 256 * 1024
	// Weights 3:1 on rails {0,1}, rail 0 degraded to 1/3 rate -> effective
	// 1:1 split.
	pl := maskedWeightedRates(size, 2, 4096, []float64{3, 1}, []float64{1.0 / 3.0, 1}, 0)
	got := railBytes(pl, 2)
	ratio := float64(got[0]) / float64(got[1])
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("rail split %d:%d (ratio %.2f), want ~1:1", got[0], got[1], ratio)
	}
	// With rail 0 dead, everything lands on rail 1 regardless of rates.
	var dead RailMask
	dead.MarkDown(0)
	pl = maskedWeightedRates(size, 2, 4096, nil, []float64{1, 0.25}, dead)
	for _, s := range pl {
		if s.Rail != 1 {
			t.Fatalf("stripe on dead rail 0: %+v", s)
		}
	}
}

// TestWeightedPolicyRatesBypassCache pins the memoization contract: a nil
// Rates vector uses the (size, rails, dead)-keyed plan cache; a non-nil one
// must compute a fresh rate-scaled plan, not serve the cached uniform plan.
func TestWeightedPolicyRatesBypassCache(t *testing.T) {
	p := New(WeightedStriping, 4096)
	const size = 384 * 1024
	uniform := p.PlanBulk(Blocking, size, 2, &ConnState{})
	degraded := p.PlanBulk(Blocking, size, 2, &ConnState{Rates: []float64{1, 0.5}})
	ub, db := railBytes(uniform, 2), railBytes(degraded, 2)
	if ub[0] != ub[1] {
		t.Fatalf("uniform weighted plan uneven: %v", ub)
	}
	if db[0] == db[1] {
		t.Errorf("degraded plan equals uniform plan %v: Rates ignored (stale cache hit?)", db)
	}
	// And the cache itself must stay uncontaminated by the degraded call.
	again := p.PlanBulk(Blocking, size, 2, &ConnState{})
	ab := railBytes(again, 2)
	if ab[0] != ab[1] {
		t.Errorf("uniform plan after degraded call uneven %v: cache contaminated", ab)
	}
}
