package core

// Lane-partition invariants: the lane split must tile the payload exactly
// with 8-byte-aligned boundaries, collapse the lane count rather than cut a
// segment below minChunk, keep the Lane/Off/N structure independent of the
// dead-rail mask (the degraded-lane rule: masks steer, never re-partition),
// and re-route every dead lane's Rail to a live one when one exists.

import "testing"

// checkLaneSplit verifies every LaneSplit invariant, including structural
// identity with the mask-free reference partition.
func checkLaneSplit(t *testing.T, segs []LaneSeg, size, lanes, minChunk int, dead RailMask) {
	t.Helper()
	if len(segs) == 0 {
		t.Fatalf("empty lane split for size=%d lanes=%d minChunk=%d", size, lanes, minChunk)
	}
	if len(segs) > lanes && lanes >= 1 {
		t.Fatalf("%d segments for %d lanes", len(segs), lanes)
	}
	if size <= 0 {
		if len(segs) != 1 || segs[0].Off != 0 || segs[0].N != size {
			t.Fatalf("size=%d: want one degenerate segment, got %v", size, segs)
		}
		return
	}
	off := 0
	for i, sg := range segs {
		if sg.Lane != i {
			t.Fatalf("segment %d has lane %d (segs=%v)", i, sg.Lane, segs)
		}
		if sg.Off != off {
			t.Fatalf("segment %d offset %d, want %d (gap/overlap; segs=%v)", i, sg.Off, off, segs)
		}
		if sg.Off%8 != 0 {
			t.Fatalf("segment %d offset %d not 8-byte aligned (segs=%v)", i, sg.Off, segs)
		}
		if sg.N <= 0 {
			t.Fatalf("segment %d has non-positive size %d (segs=%v)", i, sg.N, segs)
		}
		if len(segs) > 1 && minChunk > 0 && sg.N < minChunk {
			t.Fatalf("segment %d size %d below minChunk %d in split partition %v", i, sg.N, minChunk, segs)
		}
		if sg.Rail < 0 || sg.Rail >= lanes {
			t.Fatalf("segment %d rail %d out of range [0,%d)", i, sg.Rail, lanes)
		}
		switch {
		case dead == 0:
			if sg.Rail != sg.Lane {
				t.Fatalf("segment %d steered to rail %d with no dead rails", i, sg.Rail)
			}
		case dead.NextLive(0, lanes) >= 0:
			if dead.IsDown(sg.Rail) {
				t.Fatalf("segment %d steered to dead rail %d (dead=%b)", i, sg.Rail, dead)
			}
			if want := dead.NextLive(sg.Lane, lanes); sg.Rail != want {
				t.Fatalf("segment %d rail %d, want next-live %d (dead=%b)", i, sg.Rail, want, dead)
			}
		default:
			// Every rail dead: the lane keeps its rail and the ADI layer
			// parks the traffic until a recovery.
			if sg.Rail != sg.Lane {
				t.Fatalf("segment %d rail %d, want parked lane %d under all-dead mask", i, sg.Rail, sg.Lane)
			}
		}
		off += sg.N
	}
	if off != size {
		t.Fatalf("partition covers %d bytes, want %d (segs=%v)", off, size, segs)
	}

	// Structure is a pure function of (size, lanes, minChunk): the mask
	// must not change Lane/Off/N, only Rail.
	flat := LaneSplit(size, lanes, minChunk, 0)
	if len(flat) != len(segs) {
		t.Fatalf("mask changed segment count: %d vs flat %d", len(segs), len(flat))
	}
	for i := range segs {
		if segs[i].Lane != flat[i].Lane || segs[i].Off != flat[i].Off || segs[i].N != flat[i].N {
			t.Fatalf("mask changed segment %d structure: %+v vs flat %+v", i, segs[i], flat[i])
		}
	}

	// Reassembly against the flat reference: every byte of the payload is
	// owned by exactly one segment.
	owner := make([]int, size)
	for i := range owner {
		owner[i] = -1
	}
	for i, sg := range segs {
		for b := sg.Off; b < sg.Off+sg.N; b++ {
			if owner[b] != -1 {
				t.Fatalf("byte %d owned by segments %d and %d", b, owner[b], i)
			}
			owner[b] = i
		}
	}
	for b, o := range owner {
		if o == -1 {
			t.Fatalf("byte %d not covered by any segment", b)
		}
	}
}

func TestLaneSplitEdges(t *testing.T) {
	cases := []struct {
		size, lanes, minChunk int
		dead                  RailMask
		wantLanes             int
	}{
		{size: 0, lanes: 4, minChunk: 256, wantLanes: 1},
		{size: -3, lanes: 4, minChunk: 0, wantLanes: 1},
		{size: 1, lanes: 4, minChunk: 0, wantLanes: 1},  // below one element
		{size: 7, lanes: 8, minChunk: 0, wantLanes: 1},  // tail only
		{size: 8, lanes: 4, minChunk: 0, wantLanes: 1},  // one element
		{size: 24, lanes: 4, minChunk: 0, wantLanes: 3}, // n < 8*L
		{size: 768, lanes: 4, minChunk: 256, wantLanes: 3},
		{size: 32 << 10, lanes: 4, minChunk: 4096, wantLanes: 4},
		{size: 32<<10 + 5, lanes: 4, minChunk: 4096, wantLanes: 4}, // n % L != 0, odd tail
		{size: 1 << 20, lanes: 12, minChunk: 4096, wantLanes: 12},
		{size: 4096, lanes: 4, minChunk: 4096, wantLanes: 1}, // min-chunk collapse
		{size: 8192, lanes: 4, minChunk: 4096, dead: 0b0010, wantLanes: 2},
		{size: 64 << 10, lanes: 4, minChunk: 4096, dead: 0b1111, wantLanes: 4}, // all dead: park
	}
	for _, tc := range cases {
		segs := LaneSplit(tc.size, tc.lanes, tc.minChunk, tc.dead)
		checkLaneSplit(t, segs, tc.size, tc.lanes, tc.minChunk, tc.dead)
		if tc.size > 0 && len(segs) != tc.wantLanes {
			t.Errorf("LaneSplit(%d,%d,%d): %d lanes, want %d (%v)",
				tc.size, tc.lanes, tc.minChunk, len(segs), tc.wantLanes, segs)
		}
	}
}

func TestLaneRailSteering(t *testing.T) {
	var dead RailMask
	dead.MarkDown(1)
	if r := LaneRail(1, 4, dead); r != 2 {
		t.Fatalf("lane 1 with rail 1 dead steered to %d, want 2", r)
	}
	if r := LaneRail(3, 4, dead); r != 3 {
		t.Fatalf("healthy lane 3 steered to %d, want 3", r)
	}
	if r := LaneRail(7, 4, 0); r != 0 {
		t.Fatalf("out-of-range lane folded to %d, want 0", r)
	}
	all := RailMask(0b1111)
	if r := LaneRail(2, 4, all); r != 2 {
		t.Fatalf("all-dead lane 2 parked on %d, want 2", r)
	}
	var st ConnState
	st.Dead.MarkDown(0)
	pl := st.LanePlan(0, 4, 1<<16)
	if len(pl) != 1 || pl[0].Rail != 1 || pl[0].Off != 0 || pl[0].N != 1<<16 {
		t.Fatalf("LanePlan = %v, want single re-routed stripe on rail 1", pl)
	}
}

func FuzzLanePartition(f *testing.F) {
	f.Add(1, 1, 0, uint64(0))
	f.Add(32<<10, 4, 4096, uint64(0))
	f.Add(768, 4, 256, uint64(0b0010))
	f.Add(7, 8, 0, uint64(1))
	f.Add(1<<20, 16, 4096, uint64(0xFFFE))
	f.Add(24, 4, 0, uint64(0b1111))
	f.Fuzz(func(t *testing.T, size, lanes, minChunk int, deadBits uint64) {
		size, lanes, minChunk = boundFuzzArgs(size, lanes, minChunk)
		// Only mask bits that name real lanes; higher bits are meaningless.
		dead := RailMask(deadBits) & (1<<uint(lanes) - 1)
		segs := LaneSplit(size, lanes, minChunk, dead)
		checkLaneSplit(t, segs, size, lanes, minChunk, dead)
	})
}
