package core

import "testing"

func TestRailMaskBasics(t *testing.T) {
	var m RailMask
	if m.IsDown(0) || m.LiveCount(4) != 4 {
		t.Fatalf("zero mask must be all-live")
	}
	m.MarkDown(1)
	m.MarkDown(3)
	if !m.IsDown(1) || !m.IsDown(3) || m.IsDown(0) || m.IsDown(2) {
		t.Fatalf("mask state wrong: %b", m)
	}
	if got := m.LiveCount(4); got != 2 {
		t.Fatalf("LiveCount = %d, want 2", got)
	}
	if got := m.NextLive(1, 4); got != 2 {
		t.Fatalf("NextLive(1,4) = %d, want 2", got)
	}
	if got := m.NextLive(3, 4); got != 0 {
		t.Fatalf("NextLive(3,4) = %d, want 0 (cyclic)", got)
	}
	if got := m.LiveRails(4, nil); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("LiveRails = %v, want [0 2]", got)
	}
	m.MarkUp(1)
	if m.IsDown(1) {
		t.Fatalf("MarkUp did not clear rail 1")
	}
	// All dead → NextLive reports -1.
	var all RailMask
	all.MarkDown(0)
	all.MarkDown(1)
	if got := all.NextLive(0, 2); got != -1 {
		t.Fatalf("NextLive over all-dead mask = %d, want -1", got)
	}
	// Out-of-range indices are ignored / always healthy.
	all.MarkDown(100)
	if all.IsDown(100) {
		t.Fatalf("rail ≥64 must read healthy")
	}
}

func TestMaskedPlansRemapOntoSurvivors(t *testing.T) {
	var dead RailMask
	dead.MarkDown(1)
	st := &ConnState{Dead: dead}
	p := New(EvenStriping, 1024).(*stripingPolicy)
	pl := p.PlanBulk(Blocking, 64<<10, 4, st)
	off := 0
	for _, s := range pl {
		if s.Rail == 1 {
			t.Fatalf("plan uses dead rail 1: %v", pl)
		}
		if s.Off != off {
			t.Fatalf("non-contiguous plan: %v", pl)
		}
		off += s.N
	}
	if off != 64<<10 {
		t.Fatalf("plan covers %d, want %d", off, 64<<10)
	}
	if len(pl) != 3 {
		t.Fatalf("expected 3 survivor stripes, got %v", pl)
	}
	// Binding rebinds off its dead rail.
	st2 := &ConnState{Bound: 1, Dead: dead}
	b := New(Binding, 0)
	if r := b.PickEager(Blocking, 512, 4, st2); r != 2 {
		t.Fatalf("binding picked rail %d, want rebind to 2", r)
	}
	// Round robin never lands on the dead rail.
	rr := New(RoundRobin, 0)
	for i := 0; i < 8; i++ {
		if r := rr.PickEager(NonBlocking, 512, 4, st2); r == 1 {
			t.Fatalf("round robin picked dead rail 1 at step %d", i)
		}
	}
}
