package buf

import (
	"strings"
	"testing"
)

// TestAuditNamesLeakSites pins the leak-report format: outstanding views
// aggregate by owner tag with the earliest allocation time, sorted by tag,
// and released views drop out of the report.
func TestAuditNamesLeakSites(t *testing.T) {
	var now int64
	p := &Pool{}
	p.EnableAudit(func() int64 { return now })

	now = 10
	a := p.GetTagged(64, "eager")
	now = 20
	b := p.GetTagged(64, "eager")
	now = 30
	c := p.WrapTagged(make([]byte, 16), "rndv-owner")

	rep := p.LiveReport()
	if rep != "eager x2 (first at t=10); rndv-owner x1 (first at t=30)" {
		t.Errorf("report = %q", rep)
	}

	a.Release()
	c.Release()
	rep = p.LiveReport()
	if rep != "eager x1 (first at t=20)" {
		t.Errorf("after releases: report = %q", rep)
	}

	b.Release()
	if rep := p.LiveReport(); rep != "" {
		t.Errorf("after full release: report = %q, want empty", rep)
	}
	if p.Live() != 0 {
		t.Errorf("live = %d, want 0", p.Live())
	}
}

// TestAuditUntaggedDefaults checks plain Get/Wrap still land in the report
// (as "?") when auditing is on, so an untagged path cannot hide a leak.
func TestAuditUntaggedDefaults(t *testing.T) {
	p := &Pool{}
	p.EnableAudit(nil) // nil clock: times report 0
	v := p.Get(8)
	w := p.Wrap(make([]byte, 8))
	rep := p.LiveReport()
	if !strings.Contains(rep, "? x2 (first at t=0)") {
		t.Errorf("report = %q, want untagged bucket", rep)
	}
	v.Release()
	w.Release()
}

// TestAuditOffIsFree checks the off state: no report, and tagged variants
// still hand out working views.
func TestAuditOffIsFree(t *testing.T) {
	p := &Pool{}
	v := p.GetTagged(32, "eager")
	if v.Len() != 32 {
		t.Fatalf("len = %d", v.Len())
	}
	if rep := p.LiveReport(); rep != "" {
		t.Errorf("auditing off: report = %q, want empty", rep)
	}
	v.Release()
}
