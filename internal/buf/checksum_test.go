package buf

import (
	"hash/crc32"
	"testing"
)

func TestSumFlippedOutOfRangeIsIdentity(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	want := Sum(b)
	for _, off := range []int{-1, len(b), len(b) + 7} {
		if got := SumFlipped(b, off, 0xFF); got != want {
			t.Errorf("off=%d: SumFlipped=%#x, want the clean Sum %#x", off, got, want)
		}
	}
	if got := SumFlipped(b, 2, 0); got != want {
		t.Errorf("mask=0: SumFlipped=%#x, want the clean Sum %#x", got, want)
	}
}

// FuzzChunkChecksum differentially checks the incremental flipped checksum
// against the flat reference: materialize the corrupt image, checksum it
// whole, and require SumFlipped to agree byte for byte. A corrupt image at
// any in-range offset must always be detected (CRC32 catches every burst
// of <= 32 bits, so a single XORed byte can never collide), and untouched
// payloads must never be flagged.
func FuzzChunkChecksum(f *testing.F) {
	f.Add([]byte{}, 0, byte(0))
	f.Add([]byte{0}, 0, byte(1))
	f.Add([]byte("the quick brown fox"), 4, byte(0x80))
	f.Add(make([]byte, 4096), 4095, byte(0xFF))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 2, byte(0x10))
	f.Fuzz(func(t *testing.T, b []byte, off int, mask byte) {
		clean := Sum(b)
		if ref := crc32.Checksum(b, castagnoli); clean != ref {
			t.Fatalf("Sum=%#x disagrees with the flat reference %#x", clean, ref)
		}
		got := SumFlipped(b, off, mask)
		if off < 0 || off >= len(b) || mask == 0 {
			// No byte changes: the untouched payload must never be flagged.
			if got != clean {
				t.Fatalf("no-op flip (off=%d mask=%#x) moved the checksum: %#x vs %#x",
					off, mask, got, clean)
			}
			return
		}
		corrupt := append([]byte(nil), b...)
		corrupt[off] ^= mask
		if ref := crc32.Checksum(corrupt, castagnoli); got != ref {
			t.Fatalf("SumFlipped(off=%d mask=%#x)=%#x disagrees with the flat reference %#x",
				off, mask, got, ref)
		}
		if got == clean {
			t.Fatalf("flip at off=%d mask=%#x went undetected: checksum %#x unchanged",
				off, mask, clean)
		}
	})
}
