package buf

import (
	"bytes"
	"testing"
)

func TestGetCopyRecycle(t *testing.T) {
	var p Pool
	v := p.Get(100)
	if v.Len() != 100 || v.Zero() {
		t.Fatalf("Get(100): len %d zero %v", v.Len(), v.Zero())
	}
	copy(v.Bytes(), bytes.Repeat([]byte{7}, 100))
	if p.Live() != 1 {
		t.Fatalf("live %d, want 1", p.Live())
	}
	v.Release()
	if p.Live() != 0 {
		t.Fatalf("live %d after release, want 0", p.Live())
	}
	// The next same-class Get must reuse the block, not allocate.
	w := p.Get(80)
	if &w.Bytes()[0] != &v.blk.b[0] {
		t.Error("same-class Get did not reuse the released block")
	}
	w.Release()
}

func TestZeroView(t *testing.T) {
	var p Pool
	v := p.Get(0)
	if !v.Zero() || v.Len() != 0 || v.Bytes() != nil || v.Refs() != 0 {
		t.Fatalf("zero view misbehaves: %+v", v)
	}
	v.Retain()
	v.Release() // all no-ops
	if w := p.Wrap(nil); !w.Zero() {
		t.Error("Wrap(nil) must be the zero view")
	}
}

func TestSliceSharesBacking(t *testing.T) {
	var p Pool
	v := p.Get(64)
	for i := range v.Bytes() {
		v.Bytes()[i] = byte(i)
	}
	s := v.Slice(16, 8)
	if s.Len() != 8 || &s.Bytes()[0] != &v.Bytes()[16] {
		t.Fatal("Slice must alias the same backing array")
	}
	ss := s.Slice(4, 4)
	if &ss.Bytes()[0] != &v.Bytes()[20] {
		t.Fatal("nested Slice offset wrong")
	}
	v.Release()
}

func TestRetainKeepsBlockAlive(t *testing.T) {
	var p Pool
	v := p.Get(32)
	s := v.Slice(0, 16).Retain()
	v.Release() // base ref gone; the retained sub-view keeps the block live
	if p.Live() != 1 {
		t.Fatalf("live %d, want 1 while a retained view exists", p.Live())
	}
	_ = s.Bytes() // still valid
	s.Release()
	if p.Live() != 0 {
		t.Fatalf("live %d after final release", p.Live())
	}
}

func TestUseAfterReleasePanics(t *testing.T) {
	var p Pool
	v := p.Get(16)
	v.Release()
	p.Get(16).Bytes()[0] = 1 // recycle the block so the hazard is real
	defer func() {
		if recover() == nil {
			t.Error("Bytes on a released view must panic")
		}
	}()
	_ = v.Bytes()
}

func TestStaleRetainPanics(t *testing.T) {
	var p Pool
	v := p.Get(16)
	v.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain on a released view must panic")
		}
	}()
	v.Retain()
}

func TestWrapAliasesCaller(t *testing.T) {
	var p Pool
	user := []byte{1, 2, 3, 4}
	v := p.Wrap(user)
	user[0] = 9 // zero-copy: mutation is visible through the view
	if v.Bytes()[0] != 9 {
		t.Error("Wrap must alias the caller's buffer, not copy it")
	}
	v.Release()
	if p.Live() != 0 {
		t.Fatalf("live %d after wrap release", p.Live())
	}
	// The wrapper header is recycled but never the user's bytes.
	w := p.Wrap([]byte{5})
	if w.blk != v.blk {
		t.Error("wrapper header was not recycled")
	}
	if got := w.Bytes(); len(got) != 1 || got[0] != 5 {
		t.Errorf("recycled wrapper bytes = %v", got)
	}
	w.Release()
}

func TestSliceOutOfRangePanics(t *testing.T) {
	var p Pool
	v := p.Get(8)
	defer func() {
		v.Release()
		if recover() == nil {
			t.Error("out-of-range Slice must panic")
		}
	}()
	v.Slice(4, 8)
}

func TestSizeClasses(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := classOf(n); got != want {
			t.Errorf("classOf(%d) = %d, want %d", n, got, want)
		}
	}
	var p Pool
	v := p.Get(1000) // class 10: 1024-byte block
	if len(v.blk.b) != 1024 || v.Len() != 1000 {
		t.Errorf("block %d view %d, want 1024/1000", len(v.blk.b), v.Len())
	}
	v.Release()
}
