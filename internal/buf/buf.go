// Package buf provides the refcounted, immutable payload views the
// simulator's zero-copy data path is built on.
//
// A send captures the user's bytes exactly once — into a pooled block for
// the bounce-buffered paths (eager, message-based RMA, shared memory), or by
// wrapping the user's buffer directly for the rendezvous/RMA bulk paths.
// From there every layer (ADI envelope, stripe chunks, IB work requests,
// shared-memory delivery) passes offset/length views of the same backing
// array; only the final receive into the user's buffer copies again.
//
// Views are reference counted because pooled blocks are recycled: a block
// must not return to its pool while any layer — including a retransmission
// parked behind a dead rail — still holds a view of it. Release of the last
// reference returns the block; a stale view that outlives its block panics
// on use (generation check), turning a use-after-release into a loud,
// deterministic failure instead of silent payload corruption.
//
// A Pool belongs to one simulation world and is driven only from its
// single-threaded engine, so the counters need no atomics; concurrent
// simulations each own a Pool and never share blocks.
package buf

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// block is the shared backing store behind one or more Views.
type block struct {
	pool    *Pool
	b       []byte // nil for wrapped blocks between uses
	refs    int
	gen     uint32 // bumped on final release; stale views detect it
	class   int    // size-class index; -1 for wrapped (caller-owned) buffers
	wrapped bool
}

// View is an offset/length window onto a refcounted block. The zero View is
// valid and means "no payload" (synthetic traffic): all methods are no-ops
// or return zero values.
type View struct {
	blk *block
	gen uint32
	off int
	n   int
}

// Pool recycles payload blocks for one simulation world. The zero value is
// ready to use.
type Pool struct {
	classes  [maxClass + 1][]*block // pow2 size-classed free blocks
	wrapFree []*block               // recycled wrapper headers
	live     int                    // blocks handed out and not yet released

	// Audit state (EnableAudit): outstanding blocks stamped with the owner
	// tag and virtual time of their allocation, so a leak report names the
	// site. nil when auditing is off — the hot paths then pay only a nil
	// check.
	audit map[*block]auditInfo
	clock func() int64

	// Sharded-run locking (EnableLocking): blocks are captured on the
	// sending rank's shard and released on the receiving rank's, so the free
	// lists, live counter and audit map become cross-shard state. Serial
	// worlds never take the lock. Block hand-off between shards always rides
	// a delivery event or this mutex, which is what keeps the per-block
	// refcounts unsynchronized-but-safe.
	locked bool
	mu     sync.Mutex
}

// EnableLocking switches the pool to thread-safe mode for sharded engine
// groups. Call before the run starts.
func (p *Pool) EnableLocking() { p.locked = true }

func (p *Pool) lock() {
	if p.locked {
		p.mu.Lock()
	}
}

func (p *Pool) unlock() {
	if p.locked {
		p.mu.Unlock()
	}
}

// auditInfo records where and when an outstanding block was handed out.
type auditInfo struct {
	tag string
	at  int64
}

// EnableAudit arms allocation-site recording: every subsequent Get/Wrap is
// stamped with its owner tag (the tagged variants) or "?" and the clock's
// current virtual time. clock may be nil (times report 0).
func (p *Pool) EnableAudit(clock func() int64) {
	if p.audit == nil {
		p.audit = make(map[*block]auditInfo)
	}
	p.clock = clock
}

// record stamps a freshly handed-out block when auditing is on.
func (p *Pool) record(blk *block, tag string) {
	if p.audit == nil || blk == nil {
		return
	}
	var at int64
	if p.clock != nil {
		at = p.clock()
	}
	p.audit[blk] = auditInfo{tag: tag, at: at}
}

// GetTagged is Get with an owner tag for the audit report.
func (p *Pool) GetTagged(n int, tag string) View {
	v := p.Get(n)
	if p.audit != nil && v.blk != nil {
		p.lock()
		p.audit[v.blk] = auditInfo{tag: tag, at: p.now()}
		p.unlock()
	}
	return v
}

// WrapTagged is Wrap with an owner tag for the audit report.
func (p *Pool) WrapTagged(b []byte, tag string) View {
	v := p.Wrap(b)
	if p.audit != nil && v.blk != nil {
		p.lock()
		p.audit[v.blk] = auditInfo{tag: tag, at: p.now()}
		p.unlock()
	}
	return v
}

func (p *Pool) now() int64 {
	if p.clock == nil {
		return 0
	}
	return p.clock()
}

// LiveReport summarises the outstanding allocations by owner tag — count
// and earliest allocation time per site, sites sorted by name. It returns
// "" when nothing is outstanding or auditing is off; the chaos oracle
// appends it to its BufLive leak violation so a leak names its source.
func (p *Pool) LiveReport() string {
	if len(p.audit) == 0 {
		return ""
	}
	type agg struct {
		n     int
		first int64
	}
	sites := make(map[string]*agg)
	for _, info := range p.audit {
		a := sites[info.tag]
		if a == nil {
			a = &agg{first: info.at}
			sites[info.tag] = a
		}
		a.n++
		if info.at < a.first {
			a.first = info.at
		}
	}
	tags := make([]string, 0, len(sites))
	for t := range sites {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	var b strings.Builder
	for i, t := range tags {
		if i > 0 {
			b.WriteString("; ")
		}
		a := sites[t]
		fmt.Fprintf(&b, "%s x%d (first at t=%d)", t, a.n, a.first)
	}
	return b.String()
}

const maxClass = 40 // 2^40 bytes: far beyond any simulated payload

// classOf returns the pow2 size class holding n bytes.
func classOf(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a view of n writable-once bytes backed by a pooled block, with
// one reference held by the caller. Get(0) returns the zero View. The
// caller fills the bytes immediately after (the single capture copy) and
// must treat them as immutable once any other layer can see the view.
func (p *Pool) Get(n int) View {
	if n <= 0 {
		return View{}
	}
	p.lock()
	defer p.unlock()
	c := classOf(n)
	var blk *block
	if free := p.classes[c]; len(free) > 0 {
		blk = free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
	} else {
		blk = &block{pool: p, b: make([]byte, 1<<c), class: c}
	}
	blk.refs = 1
	p.live++
	p.record(blk, "?")
	return View{blk: blk, gen: blk.gen, n: n}
}

// Wrap returns a view aliasing the caller's buffer directly (the zero-copy
// rendezvous/RMA path), with one reference held by the caller. The buffer is
// never returned to the byte pool — only the wrapper header is recycled.
// Wrap(nil) returns the zero View.
func (p *Pool) Wrap(b []byte) View {
	if b == nil {
		return View{}
	}
	p.lock()
	defer p.unlock()
	var blk *block
	if free := p.wrapFree; len(free) > 0 {
		blk = free[len(free)-1]
		free[len(free)-1] = nil
		p.wrapFree = free[:len(free)-1]
	} else {
		blk = &block{pool: p, class: -1, wrapped: true}
	}
	blk.b = b
	blk.refs = 1
	p.live++
	p.record(blk, "?")
	return View{blk: blk, gen: blk.gen, n: len(b)}
}

// Live reports blocks handed out and not yet fully released — the leak
// check the chaos oracle runs after every conformance run.
func (p *Pool) Live() int { return p.live }

// Zero reports whether v carries no payload.
func (v View) Zero() bool { return v.blk == nil }

// Len reports the view's length in bytes.
func (v View) Len() int { return v.n }

// check panics if the view outlived its block (use after release).
func (v View) check() {
	if v.blk.gen != v.gen {
		panic(fmt.Sprintf("buf: view used after release (gen %d, block gen %d)", v.gen, v.blk.gen))
	}
}

// Bytes returns the viewed bytes (nil for the zero View). The slice aliases
// the shared block: receivers copy out of it, nobody writes into it after
// capture.
func (v View) Bytes() []byte {
	if v.blk == nil {
		return nil
	}
	v.check()
	return v.blk.b[v.off : v.off+v.n]
}

// Slice returns a sub-view of n bytes at offset off — the same backing
// array, no copy, no new reference (the sub-view borrows the parent's).
// Retain the result if it must outlive the parent's reference.
func (v View) Slice(off, n int) View {
	if v.blk == nil {
		if off != 0 || n != 0 {
			panic("buf: Slice of zero View")
		}
		return View{}
	}
	v.check()
	if off < 0 || n < 0 || off+n > v.n {
		panic(fmt.Sprintf("buf: Slice [%d:+%d] outside view of %d bytes", off, n, v.n))
	}
	return View{blk: v.blk, gen: v.gen, off: v.off + off, n: n}
}

// Retain adds a reference and returns v (for chaining). Retaining the zero
// View is a no-op.
func (v View) Retain() View {
	if v.blk == nil {
		return v
	}
	v.check()
	v.blk.refs++
	return v
}

// Release drops one reference; the last release recycles the block into its
// pool and invalidates every remaining view of it. Releasing the zero View
// is a no-op.
func (v View) Release() {
	blk := v.blk
	if blk == nil {
		return
	}
	v.check()
	blk.refs--
	if blk.refs > 0 {
		return
	}
	if blk.refs < 0 {
		panic("buf: double release")
	}
	p := blk.pool
	blk.gen++
	p.lock()
	defer p.unlock()
	p.live--
	if p.audit != nil {
		delete(p.audit, blk)
	}
	if blk.wrapped {
		blk.b = nil // un-alias the caller's buffer
		p.wrapFree = append(p.wrapFree, blk)
		return
	}
	p.classes[blk.class] = append(p.classes[blk.class], blk)
}

// Refs reports the block's current reference count (0 for the zero View).
// Test observability only.
func (v View) Refs() int {
	if v.blk == nil {
		return 0
	}
	v.check()
	return v.blk.refs
}
