package buf

import "hash/crc32"

// The ICRC stand-in of the integrity layer (DESIGN.md §17). InfiniBand's
// invariant CRC is a CRC32 over the fields that do not change in flight;
// the model uses CRC32-Castagnoli over the captured payload bytes, which
// shares the property the recovery layer relies on: any error burst of 32
// bits or fewer — in particular any single flipped byte — is guaranteed to
// change the checksum.

// castagnoli is shared by every checksum pass; crc32 table construction is
// done once at init.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sum computes the payload checksum carried on envelopes, ring slots, and
// bulk stripes when integrity verification is armed.
func Sum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// SumFlipped computes the checksum b would have if the byte at off were
// XORed with mask, without materializing the corrupt image. The chaos
// harness uses it to prove an injected flip is detectable before deciding
// whether the receiving HCA model accepts or NACKs the chunk; the fault
// injection itself must never write through a sender-owned view.
func SumFlipped(b []byte, off int, mask byte) uint32 {
	if off < 0 || off >= len(b) || mask == 0 {
		return Sum(b)
	}
	crc := crc32.Update(0, castagnoli, b[:off])
	crc = crc32.Update(crc, castagnoli, []byte{b[off] ^ mask})
	return crc32.Update(crc, castagnoli, b[off+1:])
}
