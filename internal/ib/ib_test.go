package ib

import (
	"bytes"
	"testing"

	"ib12x/internal/fabric"
	"ib12x/internal/gx"
	"ib12x/internal/hca"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

// rig is a two-node test fixture: one connected QP pair with a CQ each.
type rig struct {
	eng      *sim.Engine
	realm    *Realm
	m        *model.Params
	pa, pb   *hca.Port
	qa, qb   *QP
	cqa, cqb *CQ
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := model.Default()
	eng := sim.NewEngine()
	realm := NewRealm(eng, m)
	net := &fabric.Net{Latency: m.WireLatency}
	ha := hca.New("a", 1, gx.New(m.GXRate), m, net)
	hb := hca.New("b", 1, gx.New(m.GXRate), m, net)
	r := &rig{eng: eng, realm: realm, m: m, pa: ha.Ports[0], pb: hb.Ports[0]}
	r.cqa, r.cqb = realm.NewCQ(), realm.NewCQ()
	r.qa = realm.NewQP(QPConfig{Port: r.pa, CQ: r.cqa})
	r.qb = realm.NewQP(QPConfig{Port: r.pb, CQ: r.cqb})
	if err := Connect(r.qa, r.qb); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendRecvDeliversData(t *testing.T) {
	r := newRig(t)
	payload := []byte("hello, twelve-x world")
	buf := make([]byte, 64)
	if err := r.qb.PostRecv(RecvWR{WRID: 7, Buf: buf, N: len(buf)}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	if err := r.qa.PostSend(SendWR{WRID: 3, Op: OpSend, Data: payload, N: len(payload), Signaled: true}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	r.run(t)

	e, ok := r.cqb.Poll()
	if !ok {
		t.Fatal("no recv completion")
	}
	if e.Op != OpRecv || e.WRID != 7 || e.Bytes != len(payload) || e.QPN != r.qb.QPN {
		t.Errorf("recv CQE = %+v", e)
	}
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Errorf("payload corrupted: %q", buf[:len(payload)])
	}
	se, ok := r.cqa.Poll()
	if !ok {
		t.Fatal("no send completion")
	}
	if se.Op != OpSend || se.WRID != 3 || se.Status != StatusSuccess {
		t.Errorf("send CQE = %+v", se)
	}
}

func TestUnsignaledSendProducesNoCQE(t *testing.T) {
	r := newRig(t)
	r.qb.PostRecv(RecvWR{Buf: nil, N: 128})
	if err := r.qa.PostSend(SendWR{Op: OpSend, N: 128, Signaled: false}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	r.run(t)
	if r.cqa.Len() != 0 {
		t.Errorf("sender CQ has %d entries, want 0", r.cqa.Len())
	}
	if r.qa.Outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0 (slot freed on ack even unsignaled)", r.qa.Outstanding())
	}
}

func TestEarlyArrivalWaitsForRecv(t *testing.T) {
	r := newRig(t)
	payload := []byte{1, 2, 3, 4}
	if err := r.qa.PostSend(SendWR{Op: OpSend, Data: payload, N: 4}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	// Post the receive long after the message lands.
	buf := make([]byte, 4)
	r.eng.At(1*sim.Second, func() {
		r.qb.PostRecv(RecvWR{WRID: 9, Buf: buf, N: 4})
	})
	r.run(t)
	if r.pb.RnrWaits != 1 {
		t.Errorf("RnrWaits = %d, want 1", r.pb.RnrWaits)
	}
	e, ok := r.cqb.Poll()
	if !ok || e.WRID != 9 || !bytes.Equal(buf, payload) {
		t.Errorf("late recv: ok=%v e=%+v buf=%v", ok, e, buf)
	}
}

func TestSendsDeliverInOrder(t *testing.T) {
	r := newRig(t)
	const n = 16
	for i := 0; i < n; i++ {
		r.qb.PostRecv(RecvWR{WRID: uint64(i), N: 8192})
	}
	for i := 0; i < n; i++ {
		if err := r.qa.PostSend(SendWR{WRID: uint64(100 + i), Op: OpSend, N: 8192}); err != nil {
			t.Fatalf("PostSend %d: %v", i, err)
		}
	}
	r.run(t)
	for i := 0; i < n; i++ {
		e, ok := r.cqb.Poll()
		if !ok {
			t.Fatalf("missing completion %d", i)
		}
		if e.WRID != uint64(i) {
			t.Fatalf("completion %d consumed WR %d: out of order", i, e.WRID)
		}
	}
}

func TestRDMAWritePlacesDataWithoutRemoteCQE(t *testing.T) {
	r := newRig(t)
	target := make([]byte, 128)
	mr := r.realm.RegisterMR(target, len(target))
	src := bytes.Repeat([]byte{0xAB}, 32)
	err := r.qa.PostSend(SendWR{Op: OpRDMAWrite, Data: src, N: 32, RKey: mr.RKey, RemoteOff: 64, Signaled: true})
	if err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	r.run(t)
	if !bytes.Equal(target[64:96], src) {
		t.Error("RDMA write did not place data at offset")
	}
	if !bytes.Equal(target[:64], make([]byte, 64)) {
		t.Error("RDMA write touched bytes before the offset")
	}
	if r.cqb.Len() != 0 {
		t.Errorf("plain RDMA write raised %d remote CQEs, want 0", r.cqb.Len())
	}
	if e, ok := r.cqa.Poll(); !ok || e.Op != OpRDMAWrite {
		t.Errorf("sender completion = %+v ok=%v", e, ok)
	}
}

func TestRDMAWriteWithImmediateConsumesRecv(t *testing.T) {
	r := newRig(t)
	target := make([]byte, 64)
	mr := r.realm.RegisterMR(target, len(target))
	r.qb.PostRecv(RecvWR{WRID: 5, N: 0})
	err := r.qa.PostSend(SendWR{Op: OpRDMAWrite, N: 64, RKey: mr.RKey, Imm: 0xCAFE, HasImm: true})
	if err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	r.run(t)
	e, ok := r.cqb.Poll()
	if !ok {
		t.Fatal("no remote CQE for write-with-immediate")
	}
	if !e.HasImm || e.Imm != 0xCAFE || e.Bytes != 64 || e.WRID != 5 {
		t.Errorf("CQE = %+v", e)
	}
}

func TestRDMAWriteValidation(t *testing.T) {
	r := newRig(t)
	target := make([]byte, 64)
	mr := r.realm.RegisterMR(target, len(target))
	if err := r.qa.PostSend(SendWR{Op: OpRDMAWrite, N: 8, RKey: 999}); err != ErrBadRKey {
		t.Errorf("bad rkey: err = %v, want ErrBadRKey", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpRDMAWrite, N: 32, RKey: mr.RKey, RemoteOff: 48}); err != ErrMRBounds {
		t.Errorf("out of bounds: err = %v, want ErrMRBounds", err)
	}
	r.realm.DeregisterMR(mr)
	if err := r.qa.PostSend(SendWR{Op: OpRDMAWrite, N: 8, RKey: mr.RKey}); err != ErrBadRKey {
		t.Errorf("deregistered: err = %v, want ErrBadRKey", err)
	}
}

func TestPostSendValidation(t *testing.T) {
	r := newRig(t)
	lone := r.realm.NewQP(QPConfig{Port: r.pa, CQ: r.cqa})
	if err := lone.PostSend(SendWR{Op: OpSend, N: 8}); err != ErrNotConnected {
		t.Errorf("unconnected: err = %v, want ErrNotConnected", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpSend, N: -1}); err != ErrBadWR {
		t.Errorf("negative length: err = %v, want ErrBadWR", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpSend, Data: []byte{1, 2, 3}, N: 2}); err != ErrBadWR {
		t.Errorf("oversized buffer: err = %v, want ErrBadWR", err)
	}
	// Data shorter than N is fine: N includes protocol header overhead.
	r.qb.PostRecv(RecvWR{N: 8})
	if err := r.qa.PostSend(SendWR{Op: OpSend, Data: []byte{1}, N: 8}); err != nil {
		t.Errorf("short data with header overhead: err = %v, want nil", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpRecv, N: 1}); err != ErrBadWR {
		t.Errorf("bad opcode: err = %v, want ErrBadWR", err)
	}
}

func TestSendQueueDepthBackpressure(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	realm := NewRealm(eng, m)
	net := &fabric.Net{Latency: m.WireLatency}
	ha := hca.New("a", 1, gx.New(m.GXRate), m, net)
	hb := hca.New("b", 1, gx.New(m.GXRate), m, net)
	cqa, cqb := realm.NewCQ(), realm.NewCQ()
	qa := realm.NewQP(QPConfig{Port: ha.Ports[0], CQ: cqa, SQDepth: 2})
	qb := realm.NewQP(QPConfig{Port: hb.Ports[0], CQ: cqb})
	if err := Connect(qa, qb); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		qb.PostRecv(RecvWR{N: 64})
	}
	if err := qa.PostSend(SendWR{Op: OpSend, N: 64}); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(SendWR{Op: OpSend, N: 64}); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(SendWR{Op: OpSend, N: 64}); err != ErrSQFull {
		t.Errorf("third post: err = %v, want ErrSQFull", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// After acks drain, the queue accepts again.
	if err := qa.PostSend(SendWR{Op: OpSend, N: 64}); err != nil {
		t.Errorf("post after drain: %v", err)
	}
}

func TestDoubleConnectRejected(t *testing.T) {
	r := newRig(t)
	q3 := r.realm.NewQP(QPConfig{Port: r.pa, CQ: r.cqa})
	if err := Connect(q3, r.qb); err == nil {
		t.Error("connecting to an already-paired QP must fail")
	}
}

func TestSRQSharedAcrossQPs(t *testing.T) {
	m := model.Default()
	eng := sim.NewEngine()
	realm := NewRealm(eng, m)
	net := &fabric.Net{Latency: m.WireLatency}
	ha := hca.New("a", 1, gx.New(m.GXRate), m, net)
	hb := hca.New("b", 1, gx.New(m.GXRate), m, net)
	cqa, cqb := realm.NewCQ(), realm.NewCQ()
	srq := realm.NewSRQ()
	// Two connections into node b, both drawing from one SRQ.
	qa1 := realm.NewQP(QPConfig{Port: ha.Ports[0], CQ: cqa})
	qa2 := realm.NewQP(QPConfig{Port: ha.Ports[0], CQ: cqa})
	qb1 := realm.NewQP(QPConfig{Port: hb.Ports[0], CQ: cqb, SRQ: srq})
	qb2 := realm.NewQP(QPConfig{Port: hb.Ports[0], CQ: cqb, SRQ: srq})
	Connect(qa1, qb1)
	Connect(qa2, qb2)

	srq.PostRecv(RecvWR{WRID: 1, N: 64})
	srq.PostRecv(RecvWR{WRID: 2, N: 64})
	if qb1.PostRecv(RecvWR{N: 64}) != ErrBadWR {
		t.Error("PostRecv on an SRQ-bound QP must be rejected")
	}
	qa1.PostSend(SendWR{Op: OpSend, N: 64})
	qa2.PostSend(SendWR{Op: OpSend, N: 64})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cqb.Len() != 2 {
		t.Fatalf("CQ has %d completions, want 2", cqb.Len())
	}
	qpns := map[int]bool{}
	for {
		e, ok := cqb.Poll()
		if !ok {
			break
		}
		qpns[e.QPN] = true
	}
	if !qpns[qb1.QPN] || !qpns[qb2.QPN] {
		t.Errorf("completions arrived on QPNs %v, want both %d and %d", qpns, qb1.QPN, qb2.QPN)
	}
	if srq.Posted() != 0 {
		t.Errorf("SRQ has %d unconsumed WRs, want 0", srq.Posted())
	}
}

func TestCQNotify(t *testing.T) {
	r := newRig(t)
	notified := 0
	r.cqb.SetNotify(func() { notified++ })
	r.qb.PostRecv(RecvWR{N: 16})
	r.qa.PostSend(SendWR{Op: OpSend, N: 16})
	r.run(t)
	if notified != 1 {
		t.Errorf("notify fired %d times, want 1", notified)
	}
}

func TestSyntheticPayload(t *testing.T) {
	// nil data + nil buffer: same protocol, no bytes touched.
	r := newRig(t)
	r.qb.PostRecv(RecvWR{WRID: 1, N: 1 << 20})
	if err := r.qa.PostSend(SendWR{Op: OpSend, N: 1 << 20, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	e, ok := r.cqb.Poll()
	if !ok || e.Bytes != 1<<20 {
		t.Errorf("synthetic recv: ok=%v e=%+v", ok, e)
	}
}

func TestRecvCompletionPrecedesSendCompletion(t *testing.T) {
	// The responder sees the payload before the requester sees the ack.
	r := newRig(t)
	var recvAt, sendAt sim.Time
	r.cqb.SetNotify(func() { recvAt = r.eng.Now() })
	r.cqa.SetNotify(func() { sendAt = r.eng.Now() })
	r.qb.PostRecv(RecvWR{N: 4096})
	r.qa.PostSend(SendWR{Op: OpSend, N: 4096, Signaled: true})
	r.run(t)
	if !(recvAt > 0 && sendAt > recvAt) {
		t.Errorf("recv at %v, send completion at %v: want recv first", recvAt, sendAt)
	}
}

func TestRealmStats(t *testing.T) {
	r := newRig(t)
	target := make([]byte, 64)
	mr := r.realm.RegisterMR(target, 64)
	r.qb.PostRecv(RecvWR{N: 32})
	r.qa.PostSend(SendWR{Op: OpSend, N: 32})
	r.qa.PostSend(SendWR{Op: OpRDMAWrite, N: 64, RKey: mr.RKey})
	r.run(t)
	s := r.realm.Stats()
	if s.SendsPosted != 1 || s.WritesPosted != 1 || s.RecvsPosted != 1 || s.BytesSent != 96 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpSend.String() != "SEND" || OpRDMAWrite.String() != "RDMA_WRITE" || OpRecv.String() != "RECV" {
		t.Error("opcode strings wrong")
	}
	if Opcode(42).String() != "Opcode(42)" {
		t.Error("unknown opcode string wrong")
	}
}
