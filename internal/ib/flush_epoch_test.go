package ib

import (
	"testing"

	"ib12x/internal/sim"
)

// TestEpochCycleExactlyOnce audits the QP's failure epoch machinery under a
// down/up cycle with descriptors in the air — the exact situation a
// quarantined rail's flush puts the ADI retransmit path in. The contract the
// reliability layer leans on: every signaled WR completes exactly once, with
// StatusFlushErr if and only if its remote effect never happened, so a
// retransmit of a flushed WR can never double-deliver.
func TestEpochCycleExactlyOnce(t *testing.T) {
	r := newRig(t)
	const (
		firstBatch  = 8
		secondBatch = 4
		n           = 32 << 10
	)
	for i := 0; i < firstBatch+secondBatch; i++ {
		r.qb.PostRecv(RecvWR{WRID: uint64(100 + i), N: n})
	}
	for i := 0; i < firstBatch; i++ {
		wrid := uint64(i)
		err := r.qa.PostSend(SendWR{WRID: wrid, Op: OpSend, N: n, Signaled: true, Ctx: wrid})
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}

	// Cycle the QP down and back up mid-flight: early descriptors land
	// before the cut, late ones are caught with a stale epoch.
	r.eng.Post(35*sim.Microsecond, func() { r.qa.SetDown() })
	r.eng.Post(40*sim.Microsecond, func() {
		if err := r.qa.PostSend(SendWR{WRID: 99, Op: OpSend, N: n, Signaled: true, Ctx: uint64(99)}); err != ErrQPDown {
			t.Errorf("post while down: err = %v, want ErrQPDown", err)
		}
		r.qa.SetUp()
		for i := 0; i < secondBatch; i++ {
			wrid := uint64(firstBatch + i)
			err := r.qa.PostSend(SendWR{WRID: wrid, Op: OpSend, N: n, Signaled: true, Ctx: wrid})
			if err != nil {
				t.Errorf("post %d after SetUp: %v", i, err)
			}
		}
	})
	r.run(t)

	delivered := map[uint64]int{}
	for {
		e, ok := r.cqb.Poll()
		if !ok {
			break
		}
		if e.Op == OpRecv {
			delivered[e.Ctx.(uint64)]++
		}
	}
	completions := map[uint64][]Status{}
	for {
		e, ok := r.cqa.Poll()
		if !ok {
			break
		}
		completions[e.WRID] = append(completions[e.WRID], e.Status)
	}

	var flushed, succeeded int
	for i := 0; i < firstBatch+secondBatch; i++ {
		wrid := uint64(i)
		sts := completions[wrid]
		if len(sts) != 1 {
			t.Fatalf("WR %d completed %d times, want exactly once (%v)", i, len(sts), sts)
		}
		if d := delivered[wrid]; d > 1 {
			t.Fatalf("WR %d delivered %d times at the peer", i, d)
		}
		switch sts[0] {
		case StatusSuccess:
			succeeded++
			if delivered[wrid] != 1 {
				t.Errorf("WR %d reported success but never arrived", i)
			}
		case StatusFlushErr:
			flushed++
			if delivered[wrid] != 0 {
				t.Errorf("WR %d flushed but its payload arrived: retransmit would double-deliver", i)
			}
		default:
			t.Errorf("WR %d: unexpected status %v", i, sts[0])
		}
	}
	if flushed == 0 {
		t.Error("down/up cycle flushed nothing; the cut missed every descriptor")
	}
	if succeeded == 0 {
		t.Error("no descriptor survived; the test exercises only the flush path")
	}
	for i := 0; i < secondBatch; i++ {
		if sts := completions[uint64(firstBatch+i)]; len(sts) == 1 && sts[0] != StatusSuccess {
			t.Errorf("post-recovery WR %d: status %v, want success (fresh epoch)", firstBatch+i, sts[0])
		}
	}
	if r.qa.Outstanding() != 0 {
		t.Errorf("outstanding = %d after quiesce, want 0", r.qa.Outstanding())
	}
}
