package ib

import "testing"

func putle(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getle(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestAtomicFetchAdd(t *testing.T) {
	r := newRig(t)
	mem := make([]byte, 64)
	putle(mem[8:], 100)
	mr := r.realm.RegisterMR(mem, len(mem))
	err := r.qa.PostSend(SendWR{WRID: 1, Op: OpAtomicFAdd, N: 8, RKey: mr.RKey, RemoteOff: 8, CompareAdd: 42, Signaled: true})
	if err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if got := getle(mem[8:]); got != 142 {
		t.Errorf("memory = %d, want 142", got)
	}
	e, ok := r.cqa.Poll()
	if !ok || e.Op != OpAtomicFAdd || e.AtomicOld != 100 {
		t.Errorf("completion = %+v ok=%v", e, ok)
	}
}

func TestAtomicCAS(t *testing.T) {
	r := newRig(t)
	mem := make([]byte, 16)
	putle(mem, 7)
	mr := r.realm.RegisterMR(mem, len(mem))
	// Matching compare: swaps.
	r.qa.PostSend(SendWR{Op: OpAtomicCAS, N: 8, RKey: mr.RKey, CompareAdd: 7, Swap: 99, Signaled: true})
	r.run(t)
	if got := getle(mem); got != 99 {
		t.Errorf("after matching CAS: %d, want 99", got)
	}
	e, _ := r.cqa.Poll()
	if e.AtomicOld != 7 {
		t.Errorf("old = %d, want 7", e.AtomicOld)
	}
	// Mismatching compare: unchanged.
	r.qa.PostSend(SendWR{Op: OpAtomicCAS, N: 8, RKey: mr.RKey, CompareAdd: 7, Swap: 5, Signaled: true})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := getle(mem); got != 99 {
		t.Errorf("after mismatching CAS: %d, want 99", got)
	}
	e, _ = r.cqa.Poll()
	if e.AtomicOld != 99 {
		t.Errorf("old = %d, want 99", e.AtomicOld)
	}
}

func TestAtomicsSerializeInArrivalOrder(t *testing.T) {
	// Two fetch-adds from two different QPs both observe distinct old
	// values: the responder applies them atomically, never lost-update.
	r := newRig(t)
	mem := make([]byte, 8)
	mr := r.realm.RegisterMR(mem, 8)
	q2a := r.realm.NewQP(QPConfig{Port: r.pa, CQ: r.cqa})
	q2b := r.realm.NewQP(QPConfig{Port: r.pb, CQ: r.cqb})
	if err := Connect(q2a, q2b); err != nil {
		t.Fatal(err)
	}
	r.qa.PostSend(SendWR{WRID: 1, Op: OpAtomicFAdd, N: 8, RKey: mr.RKey, CompareAdd: 1, Signaled: true})
	q2a.PostSend(SendWR{WRID: 2, Op: OpAtomicFAdd, N: 8, RKey: mr.RKey, CompareAdd: 1, Signaled: true})
	r.run(t)
	if got := getle(mem); got != 2 {
		t.Fatalf("final value = %d, want 2", got)
	}
	olds := map[uint64]bool{}
	for {
		e, ok := r.cqa.Poll()
		if !ok {
			break
		}
		olds[e.AtomicOld] = true
	}
	if !olds[0] || !olds[1] {
		t.Errorf("old values = %v, want {0,1}: each op saw a distinct snapshot", olds)
	}
}

func TestAtomicValidation(t *testing.T) {
	r := newRig(t)
	mr := r.realm.RegisterMR(make([]byte, 16), 16)
	if err := r.qa.PostSend(SendWR{Op: OpAtomicFAdd, N: 8, RKey: 999}); err != ErrBadRKey {
		t.Errorf("bad rkey: %v", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpAtomicFAdd, N: 8, RKey: mr.RKey, RemoteOff: 4}); err != ErrMRBounds {
		t.Errorf("unaligned: %v", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpAtomicFAdd, N: 8, RKey: mr.RKey, RemoteOff: 16}); err != ErrMRBounds {
		t.Errorf("out of bounds: %v", err)
	}
}

func TestAtomicOpcodeStrings(t *testing.T) {
	if OpAtomicFAdd.String() != "ATOMIC_FADD" || OpAtomicCAS.String() != "ATOMIC_CAS" {
		t.Error("atomic opcode strings wrong")
	}
}
