package ib

import "ib12x/internal/sim"

// Status of a completed work request.
type Status int

// Completion statuses.
const (
	StatusSuccess Status = iota
	StatusLocalError
	// StatusFlushErr reports a work request flushed by a QP failure before
	// its remote effect happened: the payload never reached (or never left)
	// the peer, so the requester must retransmit on another rail. Requests
	// whose effect did land before the failure complete with StatusSuccess
	// even if the trailing ack was lost — exactly-once semantics, matching
	// a Reliable Connection's responder-side duplicate suppression.
	StatusFlushErr
	// StatusIntegrityErr reports a payload work request rejected by the
	// receiving HCA's ICRC-style check (mpi.Config.Integrity armed): the
	// corrupt image was never placed, so the remote side is untouched and
	// the requester must retransmit — the NAK of the integrity layer. Only
	// the chaos harness's corruption plans can produce it.
	StatusIntegrityErr
)

// CQE is a completion queue entry.
//
// Ctx and Data are simulation conveniences standing in for what real verbs
// software reads out of its registered bounce buffers: Ctx carries the
// sender's opaque protocol header object, Data the eager payload bytes.
type CQE struct {
	QPN    int
	WRID   uint64
	Op     Opcode
	Status Status
	Bytes  int
	Imm    uint64 // immediate data, valid when HasImm
	HasImm bool
	Ctx    any    // sender's SendWR.Ctx (receive completions only)
	Data   []byte // payload reference (receive completions only)

	// AtomicOld is the pre-operation value returned by OpAtomicFAdd and
	// OpAtomicCAS completions.
	AtomicOld uint64

	// Corruption taint (chaos integrity plans, verification off). On a
	// receive completion it tells the consumer which corrupt image the wire
	// delivered; on a send completion it echoes the taint back so audit
	// mode can tally silent escapes at the endpoint that owns the stats.
	// With verification armed these never reach a receive completion — the
	// tainted placement is suppressed and the sender sees
	// StatusIntegrityErr instead. FlipOff/FlipMask describe a single
	// XORed payload byte; HdrTaint a mangled wire header; TornAt the
	// instant a torn ring slot's payload settles (zero = consistent).
	FlipOff  int
	FlipMask byte
	HdrTaint bool
	TornAt   sim.Time
}

// CQ is a completion queue. Completions are pushed by the simulated
// hardware; software drains them with Poll. An optional notify callback
// fires on every push, letting a progress engine wake its rank.
type CQ struct {
	realm  *Realm
	q      sim.Ring[CQE]
	notify func()
}

// NewCQ creates a completion queue in the realm.
func (r *Realm) NewCQ() *CQ { return &CQ{realm: r} }

// SetNotify registers fn to be invoked whenever a completion is pushed.
func (cq *CQ) SetNotify(fn func()) { cq.notify = fn }

// Poll removes and returns the oldest completion, if any.
func (cq *CQ) Poll() (CQE, bool) {
	if cq.q.Len() == 0 {
		return CQE{}, false
	}
	return cq.q.Pop(), true
}

// Len reports the number of undrained completions.
func (cq *CQ) Len() int { return cq.q.Len() }

func (cq *CQ) push(e CQE) {
	cq.q.Push(e)
	if cq.notify != nil {
		cq.notify()
	}
}
