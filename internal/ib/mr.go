package ib

// MR is a registered memory region. Buf may be nil for synthetic payloads:
// the region then has a length but carries no bytes, which exercises
// identical protocol paths without host memory (DESIGN.md §5).
type MR struct {
	RKey uint32
	Buf  []byte
	N    int
}

// RegisterMR registers a region of n bytes, optionally backed by buf.
// If buf is non-nil it must be at least n bytes long.
func (r *Realm) RegisterMR(buf []byte, n int) *MR {
	if buf != nil && len(buf) < n {
		panic("ib: RegisterMR buffer shorter than declared length")
	}
	if r.sharded {
		r.mrMu.Lock()
		defer r.mrMu.Unlock()
	}
	r.rkey++
	mr := &MR{RKey: r.rkey, Buf: buf, N: n}
	r.mrs[mr.RKey] = mr
	return mr
}

// DeregisterMR removes the region from the realm; later RDMA to its rkey
// fails with ErrBadRKey.
func (r *Realm) DeregisterMR(mr *MR) {
	if r.sharded {
		r.mrMu.Lock()
		defer r.mrMu.Unlock()
	}
	delete(r.mrs, mr.RKey)
}

// LookupMR resolves an rkey.
func (r *Realm) LookupMR(rkey uint32) (*MR, bool) {
	if r.sharded {
		r.mrMu.RLock()
		defer r.mrMu.RUnlock()
	}
	mr, ok := r.mrs[rkey]
	return mr, ok
}
