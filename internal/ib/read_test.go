package ib

import (
	"bytes"
	"testing"

	"ib12x/internal/sim"
)

func TestRDMAReadFetchesData(t *testing.T) {
	r := newRig(t)
	src := bytes.Repeat([]byte{0x5A}, 64)
	mr := r.realm.RegisterMR(src, len(src))
	dst := make([]byte, 64)
	err := r.qa.PostSend(SendWR{WRID: 11, Op: OpRDMARead, Data: dst, N: 64, RKey: mr.RKey, Signaled: true})
	if err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	r.run(t)
	if !bytes.Equal(dst, src) {
		t.Error("read did not fetch remote data")
	}
	e, ok := r.cqa.Poll()
	if !ok || e.Op != OpRDMARead || e.WRID != 11 || e.Bytes != 64 {
		t.Errorf("completion = %+v ok=%v", e, ok)
	}
	if r.qa.Outstanding() != 0 {
		t.Errorf("outstanding = %d", r.qa.Outstanding())
	}
}

func TestRDMAReadAtOffset(t *testing.T) {
	r := newRig(t)
	region := make([]byte, 256)
	for i := range region {
		region[i] = byte(i)
	}
	mr := r.realm.RegisterMR(region, len(region))
	dst := make([]byte, 32)
	err := r.qa.PostSend(SendWR{Op: OpRDMARead, Data: dst, N: 32, RKey: mr.RKey, RemoteOff: 100})
	if err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if !bytes.Equal(dst, region[100:132]) {
		t.Errorf("read at offset fetched %v", dst[:4])
	}
}

func TestRDMAReadValidation(t *testing.T) {
	r := newRig(t)
	mr := r.realm.RegisterMR(make([]byte, 64), 64)
	if err := r.qa.PostSend(SendWR{Op: OpRDMARead, N: 8, RKey: 12345}); err != ErrBadRKey {
		t.Errorf("bad rkey: %v", err)
	}
	if err := r.qa.PostSend(SendWR{Op: OpRDMARead, N: 65, RKey: mr.RKey}); err != ErrMRBounds {
		t.Errorf("bounds: %v", err)
	}
}

func TestRDMAReadLatencyRoundTrip(t *testing.T) {
	// A read costs a request flight plus the data path back: it must take
	// longer than one wire latency but complete in bounded time.
	r := newRig(t)
	mr := r.realm.RegisterMR(nil, 1<<20)
	var done sim.Time
	r.cqa.SetNotify(func() { done = r.eng.Now() })
	if err := r.qa.PostSend(SendWR{Op: OpRDMARead, N: 1 << 20, RKey: mr.RKey, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	min := 2*r.m.WireLatency + sim.TransferTime(1<<20, r.m.EngineRate)
	if done < min {
		t.Errorf("1MB read done at %v, faster than physics allows (%v)", done, min)
	}
	if done > 3*min {
		t.Errorf("1MB read done at %v, want < %v", done, 3*min)
	}
}

func TestRDMAReadsOverlapAcrossQPs(t *testing.T) {
	// Reads on separate QPs engage separate responder streams: two 512KB
	// reads on two QPs finish well before twice the single-read time.
	m := newRig(t).m
	single := func(qps int) sim.Time {
		r := newRig(t)
		mr := r.realm.RegisterMR(nil, 1<<20)
		q2a := r.realm.NewQP(QPConfig{Port: r.pa, CQ: r.cqa})
		q2b := r.realm.NewQP(QPConfig{Port: r.pb, CQ: r.cqb})
		if err := Connect(q2a, q2b); err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		r.cqa.SetNotify(func() { last = r.eng.Now() })
		r.qa.PostSend(SendWR{Op: OpRDMARead, N: 512 << 10, RKey: mr.RKey, Signaled: true})
		target := r.qa
		if qps == 2 {
			target = q2a
		}
		target.PostSend(SendWR{Op: OpRDMARead, N: 512 << 10, RemoteOff: 512 << 10, RKey: mr.RKey, Signaled: true})
		r.run(t)
		return last
	}
	one := single(1)
	two := single(2)
	if two >= one {
		t.Errorf("reads on 2 QPs (%v) not faster than chained on 1 QP (%v)", two, one)
	}
	_ = m
}

func TestReadStats(t *testing.T) {
	r := newRig(t)
	mr := r.realm.RegisterMR(nil, 4096)
	r.qa.PostSend(SendWR{Op: OpRDMARead, N: 4096, RKey: mr.RKey})
	r.run(t)
	s := r.realm.Stats()
	if s.ReadsPosted != 1 || s.BytesRead != 4096 {
		t.Errorf("stats = %+v", s)
	}
}
