// Package ib is a verbs-flavoured InfiniBand software interface over the
// simulated IBM 12x HCA: queue pairs with send/receive queues, completion
// queues, memory regions with remote keys, a shared receive queue, RDMA
// write, and the Reliable Connection transport semantics the paper relies on
// (in-order per-QP execution, per-descriptor acknowledgments).
//
// All objects of one simulation live in a Realm, which owns the QP number
// and rkey spaces; nothing is global, so concurrent simulations (parallel
// tests) never share state.
package ib

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ib12x/internal/model"
	"ib12x/internal/sim"
)

// Errors returned by posting operations.
var (
	ErrNotConnected = errors.New("ib: queue pair is not connected")
	ErrSQFull       = errors.New("ib: send queue full")
	ErrBadWR        = errors.New("ib: malformed work request")
	ErrBadRKey      = errors.New("ib: unknown remote key")
	ErrMRBounds     = errors.New("ib: RDMA access outside memory region")
	ErrQPDown       = errors.New("ib: queue pair is down")
)

// Opcode identifies the operation of a work request or completion.
type Opcode int

// Work request opcodes.
const (
	OpSend Opcode = iota
	OpRDMAWrite
	OpRDMARead
	OpAtomicFAdd // 8-byte remote fetch-and-add
	OpAtomicCAS  // 8-byte remote compare-and-swap
	OpRecv       // completion-side only
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpRDMARead:
		return "RDMA_READ"
	case OpAtomicFAdd:
		return "ATOMIC_FADD"
	case OpAtomicCAS:
		return "ATOMIC_CAS"
	case OpRecv:
		return "RECV"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// Realm owns the identifier spaces of one simulation.
type Realm struct {
	Eng   *sim.Engine
	M     *model.Params
	qpn   int
	rkey  uint32
	mrs   map[uint32]*MR
	ops   []*wrOp // free list of recycled work-request descriptors
	stats RealmStats

	// Sharded-run synchronization. The realm's shared resources — the op
	// free list, the MR table and its rkey counter, and the counters — are
	// touched from every shard; sharded runs take the locks (or atomics).
	// Serial runs skip them entirely, keeping the hot path branch-only.
	// Lock-acquisition order across shards is nondeterministic, but none of
	// it is observable: op identity, rkey numeric values and counter
	// interleavings never feed back into event timing or payload bytes.
	sharded bool
	opMu    sync.Mutex
	mrMu    sync.RWMutex

	// integrity arms the receiving-HCA ICRC check: tainted payload
	// placements are suppressed and the sender is NACKed with
	// StatusIntegrityErr. Set once at world build (mpi.Config.Integrity),
	// read-only during the run, so shards read it freely.
	integrity bool
}

// EnableSharded switches the realm's shared structures to thread-safe mode
// for a sharded engine group. Call before the run starts.
func (r *Realm) EnableSharded() { r.sharded = true }

// EnableIntegrity arms the ICRC-style placement check on every QP of the
// realm (DESIGN.md §17). Call before the run starts.
func (r *Realm) EnableIntegrity() { r.integrity = true }

// bump increments a realm counter: atomically in sharded runs, plainly
// otherwise.
func (r *Realm) bump(p *int64, v int64) {
	if r.sharded {
		atomic.AddInt64(p, v)
		return
	}
	*p += v
}

// RealmStats aggregates transport-level counters across the realm.
type RealmStats struct {
	SendsPosted   int64
	WritesPosted  int64
	ReadsPosted   int64
	AtomicsPosted int64
	RecvsPosted   int64
	BytesSent     int64
	BytesRead     int64
}

// NewRealm creates an identifier realm bound to a simulation engine.
func NewRealm(eng *sim.Engine, m *model.Params) *Realm {
	return &Realm{Eng: eng, M: m, mrs: make(map[uint32]*MR)}
}

// Stats returns a copy of the realm counters.
func (r *Realm) Stats() RealmStats { return r.stats }
