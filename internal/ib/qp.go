package ib

import "ib12x/internal/hca"

// SendWR is a send-side work request (descriptor). Data may be nil for a
// synthetic payload of N bytes. For OpRDMARead, Data is the LOCAL
// destination buffer and RKey/RemoteOff name the remote source region.
type SendWR struct {
	WRID     uint64
	Op       Opcode // OpSend, OpRDMAWrite or OpRDMARead
	Data     []byte
	N        int
	Signaled bool

	// RDMA write targets.
	RKey      uint32
	RemoteOff int

	// Immediate data (Send or RDMA-write-with-immediate); consumes a
	// receive WR at the responder and surfaces in its CQE.
	Imm    uint64
	HasImm bool

	// Atomic operands: CompareAdd is the addend (FAdd) or the comparand
	// (CAS); Swap is the CAS replacement value.
	CompareAdd uint64
	Swap       uint64

	// Ctx is an opaque protocol object delivered in the responder's CQE
	// (simulation stand-in for header bytes in a bounce buffer).
	Ctx any
}

// RecvWR is a receive-side work request. Buf may be nil to discard payload.
type RecvWR struct {
	WRID uint64
	Buf  []byte
	N    int
}

// message is an in-flight payload headed for a receive queue.
type message struct {
	qp     *QP // destination QP
	data   []byte
	n      int
	imm    uint64
	hasImm bool
	ctx    any
}

// recvPool is the receive-buffer pool behind a QP or an SRQ: posted WRs plus
// messages that arrived before a buffer was available.
type recvPool struct {
	wrs     []RecvWR
	pending []message
}

func (rp *recvPool) post(wr RecvWR) {
	rp.wrs = append(rp.wrs, wr)
	rp.drain()
}

func (rp *recvPool) drain() {
	for len(rp.pending) > 0 && len(rp.wrs) > 0 {
		msg := rp.pending[0]
		rp.pending = rp.pending[1:]
		wr := rp.wrs[0]
		rp.wrs = rp.wrs[1:]
		deliver(msg, wr)
	}
}

func (rp *recvPool) arrive(msg message) {
	if len(rp.wrs) > 0 {
		wr := rp.wrs[0]
		rp.wrs = rp.wrs[1:]
		deliver(msg, wr)
		return
	}
	msg.qp.Port.RnrWaits++
	rp.pending = append(rp.pending, msg)
}

func deliver(msg message, wr RecvWR) {
	if wr.Buf != nil && msg.data != nil {
		k := min(wr.N, len(msg.data))
		copy(wr.Buf[:k], msg.data[:k])
	}
	msg.qp.CQ.push(CQE{
		QPN:    msg.qp.QPN,
		WRID:   wr.WRID,
		Op:     OpRecv,
		Status: StatusSuccess,
		Bytes:  msg.n,
		Imm:    msg.imm,
		HasImm: msg.hasImm,
		Ctx:    msg.ctx,
		Data:   msg.data,
	})
}

// SRQ is a shared receive queue: several QPs draw receive buffers from one
// pool, the standard MVAPICH arrangement for eager traffic at scale.
type SRQ struct {
	realm *Realm
	pool  recvPool
}

// NewSRQ creates a shared receive queue.
func (r *Realm) NewSRQ() *SRQ { return &SRQ{realm: r} }

// PostRecv adds a receive buffer to the shared pool.
func (s *SRQ) PostRecv(wr RecvWR) {
	s.realm.stats.RecvsPosted++
	s.pool.post(wr)
}

// Posted reports the number of unconsumed receive WRs in the pool.
func (s *SRQ) Posted() int { return len(s.pool.wrs) }

// QPConfig configures queue pair creation.
type QPConfig struct {
	Port    *hca.Port
	CQ      *CQ
	SQDepth int  // max outstanding send WRs; 0 means 128
	SRQ     *SRQ // if set, receives come from the shared pool
}

// QP is a Reliable Connection queue pair. Descriptors on its send queue
// execute strictly in order (so a lone QP drives at most one send engine at
// a time), and every descriptor is acknowledged by the responder — the two
// hardware facts the paper's scheduling-policy analysis rests on.
type QP struct {
	QPN  int
	Port *hca.Port
	CQ   *CQ
	SRQ  *SRQ

	realm       *Realm
	remote      *QP
	flow        *hca.Flow // staged transmit pipeline toward the peer
	respFlow    *hca.Flow // responder resources for RDMA-read responses
	sqDepth     int
	outstanding int
	pool        recvPool

	// Fault-injection state: down rejects new posts, and epoch stamps every
	// in-flight descriptor so a failure can flush exactly the descriptors
	// that were in the air when it struck.
	down  bool
	epoch uint64
}

// SetDown transitions the QP into the error state: new posts fail with
// ErrQPDown, and descriptors currently in flight are flushed — those whose
// remote effect has not yet happened complete with StatusFlushErr at their
// originally booked completion time; those already effected at the peer
// complete successfully (exactly-once).
func (q *QP) SetDown() {
	if !q.down {
		q.down = true
		q.epoch++
	}
}

// SetUp returns a downed QP to service. In-flight descriptors from before
// the failure stay flushed (their epoch is stale).
func (q *QP) SetUp() { q.down = false }

// IsDown reports whether the QP is in the error state.
func (q *QP) IsDown() bool { return q.down }

// lost reports whether a descriptor stamped with epoch e was caught by a
// failure: the QP is still down, or a down/up cycle happened since.
func (q *QP) lost(e uint64) bool { return q.down || q.epoch != e }

// NewQP creates a queue pair.
func (r *Realm) NewQP(cfg QPConfig) *QP {
	if cfg.Port == nil || cfg.CQ == nil {
		panic("ib: NewQP requires a Port and a CQ")
	}
	depth := cfg.SQDepth
	if depth == 0 {
		depth = 128
	}
	r.qpn++
	return &QP{QPN: r.qpn, Port: cfg.Port, CQ: cfg.CQ, SRQ: cfg.SRQ, realm: r, sqDepth: depth}
}

// Connect pairs two QPs into a reliable connection. Both must be idle.
func Connect(a, b *QP) error {
	if a.remote != nil || b.remote != nil {
		return ErrNotConnected // already wired elsewhere
	}
	a.remote = b
	b.remote = a
	a.flow = a.Port.NewFlow(a.realm.Eng, b.Port)
	b.flow = b.Port.NewFlow(b.realm.Eng, a.Port)
	// RDMA-read responses are generated by the peer's responder hardware:
	// they share its engines and link but not its send-queue ordering.
	a.respFlow = b.Port.NewFlow(a.realm.Eng, a.Port)
	b.respFlow = a.Port.NewFlow(b.realm.Eng, b.Port)
	return nil
}

// Connected reports whether the QP has a peer.
func (q *QP) Connected() bool { return q.remote != nil }

// Remote returns the peer QP, or nil.
func (q *QP) Remote() *QP { return q.remote }

// Outstanding reports send WRs posted but not yet completed (acked).
func (q *QP) Outstanding() int { return q.outstanding }

// PostRecv posts a receive buffer on the QP's own receive queue. QPs bound
// to an SRQ must post through the SRQ instead.
func (q *QP) PostRecv(wr RecvWR) error {
	if q.SRQ != nil {
		return ErrBadWR
	}
	q.realm.stats.RecvsPosted++
	q.pool.post(wr)
	return nil
}

// PostedRecvs reports unconsumed receive WRs on the QP's own queue.
func (q *QP) PostedRecvs() int { return len(q.pool.wrs) }

// PostSend posts a send-side descriptor. The simulated hardware books the
// full transfer pipeline immediately (reservations are monotonic, so
// contention still emerges); completion and delivery events fire at the
// booked instants. RDMA targets are validated synchronously — a convenience
// deviation from real verbs, which would surface an asynchronous error CQE.
func (q *QP) PostSend(wr SendWR) error {
	if q.remote == nil {
		return ErrNotConnected
	}
	if q.down {
		return ErrQPDown
	}
	if q.outstanding >= q.sqDepth {
		return ErrSQFull
	}
	// N is the wire payload size; Data may be shorter (protocol headers
	// account for the difference) but never longer.
	if wr.N < 0 || len(wr.Data) > wr.N {
		return ErrBadWR
	}

	var mr *MR
	switch wr.Op {
	case OpSend:
		q.realm.stats.SendsPosted++
	case OpRDMAWrite, OpRDMARead:
		var ok bool
		mr, ok = q.realm.LookupMR(wr.RKey)
		if !ok {
			return ErrBadRKey
		}
		if wr.RemoteOff < 0 || wr.RemoteOff+wr.N > mr.N {
			return ErrMRBounds
		}
		if wr.Op == OpRDMARead {
			q.realm.stats.ReadsPosted++
			q.realm.stats.BytesRead += int64(wr.N)
			q.outstanding++
			q.postRead(wr, mr)
			return nil
		}
		q.realm.stats.WritesPosted++
	case OpAtomicFAdd, OpAtomicCAS:
		mr2, ok := q.realm.LookupMR(wr.RKey)
		if !ok {
			return ErrBadRKey
		}
		if wr.RemoteOff < 0 || wr.RemoteOff%8 != 0 || wr.RemoteOff+8 > mr2.N {
			return ErrMRBounds
		}
		q.realm.stats.AtomicsPosted++
		q.outstanding++
		q.postAtomic(wr, mr2)
		return nil
	default:
		return ErrBadWR
	}
	q.realm.stats.BytesSent += int64(wr.N)
	q.outstanding++

	remote := q.remote
	epoch := q.epoch
	effected := false // remote effect happened before any failure
	var delivered func(hca.Timing)
	switch wr.Op {
	case OpSend:
		msg := message{qp: remote, data: wr.Data, n: wr.N, imm: wr.Imm, hasImm: wr.HasImm, ctx: wr.Ctx}
		delivered = func(hca.Timing) {
			if q.lost(epoch) {
				return
			}
			effected = true
			remote.arrive(msg)
		}
	case OpRDMAWrite:
		data := wr.Data
		n, off := wr.N, wr.RemoteOff
		imm, hasImm := wr.Imm, wr.HasImm
		ctx := wr.Ctx
		delivered = func(hca.Timing) {
			if q.lost(epoch) {
				return
			}
			effected = true
			if mr.Buf != nil && data != nil {
				k := n
				if len(data) < k {
					k = len(data)
				}
				copy(mr.Buf[off:off+k], data[:k])
			}
			if hasImm {
				remote.arrive(message{qp: remote, n: n, imm: imm, hasImm: true, ctx: ctx})
			}
		}
	}

	wrid, signaled, qpn := wr.WRID, wr.Signaled, q.QPN
	op, n := wr.Op, wr.N
	acked := func(hca.Timing) {
		q.outstanding--
		st := StatusSuccess
		if q.lost(epoch) && !effected {
			st = StatusFlushErr
		}
		if signaled {
			q.CQ.push(CQE{QPN: qpn, WRID: wrid, Op: op, Status: st, Bytes: n})
		}
	}
	q.flow.Send(wr.N, delivered, acked)
	return nil
}

// postRead models an RDMA read: a header-only request rides the requester's
// flow; the responder then streams the region back on its responder
// resources. The completion fires when the data lands in local memory
// (read responses carry their own completion semantics; the trailing
// response-path acknowledgment is a negligible modeling artifact).
func (q *QP) postRead(wr SendWR, mr *MR) {
	resp := q.respFlow
	dst := wr.Data
	n, off := wr.N, wr.RemoteOff
	wrid, signaled, qpn := wr.WRID, wr.Signaled, q.QPN
	epoch := q.epoch
	flush := func() {
		q.outstanding--
		if signaled {
			q.CQ.push(CQE{QPN: qpn, WRID: wrid, Op: OpRDMARead, Status: StatusFlushErr, Bytes: n})
		}
	}
	q.flow.Send(0, func(hca.Timing) {
		if q.lost(epoch) {
			flush() // request lost before reaching the responder
			return
		}
		// Request reached the responder: stream the data back.
		resp.Send(n, func(hca.Timing) {
			if q.lost(epoch) {
				flush() // response lost in flight; no local memory was touched
				return
			}
			if dst != nil && mr.Buf != nil {
				k := n
				if len(dst) < k {
					k = len(dst)
				}
				copy(dst[:k], mr.Buf[off:off+k])
			}
			q.outstanding--
			if signaled {
				q.CQ.push(CQE{QPN: qpn, WRID: wrid, Op: OpRDMARead, Status: StatusSuccess, Bytes: n})
			}
		}, nil)
	}, nil)
}

// postAtomic models an IB atomic: a small request travels to the responder,
// whose HCA performs the 8-byte read-modify-write in arrival order (the
// simulation's event serialization provides the atomicity guarantee the
// hardware does) and streams the original value back.
func (q *QP) postAtomic(wr SendWR, mr *MR) {
	resp := q.respFlow
	op := wr.Op
	off := wr.RemoteOff
	operand, swap := wr.CompareAdd, wr.Swap
	wrid, signaled, qpn := wr.WRID, wr.Signaled, q.QPN
	epoch := q.epoch
	q.flow.Send(8, func(hca.Timing) {
		if q.lost(epoch) {
			// Request lost before the responder applied it: flush, so the
			// requester may safely retry without double-applying.
			q.outstanding--
			if signaled {
				q.CQ.push(CQE{QPN: qpn, WRID: wrid, Op: op, Status: StatusFlushErr, Bytes: 8})
			}
			return
		}
		var old uint64
		if mr.Buf != nil {
			b := mr.Buf[off : off+8]
			for i := 0; i < 8; i++ {
				old |= uint64(b[i]) << (8 * i)
			}
			var next uint64
			switch op {
			case OpAtomicFAdd:
				next = old + operand
			case OpAtomicCAS:
				next = old
				if old == operand {
					next = swap
				}
			}
			for i := 0; i < 8; i++ {
				b[i] = byte(next >> (8 * i))
			}
		}
		resp.Send(8, func(hca.Timing) {
			// The RMW was applied at the responder: complete successfully
			// even if a failure struck while the response was in flight —
			// retrying an applied atomic would double-apply it.
			q.outstanding--
			if signaled {
				q.CQ.push(CQE{QPN: qpn, WRID: wrid, Op: op, Status: StatusSuccess, Bytes: 8, AtomicOld: old})
			}
		}, nil)
	}, nil)
}

// arrive routes an inbound message to the QP's receive pool (own or shared).
func (q *QP) arrive(msg message) {
	if q.SRQ != nil {
		q.SRQ.pool.arrive(msg)
		return
	}
	q.pool.arrive(msg)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
