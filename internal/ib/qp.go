package ib

import (
	"ib12x/internal/buf"
	"ib12x/internal/hca"
	"ib12x/internal/sim"
)

// SendWR is a send-side work request (descriptor). Data may be nil for a
// synthetic payload of N bytes. For OpRDMARead, Data is the LOCAL
// destination buffer and RKey/RemoteOff name the remote source region.
type SendWR struct {
	WRID     uint64
	Op       Opcode // OpSend, OpRDMAWrite or OpRDMARead
	Data     []byte
	N        int
	Signaled bool

	// RDMA write targets.
	RKey      uint32
	RemoteOff int

	// Immediate data (Send or RDMA-write-with-immediate); consumes a
	// receive WR at the responder and surfaces in its CQE.
	Imm    uint64
	HasImm bool

	// Atomic operands: CompareAdd is the addend (FAdd) or the comparand
	// (CAS); Swap is the CAS replacement value.
	CompareAdd uint64
	Swap       uint64

	// Ctx is an opaque protocol object delivered in the responder's CQE
	// (simulation stand-in for header bytes in a bounce buffer).
	Ctx any

	// Payload marks a descriptor that carries MPI payload bytes: eager
	// envelopes, ring slots, rendezvous and one-sided bulk stripes. Only
	// payload descriptors consult the port's corruption plan and the
	// ICRC-style verification; control traffic (credit updates, probes,
	// RTS/CTS/FIN, atomics) is modeled as protected by the transport's
	// VCRC and is never corrupted, which keeps corruption plans
	// liveness-safe. Ring further marks a payload descriptor that lands in
	// an RDMA eager ring slot — the only torn-write candidates.
	Payload bool
	Ring    bool

	// NoCorrupt exempts a retransmission from the injection counters: a
	// retry is a different wire traversal, so the NACK-recovery loop
	// converges even under an every-descriptor corruption plan (a
	// persistently bad rail is modeled by the counter striking fresh
	// traffic until the health layer quarantines it).
	NoCorrupt bool

	// CRC is the capture-time payload checksum (buf.Sum over Data) carried
	// on the wire when integrity verification is armed; zero when off. The
	// receiving HCA model uses it to prove an injected fault detectable.
	CRC uint32
}

// RecvWR is a receive-side work request. Buf may be nil to discard payload.
type RecvWR struct {
	WRID uint64
	Buf  []byte
	N    int
}

// message is an in-flight payload headed for a receive queue.
type message struct {
	qp     *QP // destination QP
	data   []byte
	n      int
	imm    uint64
	hasImm bool
	ctx    any

	// Corruption taint carried to the receive completion (see CQE). The
	// corrupt image is never materialized in sender-owned memory — the
	// consumer applies the flip to its own receive-side copy.
	flipOff  int
	flipMask byte
	hdr      bool
	tornAt   sim.Time
}

// recvPool is the receive-buffer pool behind a QP or an SRQ: posted WRs plus
// messages that arrived before a buffer was available.
type recvPool struct {
	wrs     sim.Ring[RecvWR]
	pending sim.Ring[message]
}

func (rp *recvPool) post(wr RecvWR) {
	rp.wrs.Push(wr)
	rp.drain()
}

func (rp *recvPool) drain() {
	for rp.pending.Len() > 0 && rp.wrs.Len() > 0 {
		deliver(rp.pending.Pop(), rp.wrs.Pop())
	}
}

func (rp *recvPool) arrive(msg message) {
	if rp.wrs.Len() > 0 {
		deliver(msg, rp.wrs.Pop())
		return
	}
	msg.qp.Port.RnrWaits++
	rp.pending.Push(msg)
}

func deliver(msg message, wr RecvWR) {
	if wr.Buf != nil && msg.data != nil {
		k := min(wr.N, len(msg.data))
		copy(wr.Buf[:k], msg.data[:k])
	}
	msg.qp.CQ.push(CQE{
		QPN:    msg.qp.QPN,
		WRID:   wr.WRID,
		Op:     OpRecv,
		Status: StatusSuccess,
		Bytes:  msg.n,
		Imm:    msg.imm,
		HasImm: msg.hasImm,
		Ctx:    msg.ctx,
		Data:   msg.data,

		FlipOff:  msg.flipOff,
		FlipMask: msg.flipMask,
		HdrTaint: msg.hdr,
		TornAt:   msg.tornAt,
	})
}

// SRQ is a shared receive queue: several QPs draw receive buffers from one
// pool, the standard MVAPICH arrangement for eager traffic at scale.
type SRQ struct {
	realm *Realm
	pool  recvPool
}

// NewSRQ creates a shared receive queue.
func (r *Realm) NewSRQ() *SRQ { return &SRQ{realm: r} }

// PostRecv adds a receive buffer to the shared pool.
func (s *SRQ) PostRecv(wr RecvWR) {
	s.realm.bump(&s.realm.stats.RecvsPosted, 1)
	s.pool.post(wr)
}

// Posted reports the number of unconsumed receive WRs in the pool.
func (s *SRQ) Posted() int { return s.pool.wrs.Len() }

// QPConfig configures queue pair creation.
type QPConfig struct {
	Port    *hca.Port
	CQ      *CQ
	SQDepth int  // max outstanding send WRs; 0 means 128
	SRQ     *SRQ // if set, receives come from the shared pool
}

// QP is a Reliable Connection queue pair. Descriptors on its send queue
// execute strictly in order (so a lone QP drives at most one send engine at
// a time), and every descriptor is acknowledged by the responder — the two
// hardware facts the paper's scheduling-policy analysis rests on.
type QP struct {
	QPN  int
	Port *hca.Port
	CQ   *CQ
	SRQ  *SRQ

	realm       *Realm
	remote      *QP
	flow        *hca.Flow // staged transmit pipeline toward the peer
	respFlow    *hca.Flow // responder resources for RDMA-read responses
	sqDepth     int
	outstanding int
	pool        recvPool

	// Fault-injection state: down rejects new posts, and epoch stamps every
	// in-flight descriptor so a failure can flush exactly the descriptors
	// that were in the air when it struck.
	down  bool
	epoch uint64

	// downSched, when non-nil, lists every future SetDown instant of this
	// QP (sharded runs precompute it from the static chaos plan). Remote-
	// side stages then evaluate "was this descriptor flushed?" from the
	// descriptor's own flushAfter stamp instead of reading the mutable
	// down/epoch fields across shards: a descriptor posted at P is lost at
	// time T iff some SetDown lies in (P, T], i.e. iff flushAfter ≤ T —
	// exactly the serial epoch comparison, since posts on a down QP are
	// rejected outright.
	downSched []sim.Time
}

// SetDownSched installs the precomputed SetDown timeline (sorted ascending).
// Sharded chaos plans call this for every QP they will down.
func (q *QP) SetDownSched(times []sim.Time) { q.downSched = times }

// flushAfterFor stamps a descriptor posted now: the first scheduled SetDown
// strictly after now, or maxTime when none (or when running serially).
func (q *QP) flushAfterFor(now sim.Time) sim.Time {
	for _, d := range q.downSched {
		if d > now {
			return d
		}
	}
	return maxTime
}

const maxTime = sim.Time(1<<63 - 1)

// SetDown transitions the QP into the error state: new posts fail with
// ErrQPDown, and descriptors currently in flight are flushed — those whose
// remote effect has not yet happened complete with StatusFlushErr at their
// originally booked completion time; those already effected at the peer
// complete successfully (exactly-once).
func (q *QP) SetDown() {
	if !q.down {
		q.down = true
		q.epoch++
	}
}

// SetUp returns a downed QP to service. In-flight descriptors from before
// the failure stay flushed (their epoch is stale).
func (q *QP) SetUp() { q.down = false }

// IsDown reports whether the QP is in the error state.
func (q *QP) IsDown() bool { return q.down }

// lost reports whether a descriptor stamped with epoch e was caught by a
// failure: the QP is still down, or a down/up cycle happened since.
func (q *QP) lost(e uint64) bool { return q.down || q.epoch != e }

// NewQP creates a queue pair.
func (r *Realm) NewQP(cfg QPConfig) *QP {
	if cfg.Port == nil || cfg.CQ == nil {
		panic("ib: NewQP requires a Port and a CQ")
	}
	depth := cfg.SQDepth
	if depth == 0 {
		depth = 128
	}
	r.qpn++
	return &QP{QPN: r.qpn, Port: cfg.Port, CQ: cfg.CQ, SRQ: cfg.SRQ, realm: r, sqDepth: depth}
}

// Connect pairs two QPs into a reliable connection. Both must be idle.
func Connect(a, b *QP) error {
	if a.remote != nil || b.remote != nil {
		return ErrNotConnected // already wired elsewhere
	}
	a.remote = b
	b.remote = a
	a.flow = a.Port.NewFlow(a.realm.Eng, b.Port)
	b.flow = b.Port.NewFlow(b.realm.Eng, a.Port)
	// RDMA-read responses are generated by the peer's responder hardware:
	// they share its engines and link but not its send-queue ordering.
	a.respFlow = b.Port.NewFlow(a.realm.Eng, a.Port)
	b.respFlow = a.Port.NewFlow(b.realm.Eng, b.Port)
	return nil
}

// Connected reports whether the QP has a peer.
func (q *QP) Connected() bool { return q.remote != nil }

// Remote returns the peer QP, or nil.
func (q *QP) Remote() *QP { return q.remote }

// Outstanding reports send WRs posted but not yet completed (acked).
func (q *QP) Outstanding() int { return q.outstanding }

// PostRecv posts a receive buffer on the QP's own receive queue. QPs bound
// to an SRQ must post through the SRQ instead.
func (q *QP) PostRecv(wr RecvWR) error {
	if q.SRQ != nil {
		return ErrBadWR
	}
	q.realm.bump(&q.realm.stats.RecvsPosted, 1)
	q.pool.post(wr)
	return nil
}

// PostedRecvs reports unconsumed receive WRs on the QP's own queue.
func (q *QP) PostedRecvs() int { return q.pool.wrs.Len() }

// PostSend posts a send-side descriptor. The simulated hardware books the
// full transfer pipeline immediately (reservations are monotonic, so
// contention still emerges); completion and delivery events fire at the
// booked instants. RDMA targets are validated synchronously — a convenience
// deviation from real verbs, which would surface an asynchronous error CQE.
func (q *QP) PostSend(wr SendWR) error {
	if q.remote == nil {
		return ErrNotConnected
	}
	if q.down {
		return ErrQPDown
	}
	if q.outstanding >= q.sqDepth {
		return ErrSQFull
	}
	// N is the wire payload size; Data may be shorter (protocol headers
	// account for the difference) but never longer.
	if wr.N < 0 || len(wr.Data) > wr.N {
		return ErrBadWR
	}

	var mr *MR
	switch wr.Op {
	case OpSend:
		q.realm.bump(&q.realm.stats.SendsPosted, 1)
	case OpRDMAWrite, OpRDMARead:
		var ok bool
		mr, ok = q.realm.LookupMR(wr.RKey)
		if !ok {
			return ErrBadRKey
		}
		if wr.RemoteOff < 0 || wr.RemoteOff+wr.N > mr.N {
			return ErrMRBounds
		}
		if wr.Op == OpRDMARead {
			q.realm.bump(&q.realm.stats.ReadsPosted, 1)
			q.realm.bump(&q.realm.stats.BytesRead, int64(wr.N))
			q.outstanding++
			q.postRead(wr, mr)
			return nil
		}
		q.realm.bump(&q.realm.stats.WritesPosted, 1)
	case OpAtomicFAdd, OpAtomicCAS:
		mr2, ok := q.realm.LookupMR(wr.RKey)
		if !ok {
			return ErrBadRKey
		}
		if wr.RemoteOff < 0 || wr.RemoteOff%8 != 0 || wr.RemoteOff+8 > mr2.N {
			return ErrMRBounds
		}
		q.realm.bump(&q.realm.stats.AtomicsPosted, 1)
		q.outstanding++
		q.postAtomic(wr, mr2)
		return nil
	default:
		return ErrBadWR
	}
	q.realm.bump(&q.realm.stats.BytesSent, int64(wr.N))
	q.outstanding++

	o := q.realm.getOp()
	o.q, o.epoch, o.op = q, q.epoch, wr.Op
	o.data, o.n, o.off = wr.Data, wr.N, wr.RemoteOff
	o.imm, o.hasImm, o.ctx = wr.Imm, wr.HasImm, wr.Ctx
	o.mr = mr
	o.wrid, o.signaled = wr.WRID, wr.Signaled
	o.crc = wr.CRC
	if wr.Payload && !wr.NoCorrupt {
		o.stampCorrupt(q.Port.CorruptNext(wr.Ring, wr.Ctx != nil))
	}
	o.stampFlush()
	q.flow.SendCtx(wr.N, o, opDelivered, opAcked)
	return nil
}

// wrOp is the pooled per-descriptor pipeline state: everything the delivery
// and completion stages need, carried through the HCA's ctx slot so posting
// a WR allocates nothing in steady state. The seed implementation captured
// all of this in two closures per post — the second-largest allocation site
// of the benchmark figures.
type wrOp struct {
	q        *QP
	epoch    uint64
	effected bool // remote effect happened before any failure
	op       Opcode

	// Payload view: data aliases the sender-owned backing array (an adi
	// envelope's pooled capture or the user's rendezvous buffer); for
	// OpRDMARead it is instead the LOCAL destination. No stage copies it
	// except the final placement into the target MR / destination buffer.
	data []byte
	n    int
	off  int

	imm    uint64
	hasImm bool
	ctx    any
	mr     *MR

	wrid     uint64
	signaled bool

	// Atomic operands and result.
	operand, swap, old uint64

	// Sharded-run state: flushAfter is the first SetDown instant after the
	// post (maxTime = cannot be flushed); hazardHeld marks an op that
	// raised the group's zero-latency hazard at post; captured holds the
	// responder-side snapshot of an RDMA-read region, taken at request
	// arrival so the response-side copy never reads remote memory across
	// shards (its backing array survives recycling).
	flushAfter  sim.Time
	hazardHeld  bool
	captured    []byte
	hasCaptured bool

	// Integrity state: the capture-time checksum (verification armed), the
	// corruption taint the port's plan assigned at post, and the verdict of
	// the receiving HCA's check. integrityFail is written at delivery on
	// the destination shard and read at ack on the source shard — the same
	// causal hand-off as effected.
	crc           uint32
	flipOff       int
	flipMask      byte
	hdrTaint      bool
	torn          bool
	integrityFail bool
}

// stampCorrupt derives the descriptor's taint from the port's plan draw.
// A flip picks one seeded byte and bit of the payload; a torn ring slot
// additionally pre-computes the stale-tail image (last payload byte) that a
// disarmed receiver consumes; a header fault carries the raw draw for the
// receive side's seeded length mangling.
func (o *wrOp) stampCorrupt(c hca.Corrupt) {
	switch {
	case c.Flip:
		if len(o.data) > 0 {
			o.flipOff = int(c.Rnd % uint64(len(o.data)))
		}
		o.flipMask = 1 << ((c.Rnd >> 8) % 8)
	case c.Torn:
		o.torn = true
		if len(o.data) > 0 {
			o.flipOff = len(o.data) - 1
		}
		o.flipMask = 1 << ((c.Rnd >> 8) % 8)
	case c.Hdr:
		o.hdrTaint = true
		o.flipOff = int(c.Rnd & 0xFFFF)
	}
}

// verifyTaint is the receiving-HCA check's self-check: the corrupt image
// must provably disagree with the capture-time checksum while the clean
// bytes still match it. Either failing is a model bug (a checksum that
// cannot see the fault it is rejecting), never a simulated fault.
func (o *wrOp) verifyTaint() {
	if o.crc == 0 || len(o.data) == 0 {
		return
	}
	if buf.Sum(o.data) != o.crc {
		panic("ib: captured payload no longer matches its capture-time checksum")
	}
	if o.flipMask != 0 && buf.SumFlipped(o.data, o.flipOff, o.flipMask) == o.crc {
		panic("ib: injected bit flip is invisible to the checksum")
	}
}

// verifyRead is the read-response analogue: reads carry no capture-time
// checksum (the responder's HCA computes it over the region as it streams),
// so the self-check only proves the flip would have changed the source
// bytes' checksum.
func (o *wrOp) verifyRead() {
	src := o.captured
	if !o.hasCaptured && o.mr.Buf != nil {
		k := o.n
		if len(o.mr.Buf)-o.off < k {
			k = len(o.mr.Buf) - o.off
		}
		src = o.mr.Buf[o.off : o.off+k]
	}
	if len(src) == 0 || o.flipMask == 0 {
		return
	}
	off := o.flipOff
	if off >= len(src) {
		off = len(src) - 1
	}
	if buf.SumFlipped(src, off, o.flipMask) == buf.Sum(src) {
		panic("ib: injected read flip is invisible to the checksum")
	}
}

// lostAt reports whether the descriptor was flushed by a failure as of
// virtual time t. Remote-side stages use it: serially it is the live epoch
// check; in sharded runs it is the precomputed flushAfter predicate.
func (o *wrOp) lostAt(t sim.Time) bool {
	if o.q.downSched == nil {
		return o.q.lost(o.epoch)
	}
	return o.flushAfter <= t
}

// stampFlush records the descriptor's flush horizon at post time. QPs with
// no scheduled failures (all serial runs, most sharded QPs) stamp maxTime.
func (o *wrOp) stampFlush() {
	q := o.q
	if q.downSched == nil {
		o.flushAfter = maxTime
		return
	}
	o.flushAfter = q.flushAfterFor(q.localNow())
}

// localNow reads the QP owner's clock: its port's node context in a sharded
// run (posts always execute on the owning shard), else the realm engine.
func (q *QP) localNow() sim.Time {
	if q.Port.Ctx != nil {
		return q.Port.Ctx.Now()
	}
	return q.realm.Eng.Now()
}

// raiseHazard marks a read/atomic that a scheduled failure can flush
// mid-flight: its flush completions mutate requester state from
// responder-side events with zero cross-shard latency, so the shard group
// must run merged (serial-order) windows while it is in flight. No-op for
// descriptors that cannot be lost and on plain engines.
func (o *wrOp) raiseHazard() {
	if o.flushAfter == maxTime {
		return
	}
	if c := o.q.Port.Ctx; c != nil {
		c.Engine().HazardInc()
		o.hazardHeld = true
	}
}

// dropHazard releases the merged-window hazard at any terminal completion.
func (o *wrOp) dropHazard() {
	if o.hazardHeld {
		o.hazardHeld = false
		o.q.Port.Ctx.Engine().HazardDec()
	}
}

func (r *Realm) getOp() *wrOp {
	if r.sharded {
		r.opMu.Lock()
		defer r.opMu.Unlock()
	}
	if n := len(r.ops); n > 0 {
		o := r.ops[n-1]
		r.ops[n-1] = nil
		r.ops = r.ops[:n-1]
		return o
	}
	return &wrOp{}
}

func (r *Realm) putOp(o *wrOp) {
	buf := o.captured[:0]
	*o = wrOp{}
	o.captured = buf
	if r.sharded {
		r.opMu.Lock()
		defer r.opMu.Unlock()
	}
	r.ops = append(r.ops, o)
}

// opDelivered fires when an OpSend/OpRDMAWrite payload is fully placed in
// remote memory: the remote effect happens here unless the descriptor's
// rail failed first.
func opDelivered(a any, t hca.Timing) {
	o := a.(*wrOp)
	q := o.q
	if o.lostAt(t.InMemory) {
		return
	}
	armed := q.realm.integrity
	if armed && !o.torn && (o.flipMask != 0 || o.hdrTaint) {
		// The receiving HCA's ICRC check rejects the corrupt image: nothing
		// is placed, no receive completes, and the ack carries the NAK
		// (StatusIntegrityErr at opAcked). effected stays false — exactly a
		// lost chunk's footprint at the responder.
		o.verifyTaint()
		o.integrityFail = true
		return
	}
	flipOff, flipMask, hdr := o.flipOff, o.flipMask, o.hdrTaint
	var tornAt sim.Time
	if o.torn && armed {
		// Armed torn write: the doorbell outran the payload, but the slot
		// format carries a consistency marker, so the bytes are merely late,
		// not wrong. The slot settles shortly after placement; the ring
		// consume guard re-polls until then and never sees the stale tail.
		flipOff, flipMask = 0, 0
		tornAt = t.InMemory + q.realm.M.TornSettle
	}
	o.effected = true
	remote := q.remote
	switch o.op {
	case OpSend:
		remote.arrive(message{qp: remote, data: o.data, n: o.n, imm: o.imm, hasImm: o.hasImm, ctx: o.ctx,
			flipOff: flipOff, flipMask: flipMask, hdr: hdr})
	case OpRDMAWrite:
		if o.mr.Buf != nil && o.data != nil {
			k := o.n
			if len(o.data) < k {
				k = len(o.data)
			}
			copy(o.mr.Buf[o.off:o.off+k], o.data[:k])
			if flipMask != 0 && flipOff < k {
				// Disarmed flip (or stale torn tail) materializes in the
				// receiver's memory only — sender-owned views stay intact.
				o.mr.Buf[o.off+flipOff] ^= flipMask
			}
		}
		if o.hasImm {
			remote.arrive(message{qp: remote, n: o.n, imm: o.imm, hasImm: true, ctx: o.ctx,
				flipOff: flipOff, flipMask: flipMask, hdr: hdr, tornAt: tornAt})
		}
	}
}

// opAcked fires when the RC acknowledgment returns; it is provably the last
// pipeline reference to the op, so it recycles the state.
func opAcked(a any, _ hca.Timing) {
	o := a.(*wrOp)
	q := o.q
	if o.integrityFail && !q.lost(o.epoch) {
		// NAK Invalid-ICRC: the requester HCA retransmits autonomously —
		// a transport-level retry below the verbs layer, exempt from further
		// corruption (a transient flip does not repeat) and alive even when
		// the consumer never polls again. A signaled WR surfaces one
		// informational StatusIntegrityErr CQE per rejection so software can
		// tally it and strike the rail; the completion callback semantics
		// ride the eventual success CQE of the same WRID.
		if o.signaled {
			q.CQ.push(CQE{QPN: q.QPN, WRID: o.wrid, Op: o.op, Status: StatusIntegrityErr, Bytes: o.n})
		}
		o.integrityFail = false
		o.flipOff, o.flipMask, o.hdrTaint, o.torn = 0, 0, false, false
		q.flow.SendCtx(o.n, o, opDelivered, opAcked)
		return
	}
	o.integrityFail = false // rail died before the retry: the flush wins
	q.outstanding--
	st := StatusSuccess
	if q.lost(o.epoch) && !o.effected {
		st = StatusFlushErr
	}
	if o.signaled {
		e := CQE{QPN: q.QPN, WRID: o.wrid, Op: o.op, Status: st, Bytes: o.n}
		if st == StatusSuccess && !q.realm.integrity && (o.flipMask != 0 || o.hdrTaint) {
			// Disarmed taint echo: the receiver of a stripe has no receive
			// completion to see the corruption on, so audit mode reads it off
			// the sender's success CQE.
			e.FlipOff, e.FlipMask, e.HdrTaint = o.flipOff, o.flipMask, o.hdrTaint
		}
		q.CQ.push(e)
	}
	q.realm.putOp(o)
}

// postRead models an RDMA read: a header-only request rides the requester's
// flow; the responder then streams the region back on its responder
// resources. The completion fires when the data lands in local memory
// (read responses carry their own completion semantics; the trailing
// response-path acknowledgment is a negligible modeling artifact).
func (q *QP) postRead(wr SendWR, mr *MR) {
	o := q.realm.getOp()
	o.q, o.epoch, o.op = q, q.epoch, OpRDMARead
	o.data, o.n, o.off = wr.Data, wr.N, wr.RemoteOff
	o.mr = mr
	o.wrid, o.signaled = wr.WRID, wr.Signaled
	if wr.Payload && !wr.NoCorrupt {
		o.stampCorrupt(q.Port.CorruptNext(false, false))
	}
	o.stampFlush()
	o.raiseHazard()
	q.flow.SendCtx(0, o, readReqDelivered, nil)
}

// flushRead completes a read flushed by a failure and recycles its op.
// In a sharded run this can execute on the responder's shard, mutating
// requester state with zero cross-shard latency — which is exactly why a
// flushable read holds the group hazard, forcing merged (serial) windows
// for its whole flight.
func (o *wrOp) flushRead() {
	q := o.q
	q.outstanding--
	if o.signaled {
		q.CQ.push(CQE{QPN: q.QPN, WRID: o.wrid, Op: OpRDMARead, Status: StatusFlushErr, Bytes: o.n})
	}
	o.dropHazard()
	q.realm.putOp(o)
}

// readReqDelivered fires when the read request reaches the responder, which
// then streams the region back on the requester's responder resources.
func readReqDelivered(a any, t hca.Timing) {
	o := a.(*wrOp)
	if o.lostAt(t.InMemory) {
		o.flushRead() // request lost before reaching the responder
		return
	}
	if o.q.realm.sharded && o.data != nil && o.mr.Buf != nil {
		// Snapshot the source region on the responder's shard: the
		// response-side copy below then never reads remote memory across
		// shards. (Serially the bytes are read at response delivery; the
		// snapshot is equivalent because nothing writes the region while a
		// read of it is in flight — RC ordering per QP, and the protocol
		// layer never issues conflicting RMA to an outstanding-read region.)
		k := o.n
		if len(o.data) < k {
			k = len(o.data)
		}
		o.captured = append(o.captured[:0], o.mr.Buf[o.off:o.off+k]...)
		o.hasCaptured = true
	}
	o.q.respFlow.SendCtx(o.n, o, readRespDelivered, nil)
}

// readRespDelivered fires when the read data lands in local memory.
func readRespDelivered(a any, t hca.Timing) {
	o := a.(*wrOp)
	q := o.q
	if o.lostAt(t.InMemory) {
		o.flushRead() // response lost in flight; no local memory was touched
		return
	}
	if q.realm.integrity && o.flipMask != 0 {
		// The requester's HCA ICRC check rejects the corrupt read response:
		// local memory is untouched and the transport re-issues the read
		// autonomously, exempt from further corruption. One informational
		// StatusIntegrityErr CQE per rejection lets software tally it; the
		// op itself stays in flight until the clean response lands.
		o.verifyRead()
		if o.signaled {
			q.CQ.push(CQE{QPN: q.QPN, WRID: o.wrid, Op: OpRDMARead, Status: StatusIntegrityErr, Bytes: o.n})
		}
		o.flipOff, o.flipMask = 0, 0
		q.flow.SendCtx(0, o, readReqDelivered, nil)
		return
	}
	if o.hasCaptured {
		copy(o.data[:len(o.captured)], o.captured)
	} else if o.data != nil && o.mr.Buf != nil {
		k := o.n
		if len(o.data) < k {
			k = len(o.data)
		}
		copy(o.data[:k], o.mr.Buf[o.off:o.off+k])
	}
	if o.flipMask != 0 && o.data != nil {
		off := o.flipOff
		if off >= len(o.data) {
			off = len(o.data) - 1
		}
		if off >= 0 {
			// Disarmed read flip materializes in the requester's local copy
			// only — the responder's region is never touched.
			o.data[off] ^= o.flipMask
		}
	}
	q.outstanding--
	if o.signaled {
		e := CQE{QPN: q.QPN, WRID: o.wrid, Op: OpRDMARead, Status: StatusSuccess, Bytes: o.n}
		if o.flipMask != 0 {
			e.FlipOff, e.FlipMask = o.flipOff, o.flipMask
		}
		q.CQ.push(e)
	}
	o.dropHazard()
	q.realm.putOp(o)
}

// postAtomic models an IB atomic: a small request travels to the responder,
// whose HCA performs the 8-byte read-modify-write in arrival order (the
// simulation's event serialization provides the atomicity guarantee the
// hardware does) and streams the original value back.
func (q *QP) postAtomic(wr SendWR, mr *MR) {
	o := q.realm.getOp()
	o.q, o.epoch, o.op = q, q.epoch, wr.Op
	o.off, o.mr = wr.RemoteOff, mr
	o.operand, o.swap = wr.CompareAdd, wr.Swap
	o.wrid, o.signaled = wr.WRID, wr.Signaled
	o.stampFlush()
	o.raiseHazard()
	q.flow.SendCtx(8, o, atomicReqDelivered, nil)
}

// atomicReqDelivered fires when the atomic request reaches the responder,
// whose HCA performs the 8-byte read-modify-write in arrival order (the
// simulation's event serialization provides the atomicity guarantee the
// hardware does) and streams the original value back.
func atomicReqDelivered(a any, t hca.Timing) {
	o := a.(*wrOp)
	q := o.q
	if o.lostAt(t.InMemory) {
		// Request lost before the responder applied it: flush, so the
		// requester may safely retry without double-applying.
		q.outstanding--
		if o.signaled {
			q.CQ.push(CQE{QPN: q.QPN, WRID: o.wrid, Op: o.op, Status: StatusFlushErr, Bytes: 8})
		}
		o.dropHazard()
		q.realm.putOp(o)
		return
	}
	if o.mr.Buf != nil {
		b := o.mr.Buf[o.off : o.off+8]
		var old uint64
		for i := 0; i < 8; i++ {
			old |= uint64(b[i]) << (8 * i)
		}
		var next uint64
		switch o.op {
		case OpAtomicFAdd:
			next = old + o.operand
		case OpAtomicCAS:
			next = old
			if old == o.operand {
				next = o.swap
			}
		}
		for i := 0; i < 8; i++ {
			b[i] = byte(next >> (8 * i))
		}
		o.old = old
	}
	o.q.respFlow.SendCtx(8, o, atomicRespDelivered, nil)
}

// atomicRespDelivered completes the atomic at the requester. The RMW was
// applied at the responder, so it completes successfully even if a failure
// struck while the response was in flight — retrying an applied atomic
// would double-apply it.
func atomicRespDelivered(a any, _ hca.Timing) {
	o := a.(*wrOp)
	q := o.q
	q.outstanding--
	if o.signaled {
		q.CQ.push(CQE{QPN: q.QPN, WRID: o.wrid, Op: o.op, Status: StatusSuccess, Bytes: 8, AtomicOld: o.old})
	}
	o.dropHazard()
	q.realm.putOp(o)
}

// arrive routes an inbound message to the QP's receive pool (own or shared).
func (q *QP) arrive(msg message) {
	if q.SRQ != nil {
		q.SRQ.pool.arrive(msg)
		return
	}
	q.pool.arrive(msg)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
