package adi

import (
	"sync"

	"ib12x/internal/buf"
	"ib12x/internal/core"
	"ib12x/internal/ib"
	"ib12x/internal/model"
	"ib12x/internal/regcache"
	"ib12x/internal/shmem"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
	"ib12x/internal/trace"
)

// Options configures world construction.
type Options struct {
	// Policy selects a built-in scheduling policy kind. Ignored if
	// PolicyImpl is set.
	Policy core.Kind
	// PolicyImpl overrides the policy with a custom implementation.
	PolicyImpl core.Policy
	// MinStripe overrides the model's minimum stripe size (bytes).
	MinStripe int
	// BindRail, if set, chooses the bound rail per (rank, peer)
	// connection — the knob behind the binding policy. Defaults to rail 0.
	BindRail func(rank, peer int) int
	// SQDepth overrides the per-QP send queue depth (default 128).
	SQDepth int
	// Rndv selects the rendezvous protocol (default RndvWrite, the
	// paper's RPUT; RndvRead is the MVAPICH RGET variant).
	Rndv RndvProto
	// EagerProto selects the eager channel (default EagerSendRecv, the
	// historical send/recv path; EagerRDMAWrite negotiates a persistent
	// per-peer ring per connection direction at connect — DESIGN.md §16).
	EagerProto EagerProto
	// Trace, when non-nil, receives every rank's protocol events.
	Trace *trace.Recorder
	// FaultEvery injects a deterministic transmission error on every N-th
	// chunk of every port (0 = error-free fabric). Lost chunks pay the RC
	// retransmit timeout; payloads still arrive intact.
	FaultEvery int64
	// RegCache, when non-nil, arms the pin-down registration cache on every
	// endpoint: rendezvous and one-sided bulk transfers pay virtual-time
	// registration charges for buffers the per-endpoint LRU does not cover.
	// nil preserves the historical free-registration behavior.
	RegCache *regcache.Config
	// Integrity selects the end-to-end checksum mode (integrity.go;
	// DESIGN.md §17). The zero value (IntegrityOff) preserves every
	// historical digest. IntegrityVerify implies rail-recovery WR tracking
	// (a NACKed payload must be retransmittable).
	Integrity IntegrityMode
}

// World is a fully wired simulated MPI job: hardware topology plus one
// endpoint per rank, all connections established.
type World struct {
	Eng       *sim.Engine
	M         *model.Params
	Cluster   *topo.Cluster
	Realm     *ib.Realm
	Endpoints []*Endpoint

	bufs         *buf.Pool
	railRecovery bool
	rel          *ReliabilityConfig

	// Sharded-engine state (NewWorldSharded): the shard group, the
	// node→shard table, and the per-shard trace child recorders. nil/empty
	// on a serial world.
	grp      *sim.Group
	shardOf  []int
	trShards []*trace.Recorder
}

// Group reports the shard group driving this world (nil when serial).
func (w *World) Group() *sim.Group { return w.grp }

// lockedPolicy serializes a scheduling policy shared across shards. The
// built-in policies' only mutable state is a pure memoization cache, so
// serializing access changes nothing observable; the lock merely keeps the
// cache map safe. Plans served from the cache are immutable by the Policy
// contract, so concurrent readers of a returned plan are fine.
type lockedPolicy struct {
	mu sync.Mutex
	p  core.Policy
}

func (l *lockedPolicy) Name() string { return l.p.Name() }

func (l *lockedPolicy) PickEager(c core.Class, size, rails int, st *core.ConnState) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.PickEager(c, size, rails, st)
}

func (l *lockedPolicy) PlanBulk(c core.Class, size, rails int, st *core.ConnState) []core.Stripe {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.PlanBulk(c, size, rails, st)
}

// BufLive reports payload blocks handed out of the world's buffer pool and
// not yet released. After every request of a quiesced run has completed it
// must be zero — the chaos oracle enforces that as a leak invariant.
func (w *World) BufLive() int { return w.bufs.Live() }

// EnableBufAudit arms allocation-site recording on the world's payload pool:
// every view handed out is stamped with its owner tag and the virtual time
// of the allocation, so a BufLive leak report names the site, not just the
// count. Call before the run starts.
func (w *World) EnableBufAudit() {
	if w.grp != nil {
		// Allocations happen on every shard; the group's window start is
		// the only clock safely readable from all of them. Audit stamps
		// only label leak reports, so window granularity is enough.
		g := w.grp
		w.bufs.EnableAudit(func() int64 { return int64(g.WindowStart()) })
		return
	}
	w.bufs.EnableAudit(func() int64 { return int64(w.Eng.Now()) })
}

// BufLiveReport names each outstanding payload allocation by owner tag and
// allocation time ("" when nothing is outstanding or auditing is off).
func (w *World) BufLiveReport() string { return w.bufs.LiveReport() }

// EnableRailRecovery arms in-flight work-request tracking on every endpoint.
// It must be called before the run starts (and before any SetRail) so a
// flushed WR can always be rerouted; fault-free worlds skip the bookkeeping.
func (w *World) EnableRailRecovery() {
	if w.railRecovery {
		return
	}
	w.railRecovery = true
	for _, ep := range w.Endpoints {
		ep.trackWR = true
		ep.inflight = make(map[uint64]*inflightWR)
	}
}

// EnableReliability arms the self-healing rail layer on every endpoint: the
// per-rail health state machine, virtual-time completion deadlines, backoff
// retransmission, and probe-driven reintegration (see reliability.go). It
// implies EnableRailRecovery and must be called before the run starts. With
// the layer armed, SetRail only flips QP hardware state — the endpoints
// detect failures and recoveries on their own, with no operator-injected
// mask updates.
func (w *World) EnableReliability(cfg ReliabilityConfig) {
	if w.rel != nil {
		return
	}
	rc := cfg.withDefaults()
	w.rel = rc
	w.EnableRailRecovery()
	for _, ep := range w.Endpoints {
		ep.rel = rc
		ep.probes = make(map[uint64]probeRef)
		for _, conn := range ep.conns {
			if conn != nil && conn.sh == nil && len(conn.rails) > 0 {
				conn.health = make([]railHealth, len(conn.rails))
			}
		}
		ep.startHealthTimer()
	}
}

// Reliability reports the armed reliability config (nil when the layer is
// off).
func (w *World) Reliability() *ReliabilityConfig { return w.rel }

// SetRail fails (up=false) or recovers (up=true) rail index rail of every
// inter-node connection touching the given node: both QP halves transition
// together. In legacy (operator-driven) mode both endpoints also update
// their policy-visible health masks directly; with EnableReliability armed
// only the hardware state flips, and the endpoints must discover the change
// themselves. Failing a rail requires EnableRailRecovery to have been
// called.
func (w *World) SetRail(node, rail int, up bool) {
	if !up && !w.railRecovery {
		panic("adi: SetRail(down) without EnableRailRecovery")
	}
	for i, epi := range w.Endpoints {
		if w.Cluster.NodeOf(i) != node {
			continue
		}
		for j, epj := range w.Endpoints {
			conn := epi.conns[j]
			if conn == nil || conn.sh != nil || rail < 0 || rail >= len(conn.rails) {
				continue
			}
			qpi := conn.rails[rail]
			qpj := epj.conns[i].rails[rail]
			if up {
				qpi.SetUp()
				qpj.SetUp()
				if w.rel == nil {
					epi.railUp(j, rail)
					epj.railUp(i, rail)
				}
			} else {
				qpi.SetDown()
				qpj.SetDown()
				if w.rel == nil {
					epi.railDown(j, rail)
					epj.railDown(i, rail)
				}
			}
		}
	}
}

// SetRailHalf applies the execNode-owned half of SetRail(target, rail, up):
// it flips, for every endpoint on execNode, the local QP halves (and legacy
// policy masks) of its inter-node connections touching target. A sharded
// chaos plan decomposes each SetRail into one SetRailHalf per involved node,
// posted on that node's own shard, so no shard ever mutates another shard's
// QPs or endpoint state. The union over execNodes is exactly the serial
// SetRail, and setup-phase event keys order every half before any runtime
// event at the same instant — just as the serial single event does.
func (w *World) SetRailHalf(execNode, target, rail int, up bool) {
	if !up && !w.railRecovery {
		panic("adi: SetRailHalf(down) without EnableRailRecovery")
	}
	for i, ep := range w.Endpoints {
		if w.Cluster.NodeOf(i) != execNode {
			continue
		}
		for j, conn := range ep.conns {
			if conn == nil || conn.sh != nil || rail < 0 || rail >= len(conn.rails) {
				continue
			}
			if w.Cluster.NodeOf(i) != target && w.Cluster.NodeOf(j) != target {
				continue
			}
			qp := conn.rails[rail]
			if up {
				qp.SetUp()
				if w.rel == nil {
					ep.railUp(j, rail)
				}
			} else {
				qp.SetDown()
				if w.rel == nil {
					ep.railDown(j, rail)
				}
			}
		}
	}
}

// ForEachRailQP visits the local QP half of rail index rail on every
// inter-node connection touching node — each endpoint's own half exactly
// once. Sharded chaos plans use it to precompute per-QP failure timelines.
func (w *World) ForEachRailQP(node, rail int, fn func(*ib.QP)) {
	for i, ep := range w.Endpoints {
		for j, conn := range ep.conns {
			if conn == nil || conn.sh != nil || rail < 0 || rail >= len(conn.rails) {
				continue
			}
			if w.Cluster.NodeOf(i) != node && w.Cluster.NodeOf(j) != node {
				continue
			}
			fn(conn.rails[rail])
		}
	}
}

// NewWorld builds the cluster hardware and wires every process pair:
// shared-memory links within a node, `spec.Rails()` QP rails between nodes.
func NewWorld(eng *sim.Engine, m *model.Params, spec topo.Spec, opt Options) *World {
	return buildWorld(eng, nil, nil, m, spec, opt)
}

// NewWorldSharded builds the same world over a shard group: every node's
// endpoints, ports and shared-memory links bind to the node's shard engine,
// and the world's cross-shard resources (envelope pool, payload pool, MR
// realm, scheduling policy, trace recorder) switch to their thread-safe
// modes. shardOf maps node→shard, as produced by topo.Spec.ShardPlan.
func NewWorldSharded(g *sim.Group, shardOf []int, m *model.Params, spec topo.Spec, opt Options) *World {
	return buildWorld(g.Engines()[0], g, shardOf, m, spec, opt)
}

func buildWorld(eng *sim.Engine, g *sim.Group, shardOf []int, m *model.Params, spec topo.Spec, opt Options) *World {
	cluster := topo.Build(spec, m)
	realm := ib.NewRealm(eng, m)

	policy := opt.PolicyImpl
	if policy == nil {
		minStripe := opt.MinStripe
		if minStripe == 0 {
			minStripe = m.MinStripe
		}
		policy = core.New(opt.Policy, minStripe)
	}

	w := &World{Eng: eng, M: m, Cluster: cluster, Realm: realm, grp: g, shardOf: shardOf}
	if g != nil {
		realm.EnableSharded()
		policy = &lockedPolicy{p: policy}
		for _, node := range cluster.Nodes {
			ctx := g.Ctx(node.ID)
			for _, port := range node.Ports() {
				port.Ctx = ctx
			}
		}
		if opt.Trace != nil {
			w.trShards = make([]*trace.Recorder, g.Shards())
			for s, se := range g.Engines() {
				w.trShards[s] = opt.Trace.Child(se)
			}
		}
	}
	if opt.FaultEvery > 0 {
		for _, node := range cluster.Nodes {
			for _, port := range node.Ports() {
				port.ErrorEvery = opt.FaultEvery
			}
		}
	}
	n := spec.Size()
	// One envelope pool and one payload-block pool per world: both are
	// allocated at the sender but freed at the receiver, so they must span
	// endpoints.
	pool := &envPool{locked: g != nil}
	w.bufs = &buf.Pool{}
	if g != nil {
		w.bufs.EnableLocking()
	}
	engOf := func(node int) *sim.Engine {
		if g == nil {
			return eng
		}
		return g.Ctx(node).Engine()
	}
	for r := 0; r < n; r++ {
		node := cluster.NodeOf(r)
		ep := newEndpoint(r, engOf(node), m, realm, policy, opt.Rndv, n, pool, w.bufs)
		ep.eagerProto = opt.EagerProto
		ep.integrity = opt.Integrity
		ep.tr = opt.Trace
		if g != nil && opt.Trace != nil {
			ep.tr = w.trShards[shardOf[node]]
		}
		if opt.RegCache != nil {
			// Per-endpoint state, not a global constant: each rank's cache
			// warms and evicts on its own traffic (Zambre et al.'s endpoint
			// independence argument).
			ep.reg = regcache.New(*opt.RegCache)
		}
		w.Endpoints = append(w.Endpoints, ep)
	}

	bind := opt.BindRail
	if bind == nil {
		bind = func(rank, peer int) int { return 0 }
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			epi, epj := w.Endpoints[i], w.Endpoints[j]
			ci := &Conn{peer: j, sched: core.ConnState{Bound: bind(i, j)}, credits: m.EagerCredits}
			cj := &Conn{peer: i, sched: core.ConnState{Bound: bind(j, i)}, credits: m.EagerCredits}
			if cluster.SameNode(i, j) {
				sheng := engOf(cluster.NodeOf(i))
				ci.sh = shmem.New(sheng, m)
				cj.sh = shmem.New(sheng, m)
				ci.sh.SetDeliver(shmemSink(epj))
				cj.sh.SetDeliver(shmemSink(epi))
			} else {
				portsI := cluster.PortsOf(i)
				portsJ := cluster.PortsOf(j)
				for r := 0; r < spec.Rails(); r++ {
					pidx := r / spec.QPsPerPort
					qpi := realm.NewQP(ib.QPConfig{Port: portsI[pidx], CQ: epi.cq, SRQ: epi.srq, SQDepth: opt.SQDepth})
					qpj := realm.NewQP(ib.QPConfig{Port: portsJ[pidx], CQ: epj.cq, SRQ: epj.srq, SQDepth: opt.SQDepth})
					if err := ib.Connect(qpi, qpj); err != nil {
						panic(err)
					}
					ci.rails = append(ci.rails, qpi)
					cj.rails = append(cj.rails, qpj)
					epi.qpIdx[qpi.QPN] = qpi
					epj.qpIdx[qpj.QPN] = qpj
				}
				if opt.EagerProto == EagerRDMAWrite {
					// Connect-time ring negotiation: each direction gets its
					// own slot array at the receiver and header cache at the
					// sender.
					ci.ring = newEagerRing(realm, m)
					cj.ring = newEagerRing(realm, m)
					ci.hdr = newHdrCache(m.HdrCacheSlots)
					cj.hdr = newHdrCache(m.HdrCacheSlots)
				}
			}
			epi.conns[j] = ci
			epj.conns[i] = cj
		}
	}
	if opt.Integrity == IntegrityVerify {
		// Arm the receiving-HCA check and the WR tracking the NACK-driven
		// retransmission depends on.
		realm.EnableIntegrity()
		w.EnableRailRecovery()
	}
	return w
}

// shmemSink delivers an intra-node message into an endpoint's inbox and
// wakes its rank.
func shmemSink(ep *Endpoint) func(shmem.Msg) {
	return func(msg shmem.Msg) {
		ep.shmemIn.Put(msg)
		ep.wake()
	}
}

// Spawn starts one simulated process per rank running body and returns the
// procs. body runs with the endpoint already attached. In a sharded world
// each rank's proc lives on its node's shard engine.
func (w *World) Spawn(name string, body func(ep *Endpoint)) []*sim.Proc {
	procs := make([]*sim.Proc, len(w.Endpoints))
	for i, ep := range w.Endpoints {
		ep := ep
		run := func(p *sim.Proc) {
			ep.Attach(p)
			body(ep)
		}
		if w.grp != nil {
			procs[i] = w.grp.Ctx(w.Cluster.NodeOf(ep.Rank)).Spawn(procName(name, ep.Rank), run)
		} else {
			procs[i] = w.Eng.Spawn(procName(name, ep.Rank), run)
		}
	}
	return procs
}

func procName(base string, rank int) string {
	return base + "/rank" + itoa(rank)
}

// itoa avoids pulling strconv into the hot path for a two-digit rank.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
