// End-to-end payload integrity (DESIGN.md §17): ICRC-style checksums
// computed once at capture time, carried with the wire message, and checked
// by the receiving HCA before placement. A failed check NACKs the work
// request back to the requester's HCA, which retransmits it autonomously at
// the transport level — exempt from further corruption, like a real link
// whose transient flip does not repeat, and independent of whether software
// ever polls again. Each rejection surfaces one informational
// StatusIntegrityErr completion so the endpoint can tally it and book a
// strike against the rail with the reliability layer, so a persistently
// flipping rail is quarantined exactly like one blowing completion deadlines.
//
// Three modes:
//
//   - IntegrityOff (zero value): the historical transport. Chaos corruption
//     plans deliver their corrupted images to application memory; each such
//     delivery is tallied (CorruptDeliveries) and traced, which is the audit
//     trail the silent-corruption study reads.
//   - IntegrityAudit: identical virtual-time behavior to Off — no charges,
//     corruption still delivered — but checksums are computed and carried so
//     the model can self-check that every injected fault is detectable
//     (an undetectable fault panics: it is a model bug, not a simulated one).
//   - IntegrityVerify: checksums are charged (ChecksumCost + size at
//     ChecksumRate, once at capture and once at verification), corrupted
//     placements are suppressed at the receiving HCA, and the NACK path
//     retransmits. Payload digests are bit-identical to a fault-free run.
package adi

import (
	"ib12x/internal/buf"
	"ib12x/internal/ib"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// IntegrityMode selects the end-to-end checksum model (Options.Integrity).
type IntegrityMode int

const (
	// IntegrityOff is the historical transport: no checksums, corruption
	// plans deliver, deliveries are tallied. The zero value preserves every
	// historical digest.
	IntegrityOff IntegrityMode = iota
	// IntegrityAudit carries checksums for self-checking without charging
	// for them or suppressing corrupt placements.
	IntegrityAudit
	// IntegrityVerify arms the receiving-HCA check, the charges, and the
	// NACK-driven retransmission. Implies rail-recovery WR tracking.
	IntegrityVerify
)

func (m IntegrityMode) String() string {
	switch m {
	case IntegrityOff:
		return "off"
	case IntegrityAudit:
		return "audit"
	case IntegrityVerify:
		return "verify"
	default:
		return "IntegrityMode(?)"
	}
}

// Shielded runs f with corruption injection disabled for every send this
// endpoint initiates inside it. The mpi layer wraps its protocol-metadata
// exchanges in it — window rkey distribution, fence count exchange — whose
// bytes steer protocol control flow rather than carry application data: a
// flipped rkey or fence count would wedge or crash the run, and the chaos
// fault model is liveness-safe by construction (payload faults corrupt
// answers, never progress). Real header bytes enjoy the same distinction:
// they are VCRC-checked per hop, while payload rides end-to-end on the ICRC
// this package models.
func (ep *Endpoint) Shielded(f func()) {
	ep.shield++
	defer func() { ep.shield-- }()
	f()
}

// checksumTime is the modeled cost of one checksum pass over n bytes.
func (ep *Endpoint) checksumTime(n int) sim.Time {
	return ep.m.ChecksumCost + sim.TransferTime(int64(n), ep.m.ChecksumRate)
}

// stampPayloadCRC books an eager payload's capture-time checksum on its
// envelope: Audit computes it silently, Verify also charges the pass. The
// charge is independent of whether the run carries real bytes — synthetic
// (nil-buffer) workloads model the same wire traffic, and a real HCA
// checksums every payload — only the actual CRC needs bytes to exist.
func (ep *Endpoint) stampPayloadCRC(env *envelope, n int) {
	if ep.integrity == IntegrityOff {
		return
	}
	if ep.integrity == IntegrityVerify {
		ep.charge(ep.checksumTime(n))
	}
	if env.pay.Zero() {
		return
	}
	env.crc, env.hasCRC = buf.Sum(env.pay.Bytes()[:n]), true
}

// verifyEagerCRC runs the receiver-side check of a delivered eager payload.
// With Verify armed a corrupted envelope can never reach here (the HCA
// suppressed it), so a mismatch is a model escape, not a simulated fault.
// Audit asserts the complementary property: the carried taint, if any, must
// be visible to the checksum it rode with.
func (ep *Endpoint) verifyEagerCRC(env *envelope) {
	if ep.integrity == IntegrityVerify {
		ep.charge(ep.checksumTime(env.size))
	}
	if !env.hasCRC || env.pay.Zero() {
		return
	}
	pay := env.pay.Bytes()[:env.size]
	if env.flipMask == 0 && !env.hdrTaint {
		if buf.Sum(pay) != env.crc {
			panic("adi: clean eager payload fails its capture-time checksum")
		}
		return
	}
	if env.flipMask != 0 && env.flipOff < env.size &&
		buf.SumFlipped(pay, env.flipOff, env.flipMask) == env.crc {
		panic("adi: delivered bit flip is invisible to the checksum (escape)")
	}
}

// verifyAssembled runs the receiver-side whole-message check of a completed
// rendezvous transfer: the pass over the assembled buffer against the
// checksum the RTS carried. A mismatch is an escape — with Verify armed
// every corrupt stripe was already suppressed and retransmitted, so the
// assembled bytes must match the sender's capture. Truncated transfers skip
// the compare (the checksum covers more bytes than arrived) but still pay
// the modeled pass under Verify.
// Audit mode skips the compare: corrupted stripes are delivered there by
// design, so a mismatch is the expected signal (tallied via the sender-side
// taint echo), not an escape.
func (ep *Endpoint) verifyAssembled(req *Request) {
	if ep.integrity != IntegrityVerify {
		return
	}
	n := req.status.Count
	ep.charge(ep.checksumTime(n))
	if !req.crcSet || req.data == nil || req.status.Err != nil {
		return
	}
	if buf.Sum(req.data[:n]) != req.crc {
		panic("adi: assembled rendezvous payload fails its whole-message checksum (escape)")
	}
}

// corruptDelivered tallies one corrupted payload reaching application-owned
// memory — the audit trail the silent-corruption study reads. peer may be
// -1 when the completion does not identify the connection (stripe echoes).
func (ep *Endpoint) corruptDelivered(peer, n int) {
	ep.stats.CorruptDeliveries++
	ep.trace(trace.KindCorruptDeliver, peer, n, -1)
}

// nackNoticed books one receiving-HCA integrity rejection surfaced on an
// informational completion. The retransmission already happened below the
// verbs layer — the requester's HCA retries autonomously on the NAK, exempt
// from further corruption — so software neither reposts nor unregisters the
// WR (its inflight entry and callbacks ride the eventual success completion).
// It tallies the NACK, traces it, and books a strike against the rail when
// the reliability layer is armed, so a rail that corrupts persistently is
// quarantined like one missing completion deadlines.
func (ep *Endpoint) nackNoticed(cqe ib.CQE) {
	ep.stats.IntegrityNacks++
	fl, ok := ep.inflight[cqe.WRID]
	if !ok {
		// Untracked WR (recovery off): tally without connection identity.
		ep.trace(trace.KindIntegrityNack, -1, cqe.Bytes, -1)
		return
	}
	ep.trace(trace.KindIntegrityNack, fl.conn.peer, fl.wr.N, fl.rail)
	if ep.rel != nil && fl.conn.health != nil {
		ep.strike(fl.conn, fl.rail)
	}
}
