package adi

import (
	"ib12x/internal/buf"
	"ib12x/internal/core"
	"ib12x/internal/ib"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// ---- eager protocol (size < RendezvousThreshold) ----

// sendEager captures the payload into a pooled view — the one copy of the
// eager path — and ships it whole on the rail the policy picks. The request
// completes immediately (buffered send semantics, as in MVAPICH). Under
// EagerRDMAWrite the message rides the per-peer ring (ring.go) when it
// fits; otherwise — ring full, oversized, or torn down — it falls through
// to the send/recv channel below.
func (ep *Endpoint) sendEager(conn *Conn, req *Request) {
	if ep.eagerProto == EagerRDMAWrite && ep.sendEagerRing(conn, req) {
		return
	}
	env := ep.pool.get()
	env.kind, env.src, env.tag, env.ctxID = envEager, ep.Rank, req.tag, req.ctxID
	env.size, env.seq = req.n, conn.sendSeq
	env.noCorrupt = req.noCorrupt
	conn.sendSeq++
	if req.data != nil {
		env.pay = ep.capture(req.data, req.n, "eager")
		ep.charge(sim.TransferTime(int64(req.n), ep.m.EagerCopyRate))
	}
	ep.stampPayloadCRC(env, req.n)
	var rail int
	if req.lane != NoLane {
		rail = core.LaneRail(req.lane, len(conn.rails), conn.sched.Dead)
	} else {
		rail = ep.policy.PickEager(req.class, req.n, len(conn.rails), &conn.sched)
	}
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.trace(trace.KindEager, req.peer, req.n, rail)
	req.status = Status{Source: ep.Rank, Tag: req.tag, Count: req.n}
	// Buffered-send semantics: the request completes as soon as the
	// descriptor reaches the hardware. If the send queue is full or the
	// credit pool is empty, it completes when the stall drains (so a Wait
	// keeps progress alive).
	ep.sendEnvelope(conn, rail, env, req.n+ep.m.MPIHeaderBytes, func() { req.done = true })
	ep.stats.EagerSent++
}

// deliverEager completes a matched receive from an eager envelope. With
// verification off a carried taint materializes here, in the receiver's own
// copy: a mangled wire header mis-reports the length (seeded truncation — the
// matching fields are VCRC-protected, so liveness holds) and a bit flip XORs
// one byte of the destination buffer. The sender's captured view is never
// touched. With IntegrityVerify armed tainted envelopes cannot reach here.
func (ep *Endpoint) deliverEager(req *Request, env *envelope) {
	n := env.size
	if env.hdrTaint && n > 0 {
		n -= 1 + env.flipOff%n
	}
	corrupt := env.hdrTaint || env.flipMask != 0
	if n > req.n {
		n = req.n
		req.status.Err = ErrTruncated
	}
	if req.data != nil && !env.pay.Zero() {
		copy(req.data[:n], env.pay.Bytes()[:n])
		if off := env.flipOff; env.flipMask != 0 && n > 0 {
			if off >= n {
				off = n - 1
			}
			req.data[off] ^= env.flipMask
		}
	}
	ep.verifyEagerCRC(env)
	if corrupt {
		ep.corruptDelivered(env.src, n)
	}
	rate := ep.m.EagerCopyRate
	if env.shm {
		rate = ep.m.ShmemRate
	}
	ep.charge(sim.TransferTime(int64(n), rate))
	req.status.Source = env.src
	req.status.Tag = env.tag
	req.status.Count = n
	req.done = true
	ep.trace(trace.KindDeliver, env.src, n, -1)
}

// ---- rendezvous protocol (RTS / CTS / RDMA write / FIN) ----

// sendRTS begins a rendezvous transfer: a control message announces the
// send. Under RndvWrite the data waits for the receiver's CTS; under
// RndvRead the RTS itself carries the sender's buffer key and class so the
// receiver can pull.
func (ep *Endpoint) sendRTS(conn *Conn, req *Request) {
	env := ep.pool.get()
	env.kind, env.src, env.tag, env.ctxID = envRTS, ep.Rank, req.tag, req.ctxID
	env.size, env.seq, env.sreq, env.class = req.n, conn.sendSeq, req, req.class
	env.lane = req.lane
	conn.sendSeq++
	// Zero-copy: the rendezvous path never captures the payload — the
	// request wraps the user's buffer and holds that reference until the
	// peer confirms placement (FIN under RndvWrite, DONE under RndvRead).
	if ep.integrity == IntegrityVerify {
		// The capture-time checksum pass is charged whether or not the run
		// carries real bytes: synthetic workloads model the same wire traffic.
		ep.charge(ep.checksumTime(req.n))
	}
	if req.data != nil {
		req.owner = ep.bufs.WrapTagged(req.data[:req.n], "rndv-owner")
		if ep.integrity != IntegrityOff {
			// Whole-message checksum, computed over the source buffer before
			// any stripe leaves the host and carried to the receiver in the
			// RTS; the receiver re-checks the assembled buffer at FIN/DONE.
			env.crc, env.hasCRC = buf.Sum(req.data[:req.n]), true
		}
	}
	if ep.rndv == RndvRead {
		// RGET exposes the sender's buffer in the RTS, so the sender pays
		// the registration here, before the key leaves the host.
		ep.chargeRegistration(req.peer, req.data, req.n)
		mr := ep.realm.RegisterMR(req.data, req.n)
		req.mrKey = mr.RKey
		env.rkey = mr.RKey
	}
	conn.sched.Outstanding++
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.trace(trace.KindRTS, req.peer, req.n, -1)
	ep.sendEnvelope(conn, conn.ctrlRail(), env, ep.m.CtrlMsgBytes, nil)
	ep.stats.RendezvousSent++
	ep.stats.CtrlMsgs++
}

// matchRTS routes a matched RTS to the rendezvous engine in force.
func (ep *Endpoint) matchRTS(req *Request, env *envelope) {
	if ep.rndv == RndvRead {
		ep.startRead(req, env)
		return
	}
	ep.sendCTS(req, env)
}

// startRead runs at the receiver under RndvRead: it pulls the sender's
// buffer with RDMA reads striped per the policy (using the sender's marker
// class, carried in the RTS) and then releases the sender with a DONE
// control message.
func (ep *Endpoint) startRead(req *Request, env *envelope) {
	xfer := env.size
	if xfer > req.n {
		xfer = req.n
		req.status.Err = ErrTruncated
	}
	req.status.Source = env.src
	req.status.Tag = env.tag
	req.status.Count = xfer
	if env.hasCRC {
		req.crc, req.crcSet = env.crc, true
	}

	conn := ep.conns[env.src]
	// The receiver's pull targets its own buffer: registration is charged
	// before any read posts.
	ep.chargeRegistration(env.src, req.data, xfer)
	var plan []core.Stripe
	if env.lane != NoLane {
		// Lane-hinted transfer: a single read pinned to the sender's lane
		// (steered off dead rails against this endpoint's own mask).
		plan = conn.sched.LanePlan(env.lane, len(conn.rails), xfer)
		ep.trace(trace.KindLanePin, env.src, xfer, plan[0].Rail)
	} else {
		ep.refreshRailRates(conn)
		plan = ep.policy.PlanBulk(env.class, xfer, len(conn.rails), &conn.sched)
	}
	req.writesLeft = len(plan)
	sreq := env.sreq
	for _, s := range plan {
		var chunk []byte
		if req.data != nil {
			chunk = req.data[s.Off : s.Off+s.N]
		}
		ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
		wrid := ep.nextWRID(func() {
			req.writesLeft--
			if req.writesLeft == 0 {
				ep.finishRead(conn, req, sreq)
			}
		})
		ep.post(conn, s.Rail, ib.SendWR{
			WRID: wrid, Op: ib.OpRDMARead,
			Data: chunk, N: s.N, RKey: env.rkey, RemoteOff: s.Off,
			Signaled: true, Payload: true,
		}, nil)
		ep.stats.StripesRead++
		ep.trace(trace.KindStripeRead, env.src, s.N, s.Rail)
	}
}

// finishRead completes the receive and releases the sender.
func (ep *Endpoint) finishRead(conn *Conn, req, sreq *Request) {
	ep.verifyAssembled(req)
	done := ep.pool.get()
	done.kind, done.src, done.sreq = envDone, ep.Rank, sreq
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.sendEnvelope(conn, conn.ctrlRail(), done, ep.m.CtrlMsgBytes, nil)
	ep.stats.CtrlMsgs++
	req.done = true
}

// handleDone runs at the sender under RndvRead: the receiver has pulled
// everything, so the registration and the buffer reference are released and
// the send completes.
func (ep *Endpoint) handleDone(env *envelope) {
	req := env.sreq
	ep.conns[env.src].sched.Outstanding--
	ep.charge(ep.m.CPUHeaderProc)
	if mr, ok := ep.realm.LookupMR(req.mrKey); ok {
		ep.realm.DeregisterMR(mr)
	}
	req.owner.Release()
	req.owner = buf.View{}
	req.status = Status{Source: ep.Rank, Tag: req.tag, Count: req.n}
	req.done = true
}

// sendCTS runs at the receiver when an RTS matches a posted receive: it
// registers the destination buffer and grants the sender an RDMA target.
func (ep *Endpoint) sendCTS(req *Request, env *envelope) {
	xfer := env.size
	if xfer > req.n {
		xfer = req.n
		req.status.Err = ErrTruncated
	}
	// The destination buffer becomes an RDMA target: the receiver pays the
	// pin-down charge before granting the key.
	ep.chargeRegistration(env.src, req.data, xfer)
	mr := ep.realm.RegisterMR(req.data, xfer)
	req.mrKey = mr.RKey
	req.status.Source = env.src
	req.status.Tag = env.tag
	req.status.Count = xfer
	if env.hasCRC {
		req.crc, req.crcSet = env.crc, true
	}

	cts := ep.pool.get()
	cts.kind, cts.src, cts.sreq, cts.rreq, cts.rkey, cts.xfer = envCTS, ep.Rank, env.sreq, req, mr.RKey, xfer
	conn := ep.conns[env.src]
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.trace(trace.KindCTS, env.src, xfer, -1)
	ep.sendEnvelope(conn, conn.ctrlRail(), cts, ep.m.CtrlMsgBytes, nil)
	ep.stats.CtrlMsgs++
}

// handleCTS runs at the sender: the communication scheduler consults the
// policy — with the marker's class — and issues the RDMA write stripes.
// Each stripe is a retained sub-view of the request's wrapped user buffer:
// no stripe copy exists anywhere, and a stripe retransmitted after a rail
// death still holds its own live reference on the source bytes.
func (ep *Endpoint) handleCTS(env *envelope) {
	sreq := env.sreq
	conn := ep.conns[env.src]
	ep.charge(ep.m.CPUHeaderProc)
	// Every stripe of this message reads the source buffer: the whole
	// region's first touch pays its registration before any WR posts.
	ep.chargeRegistration(env.src, sreq.data, env.xfer)
	var plan []core.Stripe
	if sreq.lane != NoLane {
		// Lane-hinted transfer: a single write pinned to the lane's rail
		// (steered off dead rails against this endpoint's own mask).
		plan = conn.sched.LanePlan(sreq.lane, len(conn.rails), env.xfer)
		ep.trace(trace.KindLanePin, env.src, env.xfer, plan[0].Rail)
	} else {
		ep.refreshRailRates(conn)
		plan = ep.policy.PlanBulk(sreq.class, env.xfer, len(conn.rails), &conn.sched)
	}
	sreq.writesLeft = len(plan)
	rreq, rkey := env.rreq, env.rkey
	for _, s := range plan {
		var chunk []byte
		var sv buf.View
		var crc uint32
		if !sreq.owner.Zero() {
			sv = sreq.owner.Slice(s.Off, s.N).Retain()
			chunk = sv.Bytes()
			if ep.integrity != IntegrityOff {
				// Per-chunk checksum: what the receiving HCA judges each
				// stripe by. Covered by the whole-message charge in sendRTS.
				crc = buf.Sum(chunk)
			}
		}
		ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
		wrid := ep.nextWRID(func() {
			sv.Release()
			sreq.writesLeft--
			if sreq.writesLeft == 0 {
				ep.finishRendezvous(conn, sreq, rreq)
			}
		})
		ep.post(conn, s.Rail, ib.SendWR{
			WRID: wrid, Op: ib.OpRDMAWrite,
			Data: chunk, N: s.N, RKey: rkey, RemoteOff: s.Off,
			Signaled: true, Ctx: nil, Payload: true, CRC: crc, NoCorrupt: sreq.noCorrupt,
		}, nil)
		ep.stats.StripesSent++
		ep.trace(trace.KindStripeWrite, env.src, s.N, s.Rail)
	}
}

// finishRendezvous runs at the sender when the last stripe completes: the
// FIN control message releases the receiver, the buffer reference is
// dropped, and the send request is done.
func (ep *Endpoint) finishRendezvous(conn *Conn, sreq, rreq *Request) {
	fin := ep.pool.get()
	fin.kind, fin.src, fin.rreq = envFIN, ep.Rank, rreq
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.sendEnvelope(conn, conn.ctrlRail(), fin, ep.m.CtrlMsgBytes, nil)
	ep.stats.CtrlMsgs++
	ep.trace(trace.KindFIN, conn.peer, 0, -1)
	conn.sched.Outstanding--
	sreq.owner.Release()
	sreq.owner = buf.View{}
	sreq.status = Status{Source: ep.Rank, Tag: sreq.tag, Count: sreq.n}
	sreq.done = true
}

// handleFIN runs at the receiver: data is in place, the buffer registration
// is released, the receive completes.
func (ep *Endpoint) handleFIN(env *envelope) {
	req := env.rreq
	ep.charge(ep.m.CPUHeaderProc)
	ep.verifyAssembled(req)
	if mr, ok := ep.realm.LookupMR(req.mrKey); ok {
		ep.realm.DeregisterMR(mr)
	}
	req.done = true
}

// ---- shared-memory path ----

// sendShmem ships any size message over the intra-node channel: the send
// completes when the copy into the shared buffer does. The capture copy into
// a pooled view is that copy — its cost is the link's bandwidth reservation,
// and the view travels through the channel to the receiving endpoint, which
// releases it after delivery.
func (ep *Endpoint) sendShmem(conn *Conn, req *Request) {
	env := ep.pool.get()
	env.kind, env.src, env.tag, env.ctxID = envEager, ep.Rank, req.tag, req.ctxID
	env.size, env.seq, env.shm = req.n, conn.sendSeq, true
	conn.sendSeq++
	senderDone := conn.sh.Send(ep.capture(req.data, req.n, "shmem"), req.n, env)
	if d := senderDone - ep.eng.Now(); d > 0 {
		ep.proc.Sleep(d)
	}
	ep.stats.ShmemSent++
	ep.trace(trace.KindShmem, req.peer, req.n, -1)
	req.status = Status{Source: ep.Rank, Tag: req.tag, Count: req.n}
	req.done = true
}
