package adi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/sim"
)

func TestRGetRendezvousDelivers(t *testing.T) {
	const n = 256 * 1024
	payload := fill(n, 4)
	got := make([]byte, n)
	w := run(t, spec2x1(4), Options{Policy: core.EPC, Rndv: RndvRead},
		func(ep *Endpoint) {
			req := ep.PostSend(1, 3, CtxPt2Pt, core.Blocking, payload, n)
			ep.Wait(req)
		},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostRecv(0, 3, CtxPt2Pt, got, n))
			if st.Count != n || st.Err != nil {
				t.Errorf("status = %+v", st)
			}
		})
	if !bytes.Equal(got, payload) {
		t.Error("RGET payload corrupted")
	}
	// The receiver issues the stripes under RGET.
	if s := w.Endpoints[1].Stats(); s.StripesRead != 4 {
		t.Errorf("receiver StripesRead = %d, want 4 (EPC blocking → striped reads)", s.StripesRead)
	}
	if s := w.Endpoints[0].Stats(); s.StripesSent != 0 {
		t.Errorf("sender StripesSent = %d, want 0 under RGET", s.StripesSent)
	}
}

func TestRGetUsesSenderClassForStriping(t *testing.T) {
	// A non-blocking send under EPC must not be striped even when the
	// receiver drives the transfer: the class rides the RTS.
	const n = 64 * 1024
	w := run(t, spec2x1(4), Options{Policy: core.EPC, Rndv: RndvRead},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.NonBlocking, nil, n))
		},
		func(ep *Endpoint) {
			ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, n))
		})
	if s := w.Endpoints[1].Stats(); s.StripesRead != 1 {
		t.Errorf("StripesRead = %d, want 1 (non-blocking class carried in RTS)", s.StripesRead)
	}
}

func TestRGetUnexpectedRTS(t *testing.T) {
	const n = 128 * 1024
	payload := fill(n, 7)
	got := make([]byte, n)
	run(t, spec2x1(2), Options{Policy: core.EvenStriping, Rndv: RndvRead},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 5, CtxPt2Pt, core.Blocking, payload, n))
		},
		func(ep *Endpoint) {
			ep.Compute(300 * sim.Microsecond) // RTS lands unexpected
			ep.Progress()
			ep.Wait(ep.PostRecv(0, 5, CtxPt2Pt, got, n))
		})
	if !bytes.Equal(got, payload) {
		t.Error("unexpected-path RGET corrupted")
	}
}

func TestRGetTruncation(t *testing.T) {
	const sendN, recvN = 64 * 1024, 24 * 1024
	payload := fill(sendN, 9)
	got := make([]byte, recvN)
	run(t, spec2x1(2), Options{Policy: core.EPC, Rndv: RndvRead},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, payload, sendN))
		},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, recvN))
			if st.Err != ErrTruncated || st.Count != recvN {
				t.Errorf("status = %+v", st)
			}
		})
	if !bytes.Equal(got, payload[:recvN]) {
		t.Error("truncated RGET wrong prefix")
	}
}

func TestRGetOrderingMixedSizes(t *testing.T) {
	sizes := []int{512, 64 * 1024, 512, 32 * 1024}
	run(t, spec2x1(4), Options{Policy: core.RoundRobin, Rndv: RndvRead},
		func(ep *Endpoint) {
			var reqs []*Request
			for i, n := range sizes {
				reqs = append(reqs, ep.PostSend(1, 8, CtxPt2Pt, core.NonBlocking, fill(n, byte(i)), n))
			}
			ep.WaitAll(reqs)
		},
		func(ep *Endpoint) {
			for i, n := range sizes {
				got := make([]byte, n)
				ep.Wait(ep.PostRecv(0, 8, CtxPt2Pt, got, n))
				if !bytes.Equal(got, fill(n, byte(i))) {
					t.Errorf("message %d out of order under RGET", i)
				}
			}
		})
}

func TestRGetPerformanceComparableToRPut(t *testing.T) {
	// Both protocols move the same bytes; RGET trades the CTS flight for
	// read round trips. Peak bandwidth should land within ~15%.
	elapsed := func(r RndvProto) sim.Time {
		var end sim.Time
		run(t, spec2x1(4), Options{Policy: core.EPC, Rndv: r},
			func(ep *Endpoint) {
				var reqs []*Request
				for i := 0; i < 16; i++ {
					reqs = append(reqs, ep.PostSend(1, 0, CtxPt2Pt, core.NonBlocking, nil, 1<<20))
				}
				ep.WaitAll(reqs)
			},
			func(ep *Endpoint) {
				for i := 0; i < 16; i++ {
					ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, 1<<20))
				}
				end = ep.Now()
			})
		return end
	}
	put, get := elapsed(RndvWrite), elapsed(RndvRead)
	if d := float64(get-put) / float64(put); d > 0.15 || d < -0.15 {
		t.Errorf("RGET (%v) deviates from RPUT (%v) by %.0f%%", get, put, d*100)
	}
}
