package adi

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
)

// relEp returns a bare endpoint carrying only what backoffDelay reads.
func relEp(rank int, seed int64) *Endpoint {
	return &Endpoint{Rank: rank, rel: ReliabilityConfig{Seed: seed}.withDefaults()}
}

// TestBackoffDeterministic pins the backoff schedule to its inputs: equal
// (seed, rank, key, attempt) always yields the same delay, and the jittered
// delay stays inside [base<<attempt, 1.5*cap].
func TestBackoffDeterministic(t *testing.T) {
	base, max := 5*sim.Microsecond, 80*sim.Microsecond
	a, b := relEp(3, 42), relEp(3, 42)
	for attempt := 0; attempt < 8; attempt++ {
		for key := uint64(0); key < 16; key++ {
			da := a.backoffDelay(base, max, attempt, key)
			db := b.backoffDelay(base, max, attempt, key)
			if da != db {
				t.Fatalf("attempt %d key %d: replay diverged: %v vs %v", attempt, key, da, db)
			}
			lo := base << attempt
			if lo > max {
				lo = max
			}
			if da < lo || da >= lo+lo/2+1 {
				t.Errorf("attempt %d key %d: delay %v outside [%v, %v]", attempt, key, da, lo, lo+lo/2)
			}
		}
	}
}

// TestBackoffDecorrelates checks distinct seeds and ranks do not share one
// jitter schedule (a lockstep stampede after a mass flush would defeat the
// point of jitter).
func TestBackoffDecorrelates(t *testing.T) {
	base, max := 5*sim.Microsecond, 80*sim.Microsecond
	ref := relEp(0, 1)
	diffSeed, diffRank := false, false
	for attempt := 2; attempt < 6; attempt++ {
		for key := uint64(0); key < 32; key++ {
			d := ref.backoffDelay(base, max, attempt, key)
			if relEp(0, 2).backoffDelay(base, max, attempt, key) != d {
				diffSeed = true
			}
			if relEp(1, 1).backoffDelay(base, max, attempt, key) != d {
				diffRank = true
			}
		}
	}
	if !diffSeed {
		t.Error("seed never changed any backoff delay")
	}
	if !diffRank {
		t.Error("rank never changed any backoff delay")
	}
}

// relWorld builds a 2-node, 2-rail world with the reliability layer armed
// under the given config (engine not yet run).
func relWorld(cfg ReliabilityConfig) (*sim.Engine, *World) {
	eng := sim.NewEngine()
	spec := topo.Spec{Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 2}
	w := NewWorld(eng, model.Default(), spec, Options{Policy: core.RoundRobin})
	w.EnableReliability(cfg)
	return eng, w
}

// TestHealthStateMachine drives the per-rail state machine directly: strikes
// accumulate through suspect to quarantine at the configured threshold, the
// quarantine removes the rail from the policy mask, further strikes are
// no-ops, and a successful probe reintegrates the rail and clears the mask.
func TestHealthStateMachine(t *testing.T) {
	_, w := relWorld(ReliabilityConfig{SuspectAfter: 3})
	ep := w.Endpoints[0]
	conn := ep.conns[1]
	h := &conn.health[1]

	ep.strike(conn, 1)
	if h.state != railSuspect || h.strikes != 1 {
		t.Fatalf("after 1 strike: state=%v strikes=%d, want suspect/1", h.state, h.strikes)
	}
	if ep.stats.RailSuspects != 1 {
		t.Errorf("RailSuspects = %d, want 1", ep.stats.RailSuspects)
	}
	ep.strike(conn, 1)
	if h.state != railSuspect || conn.sched.Dead.IsDown(1) {
		t.Fatalf("below threshold: state=%v dead=%v, want suspect/up", h.state, conn.sched.Dead.IsDown(1))
	}
	ep.strike(conn, 1)
	if h.state != railQuarantined {
		t.Fatalf("at threshold: state=%v, want quarantined", h.state)
	}
	if !conn.sched.Dead.IsDown(1) {
		t.Error("quarantine did not mark the rail down in the policy mask")
	}
	if ep.stats.RailQuarantines != 1 {
		t.Errorf("RailQuarantines = %d, want 1", ep.stats.RailQuarantines)
	}

	// Strikes against a quarantined rail change nothing.
	ep.strike(conn, 1)
	if h.state != railQuarantined || ep.stats.RailQuarantines != 1 {
		t.Errorf("strike on quarantined rail: state=%v quarantines=%d", h.state, ep.stats.RailQuarantines)
	}

	// A probe in flight that flushes returns to quarantine with a longer
	// backoff; one that completes reintegrates.
	h.state = railProbing
	ep.probeCompleted(conn, 1, false)
	if h.state != railQuarantined || h.attempt != 1 {
		t.Fatalf("failed probe: state=%v attempt=%d, want quarantined/1", h.state, h.attempt)
	}
	h.state = railProbing
	ep.probeCompleted(conn, 1, true)
	if h.state != railHealthy || h.strikes != 0 || h.attempt != 0 {
		t.Fatalf("successful probe: state=%v strikes=%d attempt=%d, want up/0/0", h.state, h.strikes, h.attempt)
	}
	if conn.sched.Dead.IsDown(1) {
		t.Error("reintegration left the rail marked down")
	}
	if ep.stats.RailReintegrations != 1 {
		t.Errorf("RailReintegrations = %d, want 1", ep.stats.RailReintegrations)
	}
}

// TestReliabilitySelfHealing is the end-to-end loop on a live world: a rail
// dies mid-traffic with nothing but its QP state flipped (SetRail under an
// armed reliability layer touches no masks), the endpoints quarantine it on
// their own evidence, probes bring it back after the operator revives the
// hardware, and every payload still arrives intact.
func TestReliabilitySelfHealing(t *testing.T) {
	eng, w := relWorld(ReliabilityConfig{
		Seed:          7,
		Deadline:      60 * sim.Microsecond,
		CheckInterval: 15 * sim.Microsecond,
		RetryBase:     2 * sim.Microsecond,
		RetryMax:      20 * sim.Microsecond,
		ProbeBase:     10 * sim.Microsecond,
		ProbeMax:      40 * sim.Microsecond,
	})
	eng.Post(80*sim.Microsecond, func() { w.SetRail(1, 1, false) })
	eng.Post(400*sim.Microsecond, func() { w.SetRail(1, 1, true) })

	const (
		msgs = 120
		n    = 4 << 10
	)
	payload := fill(n, 9)
	bufs := make([][]byte, msgs)
	w.Spawn("selfheal", func(ep *Endpoint) {
		switch ep.Rank {
		case 0:
			for i := 0; i < msgs; i++ {
				req := ep.PostSend(1, 7, CtxPt2Pt, core.Blocking, payload, n)
				ep.Wait(req)
				ep.Compute(5 * sim.Microsecond)
			}
		case 1:
			for i := 0; i < msgs; i++ {
				bufs[i] = make([]byte, n)
				req := ep.PostRecv(0, 7, CtxPt2Pt, bufs[i], n)
				ep.Wait(req)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	var quarantines, reintegrations int64
	for _, ep := range w.Endpoints {
		quarantines += ep.stats.RailQuarantines
		reintegrations += ep.stats.RailReintegrations
	}
	if quarantines == 0 {
		t.Error("rail death went undetected: zero quarantines")
	}
	if reintegrations == 0 {
		t.Error("revived rail never reintegrated: zero reintegrations")
	}
	for i, b := range bufs {
		if !bytesEqual(b, payload) {
			t.Fatalf("message %d corrupted across the failure", i)
		}
	}
	if live := w.BufLive(); live != 0 {
		t.Errorf("payload leak: %d blocks live after quiesce", live)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
