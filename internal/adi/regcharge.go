package adi

import (
	"ib12x/internal/regcache"
	"ib12x/internal/trace"
)

// chargeRegistration models exposing data[:n] to RDMA through the pin-down
// cache: the first touch of an unregistered region pays the miss charge —
// per-page pin cost plus the fixed syscall latency — on this rank's proc
// before any WR for the region posts; a covered region is free. No-op with
// the cache disabled or for synthetic (nil) payloads, whose transfers carry
// no real memory. peer names the far rank in the trace events.
func (ep *Endpoint) chargeRegistration(peer int, data []byte, n int) {
	if ep.reg == nil || data == nil || n <= 0 {
		return
	}
	out := ep.reg.Register(data, n)
	if out.Hit {
		ep.stats.RegHits++
		return
	}
	ep.stats.RegMisses++
	ep.stats.RegEvictions += int64(out.Evicted)
	if hw := ep.reg.PinnedPeak(); hw > ep.stats.RegPinnedPeak {
		ep.stats.RegPinnedPeak = hw
	}
	if out.Evicted > 0 {
		ep.trace(trace.KindRegEvict, peer, int(out.EvictedBytes), -1)
	}
	ep.trace(trace.KindRegMiss, peer, n, -1)
	ep.charge(out.Cost)
}

// RegCache exposes the endpoint's pin-down cache (nil when disabled), e.g.
// for counter blocks after a run.
func (ep *Endpoint) RegCache() *regcache.Cache { return ep.reg }

// refreshRailRates feeds each rail's current link rate — possibly chaos-
// degraded — into the connection's scheduling state before a bulk plan, as
// the per-rail scale relative to the model's raw rate. The uniform case (no
// degradation anywhere) keeps Rates nil, so healthy planning still hits the
// memoized plan cache and allocates nothing; only a degraded fabric pays for
// fresh rate-weighted plans.
func (ep *Endpoint) refreshRailRates(conn *Conn) {
	if len(conn.rails) == 0 {
		return
	}
	raw := ep.m.LinkRawRate
	uniform := true
	for _, qp := range conn.rails {
		if qp.Port.EffectiveRate() != raw {
			uniform = false
			break
		}
	}
	if uniform {
		conn.sched.Rates = nil
		return
	}
	if conn.rateScratch == nil {
		conn.rateScratch = make([]float64, len(conn.rails))
	}
	for i, qp := range conn.rails {
		conn.rateScratch[i] = qp.Port.EffectiveRate() / raw
	}
	conn.sched.Rates = conn.rateScratch
}
