package adi

import (
	"fmt"

	"ib12x/internal/buf"
	"ib12x/internal/core"
	"ib12x/internal/ib"
	"ib12x/internal/model"
	"ib12x/internal/regcache"
	"ib12x/internal/shmem"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// srqPrepost is the number of receive WRs kept posted on an endpoint's SRQ.
const srqPrepost = 128

// Conn is the per-peer connection state of an endpoint: either a set of
// rails (QPs spread over ports and HCAs) or a shared-memory link.
type Conn struct {
	peer  int
	rails []*ib.QP    // inter-node rails; nil for intra-node peers
	sh    *shmem.Link // outbound shared-memory link; nil for inter-node
	sched core.ConnState

	sendSeq     uint64
	recvSeqNext uint64
	ooo         map[uint64]*envelope // sequenced envelopes arrived early
	ctrlRR      int                  // round-robin cursor for control messages

	// Credit-based flow control (inter-node conns only): every channel
	// message consumes one of the peer's preposted receives; the peer
	// returns credits piggybacked or, when half the pool is owed, via an
	// explicit envCredit message (itself credit-exempt).
	credits     int
	owed        int // credits to return to the peer
	creditQueue []pendingEnvelope

	// RDMA-write eager ring state (Options.EagerProto = EagerRDMAWrite;
	// nil otherwise): the sender-side ring view toward this peer, the
	// header cache of its envelope signatures, and the freed slots of the
	// peer's reverse ring owed back (the mirror of owed).
	ring     *eagerRing
	hdr      *hdrCache
	ringOwed int

	// railWait parks work requests while every rail of the connection is
	// dead; a rail recovery drains it in order.
	railWait []deferredWR

	// health is the per-rail reliability state machine, allocated only when
	// World.EnableReliability arms the self-healing layer (nil otherwise).
	health []railHealth

	// rateScratch backs sched.Rates, the per-rail link-rate scale fed to
	// the weighted planner while any rail runs degraded (nil when uniform,
	// which keeps fault-free planning on the memoized plan cache).
	rateScratch []float64
}

// pendingEnvelope is a channel message stalled on an empty credit pool.
type pendingEnvelope struct {
	rail     int
	env      *envelope
	wireN    int
	onPosted func()
}

// ctrlRail picks the rail for the next RTS/CTS/FIN. Control messages are
// latency-critical: cycling them across rails keeps them from queueing
// behind bulk RDMA writes on any one QP (head-of-line blocking would stall
// the peer's rendezvous pipeline).
func (c *Conn) ctrlRail() int {
	r := c.ctrlRR % len(c.rails)
	c.ctrlRR = (r + 1) % len(c.rails)
	if d := c.sched.Dead; d != 0 {
		if lr := d.NextLive(r, len(c.rails)); lr >= 0 {
			return lr
		}
	}
	return r
}

// Rails reports the number of rails of this connection (0 for shmem).
func (c *Conn) Rails() int { return len(c.rails) }

// InterRails reports the rail count of this endpoint's inter-node
// connections — the lane width available to lane-decomposed collectives —
// or 0 when every peer is intra-node (or the world has one rank). All
// inter-node connections share the topology's rail count, so the first
// one answers for all; the value is a topology constant, identical on
// every rank, which lane partitioning depends on.
func (ep *Endpoint) InterRails() int {
	for _, c := range ep.conns {
		if c != nil && c.sh == nil && c.peer != ep.Rank {
			return len(c.rails)
		}
	}
	return 0
}

// Endpoint is the ADI-layer object of one MPI rank.
type Endpoint struct {
	Rank int

	eng        *sim.Engine
	m          *model.Params
	realm      *ib.Realm
	policy     core.Policy
	rndv       RndvProto
	eagerProto EagerProto

	cq    *ib.CQ
	srq   *ib.SRQ
	conns []*Conn
	qpIdx map[int]*ib.QP // QPN -> rail QP (for backlog retry on completion)

	proc    *sim.Proc
	idle    sim.Waiter
	shmemIn sim.Queue[shmem.Msg]

	recvIx  recvIndex // posted, unmatched receives (indexed; post order kept)
	unexIx  unexIndex // arrived, unmatched eager/RTS (indexed; arrival order kept)
	postSeq uint64    // next receive post-order stamp
	arrSeq  uint64    // next unexpected arrival-order stamp

	pool    *envPool   // World-shared envelope pool
	bufs    *buf.Pool  // World-shared payload block pool
	reqFree []*Request // recycled requests of this endpoint

	wrID       uint64
	onComplete map[uint64]func()
	onAtomic   map[uint64]*Request     // atomic WRs awaiting their old value
	backlog    map[*ib.QP][]deferredWR // WRs deferred on ErrSQFull, per rail
	windows    map[int]*winInfo        // exposed RMA windows
	nextCtx    int                     // next free matching-context id
	tr         *trace.Recorder         // optional protocol event recorder

	// Rail-failure recovery (armed by World.EnableRailRecovery; off in
	// fault-free runs so the hot path never touches the map): every posted
	// WR is remembered until its completion, and a flushed completion
	// reroutes the WR onto a surviving rail of the same connection.
	trackWR  bool
	inflight map[uint64]*inflightWR
	flFree   []*inflightWR

	// Rail reliability layer (armed by World.EnableReliability): health
	// state machine config plus the outstanding probe WRs. nil/empty in
	// legacy operator-driven runs.
	rel    *ReliabilityConfig
	probes map[uint64]probeRef

	// reg is the pin-down registration cache (Options.RegCache); nil keeps
	// the historical free-registration model.
	reg *regcache.Cache

	// integrity is the end-to-end checksum mode (Options.Integrity;
	// integrity.go). tornWait parks ring envelopes whose slot the torn-write
	// guard caught mid-write; entries settle in FIFO order (tornAt is the
	// delivery instant plus a constant), so the head is always the next due.
	integrity IntegrityMode
	tornWait  []*envelope
	// shield counts nested Shielded scopes: sends initiated while it is
	// positive are protocol metadata, exempt from corruption injection.
	shield int

	stats Stats
}

// inflightWR remembers where a posted work request was headed so a flush can
// retransmit it elsewhere. With the reliability layer on it also carries the
// completion deadline the health scan judges the rail by, and the retry
// attempt driving the retransmit backoff.
// Records are pooled (flFree): the struct is larger than the runtime's
// inline map-value threshold, so storing it by value would heap-allocate on
// every insert — one allocation per tracked WR on the hot path.
type inflightWR struct {
	conn     *Conn
	rail     int
	wr       ib.SendWR
	deadline sim.Time
	attempt  int
}

// getFl pops a pooled in-flight record (or makes the pool's first).
func (ep *Endpoint) getFl() *inflightWR {
	if n := len(ep.flFree); n > 0 {
		fl := ep.flFree[n-1]
		ep.flFree = ep.flFree[:n-1]
		return fl
	}
	return new(inflightWR)
}

// putFl retires a WR's in-flight record back to the pool, zeroing it so the
// pooled record does not pin the WR's payload view or envelope.
func (ep *Endpoint) putFl(wrid uint64) {
	fl, ok := ep.inflight[wrid]
	if !ok {
		return
	}
	delete(ep.inflight, wrid)
	*fl = inflightWR{}
	ep.flFree = append(ep.flFree, fl)
}

// newEndpoint wires the passive state; connections are added by the World
// builder.
func newEndpoint(rank int, eng *sim.Engine, m *model.Params, realm *ib.Realm, policy core.Policy, rndv RndvProto, nranks int, pool *envPool, bufs *buf.Pool) *Endpoint {
	ep := &Endpoint{
		Rank:       rank,
		eng:        eng,
		m:          m,
		realm:      realm,
		policy:     policy,
		rndv:       rndv,
		cq:         realm.NewCQ(),
		srq:        realm.NewSRQ(),
		conns:      make([]*Conn, nranks),
		qpIdx:      make(map[int]*ib.QP),
		onComplete: make(map[uint64]func()),
		onAtomic:   make(map[uint64]*Request),
		backlog:    make(map[*ib.QP][]deferredWR),
		pool:       pool,
		bufs:       bufs,
	}
	ep.cq.SetNotify(func() { ep.wake() })
	for i := 0; i < srqPrepost; i++ {
		ep.srq.PostRecv(ib.RecvWR{})
	}
	return ep
}

// Attach binds the endpoint to its rank's simulated process. It must be
// called (once) from inside that proc before any communication.
func (ep *Endpoint) Attach(p *sim.Proc) {
	if ep.proc != nil {
		panic("adi: endpoint already attached")
	}
	ep.proc = p
}

// Stats returns a copy of the endpoint's protocol counters.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// Policy returns the scheduling policy in force.
func (ep *Endpoint) Policy() core.Policy { return ep.policy }

// Now reports the current virtual time.
func (ep *Endpoint) Now() sim.Time { return ep.eng.Now() }

// Compute charges d of modeled computation to the rank.
func (ep *Endpoint) Compute(d sim.Time) { ep.proc.Sleep(d) }

// ChargeCopy charges the cost of copying n bytes at the host memcpy rate
// (used by the datatype pack/unpack layer).
func (ep *Endpoint) ChargeCopy(n int) {
	ep.charge(sim.TransferTime(int64(n), ep.m.EagerCopyRate))
}

// Conn returns the connection to a peer (nil for self).
func (ep *Endpoint) Conn(peer int) *Conn { return ep.conns[peer] }

// wake readies the rank if it is parked waiting for progress.
func (ep *Endpoint) wake() { ep.idle.WakeAll() }

// trace records a protocol event when a recorder is attached.
func (ep *Endpoint) trace(kind trace.Kind, peer, bytes, rail int) {
	ep.tr.Record(ep.eng.Now(), kind, ep.Rank, peer, bytes, rail)
}

// charge burns CPU time on the rank's proc.
func (ep *Endpoint) charge(d sim.Time) {
	if d > 0 {
		ep.proc.Sleep(d)
	}
}

// ---- posting ----

// PostSend starts a send of n bytes (data may be nil for synthetic payloads)
// to peer with the given tag and context. class is the communication
// marker's classification. The returned request is already complete for
// eager-size messages (buffered-send semantics).
func (ep *Endpoint) PostSend(peer, tag, ctxID int, class core.Class, data []byte, n int) *Request {
	return ep.postSend(peer, tag, ctxID, class, data, n, NoLane)
}

// PostSendLane is PostSend with a lane-steering hint: the eager message or
// every rendezvous bulk stripe of this send is pinned to rail lane%rails
// of the destination connection (stepping off dead rails to the next live
// one) instead of consulting the policy. Lane-decomposed collectives use
// it to keep each per-lane sub-collective on its own rail; self and
// shared-memory sends ignore the hint. A negative lane means no hint —
// identical to PostSend.
func (ep *Endpoint) PostSendLane(peer, tag, ctxID int, class core.Class, data []byte, n, lane int) *Request {
	if lane < 0 {
		lane = NoLane
	}
	return ep.postSend(peer, tag, ctxID, class, data, n, lane)
}

func (ep *Endpoint) postSend(peer, tag, ctxID int, class core.Class, data []byte, n, lane int) *Request {
	if peer < 0 || peer >= len(ep.conns) {
		panic(fmt.Sprintf("adi: rank %d PostSend to invalid peer %d", ep.Rank, peer))
	}
	if !classIsValid(class) {
		panic("adi: invalid communication class")
	}
	if data != nil && len(data) < n {
		panic("adi: send buffer shorter than count")
	}
	req := ep.newRequest()
	req.send, req.peer, req.tag, req.ctxID, req.class, req.data, req.n = true, peer, tag, ctxID, class, data, n
	req.lane = lane
	req.noCorrupt = ep.shield > 0
	if peer == ep.Rank {
		ep.sendSelf(req)
		return req
	}
	conn := ep.conns[peer]
	if conn.sh != nil {
		ep.sendShmem(conn, req)
		return req
	}
	if n < ep.m.RendezvousThreshold {
		ep.sendEager(conn, req)
	} else {
		ep.sendRTS(conn, req)
	}
	return req
}

// PostRecv posts a receive of up to n bytes from src (AnySource allowed)
// with the given tag (AnyTag allowed) and context.
func (ep *Endpoint) PostRecv(src, tag, ctxID int, buf []byte, n int) *Request {
	if buf != nil && len(buf) < n {
		panic("adi: receive buffer shorter than count")
	}
	req := ep.newRequest()
	req.peer, req.tag, req.ctxID, req.data, req.n = src, tag, ctxID, buf, n
	// Unexpected queue first, in arrival order (MPI matching rule).
	if env := ep.unexIx.takeFor(req); env != nil {
		ep.stats.UnexpectedHits++
		ep.consumeUnexpected(req, env)
		ep.pool.put(env)
		return req
	}
	req.postSeq = ep.postSeq
	ep.postSeq++
	ep.recvIx.add(req)
	return req
}

// capture copies the first n bytes of data into a pooled payload view — the
// single capture copy of the bounce-buffered paths. nil data (synthetic
// traffic) yields the zero view. The caller owns the returned reference and
// accounts the copy's CPU cost where its path models it. tag names the
// allocation site in the pool's audit report (World.BufLiveReport).
func (ep *Endpoint) capture(data []byte, n int, tag string) buf.View {
	if data == nil {
		return buf.View{}
	}
	v := ep.bufs.GetTagged(n, tag)
	copy(v.Bytes(), data[:n])
	return v
}

// sendSelf loops a message back to the sending rank through the normal
// matching path: the payload is buffered (one copy charge) and matched
// against posted receives or parked on the unexpected queue. All sizes are
// buffered — a self-send never blocks, as in MPICH's self device.
func (ep *Endpoint) sendSelf(req *Request) {
	env := ep.pool.get()
	env.kind, env.src, env.tag, env.ctxID, env.size = envEager, ep.Rank, req.tag, req.ctxID, req.n
	if req.data != nil {
		env.pay = ep.capture(req.data, req.n, "self-send")
		ep.charge(sim.TransferTime(int64(req.n), ep.m.EagerCopyRate))
	}
	req.status = Status{Source: ep.Rank, Tag: req.tag, Count: req.n}
	req.done = true
	ep.handleMatchable(env)
}

// consumeUnexpected completes or advances a receive matched from the
// unexpected queue.
func (ep *Endpoint) consumeUnexpected(req *Request, env *envelope) {
	switch env.kind {
	case envEager:
		ep.deliverEager(req, env)
	case envRTS:
		ep.matchRTS(req, env)
	default:
		panic("adi: unexpected queue held a " + env.kind.String())
	}
}

// Iprobe reports whether a matching message has arrived but not been
// received, without consuming it.
func (ep *Endpoint) Iprobe(src, tag, ctxID int) (bool, Status) {
	probe := Request{peer: src, tag: tag, ctxID: ctxID}
	if env := ep.unexIx.peekFor(&probe); env != nil {
		return true, Status{Source: env.src, Tag: env.tag, Count: env.size}
	}
	return false, Status{}
}

// ---- progress engine (the "completion filter" of Figure 2) ----

// progressOnce handles at most one pending event, charging its CPU costs,
// and reports whether anything was handled.
func (ep *Endpoint) progressOnce() bool {
	if env := ep.tornReadyEnv(); env != nil {
		// A parked torn ring slot has settled: re-poll it (second pass over
		// the slot array) and run the consume path it was diverted from.
		ep.charge(ep.m.RingPollCost)
		conn := ep.conns[env.src]
		ep.creditArrived(conn, env.credits)
		ep.ringCreditArrived(conn, env.ringCredits)
		ep.ringConsumed(conn)
		ep.inbound(env)
		return true
	}
	if cqe, ok := ep.cq.Poll(); ok {
		if cqe.Op == ib.OpRecv {
			env, ok := cqe.Ctx.(*envelope)
			if !ok {
				panic("adi: inbound completion without envelope")
			}
			// Stamp the wire's corruption taint (zero on a clean fabric)
			// before any consume decision: the torn-write guard and the
			// delivery path both read it off the envelope.
			env.flipOff, env.flipMask = cqe.FlipOff, cqe.FlipMask
			env.hdrTaint, env.tornAt = cqe.HdrTaint, cqe.TornAt
			if env.ring {
				// Ring arrivals are discovered by the polling set scanning
				// the per-peer slot arrays, not by reaping a completion:
				// charge the (cheaper) poll cost.
				ep.charge(ep.m.RingPollCost)
				if ep.ringTornGuard(env) {
					ep.srq.PostRecv(ib.RecvWR{})
					return true
				}
			} else {
				ep.charge(ep.m.CPUCompletion)
			}
			ep.srq.PostRecv(ib.RecvWR{}) // replenish the prepost pool
			conn := ep.conns[env.src]
			if conn != nil && conn.sh == nil {
				ep.creditArrived(conn, env.credits)
				ep.ringCreditArrived(conn, env.ringCredits)
				if env.kind == envCredit || env.kind == envProbe {
					// Credit returns and health probes are control-plane
					// traffic: credit-exempt, unsequenced, consumed here.
					ep.pool.put(env)
					return true
				}
				if env.ring {
					ep.ringConsumed(conn)
				} else {
					ep.consumedRecv(conn)
				}
			}
			ep.inbound(env)
		} else {
			ep.charge(ep.m.CPUCompletion)
			if pr, ok := ep.probes[cqe.WRID]; ok {
				// Probe CQE: never retransmitted, never in the inflight
				// map — it only moves the rail's health state.
				delete(ep.probes, cqe.WRID)
				ep.probeCompleted(pr.conn, pr.rail, cqe.Status == ib.StatusSuccess)
				ep.drainBacklog(cqe.QPN)
				return true
			}
			if cqe.Status == ib.StatusFlushErr {
				// The WR was in flight when its rail died and its remote
				// effect never happened: reroute it onto a survivor. Its
				// completion callback stays registered and fires when the
				// retransmission completes.
				ep.retransmit(cqe.WRID)
				return true
			}
			if cqe.Status == ib.StatusIntegrityErr {
				// Informational: the receiving HCA rejected the payload and
				// the requester's HCA is already retransmitting it below the
				// verbs layer. Tally the NACK and strike the rail; the WR's
				// callbacks ride its eventual success completion.
				ep.nackNoticed(cqe)
				return true
			}
			if cqe.FlipMask != 0 || cqe.HdrTaint {
				// Taint echo on a successful send completion (verification
				// off): a stripe or read landed corrupted at memory with no
				// receive completion to see it on — tally the silent escape
				// here, at the endpoint that owns the counter.
				ep.corruptDelivered(-1, cqe.Bytes)
			}
			if ep.trackWR {
				ep.putFl(cqe.WRID)
			}
			if req := ep.onAtomic[cqe.WRID]; req != nil {
				delete(ep.onAtomic, cqe.WRID)
				req.atomicOld = cqe.AtomicOld
				req.done = true
			} else if cb := ep.onComplete[cqe.WRID]; cb != nil {
				delete(ep.onComplete, cqe.WRID)
				cb()
			}
			ep.drainBacklog(cqe.QPN)
		}
		return true
	}
	if msg, ok := ep.shmemIn.TryGet(); ok {
		env, ok2 := msg.Ctx.(*envelope)
		if !ok2 {
			panic("adi: shmem message without envelope")
		}
		env.pay = msg.Pay // payload view rides the channel, not the envelope
		ep.inbound(env)
		return true
	}
	return false
}

// Progress drains all currently pending events without blocking.
func (ep *Endpoint) Progress() {
	for ep.progressOnce() {
	}
}

// Wait blocks the rank until the request completes, driving progress.
func (ep *Endpoint) Wait(req *Request) Status {
	for !req.done {
		if !ep.progressOnce() {
			ep.idle.Wait(ep.proc, whyWaitReq)
		}
	}
	return req.status
}

// WaitAll blocks until every request completes.
func (ep *Endpoint) WaitAll(reqs []*Request) {
	for _, r := range reqs {
		ep.Wait(r)
	}
}

// Test drives one round of progress and reports whether req is complete.
func (ep *Endpoint) Test(req *Request) bool {
	ep.Progress()
	return req.done
}

// WaitAnyProgress blocks the rank until at least one progress event is
// handled (used by Waitany-style loops).
func (ep *Endpoint) WaitAnyProgress() {
	if !ep.progressOnce() {
		ep.idle.Wait(ep.proc, whyWaitReq)
		ep.progressOnce()
	}
}

// NextCtx reports the next free matching-context id on this endpoint.
func (ep *Endpoint) NextCtx() int {
	if ep.nextCtx < 2 {
		ep.nextCtx = 2 // 0 and 1 belong to MPI_COMM_WORLD
	}
	return ep.nextCtx
}

// ReserveCtx marks context ids below bound as used.
func (ep *Endpoint) ReserveCtx(bound int) {
	if bound > ep.nextCtx {
		ep.nextCtx = bound
	}
}

// inbound routes a protocol envelope, enforcing per-connection sequencing
// for eager and RTS envelopes.
func (ep *Endpoint) inbound(env *envelope) {
	switch env.kind {
	case envCTS:
		ep.handleCTS(env)
		ep.pool.put(env)
		return
	case envFIN:
		ep.handleFIN(env)
		ep.pool.put(env)
		return
	case envDone:
		ep.handleDone(env)
		ep.pool.put(env)
		return
	}
	conn := ep.conns[env.src]
	if env.seq != conn.recvSeqNext {
		if conn.ooo == nil {
			conn.ooo = make(map[uint64]*envelope)
		}
		conn.ooo[env.seq] = env
		return
	}
	ep.dispatchSequenced(env)
	conn.recvSeqNext++
	for {
		next, ok := conn.ooo[conn.recvSeqNext]
		if !ok {
			break
		}
		delete(conn.ooo, conn.recvSeqNext)
		ep.dispatchSequenced(next)
		conn.recvSeqNext++
	}
}

// sendEnvelope transmits a channel message (anything carried by an OpSend:
// eager data, RTS/CTS/FIN/DONE, message-based RMA), consuming one credit
// and piggybacking any owed credits. With the pool empty the message waits
// in the connection's credit queue. The WR borrows the envelope's payload
// view; the envelope outlives the WR (it is freed by the receiver after
// delivery), so no extra reference is needed even across retransmissions.
func (ep *Endpoint) sendEnvelope(conn *Conn, rail int, env *envelope, wireN int, onPosted func()) {
	if conn.credits <= 0 {
		ep.stats.CreditStalls++
		conn.creditQueue = append(conn.creditQueue, pendingEnvelope{rail, env, wireN, onPosted})
		return
	}
	conn.credits--
	env.credits += conn.owed
	conn.owed = 0
	env.ringCredits += conn.ringOwed
	conn.ringOwed = 0
	wr := ib.SendWR{
		WRID: ep.nextWRID(nil), Op: ib.OpSend,
		Data: env.pay.Bytes(), N: wireN,
		Signaled: true, Ctx: env,
	}
	if env.kind == envEager {
		// Eager data is payload: it consults the port's corruption plan and
		// carries the capture-time checksum. Control envelopes (RTS/CTS/FIN,
		// credits, probes, message-based RMA) are VCRC-protected wire
		// headers — never corrupted, so probes can always reintegrate.
		wr.Payload, wr.CRC = true, env.crc
		wr.NoCorrupt = env.noCorrupt
	}
	ep.post(conn, rail, wr, onPosted)
}

// creditArrived books returned credits and drains any stalled messages.
func (ep *Endpoint) creditArrived(conn *Conn, n int) {
	if n <= 0 {
		return
	}
	conn.credits += n
	for len(conn.creditQueue) > 0 && conn.credits > 0 {
		pe := conn.creditQueue[0]
		conn.creditQueue[0] = pendingEnvelope{} // unpin the shifted-out entry
		conn.creditQueue = conn.creditQueue[1:]
		ep.sendEnvelope(conn, pe.rail, pe.env, pe.wireN, pe.onPosted)
	}
}

// consumedRecv accounts one processed inbound channel message and returns
// credits explicitly once half the pool is owed and no reverse traffic has
// carried them back.
func (ep *Endpoint) consumedRecv(conn *Conn) {
	conn.owed++
	if conn.owed < ep.m.EagerCredits/2 {
		return
	}
	env := ep.pool.get()
	env.kind, env.src, env.credits = envCredit, ep.Rank, conn.owed
	conn.owed = 0
	ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
	// Credit messages are exempt from flow control: the receiver reserves
	// prepost slack for them (srqPrepost exceeds the credit pool).
	ep.post(conn, conn.ctrlRail(), ib.SendWR{
		WRID: ep.nextWRID(nil), Op: ib.OpSend,
		N: ep.m.CtrlMsgBytes, Signaled: true, Ctx: env,
	}, nil)
	ep.stats.CreditUpdates++
}

// dispatchSequenced routes an in-sequence envelope: matched two-sided
// traffic or a one-sided operation applied at this target.
func (ep *Endpoint) dispatchSequenced(env *envelope) {
	switch env.kind {
	case envPut, envAccum, envGetReq, envAtomicReq:
		ep.charge(ep.m.CPUHeaderProc)
		ep.handleRMA(env)
		ep.pool.put(env)
	case envGetResp:
		ep.charge(ep.m.CPUHeaderProc)
		ep.handleGetResp(env)
		ep.pool.put(env)
	case envAtomicResp:
		ep.charge(ep.m.CPUHeaderProc)
		ep.handleAtomicResp(env)
		ep.pool.put(env)
	default:
		ep.handleMatchable(env)
	}
}

// handleMatchable processes an in-sequence eager or RTS envelope.
func (ep *Endpoint) handleMatchable(env *envelope) {
	ep.charge(ep.m.CPUHeaderProc)
	if req := ep.recvIx.match(env); req != nil {
		switch env.kind {
		case envEager:
			ep.deliverEager(req, env)
		case envRTS:
			ep.matchRTS(req, env)
		}
		ep.pool.put(env)
		return
	}
	env.arrSeq = ep.arrSeq
	ep.arrSeq++
	ep.unexIx.add(env)
}

// deferredWR is a work request awaiting send-queue space, with a callback
// fired when it finally reaches the hardware.
type deferredWR struct {
	wr       ib.SendWR
	onPosted func()
}

// drainBacklog retries WRs deferred on a full send queue, preserving their
// per-rail FIFO order.
func (ep *Endpoint) drainBacklog(qpn int) {
	qp, ok := ep.qpIdx[qpn]
	if !ok {
		return
	}
	if qp.IsDown() {
		return // railDown rerouted (or will reroute) this rail's backlog
	}
	q := ep.backlog[qp]
	for len(q) > 0 {
		if err := qp.PostSend(q[0].wr); err == ib.ErrSQFull {
			break
		} else if err != nil {
			panic(fmt.Sprintf("adi: backlog repost failed: %v", err))
		}
		if q[0].onPosted != nil {
			q[0].onPosted()
		}
		q[0] = deferredWR{} // unpin the WR payload and callback
		q = q[1:]
	}
	if len(q) == 0 {
		delete(ep.backlog, qp)
	} else {
		ep.backlog[qp] = q
	}
}

// post sends a WR on a rail, deferring it on backpressure. onPosted runs
// when the WR actually reaches the hardware — immediately on the fast path.
// A dead target rail is stepped over to the next live one; with every rail
// dead the WR parks until a recovery.
func (ep *Endpoint) post(conn *Conn, rail int, wr ib.SendWR, onPosted func()) {
	if d := conn.sched.Dead; d != 0 {
		if lr := d.NextLive(rail, len(conn.rails)); lr >= 0 {
			rail = lr
		} else {
			conn.railWait = append(conn.railWait, deferredWR{wr, onPosted})
			return
		}
	}
	if ep.trackWR {
		fl := ep.getFl()
		fl.conn, fl.rail, fl.wr = conn, rail, wr
		if ep.rel != nil {
			fl.deadline = ep.wrDeadline(conn, rail, wr.N)
		}
		ep.inflight[wr.WRID] = fl
	}
	qp := conn.rails[rail]
	if q := ep.backlog[qp]; len(q) > 0 {
		ep.backlog[qp] = append(q, deferredWR{wr, onPosted})
		return
	}
	if err := qp.PostSend(wr); err == ib.ErrSQFull {
		ep.backlog[qp] = append(ep.backlog[qp], deferredWR{wr, onPosted})
		return
	} else if err == ib.ErrQPDown && ep.rel != nil {
		// Hard evidence the rail is dead, discovered at post time: the
		// reliability layer quarantines it (setting its Dead bit) and the
		// recursive post steps onto a survivor or parks in railWait.
		ep.putFl(wr.WRID)
		ep.railFailed(conn, rail)
		ep.post(conn, rail, wr, onPosted)
		return
	} else if err != nil {
		panic(fmt.Sprintf("adi: PostSend failed: %v", err))
	}
	if onPosted != nil {
		onPosted()
	}
}

// nextWRID allocates a work-request identifier with an optional completion
// callback.
func (ep *Endpoint) nextWRID(cb func()) uint64 {
	ep.wrID++
	if cb != nil {
		ep.onComplete[ep.wrID] = cb
	}
	return ep.wrID
}

// ---- rail-failure recovery ----

// retransmit reroutes a work request flushed by a rail failure onto a
// surviving rail of the same connection (in-flight stripe recovery). The WR
// keeps its identifier, so pending completion callbacks survive the retry.
// Legacy (operator-driven) runs repost immediately; with the reliability
// layer on, the flush is hard evidence against the rail — it is quarantined
// on the spot — and the repost waits out a seed-jittered exponential
// backoff, so a mass flush does not slam the survivors in one instant.
func (ep *Endpoint) retransmit(wrid uint64) {
	fl, ok := ep.inflight[wrid]
	if !ok {
		panic("adi: flushed WR was not tracked (rail recovery not armed?)")
	}
	conn, rail, wr, attempt := fl.conn, fl.rail, fl.wr, fl.attempt
	ep.putFl(wrid)
	ep.stats.RailRetransmits++
	ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.trace(trace.KindRetransmit, conn.peer, wr.N, rail)
	if ep.rel == nil {
		ep.post(conn, rail, wr, nil)
		return
	}
	ep.railFailed(conn, rail)
	delay := ep.backoffDelay(ep.rel.RetryBase, ep.rel.RetryMax, attempt, wrid)
	attempt++
	ep.eng.Post(ep.eng.Now()+delay, func() {
		ep.repostAfterBackoff(conn, rail, wr, attempt)
	})
}

// railDown marks the rail to peer dead on this endpoint: the policy mask
// steers future traffic away, and WRs queued behind the dead QP are rerouted
// onto survivors immediately (in-flight ones flush through the CQ).
func (ep *Endpoint) railDown(peer, rail int) {
	conn := ep.conns[peer]
	if conn == nil || conn.sh != nil || rail < 0 || rail >= len(conn.rails) {
		return
	}
	conn.sched.Dead.MarkDown(rail)
	conn.ringDown()
	qp := conn.rails[rail]
	if q := ep.backlog[qp]; len(q) > 0 {
		delete(ep.backlog, qp)
		for _, d := range q {
			ep.post(conn, rail, d.wr, d.onPosted)
		}
	}
}

// railUp marks the rail to peer healthy again and replays any work requests
// that parked while every rail was dead.
func (ep *Endpoint) railUp(peer, rail int) {
	conn := ep.conns[peer]
	if conn == nil || conn.sh != nil || rail < 0 || rail >= len(conn.rails) {
		return
	}
	conn.sched.Dead.MarkUp(rail)
	conn.ringArm()
	if len(conn.railWait) > 0 {
		q := conn.railWait
		conn.railWait = nil
		for _, d := range q {
			ep.post(conn, rail, d.wr, d.onPosted)
		}
	}
	ep.wake()
}
