package adi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
)

// spec2x1 is two nodes, one rank each — the micro-benchmark layout.
func spec2x1(qps int) topo.Spec {
	return topo.Spec{Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: qps}
}

// run builds a world and executes one body per rank.
func run(t *testing.T, spec topo.Spec, opt Options, bodies ...func(ep *Endpoint)) *World {
	t.Helper()
	eng := sim.NewEngine()
	w := NewWorld(eng, model.Default(), spec, opt)
	if len(bodies) != len(w.Endpoints) {
		t.Fatalf("%d bodies for %d ranks", len(bodies), len(w.Endpoints))
	}
	for i, body := range bodies {
		ep, body := w.Endpoints[i], body
		eng.Spawn(procName("t", i), func(p *sim.Proc) {
			ep.Attach(p)
			body(ep)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return w
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7)
	}
	return b
}

func TestEagerSendRecv(t *testing.T) {
	payload := fill(1024, 3)
	got := make([]byte, 1024)
	var st Status
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			req := ep.PostSend(1, 42, CtxPt2Pt, core.Blocking, payload, len(payload))
			if !req.Done() {
				t.Error("eager send should complete at post (buffered)")
			}
		},
		func(ep *Endpoint) {
			req := ep.PostRecv(0, 42, CtxPt2Pt, got, len(got))
			st = ep.Wait(req)
		})
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
	if st.Source != 0 || st.Tag != 42 || st.Count != 1024 || st.Err != nil {
		t.Errorf("status = %+v", st)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	const n = 256 * 1024
	payload := fill(n, 9)
	got := make([]byte, n)
	w := run(t, spec2x1(4), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			req := ep.PostSend(1, 7, CtxPt2Pt, core.Blocking, payload, n)
			if req.Done() {
				t.Error("rendezvous send must not complete at post")
			}
			ep.Wait(req)
		},
		func(ep *Endpoint) {
			req := ep.PostRecv(0, 7, CtxPt2Pt, got, n)
			st := ep.Wait(req)
			if st.Count != n || st.Err != nil {
				t.Errorf("status = %+v", st)
			}
		})
	if !bytes.Equal(got, payload) {
		t.Error("rendezvous payload corrupted")
	}
	s := w.Endpoints[0].Stats()
	if s.RendezvousSent != 1 {
		t.Errorf("RendezvousSent = %d, want 1", s.RendezvousSent)
	}
	// EPC stripes blocking bulk across all 4 rails.
	if s.StripesSent != 4 {
		t.Errorf("StripesSent = %d, want 4 (EPC blocking → even striping)", s.StripesSent)
	}
}

func TestRendezvousRoundRobinSingleStripe(t *testing.T) {
	const n = 64 * 1024
	w := run(t, spec2x1(4), Options{Policy: core.RoundRobin},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, nil, n))
		},
		func(ep *Endpoint) {
			ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, n))
		})
	if s := w.Endpoints[0].Stats(); s.StripesSent != 1 {
		t.Errorf("StripesSent = %d, want 1 (round robin never stripes)", s.StripesSent)
	}
}

func TestUnexpectedEagerMessage(t *testing.T) {
	payload := fill(512, 1)
	got := make([]byte, 512)
	w := run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			ep.PostSend(1, 5, CtxPt2Pt, core.NonBlocking, payload, 512)
		},
		func(ep *Endpoint) {
			// Let the message arrive unexpected, then post the recv.
			ep.Compute(100 * sim.Microsecond)
			ep.Progress()
			if ok, st := ep.Iprobe(0, 5, CtxPt2Pt); !ok || st.Count != 512 {
				t.Errorf("Iprobe = %v, %+v", ok, st)
			}
			req := ep.PostRecv(0, 5, CtxPt2Pt, got, 512)
			if !req.Done() {
				t.Error("recv matching an unexpected eager message should complete synchronously")
			}
		})
	if !bytes.Equal(got, payload) {
		t.Error("unexpected-path payload corrupted")
	}
	if h := w.Endpoints[1].Stats().UnexpectedHits; h != 1 {
		t.Errorf("UnexpectedHits = %d, want 1", h)
	}
}

func TestUnexpectedRendezvous(t *testing.T) {
	const n = 128 * 1024
	payload := fill(n, 2)
	got := make([]byte, n)
	run(t, spec2x1(2), Options{Policy: core.EvenStriping},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 5, CtxPt2Pt, core.Blocking, payload, n))
		},
		func(ep *Endpoint) {
			ep.Compute(200 * sim.Microsecond) // RTS arrives unexpected
			ep.Progress()
			ep.Wait(ep.PostRecv(0, 5, CtxPt2Pt, got, n))
		})
	if !bytes.Equal(got, payload) {
		t.Error("unexpected rendezvous payload corrupted")
	}
}

func TestWildcards(t *testing.T) {
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			ep.PostSend(1, 99, CtxPt2Pt, core.NonBlocking, []byte{7}, 1)
		},
		func(ep *Endpoint) {
			got := make([]byte, 1)
			st := ep.Wait(ep.PostRecv(AnySource, AnyTag, CtxPt2Pt, got, 1))
			if st.Source != 0 || st.Tag != 99 || got[0] != 7 {
				t.Errorf("wildcard recv: st=%+v got=%v", st, got)
			}
		})
}

func TestContextsDoNotMix(t *testing.T) {
	// A collective-context message must not match a pt2pt receive with the
	// same tag — this separation is what the communication marker uses.
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			ep.PostSend(1, 3, CtxCollective, core.Collective, []byte{1}, 1)
			ep.PostSend(1, 3, CtxPt2Pt, core.NonBlocking, []byte{2}, 1)
		},
		func(ep *Endpoint) {
			got := make([]byte, 1)
			st := ep.Wait(ep.PostRecv(0, 3, CtxPt2Pt, got, 1))
			if got[0] != 2 || st.Err != nil {
				t.Errorf("pt2pt recv got %v (st %+v), want the pt2pt payload 2", got, st)
			}
			st = ep.Wait(ep.PostRecv(0, 3, CtxCollective, got, 1))
			if got[0] != 1 {
				t.Errorf("collective recv got %v", got)
			}
		})
}

func TestNonOvertakingAcrossRails(t *testing.T) {
	// With round robin over 4 rails, consecutive messages ride different
	// QPs and can arrive out of order; sequencing must restore MPI's
	// matching order. Mixed sizes force eager and rendezvous interleaving.
	sizes := []int{512, 64 * 1024, 512, 32 * 1024, 1024, 512}
	run(t, spec2x1(4), Options{Policy: core.RoundRobin},
		func(ep *Endpoint) {
			var reqs []*Request
			for i, n := range sizes {
				reqs = append(reqs, ep.PostSend(1, 8, CtxPt2Pt, core.NonBlocking, fill(n, byte(i)), n))
			}
			ep.WaitAll(reqs)
		},
		func(ep *Endpoint) {
			for i, n := range sizes {
				got := make([]byte, n)
				st := ep.Wait(ep.PostRecv(0, 8, CtxPt2Pt, got, n))
				if st.Count != n {
					t.Errorf("message %d: count %d, want %d", i, st.Count, n)
				}
				if !bytes.Equal(got, fill(n, byte(i))) {
					t.Errorf("message %d: payload mismatch (overtaking?)", i)
				}
			}
		})
}

func TestTruncationError(t *testing.T) {
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, fill(1024, 1), 1024))
		},
		func(ep *Endpoint) {
			got := make([]byte, 100)
			st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, 100))
			if st.Err != ErrTruncated || st.Count != 100 {
				t.Errorf("status = %+v, want truncation to 100", st)
			}
		})
}

func TestRendezvousTruncation(t *testing.T) {
	const sendN, recvN = 64 * 1024, 20 * 1024
	payload := fill(sendN, 5)
	got := make([]byte, recvN)
	run(t, spec2x1(2), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, payload, sendN))
		},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, recvN))
			if st.Err != ErrTruncated || st.Count != recvN {
				t.Errorf("status = %+v", st)
			}
		})
	if !bytes.Equal(got, payload[:recvN]) {
		t.Error("truncated rendezvous delivered wrong prefix")
	}
}

func TestShmemIntraNode(t *testing.T) {
	spec := topo.Spec{Nodes: 1, ProcsPerNode: 2, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1}
	payload := fill(100*1024, 4) // above rendezvous threshold: still shmem single-path
	got := make([]byte, len(payload))
	w := run(t, spec, Options{Policy: core.EPC},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 1, CtxPt2Pt, core.Blocking, payload, len(payload)))
		},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostRecv(0, 1, CtxPt2Pt, got, len(got)))
			if st.Count != len(payload) {
				t.Errorf("count = %d", st.Count)
			}
		})
	if !bytes.Equal(got, payload) {
		t.Error("shmem payload corrupted")
	}
	s := w.Endpoints[0].Stats()
	if s.ShmemSent != 1 || s.EagerSent != 0 || s.RendezvousSent != 0 {
		t.Errorf("stats = %+v: intra-node traffic must not touch the HCA", s)
	}
}

func TestSyntheticPayloads(t *testing.T) {
	for _, n := range []int{100, 64 * 1024} {
		n := n
		run(t, spec2x1(2), Options{Policy: core.EPC},
			func(ep *Endpoint) {
				ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, nil, n))
			},
			func(ep *Endpoint) {
				st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, n))
				if st.Count != n || st.Err != nil {
					t.Errorf("n=%d: status = %+v", n, st)
				}
			})
	}
}

func TestManySmallMessagesBackpressure(t *testing.T) {
	// 300 messages through SQDepth=4 exercises the per-QP backlog.
	const count = 300
	run(t, spec2x1(1), Options{Policy: core.Original, SQDepth: 4},
		func(ep *Endpoint) {
			var reqs []*Request
			for i := 0; i < count; i++ {
				reqs = append(reqs, ep.PostSend(1, i, CtxPt2Pt, core.NonBlocking, nil, 256))
			}
			ep.WaitAll(reqs)
		},
		func(ep *Endpoint) {
			for i := 0; i < count; i++ {
				st := ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, nil, 256))
				if st.Tag != i {
					t.Fatalf("message %d has tag %d", i, st.Tag)
				}
			}
		})
}

func TestPingPongBothDirections(t *testing.T) {
	const iters = 20
	run(t, spec2x1(2), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			buf := make([]byte, 1024)
			for i := 0; i < iters; i++ {
				ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, buf, len(buf)))
				ep.Wait(ep.PostRecv(1, 0, CtxPt2Pt, buf, len(buf)))
			}
		},
		func(ep *Endpoint) {
			buf := make([]byte, 1024)
			for i := 0; i < iters; i++ {
				ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, buf, len(buf)))
				ep.Wait(ep.PostSend(0, 0, CtxPt2Pt, core.Blocking, buf, len(buf)))
			}
		})
}

func TestTestDrivesProgress(t *testing.T) {
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			ep.PostSend(1, 0, CtxPt2Pt, core.NonBlocking, []byte{1}, 1)
		},
		func(ep *Endpoint) {
			req := ep.PostRecv(0, 0, CtxPt2Pt, make([]byte, 1), 1)
			for !ep.Test(req) {
				ep.Compute(1 * sim.Microsecond)
			}
		})
}

func TestDeterministicTimeline(t *testing.T) {
	elapsed := func() sim.Time {
		var end sim.Time
		run(t, spec2x1(4), Options{Policy: core.EPC},
			func(ep *Endpoint) {
				var reqs []*Request
				for i := 0; i < 10; i++ {
					reqs = append(reqs, ep.PostSend(1, 0, CtxPt2Pt, core.NonBlocking, nil, 32*1024))
				}
				ep.WaitAll(reqs)
			},
			func(ep *Endpoint) {
				for i := 0; i < 10; i++ {
					ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, 32*1024))
				}
				end = ep.Now()
			})
		return end
	}
	a, b := elapsed(), elapsed()
	if a != b || a == 0 {
		t.Errorf("timelines differ: %v vs %v", a, b)
	}
}

func TestBindRailOption(t *testing.T) {
	w := run(t, spec2x1(4), Options{Policy: core.Binding, BindRail: func(rank, peer int) int { return 2 }},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, nil, 64*1024))
		},
		func(ep *Endpoint) {
			ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, 64*1024))
		})
	conn := w.Endpoints[0].Conn(1)
	if conn.sched.Bound != 2 {
		t.Errorf("bound rail = %d, want 2", conn.sched.Bound)
	}
}

func TestSpawnHelper(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, model.Default(), spec2x1(1), Options{Policy: core.Original})
	var ranks []int
	w.Spawn("job", func(ep *Endpoint) {
		ranks = append(ranks, ep.Rank)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 2 || ranks[0] == ranks[1] {
		t.Errorf("ranks = %v", ranks)
	}
}
