package adi

import (
	"testing"
)

// naiveMatcher is the reference implementation of MPI matching semantics:
// two flat queues scanned linearly, exactly what the seed implementation
// did. The bucketed indexes must agree with it on every interleaving of
// posts and arrivals, wildcards included.
type naiveMatcher struct {
	posted []*Request
	unex   []*envelope
}

func srcOK(want, got int) bool { return want == AnySource || want == got }

// matchArrival returns the earliest-posted receive matching env, removing it.
func (m *naiveMatcher) matchArrival(env *envelope) *Request {
	for i, r := range m.posted {
		if r.ctxID == env.ctxID && srcOK(r.peer, env.src) && tagOK(r.tag, env.tag) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// matchPost returns the earliest-arrived envelope matching req, removing it.
func (m *naiveMatcher) matchPost(req *Request) *envelope {
	for i, env := range m.unex {
		if env.ctxID == req.ctxID && srcOK(req.peer, env.src) && tagOK(req.tag, env.tag) {
			m.unex = append(m.unex[:i], m.unex[i+1:]...)
			return env
		}
	}
	return nil
}

// FuzzMatchOrder drives the bucketed matching indexes and the naive linear
// reference through the same randomized interleaving of receive posts and
// envelope arrivals — concrete and wildcard sources and tags across two
// contexts — and requires identical matching decisions at every step.
func FuzzMatchOrder(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x01, 0x12, 0x02, 0xff})
	f.Add([]byte{0x01, 0x34, 0x00, 0xf4, 0x01, 0x3f})
	f.Add([]byte{0x00, 0xff, 0x00, 0xff, 0x01, 0x00, 0x01, 0x77})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var (
			rix     recvIndex
			uix     unexIndex
			ref     naiveMatcher
			postSeq uint64
			arrSeq  uint64
		)
		if len(ops) > 512 {
			ops = ops[:512]
		}
		for len(ops) >= 2 {
			b0, b1 := ops[0], ops[1]
			ops = ops[2:]
			ctx := int(b0>>1) & 1
			if b0&1 == 0 {
				// Post a receive. High bits of b1 select the source
				// (3 = AnySource), low bits the tag (7 = AnyTag).
				src := int(b1>>4) & 3
				if src == 3 {
					src = AnySource
				}
				tag := int(b1) & 7
				if tag == 7 {
					tag = AnyTag
				}
				req := &Request{peer: src, tag: tag, ctxID: ctx, postSeq: postSeq}
				postSeq++

				got := uix.takeFor(req)
				want := ref.matchPost(req)
				if got != want {
					t.Fatalf("post (src=%d tag=%d ctx=%d): indexed matched %+v, reference matched %+v",
						src, tag, ctx, got, want)
				}
				if got == nil {
					rix.add(req)
					ref.posted = append(ref.posted, req)
				}
			} else {
				// An envelope arrives: always a concrete source and tag.
				env := &envelope{src: int(b1>>4) & 3, tag: int(b1) & 7, ctxID: ctx}

				got := rix.match(env)
				want := ref.matchArrival(env)
				if got != want {
					t.Fatalf("arrival (src=%d tag=%d ctx=%d): indexed matched %+v, reference matched %+v",
						env.src, env.tag, ctx, got, want)
				}
				if got == nil {
					env.arrSeq = arrSeq
					arrSeq++
					uix.add(env)
					ref.unex = append(ref.unex, env)
				}
			}
		}
		if rix.count != len(ref.posted) {
			t.Fatalf("posted-queue size diverged: indexed %d, reference %d", rix.count, len(ref.posted))
		}
		if uix.count != len(ref.unex) {
			t.Fatalf("unexpected-queue size diverged: indexed %d, reference %d", uix.count, len(ref.unex))
		}
	})
}
