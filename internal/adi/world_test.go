package adi

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
)

func TestWorldRailWiring(t *testing.T) {
	eng := sim.NewEngine()
	spec := topo.Spec{Nodes: 2, ProcsPerNode: 2, HCAsPerNode: 2, PortsPerHCA: 2, QPsPerPort: 3}
	w := NewWorld(eng, model.Default(), spec, Options{Policy: core.EPC})
	wantRails := spec.Rails() // 2×2×3 = 12
	if wantRails != 12 {
		t.Fatalf("spec.Rails() = %d", wantRails)
	}
	for i, ep := range w.Endpoints {
		for j := range w.Endpoints {
			conn := ep.Conn(j)
			switch {
			case i == j:
				if conn != nil {
					t.Errorf("rank %d has a self connection", i)
				}
			case w.Cluster.SameNode(i, j):
				if conn.Rails() != 0 || conn.sh == nil {
					t.Errorf("conn %d->%d: intra-node must use shmem", i, j)
				}
			default:
				if conn.Rails() != wantRails {
					t.Errorf("conn %d->%d: %d rails, want %d", i, j, conn.Rails(), wantRails)
				}
				if conn.credits != model.Default().EagerCredits {
					t.Errorf("conn %d->%d: credits = %d", i, j, conn.credits)
				}
			}
		}
	}
}

func TestWorldRailsSpreadOverPorts(t *testing.T) {
	eng := sim.NewEngine()
	spec := topo.Spec{Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 2, PortsPerHCA: 2, QPsPerPort: 2}
	w := NewWorld(eng, model.Default(), spec, Options{Policy: core.EPC})
	conn := w.Endpoints[0].Conn(1)
	ports := map[string]int{}
	for _, qp := range conn.rails {
		ports[qp.Port.Name]++
	}
	if len(ports) != 4 {
		t.Fatalf("rails on %d distinct ports, want 4 (2 HCAs × 2 ports): %v", len(ports), ports)
	}
	for name, n := range ports {
		if n != 2 {
			t.Errorf("port %s carries %d rails, want 2", name, n)
		}
	}
}

func TestWorldBindRailApplied(t *testing.T) {
	eng := sim.NewEngine()
	spec := topo.Spec{Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 4}
	w := NewWorld(eng, model.Default(), spec, Options{
		Policy:   core.Binding,
		BindRail: func(rank, peer int) int { return (rank + peer) % 4 },
	})
	if got := w.Endpoints[0].Conn(1).sched.Bound; got != 1 {
		t.Errorf("bound rail = %d, want 1", got)
	}
	if got := w.Endpoints[1].Conn(0).sched.Bound; got != 1 {
		t.Errorf("reverse bound rail = %d, want 1", got)
	}
}

func TestWorldAttachTwicePanics(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWorld(eng, model.Default(), topo.Spec{Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1}, Options{})
	eng.Spawn("r0", func(p *sim.Proc) {
		w.Endpoints[0].Attach(p)
		defer func() {
			if recover() == nil {
				t.Error("second Attach must panic")
			}
		}()
		w.Endpoints[0].Attach(p)
	})
	eng.Spawn("r1", func(p *sim.Proc) { w.Endpoints[1].Attach(p) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
