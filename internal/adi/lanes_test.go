package adi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/topo"
	"ib12x/internal/trace"
)

// Lane steering at the ADI layer: a PostSendLane request pins its bulk
// transfer to the lane's rail (one stripe, never a fan-out plan), under
// both rendezvous protocols, and InterRails reports the remote rail width
// the mpi layer sizes its lane partition with.

func TestPostSendLanePinsRail(t *testing.T) {
	const n = 256 * 1024
	payload := fill(n, 5)
	for _, rndv := range []RndvProto{RndvWrite, RndvRead} {
		for lane := 0; lane < 4; lane++ {
			got := make([]byte, n)
			rec := trace.NewRecorder(64)
			w := run(t, spec2x1(4), Options{Policy: core.EPC, Rndv: rndv, Trace: rec},
				func(ep *Endpoint) {
					if got := ep.InterRails(); got != 4 {
						t.Errorf("InterRails() = %d, want 4", got)
					}
					ep.Wait(ep.PostSendLane(1, 9, CtxPt2Pt, core.Collective, payload, n, lane))
				},
				func(ep *Endpoint) {
					ep.Wait(ep.PostRecv(0, 9, CtxPt2Pt, got, n))
				})
			if !bytes.Equal(got, payload) {
				t.Fatalf("rndv=%v lane=%d: payload corrupted", rndv, lane)
			}
			// A lane-pinned bulk transfer is exactly one stripe on the
			// lane's rail, where EPC would have fanned out over all 4.
			// RPUT writes from the sender, RGET reads from the receiver.
			if rndv == RndvWrite {
				if s := w.Endpoints[0].Stats(); s.StripesSent != 1 {
					t.Errorf("rndv=%v lane=%d: StripesSent = %d, want 1 (lane must pin)", rndv, lane, s.StripesSent)
				}
			} else if s := w.Endpoints[1].Stats(); s.StripesRead != 1 {
				t.Errorf("rndv=%v lane=%d: StripesRead = %d, want 1 (lane must pin)", rndv, lane, s.StripesRead)
			}
			found := false
			for _, ev := range rec.Events() {
				if ev.Kind == trace.KindLanePin {
					found = true
					if ev.Rail != lane {
						t.Errorf("rndv=%v lane=%d: LANEPIN on rail %d", rndv, lane, ev.Rail)
					}
				}
			}
			if !found {
				t.Errorf("rndv=%v lane=%d: no LANEPIN trace event", rndv, lane)
			}
		}
	}
}

// TestPostSendLaneEager: an eager-size lane send takes the lane's rail
// instead of the policy's eager pick, and a negative lane means NoLane —
// identical to plain PostSend.
func TestPostSendLaneEager(t *testing.T) {
	payload := fill(2048, 7)
	got := make([]byte, 2048)
	run(t, spec2x1(4), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSendLane(1, 1, CtxPt2Pt, core.Collective, payload, len(payload), 3))
			ep.Wait(ep.PostSendLane(1, 2, CtxPt2Pt, core.Collective, payload, len(payload), -5))
		},
		func(ep *Endpoint) {
			ep.Wait(ep.PostRecv(0, 1, CtxPt2Pt, got, len(got)))
			ep.Wait(ep.PostRecv(0, 2, CtxPt2Pt, got, len(got)))
		})
	if !bytes.Equal(got, payload) {
		t.Error("eager lane payload corrupted")
	}
}

// TestInterRailsShmemWorld: with every peer on the local node there is no
// inter-node connection, so InterRails reports 0 and the mpi layer keeps
// the reference collectives.
func TestInterRailsShmemWorld(t *testing.T) {
	spec := topo.Spec{Nodes: 1, ProcsPerNode: 2, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 4}
	run(t, spec, Options{Policy: core.EPC},
		func(ep *Endpoint) {
			if got := ep.InterRails(); got != 0 {
				t.Errorf("InterRails() = %d on a shmem-only world, want 0", got)
			}
		},
		func(ep *Endpoint) {})
}
