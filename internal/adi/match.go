package adi

// Indexed tag matching. The seed implementation kept posted-unmatched
// receives and unexpected envelopes in two flat slices and scanned them
// linearly on every arrival/post — O(queue length) per message, which
// dominates deep-window workloads. Here both queues are bucketed by
// (context, source):
//
//   - a posted receive with a concrete source lives in the bucket of its
//     (ctx, src); an AnySource receive lives in a per-context wildcard list;
//   - an arrived envelope always has a concrete source and lives in its
//     (ctx, src) bucket.
//
// MPI's matching order is preserved exactly, not approximately:
//
//   - an inbound envelope must match the EARLIEST-POSTED matching receive.
//     Within each bucket receives sit in post order, so the first tag match
//     of the envelope's (ctx, src) bucket and the first tag match of the
//     context's wildcard list are the only two candidates; the lower post
//     sequence number wins.
//   - a posted receive must match the EARLIEST-ARRIVED matching envelope.
//     For a concrete source only one bucket can match and its first tag
//     match is the answer; for AnySource every bucket of the context is a
//     candidate and the minimum arrival sequence number wins (map iteration
//     order does not leak into the result — the minimum is unique).
//
// The determinism digests in determinism_test.go pin this equivalence
// against the seed's linear scans.

import "sync"

// matchKey addresses one (context, source) bucket.
type matchKey struct {
	ctx, src int
}

// tagOK reports a receive-side tag selector accepting an envelope tag.
func tagOK(want, got int) bool { return want == AnyTag || want == got }

// recvIndex holds posted, unmatched receives.
type recvIndex struct {
	specific map[matchKey][]*Request // concrete-source receives, post order
	wild     map[int][]*Request      // AnySource receives per context, post order
	count    int
}

// add appends a posted receive; req.postSeq must already be assigned.
func (ix *recvIndex) add(req *Request) {
	if req.peer == AnySource {
		if ix.wild == nil {
			ix.wild = make(map[int][]*Request)
		}
		ix.wild[req.ctxID] = append(ix.wild[req.ctxID], req)
	} else {
		if ix.specific == nil {
			ix.specific = make(map[matchKey][]*Request)
		}
		k := matchKey{req.ctxID, req.peer}
		ix.specific[k] = append(ix.specific[k], req)
	}
	ix.count++
}

// match removes and returns the earliest-posted receive matching env, or nil.
func (ix *recvIndex) match(env *envelope) *Request {
	if ix.count == 0 {
		return nil
	}
	var spec, wild *Request
	si, wi := -1, -1
	sk := matchKey{env.ctxID, env.src}
	sq := ix.specific[sk]
	for i, r := range sq {
		if tagOK(r.tag, env.tag) {
			spec, si = r, i
			break
		}
	}
	wq := ix.wild[env.ctxID]
	for i, r := range wq {
		if tagOK(r.tag, env.tag) {
			wild, wi = r, i
			break
		}
	}
	switch {
	case spec == nil && wild == nil:
		return nil
	case wild == nil || (spec != nil && spec.postSeq < wild.postSeq):
		ix.specific[sk] = cutReq(sq, si)
		ix.count--
		return spec
	default:
		ix.wild[env.ctxID] = cutReq(wq, wi)
		ix.count--
		return wild
	}
}

// unexIndex holds arrived, unmatched eager/RTS envelopes.
type unexIndex struct {
	buckets map[matchKey][]*envelope // arrival order within each bucket
	count   int
}

// add parks an envelope; env.arrSeq must already be assigned.
func (ix *unexIndex) add(env *envelope) {
	if ix.buckets == nil {
		ix.buckets = make(map[matchKey][]*envelope)
	}
	k := matchKey{env.ctxID, env.src}
	ix.buckets[k] = append(ix.buckets[k], env)
	ix.count++
}

// lookFor locates the earliest-arrived envelope matching req, returning its
// bucket key and position (found=false if none).
func (ix *unexIndex) lookFor(req *Request) (k matchKey, i int, found bool) {
	if ix.count == 0 {
		return matchKey{}, 0, false
	}
	if req.peer != AnySource {
		k = matchKey{req.ctxID, req.peer}
		for i, env := range ix.buckets[k] {
			if tagOK(req.tag, env.tag) {
				return k, i, true
			}
		}
		return matchKey{}, 0, false
	}
	var best *envelope
	for bk, q := range ix.buckets {
		if bk.ctx != req.ctxID {
			continue
		}
		for bi, env := range q {
			if tagOK(req.tag, env.tag) {
				// Within a bucket arrival order holds, so the first tag
				// match is that source's earliest; compare across sources.
				if best == nil || env.arrSeq < best.arrSeq {
					best, k, i = env, bk, bi
				}
				break
			}
		}
	}
	return k, i, best != nil
}

// takeFor removes and returns the earliest-arrived envelope matching req.
func (ix *unexIndex) takeFor(req *Request) *envelope {
	k, i, ok := ix.lookFor(req)
	if !ok {
		return nil
	}
	q := ix.buckets[k]
	env := q[i]
	ix.buckets[k] = cutEnv(q, i)
	ix.count--
	return env
}

// peekFor is takeFor without removal (Iprobe).
func (ix *unexIndex) peekFor(req *Request) *envelope {
	k, i, ok := ix.lookFor(req)
	if !ok {
		return nil
	}
	return ix.buckets[k][i]
}

// cutReq removes position i preserving order and nils the vacated tail slot
// so the backing array does not pin the removed request.
func cutReq(q []*Request, i int) []*Request {
	copy(q[i:], q[i+1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

func cutEnv(q []*envelope, i int) []*envelope {
	copy(q[i:], q[i+1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// ---- envelope pool ----

// envPool recycles protocol envelopes. Envelopes are allocated at the
// sending endpoint but consumed (and thus freed) at the receiving one, so
// the pool is shared per World — the single-threaded engine makes that safe
// without locks; a sharded world switches the pool to locked mode, since
// sender and receiver can live on different shards. Payload capacity is
// recycled separately through the world's buf.Pool, so steady-state eager
// traffic with real payloads stops allocating buffers too.
type envPool struct {
	free   []*envelope
	locked bool
	mu     sync.Mutex
}

func (p *envPool) get() *envelope {
	if p.locked {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	if n := len(p.free); n > 0 {
		env := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return env
	}
	return &envelope{}
}

// put recycles an envelope whose terminal handler has run, releasing the
// envelope's reference on its payload view (the last one, on the eager and
// message-RMA paths — the backing block returns to the world's buf.Pool).
func (p *envPool) put(env *envelope) {
	env.pay.Release()
	*env = envelope{}
	if p.locked {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	p.free = append(p.free, env)
}

// ---- request pool ----

// newRequest returns a zeroed request bound to ep, recycled if possible.
func (ep *Endpoint) newRequest() *Request {
	if n := len(ep.reqFree); n > 0 {
		r := ep.reqFree[n-1]
		ep.reqFree[n-1] = nil
		ep.reqFree = ep.reqFree[:n-1]
		*r = Request{ep: ep, lane: NoLane}
		return r
	}
	return &Request{ep: ep, lane: NoLane}
}

// Release returns a completed request to its endpoint's pool. Only code
// that created the request and can prove no other reference survives — the
// mpi layer's blocking operations and collective internals — may call it;
// a released request must never be touched again. Releasing nil is a no-op.
func (r *Request) Release() {
	if r == nil || r.ep == nil {
		return
	}
	// The protocol releases r.owner at FIN/DONE/final-ack and clears it;
	// this release is a defensive no-op unless the request is being
	// abandoned with its transfer still in flight.
	r.owner.Release()
	ep := r.ep
	*r = Request{}
	ep.reqFree = append(ep.reqFree, r)
}
