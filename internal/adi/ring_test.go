package adi

import (
	"bytes"
	"fmt"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// RDMA-write eager ring boundaries: slot exhaustion, slot-size overflow,
// wrap-around, header-cache behaviour, and the fallback channel's
// non-overtaking guarantee when ring and send/recv messages interleave.

func TestRingExhaustionFallsBackToSendRecv(t *testing.T) {
	// 40 one-way eager messages against a 32-slot ring while the receiver
	// computes: no slot credits can return, so exactly the first 32 ride the
	// ring and the rest fall back to the send/recv channel. The shared
	// sequence space must keep the mixed stream in order.
	const count = 40
	slots := model.Default().RingSlots
	rec := trace.NewRecorder(256)
	w := run(t, spec2x1(2), Options{Policy: core.EPC, EagerProto: EagerRDMAWrite, Trace: rec},
		func(ep *Endpoint) {
			var reqs []*Request
			for i := 0; i < count; i++ {
				reqs = append(reqs, ep.PostSend(1, i, CtxPt2Pt, core.NonBlocking, nil, 512))
			}
			ep.WaitAll(reqs)
		},
		func(ep *Endpoint) {
			ep.Compute(500 * sim.Microsecond) // let the sender exhaust the ring
			for i := 0; i < count; i++ {
				st := ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, nil, 512))
				if st.Tag != i {
					t.Fatalf("message %d out of order (tag %d): ring/fallback interleave broke sequencing", i, st.Tag)
				}
			}
		})
	s := w.Endpoints[0].Stats()
	if s.RingSends != int64(slots) {
		t.Errorf("RingSends = %d, want %d (one per slot, then exhaustion)", s.RingSends, slots)
	}
	if want := int64(count - slots); s.RingFull != want || s.EagerFallbacks != want {
		t.Errorf("RingFull = %d, EagerFallbacks = %d, want %d each", s.RingFull, s.EagerFallbacks, want)
	}
	if s.EagerSent != count {
		t.Errorf("EagerSent = %d, want %d (fallback messages are still eager)", s.EagerSent, count)
	}
	falls := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindEagerFallback {
			falls++
		}
	}
	if falls != count-slots {
		t.Errorf("FALLBACK trace events = %d, want %d", falls, count-slots)
	}
}

func TestRingSlotOverflowFallsBack(t *testing.T) {
	// A payload that fits the eager threshold but not a ring slot (slot
	// bytes include the full wire header) must take the send/recv channel;
	// the largest payload that does fit must take the ring. Eligibility is
	// judged against the full header even when the header cache would
	// compress it, so the channel choice never depends on cache warmth.
	m := model.Default()
	fits := m.RingSlotBytes - m.MPIHeaderBytes
	over := m.RingSlotBytes
	if over >= m.RendezvousThreshold {
		t.Fatalf("slot bytes %d not below rendezvous threshold %d: test premise broken", over, m.RendezvousThreshold)
	}
	for _, tc := range []struct {
		n         int
		wantRing  int64
		wantFalls int64
	}{
		{fits, 1, 0},
		{over, 0, 1},
	} {
		payload := fill(tc.n, 6)
		got := make([]byte, tc.n)
		w := run(t, spec2x1(2), Options{Policy: core.EPC, EagerProto: EagerRDMAWrite},
			func(ep *Endpoint) {
				ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, payload, tc.n))
			},
			func(ep *Endpoint) {
				st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, tc.n))
				if st.Count != tc.n || st.Err != nil {
					t.Errorf("n=%d: status %+v", tc.n, st)
				}
			})
		if !bytes.Equal(got, payload) {
			t.Errorf("n=%d: payload corrupted", tc.n)
		}
		s := w.Endpoints[0].Stats()
		if s.RingSends != tc.wantRing || s.EagerFallbacks != tc.wantFalls {
			t.Errorf("n=%d (slot %d): RingSends=%d EagerFallbacks=%d, want %d/%d",
				tc.n, m.RingSlotBytes, s.RingSends, s.EagerFallbacks, tc.wantRing, tc.wantFalls)
		}
		if s.RingFull != 0 {
			t.Errorf("n=%d: RingFull = %d, want 0 (overflow is not exhaustion)", tc.n, s.RingFull)
		}
	}
}

func TestRingWrapAndHeaderCache(t *testing.T) {
	// A balanced ping-pong longer than the ring: slot credits return
	// piggybacked on the reverse messages, the slot cursor wraps (RINGWRAP),
	// and every round after the first hits the header cache (HDRHIT) —
	// repeated (tag, context) signatures go on the wire compressed.
	const rounds = 40
	rec := trace.NewRecorder(512)
	w := run(t, spec2x1(2), Options{Policy: core.EPC, EagerProto: EagerRDMAWrite, Trace: rec},
		func(ep *Endpoint) {
			buf := make([]byte, 256)
			for i := 0; i < rounds; i++ {
				ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, buf, len(buf)))
				ep.Wait(ep.PostRecv(1, 0, CtxPt2Pt, buf, len(buf)))
			}
		},
		func(ep *Endpoint) {
			buf := make([]byte, 256)
			for i := 0; i < rounds; i++ {
				ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, buf, len(buf)))
				ep.Wait(ep.PostSend(0, 0, CtxPt2Pt, core.Blocking, buf, len(buf)))
			}
		})
	for r := 0; r < 2; r++ {
		s := w.Endpoints[r].Stats()
		if s.RingSends != rounds {
			t.Errorf("rank %d: RingSends = %d, want %d (balanced traffic must never leave the ring)", r, s.RingSends, rounds)
		}
		if s.RingFull != 0 || s.EagerFallbacks != 0 || s.CreditStalls != 0 {
			t.Errorf("rank %d: RingFull=%d EagerFallbacks=%d CreditStalls=%d, want 0",
				r, s.RingFull, s.EagerFallbacks, s.CreditStalls)
		}
		if want := int64(rounds - 1); s.HdrCacheHits != want {
			t.Errorf("rank %d: HdrCacheHits = %d, want %d (first send installs, the rest hit)", r, s.HdrCacheHits, want)
		}
	}
	wraps, hits := 0, 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindRingWrap:
			wraps++
		case trace.KindHdrHit:
			hits++
		}
	}
	slots := model.Default().RingSlots
	if want := 2 * (rounds / slots); wraps != want {
		t.Errorf("RINGWRAP trace events = %d, want %d (%d rounds over a %d-slot ring, both directions)",
			wraps, want, rounds, slots)
	}
	if want := 2 * (rounds - 1); hits != want {
		t.Errorf("HDRHIT trace events = %d, want %d", hits, want)
	}
}

func TestRingZeroValueKeepsSendRecvPath(t *testing.T) {
	// The zero Options value must not touch the ring at all — this is the
	// digest-preservation contract for every historical configuration.
	w := run(t, spec2x1(2), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, nil, 1024))
		},
		func(ep *Endpoint) {
			ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, 1024))
		})
	s := w.Endpoints[0].Stats()
	if s.RingSends != 0 || s.RingFull != 0 || s.EagerFallbacks != 0 || s.HdrCacheHits != 0 {
		t.Errorf("send/recv default touched ring state: %+v", s)
	}
	if w.Endpoints[0].Conn(1).ring != nil {
		t.Error("ring allocated under the send/recv default")
	}
}

// ---- header cache unit behaviour ----

func TestHdrCacheLRU(t *testing.T) {
	c := newHdrCache(3)
	// Install a, b, c (all misses).
	for i, tag := range []int{1, 2, 3} {
		if c.hit(tag, 0) {
			t.Fatalf("install %d: unexpected hit", i)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	// Touch 1: now MRU order is 1, 3, 2.
	if !c.hit(1, 0) {
		t.Fatal("re-lookup of resident signature missed")
	}
	// Install 4: evicts LRU (2).
	if c.hit(4, 0) {
		t.Fatal("fresh signature hit")
	}
	if c.hit(2, 0) {
		t.Error("signature 2 survived eviction; LRU order broken")
	}
	// That miss reinstalled 2, evicting 3 (LRU after the touch of 1). The
	// probe for 3 in turn reinstalls 3, evicting 1 — misses mutate too.
	if c.hit(3, 0) {
		t.Error("signature 3 survived eviction; LRU order broken")
	}
	if !c.hit(4, 0) || !c.hit(2, 0) {
		t.Error("recently used signatures evicted")
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want 3 (capacity bound)", c.len())
	}
}

func TestHdrCacheDistinguishesTagAndContext(t *testing.T) {
	c := newHdrCache(8)
	c.hit(5, int(CtxPt2Pt))
	if c.hit(5, int(CtxCollective)) {
		t.Error("same tag in a different context must be a distinct signature")
	}
	if !c.hit(5, int(CtxPt2Pt)) {
		t.Error("original signature lost")
	}
}

func TestHdrCacheMinimumCapacity(t *testing.T) {
	c := newHdrCache(0) // clamped to 1
	if c.hit(1, 0) {
		t.Error("empty cache hit")
	}
	if !c.hit(1, 0) {
		t.Error("single-slot cache must retain the last signature")
	}
	if c.hit(2, 0) {
		t.Error("fresh signature hit")
	}
	if c.hit(1, 0) {
		t.Error("single-slot cache must have evicted the older signature")
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

// FuzzHeaderCache differentially checks the linked-list LRU against a flat
// slice reference that recomputes recency by scanning. Any divergence in
// hit/miss decisions or occupancy breaks the sender/receiver header-cache
// mirror (DESIGN.md §16) and would silently corrupt wire sizing.
func FuzzHeaderCache(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 1, 0, 3, 0, 4, 0, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 1, 1})
	f.Add([]byte{255, 255, 0, 1, 128, 7, 255, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 4 // small: forces evictions quickly
		c := newHdrCache(capacity)
		var ref []uint64 // MRU-first flat reference
		for i := 0; i+1 < len(ops); i += 2 {
			tag, ctx := int(ops[i]), int(ops[i+1])
			key := hdrKey(tag, ctx)
			refHit := false
			for j, k := range ref {
				if k == key {
					refHit = true
					ref = append(ref[:j], ref[j+1:]...)
					break
				}
			}
			if !refHit && len(ref) == capacity {
				ref = ref[:capacity-1] // evict LRU (last)
			}
			ref = append([]uint64{key}, ref...)
			if got := c.hit(tag, ctx); got != refHit {
				t.Fatalf("op %d (tag=%d ctx=%d): hit=%v, reference says %v", i/2, tag, ctx, got, refHit)
			}
			if c.len() != len(ref) {
				t.Fatalf("op %d: len=%d, reference %d", i/2, c.len(), len(ref))
			}
		}
		// Final sweep: every resident signature must hit, in any order.
		for _, k := range ref {
			tag, ctx := int(k>>32), int(uint32(k))
			if !c.hit(tag, ctx) {
				t.Fatalf("resident signature %s missing at end", fmt.Sprintf("(%d,%d)", tag, ctx))
			}
		}
	})
}
