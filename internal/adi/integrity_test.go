package adi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
	"ib12x/internal/trace"
)

// Integrity-layer unit tests: NACK-driven redelivery on the send/recv and
// ring channels, the ring consume path's torn-write guard, and audit-mode
// tallies — all at adi scale, where a single faulty port is easy to aim.

// runCorrupt builds a 2-rank world, lets the caller poison rank 0's ports,
// and runs one body per rank.
func runCorrupt(t *testing.T, opt Options, poison func(w *World), bodies ...func(ep *Endpoint)) *World {
	t.Helper()
	eng := sim.NewEngine()
	w := NewWorld(eng, model.Default(), topo.Spec{
		Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 2,
	}, opt)
	if poison != nil {
		poison(w)
	}
	for i, body := range bodies {
		ep, body := w.Endpoints[i], body
		eng.Spawn(procName("t", i), func(p *sim.Proc) {
			ep.Attach(p)
			body(ep)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return w
}

// TestIntegrityNackRedeliversEager pins the NACK arc on the send/recv
// channel: with every eager payload corrupted at the wire and verification
// armed, each message is rejected by the receiving HCA, NACKed, and
// retransmitted clean — every payload arrives intact.
func TestIntegrityNackRedeliversEager(t *testing.T) {
	const rounds = 8
	const n = 1024
	w := runCorrupt(t, Options{Policy: core.EPC, Integrity: IntegrityVerify},
		func(w *World) {
			for _, port := range w.Cluster.Nodes[0].Ports() {
				port.FlipEvery = 1
				port.CorruptSeed = 0xF11F
			}
		},
		func(ep *Endpoint) {
			for i := 0; i < rounds; i++ {
				ep.Wait(ep.PostSend(1, i, CtxPt2Pt, core.Blocking, fill(n, byte(i)), n))
			}
			// The informational NACK completions land on this side's CQ and
			// are only tallied when software polls: stay engaged until the
			// receiver confirms every round (a real sender with nothing left
			// to do would miss the tally, never the retransmission — the HCA
			// retries autonomously).
			ack := make([]byte, 1)
			ep.Wait(ep.PostRecv(1, 99, CtxPt2Pt, ack, 1))
		},
		func(ep *Endpoint) {
			for i := 0; i < rounds; i++ {
				got := make([]byte, n)
				st := ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, got, n))
				if st.Err != nil || st.Count != n {
					t.Fatalf("round %d: status %+v", i, st)
				}
				if !bytes.Equal(got, fill(n, byte(i))) {
					t.Fatalf("round %d: corrupted payload reached the application with verify armed", i)
				}
			}
			ep.Wait(ep.PostSend(0, 99, CtxPt2Pt, core.Blocking, []byte{1}, 1))
		})
	s := w.Endpoints[0].Stats()
	if s.IntegrityNacks != rounds {
		t.Errorf("IntegrityNacks = %d, want %d (every send flipped once, retransmits exempt)",
			s.IntegrityNacks, rounds)
	}
	if d := w.Endpoints[1].Stats().CorruptDeliveries; d != 0 {
		t.Errorf("verify mode delivered %d corrupt payloads", d)
	}
}

// TestIntegrityNackRedeliversRing is the same arc on the RDMA-write ring:
// flipped slots are NACKed and the retransmission rewrites the same slot.
func TestIntegrityNackRedeliversRing(t *testing.T) {
	const rounds = 8
	const n = 512
	w := runCorrupt(t, Options{Policy: core.EPC, EagerProto: EagerRDMAWrite, Integrity: IntegrityVerify},
		func(w *World) {
			for _, port := range w.Cluster.Nodes[0].Ports() {
				port.FlipEvery = 2
				port.CorruptSeed = 0xF22F
			}
		},
		func(ep *Endpoint) {
			for i := 0; i < rounds; i++ {
				ep.Wait(ep.PostSend(1, i, CtxPt2Pt, core.Blocking, fill(n, byte(i)), n))
			}
			// Drain the informational NACK completions (see the eager test).
			ack := make([]byte, 1)
			ep.Wait(ep.PostRecv(1, 99, CtxPt2Pt, ack, 1))
		},
		func(ep *Endpoint) {
			for i := 0; i < rounds; i++ {
				got := make([]byte, n)
				st := ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, got, n))
				if st.Err != nil || !bytes.Equal(got, fill(n, byte(i))) {
					t.Fatalf("round %d: status %+v or corrupt payload", i, st)
				}
			}
			ep.Wait(ep.PostSend(0, 99, CtxPt2Pt, core.Blocking, []byte{1}, 1))
		})
	s := w.Endpoints[0].Stats()
	if s.IntegrityNacks == 0 {
		t.Error("no NACKs on the ring channel; injection not engaging")
	}
}

// TestRingTornGuardRepolls is the torn-write satellite regression: a ring
// slot whose doorbell lands before its payload settles must be re-polled by
// the consume path's consistency check — never consumed stale — and the
// payload must arrive intact without any NACK (the bytes were late, not
// wrong).
func TestRingTornGuardRepolls(t *testing.T) {
	const rounds = 6
	const n = 256
	rec := trace.NewRecorder(256)
	w := runCorrupt(t, Options{Policy: core.EPC, EagerProto: EagerRDMAWrite, Integrity: IntegrityVerify, Trace: rec},
		func(w *World) {
			for _, port := range w.Cluster.Nodes[0].Ports() {
				port.TornEvery = 2
				port.CorruptSeed = 0x7042
			}
		},
		func(ep *Endpoint) {
			for i := 0; i < rounds; i++ {
				ep.Wait(ep.PostSend(1, i, CtxPt2Pt, core.Blocking, fill(n, byte(i)), n))
			}
		},
		func(ep *Endpoint) {
			for i := 0; i < rounds; i++ {
				got := make([]byte, n)
				st := ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, got, n))
				if st.Err != nil || !bytes.Equal(got, fill(n, byte(i))) {
					t.Fatalf("round %d: stale torn slot reached the application (status %+v)", i, st)
				}
			}
		})
	recv := w.Endpoints[1].Stats()
	if recv.TornRepolls == 0 {
		t.Error("torn slots never tripped the consume guard")
	}
	if w.Endpoints[0].Stats().IntegrityNacks != 0 {
		t.Error("a torn slot was NACKed; late bytes are not corrupt bytes")
	}
	polls := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindTornRepoll {
			polls++
		}
	}
	if int64(polls) != recv.TornRepolls {
		t.Errorf("TORNPOLL trace events = %d, stats say %d", polls, recv.TornRepolls)
	}
}

// TestIntegrityAuditDeliversAndTallies pins audit mode at adi scale: the
// corrupted image reaches the receive buffer (exactly one byte XORed), the
// delivery is tallied and traced, and nothing is NACKed or charged.
func TestIntegrityAuditDeliversAndTallies(t *testing.T) {
	const n = 1024
	payload := fill(n, 9)
	got := make([]byte, n)
	rec := trace.NewRecorder(64)
	w := runCorrupt(t, Options{Policy: core.EPC, Integrity: IntegrityAudit, Trace: rec},
		func(w *World) {
			for _, port := range w.Cluster.Nodes[0].Ports() {
				port.FlipEvery = 1
				port.CorruptSeed = 0xAAAA
			}
		},
		func(ep *Endpoint) {
			ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, payload, n))
		},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, n))
			if st.Err != nil || st.Count != n {
				t.Fatalf("status %+v", st)
			}
		})
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("flip changed %d bytes of the receive buffer, want exactly 1", diff)
	}
	if d := w.Endpoints[1].Stats().CorruptDeliveries; d != 1 {
		t.Errorf("CorruptDeliveries = %d, want 1", d)
	}
	if w.Endpoints[0].Stats().IntegrityNacks != 0 {
		t.Error("audit mode NACKed")
	}
	seen := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindCorruptDeliver {
			seen = true
		}
	}
	if !seen {
		t.Error("no CORRUPT trace event")
	}
}
