// Package adi is the Abstract Device Interface layer of the MPI design
// (paper §3, Figure 2): it implements the eager and rendezvous protocols,
// MPI tag matching with an unexpected queue, the communication marker that
// classifies each transfer as {blocking, non-blocking, collective}, the
// completion filter (per-rank progress engine), and the communication
// scheduler that maps messages onto rails via a core.Policy.
//
// One Endpoint exists per MPI rank. Everything an Endpoint does is driven
// from its rank's simulated process: CPU costs (header processing,
// descriptor posting, completion reaping, eager copies) are charged to the
// rank by sleeping its proc, exactly where MVAPICH would burn host cycles.
package adi

import (
	"errors"
	"fmt"

	"ib12x/internal/buf"
	"ib12x/internal/core"
	"ib12x/internal/sim"
)

// Tag/source wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
const (
	AnySource = -1
	AnyTag    = -1
)

// Context identifiers separating point-to-point from collective traffic;
// the separate collective context is what lets the communication marker
// recognise collective transfers at the ADI layer (paper §3.3).
const (
	CtxPt2Pt      = 0
	CtxCollective = 1
)

// ErrTruncated reports a message longer than the posted receive buffer.
var ErrTruncated = errors.New("adi: message truncated (receive buffer too small)")

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int // received bytes
	Err    error
}

// Request is a pending or completed communication operation.
// NoLane marks a request that carries no lane-steering hint: rail choice
// stays with the scheduling policy. (Pooled requests and envelopes zero
// their lane field to 0, a valid lane, so every send path assigns the
// field explicitly.)
const NoLane = -1

type Request struct {
	ep   *Endpoint
	send bool
	done bool

	// Matching fields (receive side) / envelope fields (send side).
	peer  int // destination (send) or source selector (recv; AnySource ok)
	tag   int
	ctxID int

	class core.Class
	data  []byte // send payload or recv buffer (nil = synthetic)
	n     int    // send size or recv capacity

	// lane is the lane-steering hint (NoLane = none): when set, every
	// transfer of this send — the eager message or all rendezvous bulk
	// stripes — is pinned to rail lane%rails (stepped off dead rails),
	// bypassing the policy. Lane-decomposed collectives use it to keep
	// each sub-collective on its own rail.
	lane int

	status Status

	// postSeq orders posted receives globally on their endpoint; the
	// matching index uses it to arbitrate between a specific-source bucket
	// hit and a wildcard-list hit (earliest post wins, the MPI rule).
	postSeq uint64

	// Rendezvous send state.
	writesLeft int
	mrKey      uint32

	// Whole-message checksum of a rendezvous transfer (receive side; carried
	// over from the RTS when integrity is on): checked once the last stripe
	// is in place, modeling the end-to-end pass over the assembled buffer.
	crc    uint32
	crcSet bool

	// noCorrupt marks a send initiated inside Endpoint.Shielded: its bytes
	// are protocol metadata riding the message path, exempt from payload
	// corruption so chaos plans stay liveness-safe by construction.
	noCorrupt bool

	// owner is the payload view a bulk send/put holds while its bytes are
	// exposed to the transport: a Wrap of the user's buffer (zero-copy, no
	// capture) retained until the protocol guarantees remote placement
	// (FIN/DONE or the final stripe ack), so a stripe retransmitted after a
	// rail death always references live bytes.
	owner buf.View

	// Atomic result (FetchAtomic requests).
	atomicOld uint64
}

// AtomicOld reports the pre-operation value of a completed atomic request.
func (r *Request) AtomicOld() uint64 { return r.atomicOld }

// Done reports whether the operation has completed.
func (r *Request) Done() bool { return r.done }

// Status returns the receive status; meaningful once Done.
func (r *Request) Status() Status { return r.status }

// envKind discriminates protocol envelopes.
type envKind int

const (
	envEager envKind = iota
	envRTS
	envCTS
	envFIN
	envDone       // RGET: receiver finished reading; sender may complete
	envPut        // one-sided: message-based put (intra-node path)
	envAccum      // one-sided: accumulate (always message-based)
	envGetReq     // one-sided: message-based get request
	envGetResp    // one-sided: get response
	envAtomicReq  // one-sided: message-based atomic request
	envAtomicResp // one-sided: atomic response with the old value
	envCredit     // explicit flow-control credit return
	envProbe      // rail-health probe on a quarantined QP (credit-exempt)
)

func (k envKind) String() string {
	switch k {
	case envEager:
		return "EAGER"
	case envRTS:
		return "RTS"
	case envCTS:
		return "CTS"
	case envFIN:
		return "FIN"
	case envDone:
		return "DONE"
	case envPut:
		return "PUT"
	case envAccum:
		return "ACCUM"
	case envGetReq:
		return "GET_REQ"
	case envGetResp:
		return "GET_RESP"
	case envAtomicReq:
		return "ATOMIC_REQ"
	case envAtomicResp:
		return "ATOMIC_RESP"
	case envCredit:
		return "CREDIT"
	case envProbe:
		return "PROBE"
	default:
		return fmt.Sprintf("envKind(%d)", int(k))
	}
}

// envelope is the protocol header carried with every transfer. Eager data
// and RTS envelopes are sequenced per connection so MPI's non-overtaking
// matching order survives multi-rail delivery reordering; CTS and FIN are
// targeted at specific requests and need no sequencing.
type envelope struct {
	kind  envKind
	src   int
	tag   int
	ctxID int
	size  int
	seq   uint64
	class core.Class // sender-side marker class (RTS; drives RGET striping)

	// pay is the envelope's owned payload view (zero = synthetic): the one
	// capture copy an eager/message-RMA send makes. Every downstream layer
	// borrows it; the receiver's pool.put releases it after delivery.
	pay buf.View

	shm bool // arrived via the shared-memory channel

	// arrSeq orders unexpected arrivals globally on the receiving endpoint
	// (assigned when the envelope parks in the unexpected index).
	arrSeq uint64

	// Request references: stand-ins for the request identifiers MVAPICH
	// embeds in its control messages.
	sreq *Request
	rreq *Request

	rkey uint32 // CTS: receiver's buffer key; RTS (RGET): sender's buffer key
	xfer int    // CTS: bytes the receiver will accept

	// lane carries the sender's lane-steering hint on an RTS so an RGET
	// receiver pins its read to the same lane (NoLane = none; always
	// assigned by sendRTS — pooled envelopes zero to 0, not NoLane).
	lane int

	// One-sided fields.
	winID int
	off   int
	accOp AccOp

	// Atomic operands and result.
	arg1, arg2, old uint64
	atomicCAS       bool

	// credits piggybacks returned flow-control credits on any channel
	// message (envCredit carries them alone).
	credits int

	// ring marks an envelope delivered through the RDMA-write eager ring:
	// it occupies a ring slot (returned via ringCredits) instead of a
	// channel credit, and the receiver discovers it by polling.
	ring bool

	// ringCredits piggybacks freed ring slots back to the peer on any
	// reverse message (ring, channel, or an explicit envCredit).
	ringCredits int

	// Integrity fields (DESIGN.md §17). crc is the payload's capture-time
	// checksum (eager) or the whole message's (RTS), valid when hasCRC; the
	// taint fields are stamped at the receiver from the completion entry and
	// describe which corrupt image the wire delivered (all zero on a clean
	// fabric): a single XORed payload byte, a mangled wire header, or — ring
	// slots only — the instant an inconsistently written slot settles.
	crc      uint32
	hasCRC   bool
	flipOff  int
	flipMask byte
	hdrTaint bool
	tornAt   sim.Time
	// noCorrupt carries the sending request's shield (Endpoint.Shielded)
	// onto the wire descriptor.
	noCorrupt bool
}

// RndvProto selects the rendezvous data-transfer engine.
type RndvProto int

// Rendezvous protocol variants (both existed in MVAPICH):
const (
	// RndvWrite: receiver grants its buffer via CTS; sender RDMA-writes
	// (RPUT, the paper's protocol).
	RndvWrite RndvProto = iota
	// RndvRead: sender exposes its buffer in the RTS; receiver
	// RDMA-reads (RGET). Saves the CTS flight at the cost of read
	// round-trip latency; the scheduling policies stripe the reads.
	RndvRead
)

// EagerProto selects the eager-message transport channel.
type EagerProto int

// Eager protocol variants:
const (
	// EagerSendRecv ships eager messages as channel sends consuming
	// preposted receives at the peer (the historical path; zero value
	// preserves every digest).
	EagerSendRecv EagerProto = iota
	// EagerRDMAWrite ships them as RDMA writes with immediate into a
	// persistent per-peer ring buffer discovered by the receiver's polling
	// set, with a sender-side header cache compressing repeated envelope
	// signatures — Liu et al.'s MPICH2-over-InfiniBand fast path
	// (DESIGN.md §16). Oversized or ring-blocked messages fall back to the
	// send/recv channel.
	EagerRDMAWrite
)

// Stats counts protocol activity on one endpoint.
type Stats struct {
	EagerSent       int64
	RendezvousSent  int64
	StripesSent     int64
	StripesRead     int64
	ShmemSent       int64
	UnexpectedHits  int64
	CtrlMsgs        int64
	CreditStalls    int64 // channel messages deferred on empty credit pools
	CreditUpdates   int64 // explicit credit-return messages sent
	RailRetransmits int64 // WRs rerouted onto survivors after a rail death

	// Rail reliability layer (World.EnableReliability).
	RailSuspects       int64 // up -> suspect transitions (deadline strikes)
	RailQuarantines    int64 // rails removed from the policy masks
	RailProbes         int64 // probe WRs that reached a quarantined QP
	RailReintegrations int64 // rails returned to service by a probe

	// Pin-down registration cache (Options.RegCache; all zero when off).
	RegHits       int64 // registrations already covered by a pinned region
	RegMisses     int64 // registrations that pinned new pages
	RegEvictions  int64 // regions evicted under capacity pressure
	RegPinnedPeak int64 // pinned-bytes high-water mark on this endpoint

	// RDMA-write eager ring (Options.EagerProto = EagerRDMAWrite).
	RingSends      int64 // eager messages shipped through the per-peer ring
	RingFull       int64 // ring sends declined on an exhausted slot pool
	EagerFallbacks int64 // eager messages diverted to the send/recv channel
	HdrCacheHits   int64 // ring sends that shipped the compressed header

	// Integrity layer (Options.Integrity; DESIGN.md §17).
	IntegrityNacks    int64 // payload WRs NACKed by the receiving HCA's check
	CorruptDeliveries int64 // corrupted payloads reaching application memory
	TornRepolls       int64 // ring slots re-polled by the torn-write guard
}

// classIsValid guards the marker input.
func classIsValid(c core.Class) bool {
	return c == core.Blocking || c == core.NonBlocking || c == core.Collective
}

// park reason used by the progress engine while blocked on events.
const whyWaitReq = "adi: waiting for request completion"
