package adi

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
	"ib12x/internal/trace"
)

// stripeBytesByRail runs one 384 KB rendezvous send over a 2-port (2-rail)
// fabric under weighted striping, optionally degrading the sender's second
// port first, and returns the bytes each rail carried.
func stripeBytesByRail(t *testing.T, degrade float64) [2]int {
	t.Helper()
	const n = 384 * 1024
	eng := sim.NewEngine()
	spec := topo.Spec{Nodes: 2, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 2, QPsPerPort: 1}
	rec := trace.NewRecorder(1 << 16)
	w := NewWorld(eng, model.Default(), spec, Options{Policy: core.WeightedStriping, Trace: rec})
	if degrade > 0 {
		// Degrade the port behind rail 1 of the sender's connection, so the
		// planner sees a 1 : degrade rate split.
		w.Endpoints[0].Conn(1).rails[1].Port.DegradeLink(degrade, 0)
	}
	payload := fill(n, 5)
	got := make([]byte, n)
	bodies := []func(ep *Endpoint){
		func(ep *Endpoint) { ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, payload, n)) },
		func(ep *Endpoint) { ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, n)) },
	}
	for i, body := range bodies {
		ep, body := w.Endpoints[i], body
		eng.Spawn(procName("t", i), func(p *sim.Proc) {
			ep.Attach(p)
			body(ep)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var by [2]int
	for _, e := range rec.Events() {
		if e.Kind == trace.KindStripeWrite && e.Rank == 0 {
			by[e.Rail] += e.Bytes
		}
	}
	if by[0]+by[1] != n {
		t.Fatalf("stripes cover %d bytes, want %d (events: %d)", by[0]+by[1], n, rec.Len())
	}
	return by
}

// TestWeightedStripingTracksDegradedRate is the partial-degradation ROADMAP
// item end to end: with one of two ports throttled to half rate, the
// weighted-striping planner must shift bytes to the healthy rail in a ~2:1
// split rather than keep striping evenly against a slow link.
func TestWeightedStripingTracksDegradedRate(t *testing.T) {
	even := stripeBytesByRail(t, 0)
	if even[0] != even[1] {
		t.Fatalf("healthy fabric not evenly striped: %v", even)
	}
	deg := stripeBytesByRail(t, 0.5)
	ratio := float64(deg[0]) / float64(deg[1])
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("degraded split %d:%d (ratio %.2f), want ~2:1 tracking the 2:1 rate split", deg[0], deg[1], ratio)
	}
}
