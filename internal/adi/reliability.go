// Rail reliability layer: endogenous failure detection, backoff
// retransmission, and probe-driven reintegration (DESIGN.md §12).
//
// With the layer enabled (World.EnableReliability) nothing outside the ADI
// layer touches the policy-visible rail masks: the operator (or the chaos
// plan) only flips QP hardware state, and every endpoint discovers sickness
// on its own, from three signals it already owns:
//
//   - a posted WR completing with StatusFlushErr (hard evidence: the rail
//     died with the WR in flight),
//   - PostSend returning ErrQPDown (hard evidence: the rail is down right
//     now),
//   - a WR outstanding past its completion deadline on the periodic
//     virtual-time health scan (soft evidence: one strike per scan; the
//     rail turns suspect, and SuspectAfter strikes quarantine it).
//
// A quarantined rail leaves every policy's RailMask (binding, round robin,
// striping and EPC planners all honor the Dead bits), its backlog reroutes
// onto survivors, and flushed WRs retransmit after an exponential backoff
// with deterministic seeded jitter. Probe WRs — credit-exempt control
// messages posted directly on the quarantined QP, bypassing the scheduler's
// dead-rail stepping — retry on their own backoff schedule; the first probe
// that completes successfully reintegrates the rail without any operator
// intervention. A false quarantine (a stalled engine or a congested link
// tripping the deadline) is therefore safe: the very first probe succeeds
// and the rail returns to service; only routing, never payload content or
// delivery order, is affected.
package adi

import (
	"ib12x/internal/ib"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// ReliabilityConfig tunes the rail health state machine. The zero value of
// every field selects the default documented on it; the zero config as a
// whole is usable.
type ReliabilityConfig struct {
	// Seed feeds the deterministic jitter hash. Runs with equal seeds
	// replay identical backoff and probe schedules.
	Seed int64

	// Deadline is the base completion deadline added to every posted WR on
	// top of its modeled transfer estimate (default 400us). A WR still
	// outstanding past its deadline counts one strike per health scan
	// against its rail.
	Deadline sim.Time
	// DeadlineScale multiplies the WR's modeled wire-transfer time at the
	// port's current (possibly chaos-degraded) link rate into the deadline
	// (default 4), so a slow-but-healthy link is not mistaken for a dead
	// one.
	DeadlineScale float64
	// CheckInterval is the health-scan period (default 50us).
	CheckInterval sim.Time
	// SuspectAfter is the number of deadline strikes that quarantine a rail
	// (default 2). Hard evidence (a flush or ErrQPDown) quarantines
	// immediately, regardless of strikes.
	SuspectAfter int

	// RetryBase/RetryMax bound the exponential backoff before a flushed WR
	// is retransmitted (defaults 5us/80us). The seed-jittered delay
	// replaces the old immediate retransmit.
	RetryBase sim.Time
	RetryMax  sim.Time

	// ProbeBase/ProbeMax bound the exponential backoff between probe WRs on
	// a quarantined rail (defaults 25us/200us).
	ProbeBase sim.Time
	ProbeMax  sim.Time
}

// withDefaults returns a copy with every zero field resolved.
func (c ReliabilityConfig) withDefaults() *ReliabilityConfig {
	if c.Deadline == 0 {
		c.Deadline = 400 * sim.Microsecond
	}
	if c.DeadlineScale == 0 {
		c.DeadlineScale = 4
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 50 * sim.Microsecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 2
	}
	if c.RetryBase == 0 {
		c.RetryBase = 5 * sim.Microsecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = 80 * sim.Microsecond
	}
	if c.ProbeBase == 0 {
		c.ProbeBase = 25 * sim.Microsecond
	}
	if c.ProbeMax == 0 {
		c.ProbeMax = 200 * sim.Microsecond
	}
	return &c
}

// railState is a rail's position in the health state machine:
//
//	up --strike--> suspect --strikes/flush/ErrQPDown--> quarantined
//	quarantined --probe sent--> probing
//	probing --probe flushed--> quarantined (backoff grows)
//	probing --probe completes--> up (reintegrated)
type railState int

const (
	railHealthy railState = iota
	railSuspect
	railQuarantined
	railProbing
)

func (s railState) String() string {
	switch s {
	case railHealthy:
		return "up"
	case railSuspect:
		return "suspect"
	case railQuarantined:
		return "quarantined"
	case railProbing:
		return "probing"
	default:
		return "railState(?)"
	}
}

// railHealth is the per-(connection, rail) health record.
type railHealth struct {
	state   railState
	strikes int  // deadline strikes since the last healthy transition
	attempt int  // probe backoff exponent
	expired bool // scratch: a WR on this rail blew its deadline this scan
}

// probeRef remembers which rail an outstanding probe WR is testing.
type probeRef struct {
	conn *Conn
	rail int
}

// mix64 is the splitmix64 finalizer: the deterministic jitter hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay computes base<<attempt capped at max, plus deterministic
// jitter in [0, delay/2) hashed from (seed, rank, key, attempt). Identical
// inputs always yield identical delays — the replay guarantee — while
// distinct ranks and WRs decorrelate, so a mass flush does not stampede the
// surviving rails in lockstep.
func (ep *Endpoint) backoffDelay(base, max sim.Time, attempt int, key uint64) sim.Time {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	span := uint64(d / 2)
	if span == 0 {
		return d
	}
	h := mix64(uint64(ep.rel.Seed)^mix64(uint64(ep.Rank)<<32^key)) ^ mix64(uint64(attempt)+0x51ed2701)
	return d + sim.Time(h%span)
}

// wrDeadline estimates when a WR of n bytes posted now on the given rail
// should have completed: the lane's currently booked backlog (the simulated
// hardware reserves the pipeline at post time, so FreeAt is an accurate
// congestion signal), a scaled transfer estimate at the port's effective —
// possibly chaos-degraded — link rate, and the base margin.
func (ep *Endpoint) wrDeadline(conn *Conn, rail, n int) sim.Time {
	r := ep.rel
	now := ep.eng.Now()
	port := conn.rails[rail].Port
	d := now + r.Deadline + sim.Time(r.DeadlineScale*float64(sim.TransferTime(int64(n), port.EffectiveRate())))
	if free := port.TX.FreeAt(); free > now {
		d += free - now
	}
	return d
}

// ---- health scan (soft evidence) ----

// startHealthTimer arms the periodic scan. Called once per endpoint when the
// reliability layer is enabled, before the engine runs.
func (ep *Endpoint) startHealthTimer() {
	ep.eng.Post(ep.eng.Now()+ep.rel.CheckInterval, ep.healthTick)
}

// healthTick runs one scan and reschedules itself while the job is alive.
// It runs as an engine event: it must never block, and it never does — every
// path below bottoms out in PostSend or a timer post.
func (ep *Endpoint) healthTick() {
	if ep.eng.LiveProcs() == 0 {
		return // job finished; let the event queue drain
	}
	ep.healthScan()
	ep.startHealthTimer()
}

// healthScan strikes every rail holding a WR past its deadline. Map
// iteration order does not matter: the first pass only sets per-rail flags
// (idempotent), and the second pass applies transitions in deterministic
// (connection, rail) order.
func (ep *Endpoint) healthScan() {
	now := ep.eng.Now()
	for _, fl := range ep.inflight {
		if fl.deadline != 0 && now > fl.deadline {
			fl.conn.health[fl.rail].expired = true
		}
	}
	for _, conn := range ep.conns {
		if conn == nil || conn.health == nil {
			continue
		}
		for rail := range conn.health {
			h := &conn.health[rail]
			if !h.expired {
				continue
			}
			h.expired = false
			ep.strike(conn, rail)
		}
	}
}

// strike books one deadline strike against a rail, moving it up → suspect
// and suspect → quarantined at the configured threshold.
func (ep *Endpoint) strike(conn *Conn, rail int) {
	h := &conn.health[rail]
	if h.state != railHealthy && h.state != railSuspect {
		return // already quarantined or probing
	}
	h.strikes++
	if h.state == railHealthy {
		h.state = railSuspect
		ep.stats.RailSuspects++
		ep.trace(trace.KindRailSuspect, conn.peer, 0, rail)
	}
	if h.strikes >= ep.rel.SuspectAfter {
		ep.quarantine(conn, rail)
	}
}

// ---- quarantine ----

// quarantine removes a rail from the connection's policy-visible mask, so
// every planner (binding, round robin, striping, EPC) routes around it,
// reroutes the dead QP's deferred backlog onto survivors, and arms the probe
// schedule that will eventually reintegrate it. Idempotent per episode.
func (ep *Endpoint) quarantine(conn *Conn, rail int) {
	h := &conn.health[rail]
	if h.state == railQuarantined || h.state == railProbing {
		return
	}
	h.state = railQuarantined
	h.attempt = 0
	ep.stats.RailQuarantines++
	ep.trace(trace.KindRailQuarantine, conn.peer, 0, rail)
	conn.sched.Dead.MarkDown(rail)
	conn.ringDown()
	qp := conn.rails[rail]
	if q := ep.backlog[qp]; len(q) > 0 {
		delete(ep.backlog, qp)
		for _, d := range q {
			ep.post(conn, rail, d.wr, d.onPosted)
		}
	}
	ep.scheduleProbe(conn, rail)
}

// ---- probing and reintegration ----

// scheduleProbe books the next probe attempt on the rail's backoff schedule.
func (ep *Endpoint) scheduleProbe(conn *Conn, rail int) {
	key := uint64(conn.peer)<<16 | uint64(rail)
	delay := ep.backoffDelay(ep.rel.ProbeBase, ep.rel.ProbeMax, conn.health[rail].attempt, key)
	ep.eng.Post(ep.eng.Now()+delay, func() { ep.probeTick(conn, rail) })
}

// probeTick fires a probe at a quarantined rail. Probes bypass ep.post on
// purpose: the scheduler would step over the Dead rail, and the whole point
// is to touch exactly that QP. They are credit-exempt (the receiver's SRQ
// prepost slack covers them, as it does explicit credit returns) and carry
// no payload, so a flushed probe cannot leak anything.
func (ep *Endpoint) probeTick(conn *Conn, rail int) {
	if ep.eng.LiveProcs() == 0 {
		return // job finished; stop probing so the run can drain
	}
	h := &conn.health[rail]
	if h.state != railQuarantined {
		return // reintegrated (or probing) since this timer was set
	}
	qp := conn.rails[rail]
	env := ep.pool.get()
	env.kind, env.src = envProbe, ep.Rank
	wrid := ep.nextWRID(nil)
	err := qp.PostSend(ib.SendWR{
		WRID: wrid, Op: ib.OpSend,
		N: ep.m.CtrlMsgBytes, Signaled: true, Ctx: env,
	})
	if err != nil {
		// ErrQPDown: the rail is still hard-down. ErrSQFull: drowned in
		// flushing descriptors. Either way the attempt failed without
		// flying; back off and retry.
		ep.pool.put(env)
		h.attempt++
		ep.scheduleProbe(conn, rail)
		return
	}
	h.state = railProbing
	ep.probes[wrid] = probeRef{conn: conn, rail: rail}
	ep.stats.RailProbes++
	ep.trace(trace.KindRailProbe, conn.peer, ep.m.CtrlMsgBytes, rail)
}

// probeCompleted consumes a probe CQE: success reintegrates the rail,
// a flush sends it back to quarantine with a longer backoff.
func (ep *Endpoint) probeCompleted(conn *Conn, rail int, ok bool) {
	h := &conn.health[rail]
	if h.state != railProbing {
		return
	}
	if !ok {
		h.state = railQuarantined
		h.attempt++
		ep.scheduleProbe(conn, rail)
		return
	}
	ep.reintegrate(conn, rail)
}

// reintegrate returns a recovered rail to every planner's mask and replays
// work requests that parked while all rails of the connection were dead.
func (ep *Endpoint) reintegrate(conn *Conn, rail int) {
	h := &conn.health[rail]
	h.state = railHealthy
	h.strikes = 0
	h.attempt = 0
	ep.stats.RailReintegrations++
	ep.trace(trace.KindRailReintegrate, conn.peer, 0, rail)
	conn.sched.Dead.MarkUp(rail)
	conn.ringArm()
	if len(conn.railWait) > 0 {
		q := conn.railWait
		conn.railWait = nil
		for _, d := range q {
			ep.post(conn, rail, d.wr, d.onPosted)
		}
	}
	ep.wake()
}

// railFailed books hard evidence against a rail (a flushed WR or a rejected
// post) and quarantines it immediately.
func (ep *Endpoint) railFailed(conn *Conn, rail int) {
	if conn.health == nil || rail < 0 || rail >= len(conn.health) {
		return
	}
	ep.quarantine(conn, rail)
}

// repostAfterBackoff re-posts a flushed WR once its backoff delay elapsed,
// carrying the attempt count into the new in-flight record so a second
// flush backs off further. Runs as an engine event; ep.post never blocks
// (backpressure defers, all-rails-dead parks).
func (ep *Endpoint) repostAfterBackoff(conn *Conn, rail int, wr ib.SendWR, attempt int) {
	ep.post(conn, rail, wr, nil)
	if fl, ok := ep.inflight[wr.WRID]; ok {
		fl.attempt = attempt
	}
}
