package adi

import (
	"ib12x/internal/buf"
	"ib12x/internal/core"
	"ib12x/internal/ib"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// One-sided (RMA) support, following the multi-rail one-sided design of the
// authors' companion work (Vishnu et al., HiPC 2005): direct RDMA for
// inter-node Put/Get — striped across rails by the scheduling policies —
// and two-sided emulation for intra-node targets and for Accumulate (which
// needs the target CPU to apply the operation), exactly as MVAPICH did.

// AccOp is an accumulate operator applied at the target.
type AccOp int

// Accumulate operators over little-endian int64 elements.
const (
	AccReplace AccOp = iota
	AccSum
	AccMax
	AccMin
)

// winInfo is the endpoint-side state of an exposed memory window.
type winInfo struct {
	buf       []byte
	n         int
	mr        *ib.MR
	processed int64 // message-based ops applied at this target
	w         sim.Waiter
}

// RegisterWindow exposes buf (may be nil for synthetic windows) of n bytes
// as RMA window id and returns the rkey peers use for RDMA access. Window
// ids must be allocated symmetrically across ranks (the mpi layer's
// collective WinCreate guarantees this).
func (ep *Endpoint) RegisterWindow(id int, buf []byte, n int) uint32 {
	if ep.windows == nil {
		ep.windows = make(map[int]*winInfo)
	}
	if _, dup := ep.windows[id]; dup {
		panic("adi: window id already registered")
	}
	// Window creation registers the exposed region up front (collective
	// context, no single peer).
	ep.chargeRegistration(-1, buf, n)
	mr := ep.realm.RegisterMR(buf, n)
	ep.windows[id] = &winInfo{buf: buf, n: n, mr: mr}
	return mr.RKey
}

// UnregisterWindow tears the window down.
func (ep *Endpoint) UnregisterWindow(id int) {
	win, ok := ep.windows[id]
	if !ok {
		return
	}
	ep.realm.DeregisterMR(win.mr)
	delete(ep.windows, id)
}

// WindowProcessed reports how many message-based RMA ops have been applied
// to the local window so far.
func (ep *Endpoint) WindowProcessed(id int) int64 { return ep.windows[id].processed }

// WaitWindowOps blocks until at least `total` message-based ops have been
// applied to the local window (cumulative across epochs).
func (ep *Endpoint) WaitWindowOps(id int, total int64) {
	win := ep.windows[id]
	for win.processed < total {
		if !ep.progressOnce() {
			ep.idle.Wait(ep.proc, "adi: waiting for window ops")
		}
	}
}

// PutBulk writes n bytes into the target's window at byte offset off.
// Inter-node targets take striped RDMA writes per the policy (class is the
// communication-marker input); intra-node targets and self use copy/message
// paths. The returned request completes when remote placement is
// guaranteed. `counted` reports whether the op must be counted toward the
// fence's message-based expectation at the target.
func (ep *Endpoint) PutBulk(peer, winID int, rkey uint32, off int, data []byte, n int, class core.Class) (req *Request, counted bool) {
	req = ep.newRequest()
	req.send, req.peer, req.n = true, peer, n
	if peer == ep.Rank {
		win := ep.windows[winID]
		if win.buf != nil && data != nil {
			copy(win.buf[off:off+n], data[:n])
		}
		req.done = true
		return req, false
	}
	conn := ep.conns[peer]
	if conn.sh != nil {
		env := ep.pool.get()
		env.kind, env.src, env.size, env.winID, env.off = envPut, ep.Rank, n, winID, off
		ep.sendRMAMsg(conn, env, data, n)
		req.done = true
		return req, true
	}
	// RDMA path: plan stripes over retained sub-views of the wrapped source
	// buffer (zero-copy, as in rendezvous); the request completes — and the
	// base reference drops — when all writes ack (ack implies remote
	// placement under RC).
	if ep.integrity == IntegrityVerify {
		ep.charge(ep.checksumTime(n))
	}
	if data != nil {
		req.owner = ep.bufs.WrapTagged(data[:n], "rma-owner")
	}
	ep.chargeRegistration(peer, data, n)
	ep.refreshRailRates(conn)
	plan := ep.policy.PlanBulk(class, n, len(conn.rails), &conn.sched)
	req.writesLeft = len(plan)
	for _, s := range plan {
		var chunk []byte
		var sv buf.View
		var crc uint32
		if !req.owner.Zero() {
			sv = req.owner.Slice(s.Off, s.N).Retain()
			chunk = sv.Bytes()
			if ep.integrity != IntegrityOff {
				crc = buf.Sum(chunk)
			}
		}
		ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
		wrid := ep.nextWRID(func() {
			sv.Release()
			req.writesLeft--
			if req.writesLeft == 0 {
				req.owner.Release()
				req.owner = buf.View{}
				req.done = true
			}
		})
		ep.post(conn, s.Rail, ib.SendWR{
			WRID: wrid, Op: ib.OpRDMAWrite,
			Data: chunk, N: s.N, RKey: rkey, RemoteOff: off + s.Off,
			Signaled: true, Payload: true, CRC: crc,
		}, nil)
		ep.stats.StripesSent++
		ep.trace(trace.KindRMA, peer, s.N, s.Rail)
	}
	return req, false
}

// GetBulk reads n bytes from the target's window at byte offset off into
// buf. Inter-node targets use striped RDMA reads; intra-node targets a
// request/response message pair.
func (ep *Endpoint) GetBulk(peer, winID int, rkey uint32, off int, buf []byte, n int, class core.Class) *Request {
	req := ep.newRequest()
	req.peer, req.n = peer, n
	if peer == ep.Rank {
		win := ep.windows[winID]
		if win.buf != nil && buf != nil {
			copy(buf[:n], win.buf[off:off+n])
		}
		req.done = true
		return req
	}
	conn := ep.conns[peer]
	if conn.sh != nil {
		req.data = buf
		env := ep.pool.get()
		env.kind, env.src, env.size, env.winID, env.off, env.rreq = envGetReq, ep.Rank, n, winID, off, req
		ep.sendRMAMsg(conn, env, nil, 0)
		return req
	}
	ep.chargeRegistration(peer, buf, n)
	ep.refreshRailRates(conn)
	plan := ep.policy.PlanBulk(class, n, len(conn.rails), &conn.sched)
	req.writesLeft = len(plan)
	for _, s := range plan {
		var chunk []byte
		if buf != nil {
			chunk = buf[s.Off : s.Off+s.N]
		}
		ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
		wrid := ep.nextWRID(func() {
			req.writesLeft--
			if req.writesLeft == 0 {
				req.done = true
			}
		})
		ep.post(conn, s.Rail, ib.SendWR{
			WRID: wrid, Op: ib.OpRDMARead,
			Data: chunk, N: s.N, RKey: rkey, RemoteOff: off + s.Off,
			Signaled: true, Payload: true,
		}, nil)
		ep.stats.StripesRead++
		ep.trace(trace.KindRMA, peer, s.N, s.Rail)
	}
	return req
}

// AccumulateSend applies op element-wise (int64 lanes) at the target's
// window. Always message-based: the target CPU performs the combine during
// its progress. Returns whether the op counts toward fence expectations.
func (ep *Endpoint) AccumulateSend(peer, winID int, off int, data []byte, n int, op AccOp) bool {
	if peer == ep.Rank {
		applyAccumulate(ep.windows[winID], off, data, n, op)
		return false // self ops apply synchronously; not fence-counted
	}
	conn := ep.conns[peer]
	env := ep.pool.get()
	env.kind, env.src, env.size, env.winID, env.off, env.accOp = envAccum, ep.Rank, n, winID, off, op
	ep.sendRMAMsg(conn, env, data, n)
	return true
}

// FetchAtomic performs an 8-byte remote read-modify-write at the target's
// window offset: fetch-and-add (cas=false; arg1 = addend) or
// compare-and-swap (cas=true; arg1 = comparand, arg2 = replacement). The
// returned request completes with the pre-operation value. Inter-node
// targets use the HCA's atomic engine; intra-node and self use the
// message path, which the event serialization makes equally atomic.
func (ep *Endpoint) FetchAtomic(peer, winID int, rkey uint32, off int, cas bool, arg1, arg2 uint64) *Request {
	req := ep.newRequest()
	req.peer, req.n = peer, 8
	if peer == ep.Rank {
		req.atomicOld = applyAtomic(ep.windows[winID], off, cas, arg1, arg2)
		req.done = true
		return req
	}
	conn := ep.conns[peer]
	if conn.sh != nil {
		env := ep.pool.get()
		env.kind, env.src, env.size, env.winID, env.off = envAtomicReq, ep.Rank, 8, winID, off
		env.atomicCAS, env.arg1, env.arg2, env.rreq = cas, arg1, arg2, req
		ep.sendRMAMsg(conn, env, nil, 0)
		return req
	}
	op := ib.OpAtomicFAdd
	if cas {
		op = ib.OpAtomicCAS
	}
	ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
	wrid := ep.nextWRIDAtomic(req)
	ep.post(conn, conn.ctrlRail(), ib.SendWR{
		WRID: wrid, Op: op, N: 8,
		RKey: rkey, RemoteOff: off,
		CompareAdd: arg1, Swap: arg2,
		Signaled: true,
	}, nil)
	return req
}

// nextWRIDAtomic registers a completion callback that captures the atomic
// result from the CQE (callbacks registered with nextWRID do not see it).
func (ep *Endpoint) nextWRIDAtomic(req *Request) uint64 {
	ep.wrID++
	ep.onAtomic[ep.wrID] = req
	return ep.wrID
}

// applyAtomic executes the read-modify-write on a local window.
func applyAtomic(win *winInfo, off int, cas bool, arg1, arg2 uint64) uint64 {
	if win.buf == nil {
		return 0
	}
	old := leU64(win.buf[off:])
	next := old + arg1
	if cas {
		next = old
		if old == arg1 {
			next = arg2
		}
	}
	putLeU64(win.buf[off:], next)
	return old
}

// sendRMAMsg ships a message-based RMA envelope (put/accumulate/get
// request) with a captured payload view over the conn's transport. Over
// shared memory the view rides the channel (attached to the envelope at the
// receiver); over rails it rides the envelope directly. Either way the
// receiver's pool.put releases the one reference.
func (ep *Endpoint) sendRMAMsg(conn *Conn, env *envelope, data []byte, n int) {
	pay := ep.capture(data, n, "rma-msg")
	if data != nil {
		ep.charge(sim.TransferTime(int64(n), ep.m.EagerCopyRate))
	}
	env.seq = conn.sendSeq
	conn.sendSeq++
	if conn.sh != nil {
		env.shm = true
		senderDone := conn.sh.Send(pay, n, env)
		if d := senderDone - ep.eng.Now(); d > 0 {
			ep.proc.Sleep(d)
		}
		ep.stats.ShmemSent++
		return
	}
	env.pay = pay
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	rail := ep.policy.PickEager(core.NonBlocking, n, len(conn.rails), &conn.sched)
	ep.sendEnvelope(conn, rail, env, n+ep.m.MPIHeaderBytes, nil)
	ep.stats.EagerSent++
}

// handleRMA processes an inbound sequenced RMA envelope at the target.
func (ep *Endpoint) handleRMA(env *envelope) {
	win, ok := ep.windows[env.winID]
	if !ok {
		panic("adi: RMA op for unknown window")
	}
	switch env.kind {
	case envPut:
		if win.buf != nil && !env.pay.Zero() {
			copy(win.buf[env.off:env.off+env.size], env.pay.Bytes()[:env.size])
		}
		ep.charge(sim.TransferTime(int64(env.size), ep.m.EagerCopyRate))
		win.processed++
		win.w.WakeAll()
	case envAccum:
		applyAccumulate(win, env.off, env.pay.Bytes(), env.size, env.accOp)
		ep.charge(sim.TransferTime(int64(env.size), ep.m.EagerCopyRate))
		win.processed++
		win.w.WakeAll()
	case envGetReq:
		// Reply with the requested bytes; the requester's request pointer
		// rides along.
		var payload []byte
		if win.buf != nil {
			payload = win.buf[env.off : env.off+env.size]
		}
		conn := ep.conns[env.src]
		resp := ep.pool.get()
		resp.kind, resp.src, resp.size, resp.rreq = envGetResp, ep.Rank, env.size, env.rreq
		ep.sendRMAMsg(conn, resp, payload, env.size)
	case envAtomicReq:
		old := applyAtomic(win, env.off, env.atomicCAS, env.arg1, env.arg2)
		conn := ep.conns[env.src]
		resp := ep.pool.get()
		resp.kind, resp.src, resp.size, resp.rreq, resp.old = envAtomicResp, ep.Rank, 8, env.rreq, old
		ep.sendRMAMsg(conn, resp, nil, 0)
	}
}

// handleAtomicResp completes a message-based atomic at the requester.
func (ep *Endpoint) handleAtomicResp(env *envelope) {
	req := env.rreq
	req.atomicOld = env.old
	req.done = true
}

// handleGetResp completes a message-based Get at the requester.
func (ep *Endpoint) handleGetResp(env *envelope) {
	req := env.rreq
	if req.data != nil && !env.pay.Zero() {
		copy(req.data[:env.size], env.pay.Bytes()[:env.size])
	}
	ep.charge(sim.TransferTime(int64(env.size), ep.m.EagerCopyRate))
	req.done = true
}

// applyAccumulate combines data into the window at byte offset off over
// little-endian int64 lanes (AccReplace copies bytes).
func applyAccumulate(win *winInfo, off int, data []byte, n int, op AccOp) {
	if win.buf == nil || data == nil {
		return
	}
	dst := win.buf[off : off+n]
	if op == AccReplace {
		copy(dst, data[:n])
		return
	}
	for i := 0; i+8 <= n; i += 8 {
		a := int64(leU64(dst[i:]))
		b := int64(leU64(data[i:]))
		var r int64
		switch op {
		case AccSum:
			r = a + b
		case AccMax:
			r = a
			if b > a {
				r = b
			}
		case AccMin:
			r = a
			if b < a {
				r = b
			}
		}
		putLeU64(dst[i:], uint64(r))
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
