package adi

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/topo"
)

// Boundary behaviour around the eager/rendezvous threshold and degenerate
// sizes.

func TestThresholdBoundarySizes(t *testing.T) {
	thr := model.Default().RendezvousThreshold
	for _, n := range []int{0, 1, thr - 1, thr, thr + 1} {
		n := n
		payload := fill(max(n, 1), 3)[:n]
		got := make([]byte, max(n, 1))[:n]
		w := run(t, spec2x1(4), Options{Policy: core.EPC},
			func(ep *Endpoint) {
				ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, payload, n))
			},
			func(ep *Endpoint) {
				st := ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, got, n))
				if st.Count != n {
					t.Errorf("n=%d: count %d", n, st.Count)
				}
			})
		if !bytes.Equal(got, payload) {
			t.Errorf("n=%d: payload mismatch", n)
		}
		s := w.Endpoints[0].Stats()
		wantEager, wantRndv := int64(1), int64(0)
		if n >= thr {
			wantEager, wantRndv = 0, 1
		}
		if s.EagerSent != wantEager || s.RendezvousSent != wantRndv {
			t.Errorf("n=%d: eager=%d rndv=%d (threshold %d)", n, s.EagerSent, s.RendezvousSent, thr)
		}
	}
}

func TestZeroByteMessageCompletes(t *testing.T) {
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostSend(1, 7, CtxPt2Pt, core.Blocking, nil, 0))
			if st.Count != 0 {
				t.Errorf("send status %+v", st)
			}
		},
		func(ep *Endpoint) {
			st := ep.Wait(ep.PostRecv(0, 7, CtxPt2Pt, nil, 0))
			if st.Count != 0 || st.Source != 0 || st.Tag != 7 {
				t.Errorf("recv status %+v", st)
			}
		})
}

func TestPostSendValidationPanics(t *testing.T) {
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			mustPanic(t, "bad peer", func() { ep.PostSend(99, 0, CtxPt2Pt, core.Blocking, nil, 1) })
			mustPanic(t, "short buffer", func() { ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, []byte{1}, 2) })
			mustPanic(t, "bad class", func() { ep.PostSend(1, 0, CtxPt2Pt, core.Class(9), nil, 1) })
			mustPanic(t, "short recv buffer", func() { ep.PostRecv(1, 0, CtxPt2Pt, []byte{1}, 2) })
		},
		func(ep *Endpoint) {})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- credit-based flow control ----

func TestCreditStallAndRecovery(t *testing.T) {
	// 300 one-way eager messages against a 64-credit pool: the sender must
	// stall and recover via explicit credit returns (no reverse traffic).
	const count = 300
	w := run(t, spec2x1(2), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			var reqs []*Request
			for i := 0; i < count; i++ {
				reqs = append(reqs, ep.PostSend(1, i, CtxPt2Pt, core.NonBlocking, nil, 512))
			}
			ep.WaitAll(reqs)
		},
		func(ep *Endpoint) {
			for i := 0; i < count; i++ {
				st := ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, nil, 512))
				if st.Tag != i {
					t.Fatalf("message %d out of order (tag %d)", i, st.Tag)
				}
			}
		})
	s := w.Endpoints[0].Stats()
	if s.CreditStalls == 0 {
		t.Error("300 messages against 64 credits: expected stalls")
	}
	if u := w.Endpoints[1].Stats().CreditUpdates; u == 0 {
		t.Error("receiver never returned credits explicitly")
	}
}

func TestCreditsPiggybackOnReverseTraffic(t *testing.T) {
	// A balanced ping-pong returns credits on the reverse messages: no (or
	// almost no) explicit updates needed.
	w := run(t, spec2x1(2), Options{Policy: core.EPC},
		func(ep *Endpoint) {
			for i := 0; i < 200; i++ {
				ep.Wait(ep.PostSend(1, 0, CtxPt2Pt, core.Blocking, nil, 256))
				ep.Wait(ep.PostRecv(1, 0, CtxPt2Pt, nil, 256))
			}
		},
		func(ep *Endpoint) {
			for i := 0; i < 200; i++ {
				ep.Wait(ep.PostRecv(0, 0, CtxPt2Pt, nil, 256))
				ep.Wait(ep.PostSend(0, 0, CtxPt2Pt, core.Blocking, nil, 256))
			}
		})
	for r := 0; r < 2; r++ {
		s := w.Endpoints[r].Stats()
		if s.CreditStalls != 0 {
			t.Errorf("rank %d stalled %d times on balanced traffic", r, s.CreditStalls)
		}
	}
}

func TestCreditsDoNotApplyToShmem(t *testing.T) {
	spec := topo.Spec{Nodes: 1, ProcsPerNode: 2, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1}
	w := run(t, spec, Options{Policy: core.Original},
		func(ep *Endpoint) {
			var reqs []*Request
			for i := 0; i < 300; i++ {
				reqs = append(reqs, ep.PostSend(1, i, CtxPt2Pt, core.NonBlocking, nil, 128))
			}
			ep.WaitAll(reqs)
		},
		func(ep *Endpoint) {
			for i := 0; i < 300; i++ {
				ep.Wait(ep.PostRecv(0, i, CtxPt2Pt, nil, 128))
			}
		})
	if s := w.Endpoints[0].Stats(); s.CreditStalls != 0 {
		t.Errorf("shared-memory traffic stalled on credits: %d", s.CreditStalls)
	}
}
