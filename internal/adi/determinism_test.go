package adi_test

// Timeline-hash determinism regression: a fixed mixed workload is run under
// every scheduling policy with the protocol-event recorder attached, and the
// full virtual timeline (every trace event, field by field, plus the final
// virtual clock) is hashed into one digest per policy.
//
// The golden digests below were recorded from the pre-optimization
// implementation (linear-scan matching, container/heap events, per-message
// allocations). Any hot-path change — event pooling, the specialized heap,
// indexed tag matching, stripe-plan caching, envelope recycling — must
// reproduce these timelines bit for bit: wall-clock optimizations are not
// allowed to move a single virtual-time event.

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"ib12x/internal/chaos"
	"ib12x/internal/core"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// goldenTimelines maps policy -> FNV-1a digest of the detWorkload timeline,
// recorded from the seed implementation. Regenerate (only when the *model*
// legitimately changes, never for a performance PR) by running this test
// with -v and copying the logged values.
var goldenTimelines = map[core.Kind]uint64{
	core.Binding:          0x91b861d35475b032,
	core.RoundRobin:       0xa6625761e201b944,
	core.EvenStriping:     0xaa4ac329f5c3d4c0,
	core.WeightedStriping: 0xaa4ac329f5c3d4c0, // equal weights == even stripes
	core.EPC:              0x5d35a42fab5d6eb4,
	core.Adaptive:         0x600df06547fdee98,
}

// detWorkload mixes every protocol path whose virtual timing the paper's
// figures depend on: eager and rendezvous transfers, a non-blocking window,
// wildcard receives racing specific ones, unexpected-queue traffic, the
// intra-node shared-memory channel, and a collective.
func detWorkload(c *mpi.Comm) {
	const (
		eagerN = 1024
		rndvN  = 256 << 10
		winN   = 64 << 10
		window = 8
	)
	switch c.Rank() {
	case 0:
		c.SendN(2, 1, nil, eagerN)
		c.RecvN(2, 1, nil, eagerN)
		c.SendN(3, 2, nil, rndvN)  // striped rendezvous
		c.SendN(1, 4, nil, 32<<10) // shmem intra-node
		c.Compute(5 * sim.Microsecond)
		c.SendN(3, 7, nil, 2048)  // feeds rank 3's wildcard mix
		c.SendN(3, 11, nil, 1024) // consumed by rank 3's trailing AnyTag recv
	case 1:
		reqs := make([]*mpi.Request, window)
		for i := range reqs {
			reqs[i] = c.IsendN(2, 3, nil, winN)
		}
		c.Waitall(reqs)
		c.RecvN(0, 4, nil, 32<<10)
		c.SendN(3, 8, nil, 4096) // arrives unexpected at rank 3
	case 2:
		c.RecvN(0, 1, nil, eagerN)
		c.SendN(0, 1, nil, eagerN)
		reqs := make([]*mpi.Request, window)
		for i := range reqs {
			reqs[i] = c.IrecvN(1, 3, nil, winN)
		}
		c.Waitall(reqs)
		c.SendN(3, 9, nil, 512)
	case 3:
		c.RecvN(0, 2, nil, rndvN)
		// Wildcard receives interleaved with specific ones; the senders
		// are staggered so some messages land unexpected.
		r1 := c.IrecvN(mpi.AnySource, 7, nil, 2048)
		r2 := c.IrecvN(mpi.AnySource, 8, nil, 8192)
		r3 := c.IrecvN(2, 9, nil, 512)
		c.Wait(r1)
		c.Wait(r2)
		c.Wait(r3)
		// The tag-11 eager arrived unexpected while the above were pending;
		// the trailing full wildcard must pull it from the unexpected queue.
		c.Wait(c.IrecvN(mpi.AnySource, mpi.AnyTag, nil, 1024))
	}
	c.Alltoall(nil, 8192, nil)
	c.Barrier()
}

// runTimeline executes detWorkload under one policy and digests the result.
func runTimeline(t *testing.T, kind core.Kind) uint64 {
	return runTimelinePlan(t, kind, nil)
}

// runTimelinePlan is runTimeline with an optional chaos fault plan armed.
func runTimelinePlan(t *testing.T, kind core.Kind, plan *chaos.Plan) uint64 {
	t.Helper()
	rec := trace.NewRecorder(1 << 20)
	var final sim.Time
	cfg := mpi.Config{
		Nodes: 2, ProcsPerNode: 2,
		HCAs: 1, Ports: 1, QPsPerPort: 4,
		Policy: kind, Trace: rec,
	}
	if plan != nil {
		cfg.Chaos = plan
		cfg.Deadline = sim.Second
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		detWorkload(c)
		if c.Rank() == 0 {
			final = c.Time()
		}
	})
	if err != nil {
		t.Fatalf("policy %v: %v", kind, err)
	}
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, e := range rec.Events() {
		wr(int64(e.T))
		wr(int64(e.Kind))
		wr(int64(e.Rank))
		wr(int64(e.Peer))
		wr(int64(e.Bytes))
		wr(int64(e.Rail))
	}
	wr(int64(final))
	return h.Sum64()
}

func TestTimelineDigestsAcrossPolicies(t *testing.T) {
	kinds := []core.Kind{
		core.Binding, core.RoundRobin, core.EvenStriping,
		core.WeightedStriping, core.EPC, core.Adaptive,
	}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			got := runTimeline(t, k)
			t.Logf("policy %-18v digest 0x%016x", k, got)
			want, ok := goldenTimelines[k]
			if !ok {
				t.Fatalf("no golden digest for policy %v", k)
			}
			if want == 0 {
				t.Skip("golden digest not recorded yet (run with -v and fill goldenTimelines)")
			}
			if got != want {
				t.Errorf("policy %v: timeline digest 0x%016x, want 0x%016x — "+
					"a wall-clock optimization moved virtual-time events", k, got, want)
			}
		})
	}
}

// TestTimelineDigestStable guards the digest itself: two identical runs must
// hash identically (no map-iteration or goroutine-scheduling leakage).
func TestTimelineDigestStable(t *testing.T) {
	a := runTimeline(t, core.EPC)
	b := runTimeline(t, core.EPC)
	if a != b {
		t.Fatalf("same configuration hashed differently: 0x%x vs 0x%x", a, b)
	}
}

// TestFaultyTimelineReplayDeterminism extends the determinism property to
// chaos runs: the same fault plan replayed against the same workload and
// policy must reproduce the entire perturbed timeline bit for bit — fault
// injection keys off virtual time only, never host state.
func TestFaultyTimelineReplayDeterminism(t *testing.T) {
	plans := []*chaos.Plan{
		chaos.RailFlap(40*sim.Microsecond, 120*sim.Microsecond, 1, 2),
		chaos.Merge("mixed",
			chaos.LegacyEveryN(113),
			chaos.StalledEngine(30*sim.Microsecond, 50*sim.Microsecond, 0, 0),
		),
		chaos.Generate(17, 300*sim.Microsecond, 2, 4, 1),
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			clean := runTimeline(t, core.EvenStriping)
			a := runTimelinePlan(t, core.EvenStriping, plan)
			b := runTimelinePlan(t, core.EvenStriping, plan)
			if a != b {
				t.Fatalf("faulty replay diverged: 0x%x vs 0x%x", a, b)
			}
			if a == clean {
				t.Errorf("faulty timeline identical to fault-free one; plan %s did not bite", plan.Name)
			}
		})
	}
}
