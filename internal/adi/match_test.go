package adi

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
)

// Matching-order tests for the indexed tag-matching engine: MPI requires
// that an arrival match the EARLIEST posted compatible receive (wildcards
// included), and that a receive posted late take the EARLIEST compatible
// unexpected arrival. The index splits posted receives into per-source
// buckets plus a wildcard sideline, so these tests pin the cross-structure
// arbitration that a single linear queue got for free.

// TestWildcardPostOrderInterleaved posts specific and wildcard receives
// interleaved, then delivers messages that each have several candidates.
// Every arrival must land on the earliest-posted compatible receive.
func TestWildcardPostOrderInterleaved(t *testing.T) {
	// Post order:        r0(src0,tag1) r1(*,*) r2(src0,tag2) r3(*,tag1) r4(*,*)
	// Arrival order:     tag2  tag1  tag1  tag2  tag9
	// Expected matching: tag2→r1 (wildcard posted before r2)
	//                    tag1→r0 (specific posted before r3/r4)
	//                    tag1→r3, tag2→r2, tag9→r4
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = make([]byte, 1)
	}
	var reqs [5]*Request
	run(t, spec2x1(1), Options{Policy: core.Original},
		func(ep *Endpoint) {
			ep.Compute(100 * sim.Microsecond) // let all receives post first
			for i, tag := range []int{2, 1, 1, 2, 9} {
				ep.PostSend(1, tag, CtxPt2Pt, core.NonBlocking, []byte{byte(i)}, 1)
			}
			ep.Progress()
		},
		func(ep *Endpoint) {
			reqs[0] = ep.PostRecv(0, 1, CtxPt2Pt, bufs[0], 1)
			reqs[1] = ep.PostRecv(AnySource, AnyTag, CtxPt2Pt, bufs[1], 1)
			reqs[2] = ep.PostRecv(0, 2, CtxPt2Pt, bufs[2], 1)
			reqs[3] = ep.PostRecv(AnySource, 1, CtxPt2Pt, bufs[3], 1)
			reqs[4] = ep.PostRecv(AnySource, AnyTag, CtxPt2Pt, bufs[4], 1)
			ep.WaitAll(reqs[:])
		})
	want := []byte{1, 0, 3, 2, 4} // message index each receive should get
	for i, w := range want {
		if bufs[i][0] != w {
			t.Errorf("receive %d got message %d, want %d", i, bufs[i][0], w)
		}
	}
	wantTag := []int{1, 2, 2, 1, 9}
	for i, req := range reqs {
		if st := req.Status(); st.Tag != wantTag[i] {
			t.Errorf("receive %d matched tag %d, want %d", i, st.Tag, wantTag[i])
		}
	}
}

// TestWildcardTakesEarliestUnexpected parks arrivals from two sources in the
// unexpected queue, then posts receives late: a specific receive must pull
// its source's message even when another source arrived earlier, and a
// wildcard must always pull the earliest arrival still parked.
func TestWildcardTakesEarliestUnexpected(t *testing.T) {
	spec := topo.Spec{Nodes: 3, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1}
	bufs := make([][]byte, 3)
	for i := range bufs {
		bufs[i] = make([]byte, 1)
	}
	var status [3]Status
	run(t, spec, Options{Policy: core.Original},
		func(ep *Endpoint) {
			// Receiver: let everything arrive unexpected first.
			ep.Compute(2 * sim.Millisecond)
			ep.Progress()
			// Specific source beats an earlier wildcard-eligible arrival.
			status[0] = ep.Wait(ep.PostRecv(2, 5, CtxPt2Pt, bufs[0], 1))
			// Wildcards then drain in arrival order.
			status[1] = ep.Wait(ep.PostRecv(AnySource, AnyTag, CtxPt2Pt, bufs[1], 1))
			status[2] = ep.Wait(ep.PostRecv(AnySource, AnyTag, CtxPt2Pt, bufs[2], 1))
		},
		func(ep *Endpoint) {
			ep.Compute(100 * sim.Microsecond)
			ep.PostSend(0, 5, CtxPt2Pt, core.NonBlocking, []byte{10}, 1) // arrival #1
			ep.Compute(400 * sim.Microsecond)
			ep.PostSend(0, 6, CtxPt2Pt, core.NonBlocking, []byte{11}, 1) // arrival #3
			ep.Progress()
		},
		func(ep *Endpoint) {
			ep.Compute(300 * sim.Microsecond)
			ep.PostSend(0, 5, CtxPt2Pt, core.NonBlocking, []byte{20}, 1) // arrival #2
			ep.Progress()
		})
	if status[0].Source != 2 || bufs[0][0] != 20 {
		t.Errorf("specific recv matched src %d payload %d, want src 2 payload 20", status[0].Source, bufs[0][0])
	}
	if status[1].Source != 1 || bufs[1][0] != 10 {
		t.Errorf("first wildcard matched src %d payload %d, want the earliest arrival (src 1, payload 10)", status[1].Source, bufs[1][0])
	}
	if status[2].Source != 1 || bufs[2][0] != 11 {
		t.Errorf("second wildcard matched src %d payload %d, want src 1 payload 11", status[2].Source, bufs[2][0])
	}
}

// TestWildcardRendezvousPostOrder repeats the post-order arbitration with a
// rendezvous-sized message so the RTS path goes through the same index.
func TestWildcardRendezvousPostOrder(t *testing.T) {
	const n = 128 * 1024
	payload := fill(n, 4)
	wild := make([]byte, n)
	specific := make([]byte, n)
	run(t, spec2x1(2), Options{Policy: core.EvenStriping},
		func(ep *Endpoint) {
			ep.Compute(100 * sim.Microsecond)
			ep.Wait(ep.PostSend(1, 7, CtxPt2Pt, core.Blocking, payload, n))
		},
		func(ep *Endpoint) {
			// The wildcard is posted first, so the RTS must match it, not
			// the younger specific receive.
			wreq := ep.PostRecv(AnySource, AnyTag, CtxPt2Pt, wild, n)
			sreq := ep.PostRecv(0, 7, CtxPt2Pt, specific, n)
			st := ep.Wait(wreq)
			if st.Count != n || st.Source != 0 || st.Tag != 7 {
				t.Errorf("wildcard rendezvous status = %+v", st)
			}
			if sreq.Done() {
				t.Error("specific receive stole a message owed to the earlier wildcard")
			}
		})
	if wild[0] != payload[0] || wild[n-1] != payload[n-1] {
		t.Error("rendezvous payload corrupted on the wildcard path")
	}
}
