package adi

import (
	"ib12x/internal/core"
	"ib12x/internal/ib"
	"ib12x/internal/model"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// The RDMA-write eager fast path (Options.EagerProto = EagerRDMAWrite),
// after Liu et al.'s MPICH2-over-InfiniBand design: each direction of an
// inter-node connection negotiates a persistent ring of fixed-size receive
// slots at connect time. The sender RDMA-writes an eager message (payload
// plus wire header) into the next slot and rings the immediate-data
// doorbell; the receiver's polling set discovers the arrival at RingPollCost
// instead of reaping a completion at CPUCompletion. Slot ownership is the
// flow control: the sender spends one slot per message and the receiver
// returns freed slots piggybacked on reverse traffic (or via an explicit
// credit message once half the ring is owed). A sender-side header cache of
// (tag, context) envelope signatures compresses the wire header on repeat
// sends. Messages that do not fit a slot, or arrive while the ring is
// exhausted or torn down by a rail death, fall back to the send/recv
// channel; both channels share the per-connection sequence space, so MPI's
// non-overtaking order survives the mix. See DESIGN.md §16.

// eagerRing is the sender-side view of one direction's ring: the slot
// cursor, the free-slot pool, and the rkey of the slot array registered at
// the receiver.
type eagerRing struct {
	slots     int
	slotBytes int
	rkey      uint32
	head      uint64 // monotonic slot cursor (next slot = head % slots)
	credits   int    // slots free at the receiver
	down      bool   // torn down while a rail of the connection is dead
}

// newEagerRing registers one direction's slot array in the realm (the
// receiver-resident bounce buffer) and returns the sender's view of it.
func newEagerRing(realm *ib.Realm, m *model.Params) *eagerRing {
	slab := make([]byte, m.RingSlots*m.RingSlotBytes)
	mr := realm.RegisterMR(slab, len(slab))
	return &eagerRing{
		slots:     m.RingSlots,
		slotBytes: m.RingSlotBytes,
		rkey:      mr.RKey,
		credits:   m.RingSlots,
	}
}

// sendEagerRing ships an eager payload through the per-peer ring, reporting
// false (without consuming protocol state) when the message must fall back
// to the send/recv channel: ring torn down, payload over the slot size, or
// no free slot.
func (ep *Endpoint) sendEagerRing(conn *Conn, req *Request) bool {
	ring := conn.ring
	if ring == nil {
		return false
	}
	if ring.down {
		ep.stats.EagerFallbacks++
		ep.trace(trace.KindEagerFallback, req.peer, req.n, -1)
		return false
	}
	// Slot fit is judged against the full header: whether this signature
	// would hit the cache must not decide eligibility, or the same message
	// would flip channels between warm and cold runs.
	if req.n+ep.m.MPIHeaderBytes > ring.slotBytes {
		ep.stats.EagerFallbacks++
		ep.trace(trace.KindEagerFallback, req.peer, req.n, -1)
		return false
	}
	if ring.credits <= 0 {
		ep.stats.RingFull++
		ep.stats.EagerFallbacks++
		ep.trace(trace.KindEagerFallback, req.peer, req.n, -1)
		return false
	}

	hdr := ep.m.MPIHeaderBytes
	if conn.hdr.hit(req.tag, req.ctxID) {
		hdr = ep.m.HdrCompressedBytes
		ep.stats.HdrCacheHits++
		ep.trace(trace.KindHdrHit, req.peer, req.n, -1)
	}

	env := ep.pool.get()
	env.kind, env.src, env.tag, env.ctxID = envEager, ep.Rank, req.tag, req.ctxID
	env.size, env.seq = req.n, conn.sendSeq
	env.ring = true
	conn.sendSeq++
	if req.data != nil {
		env.pay = ep.capture(req.data, req.n, "ring-eager")
		ep.charge(sim.TransferTime(int64(req.n), ep.m.EagerCopyRate))
	}
	var rail int
	if req.lane != NoLane {
		rail = core.LaneRail(req.lane, len(conn.rails), conn.sched.Dead)
	} else {
		rail = ep.policy.PickEager(req.class, req.n, len(conn.rails), &conn.sched)
	}
	slot := int(ring.head % uint64(ring.slots))
	if slot == 0 && ring.head > 0 {
		ep.trace(trace.KindRingWrap, req.peer, 0, rail)
	}
	ring.head++
	ring.credits--
	// Piggyback owed credits of both flow-control domains on the slot.
	env.credits += conn.owed
	conn.owed = 0
	env.ringCredits += conn.ringOwed
	conn.ringOwed = 0
	ep.stampPayloadCRC(env, req.n)
	ep.charge(ep.m.CPUHeaderProc + ep.m.CPUPostWQE + ep.m.DoorbellTime)
	ep.trace(trace.KindEager, req.peer, req.n, rail)
	req.status = Status{Source: ep.Rank, Tag: req.tag, Count: req.n}
	// Buffered-send semantics, as on the send/recv channel: the request
	// completes when the descriptor reaches the hardware. Ring slots are
	// payload WRs and the torn-write candidates: doorbell and payload land
	// through separate writes, so a chaos plan can deliver them inconsistent.
	ep.post(conn, rail, ib.SendWR{
		WRID: ep.nextWRID(nil), Op: ib.OpRDMAWrite,
		Data: env.pay.Bytes(), N: req.n + hdr,
		RKey: ring.rkey, RemoteOff: slot * ring.slotBytes,
		Imm: uint64(slot), HasImm: true,
		Signaled: true, Ctx: env,
		Payload: true, Ring: true, CRC: env.crc, NoCorrupt: req.noCorrupt,
	}, func() { req.done = true })
	ep.stats.EagerSent++
	ep.stats.RingSends++
	return true
}

// ---- torn-write consume guard ----
//
// The historical consume path trusted the doorbell: an immediate-data
// arrival meant the slot's payload was in place. A torn write — the doorbell
// outrunning the payload body — would hand the application a stale tail.
// With integrity armed the slot format carries a consistency marker (the
// wire header's trailing sequence byte, re-checked after copy-out); a
// mismatch parks the envelope and re-polls the slot until the payload
// settles, which the model expresses as the slot's tornAt instant.

// ringTornGuard reports whether a polled ring slot is still inconsistent,
// parking the envelope for the settle instant. Only armed integrity modes
// see a nonzero tornAt: disarmed runs deliver the stale-tail image instead.
func (ep *Endpoint) ringTornGuard(env *envelope) bool {
	if env.tornAt == 0 || env.tornAt <= ep.eng.Now() {
		env.tornAt = 0
		return false
	}
	ep.stats.TornRepolls++
	ep.trace(trace.KindTornRepoll, env.src, env.size, -1)
	ep.tornWait = append(ep.tornWait, env)
	at := env.tornAt
	ep.eng.Post(at, func() { ep.wake() })
	return true
}

// tornReadyEnv pops the next parked envelope whose slot has settled, if any.
func (ep *Endpoint) tornReadyEnv() *envelope {
	if len(ep.tornWait) == 0 || ep.tornWait[0].tornAt > ep.eng.Now() {
		return nil
	}
	env := ep.tornWait[0]
	ep.tornWait[0] = nil
	ep.tornWait = ep.tornWait[1:]
	env.tornAt = 0
	return env
}

// ringConsumed accounts one polled ring slot on the receiver and returns
// the owed slots explicitly once half the ring is owed and no reverse
// traffic has carried them back (the mirror of consumedRecv).
func (ep *Endpoint) ringConsumed(conn *Conn) {
	conn.ringOwed++
	if conn.ringOwed < max(1, ep.m.RingSlots/2) {
		return
	}
	env := ep.pool.get()
	env.kind, env.src, env.ringCredits = envCredit, ep.Rank, conn.ringOwed
	conn.ringOwed = 0
	ep.charge(ep.m.CPUPostWQE + ep.m.DoorbellTime)
	// Like channel credit returns, ring credit returns are control-plane
	// traffic: credit-exempt, unsequenced, consumed at the peer's poll.
	ep.post(conn, conn.ctrlRail(), ib.SendWR{
		WRID: ep.nextWRID(nil), Op: ib.OpSend,
		N: ep.m.CtrlMsgBytes, Signaled: true, Ctx: env,
	}, nil)
	ep.stats.CreditUpdates++
}

// ringCreditArrived books freed ring slots returned by the peer. Nothing
// queues on an empty slot pool — a full ring falls back to the send/recv
// channel instead — so there is no stalled work to drain.
func (ep *Endpoint) ringCreditArrived(conn *Conn, n int) {
	if n <= 0 || conn.ring == nil {
		return
	}
	conn.ring.credits += n
}

// ringDown tears the connection's send ring down (a rail died): eager
// traffic falls back to the send/recv channel until every rail is live
// again. Slots already in flight drain normally — the exactly-once flush
// semantics retransmit their writes onto survivors, and their credits
// return through the usual piggyback path — so re-arming needs no reset.
func (c *Conn) ringDown() {
	if c.ring != nil {
		c.ring.down = true
	}
}

// ringArm re-arms the ring once no rail of the connection is dead.
func (c *Conn) ringArm() {
	if c.ring != nil && c.sched.Dead == 0 {
		c.ring.down = false
	}
}

// ---- header cache ----

// hdrCache is the sender-side per-peer LRU of envelope signatures
// (tag, context): a hit ships the compressed wire header, a miss installs
// the signature and ships the full one. The receiver needs no invalidation
// protocol: installs ride the same sequenced stream as the data, so its
// mirror table replays the sender's decisions deterministically.
type hdrCache struct {
	cap  int
	m    map[uint64]*hdrNode
	head *hdrNode // most recently used
	tail *hdrNode // least recently used
}

type hdrNode struct {
	key        uint64
	prev, next *hdrNode
}

func newHdrCache(capacity int) *hdrCache {
	if capacity < 1 {
		capacity = 1
	}
	return &hdrCache{cap: capacity, m: make(map[uint64]*hdrNode, capacity)}
}

// hdrKey packs a signature; tag and context are independently recoverable,
// so distinct signatures never collide.
func hdrKey(tag, ctxID int) uint64 {
	return uint64(uint32(tag))<<32 | uint64(uint32(ctxID))
}

// hit reports whether the signature was cached, refreshing it to
// most-recently-used; on a miss it installs the signature, evicting the
// least recently used entry at capacity.
func (h *hdrCache) hit(tag, ctxID int) bool {
	key := hdrKey(tag, ctxID)
	if n := h.m[key]; n != nil {
		h.unlink(n)
		h.pushFront(n)
		return true
	}
	if len(h.m) >= h.cap {
		lru := h.tail
		h.unlink(lru)
		delete(h.m, lru.key)
	}
	n := &hdrNode{key: key}
	h.m[key] = n
	h.pushFront(n)
	return false
}

// len reports the number of cached signatures.
func (h *hdrCache) len() int { return len(h.m) }

func (h *hdrCache) unlink(n *hdrNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		h.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		h.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (h *hdrCache) pushFront(n *hdrNode) {
	n.next = h.head
	if h.head != nil {
		h.head.prev = n
	}
	h.head = n
	if h.tail == nil {
		h.tail = n
	}
}
