package stats

import (
	"strings"
	"testing"
)

func TestSeriesAddAt(t *testing.T) {
	var s Series
	s.Add(1024, 3.5)
	s.Add(2048, 7.25)
	if v, ok := s.At(1024); !ok || v != 3.5 {
		t.Errorf("At(1024) = %v, %v", v, ok)
	}
	if _, ok := s.At(999); ok {
		t.Error("missing X reported present")
	}
}

func TestTableAddGet(t *testing.T) {
	tbl := &Table{Title: "T", XLabel: "Size", Unit: "us"}
	tbl.Add("a", 1, 10)
	tbl.Add("a", 2, 20)
	tbl.Add("b", 1, 30)
	if len(tbl.Series) != 2 {
		t.Fatalf("series = %d", len(tbl.Series))
	}
	if tbl.Get("a") == nil || tbl.Get("b") == nil || tbl.Get("zzz") != nil {
		t.Error("Get misbehaves")
	}
	if v, _ := tbl.Get("a").At(2); v != 20 {
		t.Error("appended to wrong series")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{Title: "Demo", XLabel: "Size", Unit: "MB/s"}
	tbl.Add("one", 1024, 1.5)
	tbl.Add("two", 1024, 2.5)
	tbl.Add("one", 1<<20, 3)
	out := tbl.Format()
	for _, want := range []string{"Demo", "[MB/s]", "Size", "one", "two", "1K", "1M", "1.50", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	// Missing cell renders as a dash.
	if !strings.Contains(out, "-") {
		t.Error("missing cell should render as -")
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Error("no separator line")
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int]string{
		0: "0", 1: "1", 1000: "1000", 1024: "1K",
		4096: "4K", 1 << 20: "1M", 3 << 20: "3M", 1536: "1536",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestImprovementAndGain(t *testing.T) {
	if got := Improvement(100, 60); got != 40 {
		t.Errorf("Improvement = %v", got)
	}
	if got := Gain(100, 165); got != 65 {
		t.Errorf("Gain = %v", got)
	}
	if Improvement(0, 5) != 0 || Gain(0, 5) != 0 {
		t.Error("zero base must not divide by zero")
	}
	// Lower-is-better regression shows as negative improvement.
	if got := Improvement(100, 120); got != -20 {
		t.Errorf("regression = %v", got)
	}
}
