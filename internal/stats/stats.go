// Package stats provides the small series/table plumbing the benchmark
// harness uses to print paper-style figures as text tables.
package stats

import (
	"fmt"
	"strings"
)

// Point is one measurement: a message size (or process count) and a value.
type Point struct {
	X     int
	Value float64
}

// Series is a named curve, one per line in a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// At returns the value at x, and whether it exists.
func (s *Series) At(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Value, true
		}
	}
	return 0, false
}

// Add appends a point.
func (s *Series) Add(x int, v float64) {
	s.Points = append(s.Points, Point{X: x, Value: v})
}

// Table is a figure rendered as text: one row per X, one column per series.
type Table struct {
	Title  string
	XLabel string // e.g. "Size (bytes)" or "Processes"
	Unit   string // e.g. "us" or "MB/s"
	Series []Series
}

// Add appends a point to the named series, creating it if needed.
func (t *Table) Add(series string, x int, v float64) {
	for i := range t.Series {
		if t.Series[i].Name == series {
			t.Series[i].Add(x, v)
			return
		}
	}
	t.Series = append(t.Series, Series{Name: series, Points: []Point{{X: x, Value: v}}})
}

// Get returns the named series, or nil.
func (t *Table) Get(series string) *Series {
	for i := range t.Series {
		if t.Series[i].Name == series {
			return &t.Series[i]
		}
	}
	return nil
}

// xs returns the sorted union of X values across series (insertion order of
// first appearance, which the harness keeps ascending).
func (t *Table) xs() []int {
	var out []int
	seen := map[int]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				out = append(out, p.X)
			}
		}
	}
	return out
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s", t.Title)
		if t.Unit != "" {
			fmt.Fprintf(&b, "  [%s]", t.Unit)
		}
		b.WriteString("\n")
	}
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for _, x := range t.xs() {
		row := []string{FormatSize(x)}
		for _, s := range t.Series {
			if v, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w
			}
			b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Counters is an ordered block of named integer tallies — the rendering
// behind event-count summaries such as the reliability layer's rail-health
// transitions. Names keep first-appearance order so output is deterministic.
type Counters struct {
	Title  string
	names  []string
	values map[string]int64
}

// Add accumulates v into the named counter, creating it on first use.
func (c *Counters) Add(name string, v int64) {
	if c.values == nil {
		c.values = make(map[string]int64)
	}
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += v
}

// Get returns the named counter's value (0 if absent).
func (c *Counters) Get(name string) int64 { return c.values[name] }

// Format renders the block with aligned columns.
func (c *Counters) Format() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	w := 0
	for _, n := range c.names {
		if len(n) > w {
			w = len(n)
		}
	}
	for _, n := range c.names {
		fmt.Fprintf(&b, "%-*s  %d\n", w, n, c.values[n])
	}
	return b.String()
}

// FormatSize renders a byte count the way the paper's axes do (4K, 1M...).
func FormatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Improvement reports how much better `better` is than `base`, in percent,
// for a lower-is-better metric: 100 × (base − better) / base.
func Improvement(base, better float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - better) / base
}

// Gain reports how much higher `better` is than `base`, in percent, for a
// higher-is-better metric: 100 × (better − base) / base.
func Gain(base, better float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (better - base) / base
}
