// Package hca models the IBM 12x dual-port InfiniBand Host Channel Adapter
// (paper §2.2): each port carries multiple send and multiple receive DMA
// engines behind a single hardware send scheduler, attached to the node's
// GX+ bus on one side and a 12x link on the other.
//
// Each work request flows through a pipeline of resource stages — hardware
// send scheduler, send DMA engine, GX+ payload fetch, TX lane, wire, RX
// lane, receive DMA engine, GX+ store, RC acknowledgment. Every stage books
// its resource at the simulated instant the request *arrives* at that stage
// (event-driven staging), so shared resources serve competing traffic in
// true arrival order; contention emerges from the bookings without
// per-packet events.
//
// Two properties of the real hardware are preserved exactly, because the
// paper's results hinge on them:
//
//  1. A single QP's descriptors execute strictly in order, so one QP can
//     keep at most one send engine busy at a time ("multiple queue pairs
//     should be used to utilize the send engines efficiently"). Flow
//     enforces this: a QP's next descriptor enters the engine stage only
//     when the previous one's engine phase ends.
//  2. Every descriptor pays the scheduler arbitration, engine WQE-fetch and
//     RC acknowledgment costs, so striping a message into k stripes pays
//     those costs k times.
package hca

import (
	"fmt"

	"ib12x/internal/fabric"
	"ib12x/internal/gx"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

// HCA is one IBM 12x dual-port adapter.
type HCA struct {
	Name  string
	Ports []*Port
	Bus   *gx.Bus // the node's GX+ bus (shared across HCAs of the node)
}

// New creates an HCA with nports ports attached to the given GX+ bus.
func New(name string, nports int, bus *gx.Bus, m *model.Params, net *fabric.Net) *HCA {
	h := &HCA{Name: name, Bus: bus}
	for i := 0; i < nports; i++ {
		h.Ports = append(h.Ports, newPort(fmt.Sprintf("%s.p%d", name, i), bus, m, net))
	}
	return h
}

// Port is one 12x port: a hardware send scheduler, pools of send and receive
// DMA engines, and the two lanes of its link.
type Port struct {
	Name string
	Node int // owning node id (fabric leaf lookup)
	M    *model.Params
	Net  *fabric.Net
	Bus  *gx.Bus

	// Ctx addresses the owning node's shard engine in a sharded world (nil
	// in a serial world; flows then fall back to the engine they were built
	// with). Set once during world construction.
	Ctx *sim.NodeCtx

	Sched       sim.Server   // HW send scheduler (serial, PerItem per WQE)
	SendEngines []sim.Server // send DMA engines
	RecvEngines []sim.Server // receive DMA engines
	TX, RX      fabric.Lane

	// ErrorEvery injects a deterministic transmission error on every
	// N-th outbound chunk (0 disables). The lost chunk burns its wire
	// time, waits the model's RetransmitTimeout, and is retransmitted —
	// the observable cost of an RC retry. For failure-injection tests.
	ErrorEvery int64

	// Fault-injection hooks (all zero in healthy operation; driven by the
	// chaos harness off simulated virtual time, so faulty runs stay
	// bit-reproducible):
	//
	// StallUntil freezes the send-engine stage — WQEs arriving before this
	// instant wait for it before an engine is picked (a stalled send
	// engine / hung scheduler).
	StallUntil sim.Time
	// LatencyPad adds fixed one-way latency to every chunk entering or
	// leaving this port (a degraded link retraining at lower speed).
	LatencyPad sim.Time
	// AckDelay postpones RC acknowledgment generation by this much
	// (delayed completions at the responder).
	AckDelay sim.Time

	// Corruption plan (the chaos harness's integrity faults; DESIGN.md
	// §17). Each knob corrupts every N-th payload descriptor posted
	// through this port (0 disables); the shared counter advances once per
	// payload descriptor regardless of which knobs are armed, so plans
	// compose deterministically. CorruptSeed feeds the per-event byte/bit
	// selection. Control traffic (probes, credits, RTS/CTS/FIN, atomics)
	// never consults the plan — the model treats it as protected by the
	// transport's VCRC, which keeps every corruption plan liveness-safe.
	//
	// FlipEvery flips one seeded bit of the payload (BitFlipEveryN);
	// HdrEvery mangles the wire header of an envelope-bearing descriptor
	// (HeaderCorrupt); TornEvery delivers a ring slot whose payload trails
	// its doorbell (RingTornWrite; ring descriptors only).
	FlipEvery   int64
	HdrEvery    int64
	TornEvery   int64
	CorruptSeed uint64

	// PadSched, when non-nil, is the precomputed LatencyPad timeline
	// (sorted by At). Sharded chaos runs install it so that flows on OTHER
	// shards evaluate this port's pad at any virtual time without reading
	// the mutable LatencyPad field across threads; it reproduces exactly
	// the values the serial run's inline transitions would yield.
	PadSched []PadPoint

	// Stats.
	WQEs        int64 // data descriptors transmitted
	Acks        int64 // acknowledgments generated
	TxBytes     int64 // payload bytes transmitted
	RxBytes     int64 // payload bytes received
	RnrWaits    int64 // messages that arrived before a receive was posted
	Retransmits int64 // chunks retransmitted after injected errors

	chunksSent int64  // error-injection counter
	payloadWRs int64  // corruption-injection counter (payload descriptors posted)
	flowSeq    uint64 // flows created from this port (routed-fabric key salt)
}

// Corrupt describes the integrity fault the port's corruption plan assigns
// to one payload descriptor. Rnd is the seeded draw the consumer derives
// the byte offset and bit mask from; the zero value means "clean".
type Corrupt struct {
	Flip bool   // flip one bit of the payload
	Hdr  bool   // mangle the wire header
	Torn bool   // ring slot payload trails its doorbell
	Rnd  uint64 // seeded draw for byte/bit selection
}

// CorruptNext evaluates the port's corruption plan against the next payload
// descriptor posted through it. ring marks a descriptor that lands in an
// RDMA eager ring slot (the only torn-write candidates); env marks one that
// carries a wire header (the only header-corruption candidates). Called at
// post time on the port's owning shard, exactly like Sched bookings, so the
// counter sequence is identical serial and sharded.
func (p *Port) CorruptNext(ring, env bool) Corrupt {
	if p.FlipEvery == 0 && p.HdrEvery == 0 && p.TornEvery == 0 {
		return Corrupt{}
	}
	p.payloadWRs++
	c := Corrupt{Rnd: corruptMix(p.CorruptSeed ^ uint64(p.payloadWRs)*0x9E3779B97F4A7C15)}
	switch {
	case ring && p.TornEvery > 0 && p.payloadWRs%p.TornEvery == 0:
		c.Torn = true
	case p.FlipEvery > 0 && p.payloadWRs%p.FlipEvery == 0:
		c.Flip = true
	case env && p.HdrEvery > 0 && p.payloadWRs%p.HdrEvery == 0:
		c.Hdr = true
	default:
		return Corrupt{}
	}
	return c
}

// corruptMix is splitmix64's finalizer: a cheap, well-mixed hash of the
// (seed, counter) pair that makes flip positions deterministic per event.
func corruptMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func newPort(name string, bus *gx.Bus, m *model.Params, net *fabric.Net) *Port {
	p := &Port{
		Name:  name,
		M:     m,
		Net:   net,
		Bus:   bus,
		Sched: sim.Server{PerItem: m.SchedulerPerWQE},
		TX:    fabric.Lane{Rate: m.LinkRawRate},
		RX:    fabric.Lane{Rate: m.LinkRawRate},
	}
	for i := 0; i < m.SendEnginesPerPort; i++ {
		p.SendEngines = append(p.SendEngines, sim.Server{Rate: m.EngineRate, PerItem: m.EnginePerWQE})
	}
	for i := 0; i < m.RecvEnginesPerPort; i++ {
		p.RecvEngines = append(p.RecvEngines, sim.Server{Rate: m.EngineRate, PerItem: m.EnginePerWQE})
	}
	return p
}

// pickEngine returns the engine (by index) that can start work soonest given
// an earliest-start constraint; ties break toward the lowest index so runs
// are deterministic.
func pickEngine(engines []sim.Server, earliest sim.Time) int {
	best, bestStart := 0, sim.Time(-1)
	for i := range engines {
		s := earliest
		if f := engines[i].FreeAt(); f > s {
			s = f
		}
		if bestStart < 0 || s < bestStart {
			best, bestStart = i, s
		}
	}
	return best
}

// Timing captures the instants of one work request's journey. Fields are
// filled progressively as the request moves through the pipeline.
type Timing struct {
	Posted    sim.Time // doorbell rang
	SchedEnd  sim.Time // HW scheduler dispatched the WQE
	EngineEnd sim.Time // payload fully staged by the send engine
	Leaves    sim.Time // last byte left the source TX lane
	Delivered sim.Time // last byte through the destination RX lane
	InMemory  sim.Time // payload landed in destination memory
	AckArrive sim.Time // RC acknowledgment back at the requester
}

// PadPoint is one scheduled LatencyPad transition: the pad in force from
// At onward (until the next point).
type PadPoint struct {
	At  sim.Time
	Pad sim.Time
}

// padAt evaluates the port's one-way latency pad at virtual time t: from
// the precomputed schedule when present (sharded runs), else the live
// field (serial runs, where transitions apply inline).
func (p *Port) padAt(t sim.Time) sim.Time {
	if p.PadSched == nil {
		return p.LatencyPad
	}
	pad := sim.Time(0)
	for _, pt := range p.PadSched {
		if pt.At > t {
			break
		}
		pad = pt.Pad
	}
	return pad
}

// Flow is the transmit pipeline of one QP direction: it enforces the
// per-QP in-order rule at the engine stage and drives each work request
// through the staged resources. Source-side stages (scheduler, send
// engines, GX+ fetch, TX/uplink lanes) execute on the source node's
// engine; destination-side stages (RX/downlink lanes, receive engines,
// GX+ store, ack generation) execute on the destination node's engine —
// the same engine serially, distinct shard engines in a sharded world.
type Flow struct {
	eng    *sim.Engine // source-side engine (srcCtx's engine)
	dstEng *sim.Engine
	srcCtx *sim.NodeCtx
	dstCtx *sim.NodeCtx
	src    *Port
	dst    *Port

	prevEngEnd sim.Time           // engine-phase end of the last WQE to enter the pool
	busy       bool               // a WQE is waiting for / holding the engine stage
	pending    sim.Ring[flowItem] // WQEs queued behind the in-order rule
	xpool      []*xfer            // recycled per-WQE pipeline states

	// routeKey identifies this flow to the routed fabric's path selection:
	// the D-mod-K hash input (static) and the tie-break salt (adaptive).
	// Derived from (src node, dst node, per-port flow ordinal) at world
	// build, which is single-threaded in every mode, so it is identical
	// serial and sharded.
	routeKey uint64
}

// flowItem carries one WQE's completion callbacks in closure-free form: ctx
// is handed back to the package-level delivered/acked functions, so a caller
// with a pooled per-WR state object posts without allocating.
type flowItem struct {
	n         int
	posted    sim.Time
	schedEnd  sim.Time
	ctx       any
	delivered func(any, Timing) // invoked when the payload is in remote memory
	acked     func(any, Timing) // invoked when the RC ack returns
}

// cbPair adapts the closure-based Send to the ctx-carrying pipeline.
type cbPair struct {
	delivered func(Timing)
	acked     func(Timing)
}

func pairDelivered(a any, t Timing) {
	if p := a.(*cbPair); p.delivered != nil {
		p.delivered(t)
	}
}

func pairAcked(a any, t Timing) {
	if p := a.(*cbPair); p.acked != nil {
		p.acked(t)
	}
}

// NewFlow creates the transmit pipeline from p toward dst. In a serial
// world eng drives both sides; in a sharded world the ports' node contexts
// (Port.Ctx) place each side on its owning shard.
func (p *Port) NewFlow(eng *sim.Engine, dst *Port) *Flow {
	f := &Flow{src: p, dst: dst}
	f.srcCtx, f.dstCtx = p.Ctx, dst.Ctx
	if f.srcCtx == nil {
		f.srcCtx = eng.NodeCtx(p.Node)
	}
	if f.dstCtx == nil {
		f.dstCtx = eng.NodeCtx(dst.Node)
	}
	f.eng = f.srcCtx.Engine()
	f.dstEng = f.dstCtx.Engine()
	p.flowSeq++
	f.routeKey = corruptMix(uint64(p.Node)<<40 ^ uint64(dst.Node)<<20 ^ p.flowSeq)
	return f
}

// Src and Dst report the flow's endpoints.
func (f *Flow) Src() *Port { return f.src }

// Dst reports the destination port.
func (f *Flow) Dst() *Port { return f.dst }

// Send enqueues one WQE of n payload bytes. delivered fires at the instant
// the payload is fully placed in destination memory; acked fires when the
// RC acknowledgment reaches the requester. Either may be nil. Each call
// allocates an adapter; allocation-sensitive callers use SendCtx.
func (f *Flow) Send(n int, delivered, acked func(Timing)) {
	f.SendCtx(n, &cbPair{delivered: delivered, acked: acked}, pairDelivered, pairAcked)
}

// SendCtx is the closure-free form of Send: delivered and acked are
// package-level (or otherwise non-capturing) functions that receive ctx
// back, so a caller pooling its per-WR state posts without allocating.
func (f *Flow) SendCtx(n int, ctx any, delivered, acked func(any, Timing)) {
	now := f.eng.Now()
	// The doorbell rings at post time; the HW scheduler arbitration is a
	// short serial booking at (or just after) the current instant.
	_, schedEnd := f.src.Sched.Reserve(now, 0)
	f.pending.Push(flowItem{n: n, posted: now, schedEnd: schedEnd, ctx: ctx, delivered: delivered, acked: acked})
	f.src.WQEs++
	f.src.TxBytes += int64(n)
	f.kick()
}

// kick starts the next pending WQE's engine stage once the previous one's
// engine phase has ended (the RC in-order rule).
func (f *Flow) kick() {
	if f.busy || f.pending.Len() == 0 {
		return
	}
	f.busy = true
	it := f.pending.Pop()
	at := f.eng.Now()
	if it.schedEnd > at {
		at = it.schedEnd
	}
	if f.prevEngEnd > at {
		at = f.prevEngEnd
	}
	x := f.getXfer()
	x.it = it
	x.t = Timing{Posted: it.posted, SchedEnd: it.schedEnd}
	x.recvEng = -1
	f.eng.PostCall(at, stageEngine, x, 0, 0, 0)
}

// xfer is the per-WQE state shared by its lane chunks. Instances are pooled
// per Flow: the ack event is provably the last pipeline reference (all chunks
// received, completeStage fired), so stageAck recycles them.
type xfer struct {
	f         *Flow
	it        flowItem
	t         Timing
	chunksOut int // chunks not yet fully received
	recvEng   int // receive engine assigned at first chunk (-1 before)
}

func (f *Flow) getXfer() *xfer {
	if n := len(f.xpool); n > 0 {
		x := f.xpool[n-1]
		f.xpool[n-1] = nil
		f.xpool = f.xpool[:n-1]
		return x
	}
	return &xfer{f: f}
}

func (f *Flow) putXfer(x *xfer) {
	*x = xfer{f: f}
	f.xpool = append(f.xpool, x)
}

// Pipeline-stage thunks: package-level functions scheduled via PostCall so
// each hop carries its state in the pooled timer node instead of allocating
// a capturing closure per chunk.
func stageEngine(a any, _, _, _ int64) { x := a.(*xfer); x.f.engineStage(x) }
func stageTx(a any, n, _, _ int64)     { x := a.(*xfer); x.f.txChunk(x, int(n)) }
func stageTxSend(a any, n, _, _ int64) { x := a.(*xfer); x.f.txChunkSend(x, int(n)) }
func stageRx(a any, n, first, wire int64) {
	x := a.(*xfer)
	x.f.rxChunk(x, int(n), sim.Time(first), wire)
}
func stageRecv(a any, n, _, _ int64)     { x := a.(*xfer); x.f.recvChunk(x, int(n)) }
func stageComplete(a any, _, _, _ int64) { x := a.(*xfer); x.f.completeStage(x) }
func stageAck(a any, _, _, _ int64) {
	x := a.(*xfer)
	f := x.f
	f.src.RX.Preempt(f.eng.Now(), int64(f.dst.M.AckWireBytes))
	if x.it.acked != nil {
		x.it.acked(x.it.ctx, x.t)
	}
	f.putXfer(x)
}

// engineStage books a send engine and the GX+ payload fetch, then releases
// the payload to the TX lane in chunks paced at the engine's rate, so
// concurrent transfers interleave on the lane as their packets would on a
// real link.
func (f *Flow) engineStage(x *xfer) {
	m := f.src.M
	now := f.eng.Now()
	it := x.it

	if f.src.StallUntil > now {
		now = f.src.StallUntil
	}
	ei := pickEngine(f.src.SendEngines, now)
	engStart, engEnd := f.src.SendEngines[ei].Reserve(now, int64(it.n))
	x.t.EngineEnd = engEnd

	// The next WQE of this QP may enter the engine pool once this one's
	// engine phase is over.
	f.prevEngEnd = x.t.EngineEnd
	f.busy = false
	f.kick()

	// Chunk the payload for lane interleaving; each chunk is released when
	// the engine has staged it.
	chunk := m.LaneChunk
	if chunk <= 0 {
		chunk = m.MTU
	}
	nchunks := (it.n + chunk - 1) / chunk
	if nchunks == 0 {
		nchunks = 1
	}
	x.chunksOut = nchunks
	pace := float64(x.t.EngineEnd-engStart-m.EnginePerWQE) / float64(max64(int64(it.n), 1))
	off := 0
	for i := 0; i < nchunks; i++ {
		n := chunk
		if off+n > it.n {
			n = it.n - off
		}
		off += n
		ready := engStart + m.EnginePerWQE + sim.Time(pace*float64(off))
		if ready < engStart+m.EnginePerWQE {
			ready = engStart + m.EnginePerWQE
		}
		f.eng.PostCall(ready, stageTx, x, int64(n), 0, 0)
	}
}

// txChunk fetches one staged chunk across GX+, books the TX lane for it
// and forwards it. GX+ is booked chunk-wise so concurrent DMA streams share
// the bus at fine granularity, as the real bus arbitrates. An injected
// error burns the chunk's wire time and reschedules it after the RC
// retransmit timeout.
func (f *Flow) txChunk(x *xfer, n int) {
	m := f.src.M
	now := f.eng.Now()
	f.src.chunksSent++
	if f.src.ErrorEvery > 0 && f.src.chunksSent%f.src.ErrorEvery == 0 {
		wire := int64(n) + int64(m.Packets(n)*m.PacketHeader)
		f.src.TX.Send(now, wire, now) // the corrupted transmission still burns wire time
		f.src.Retransmits++
		// The retry bypasses injection: a second loss of the same chunk
		// would model a broken link, not a transient error.
		f.eng.PostCall(now+m.RetransmitTimeout, stageTxSend, x, int64(n), 0, 0)
		return
	}
	f.txChunkSend(x, n)
}

// txChunkSend performs the actual (successful) chunk transmission.
func (f *Flow) txChunkSend(x *xfer, n int) {
	m := f.src.M
	now := f.eng.Now()
	ready := f.src.Bus.DMA(now, int64(n))
	wire := int64(n) + int64(m.Packets(n)*m.PacketHeader)
	txStart, leaves := f.src.TX.Send(ready, wire, ready)
	if leaves > x.t.Leaves {
		x.t.Leaves = leaves
	}
	net := f.src.Net
	lat := net.OneWay() + f.src.LatencyPad + f.dst.padAt(now)
	first := txStart + lat
	last := leaves + lat
	if net.Routed() {
		if !net.CrossSwitch(f.src.Node, f.dst.Node) {
			f.eng.PostCallTo(f.dstCtx, last, stageRx, x, int64(n), int64(first), wire)
			return
		}
		// Switch-graph walk: the fabric routes and books every trunk hop
		// under this flow's key, charging the legacy per-hop recurrence.
		// Spine/core/global lanes carry traffic from many shards (and
		// adaptive selection reads their load), so in a sharded run the
		// WHOLE path booking — selection included — is deferred to the
		// window barrier, where deferred ops apply in serial posting-key
		// order; lane state and every adaptive choice then match the
		// serial run bit-exactly. The rx event's stub is reserved here to
		// keep this node's sequence stream serial-identical.
		if f.eng.Sharded() {
			stub := f.eng.ReserveStub()
			e, inFirst, inLast := f.eng, first, last
			f.eng.DeferOrdered(func() {
				df, dl := net.BookPath(f.src.Node, f.dst.Node, f.routeKey, inFirst, inLast, wire, lat)
				e.PostCallStubTo(stub, f.dstCtx, dl, stageRx, x, int64(n), int64(df), wire)
			})
			return
		}
		first, last = net.BookPath(f.src.Node, f.dst.Node, f.routeKey, first, last, wire, lat)
		f.eng.PostCallTo(f.dstCtx, last, stageRx, x, int64(n), int64(first), wire)
		return
	}
	if net.CrossLeaf(f.src.Node, f.dst.Node) {
		// Two extra hops through the spine; the shared trunk lanes of
		// both leaves carry (and possibly throttle) the chunk. The uplink
		// belongs to the source leaf (booked inline); the downlink belongs
		// to the destination leaf, which in a sharded run may live on
		// another shard whose lane bookings from several shards must apply
		// in the serial (posting-key) order — so the booking is deferred to
		// the window barrier, with the rx event's key reserved here to keep
		// this node's sequence stream serial-identical.
		upStart, upLeaves := net.Uplink(net.Leaf(f.src.Node)).Send(first, wire, last)
		down := net.Downlink(net.Leaf(f.dst.Node))
		inFirst, inLast := upStart+lat, upLeaves+lat
		if f.eng.Sharded() {
			stub := f.eng.ReserveStub()
			e := f.eng
			f.eng.DeferOrdered(func() {
				downStart, downLeaves := down.Send(inFirst, wire, inLast)
				e.PostCallStubTo(stub, f.dstCtx, downLeaves+lat, stageRx, x, int64(n), int64(downStart+lat), wire)
			})
			return
		}
		downStart, downLeaves := down.Send(inFirst, wire, inLast)
		first = downStart + lat
		last = downLeaves + lat
	}
	f.eng.PostCallTo(f.dstCtx, last, stageRx, x, int64(n), int64(first), wire)
}

// rxChunk books the destination RX lane at arrival (fan-in serializes here)
// and then the receive engine + GX+ store for this chunk.
func (f *Flow) rxChunk(x *xfer, n int, first sim.Time, wire int64) {
	delivered := f.dst.RX.Recv(first, f.dstEng.Now(), wire)
	if delivered > x.t.Delivered {
		x.t.Delivered = delivered
	}
	f.dstEng.PostCall(delivered, stageRecv, x, int64(n), 0, 0)
}

// recvChunk runs the receive-side DMA of one chunk. Inbound processing is
// packet-granular on the real HCA, so each chunk goes to the least-loaded
// receive engine; the per-WQE setup cost is paid once, on the first chunk.
func (f *Flow) recvChunk(x *xfer, n int) {
	m := f.dst.M
	now := f.dstEng.Now()
	f.dst.RxBytes += int64(n)
	var dur sim.Time
	if x.recvEng < 0 {
		x.recvEng = 1 // marker: setup cost paid
		dur = m.EnginePerWQE
	}
	ri := pickEngine(f.dst.RecvEngines, now)
	dur += sim.TransferTime(int64(n), m.EngineRate)
	rStart, rEnd := f.dst.RecvEngines[ri].ReserveDur(now, dur)
	gxEnd := f.dst.Bus.DMA(rStart, int64(n))
	inMem := rEnd
	if gxEnd > inMem {
		inMem = gxEnd
	}
	if inMem > x.t.InMemory {
		x.t.InMemory = inMem
	}
	x.chunksOut--
	if x.chunksOut == 0 {
		f.dstEng.PostCall(x.t.InMemory, stageComplete, x, 0, 0, 0)
	}
}

// completeStage delivers the payload and generates the RC acknowledgment.
// Acknowledgments are high-priority: they interleave between the data
// packets of queued transfers on both lanes instead of waiting behind bulk
// backlogs, so their wire time is charged but they are never delayed by it.
func (f *Flow) completeStage(x *xfer) {
	m := f.dst.M
	_, done := f.dst.Sched.ReserveDur(f.dstEng.Now()+f.dst.AckDelay, m.AckProcTime)
	leaves := f.dst.TX.Preempt(done, int64(m.AckWireBytes))
	f.dst.Acks++
	x.t.AckArrive = leaves + f.dst.Net.OneWay()
	if x.it.delivered != nil {
		x.it.delivered(x.it.ctx, x.t)
	}
	f.dstEng.PostCallTo(f.srcCtx, x.t.AckArrive, stageAck, x, 0, 0, 0)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DegradeLink throttles the port's link to factor × the model's raw link
// rate (0 < factor ≤ 1) and pads every chunk through the port by pad of
// extra one-way latency — a link that retrained at a lower width/speed.
func (p *Port) DegradeLink(factor float64, pad sim.Time) {
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	p.TX.SetRate(p.M.LinkRawRate * factor)
	p.RX.SetRate(p.M.LinkRawRate * factor)
	p.LatencyPad = pad
}

// RestoreLink returns the port's link to full speed and zero extra latency.
func (p *Port) RestoreLink() {
	p.TX.SetRate(p.M.LinkRawRate)
	p.RX.SetRate(p.M.LinkRawRate)
	p.LatencyPad = 0
}

// EffectiveRate reports the port's current outbound link rate in bytes/sec,
// reflecting any DegradeLink in force. The rail reliability layer scales its
// completion deadlines by transfer estimates at this rate, so a degraded but
// healthy link is not mistaken for a dead rail.
func (p *Port) EffectiveRate() float64 { return p.TX.Rate }

// EngineUtilization reports the mean utilization of the send engines at now.
func (p *Port) EngineUtilization(now sim.Time) float64 {
	if len(p.SendEngines) == 0 || now <= 0 {
		return 0
	}
	var u float64
	for i := range p.SendEngines {
		u += p.SendEngines[i].Utilization(now)
	}
	return u / float64(len(p.SendEngines))
}
