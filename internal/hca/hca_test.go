package hca

import (
	"testing"

	"ib12x/internal/fabric"
	"ib12x/internal/gx"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

// rig is a pair of single-port HCAs on separate nodes joined by one switch,
// with a simulation engine driving the staged pipeline.
type rig struct {
	eng      *sim.Engine
	m        *model.Params
	src, dst *Port
}

func newRig(m *model.Params) *rig {
	net := &fabric.Net{Latency: m.WireLatency}
	a := New("hca0", 1, gx.New(m.GXRate), m, net)
	b := New("hca1", 1, gx.New(m.GXRate), m, net)
	return &rig{eng: sim.NewEngine(), m: m, src: a.Ports[0], dst: b.Ports[0]}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFlowOrderingInvariants(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	f := r.src.NewFlow(r.eng, r.dst)
	var tm Timing
	var ackAt sim.Time
	f.Send(64*1024, func(x Timing) { tm = x }, func(x Timing) { ackAt = r.eng.Now() })
	r.run(t)
	if !(tm.SchedEnd > 0 && tm.EngineEnd > tm.SchedEnd && tm.Leaves >= tm.EngineEnd) {
		t.Errorf("stage ordering broken: %+v", tm)
	}
	if tm.Delivered < tm.Leaves+m.WireLatency {
		t.Errorf("Delivered %v before Leaves+latency", tm.Delivered)
	}
	if tm.InMemory < tm.Delivered {
		t.Errorf("InMemory %v before Delivered %v", tm.InMemory, tm.Delivered)
	}
	if tm.AckArrive < tm.InMemory+m.WireLatency || ackAt != tm.AckArrive {
		t.Errorf("ack at %v, timing says %v (InMemory %v)", ackAt, tm.AckArrive, tm.InMemory)
	}
}

// driveFlows pushes count messages of n bytes over `flows` flows in
// round-robin order, all posted at time zero, and returns the time the last
// payload lands in destination memory.
func driveFlows(t *testing.T, r *rig, flows []*Flow, count, n int) sim.Time {
	t.Helper()
	var done sim.Time
	r.eng.At(0, func() {
		for i := 0; i < count; i++ {
			flows[i%len(flows)].Send(n, func(tm Timing) {
				if tm.InMemory > done {
					done = tm.InMemory
				}
			}, nil)
		}
	})
	r.run(t)
	return done
}

func makeFlows(r *rig, k int) []*Flow {
	fs := make([]*Flow, k)
	for i := range fs {
		fs[i] = r.src.NewFlow(r.eng, r.dst)
	}
	return fs
}

func TestSingleFlowSerializesEnginePhases(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	done := driveFlows(t, r, makeFlows(r, 1), 8, 256*1024)
	perMsg := sim.TransferTime(256*1024, m.EngineRate)
	if done < 8*perMsg {
		t.Errorf("8 chained transfers done at %v, must be ≥ 8×engine time %v", done, 8*perMsg)
	}
}

func TestMultiFlowEngagesEnginesInParallel(t *testing.T) {
	m := model.Default()
	r1 := newRig(m)
	multi := driveFlows(t, r1, makeFlows(r1, 4), 4, 256*1024)
	r2 := newRig(m)
	single := driveFlows(t, r2, makeFlows(r2, 1), 4, 256*1024)
	if multi >= single {
		t.Fatalf("4 flows (%v) not faster than 1 flow (%v)", multi, single)
	}
	if ratio := float64(single) / float64(multi); ratio < 1.4 {
		t.Errorf("speedup = %.2f, want ≥ 1.4", ratio)
	}
}

func TestSingleFlowThroughputNearEngineRate(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	done := driveFlows(t, r, makeFlows(r, 1), 64, 1<<20)
	bw := float64(64*(1<<20)) / done.Seconds()
	if bw > m.EngineRate {
		t.Errorf("1-flow bw %.0f MB/s exceeds engine rate", bw/1e6)
	}
	if bw < 0.90*m.EngineRate {
		t.Errorf("1-flow bw %.0f MB/s, want ≥ 90%% of engine rate %.0f MB/s", bw/1e6, m.EngineRate/1e6)
	}
}

func TestFourFlowThroughputNearLinkRate(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	done := driveFlows(t, r, makeFlows(r, 4), 64, 1<<20)
	bw := float64(64*(1<<20)) / done.Seconds()
	eff := m.LinkDataRate()
	if bw > m.LinkRawRate {
		t.Errorf("4-flow bw %.0f MB/s exceeds raw link", bw/1e6)
	}
	if bw < 0.93*eff {
		t.Errorf("4-flow bw %.0f MB/s, want ≥ 93%% of effective link %.0f MB/s", bw/1e6, eff/1e6)
	}
}

func TestEnginesLoadBalance(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	driveFlows(t, r, makeFlows(r, 4), 16, 1<<20)
	// 16 MB over 4 engines: no engine should carry more than half.
	for i := range r.src.SendEngines {
		if b := r.src.SendEngines[i].Bytes(); b > 8<<20 {
			t.Errorf("engine %d carried %d bytes of 16 MB: load imbalance", i, b)
		}
		if b := r.src.SendEngines[i].Bytes(); b < 2<<20 {
			t.Errorf("engine %d carried only %d bytes: idle engine", i, b)
		}
	}
}

func TestStripingOverheadVisibleAtMediumSize(t *testing.T) {
	// 16 KB in four 4 KB stripes pays 4× the per-WQE costs; one 16 KB WQE
	// pays them once. Aggregate engine-seconds must reflect it.
	m := model.Default()
	r1 := newRig(m)
	driveFlows(t, r1, makeFlows(r1, 4), 4, 4*1024)
	var striped sim.Time
	for i := range r1.src.SendEngines {
		striped += r1.src.SendEngines[i].Busy()
	}
	r2 := newRig(m)
	driveFlows(t, r2, makeFlows(r2, 1), 1, 16*1024)
	var whole sim.Time
	for i := range r2.src.SendEngines {
		whole += r2.src.SendEngines[i].Busy()
	}
	if striped <= whole+2*m.EnginePerWQE {
		t.Errorf("striped engine-seconds %v not visibly above whole-message %v", striped, whole)
	}
}

func TestAckAccounting(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	driveFlows(t, r, makeFlows(r, 1), 1, 8192)
	if r.dst.Acks != 1 {
		t.Errorf("responder Acks = %d, want 1", r.dst.Acks)
	}
	if r.src.WQEs != 1 || r.src.TxBytes != 8192 || r.dst.RxBytes != 8192 {
		t.Errorf("stats: WQEs=%d Tx=%d Rx=%d", r.src.WQEs, r.src.TxBytes, r.dst.RxBytes)
	}
}

func TestFanInSerializesAtReceiver(t *testing.T) {
	m := model.Default()
	net := &fabric.Net{Latency: m.WireLatency}
	eng := sim.NewEngine()
	a := New("a", 1, gx.New(m.GXRate), m, net).Ports[0]
	b := New("b", 1, gx.New(m.GXRate), m, net).Ports[0]
	c := New("c", 1, gx.New(m.GXRate), m, net).Ports[0]
	fa := a.NewFlow(eng, c)
	fb := b.NewFlow(eng, c)
	var d1, d2 sim.Time
	eng.At(0, func() {
		fa.Send(64*1024, func(tm Timing) { d1 = tm.Delivered }, nil)
		fb.Send(64*1024, func(tm Timing) { d2 = tm.Delivered }, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("fan-in: second delivery %v not after first %v", d2, d1)
	}
}

func TestLateArrivalNotBlockedByEarlierSlowTransfer(t *testing.T) {
	// Regression for the book-at-post-time bug: a small message posted on
	// a second flow right after a huge one must not queue behind the huge
	// transfer's engine phase — it has its own engine and lane gaps.
	m := model.Default()
	r := newRig(m)
	big := r.src.NewFlow(r.eng, r.dst)
	small := r.src.NewFlow(r.eng, r.dst)
	var bigIn, smallIn sim.Time
	r.eng.At(0, func() {
		big.Send(1<<20, func(tm Timing) { bigIn = tm.InMemory }, nil)
	})
	r.eng.At(10*sim.Microsecond, func() {
		small.Send(512, func(tm Timing) { smallIn = tm.InMemory }, nil)
	})
	r.run(t)
	if smallIn >= bigIn {
		t.Errorf("small message delivered at %v, after the 1MB transfer (%v)", smallIn, bigIn)
	}
	if smallIn > 40*sim.Microsecond {
		t.Errorf("small message took until %v; must cut through", smallIn)
	}
}

func TestDualPortIndependentLanes(t *testing.T) {
	m := model.Default()
	net := &fabric.Net{Latency: m.WireLatency}
	eng := sim.NewEngine()
	a := New("a", 2, gx.New(m.GXRate), m, net)
	b := New("b", 2, gx.New(m.GXRate), m, net)
	f0 := a.Ports[0].NewFlow(eng, b.Ports[0])
	f1 := a.Ports[1].NewFlow(eng, b.Ports[1])
	var l0, l1 sim.Time
	eng.At(0, func() {
		f0.Send(1<<20, func(tm Timing) { l0 = tm.Leaves }, nil)
		f1.Send(1<<20, func(tm Timing) { l1 = tm.Leaves }, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d := l1 - l0; d < 0 || d > l0/4 {
		t.Errorf("port 1 (%v) should finish near port 0 (%v): only GX+ is shared", l1, l0)
	}
}

func TestDeterministicTiming(t *testing.T) {
	m := model.Default()
	runOnce := func() sim.Time {
		r := newRig(m)
		return driveFlows(t, r, makeFlows(r, 4), 16, 32*1024)
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestEngineUtilization(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	f := r.src.NewFlow(r.eng, r.dst)
	var end sim.Time
	r.eng.At(0, func() {
		f.Send(1<<20, nil, func(tm Timing) { end = tm.EngineEnd })
	})
	r.run(t)
	u := r.src.EngineUtilization(end)
	if u < 0.2 || u > 0.3 {
		t.Errorf("utilization = %g, want ~0.25 (one of four engines busy)", u)
	}
}

func TestFlowAccessors(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	f := r.src.NewFlow(r.eng, r.dst)
	if f.Src() != r.src || f.Dst() != r.dst {
		t.Error("flow endpoints wrong")
	}
}

func TestErrorInjectionRetransmits(t *testing.T) {
	m := model.Default()
	r := newRig(m)
	r.src.ErrorEvery = 4 // every 4th chunk is lost
	done := driveFlows(t, r, makeFlows(r, 1), 4, 64*1024)
	if r.src.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	// Each retry stalls its transfer by the retransmit timeout.
	clean := func() sim.Time {
		r2 := newRig(m)
		return driveFlows(t, r2, makeFlows(r2, 1), 4, 64*1024)
	}()
	if done < clean+m.RetransmitTimeout {
		t.Errorf("faulty run (%v) not visibly slower than clean (%v)", done, clean)
	}
}

func TestErrorInjectionEveryChunkStillCompletes(t *testing.T) {
	// ErrorEvery=1 loses every first transmission; retries are exempt, so
	// the transfer still completes (a transient-error model, not a dead
	// link).
	m := model.Default()
	r := newRig(m)
	r.src.ErrorEvery = 1
	done := driveFlows(t, r, makeFlows(r, 1), 1, 32*1024)
	if done <= 0 {
		t.Fatal("transfer never completed under full error injection")
	}
	if r.src.Retransmits != 2 { // 32KB = 2 chunks, each lost once
		t.Errorf("Retransmits = %d, want 2", r.src.Retransmits)
	}
}

func TestErrorInjectionPreservesDelivery(t *testing.T) {
	// Payload correctness under retransmission, end to end through MPI.
	m := model.Default()
	r := newRig(m)
	r.src.ErrorEvery = 3
	var got sim.Time
	f := r.src.NewFlow(r.eng, r.dst)
	f.Send(128*1024, func(tm Timing) { got = tm.InMemory }, nil)
	r.run(t)
	if got == 0 {
		t.Fatal("delivery callback never fired")
	}
}
