package fabric

import (
	"testing"

	"ib12x/internal/sim"
)

const testRate = 3.0e9

func threeTier(nodes, npl, spines int, mode Routing) *Net {
	return NewThreeTier(sim.Microsecond, nodes, npl, spines, testRate, mode, 7)
}

func dragonfly(groups, routers, npr, glinks int, mode Routing) *Net {
	return NewDragonfly(sim.Microsecond, groups, routers, npr, glinks, testRate, mode, 7)
}

// switch numbering for the reference graph: fat-tree leaves, then spines
// (pod-major), then cores; dragonfly routers group-major.
func (g *graph) switchCount() int {
	if g.kind == gFatTree3 {
		return g.leaves + g.pods*g.spines + g.spines
	}
	return g.groups * g.routers
}

func (g *graph) spineID(pod, s int) int { return g.leaves + pod*g.spines + s }
func (g *graph) coreID(c int) int       { return g.leaves + g.pods*g.spines + c }

// laneEnds maps a lane index back to its (from, to) switch ids.
func (g *graph) laneEnds(idx int) (int, int) {
	if g.kind == gFatTree3 {
		s := g.spines
		switch {
		case idx < g.downSL:
			rel := idx - g.upLS
			return rel / s, g.spineID((rel/s)/s, rel%s)
		case idx < g.upSC:
			rel := idx - g.downSL
			return g.spineID((rel/s)/s, rel%s), rel / s
		case idx < g.downCS:
			rel := idx - g.upSC
			return g.spineID(rel/(s*s), (rel/s)%s), g.coreID(rel % s)
		default:
			rel := idx - g.downCS
			return g.coreID(rel % s), g.spineID(rel/(s*s), (rel/s)%s)
		}
	}
	r := g.routers
	if idx < g.global {
		rel := idx - g.local
		grp := rel / (r * r)
		return grp*r + (rel/r)%r, grp*r + rel%r
	}
	rel := idx - g.global
	j := rel % g.glinks
	g2 := (rel / g.glinks) % g.groups
	g1 := rel / (g.glinks * g.groups)
	return g1*r + (g2+j)%r, g2*r + (g1+j)%r
}

// tier classifies a fat-tree switch id: 0 leaf, 1 spine, 2 core.
func (g *graph) tier(sw int) int {
	switch {
	case sw < g.leaves:
		return 0
	case sw < g.leaves+g.pods*g.spines:
		return 1
	default:
		return 2
	}
}

// eachEdge visits every real (unpadded, non-diagonal) lane of the graph.
func (g *graph) eachEdge(fn func(idx int)) {
	if g.kind == gFatTree3 {
		for l := 0; l < g.leaves; l++ {
			for s := 0; s < g.spines; s++ {
				fn(g.laneUpLS(l, s))
				fn(g.laneDownSL(l, s))
			}
		}
		for p := 0; p < g.pods; p++ {
			for s := 0; s < g.spines; s++ {
				for c := 0; c < g.spines; c++ {
					fn(g.laneUpSC(p, s, c))
					fn(g.laneDownCS(p, s, c))
				}
			}
		}
		return
	}
	for grp := 0; grp < g.groups; grp++ {
		for a := 0; a < g.routers; a++ {
			for b := 0; b < g.routers; b++ {
				if a != b {
					fn(g.laneLocal(grp, a, b))
				}
			}
		}
	}
	for g1 := 0; g1 < g.groups; g1++ {
		for g2 := 0; g2 < g.groups; g2++ {
			if g1 == g2 {
				continue
			}
			for j := 0; j < g.glinks; j++ {
				fn(g.laneGlobal(g1, g2, j))
			}
		}
	}
}

// bfsDist computes shortest switch-hop distances from switch `from` over
// the full lane adjacency — the flat reference the routed walk is checked
// against.
func (g *graph) bfsDist(from int) []int {
	n := g.switchCount()
	adj := make([][]int, n)
	g.eachEdge(func(idx int) {
		a, b := g.laneEnds(idx)
		adj[a] = append(adj[a], b)
	})
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// checkRoute walks src→dst without booking and validates connectivity, the
// shortest-path bound, and the deadlock-freedom rule of the topology. It
// returns the hop lanes for further assertions.
func checkRoute(t *testing.T, n *Net, src, dst int, key uint64) []int {
	t.Helper()
	g := n.g
	var hops [maxHops]int
	nh, _, _ := g.walk(src, dst, key, 0, 0, 4096, n.OneWay(), &hops, false)

	// Connectivity: consecutive hops chain from src's switch to dst's.
	at := g.switchOf(src)
	for i := 0; i < nh; i++ {
		from, to := g.laneEnds(hops[i])
		if from != at {
			t.Fatalf("hop %d of %d->%d starts at switch %d, want %d", i, src, dst, from, at)
		}
		at = to
	}
	if at != g.switchOf(dst) {
		t.Fatalf("route %d->%d ends at switch %d, want %d", src, dst, at, g.switchOf(dst))
	}

	// Shortest-path tier bound: a fat-tree route is exactly the BFS
	// distance; a dragonfly minimal route may pay up to the two optional
	// local hops over it (anchor mismatch) but never beats it and never
	// exceeds the l-g-l bound of 3.
	dist := g.bfsDist(g.switchOf(src))[g.switchOf(dst)]
	if g.kind == gFatTree3 {
		if nh != dist {
			t.Fatalf("route %d->%d took %d hops, BFS distance %d", src, dst, nh, dist)
		}
	} else {
		if nh < dist || nh > 3 {
			t.Fatalf("route %d->%d took %d hops, BFS distance %d (bound 3)", src, dst, nh, dist)
		}
	}

	// Deadlock rules. Fat tree: tiers strictly ascend to a peak then
	// strictly descend (up/down routing, no valley). Dragonfly: at most
	// one global hop, locals only adjacent to it (l-g-l).
	if g.kind == gFatTree3 {
		peaked := false
		for i := 0; i < nh; i++ {
			from, to := g.laneEnds(hops[i])
			if g.tier(to) > g.tier(from) {
				if peaked {
					t.Fatalf("route %d->%d turns back up at hop %d", src, dst, i)
				}
			} else {
				peaked = true
			}
		}
	} else {
		globals := 0
		for i := 0; i < nh; i++ {
			if hops[i] >= g.global {
				globals++
				if globals > 1 {
					t.Fatalf("route %d->%d uses %d global hops", src, dst, globals)
				}
			} else if globals == 0 && i > 0 {
				t.Fatalf("route %d->%d takes two local hops before the global", src, dst)
			}
		}
		sg, dg := g.switchOf(src)/g.routers, g.switchOf(dst)/g.routers
		if sg != dg && globals != 1 {
			t.Fatalf("cross-group route %d->%d uses %d global hops, want 1", src, dst, globals)
		}
	}

	// Static selection is a pure function of (src, dst, key): a second
	// walk — even after arbitrary bookings — must repeat the same lanes.
	if g.mode == RouteStatic {
		var again [maxHops]int
		nh2, _, _ := g.walk(src, dst, key, 55*sim.Microsecond, 60*sim.Microsecond, 1<<20, n.OneWay(), &again, false)
		if nh2 != nh || again != hops {
			t.Fatalf("static route %d->%d not pure: %v vs %v", src, dst, hops[:nh], again[:nh2])
		}
	}
	return hops[:nh]
}

func TestThreeTierShape(t *testing.T) {
	n := threeTier(16, 2, 2, RouteStatic) // 8 leaves, 4 pods, 2 spines/pod, 2 cores
	g := n.g
	if g.leaves != 8 || g.pods != 4 || g.spines != 2 {
		t.Fatalf("shape: leaves=%d pods=%d spines=%d", g.leaves, g.pods, g.spines)
	}
	if want := 2*8*2 + 2*4*2*2; len(g.lanes) != want {
		t.Fatalf("lanes: %d, want %d", len(g.lanes), want)
	}
	if !n.Routed() || n.Planes() != 2 {
		t.Fatalf("Routed=%v Planes=%d", n.Routed(), n.Planes())
	}
	if n.SwitchOf(5) != 2 || n.CrossSwitch(0, 1) || !n.CrossSwitch(1, 2) {
		t.Fatalf("switch assignment wrong")
	}
	// Every distinct lane index is in range and unique.
	seen := map[int]bool{}
	g.eachEdge(func(idx int) {
		if idx < 0 || idx >= len(g.lanes) || seen[idx] {
			t.Fatalf("lane index %d out of range or duplicated", idx)
		}
		seen[idx] = true
	})
	if len(seen) != len(g.lanes) {
		t.Fatalf("enumerated %d lanes, slab has %d", len(seen), len(g.lanes))
	}
}

func TestDragonflyShape(t *testing.T) {
	n := dragonfly(3, 4, 2, 2, RouteStatic)
	g := n.g
	if want := 3*4*4 + 3*3*2; len(g.lanes) != want {
		t.Fatalf("lanes: %d, want %d", len(g.lanes), want)
	}
	if n.Planes() != 2 {
		t.Fatalf("Planes=%d, want 2", n.Planes())
	}
	if n.SwitchOf(9) != 4 || n.CrossSwitch(8, 9) || !n.CrossSwitch(7, 8) {
		t.Fatalf("router assignment wrong")
	}
}

func TestRouteAllPairs(t *testing.T) {
	nets := map[string]*Net{
		"tree-static":    threeTier(16, 2, 2, RouteStatic),
		"tree-adaptive":  threeTier(16, 2, 2, RouteAdaptive),
		"tree-narrow":    threeTier(6, 1, 3, RouteStatic),
		"df-static":      dragonfly(3, 4, 2, 2, RouteStatic),
		"df-adaptive":    dragonfly(3, 4, 2, 2, RouteAdaptive),
		"df-single-link": dragonfly(2, 3, 1, 1, RouteStatic),
	}
	for name, n := range nets {
		t.Run(name, func(t *testing.T) {
			nodes := n.g.switchCount() // any upper bound on node count works
			if n.g.kind == gDragonfly {
				nodes = n.g.groups * n.g.routers * n.g.nodesPer
			} else {
				nodes = n.g.leaves * n.g.nodesPer
			}
			for src := 0; src < nodes; src++ {
				for dst := 0; dst < nodes; dst++ {
					for key := uint64(0); key < 3; key++ {
						checkRoute(t, n, src, dst, key*0x1234567+11)
					}
				}
			}
		})
	}
}

// TestBookPathRecurrence pins the per-hop charge: on an idle fabric a
// cross-pod transfer's last byte pays one trunk serialization (cut-through
// pipelining overlaps the rest) plus 4 hop latencies on top of the
// incoming (first, last) — exactly the legacy trunk recurrence, per hop.
func TestBookPathRecurrence(t *testing.T) {
	n := threeTier(16, 2, 2, RouteStatic)
	wire := int64(3000) // 1µs at testRate
	hopLat := n.OneWay()
	xfer := sim.TransferTime(wire, testRate)
	_, last := n.BookPath(0, 15, 99, 10*sim.Microsecond, 10*sim.Microsecond, wire, hopLat)
	want := 10*sim.Microsecond + xfer + 4*hopLat
	if last != want {
		t.Fatalf("cross-pod last = %v, want %v", last, want)
	}
	// Same-leaf pairs never touch the trunks.
	f2, l2 := n.BookPath(0, 1, 99, sim.Microsecond, 2*sim.Microsecond, wire, hopLat)
	if f2 != sim.Microsecond || l2 != 2*sim.Microsecond {
		t.Fatalf("same-leaf path charged trunks: %v %v", f2, l2)
	}
}

// TestAdaptiveSpreadsLoad books a burst of same-flow-key-free transfers
// between the same leaf pair and checks adaptive selection spreads them
// over both spine planes while static keeps each key pinned.
func TestAdaptiveSpreadsLoad(t *testing.T) {
	n := threeTier(8, 2, 2, RouteAdaptive)
	g := n.g
	wire := int64(1 << 20)
	for i := 0; i < 8; i++ {
		n.BookPath(0, 2, uint64(i), 0, 0, wire, n.OneWay())
	}
	up0 := g.lanes[g.laneUpLS(0, 0)].Items()
	up1 := g.lanes[g.laneUpLS(0, 1)].Items()
	if up0 != 4 || up1 != 4 {
		t.Fatalf("adaptive spread %d/%d over the two spine uplinks, want 4/4", up0, up1)
	}
}

// TestAdaptiveRateAwareTieBreak is the Lane.SetRate × adaptive regression:
// two candidate lanes with identical FreeAt frontiers, one degraded via
// SetRate. Its booked backlog drains at the old speed — FreeAt alone
// cannot tell them apart — but the rate-aware finish metric must send
// every new booking to the healthy lane.
func TestAdaptiveRateAwareTieBreak(t *testing.T) {
	wire := int64(1 << 20)
	for key := uint64(0); key < 16; key++ {
		n := threeTier(8, 2, 2, RouteAdaptive)
		g := n.g
		// Equal backlog on both spine-0/spine-1 uplinks of leaf 0: the
		// FreeAt frontiers tie exactly, so a FreeAt-only metric would
		// fall through to the hashed tie-break and send about half the
		// keys to the degraded lane.
		g.lanes[g.laneUpLS(0, 0)].Send(0, wire, 0)
		g.lanes[g.laneUpLS(0, 1)].Send(0, wire, 0)
		if g.lanes[g.laneUpLS(0, 0)].FreeAt() != g.lanes[g.laneUpLS(0, 1)].FreeAt() {
			t.Fatalf("setup: FreeAt frontiers differ")
		}
		// Degrade plane 0 after the backlog is booked: SetRate keeps the
		// booked departure times, so FreeAt still ties — only the rate
		// differs.
		n.DegradePlane(0, 0.25)
		n.BookPath(0, 2, key, 0, 0, wire, n.OneWay())
		if got := g.lanes[g.laneUpLS(0, 0)].Items(); got != 1 {
			t.Fatalf("key %d: degraded lane won the tie (items=%d, want the setup booking only)", key, got)
		}
		// Restore: the plane competes again at full rate.
		n.RestorePlane(0)
		if g.lanes[g.laneUpLS(0, 0)].Rate != testRate {
			t.Fatalf("RestorePlane left rate %g", g.lanes[g.laneUpLS(0, 0)].Rate)
		}
	}
}

func TestDegradePlaneScopes(t *testing.T) {
	n := threeTier(16, 2, 2, RouteStatic)
	g := n.g
	n.DegradePlane(1, 0.5)
	if r := g.lanes[g.laneUpLS(3, 1)].Rate; r != testRate/2 {
		t.Fatalf("plane-1 leaf uplink rate %g, want %g", r, testRate/2)
	}
	if r := g.lanes[g.laneUpLS(3, 0)].Rate; r != testRate {
		t.Fatalf("plane-0 leaf uplink touched: %g", r)
	}
	if r := g.lanes[g.laneUpSC(2, 1, 0)].Rate; r != testRate/2 {
		t.Fatalf("spine-1 core uplink rate %g", r)
	}
	if r := g.lanes[g.laneUpSC(2, 0, 1)].Rate; r != testRate/2 {
		t.Fatalf("core-1 feed lane rate %g", r)
	}
	if r := g.lanes[g.laneUpSC(2, 0, 0)].Rate; r != testRate {
		t.Fatalf("plane-0 core lane touched: %g", r)
	}
	n.RestorePlane(1)
	if r := g.lanes[g.laneUpSC(2, 1, 0)].Rate; r != testRate {
		t.Fatalf("restore missed a lane: %g", r)
	}

	// Flat and legacy fabrics have no planes: both calls are no-ops.
	flat := NewSingleSwitch(sim.Microsecond)
	flat.DegradePlane(0, 0.5)
	flat.RestorePlane(0)
	if flat.Planes() != 0 || flat.Routed() {
		t.Fatalf("flat fabric reports planes")
	}
	legacy := NewFatTree(sim.Microsecond, 8, 2, testRate)
	legacy.DegradePlane(0, 0.5)
	if legacy.Uplink(0).Rate != testRate {
		t.Fatalf("legacy trunk touched by DegradePlane")
	}
}

func TestPlaneStats(t *testing.T) {
	n := dragonfly(2, 2, 1, 2, RouteStatic)
	g := n.g
	wire := int64(4096)
	for i := 0; i < 6; i++ {
		n.BookPath(0, 3, uint64(i)*13+1, 0, 0, wire, n.OneWay())
	}
	i0, b0 := n.PlaneStats(0)
	i1, b1 := n.PlaneStats(1)
	var globalItems int64
	for g1 := 0; g1 < 2; g1++ {
		for g2 := 0; g2 < 2; g2++ {
			if g1 == g2 {
				continue
			}
			for j := 0; j < 2; j++ {
				globalItems += g.lanes[g.laneGlobal(g1, g2, j)].Items()
			}
		}
	}
	if i0+i1 != globalItems || i0+i1 != 6 {
		t.Fatalf("plane stats %d+%d, global bookings %d", i0, i1, globalItems)
	}
	if b0+b1 != 6*wire {
		t.Fatalf("plane bytes %d+%d, want %d", b0, b1, 6*wire)
	}
}

// FuzzRouteTable drives random topologies and flow triples through the
// walk and validates each against the flat BFS reference: the route
// reaches the destination, meets the shortest-path tier bound, static
// selection is pure, and no up/down (or l-g-l) rule is violated.
func FuzzRouteTable(f *testing.F) {
	f.Add(uint64(1), false, uint8(2), uint8(2), uint8(2), uint8(2), uint16(0), uint16(5), uint64(42))
	f.Add(uint64(2), true, uint8(3), uint8(4), uint8(2), uint8(2), uint16(1), uint16(20), uint64(7))
	f.Add(uint64(3), false, uint8(1), uint8(3), uint8(1), uint8(1), uint16(2), uint16(2), uint64(0))
	f.Add(uint64(4), true, uint8(4), uint8(1), uint8(3), uint8(4), uint16(9), uint16(0), uint64(99))
	f.Fuzz(func(t *testing.T, seed uint64, df bool, a, b, c, d uint8, src, dst uint16, key uint64) {
		mode := RouteStatic
		if seed&1 == 1 {
			mode = RouteAdaptive
		}
		var n *Net
		var nodes int
		if df {
			groups := int(a%4) + 1
			routers := int(b%4) + 1
			npr := int(c%3) + 1
			glinks := int(d%4) + 1
			n = NewDragonfly(sim.Microsecond, groups, routers, npr, glinks, testRate, mode, seed)
			nodes = groups * routers * npr
		} else {
			npl := int(a%3) + 1
			spines := int(b%4) + 1
			nodes = int(c)%24 + 2
			n = NewThreeTier(sim.Microsecond, nodes, npl, spines, testRate, mode, seed)
		}
		s, e := int(src)%nodes, int(dst)%nodes
		hops := checkRoute(t, n, s, e, key)
		// Booking the route must not break later checks of the same
		// triple (adaptive may legally re-route; static must not).
		n.BookPath(s, e, key, 0, 0, 1<<16, n.OneWay())
		checkRoute(t, n, e, s, key^0xdead)
		_ = hops
	})
}
