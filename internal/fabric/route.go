// Switch-graph fabrics: three-tier fat trees and dragonfly groups with
// per-switch forwarding tables and deterministic path selection.
//
// The legacy two-level net (NewFatTree) books a single up/down trunk pair
// per leaf with no routing at all. The routed fabrics below model every
// inter-switch cable as its own Lane and pick among parallel candidates at
// each switch — statically (D-mod-K hashing of the flow key) or adaptively
// (least modeled finish time at booking, with seeded tie-breaks). Either
// way a run replays bit-identically: static selection is a pure function of
// the flow key, and adaptive selection reads only lane state that the
// deterministic event order already fixes.
package fabric

import "ib12x/internal/sim"

// Routing selects the path-selection discipline of a routed fabric.
type Routing int

const (
	// RouteStatic picks every candidate lane by a D-mod-K hash of the
	// flow key — oblivious, pure, independent of fabric load.
	RouteStatic Routing = iota
	// RouteAdaptive picks the candidate lane with the earliest modeled
	// finish time at booking (rate-aware, see laneFinish), breaking ties
	// deterministically from a seeded starting offset.
	RouteAdaptive
)

func (r Routing) String() string {
	if r == RouteAdaptive {
		return "adaptive"
	}
	return "static"
}

// maxHops bounds any minimal route in either topology: leaf→spine→core→
// spine→leaf is 4 lanes, local→global→local is 3.
const maxHops = 4

const (
	gFatTree3 = iota
	gDragonfly
)

// graph holds the switch graph of a routed fabric. Lanes live in one slab
// indexed by closed-form functions of the topology coordinates; a "plane"
// (spine index in a fat tree, global-link index in a dragonfly) groups the
// lanes that a single physical failure domain would take down together.
type graph struct {
	kind     int
	mode     Routing
	seed     uint64
	nodesPer int // nodes per leaf switch / per dragonfly router

	// three-tier fat tree: `leaves` leaf switches grouped `spines` to a
	// pod, each pod with `spines` spine switches, and `spines` core
	// switches connecting every spine of every pod (full bipartite).
	spines int
	pods   int
	leaves int

	// dragonfly: `groups` groups of `routers` routers each, all-to-all
	// local links inside a group and `glinks` parallel global lanes per
	// ordered group pair.
	groups  int
	routers int
	glinks  int

	lanes []Lane
	rates []float64 // built rate per lane (DegradePlane baseline)

	// slab bases
	upLS, downSL, upSC, downCS int // fat tree
	local, global              int // dragonfly
}

// NewThreeTier builds a three-tier fat tree: nodes are grouped nodesPerLeaf
// to a leaf, leaves grouped spinesPerPod to a pod served by spinesPerPod
// spine switches, and spinesPerPod core switches connect the pods. Every
// inter-switch lane runs at trunkRate bytes/s, so the leaf oversubscription
// ratio is nodesPerLeaf·linkRate : spinesPerPod·trunkRate.
func NewThreeTier(latency sim.Time, nodes, nodesPerLeaf, spinesPerPod int, trunkRate float64, mode Routing, seed uint64) *Net {
	if nodesPerLeaf < 1 || spinesPerPod < 1 {
		panic("fabric: three-tier needs nodesPerLeaf >= 1 and spinesPerPod >= 1")
	}
	leaves := (nodes + nodesPerLeaf - 1) / nodesPerLeaf
	if leaves < 1 {
		leaves = 1
	}
	pods := (leaves + spinesPerPod - 1) / spinesPerPod
	g := &graph{
		kind:     gFatTree3,
		mode:     mode,
		seed:     seed,
		nodesPer: nodesPerLeaf,
		spines:   spinesPerPod,
		pods:     pods,
		leaves:   leaves,
	}
	s := spinesPerPod
	g.upLS = 0
	g.downSL = leaves * s
	g.upSC = 2 * leaves * s
	g.downCS = 2*leaves*s + pods*s*s
	g.alloc(2*leaves*s+2*pods*s*s, trunkRate)
	return &Net{Latency: latency, g: g}
}

// NewDragonfly builds a dragonfly: groups × routersPerGroup routers with
// nodesPerRouter nodes each, all-to-all local links inside a group, and
// globalLinks parallel global lanes per ordered group pair. Global lane j
// between groups (g1,g2) is anchored at router (g2+j)%R in g1 and router
// (g1+j)%R in g2, so the global channels of a group spread across its
// routers. All lanes run at trunkRate bytes/s.
func NewDragonfly(latency sim.Time, groups, routersPerGroup, nodesPerRouter, globalLinks int, trunkRate float64, mode Routing, seed uint64) *Net {
	if groups < 1 || routersPerGroup < 1 || nodesPerRouter < 1 || globalLinks < 1 {
		panic("fabric: dragonfly needs groups, routersPerGroup, nodesPerRouter, globalLinks >= 1")
	}
	g := &graph{
		kind:     gDragonfly,
		mode:     mode,
		seed:     seed,
		nodesPer: nodesPerRouter,
		groups:   groups,
		routers:  routersPerGroup,
		glinks:   globalLinks,
	}
	r := routersPerGroup
	g.local = 0
	g.global = groups * r * r
	g.alloc(groups*r*r+groups*groups*globalLinks, trunkRate)
	return &Net{Latency: latency, g: g}
}

func (g *graph) alloc(n int, rate float64) {
	if rate <= 0 {
		panic("fabric: routed fabric needs trunkRate > 0")
	}
	g.lanes = make([]Lane, n)
	g.rates = make([]float64, n)
	for i := range g.lanes {
		g.lanes[i].Rate = rate
		g.rates[i] = rate
	}
}

// Lane index helpers. Coordinates are never bounds-checked here; callers
// derive them from node ids already validated by the constructor shape.

func (g *graph) laneUpLS(leaf, s int) int   { return g.upLS + leaf*g.spines + s }
func (g *graph) laneDownSL(leaf, s int) int { return g.downSL + leaf*g.spines + s }

func (g *graph) laneUpSC(pod, s, c int) int   { return g.upSC + (pod*g.spines+s)*g.spines + c }
func (g *graph) laneDownCS(pod, s, c int) int { return g.downCS + (pod*g.spines+s)*g.spines + c }

func (g *graph) laneLocal(grp, a, b int) int { return g.local + (grp*g.routers+a)*g.routers + b }
func (g *graph) laneGlobal(g1, g2, j int) int {
	return g.global + (g1*g.groups+g2)*g.glinks + j
}

// switchOf reports the first-hop switch of a node: its leaf in a fat tree,
// its router (globally numbered) in a dragonfly.
func (g *graph) switchOf(node int) int { return node / g.nodesPer }

// routeMix is the splitmix64 finalizer: a full-avalanche pure hash, the
// basis of both D-mod-K selection and adaptive tie-break offsets.
func routeMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// laneFinish is the adaptive metric: when the lane would finish serving
// `wire` bytes that become ready at `ready`. Charging the transfer at the
// lane's *current* rate — not just comparing FreeAt frontiers — is what
// keeps a DegradeLink'd trunk honest: after SetRate its booked backlog
// still drains at the old speed (so FreeAt alone can look identical to a
// healthy lane's), but the slower service it would give new bytes prices
// the degradation into every comparison.
func laneFinish(l *Lane, ready sim.Time, wire int64) sim.Time {
	s := l.freeAt
	if ready > s {
		s = ready
	}
	return s + sim.TransferTime(wire, l.Rate)
}

// chooseLane picks among ncand candidate lanes lanes[base+i*stride]. cp
// distinguishes the choice points of one route so a flow does not land on
// correlated indices at every tier.
func (g *graph) chooseLane(key uint64, cp, base, stride, ncand int, ready sim.Time, wire int64) int {
	if ncand <= 1 {
		return 0
	}
	h := routeMix(g.seed ^ key ^ (uint64(cp)+1)*0x9e3779b97f4a7c15)
	if g.mode == RouteStatic {
		return int(h % uint64(ncand))
	}
	// Adaptive: earliest modeled finish wins; scan from the hashed start
	// offset with strictly-less comparisons, so ties break toward a
	// seeded, key-dependent — but load-independent — candidate.
	start := int(h % uint64(ncand))
	best := start
	bestFin := laneFinish(&g.lanes[base+start*stride], ready, wire)
	for i := 1; i < ncand; i++ {
		c := start + i
		if c >= ncand {
			c -= ncand
		}
		fin := laneFinish(&g.lanes[base+c*stride], ready, wire)
		if fin < bestFin {
			best, bestFin = c, fin
		}
	}
	return best
}

// walk routes src→dst and, when book is true, charges each hop lane with
// the legacy per-hop recurrence (first = start+hopLat, last = leaves+hopLat
// after every Send). Hop lane indices are recorded into hops; the hop count
// and the updated (first, last) pair are returned. With book=false the walk
// only consults lane state (adaptive mode) without mutating it.
func (g *graph) walk(src, dst int, key uint64, first, last sim.Time, wire int64, hopLat sim.Time, hops *[maxHops]int, book bool) (int, sim.Time, sim.Time) {
	nh := 0
	take := func(idx int) {
		hops[nh] = idx
		nh++
		if book {
			s, e := g.lanes[idx].Send(first, wire, last)
			first, last = s+hopLat, e+hopLat
		}
	}
	switch g.kind {
	case gFatTree3:
		sl, dl := src/g.nodesPer, dst/g.nodesPer
		if sl == dl {
			return 0, first, last
		}
		sp, dp := sl/g.spines, dl/g.spines
		if sp == dp {
			// Up to a pod spine, straight down: 2 hops.
			s := g.chooseLane(key, 0, g.laneUpLS(sl, 0), 1, g.spines, first, wire)
			take(g.laneUpLS(sl, s))
			take(g.laneDownSL(dl, s))
			return nh, first, last
		}
		// Up/down through the core: each switch picks among its own
		// output lanes (leaf: which spine; spine: which core; core:
		// which spine of the destination pod), never turning back up.
		s1 := g.chooseLane(key, 0, g.laneUpLS(sl, 0), 1, g.spines, first, wire)
		take(g.laneUpLS(sl, s1))
		c := g.chooseLane(key, 1, g.laneUpSC(sp, s1, 0), 1, g.spines, first, wire)
		take(g.laneUpSC(sp, s1, c))
		s2 := g.chooseLane(key, 2, g.laneDownCS(dp, 0, c), g.spines, g.spines, first, wire)
		take(g.laneDownCS(dp, s2, c))
		take(g.laneDownSL(dl, s2))
		return nh, first, last
	default: // gDragonfly
		sr, dr := src/g.nodesPer, dst/g.nodesPer
		if sr == dr {
			return 0, first, last
		}
		sg, dg := sr/g.routers, dr/g.routers
		sl, dl := sr%g.routers, dr%g.routers
		if sg == dg {
			take(g.laneLocal(sg, sl, dl))
			return nh, first, last
		}
		// Minimal l-g-l: at most one local hop to the global lane's
		// source anchor, the global hop, one local hop from its
		// destination anchor — local→global→local order only, which is
		// the deadlock-free minimal pattern of Maglione-Mathey et al.
		j := g.chooseLane(key, 0, g.laneGlobal(sg, dg, 0), 1, g.glinks, first, wire)
		sa, da := (dg+j)%g.routers, (sg+j)%g.routers
		if sl != sa {
			take(g.laneLocal(sg, sl, sa))
		}
		take(g.laneGlobal(sg, dg, j))
		if da != dl {
			take(g.laneLocal(dg, da, dl))
		}
		return nh, first, last
	}
}

// Routed reports whether the fabric carries a switch graph (three-tier fat
// tree or dragonfly) rather than the flat / legacy two-level model.
func (n *Net) Routed() bool { return n.g != nil }

// SwitchOf reports a node's first-hop switch in a routed fabric.
func (n *Net) SwitchOf(node int) int {
	if n.g == nil {
		return 0
	}
	return n.g.switchOf(node)
}

// CrossSwitch reports whether two nodes attach to different switches of a
// routed fabric (false on flat and legacy fabrics, which keep CrossLeaf).
func (n *Net) CrossSwitch(a, b int) bool {
	return n.g != nil && n.g.switchOf(a) != n.g.switchOf(b)
}

// BookPath routes src→dst under the flow key and books every hop lane,
// applying the per-hop recurrence first=start+hopLat, last=leaves+hopLat
// after each Send — exactly the legacy trunk accounting, once per hop. It
// returns the delivered (first, last) pair at the destination's leaf port.
func (n *Net) BookPath(src, dst int, key uint64, first, last sim.Time, wire int64, hopLat sim.Time) (sim.Time, sim.Time) {
	var hops [maxHops]int
	_, f, l := n.g.walk(src, dst, key, first, last, wire, hopLat, &hops, true)
	return f, l
}

// Planes reports the number of fault planes of a routed fabric: spine
// indices in a three-tier tree (plane s = every up/down lane touching any
// pod's spine s or core s), global-link indices in a dragonfly (plane j =
// the j-th parallel global lane of every group pair). 0 on flat fabrics.
func (n *Net) Planes() int {
	g := n.g
	if g == nil {
		return 0
	}
	if g.kind == gFatTree3 {
		return g.spines
	}
	return g.glinks
}

// eachPlaneLane visits every lane index of a fault plane.
func (g *graph) eachPlaneLane(plane int, fn func(idx int)) {
	if g.kind == gFatTree3 {
		for leaf := 0; leaf < g.leaves; leaf++ {
			fn(g.laneUpLS(leaf, plane))
			fn(g.laneDownSL(leaf, plane))
		}
		for pod := 0; pod < g.pods; pod++ {
			for i := 0; i < g.spines; i++ {
				// Spine `plane` to every core, every spine to core `plane`.
				fn(g.laneUpSC(pod, plane, i))
				fn(g.laneDownCS(pod, plane, i))
				if i != plane {
					fn(g.laneUpSC(pod, i, plane))
					fn(g.laneDownCS(pod, i, plane))
				}
			}
		}
		return
	}
	for g1 := 0; g1 < g.groups; g1++ {
		for g2 := 0; g2 < g.groups; g2++ {
			if g1 != g2 {
				fn(g.laneGlobal(g1, g2, plane))
			}
		}
	}
}

// DegradePlane throttles every lane of a fault plane to factor × its built
// rate (the chaos TrunkDegrade fault). No-op on non-routed fabrics and
// out-of-range planes; factors outside (0, 1] are clamped into it.
func (n *Net) DegradePlane(plane int, factor float64) {
	g := n.g
	if g == nil || plane < 0 || plane >= n.Planes() {
		return
	}
	if factor <= 0 {
		factor = 0.01
	} else if factor > 1 {
		factor = 1
	}
	g.eachPlaneLane(plane, func(idx int) {
		g.lanes[idx].SetRate(g.rates[idx] * factor)
	})
}

// RestorePlane returns every lane of a fault plane to its built rate. No-op
// on non-routed fabrics and out-of-range planes.
func (n *Net) RestorePlane(plane int) {
	g := n.g
	if g == nil || plane < 0 || plane >= n.Planes() {
		return
	}
	g.eachPlaneLane(plane, func(idx int) {
		g.lanes[idx].SetRate(g.rates[idx])
	})
}

// PlaneStats sums bookings over a fault plane's lanes — the observability
// hook the adaptive-vs-degraded tests assert against.
func (n *Net) PlaneStats(plane int) (items, bytes int64) {
	g := n.g
	if g == nil || plane < 0 || plane >= n.Planes() {
		return 0, 0
	}
	g.eachPlaneLane(plane, func(idx int) {
		items += g.lanes[idx].items
		bytes += g.lanes[idx].bytes
	})
	return items, bytes
}
