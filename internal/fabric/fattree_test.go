package fabric

import (
	"testing"

	"ib12x/internal/sim"
)

func TestSingleSwitchLeafTopology(t *testing.T) {
	n := NewSingleSwitch(600 * sim.Nanosecond)
	if n.Leaf(0) != 0 || n.Leaf(7) != 0 {
		t.Error("single switch: every node on leaf 0")
	}
	if n.CrossLeaf(0, 7) {
		t.Error("single switch has no cross-leaf pairs")
	}
}

func TestFatTreeLeafAssignment(t *testing.T) {
	n := NewFatTree(600*sim.Nanosecond, 8, 4, 3e9)
	cases := []struct{ node, leaf int }{{0, 0}, {3, 0}, {4, 1}, {7, 1}}
	for _, c := range cases {
		if got := n.Leaf(c.node); got != c.leaf {
			t.Errorf("Leaf(%d) = %d, want %d", c.node, got, c.leaf)
		}
	}
	if n.CrossLeaf(0, 3) || !n.CrossLeaf(3, 4) {
		t.Error("cross-leaf classification wrong")
	}
}

func TestFatTreeZeroGroupIsSingleSwitch(t *testing.T) {
	n := NewFatTree(600*sim.Nanosecond, 8, 0, 3e9)
	if n.CrossLeaf(0, 7) {
		t.Error("nodesPerLeaf=0 must degrade to a single switch")
	}
}

func TestTrunkLanesIndependent(t *testing.T) {
	n := NewFatTree(600*sim.Nanosecond, 8, 2, 1e9)
	// Booking leaf 0's uplink leaves leaf 1's untouched.
	n.Uplink(0).Send(0, 10000, 0)
	if n.Uplink(1).FreeAt() != 0 {
		t.Error("trunks must be per-leaf")
	}
	if n.Uplink(0).FreeAt() != 10*sim.Microsecond {
		t.Errorf("uplink 0 freeAt = %v", n.Uplink(0).FreeAt())
	}
	if n.Downlink(0).FreeAt() != 0 {
		t.Error("up and down trunks are separate lanes")
	}
}
