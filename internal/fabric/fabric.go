// Package fabric models the InfiniBand wire: full-duplex link lanes with
// cut-through forwarding through a single switch.
//
// A Lane is one direction of one link. It is not a plain FIFO server: the
// source side may be fed by a DMA engine slower than the wire (the lane then
// idles between packets of the same transfer), and the sink side of a lane
// serializes fan-in from several senders. Both behaviours matter for the
// bandwidth asymptotes in the paper's Figures 5-7.
package fabric

import "ib12x/internal/sim"

// Lane is one direction of a link, serving wire bytes at a fixed rate.
// The zero value is unusable; set Rate.
type Lane struct {
	Rate float64 // bytes/s of raw wire capacity

	freeAt sim.Time
	items  int64
	bytes  int64
	busy   sim.Time
}

// Send books an outbound transfer whose first packet is staged at `ready`
// and whose source cannot finish staging before `srcDone`. wireBytes counts
// payload plus per-packet headers. It returns when the transfer's first byte
// enters the lane and when its last byte leaves.
//
// The lane is occupied only for the wire bytes themselves: packets from a
// slow source leave gaps that packets of other transfers interleave into
// (cut-through, per-packet arbitration). The transfer's own last byte,
// however, cannot leave before its source has staged it, so the returned
// leave time also waits for srcDone.
func (l *Lane) Send(ready sim.Time, wireBytes int64, srcDone sim.Time) (start, leaves sim.Time) {
	start = ready
	if l.freeAt > start {
		start = l.freeAt
	}
	d := sim.TransferTime(wireBytes, l.Rate)
	end := start + d
	l.busy += d
	l.freeAt = end
	l.items++
	l.bytes += wireBytes
	if srcDone > end {
		return start, srcDone
	}
	return start, end
}

// Recv books an inbound transfer whose first byte arrives at `first` and
// whose last byte arrives at `last` when uncontended, and returns when the
// last byte is actually through the lane.
//
// Traffic from a single upstream path is already paced at or below the lane
// rate, so it passes through with no added delay. Under fan-in from several
// senders the first-byte arrivals collide and the backlog frontier pushes
// delivery out: delivered = max(last, max(frontier, first) + wireTime).
func (l *Lane) Recv(first, last sim.Time, wireBytes int64) (delivered sim.Time) {
	d := sim.TransferTime(wireBytes, l.Rate)
	start := first
	if l.freeAt > start {
		start = l.freeAt
	}
	delivered = start + d
	if last > delivered {
		delivered = last
	}
	l.busy += d
	l.freeAt = start + d
	l.items++
	l.bytes += wireBytes
	return delivered
}

// Preempt books a high-priority transfer (an RC acknowledgment) that
// interleaves between the packets of queued bulk transfers instead of
// waiting behind them: it departs immediately, and the backlog is pushed
// back by its wire time so capacity accounting stays exact.
func (l *Lane) Preempt(at sim.Time, wireBytes int64) (leaves sim.Time) {
	d := sim.TransferTime(wireBytes, l.Rate)
	leaves = at + d
	if l.freeAt < at {
		l.freeAt = at
	}
	l.freeAt += d
	l.busy += d
	l.items++
	l.bytes += wireBytes
	return leaves
}

// SetRate changes the lane's service rate from now on. Transfers already
// booked keep their departure times — the backlog drains at the old speed;
// only new bookings see the new rate. Non-positive rates are ignored.
func (l *Lane) SetRate(r float64) {
	if r > 0 {
		l.Rate = r
	}
}

// FreeAt reports when the lane next becomes idle.
func (l *Lane) FreeAt() sim.Time { return l.freeAt }

// Items reports the number of transfers booked.
func (l *Lane) Items() int64 { return l.items }

// Bytes reports total wire bytes booked.
func (l *Lane) Bytes() int64 { return l.bytes }

// Busy reports accumulated lane occupancy.
func (l *Lane) Busy() sim.Time { return l.busy }

// Net is the switched fabric. A single cut-through switch gives every pair
// a constant one-hop latency; the optional two-level fat tree adds leaf
// switches with shared trunk lanes to a spine, so cross-leaf traffic pays
// two extra hops and contends on the (possibly oversubscribed) trunks.
type Net struct {
	// Latency is the per-hop propagation plus switch cut-through time.
	Latency sim.Time

	nodesPerLeaf int
	up, down     []Lane // per-leaf trunk lanes toward/from the spine

	// g, when non-nil, replaces the two-level model with a routed switch
	// graph (three-tier fat tree or dragonfly — see route.go).
	g *graph
}

// NewSingleSwitch builds the flat fabric of the paper's testbed.
func NewSingleSwitch(latency sim.Time) *Net { return &Net{Latency: latency} }

// NewFatTree builds a two-level fabric: nodes are grouped nodesPerLeaf to a
// leaf switch; each leaf connects to the spine by one trunk of trunkRate
// bytes/s per direction. With trunkRate = linkRate the tree is
// non-blocking 1:1 only for a single active node per leaf; lower rates
// model oversubscription.
func NewFatTree(latency sim.Time, nodes, nodesPerLeaf int, trunkRate float64) *Net {
	if nodesPerLeaf <= 0 {
		return NewSingleSwitch(latency)
	}
	leaves := (nodes + nodesPerLeaf - 1) / nodesPerLeaf
	n := &Net{Latency: latency, nodesPerLeaf: nodesPerLeaf}
	n.up = make([]Lane, leaves)
	n.down = make([]Lane, leaves)
	for i := range n.up {
		n.up[i].Rate = trunkRate
		n.down[i].Rate = trunkRate
	}
	return n
}

// OneWay reports the per-hop wire latency.
func (n *Net) OneWay() sim.Time { return n.Latency }

// Leaf reports the leaf switch of a node (0 in a single-switch fabric).
func (n *Net) Leaf(node int) int {
	if n.nodesPerLeaf == 0 {
		return 0
	}
	return node / n.nodesPerLeaf
}

// CrossLeaf reports whether two nodes sit under different leaf switches.
func (n *Net) CrossLeaf(a, b int) bool {
	return n.nodesPerLeaf > 0 && n.Leaf(a) != n.Leaf(b)
}

// Uplink returns the leaf's trunk lane toward the spine.
func (n *Net) Uplink(leaf int) *Lane { return &n.up[leaf] }

// Downlink returns the leaf's trunk lane from the spine.
func (n *Net) Downlink(leaf int) *Lane { return &n.down[leaf] }
