package fabric

import (
	"testing"

	"ib12x/internal/sim"
)

func TestLaneSendUncontended(t *testing.T) {
	l := Lane{Rate: 1e9} // 1 byte/ns
	start, leaves := l.Send(100*sim.Nanosecond, 1000, 0)
	if start != 100*sim.Nanosecond || leaves != 1100*sim.Nanosecond {
		t.Errorf("window = [%v, %v], want [100ns, 1.1us]", start, leaves)
	}
}

func TestLaneSendQueuesBehindBacklog(t *testing.T) {
	l := Lane{Rate: 1e9}
	l.Send(0, 10000, 0) // busy until 10us
	start, leaves := l.Send(1*sim.Microsecond, 1000, 0)
	if start != 10*sim.Microsecond || leaves != 11*sim.Microsecond {
		t.Errorf("window = [%v, %v], want [10us, 11us]", start, leaves)
	}
}

func TestLaneSendStretchedBySlowSource(t *testing.T) {
	l := Lane{Rate: 1e9}
	// Wire time is 1us but the engine doesn't finish staging until 5us:
	// the last byte leaves at 5us, yet the lane itself is booked for only
	// the wire bytes so other senders can interleave into the gaps.
	_, leaves := l.Send(0, 1000, 5*sim.Microsecond)
	if leaves != 5*sim.Microsecond {
		t.Errorf("leaves = %v, want 5us", leaves)
	}
	if l.FreeAt() != 1*sim.Microsecond {
		t.Errorf("freeAt = %v, want 1us (lane not held by slow source)", l.FreeAt())
	}
}

func TestLaneRecvUncontendedKeepsArrival(t *testing.T) {
	l := Lane{Rate: 1e9}
	delivered := l.Recv(9*sim.Microsecond, 10*sim.Microsecond, 1000)
	if delivered != 10*sim.Microsecond {
		t.Errorf("delivered = %v, want arrival time 10us", delivered)
	}
}

func TestLaneRecvSerializesFanIn(t *testing.T) {
	l := Lane{Rate: 1e9}
	// Two 1000-byte transfers whose first bytes arrive simultaneously from
	// two senders: the second is delayed by one wire time.
	d1 := l.Recv(9*sim.Microsecond, 10*sim.Microsecond, 1000)
	d2 := l.Recv(9*sim.Microsecond, 10*sim.Microsecond, 1000)
	if d1 != 10*sim.Microsecond {
		t.Errorf("first delivered = %v, want 10us", d1)
	}
	if d2 != 11*sim.Microsecond {
		t.Errorf("second delivered = %v, want 11us", d2)
	}
}

func TestLaneRecvSamePathNoDoubleSerialization(t *testing.T) {
	// Back-to-back transfers over one path are already paced by the TX
	// lane; the RX lane must not add delay on top.
	l := Lane{Rate: 1e9}
	d1 := l.Recv(0, 1*sim.Microsecond, 1000)
	d2 := l.Recv(1*sim.Microsecond, 2*sim.Microsecond, 1000)
	if d1 != 1*sim.Microsecond || d2 != 2*sim.Microsecond {
		t.Errorf("delivered = %v, %v; want 1us, 2us", d1, d2)
	}
}

func TestLaneStats(t *testing.T) {
	l := Lane{Rate: 1e9}
	l.Send(0, 500, 0)
	l.Recv(4700*sim.Nanosecond, 5*sim.Microsecond, 300)
	if l.Items() != 2 || l.Bytes() != 800 {
		t.Errorf("Items=%d Bytes=%d, want 2,800", l.Items(), l.Bytes())
	}
	if l.Busy() != 800*sim.Nanosecond {
		t.Errorf("Busy = %v, want 800ns", l.Busy())
	}
}

func TestNetOneWay(t *testing.T) {
	n := &Net{Latency: 600 * sim.Nanosecond}
	if n.OneWay() != 600*sim.Nanosecond {
		t.Errorf("OneWay = %v, want 600ns", n.OneWay())
	}
}
