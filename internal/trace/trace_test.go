package trace

import (
	"strings"
	"testing"

	"ib12x/internal/sim"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindEager, 0, 1, 10, 0) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be empty")
	}
}

func TestRecordAndTimeline(t *testing.T) {
	r := NewRecorder(0)
	r.Record(2*sim.Microsecond, KindCTS, 1, 0, 64, -1)
	r.Record(1*sim.Microsecond, KindRTS, 0, 1, 4096, -1)
	r.Record(3*sim.Microsecond, KindStripeWrite, 0, 1, 1024, 2)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != KindRTS || evs[1].Kind != KindCTS || evs[2].Kind != KindStripeWrite {
		t.Errorf("events not time-sorted: %+v", evs)
	}
	tl := r.Timeline(0)
	if !strings.Contains(tl, "RTS") || !strings.Contains(tl, "WRITE") || !strings.Contains(tl, "r2") {
		t.Errorf("timeline missing content:\n%s", tl)
	}
	if lines := strings.Count(tl, "\n"); lines != 3 {
		t.Errorf("timeline lines = %d", lines)
	}
	if short := r.Timeline(1); strings.Count(short, "\n") != 1 {
		t.Error("Timeline(max) did not truncate")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), KindEager, 0, 1, 1, 0)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want capped at 2", r.Len())
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(0)
	r.Record(0, KindEager, 0, 1, 100, 0)
	r.Record(1, KindEager, 1, 0, 200, 1)
	r.Record(2, KindFIN, 0, 1, 0, -1)
	s := r.Summary()
	if !strings.Contains(s, "EAGER") || !strings.Contains(s, "300 bytes") {
		t.Errorf("summary wrong:\n%s", s)
	}
	if !strings.Contains(s, "FIN") {
		t.Errorf("summary missing FIN:\n%s", s)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindEager; k <= KindRMA; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}
