// Package trace provides run introspection: a protocol event recorder that
// the ADI layer feeds when attached, and a resource report summarising
// hardware utilization after a run (engines, lanes, scheduler, GX+ bus,
// protocol counters).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ib12x/internal/sim"
)

// Kind classifies a protocol event.
type Kind int

// Protocol event kinds, in rough lifecycle order.
const (
	KindEager Kind = iota
	KindRTS
	KindCTS
	KindStripeWrite
	KindStripeRead
	KindFIN
	KindDeliver
	KindShmem
	KindRMA
	// KindRetransmit records a work request rerouted onto a surviving rail
	// after its original rail died mid-flight (chaos harness); Rail is the
	// rail the WR was flushed from.
	KindRetransmit
	// Rail-health transitions of the self-healing reliability layer
	// (adi.ReliabilityConfig): a rail turning suspect on a blown completion
	// deadline, entering quarantine, being probed, and returning to
	// service. Rail is the rail index, Peer the connection's far rank.
	KindRailSuspect
	KindRailQuarantine
	KindRailProbe
	KindRailReintegrate
	// Pin-down registration cache (internal/regcache): a registration miss
	// that pinned new pages (Bytes is the region size), and the evictions it
	// forced (Bytes is the total pinned span dropped). Hits are silent — the
	// warm path records nothing.
	KindRegMiss
	KindRegEvict

	// Lane-decomposed collectives (internal/mpi lanes): a bulk transfer
	// pinned to its lane's rail instead of policy-planned stripes (Rail is
	// the steered rail — it differs from the lane while the lane's home
	// rail is quarantined).
	KindLanePin

	// RDMA-write eager ring (adi.EagerRDMAWrite): the ring cursor wrapping
	// back to slot zero, a header-cache hit shipping the compressed wire
	// header, and an eager message falling back to the send/recv channel
	// (ring full, oversized payload, or ring torn down on a dead rail).
	KindRingWrap
	KindHdrHit
	KindEagerFallback

	// Integrity layer (mpi.Config.Integrity; DESIGN.md §17): a failed
	// ICRC-style check NACKing a payload work request back to the sender,
	// a corrupted payload delivered to the application with verification
	// off (the audit trail of silent escapes), and a ring slot re-polled
	// after the torn-write guard caught an inconsistent consistency marker.
	KindIntegrityNack
	KindCorruptDeliver
	KindTornRepoll
)

func (k Kind) String() string {
	switch k {
	case KindEager:
		return "EAGER"
	case KindRTS:
		return "RTS"
	case KindCTS:
		return "CTS"
	case KindStripeWrite:
		return "WRITE"
	case KindStripeRead:
		return "READ"
	case KindFIN:
		return "FIN"
	case KindDeliver:
		return "DELIVER"
	case KindShmem:
		return "SHMEM"
	case KindRMA:
		return "RMA"
	case KindRetransmit:
		return "RETRANS"
	case KindRailSuspect:
		return "SUSPECT"
	case KindRailQuarantine:
		return "QUARANTINE"
	case KindRailProbe:
		return "PROBE"
	case KindRailReintegrate:
		return "REINTEGRATE"
	case KindRegMiss:
		return "REGMISS"
	case KindRegEvict:
		return "REGEVICT"
	case KindLanePin:
		return "LANEPIN"
	case KindRingWrap:
		return "RINGWRAP"
	case KindHdrHit:
		return "HDRHIT"
	case KindEagerFallback:
		return "FALLBACK"
	case KindIntegrityNack:
		return "NACK"
	case KindCorruptDeliver:
		return "CORRUPT"
	case KindTornRepoll:
		return "TORNPOLL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded protocol action.
type Event struct {
	T     sim.Time
	Kind  Kind
	Rank  int // acting rank
	Peer  int // other side (-1 if none)
	Bytes int
	Rail  int // rail index (-1 if not rail-specific)
}

// taggedEvent pairs an event with its serial position: the ordering key of
// the engine context that recorded it plus a per-context ordinal. Sorting
// tagged events by (key, sub) reconstructs the order a serial engine would
// have inserted them in.
type taggedEvent struct {
	ev  Event
	key sim.EventKey
	sub uint64
}

// Recorder accumulates events. Each recorder is fed from a single engine
// goroutine, so no locking is needed. A nil *Recorder is safe to record
// into (no-op), which lets the ADI layer call unconditionally.
//
// In a sharded run every shard records into its own Child recorder, whose
// entries carry the shard engine's serial-position tag; Merge folds them
// back into the parent in exactly the serial insertion order, so Events,
// Timeline, and every digest built on them are bit-identical to a serial
// run.
type Recorder struct {
	events []Event
	limit  int

	eng      *sim.Engine // child mode: tag source (nil on a plain recorder)
	tagged   []taggedEvent
	resolved int // tagged entries whose keys are already final
	children []*Recorder
}

// NewRecorder creates a recorder keeping at most limit events (0 = 64k).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 64 << 10
	}
	return &Recorder{limit: limit}
}

// Record appends an event; it is a no-op on a nil recorder or at capacity.
func (r *Recorder) Record(t sim.Time, kind Kind, rank, peer, bytes, rail int) {
	if r == nil {
		return
	}
	ev := Event{T: t, Kind: kind, Rank: rank, Peer: peer, Bytes: bytes, Rail: rail}
	if r.eng != nil {
		// Child mode. A shard's records are tagged in non-decreasing key
		// order (engines fire in local key order), so each child is a
		// subsequence of the merged stream and the per-child cap cannot
		// drop an entry that would have made the merged prefix.
		if len(r.tagged) >= r.limit {
			return
		}
		key, sub := r.eng.TraceTag()
		r.tagged = append(r.tagged, taggedEvent{ev: ev, key: key, sub: sub})
		return
	}
	if len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, ev)
}

// Child returns a recorder bound to one shard engine. Records into the
// child carry the engine's serial-position tag; they reach the parent (and
// its capacity limit) only at Merge. Tags taken during a parallel window
// are provisional, so the child registers for the engine's barrier-time
// resolution pass, which finalizes them before Merge can sort on them.
func (r *Recorder) Child(eng *sim.Engine) *Recorder {
	if r == nil {
		return nil
	}
	c := &Recorder{limit: r.limit, eng: eng}
	eng.OnResolveTags(func(resolve func(sim.EventKey) sim.EventKey) {
		for i := c.resolved; i < len(c.tagged); i++ {
			c.tagged[i].key = resolve(c.tagged[i].key)
		}
		c.resolved = len(c.tagged)
	})
	r.children = append(r.children, c)
	return c
}

// Merge folds all child recorders into the parent in serial insertion
// order and detaches them. The parent's capacity limit applies to the
// merged stream, exactly as it would have applied serially.
func (r *Recorder) Merge() {
	if r == nil || len(r.children) == 0 {
		return
	}
	var all []taggedEvent
	for _, c := range r.children {
		all = append(all, c.tagged...)
		c.tagged = nil
	}
	r.children = nil
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key.Less(all[j].key)
		}
		return all[i].sub < all[j].sub
	})
	for _, te := range all {
		if len(r.events) >= r.limit {
			break
		}
		r.events = append(r.events, te.ev)
	}
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.eng != nil {
		return len(r.tagged)
	}
	return len(r.events)
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Timeline formats up to max events as an aligned text timeline.
func (r *Recorder) Timeline(max int) string {
	evs := r.Events()
	if max > 0 && len(evs) > max {
		evs = evs[:max]
	}
	var b strings.Builder
	for _, e := range evs {
		rail := "-"
		if e.Rail >= 0 {
			rail = fmt.Sprintf("r%d", e.Rail)
		}
		fmt.Fprintf(&b, "%12v  %-7s  rank%-3d -> %-3d  %8dB  %s\n",
			e.T, e.Kind, e.Rank, e.Peer, e.Bytes, rail)
	}
	return b.String()
}

// Summary aggregates counts and bytes per kind.
func (r *Recorder) Summary() string {
	type agg struct {
		count int
		bytes int64
	}
	byKind := map[Kind]*agg{}
	for _, e := range r.Events() {
		a := byKind[e.Kind]
		if a == nil {
			a = &agg{}
			byKind[e.Kind] = a
		}
		a.count++
		a.bytes += int64(e.Bytes)
	}
	kinds := make([]Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	for _, k := range kinds {
		a := byKind[k]
		fmt.Fprintf(&b, "%-8s %8d events %14d bytes\n", k, a.count, a.bytes)
	}
	return b.String()
}
