// Package trace provides run introspection: a protocol event recorder that
// the ADI layer feeds when attached, and a resource report summarising
// hardware utilization after a run (engines, lanes, scheduler, GX+ bus,
// protocol counters).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ib12x/internal/sim"
)

// Kind classifies a protocol event.
type Kind int

// Protocol event kinds, in rough lifecycle order.
const (
	KindEager Kind = iota
	KindRTS
	KindCTS
	KindStripeWrite
	KindStripeRead
	KindFIN
	KindDeliver
	KindShmem
	KindRMA
	// KindRetransmit records a work request rerouted onto a surviving rail
	// after its original rail died mid-flight (chaos harness); Rail is the
	// rail the WR was flushed from.
	KindRetransmit
	// Rail-health transitions of the self-healing reliability layer
	// (adi.ReliabilityConfig): a rail turning suspect on a blown completion
	// deadline, entering quarantine, being probed, and returning to
	// service. Rail is the rail index, Peer the connection's far rank.
	KindRailSuspect
	KindRailQuarantine
	KindRailProbe
	KindRailReintegrate
	// Pin-down registration cache (internal/regcache): a registration miss
	// that pinned new pages (Bytes is the region size), and the evictions it
	// forced (Bytes is the total pinned span dropped). Hits are silent — the
	// warm path records nothing.
	KindRegMiss
	KindRegEvict
)

func (k Kind) String() string {
	switch k {
	case KindEager:
		return "EAGER"
	case KindRTS:
		return "RTS"
	case KindCTS:
		return "CTS"
	case KindStripeWrite:
		return "WRITE"
	case KindStripeRead:
		return "READ"
	case KindFIN:
		return "FIN"
	case KindDeliver:
		return "DELIVER"
	case KindShmem:
		return "SHMEM"
	case KindRMA:
		return "RMA"
	case KindRetransmit:
		return "RETRANS"
	case KindRailSuspect:
		return "SUSPECT"
	case KindRailQuarantine:
		return "QUARANTINE"
	case KindRailProbe:
		return "PROBE"
	case KindRailReintegrate:
		return "REINTEGRATE"
	case KindRegMiss:
		return "REGMISS"
	case KindRegEvict:
		return "REGEVICT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded protocol action.
type Event struct {
	T     sim.Time
	Kind  Kind
	Rank  int // acting rank
	Peer  int // other side (-1 if none)
	Bytes int
	Rail  int // rail index (-1 if not rail-specific)
}

// Recorder accumulates events. The simulation is single-threaded, so no
// locking is needed. A nil *Recorder is safe to record into (no-op), which
// lets the ADI layer call unconditionally.
type Recorder struct {
	events []Event
	limit  int
}

// NewRecorder creates a recorder keeping at most limit events (0 = 64k).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 64 << 10
	}
	return &Recorder{limit: limit}
}

// Record appends an event; it is a no-op on a nil recorder or at capacity.
func (r *Recorder) Record(t sim.Time, kind Kind, rank, peer, bytes, rail int) {
	if r == nil || len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{T: t, Kind: kind, Rank: rank, Peer: peer, Bytes: bytes, Rail: rail})
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Timeline formats up to max events as an aligned text timeline.
func (r *Recorder) Timeline(max int) string {
	evs := r.Events()
	if max > 0 && len(evs) > max {
		evs = evs[:max]
	}
	var b strings.Builder
	for _, e := range evs {
		rail := "-"
		if e.Rail >= 0 {
			rail = fmt.Sprintf("r%d", e.Rail)
		}
		fmt.Fprintf(&b, "%12v  %-7s  rank%-3d -> %-3d  %8dB  %s\n",
			e.T, e.Kind, e.Rank, e.Peer, e.Bytes, rail)
	}
	return b.String()
}

// Summary aggregates counts and bytes per kind.
func (r *Recorder) Summary() string {
	type agg struct {
		count int
		bytes int64
	}
	byKind := map[Kind]*agg{}
	for _, e := range r.Events() {
		a := byKind[e.Kind]
		if a == nil {
			a = &agg{}
			byKind[e.Kind] = a
		}
		a.count++
		a.bytes += int64(e.Bytes)
	}
	kinds := make([]Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	for _, k := range kinds {
		a := byKind[k]
		fmt.Fprintf(&b, "%-8s %8d events %14d bytes\n", k, a.count, a.bytes)
	}
	return b.String()
}
