package topo

import (
	"testing"

	"ib12x/internal/model"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Nodes: 2, ProcsPerNode: 4, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{Nodes: 0, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1},
		{Nodes: 1, ProcsPerNode: 0, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1},
		{Nodes: 1, ProcsPerNode: 1, HCAsPerNode: 0, PortsPerHCA: 1, QPsPerPort: 1},
		{Nodes: 1, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 3, QPsPerPort: 1},
		{Nodes: 1, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestSpecDerived(t *testing.T) {
	s := Spec{Nodes: 2, ProcsPerNode: 4, HCAsPerNode: 2, PortsPerHCA: 2, QPsPerPort: 4}
	if s.Size() != 8 {
		t.Errorf("Size = %d, want 8", s.Size())
	}
	if s.Rails() != 16 {
		t.Errorf("Rails = %d, want 16 (2 HCAs × 2 ports × 4 QPs)", s.Rails())
	}
}

func TestBuildShape(t *testing.T) {
	m := model.Default()
	c := Build(Spec{Nodes: 2, ProcsPerNode: 4, HCAsPerNode: 2, PortsPerHCA: 2, QPsPerPort: 1}, m)
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(c.Nodes))
	}
	for _, n := range c.Nodes {
		if len(n.HCAs) != 2 {
			t.Errorf("node %d HCAs = %d, want 2", n.ID, len(n.HCAs))
		}
		if got := len(n.Ports()); got != 4 {
			t.Errorf("node %d ports = %d, want 4", n.ID, got)
		}
		if n.Bus == nil {
			t.Errorf("node %d has no GX+ bus", n.ID)
		}
		// All HCAs of a node share the node's bus.
		for _, h := range n.HCAs {
			if h.Bus != n.Bus {
				t.Errorf("node %d HCA %s not on the node bus", n.ID, h.Name)
			}
		}
	}
}

func TestRankPlacement(t *testing.T) {
	m := model.Default()
	c := Build(Spec{Nodes: 2, ProcsPerNode: 4, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1}, m)
	if c.Size() != 8 {
		t.Fatalf("Size = %d, want 8", c.Size())
	}
	for rank, wantNode := range []int{0, 0, 0, 0, 1, 1, 1, 1} {
		if got := c.NodeOf(rank); got != wantNode {
			t.Errorf("NodeOf(%d) = %d, want %d", rank, got, wantNode)
		}
	}
	if !c.SameNode(0, 3) || c.SameNode(3, 4) {
		t.Error("SameNode misclassifies")
	}
	if len(c.PortsOf(5)) != 1 {
		t.Errorf("PortsOf(5) = %d ports, want 1", len(c.PortsOf(5)))
	}
}

func TestBuildPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build must panic on invalid spec")
		}
	}()
	Build(Spec{}, model.Default())
}
