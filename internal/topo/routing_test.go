package topo

import (
	"testing"

	"ib12x/internal/fabric"
	"ib12x/internal/model"
)

func TestSpecValidateRoutedShapes(t *testing.T) {
	base := Spec{Nodes: 8, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1}
	good := []func(*Spec){
		func(s *Spec) { s.Tiers = 3; s.NodesPerSwitch = 2; s.SpinesPerPod = 2 },
		func(s *Spec) { s.Tiers = 2; s.NodesPerSwitch = 2 },
		func(s *Spec) { s.Dragonfly = Dragonfly{Groups: 2, RoutersPerGroup: 4, GlobalLinks: 1} },
		func(s *Spec) {
			s.NodesPerSwitch = 2
			s.Dragonfly = Dragonfly{Groups: 2, RoutersPerGroup: 2, GlobalLinks: 2}
		},
		func(s *Spec) { s.Dragonfly = Dragonfly{Groups: 1, RoutersPerGroup: 8} }, // local-only group
	}
	for i, set := range good {
		s := base
		set(&s)
		if err := s.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Tiers = 1 },
		func(s *Spec) { s.Tiers = 4 },
		func(s *Spec) { s.Tiers = 3 },                       // no NodesPerSwitch
		func(s *Spec) { s.Tiers = 3; s.NodesPerSwitch = 2 }, // no SpinesPerPod
		func(s *Spec) {
			s.Tiers = 3
			s.NodesPerSwitch = 2
			s.SpinesPerPod = 2
			s.Dragonfly = Dragonfly{Groups: 2, RoutersPerGroup: 2, GlobalLinks: 1}
		}, // mutually exclusive
		func(s *Spec) { s.Dragonfly = Dragonfly{Groups: 2} },                                     // no routers
		func(s *Spec) { s.Dragonfly = Dragonfly{Groups: 2, RoutersPerGroup: 4} },                 // no global links
		func(s *Spec) { s.Dragonfly = Dragonfly{Groups: 2, RoutersPerGroup: 2, GlobalLinks: 1} }, // capacity 4 < 8 nodes
	}
	for i, set := range bad {
		s := base
		set(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d]: Validate accepted %+v", i, s)
		}
	}
}

// TestShardPlanRoutedShapes is the property test for pod/group sharding:
// for every shape and requested shard count, every node maps to exactly
// one shard, nodes of the same pod/group never split across shards, shard
// ids are contiguous from 0 and non-decreasing in node order, and the
// effective count is clamped to [1, units].
func TestShardPlanRoutedShapes(t *testing.T) {
	shapes := []struct {
		name  string
		spec  Spec
		units int
	}{
		{"tree3-16n", Spec{Nodes: 16, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
			Tiers: 3, NodesPerSwitch: 2, SpinesPerPod: 2}, 4}, // 8 leaves / 2 per pod → 4 pods
		{"tree3-ragged", Spec{Nodes: 10, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
			Tiers: 3, NodesPerSwitch: 2, SpinesPerPod: 2}, 3}, // 5 leaves → 3 pods
		{"dragonfly-12n", Spec{Nodes: 12, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
			NodesPerSwitch: 2, Dragonfly: Dragonfly{Groups: 3, RoutersPerGroup: 2, GlobalLinks: 1}}, 3},
		{"dragonfly-ragged", Spec{Nodes: 5, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
			Dragonfly: Dragonfly{Groups: 3, RoutersPerGroup: 2, GlobalLinks: 1}}, 3},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			if err := sh.spec.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := sh.spec.ShardUnits(); got != sh.units {
				t.Fatalf("ShardUnits = %d, want %d", got, sh.units)
			}
			unitSize := sh.spec.shardUnitSize()
			for req := -1; req <= sh.units+3; req++ {
				plan, eff := sh.spec.ShardPlan(req)
				if len(plan) != sh.spec.Nodes {
					t.Fatalf("req=%d: plan covers %d nodes, want %d", req, len(plan), sh.spec.Nodes)
				}
				if eff < 1 || eff > sh.units {
					t.Fatalf("req=%d: effective count %d outside [1,%d]", req, eff, sh.units)
				}
				// Contiguous blocks of ceil(units/eff) units can use fewer
				// shards than requested (4 units over 3 shards = two blocks
				// of 2), so eff may undershoot req but never exceed it.
				if req >= 1 && eff > req {
					t.Fatalf("req=%d yielded %d shards", req, eff)
				}
				seen := make([]bool, eff)
				prev := 0
				for n, s := range plan {
					if s < 0 || s >= eff {
						t.Fatalf("req=%d: node %d on shard %d of %d", req, n, s, eff)
					}
					if s != prev && s != prev+1 {
						t.Fatalf("req=%d: shard ids not contiguous at node %d (%d after %d)", req, n, s, prev)
					}
					if s != plan[n/unitSize*unitSize] {
						t.Fatalf("req=%d: node %d splits its pod/group across shards", req, n)
					}
					seen[s] = true
					prev = s
				}
				for s, ok := range seen {
					if !ok {
						t.Fatalf("req=%d: shard %d owns no nodes", req, s)
					}
				}
			}
		})
	}
}

func TestBuildRoutedShapes(t *testing.T) {
	m := model.Default()
	tree := Build(Spec{Nodes: 8, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
		Tiers: 3, NodesPerSwitch: 2, SpinesPerPod: 2, Routing: fabric.RouteAdaptive}, m)
	if !tree.Net.Routed() || tree.Net.Planes() != 2 {
		t.Fatalf("three-tier build: Routed=%v Planes=%d", tree.Net.Routed(), tree.Net.Planes())
	}
	if tree.Net.CrossSwitch(0, 1) || !tree.Net.CrossSwitch(1, 2) {
		t.Fatalf("three-tier switch assignment wrong")
	}
	df := Build(Spec{Nodes: 8, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
		NodesPerSwitch: 2, Dragonfly: Dragonfly{Groups: 2, RoutersPerGroup: 2, GlobalLinks: 2}}, m)
	if !df.Net.Routed() || df.Net.Planes() != 2 {
		t.Fatalf("dragonfly build: Routed=%v Planes=%d", df.Net.Routed(), df.Net.Planes())
	}
	// Legacy shapes stay non-routed.
	legacy := Build(Spec{Nodes: 8, ProcsPerNode: 1, HCAsPerNode: 1, PortsPerHCA: 1, QPsPerPort: 1,
		NodesPerSwitch: 2}, m)
	if legacy.Net.Routed() || !legacy.Net.CrossLeaf(1, 2) {
		t.Fatalf("legacy fat tree changed shape")
	}
}
