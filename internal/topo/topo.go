// Package topo describes and builds the simulated cluster: nodes with one
// GX+ bus each, HCAs per node, ports per HCA, and the rank-to-node mapping.
//
// A "rail" in the multi-rail design is one QP on one port of one HCA; the
// number of rails between a process pair is HCAsPerNode × PortsPerHCA ×
// QPsPerPort (paper §3.1: "multiple queue pairs per port, multiple ports,
// multiple HCAs").
package topo

import (
	"fmt"

	"ib12x/internal/fabric"
	"ib12x/internal/gx"
	"ib12x/internal/hca"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

// Spec declares a cluster shape. The paper's testbed is 2 nodes × 4 procs,
// one HCA, one port (§4.1); QPsPerPort is the experimental variable.
type Spec struct {
	Nodes        int
	ProcsPerNode int
	HCAsPerNode  int
	PortsPerHCA  int
	QPsPerPort   int

	// NodesPerSwitch groups nodes under leaf switches of a two-level fat
	// tree (0 = the paper's single switch). TrunkRate is the per-leaf
	// trunk bandwidth toward the spine in bytes/s (0 = the link's raw
	// rate, i.e. a 1:1 trunk).
	NodesPerSwitch int
	TrunkRate      float64

	// Tiers = 3 upgrades the fat tree to the routed three-tier fabric:
	// leaves grouped SpinesPerPod to a pod, SpinesPerPod spines per pod,
	// SpinesPerPod cores, per-switch path selection (fabric.NewThreeTier).
	// NodesPerSwitch then sets the leaf radix and TrunkRate every
	// inter-switch lane. 0/2 keep the legacy shapes.
	Tiers        int
	SpinesPerPod int

	// Dragonfly, when Groups > 0, selects the dragonfly fabric instead
	// (mutually exclusive with Tiers = 3). NodesPerSwitch doubles as
	// nodes-per-router (0 = 1).
	Dragonfly Dragonfly

	// Routing picks static D-mod-K vs adaptive path selection on routed
	// fabrics (ignored by flat and two-level shapes).
	Routing fabric.Routing
}

// Dragonfly shapes the dragonfly fabric: Groups of RoutersPerGroup routers
// (all-to-all locally), GlobalLinks parallel lanes per ordered group pair.
// The zero value means "not a dragonfly".
type Dragonfly struct {
	Groups          int
	RoutersPerGroup int
	GlobalLinks     int
}

// routeSeed fixes the deterministic tie-break seed of routed fabrics; runs
// replay bit-identically because it never varies.
const routeSeed = 0x12b51ab12b51ab

// nodesPerRouter reports the dragonfly leaf radix (NodesPerSwitch, min 1).
func (s Spec) nodesPerRouter() int {
	if s.NodesPerSwitch > 0 {
		return s.NodesPerSwitch
	}
	return 1
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("topo: Nodes = %d, need ≥ 1", s.Nodes)
	case s.ProcsPerNode < 1:
		return fmt.Errorf("topo: ProcsPerNode = %d, need ≥ 1", s.ProcsPerNode)
	case s.HCAsPerNode < 1:
		return fmt.Errorf("topo: HCAsPerNode = %d, need ≥ 1", s.HCAsPerNode)
	case s.PortsPerHCA < 1 || s.PortsPerHCA > 2:
		return fmt.Errorf("topo: PortsPerHCA = %d, the IBM 12x HCA is dual-port (1 or 2)", s.PortsPerHCA)
	case s.QPsPerPort < 1:
		return fmt.Errorf("topo: QPsPerPort = %d, need ≥ 1", s.QPsPerPort)
	}
	if s.Tiers != 0 && s.Tiers != 2 && s.Tiers != 3 {
		return fmt.Errorf("topo: Tiers = %d, need 0 (flat/legacy), 2, or 3", s.Tiers)
	}
	if s.Dragonfly.Groups > 0 {
		d := s.Dragonfly
		switch {
		case s.Tiers == 3:
			return fmt.Errorf("topo: Dragonfly and Tiers = 3 are mutually exclusive")
		case d.RoutersPerGroup < 1:
			return fmt.Errorf("topo: Dragonfly.RoutersPerGroup = %d, need ≥ 1", d.RoutersPerGroup)
		case d.GlobalLinks < 1 && d.Groups > 1:
			return fmt.Errorf("topo: Dragonfly.GlobalLinks = %d, need ≥ 1", d.GlobalLinks)
		}
		if room := d.Groups * d.RoutersPerGroup * s.nodesPerRouter(); s.Nodes > room {
			return fmt.Errorf("topo: %d nodes exceed dragonfly capacity %d", s.Nodes, room)
		}
	} else if s.Tiers == 3 {
		switch {
		case s.NodesPerSwitch < 1:
			return fmt.Errorf("topo: Tiers = 3 needs NodesPerSwitch ≥ 1")
		case s.SpinesPerPod < 1:
			return fmt.Errorf("topo: Tiers = 3 needs SpinesPerPod ≥ 1")
		}
	}
	return nil
}

// Size reports the total number of ranks.
func (s Spec) Size() int { return s.Nodes * s.ProcsPerNode }

// shardUnitSize reports how many consecutive nodes form one sharding unit:
// a pod in a three-tier tree, a group in a dragonfly, a leaf in the legacy
// fat tree, a single node under the flat switch.
func (s Spec) shardUnitSize() int {
	if s.Dragonfly.Groups > 0 {
		return s.Dragonfly.RoutersPerGroup * s.nodesPerRouter()
	}
	if s.Tiers == 3 {
		return s.SpinesPerPod * s.NodesPerSwitch
	}
	if s.NodesPerSwitch > 0 {
		return s.NodesPerSwitch
	}
	return 1
}

// ShardUnits reports the natural sharding granularity of the topology for
// the parallel DES engine: per node under a single switch (nodes share no
// fabric state but the wire, which the lookahead covers), per leaf switch
// in a two-level fat tree, per pod in a three-tier tree, per group in a
// dragonfly — the routed fabrics still share spine/core/global lanes
// across shards, which the deferred-booking barrier order covers.
func (s Spec) ShardUnits() int {
	per := s.shardUnitSize()
	return (s.Nodes + per - 1) / per
}

// ShardPlan maps every node to a shard for the sharded DES engine: sharding
// units (see ShardUnits) are assigned to shards in contiguous blocks, and
// the requested shard count is clamped to [1, units]. It returns the
// node→shard table and the effective shard count.
func (s Spec) ShardPlan(shards int) ([]int, int) {
	units := s.ShardUnits()
	if shards > units {
		shards = units
	}
	if shards < 1 {
		shards = 1
	}
	unitSize := s.shardUnitSize()
	per := (units + shards - 1) / shards
	out := make([]int, s.Nodes)
	for n := range out {
		sh := n / unitSize / per
		if sh >= shards {
			sh = shards - 1
		}
		out[n] = sh
	}
	// Ragged unit counts can leave trailing blocks empty (4 units over 3
	// shards = two blocks of 2); report the used count so no shard engine
	// ever owns zero nodes. Assignment is monotone, so the last node has
	// the highest shard id.
	return out, out[len(out)-1] + 1
}

// ShardLookahead reports the conservative lookahead of the sharded DES
// engine on this topology: the minimum virtual-time distance any event can
// cross a shard boundary in. Every cross-shard interaction pays at least
// one wire hop — data chunks pay OneWay per fabric hop and RC acks pay
// exactly one OneWay — so the bound is the single-hop wire latency on
// every shape; deeper routed fabrics only add hops, never shorten one.
func (s Spec) ShardLookahead(m *model.Params) sim.Time {
	return m.WireLatency
}

// Rails reports the number of rails between any inter-node process pair.
func (s Spec) Rails() int { return s.HCAsPerNode * s.PortsPerHCA * s.QPsPerPort }

// Node is one Power6 node: a GX+ bus shared by its HCAs.
type Node struct {
	ID   int
	Bus  *gx.Bus
	HCAs []*hca.HCA
}

// Ports returns the node's ports flattened across HCAs, in (hca, port) order.
func (n *Node) Ports() []*hca.Port {
	var ps []*hca.Port
	for _, h := range n.HCAs {
		ps = append(ps, h.Ports...)
	}
	return ps
}

// Cluster is a built topology.
type Cluster struct {
	Spec  Spec
	Model *model.Params
	Net   *fabric.Net
	Nodes []*Node
}

// Build constructs the hardware for a spec. It panics on an invalid spec;
// callers that take user input should Validate first.
func Build(spec Spec, m *model.Params) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	trunk := spec.TrunkRate
	if trunk == 0 {
		trunk = m.LinkRawRate
	}
	net := fabric.NewSingleSwitch(m.WireLatency)
	switch {
	case spec.Dragonfly.Groups > 0:
		d := spec.Dragonfly
		glinks := d.GlobalLinks
		if glinks < 1 {
			glinks = 1
		}
		net = fabric.NewDragonfly(m.WireLatency, d.Groups, d.RoutersPerGroup,
			spec.nodesPerRouter(), glinks, trunk, spec.Routing, routeSeed)
	case spec.Tiers == 3:
		net = fabric.NewThreeTier(m.WireLatency, spec.Nodes, spec.NodesPerSwitch,
			spec.SpinesPerPod, trunk, spec.Routing, routeSeed)
	case spec.NodesPerSwitch > 0:
		net = fabric.NewFatTree(m.WireLatency, spec.Nodes, spec.NodesPerSwitch, trunk)
	}
	c := &Cluster{Spec: spec, Model: m, Net: net}
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{ID: i, Bus: gx.New(m.GXRate)}
		for h := 0; h < spec.HCAsPerNode; h++ {
			hc := hca.New(fmt.Sprintf("n%d.hca%d", i, h), spec.PortsPerHCA, n.Bus, m, c.Net)
			for _, port := range hc.Ports {
				port.Node = i
			}
			n.HCAs = append(n.HCAs, hc)
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Size reports the total number of ranks.
func (c *Cluster) Size() int { return c.Spec.Size() }

// NodeOf maps a rank to its node index (block distribution, as mpirun -ppn
// would place ranks on the paper's testbed).
func (c *Cluster) NodeOf(rank int) int { return rank / c.Spec.ProcsPerNode }

// SameNode reports whether two ranks share a node (and hence communicate
// over the shared-memory channel rather than the HCA).
func (c *Cluster) SameNode(a, b int) bool { return c.NodeOf(a) == c.NodeOf(b) }

// PortsOf returns the ports of a rank's node.
func (c *Cluster) PortsOf(rank int) []*hca.Port { return c.Nodes[c.NodeOf(rank)].Ports() }
