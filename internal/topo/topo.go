// Package topo describes and builds the simulated cluster: nodes with one
// GX+ bus each, HCAs per node, ports per HCA, and the rank-to-node mapping.
//
// A "rail" in the multi-rail design is one QP on one port of one HCA; the
// number of rails between a process pair is HCAsPerNode × PortsPerHCA ×
// QPsPerPort (paper §3.1: "multiple queue pairs per port, multiple ports,
// multiple HCAs").
package topo

import (
	"fmt"

	"ib12x/internal/fabric"
	"ib12x/internal/gx"
	"ib12x/internal/hca"
	"ib12x/internal/model"
)

// Spec declares a cluster shape. The paper's testbed is 2 nodes × 4 procs,
// one HCA, one port (§4.1); QPsPerPort is the experimental variable.
type Spec struct {
	Nodes        int
	ProcsPerNode int
	HCAsPerNode  int
	PortsPerHCA  int
	QPsPerPort   int

	// NodesPerSwitch groups nodes under leaf switches of a two-level fat
	// tree (0 = the paper's single switch). TrunkRate is the per-leaf
	// trunk bandwidth toward the spine in bytes/s (0 = the link's raw
	// rate, i.e. a 1:1 trunk).
	NodesPerSwitch int
	TrunkRate      float64
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("topo: Nodes = %d, need ≥ 1", s.Nodes)
	case s.ProcsPerNode < 1:
		return fmt.Errorf("topo: ProcsPerNode = %d, need ≥ 1", s.ProcsPerNode)
	case s.HCAsPerNode < 1:
		return fmt.Errorf("topo: HCAsPerNode = %d, need ≥ 1", s.HCAsPerNode)
	case s.PortsPerHCA < 1 || s.PortsPerHCA > 2:
		return fmt.Errorf("topo: PortsPerHCA = %d, the IBM 12x HCA is dual-port (1 or 2)", s.PortsPerHCA)
	case s.QPsPerPort < 1:
		return fmt.Errorf("topo: QPsPerPort = %d, need ≥ 1", s.QPsPerPort)
	}
	return nil
}

// Size reports the total number of ranks.
func (s Spec) Size() int { return s.Nodes * s.ProcsPerNode }

// ShardUnits reports the natural sharding granularity of the topology for
// the parallel DES engine: per node under a single switch (nodes share no
// fabric state but the wire, which the lookahead covers), per leaf switch
// in a fat tree (each leaf's trunk lanes stay owned by one shard).
func (s Spec) ShardUnits() int {
	if s.NodesPerSwitch > 0 {
		return (s.Nodes + s.NodesPerSwitch - 1) / s.NodesPerSwitch
	}
	return s.Nodes
}

// ShardPlan maps every node to a shard for the sharded DES engine: sharding
// units (see ShardUnits) are assigned to shards in contiguous blocks, and
// the requested shard count is clamped to [1, units]. It returns the
// node→shard table and the effective shard count.
func (s Spec) ShardPlan(shards int) ([]int, int) {
	units := s.ShardUnits()
	if shards > units {
		shards = units
	}
	if shards < 1 {
		shards = 1
	}
	unitOf := func(n int) int { return n }
	if s.NodesPerSwitch > 0 {
		unitOf = func(n int) int { return n / s.NodesPerSwitch }
	}
	per := (units + shards - 1) / shards
	out := make([]int, s.Nodes)
	for n := range out {
		sh := unitOf(n) / per
		if sh >= shards {
			sh = shards - 1
		}
		out[n] = sh
	}
	return out, shards
}

// Rails reports the number of rails between any inter-node process pair.
func (s Spec) Rails() int { return s.HCAsPerNode * s.PortsPerHCA * s.QPsPerPort }

// Node is one Power6 node: a GX+ bus shared by its HCAs.
type Node struct {
	ID   int
	Bus  *gx.Bus
	HCAs []*hca.HCA
}

// Ports returns the node's ports flattened across HCAs, in (hca, port) order.
func (n *Node) Ports() []*hca.Port {
	var ps []*hca.Port
	for _, h := range n.HCAs {
		ps = append(ps, h.Ports...)
	}
	return ps
}

// Cluster is a built topology.
type Cluster struct {
	Spec  Spec
	Model *model.Params
	Net   *fabric.Net
	Nodes []*Node
}

// Build constructs the hardware for a spec. It panics on an invalid spec;
// callers that take user input should Validate first.
func Build(spec Spec, m *model.Params) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	net := fabric.NewSingleSwitch(m.WireLatency)
	if spec.NodesPerSwitch > 0 {
		trunk := spec.TrunkRate
		if trunk == 0 {
			trunk = m.LinkRawRate
		}
		net = fabric.NewFatTree(m.WireLatency, spec.Nodes, spec.NodesPerSwitch, trunk)
	}
	c := &Cluster{Spec: spec, Model: m, Net: net}
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{ID: i, Bus: gx.New(m.GXRate)}
		for h := 0; h < spec.HCAsPerNode; h++ {
			hc := hca.New(fmt.Sprintf("n%d.hca%d", i, h), spec.PortsPerHCA, n.Bus, m, c.Net)
			for _, port := range hc.Ports {
				port.Node = i
			}
			n.HCAs = append(n.HCAs, hc)
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Size reports the total number of ranks.
func (c *Cluster) Size() int { return c.Spec.Size() }

// NodeOf maps a rank to its node index (block distribution, as mpirun -ppn
// would place ranks on the paper's testbed).
func (c *Cluster) NodeOf(rank int) int { return rank / c.Spec.ProcsPerNode }

// SameNode reports whether two ranks share a node (and hence communicate
// over the shared-memory channel rather than the HCA).
func (c *Cluster) SameNode(a, b int) bool { return c.NodeOf(a) == c.NodeOf(b) }

// PortsOf returns the ports of a rank's node.
func (c *Cluster) PortsOf(rank int) []*hca.Port { return c.Nodes[c.NodeOf(rank)].Ports() }
